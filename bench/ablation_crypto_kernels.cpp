// Ablation — fast crypto kernels and the wrapping-key schedule cache.
//
// Two questions, answered with the production code paths:
//   1. How much faster are the table-driven AES/DES kernels than the
//      retained bit-loop reference kernels (crypto/reference.h), measured
//      as CBC throughput over a key-wrap-sized payload?
//   2. What hit rate does the executor's schedule cache reach under the
//      paper's fig-10 style churn (group-oriented rekeying, 1:1
//      join/leave) once plan-target warming is in effect?
//
// Knobs: KG_KERNEL_MS per-kernel measurement window (default 200 ms),
// KG_GROUP_SIZE initial group (default 4096), KG_REQUESTS churn requests
// (default 1000). Emits one JSON line per result to $KG_BENCH_JSON.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "crypto/aes.h"
#include "crypto/cbc.h"
#include "crypto/des.h"
#include "crypto/random.h"
#include "crypto/reference.h"
#include "server/server.h"
#include "sim/workload.h"

namespace keygraphs {
namespace {

/// CBC-encrypt `payload_blocks` blocks per iteration for `window_ms`;
/// returns blocks per second through the full encrypt_into path.
double cbc_blocks_per_sec(const crypto::CbcCipher& cbc,
                          std::size_t payload_blocks, double window_ms) {
  crypto::SecureRandom rng(30);
  const std::size_t block = cbc.cipher().block_size();
  const Bytes payload = rng.bytes(payload_blocks * block);
  const Bytes iv = rng.bytes(block);
  Bytes out(cbc.ciphertext_size(payload.size()));
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration<double, std::milli>(window_ms);
  std::uint64_t iterations = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    cbc.encrypt_into(payload, iv, out.data());
    ++iterations;
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return static_cast<double>(iterations * (payload_blocks + 1)) /
         elapsed.count();
}

void kernel_section() {
  const double window_ms =
      static_cast<double>(bench::env_size("KG_KERNEL_MS", 200));
  constexpr std::size_t kPayloadBlocks = 256;
  crypto::SecureRandom rng(31);
  const Bytes aes_key = rng.bytes(crypto::Aes128::kKeySize);
  const Bytes des_key = rng.bytes(crypto::Des::kKeySize);

  struct Pair {
    const char* name;
    crypto::CbcCipher table;
    crypto::CbcCipher reference;
  };
  Pair pairs[] = {
      {"AES-128",
       crypto::CbcCipher(std::make_shared<crypto::Aes128>(aes_key)),
       crypto::CbcCipher(
           std::make_shared<crypto::ReferenceAes128>(aes_key))},
      {"DES", crypto::CbcCipher(std::make_shared<crypto::Des>(des_key)),
       crypto::CbcCipher(std::make_shared<crypto::ReferenceDes>(des_key))},
  };

  std::printf("Kernel ablation: CBC blocks/sec, table-driven vs bit-loop "
              "reference (%zu-block payload)\n\n", kPayloadBlocks);
  sim::TablePrinter table({{"cipher", 8},
                           {"table blk/s", 13},
                           {"reference blk/s", 16},
                           {"speedup", 8}});
  table.header();
  for (const Pair& pair : pairs) {
    const double fast = cbc_blocks_per_sec(pair.table, kPayloadBlocks,
                                           window_ms);
    const double slow = cbc_blocks_per_sec(pair.reference, kPayloadBlocks,
                                           window_ms);
    const double speedup = fast / slow;
    table.row({pair.name, sim::TablePrinter::num(fast, 0),
               sim::TablePrinter::num(slow, 0),
               sim::TablePrinter::num(speedup, 2)});
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer),
                  "{\"bench\":\"ablation_crypto_kernels\","
                  "\"section\":\"kernel\",\"cipher\":\"%s\","
                  "\"table_blocks_per_sec\":%.0f,"
                  "\"reference_blocks_per_sec\":%.0f,\"speedup\":%.2f}",
                  pair.name, fast, slow, speedup);
    bench::emit_json_line(buffer);
  }
  std::printf("\n");
}

void schedule_cache_section() {
  const std::size_t n = bench::env_size("KG_GROUP_SIZE", 4096);
  const std::size_t requests = bench::env_size("KG_REQUESTS", 1000);

  server::ServerConfig config;
  config.tree_degree = 4;
  config.suite.cipher = crypto::CipherAlgorithm::kAes128;
  config.strategy = rekey::StrategyKind::kGroupOriented;
  config.rng_seed = 1;
  transport::NullTransport transport;
  server::GroupKeyServer server(config, transport);

  sim::WorkloadGenerator workload(1);
  for (const sim::Request& request : workload.initial_joins(n)) {
    server.join(request.user);
  }

  // Measure the churn window only: the build phase above has its own
  // (cold) cache behavior and the paper never measures group construction.
  auto& registry = telemetry::Registry::global();
  const auto hits0 = registry.counter("rekey.schedule_cache.hits").value();
  const auto misses0 =
      registry.counter("rekey.schedule_cache.misses").value();
  const auto inserts0 =
      registry.counter("rekey.schedule_cache.inserts").value();

  for (const sim::Request& request : workload.churn(requests)) {
    if (request.kind == sim::RequestKind::kJoin) {
      server.join(request.user);
    } else {
      server.leave(request.user);
    }
  }

  const auto hits =
      registry.counter("rekey.schedule_cache.hits").value() - hits0;
  const auto misses =
      registry.counter("rekey.schedule_cache.misses").value() - misses0;
  const auto inserts =
      registry.counter("rekey.schedule_cache.inserts").value() - inserts0;
  const double lookups = static_cast<double>(hits + misses);
  const double hit_rate_pct =
      lookups == 0.0 ? 0.0 : 100.0 * static_cast<double>(hits) / lookups;

  std::printf("Schedule cache: group-oriented churn, n=%zu, %zu requests "
              "(1:1 join/leave), AES-128\n\n", n, requests);
  std::printf("  wrap-time lookups: %llu hits, %llu misses "
              "(hit rate %.1f%%)\n",
              static_cast<unsigned long long>(hits),
              static_cast<unsigned long long>(misses), hit_rate_pct);
  std::printf("  plan-target warm inserts: %llu\n\n",
              static_cast<unsigned long long>(inserts));
  std::printf("(Warming builds each plan target's schedule once before the "
              "wrap fan-out; lookups\nthen miss only on welcome-unicast "
              "individual keys, never on plan targets.)\n");

  char buffer[320];
  std::snprintf(buffer, sizeof(buffer),
                "{\"bench\":\"ablation_crypto_kernels\","
                "\"section\":\"schedule_cache\",\"n\":%zu,\"requests\":%zu,"
                "\"hits\":%llu,\"misses\":%llu,\"inserts\":%llu,"
                "\"hit_rate_pct\":%.2f}",
                n, requests, static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(inserts), hit_rate_pct);
  bench::emit_json_line(buffer);
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::bench::emit_header_json("ablation_crypto_kernels");
  keygraphs::kernel_section();
  keygraphs::schedule_cache_section();
  return 0;
}

// Ablation — batch (periodic) rekeying vs per-request rekeying.
//
// The periodic-rekeying extension trades eviction latency for cost: all
// membership changes of an interval are rekeyed in one pass, so the server
// pays for the *union* of the affected paths instead of their sum. This
// bench sweeps the batch size at fixed churn and reports key encryptions
// and bytes per membership change — the amortization curve that motivates
// interval-based rekeying for very high churn.
#include <cstdio>

#include "bench_util.h"
#include "sim/workload.h"

namespace keygraphs {
namespace {

struct Point {
  double encryptions_per_change = 0;
  double bytes_per_change = 0;
  double messages_per_change = 0;
};

Point run(std::size_t n, std::size_t batch_size, std::size_t total_changes) {
  server::ServerConfig config;
  config.tree_degree = 4;
  config.strategy = rekey::StrategyKind::kGroupOriented;
  config.rng_seed = 5150;
  transport::NullTransport transport;
  server::GroupKeyServer server(config, transport);
  sim::WorkloadGenerator workload(9);
  for (const sim::Request& request : workload.initial_joins(n)) {
    server.join(request.user);
  }
  server.stats().reset();

  std::size_t applied = 0;
  while (applied < total_changes) {
    const std::size_t this_batch =
        std::min(batch_size, total_changes - applied);
    std::vector<UserId> joins, leaves;
    for (const sim::Request& request : workload.churn(this_batch, 0.5)) {
      if (request.kind == sim::RequestKind::kJoin) {
        joins.push_back(request.user);
      } else if (std::erase(joins, request.user) == 0) {
        // A join and leave of the same user within one interval annihilate:
        // that member never needs any key.
        leaves.push_back(request.user);
      }
    }
    if (batch_size == 1) {
      // Per-request baseline: the paper's normal operation.
      for (UserId user : joins) server.join(user);
      for (UserId user : leaves) server.leave(user);
    } else {
      server.batch(joins, leaves);
    }
    applied += this_batch;
  }

  Point point;
  const server::Summary all = server.stats().summarize_all();
  const double changes = static_cast<double>(applied);
  const double ops = static_cast<double>(all.operations);
  point.encryptions_per_change = all.avg_encryptions * ops / changes;
  point.bytes_per_change = all.avg_total_bytes * ops / changes;
  point.messages_per_change = all.avg_messages * ops / changes;
  return point;
}

void main_impl() {
  bench::emit_header_json("ablation_batch_rekey");
  const std::size_t n = bench::env_size("KG_GROUP_SIZE", 4096);
  const std::size_t changes = std::max<std::size_t>(bench::requests(), 512);
  std::printf("Ablation: batch rekeying, n=%zu, %zu membership changes, "
              "1:1 join/leave, group-oriented\n", n, changes);
  std::printf("batch size 1 = the paper's per-request rekeying\n\n");
  sim::TablePrinter table({{"batch", 7},
                           {"enc/change", 11},
                           {"bytes/change", 13},
                           {"msgs/change", 12}});
  table.header();
  for (std::size_t batch : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u}) {
    const Point point = run(n, batch, changes);
    table.row({sim::TablePrinter::num(batch),
               sim::TablePrinter::num(point.encryptions_per_change, 2),
               sim::TablePrinter::num(point.bytes_per_change, 0),
               sim::TablePrinter::num(point.messages_per_change, 2)});
  }
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::main_impl();
  return 0;
}

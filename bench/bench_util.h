// Shared helpers for the paper-reproduction benchmark binaries.
//
// Scale knobs come from the environment so `for b in build/bench/*; do $b;
// done` finishes in minutes while `KG_REQUESTS=1000 KG_CLIENT_SIZE=8192 ...`
// reproduces the paper's exact scale:
//   KG_REQUESTS      churn requests per experiment (paper: 1000)
//   KG_SEEDS         request sequences averaged per data point (paper: 3)
//   KG_GROUP_SIZE    initial group size for fixed-size tables (paper: 8192)
//   KG_CLIENT_SIZE   initial size for client-attached runs (paper: 8192)
//   KG_BENCH_JSON    file to append per-point JSON lines to (default stdout)
#pragma once

#include <array>
#include <cstdio>
#include <cstdlib>
#include <initializer_list>
#include <string>
#include <thread>
#include <utility>

#include "crypto/cpu_features.h"
#include "sim/experiment.h"
#include "sim/table.h"
#include "telemetry/stage.h"

namespace keygraphs::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

inline std::size_t requests() { return env_size("KG_REQUESTS", 1000); }
inline std::size_t seeds() { return env_size("KG_SEEDS", 3); }
inline std::size_t group_size() { return env_size("KG_GROUP_SIZE", 8192); }
inline std::size_t client_size() { return env_size("KG_CLIENT_SIZE", 2048); }

/// Runs one experiment configuration for each seed and averages the server
/// summaries (the paper averages three request sequences per point).
struct AveragedResult {
  sim::ExperimentResult result;  // client fields from the last seed
  double join_ms = 0.0;
  double leave_ms = 0.0;
  double all_ms = 0.0;
  /// Per-stage self time in microseconds, averaged over ops and seeds.
  telemetry::StageBreakdown stage_us{};

  /// Sum of the measured stages (auth excluded — the paper's processing
  /// time excludes authentication, Section 5).
  [[nodiscard]] double stage_sum_us() const {
    double sum = 0.0;
    for (std::size_t i = 0; i < telemetry::kStageCount; ++i) {
      if (static_cast<telemetry::Stage>(i) == telemetry::Stage::kAuth) {
        continue;
      }
      sum += stage_us[i];
    }
    return sum;
  }
};

inline AveragedResult run_averaged(sim::ExperimentConfig config,
                                   std::size_t seed_count) {
  AveragedResult averaged;
  for (std::size_t seed = 1; seed <= seed_count; ++seed) {
    config.seed = seed;
    averaged.result = sim::run_experiment(config);
    averaged.join_ms += averaged.result.join.avg_processing_ms;
    averaged.leave_ms += averaged.result.leave.avg_processing_ms;
    averaged.all_ms += averaged.result.all.avg_processing_ms;
    for (std::size_t i = 0; i < telemetry::kStageCount; ++i) {
      averaged.stage_us[i] += averaged.result.all.avg_stage_us[i];
    }
  }
  const auto n = static_cast<double>(seed_count);
  averaged.join_ms /= n;
  averaged.leave_ms /= n;
  averaged.all_ms /= n;
  for (double& stage : averaged.stage_us) stage /= n;
  return averaged;
}

inline const char* strategy_label(rekey::StrategyKind kind) {
  switch (kind) {
    case rekey::StrategyKind::kUserOriented:
      return "user";
    case rekey::StrategyKind::kKeyOriented:
      return "key";
    case rekey::StrategyKind::kGroupOriented:
      return "group";
    case rekey::StrategyKind::kHybrid:
      return "hybrid";
  }
  return "?";
}

/// Appends one pre-formatted JSON line to $KG_BENCH_JSON, or to stdout
/// when the variable is unset. `json` should not carry its own newline.
inline void emit_json_line(std::string json) {
  json += '\n';
  const char* path = std::getenv("KG_BENCH_JSON");
  if (path != nullptr && *path != '\0') {
    if (std::FILE* file = std::fopen(path, "a")) {
      std::fwrite(json.data(), 1, json.size(), file);
      std::fclose(file);
      return;
    }
  }
  std::fwrite(json.data(), 1, json.size(), stdout);
}

/// Emits the uniform one-per-binary JSON header: the bench name, the
/// host's hardware_concurrency, and any bench-specific thread/shard
/// configuration as extra integer fields. Every ablation bench emits
/// exactly one header line before its data points so downstream tooling
/// can normalise results by host shape without parsing free-form text.
inline void emit_header_json(
    const char* bench,
    std::initializer_list<std::pair<const char*, std::size_t>> config = {}) {
  std::string json = "{\"bench\":\"";
  json += bench;
  json += "\",\"header\":true,\"hardware_concurrency\":";
  json += std::to_string(std::thread::hardware_concurrency());
  // Which AES kernel the dispatcher picked (and why): results from a
  // hardware-kernel host and a table-fallback host must never be compared
  // without noticing.
  json += ",\"cpu_features\":" + crypto::cpu_features_json();
  for (const auto& [key, value] : config) {
    json += ",\"";
    json += key;
    json += "\":" + std::to_string(value);
  }
  json += "}";
  emit_json_line(std::move(json));
}

/// Appends one JSON line describing a benchmark data point — the averaged
/// processing time plus the per-stage breakdown — to $KG_BENCH_JSON, or to
/// stdout when the variable is unset.
inline void emit_point_json(const char* bench, bool signed_mode,
                            const char* x_key, std::size_t x_value,
                            rekey::StrategyKind strategy,
                            const AveragedResult& averaged) {
  std::string json = "{\"bench\":\"";
  json += bench;
  json += "\",\"signed\":";
  json += signed_mode ? "true" : "false";
  json += ",\"";
  json += x_key;
  json += "\":" + std::to_string(x_value);
  json += ",\"strategy\":\"";
  json += strategy_label(strategy);
  json += "\"";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), ",\"avg_ms\":%.6f", averaged.all_ms);
  json += buffer;
  std::snprintf(buffer, sizeof(buffer), ",\"processing_us\":%.3f",
                averaged.all_ms * 1000.0);
  json += buffer;
  json += ",\"stages_us\":{";
  for (std::size_t i = 0; i < telemetry::kStageCount; ++i) {
    std::snprintf(buffer, sizeof(buffer), "%s\"%s\":%.3f", i == 0 ? "" : ",",
                  telemetry::stage_name(static_cast<telemetry::Stage>(i)),
                  averaged.stage_us[i]);
    json += buffer;
  }
  std::snprintf(buffer, sizeof(buffer), "},\"stage_sum_us\":%.3f}",
                averaged.stage_sum_us());
  json += buffer;
  emit_json_line(std::move(json));
}

inline const std::array<rekey::StrategyKind, 3> kPaperStrategies = {
    rekey::StrategyKind::kUserOriented, rekey::StrategyKind::kKeyOriented,
    rekey::StrategyKind::kGroupOriented};

}  // namespace keygraphs::bench

// Shared helpers for the paper-reproduction benchmark binaries.
//
// Scale knobs come from the environment so `for b in build/bench/*; do $b;
// done` finishes in minutes while `KG_REQUESTS=1000 KG_CLIENT_SIZE=8192 ...`
// reproduces the paper's exact scale:
//   KG_REQUESTS      churn requests per experiment (paper: 1000)
//   KG_SEEDS         request sequences averaged per data point (paper: 3)
//   KG_GROUP_SIZE    initial group size for fixed-size tables (paper: 8192)
//   KG_CLIENT_SIZE   initial size for client-attached runs (paper: 8192)
#pragma once

#include <array>
#include <cstdlib>
#include <string>

#include "sim/experiment.h"
#include "sim/table.h"

namespace keygraphs::bench {

inline std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

inline std::size_t requests() { return env_size("KG_REQUESTS", 1000); }
inline std::size_t seeds() { return env_size("KG_SEEDS", 3); }
inline std::size_t group_size() { return env_size("KG_GROUP_SIZE", 8192); }
inline std::size_t client_size() { return env_size("KG_CLIENT_SIZE", 2048); }

/// Runs one experiment configuration for each seed and averages the server
/// summaries (the paper averages three request sequences per point).
struct AveragedResult {
  sim::ExperimentResult result;  // client fields from the last seed
  double join_ms = 0.0;
  double leave_ms = 0.0;
  double all_ms = 0.0;
};

inline AveragedResult run_averaged(sim::ExperimentConfig config,
                                   std::size_t seed_count) {
  AveragedResult averaged;
  for (std::size_t seed = 1; seed <= seed_count; ++seed) {
    config.seed = seed;
    averaged.result = sim::run_experiment(config);
    averaged.join_ms += averaged.result.join.avg_processing_ms;
    averaged.leave_ms += averaged.result.leave.avg_processing_ms;
    averaged.all_ms += averaged.result.all.avg_processing_ms;
  }
  const auto n = static_cast<double>(seed_count);
  averaged.join_ms /= n;
  averaged.leave_ms /= n;
  averaged.all_ms /= n;
  return averaged;
}

inline const char* strategy_label(rekey::StrategyKind kind) {
  switch (kind) {
    case rekey::StrategyKind::kUserOriented:
      return "user";
    case rekey::StrategyKind::kKeyOriented:
      return "key";
    case rekey::StrategyKind::kGroupOriented:
      return "group";
    case rekey::StrategyKind::kHybrid:
      return "hybrid";
  }
  return "?";
}

inline const std::array<rekey::StrategyKind, 3> kPaperStrategies = {
    rekey::StrategyKind::kUserOriented, rekey::StrategyKind::kKeyOriented,
    rekey::StrategyKind::kGroupOriented};

}  // namespace keygraphs::bench

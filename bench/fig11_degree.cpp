// Figure 11 — Server processing time vs key tree degree (initial group
// size 8192), all three strategies, encryption-only and full-signature
// configurations. The paper's observations to reproduce: the optimal degree
// is around 4; group-oriented is fastest on the server, user-oriented
// slowest; signing adds an order of magnitude.
#include <cstdio>

#include "bench_util.h"

namespace keygraphs {
namespace {

void run_series(bool signed_mode, std::size_t n) {
  std::printf("\nFigure 11 (%s): server time per request (ms) vs degree, "
              "n=%zu\n",
              signed_mode ? "DES + MD5 + RSA-512 batch signature"
                          : "DES encryption only",
              n);
  sim::TablePrinter table({{"degree", 7},
                           {"user ms", 9},
                           {"key ms", 9},
                           {"group ms", 9}});
  table.header();
  for (int degree : {2, 3, 4, 6, 8, 12, 16}) {
    std::vector<std::string> row{
        sim::TablePrinter::num(static_cast<std::size_t>(degree))};
    for (rekey::StrategyKind strategy : bench::kPaperStrategies) {
      sim::ExperimentConfig config;
      config.initial_size = n;
      config.requests = bench::requests();
      config.degree = degree;
      config.strategy = strategy;
      if (signed_mode) {
        config.suite = crypto::CryptoSuite::paper_signed();
        config.signing = rekey::SigningMode::kBatch;
      }
      const bench::AveragedResult averaged =
          bench::run_averaged(config, bench::seeds());
      row.push_back(sim::TablePrinter::num(averaged.all_ms, 4));
      bench::emit_point_json("fig11", signed_mode, "degree",
                             static_cast<std::size_t>(degree), strategy,
                             averaged);
    }
    table.row(row);
  }
}

}  // namespace
}  // namespace keygraphs

int main() {
  const std::size_t n = keygraphs::bench::group_size();
  std::printf("Figure 11: %zu requests x %zu seeds per point\n",
              keygraphs::bench::requests(), keygraphs::bench::seeds());
  keygraphs::run_series(false, n);
  keygraphs::run_series(true, n);
  return 0;
}

// Ablation: sharding the key tree for large-group churn.
//
// Sweeps the shard count K over group sizes n, measuring the three costs
// the sharded server changes:
//   - preload: arena build time for the initial membership
//   - join/leave latency: single-caller, includes the root epoch stitch
//   - sealed rekeys/sec with one writer thread per shard, showing the
//     per-shard plan/seal pipelines overlapping
// At K=1 the server is byte-identical to the unsharded GroupKeyServer, so
// the K=1 row is the baseline the other rows are judged against.
//
// Scale knobs:
//   KG_SHARD_MAX_N   largest group size   (default 65536; paper scale 1<<20)
//   KG_SHARD_OPS     churn ops per point  (default 256)
//   KG_SHARD_MAX_K   largest shard count  (default 16; CI smoke uses 2)
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "server/sharded_server.h"
#include "sim/table.h"
#include "transport/transport.h"

namespace keygraphs {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_us(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

struct Point {
  double preload_ms = 0.0;
  double join_us = 0.0;
  double leave_us = 0.0;
  double rekeys_per_s = 0.0;
};

Point run(std::size_t shards, std::size_t n, std::size_t ops) {
  transport::NullTransport transport;
  server::ShardedServerConfig config;
  config.shards = shards;
  config.base.rng_seed = 1998;
  server::ShardedGroupKeyServer server(config, transport);

  Point point;
  std::vector<UserId> initial;
  initial.reserve(n);
  for (UserId user = 1; user <= n; ++user) initial.push_back(user);
  const auto preload_start = Clock::now();
  server.preload(initial);
  point.preload_ms = elapsed_us(preload_start) / 1000.0;

  // Single-caller latency: alternate joins of fresh ids with leaves of
  // preloaded ids, so the tree stays near size n throughout.
  UserId next_join = static_cast<UserId>(n) + 1;
  UserId next_leave = 1;
  const std::size_t half = ops / 2;
  auto start = Clock::now();
  for (std::size_t i = 0; i < half; ++i) server.join(next_join++);
  point.join_us = elapsed_us(start) / static_cast<double>(half);
  start = Clock::now();
  for (std::size_t i = 0; i < half; ++i) server.leave(next_leave++);
  point.leave_us = elapsed_us(start) / static_cast<double>(half);

  // Concurrent throughput: one writer per shard, each churning a disjoint
  // id range. Lanes plan and seal in parallel; only the epoch stitch and
  // ticket-ordered dispatch serialise.
  const std::size_t per_writer = ops / shards;
  std::vector<std::thread> writers;
  writers.reserve(shards);
  start = Clock::now();
  for (std::size_t w = 0; w < shards; ++w) {
    writers.emplace_back([&server, n, ops, per_writer, w] {
      UserId join_id = static_cast<UserId>(n + ops + 1 + w * per_writer);
      UserId leave_id = static_cast<UserId>(n / 2 + 1 + w * per_writer);
      for (std::size_t i = 0; i < per_writer; ++i) {
        if (i % 2 == 0) {
          server.join(join_id++);
        } else {
          server.leave(leave_id++);
        }
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  const double concurrent_us = elapsed_us(start);
  point.rekeys_per_s =
      static_cast<double>(per_writer * shards) / (concurrent_us / 1e6);
  return point;
}

void main_impl() {
  const std::size_t max_n = bench::env_size("KG_SHARD_MAX_N", 65536);
  const std::size_t ops = bench::env_size("KG_SHARD_OPS", 256);
  const std::size_t max_k = bench::env_size("KG_SHARD_MAX_K", 16);
  bench::emit_header_json(
      "ablation_sharding",
      {{"max_shards", max_k}, {"writers_per_shard", 1}});
  std::printf("Ablation: sharded key tree, K writer threads (one per "
              "shard), %zu churn ops per point\n", ops);
  std::printf("K=1 is wire-identical to the unsharded server; rekeys/s is "
              "the concurrent-writer sealed throughput\n\n");
  sim::TablePrinter table({{"shards", 7},
                           {"n", 9},
                           {"preload ms", 11},
                           {"join us", 9},
                           {"leave us", 9},
                           {"rekeys/s", 10}});
  table.header();
  for (std::size_t n = 4096; n <= max_n; n *= 4) {
    for (const std::size_t shards : {1u, 2u, 4u, 8u, 16u}) {
      if (shards > max_k) break;
      const Point point = run(shards, n, ops);
      table.row({sim::TablePrinter::num(shards),
                 sim::TablePrinter::num(n),
                 sim::TablePrinter::num(point.preload_ms, 1),
                 sim::TablePrinter::num(point.join_us, 1),
                 sim::TablePrinter::num(point.leave_us, 1),
                 sim::TablePrinter::num(point.rekeys_per_s, 0)});
      char buffer[256];
      std::snprintf(buffer, sizeof(buffer),
                    "{\"bench\":\"ablation_sharding\",\"shards\":%zu,"
                    "\"n\":%zu,\"preload_ms\":%.3f,\"join_us\":%.3f,"
                    "\"leave_us\":%.3f,\"rekeys_per_s\":%.0f}",
                    shards, n, point.preload_ms, point.join_us,
                    point.leave_us, point.rekeys_per_s);
      bench::emit_json_line(buffer);
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::main_impl();
  return 0;
}

// Table 5 — Number and size of rekey messages, with encryption and batch
// signature, SENT BY THE SERVER per join/leave, for key tree degrees 4, 8
// and 16 (paper: initial group size 8192).
// Expected shape: group-oriented sends exactly 1 message whose leave size
// grows with d; user/key send h resp. ~(d-1)(h-1)+1 smaller messages.
#include <cstdio>

#include "bench_util.h"

namespace keygraphs {
namespace {

void run() {
  const std::size_t n = bench::env_size("KG_GROUP_SIZE", 8192);
  const std::size_t requests = bench::requests();
  std::printf("Table 5: rekey messages sent by the server "
              "(DES/MD5/RSA-512, batch signing)\n");
  std::printf("n=%zu, %zu requests, 1:1 join/leave\n\n", n, requests);

  sim::TablePrinter table({{"degree", 7},
                           {"strategy", 9},
                           {"join sz ave", 12},
                           {"min", 6},
                           {"max", 6},
                           {"leave sz ave", 13},
                           {"min", 6},
                           {"max", 6},
                           {"#msg join", 10},
                           {"#msg leave", 11}});
  table.header();

  for (int degree : {4, 8, 16}) {
    for (rekey::StrategyKind strategy : bench::kPaperStrategies) {
      sim::ExperimentConfig config;
      config.initial_size = n;
      config.requests = requests;
      config.degree = degree;
      config.strategy = strategy;
      config.suite = crypto::CryptoSuite::paper_signed();
      config.signing = rekey::SigningMode::kBatch;
      const sim::ExperimentResult result = sim::run_experiment(config);
      using P = sim::TablePrinter;
      table.row({P::num(static_cast<std::size_t>(degree)),
                 bench::strategy_label(strategy),
                 P::num(result.join.avg_message_bytes, 1),
                 P::num(result.join.min_message_bytes),
                 P::num(result.join.max_message_bytes),
                 P::num(result.leave.avg_message_bytes, 1),
                 P::num(result.leave.min_message_bytes),
                 P::num(result.leave.max_message_bytes),
                 P::num(result.join.avg_messages, 2),
                 P::num(result.leave.avg_messages, 2)});
    }
    table.rule();
  }
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::run();
  return 0;
}

// Table 1 — Number of keys held by the server and by each user, for star,
// tree (degree 4) and complete key graphs. Measured from live structures,
// printed beside the paper's closed forms.
#include <cstdio>

#include "analysis/cost_model.h"
#include "bench_util.h"
#include "keygraph/complete_graph.h"
#include "keygraph/star_graph.h"

namespace keygraphs {
namespace {

void run() {
  using bench::env_size;
  std::printf("Table 1: number of keys (server total / per user)\n");
  std::printf("paper: star n+1 / 2;  tree d/(d-1)*n / h;  complete 2^n-1 / "
              "2^(n-1)\n\n");
  sim::TablePrinter table({{"class", 10},
                           {"n", 8},
                           {"total meas", 12},
                           {"total paper", 12},
                           {"per-user meas", 14},
                           {"per-user paper", 15}});
  table.header();

  crypto::SecureRandom rng(1);
  for (std::size_t n : {64u, 256u, 1024u,
                        static_cast<unsigned>(env_size("KG_GROUP_SIZE", 4096))}) {
    StarGraph star(8, rng);
    for (UserId user = 1; user <= n; ++user) {
      star.join(user, rng.bytes(8));
    }
    table.row({"star", sim::TablePrinter::num(n),
               sim::TablePrinter::num(star.key_count()),
               sim::TablePrinter::num(analysis::star_key_counts(n).total_keys,
                                      0),
               sim::TablePrinter::num(star.keyset(1).size()),
               sim::TablePrinter::num(
                   analysis::star_key_counts(n).keys_per_user, 0)});
  }

  for (std::size_t n : {64u, 256u, 1024u,
                        static_cast<unsigned>(env_size("KG_GROUP_SIZE", 4096))}) {
    KeyTree tree(4, 8, rng);
    for (UserId user = 1; user <= n; ++user) {
      tree.join(user, rng.bytes(8));
    }
    double max_keys = 0;
    for (UserId user : tree.users()) {
      max_keys = std::max(max_keys,
                          static_cast<double>(tree.keyset(user).size()));
    }
    const analysis::KeyCounts paper = analysis::tree_key_counts(n, 4);
    table.row({"tree d=4", sim::TablePrinter::num(n),
               sim::TablePrinter::num(tree.key_count()),
               sim::TablePrinter::num(paper.total_keys, 0),
               sim::TablePrinter::num(max_keys, 0),
               sim::TablePrinter::num(paper.keys_per_user, 1)});
  }

  for (std::size_t n : {4u, 8u, 12u}) {
    CompleteGraph complete(crypto::CipherAlgorithm::kDes, rng);
    for (UserId user = 1; user <= n; ++user) complete.join(user);
    const analysis::KeyCounts paper = analysis::complete_key_counts(n);
    table.row({"complete", sim::TablePrinter::num(n),
               sim::TablePrinter::num(complete.key_count()),
               sim::TablePrinter::num(paper.total_keys, 0),
               sim::TablePrinter::num(complete.keyset(1).size()),
               sim::TablePrinter::num(paper.keys_per_user, 0)});
  }
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::run();
  return 0;
}

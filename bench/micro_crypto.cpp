// Microbenchmarks of the crypto substrate (google-benchmark): the building
// blocks whose relative costs explain the paper's Table 4 and Figure 11 —
// a DES key encryption is microseconds while an RSA-512 signature is
// hundreds of microseconds, which is why batch signing wins and why the
// server's time is signature-bound whenever signing is enabled.
//
// After the google-benchmark tables, main() emits one JSON line per block
// primitive (blocks/sec and schedule expansions/sec, measured over a
// KG_CRYPTO_MS window, default 200 ms) to $KG_BENCH_JSON or stdout, so the
// kernel numbers land in the same stream the table/figure benches use.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench_util.h"
#include "client/client.h"
#include "crypto/aes.h"
#include "crypto/aes_aesni.h"
#include "crypto/cbc.h"
#include "crypto/cpu_features.h"
#include "crypto/des.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "crypto/suite.h"
#include "merkle/batch_signer.h"
#include "rekey/schedule_cache.h"

namespace keygraphs::crypto {
namespace {

void BM_DesBlock(benchmark::State& state) {
  SecureRandom rng(1);
  const Des des(rng.bytes(8));
  Bytes block = rng.bytes(8);
  for (auto _ : state) {
    des.encrypt_block(block.data(), block.data());
    benchmark::DoNotOptimize(block.data());
  }
}
BENCHMARK(BM_DesBlock);

void BM_AesBlock(benchmark::State& state) {
  SecureRandom rng(2);
  const Aes128 aes(rng.bytes(16));
  Bytes block = rng.bytes(16);
  for (auto _ : state) {
    aes.encrypt_block(block.data(), block.data());
    benchmark::DoNotOptimize(block.data());
  }
}
BENCHMARK(BM_AesBlock);

void BM_AesNiBlock(benchmark::State& state) {
  if (!Aes128Ni::supported()) {
    state.SkipWithError("AES-NI not available on this host");
    return;
  }
  SecureRandom rng(2);
  const Aes128Ni aes(rng.bytes(16));
  Bytes block = rng.bytes(16);
  for (auto _ : state) {
    aes.encrypt_block(block.data(), block.data());
    benchmark::DoNotOptimize(block.data());
  }
}
BENCHMARK(BM_AesNiBlock);

void BM_CbcKeyWrap(benchmark::State& state) {
  // One rekey payload item: CBC-encrypt one 8-byte key (incl. key schedule,
  // the per-wrap cost the server pays 2(h-1) times per join).
  SecureRandom rng(3);
  const Bytes wrapping_key = rng.bytes(8);
  const Bytes payload = rng.bytes(8);
  for (auto _ : state) {
    const CbcCipher cbc(std::make_shared<Des>(wrapping_key));
    benchmark::DoNotOptimize(cbc.encrypt(payload, rng));
  }
}
BENCHMARK(BM_CbcKeyWrap);

void BM_CbcKeyWrapCached(benchmark::State& state) {
  // The same wrap served from the schedule cache: what the executor pays
  // once the wrapping key's expansion is resident (the common case after
  // plan-target warming).
  SecureRandom rng(3);
  const Bytes wrapping_key = rng.bytes(8);
  const Bytes payload = rng.bytes(8);
  rekey::ScheduleCache cache(8);
  const KeyRef ref{1, 1};
  for (auto _ : state) {
    const CbcCipher cbc(cache.get(CipherAlgorithm::kDes, ref, wrapping_key));
    benchmark::DoNotOptimize(cbc.encrypt(payload, rng));
  }
}
BENCHMARK(BM_CbcKeyWrapCached);

void BM_Digest(benchmark::State& state, DigestAlgorithm algorithm) {
  SecureRandom rng(4);
  const Bytes message = rng.bytes(512);  // a typical rekey message body
  auto digest = make_digest(algorithm);
  for (auto _ : state) {
    digest->update(message);
    benchmark::DoNotOptimize(digest->finish());
  }
}
BENCHMARK_CAPTURE(BM_Digest, md5, DigestAlgorithm::kMd5);
BENCHMARK_CAPTURE(BM_Digest, sha1, DigestAlgorithm::kSha1);
BENCHMARK_CAPTURE(BM_Digest, sha256, DigestAlgorithm::kSha256);

void BM_RsaSign(benchmark::State& state) {
  SecureRandom rng(5);
  const auto key = RsaPrivateKey::generate(
      rng, static_cast<std::size_t>(state.range(0)));
  const Bytes message = rng.bytes(256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign(DigestAlgorithm::kMd5, message));
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(768)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMicrosecond);

void BM_RsaVerify(benchmark::State& state) {
  SecureRandom rng(6);
  const auto key = RsaPrivateKey::generate(
      rng, static_cast<std::size_t>(state.range(0)));
  const Bytes message = rng.bytes(256);
  const Bytes signature = key.sign(DigestAlgorithm::kMd5, message);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        key.public_key().verify(DigestAlgorithm::kMd5, message, signature));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_BatchSign(benchmark::State& state) {
  // Section 4's headline: signing m messages with one RSA operation. At
  // m=19 (a degree-4 leave at n=8192, user/key-oriented), batch signing is
  // ~m times cheaper than per-message signing.
  SecureRandom rng(7);
  const auto key = RsaPrivateKey::generate(rng, 512);
  std::vector<Bytes> messages;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    messages.push_back(rng.bytes(300));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        merkle::batch_sign(key, DigestAlgorithm::kMd5, messages));
  }
}
BENCHMARK(BM_BatchSign)->Arg(1)->Arg(7)->Arg(19)->Arg(47)
    ->Unit(benchmark::kMicrosecond);

void BM_ChaChaDrbg(benchmark::State& state) {
  SecureRandom rng(8);
  Bytes buffer(64);
  for (auto _ : state) {
    rng.fill(buffer.data(), buffer.size());
    benchmark::DoNotOptimize(buffer.data());
  }
}
BENCHMARK(BM_ChaChaDrbg);

void BM_ClientHandleRekey(benchmark::State& state) {
  // The client-side cost of one group-oriented leave message (parse +
  // one decryption), the unit behind Table 6's client-side comparison.
  SecureRandom rng(9);
  client::ClientConfig config;
  config.user = 1;
  config.suite = CryptoSuite::paper_plain();
  config.root = 100;
  config.verify = false;
  config.rng_seed = 10;
  client::GroupClient client(config, nullptr);
  const SymmetricKey individual{individual_key_id(1), 1, rng.bytes(8)};
  client.install_individual_key(individual);

  rekey::RekeyEncryptor encryptor(CipherAlgorithm::kDes, rng);
  rekey::RekeyMessage message;
  message.epoch = 2;
  const SymmetricKey group{100, 2, rng.bytes(8)};
  message.blobs.push_back(encryptor.wrap(individual, std::span(&group, 1)));
  for (int i = 0; i < 11; ++i) {  // blobs for other subtrees
    const SymmetricKey other{200 + static_cast<KeyId>(i), 1, rng.bytes(8)};
    const SymmetricKey target{300 + static_cast<KeyId>(i), 1, rng.bytes(8)};
    message.blobs.push_back(encryptor.wrap(other, std::span(&target, 1)));
  }
  const rekey::RekeySealer sealer(rekey::SigningMode::kNone,
                                  DigestAlgorithm::kNone, nullptr);
  const Bytes wire = sealer.seal(std::span(&message, 1))[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.handle_rekey(wire));
  }
}
BENCHMARK(BM_ClientHandleRekey);

/// Encrypt-blocks-per-second over a fixed wall-clock window.
double blocks_per_sec(const BlockCipher& cipher, double window_ms) {
  SecureRandom rng(20);
  Bytes block = rng.bytes(cipher.block_size());
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration<double, std::milli>(
                                    window_ms);
  std::uint64_t count = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 1024; ++i) {
      cipher.encrypt_block(block.data(), block.data());
    }
    count += 1024;
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  benchmark::DoNotOptimize(block.data());
  return static_cast<double>(count) / elapsed.count();
}

/// Key-schedule expansions per second (cipher construction from raw key).
double expansions_per_sec(CipherAlgorithm algorithm, double window_ms) {
  SecureRandom rng(21);
  const Bytes key = rng.bytes(cipher_key_size(algorithm));
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration<double, std::milli>(
                                    window_ms);
  std::uint64_t count = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(make_cipher(algorithm, key));
    }
    count += 64;
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return static_cast<double>(count) / elapsed.count();
}

/// CBC blocks per second through the fused multi-stream kernel: 8
/// independent messages advancing in lockstep, the shape the executor's
/// batched seal presents.
double multi_stream_blocks_per_sec(const Aes128Ni& cipher, double window_ms) {
  SecureRandom rng(23);
  constexpr std::size_t kMessage = 1024 * 16;  // 1024 blocks per stream
  const Bytes plaintext = rng.bytes(kMessage * kAesNiMaxStreams);
  const Bytes iv = rng.bytes(16 * kAesNiMaxStreams);
  Bytes out((kMessage + 32) * kAesNiMaxStreams);
  AesNiCbcStream streams[kAesNiMaxStreams];
  for (std::size_t s = 0; s < kAesNiMaxStreams; ++s) {
    streams[s] = {&cipher, plaintext.data() + s * kMessage, kMessage,
                  iv.data() + s * 16, out.data() + s * (kMessage + 32)};
  }
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::duration<double, std::milli>(
                                    window_ms);
  std::uint64_t count = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    aesni_cbc_encrypt_streams(streams, kAesNiMaxStreams);
    count += (kMessage / 16 + 1) * kAesNiMaxStreams;
  }
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  benchmark::DoNotOptimize(out.data());
  return static_cast<double>(count) / elapsed.count();
}

void emit_primitive_json() {
  bench::emit_header_json("micro_crypto");
  const double window_ms =
      static_cast<double>(bench::env_size("KG_CRYPTO_MS", 200));
  SecureRandom rng(22);
  for (const CipherAlgorithm algorithm :
       {CipherAlgorithm::kDes, CipherAlgorithm::kDes3,
        CipherAlgorithm::kAes128}) {
    const auto cipher =
        make_cipher(algorithm, rng.bytes(cipher_key_size(algorithm)));
    char buffer[256];
    std::snprintf(
        buffer, sizeof(buffer),
        "{\"bench\":\"micro_crypto\",\"primitive\":\"%s\","
        "\"block_bytes\":%zu,\"blocks_per_sec\":%.0f,"
        "\"schedule_expansions_per_sec\":%.0f}",
        cipher_name(algorithm).c_str(), cipher->block_size(),
        blocks_per_sec(*cipher, window_ms),
        expansions_per_sec(algorithm, window_ms));
    bench::emit_json_line(buffer);
  }
  // Per-kernel AES lines (explicit construction, independent of the
  // dispatch choice), so the hardware-vs-table speedup is one grep away.
  const Bytes aes_key = rng.bytes(16);
  const Aes128 table(aes_key);
  char buffer[256];
  std::snprintf(buffer, sizeof(buffer),
                "{\"bench\":\"micro_crypto\",\"primitive\":\"AES-128-table\","
                "\"block_bytes\":16,\"blocks_per_sec\":%.0f}",
                blocks_per_sec(table, window_ms));
  bench::emit_json_line(buffer);
  if (Aes128Ni::supported()) {
    const Aes128Ni ni(aes_key);
    std::snprintf(buffer, sizeof(buffer),
                  "{\"bench\":\"micro_crypto\",\"primitive\":\"AES-128-ni\","
                  "\"block_bytes\":16,\"blocks_per_sec\":%.0f,"
                  "\"multi_stream_blocks_per_sec\":%.0f}",
                  blocks_per_sec(ni, window_ms),
                  multi_stream_blocks_per_sec(ni, window_ms));
    bench::emit_json_line(buffer);
  }
}

}  // namespace
}  // namespace keygraphs::crypto

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  keygraphs::crypto::emit_primitive_json();
  return 0;
}

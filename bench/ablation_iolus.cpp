// Ablation — key graphs vs Iolus (paper Section 6), quantified.
//
// Both systems turn the O(n) leave problem into a hierarchy problem; they
// differ in WHERE the "1 affects n" work lands. The key tree pays
// ~d*log_d(n) encryptions per membership change and nothing per data
// message; Iolus pays ~subgroup-size per change and ~#agents re-wraps per
// confidential data message. This bench sweeps the traffic mix (data
// messages per membership change) and reports total crypto operations per
// event for both, locating the crossover the paper reasons about
// qualitatively. It also reports the trust and state footprint.
#include <cstdio>

#include "bench_util.h"
#include "iolus/iolus.h"
#include "sim/workload.h"

namespace keygraphs {
namespace {

struct SystemCost {
  double ops_per_event = 0;  // key encryptions+decryptions per event
};

SystemCost run_lkh(std::size_t n, std::size_t churn, std::size_t data,
                   std::uint64_t seed) {
  server::ServerConfig config;
  config.tree_degree = 4;
  config.strategy = rekey::StrategyKind::kGroupOriented;
  config.rng_seed = seed;
  transport::NullTransport transport;
  server::GroupKeyServer server(config, transport);
  sim::WorkloadGenerator workload(seed);
  for (const sim::Request& request : workload.initial_joins(n)) {
    server.join(request.user);
  }
  server.stats().reset();
  for (const sim::Request& request : workload.churn(churn, 0.5)) {
    if (request.kind == sim::RequestKind::kJoin) {
      server.join(request.user);
    } else {
      server.leave(request.user);
    }
  }
  const server::Summary all = server.stats().summarize_all();
  // Data messages under a shared group key: one payload encryption by the
  // sender, no server/agent work. Count it for fairness.
  const double total = all.avg_encryptions * static_cast<double>(churn) +
                       static_cast<double>(data);
  return {total / static_cast<double>(churn + data)};
}

SystemCost run_iolus(std::size_t n, std::size_t agents, std::size_t churn,
                     std::size_t data, std::uint64_t seed) {
  iolus::IolusNetwork network(
      iolus::IolusConfig{agents, crypto::CipherAlgorithm::kDes, seed});
  sim::WorkloadGenerator workload(seed);
  for (const sim::Request& request : workload.initial_joins(n)) {
    network.join(request.user);
  }
  double total = 0;
  std::size_t events = 0;
  const std::vector<sim::Request> requests = workload.churn(churn, 0.5);
  const std::size_t data_per_change = data / std::max<std::size_t>(churn, 1);
  for (const sim::Request& request : requests) {
    iolus::IolusCost cost;
    if (request.kind == sim::RequestKind::kJoin) {
      cost = network.join(request.user);
    } else {
      cost = network.leave(request.user);
    }
    total += static_cast<double>(cost.key_encryptions);
    ++events;
    for (std::size_t i = 0; i < data_per_change; ++i) {
      iolus::IolusCost data_cost;
      (void)network.send(request.kind == sim::RequestKind::kJoin
                             ? request.user
                             : 1,
                         bytes_of("payload"), &data_cost);
      total +=
          static_cast<double>(data_cost.key_encryptions +
                              data_cost.key_decryptions);
      ++events;
    }
  }
  return {total / static_cast<double>(events)};
}

void run() {
  const std::size_t n = bench::env_size("KG_GROUP_SIZE", 1024);
  const std::size_t churn = std::min<std::size_t>(bench::requests(), 400);
  std::printf("Ablation: key tree (d=4) vs Iolus, n=%zu, %zu membership "
              "changes\n", n, churn);
  std::printf("cost = key encryptions+decryptions per event "
              "(event = one membership change or one data message)\n");
  std::printf("Iolus leave costs ~n/agents, but every data message costs "
              "~#agents re-wraps;\nLKH pays ~d*log_d(n) per change and "
              "1 per message. Crossover expected only for\nmany agents "
              "(cheap local rekeys) and churn-dominated traffic.\n\n");
  sim::TablePrinter table({{"agents", 7},
                           {"data:churn", 11},
                           {"LKH ops/event", 14},
                           {"Iolus ops/event", 16},
                           {"winner", 8}});
  table.header();
  for (std::size_t agents : {16u, 64u, 128u}) {
    for (std::size_t ratio : {0u, 1u, 4u, 16u}) {
      const std::size_t data = churn * ratio;
      const SystemCost lkh = run_lkh(n, churn, data, 11);
      const SystemCost iolus_cost = run_iolus(n, agents, churn, data, 11);
      table.row({sim::TablePrinter::num(agents),
                 sim::TablePrinter::num(ratio),
                 sim::TablePrinter::num(lkh.ops_per_event, 2),
                 sim::TablePrinter::num(iolus_cost.ops_per_event, 2),
                 lkh.ops_per_event <= iolus_cost.ops_per_event ? "LKH"
                                                               : "Iolus"});
    }
    table.rule();
  }
  std::printf("\ntrust footprint: LKH = 1 trusted key server; Iolus = "
              "every agent + the GSC\n");
  std::printf("(Sec. 6: Iolus shifts the '1 affects n' work from rekey "
              "time to data-send time)\n");
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::bench::emit_header_json("ablation_iolus");
  keygraphs::run();
  return 0;
}

// Ablation — the "full and balanced" heuristic under sustained churn
// (paper Section 5: "the server employs a heuristic that attempts to build
// and maintain a key tree that is full and balanced ... it is unlikely that
// the tree is truly full and balanced at any time").
// We measure how far the tree drifts from the balanced optimum over long
// runs with different join:leave mixes, and how that drift shows up in the
// server's per-operation cost.
#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "sim/workload.h"

namespace keygraphs {
namespace {

void run_mix(double join_fraction, const char* label) {
  const int degree = 4;
  server::ServerConfig config;
  config.tree_degree = degree;
  config.strategy = rekey::StrategyKind::kKeyOriented;
  config.rng_seed = 97;
  transport::NullTransport transport;
  server::GroupKeyServer server(config, transport);
  sim::WorkloadGenerator workload(5);
  for (const sim::Request& request : workload.initial_joins(1024)) {
    server.join(request.user);
  }

  std::printf("\nmix %s (join fraction %.2f), degree %d, start n=1024\n",
              label, join_fraction, degree);
  sim::TablePrinter table({{"ops", 8},
                           {"n", 7},
                           {"height", 7},
                           {"optimal", 8},
                           {"excess", 7},
                           {"enc/op", 8}});
  table.header();

  const std::size_t rounds = 8;
  const std::size_t per_round =
      std::max<std::size_t>(bench::requests() / 2, 200);
  for (std::size_t round = 1; round <= rounds; ++round) {
    server.stats().reset();
    for (const sim::Request& request :
         workload.churn(per_round, join_fraction)) {
      if (request.kind == sim::RequestKind::kJoin) {
        server.join(request.user);
      } else {
        server.leave(request.user);
      }
    }
    server.tree().check_invariants();
    const std::size_t n = server.tree().user_count();
    const double optimal =
        n > 1 ? std::log(static_cast<double>(n)) / std::log(degree) : 0.0;
    const double height = static_cast<double>(server.tree().height());
    using P = sim::TablePrinter;
    table.row({P::num(round * per_round), P::num(n), P::num(height, 0),
               P::num(optimal, 2), P::num(height - optimal, 2),
               P::num(server.stats().summarize_all().avg_encryptions, 1)});
  }
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::bench::emit_header_json("ablation_balance");
  std::printf("Ablation: height drift of the balance heuristic under "
              "churn\n");
  keygraphs::run_mix(0.5, "1:1 (paper)");
  keygraphs::run_mix(0.7, "join-heavy 7:3");
  keygraphs::run_mix(0.3, "leave-heavy 3:7");
  return 0;
}

// Table 6 — Number and size of rekey messages RECEIVED BY A CLIENT per
// join/leave, degrees 4, 8 and 16. Runs real clients on the in-process
// network. Expected shape (paper, n=8192): every client receives exactly
// one message per request in all strategies; user-oriented messages are
// smallest, group-oriented leave messages largest (growing with d).
#include <cstdio>

#include "bench_util.h"

namespace keygraphs {
namespace {

void run() {
  const std::size_t n = bench::client_size();
  const std::size_t requests = std::min<std::size_t>(bench::requests(), 300);
  std::printf("Table 6: rekey messages received by a client "
              "(DES/MD5/RSA-512, batch signing)\n");
  std::printf("n=%zu, %zu requests, 1:1 join/leave "
              "(KG_CLIENT_SIZE=8192 for paper scale)\n\n", n, requests);

  sim::TablePrinter table({{"degree", 7},
                           {"strategy", 9},
                           {"join size ave", 14},
                           {"leave size ave", 15},
                           {"msgs/request", 13}});
  table.header();

  for (int degree : {4, 8, 16}) {
    for (rekey::StrategyKind strategy : bench::kPaperStrategies) {
      sim::ExperimentConfig config;
      config.initial_size = n;
      config.requests = requests;
      config.degree = degree;
      config.strategy = strategy;
      config.suite = crypto::CryptoSuite::paper_signed();
      config.signing = rekey::SigningMode::kBatch;
      config.with_clients = true;
      const sim::ExperimentResult result = sim::run_experiment(config);
      using P = sim::TablePrinter;
      table.row({P::num(static_cast<std::size_t>(degree)),
                 bench::strategy_label(strategy),
                 P::num(result.client_avg_join_message_bytes, 1),
                 P::num(result.client_avg_leave_message_bytes, 1),
                 P::num(result.client_avg_messages_per_request, 2)});
    }
    table.rule();
  }
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::run();
  return 0;
}

// Figure 12 — Average number of key changes by a client per join/leave
// request: (top) vs key tree degree, (bottom) vs initial group size. The
// paper's result to reproduce: the measured value is close to the analytic
// d/(d-1) and essentially independent of group size.
#include <cstdio>

#include "analysis/cost_model.h"
#include "bench_util.h"

namespace keygraphs {
namespace {

double measure(std::size_t n, int degree, std::size_t requests) {
  sim::ExperimentConfig config;
  config.initial_size = n;
  config.requests = requests;
  config.degree = degree;
  config.strategy = rekey::StrategyKind::kGroupOriented;
  config.with_clients = true;
  return sim::run_experiment(config).client_avg_key_changes;
}

void run() {
  const std::size_t n = bench::client_size();
  const std::size_t requests = std::min<std::size_t>(bench::requests(), 300);
  std::printf("Figure 12: average key changes by a client per request\n");
  std::printf("%zu requests per point, group-oriented rekeying\n\n",
              requests);

  std::printf("(top) vs key tree degree, n=%zu\n", n);
  sim::TablePrinter by_degree(
      {{"degree", 7}, {"measured", 10}, {"d/(d-1)", 9}});
  by_degree.header();
  for (int degree : {2, 3, 4, 6, 8, 12, 16}) {
    by_degree.row({sim::TablePrinter::num(static_cast<std::size_t>(degree)),
                   sim::TablePrinter::num(measure(n, degree, requests), 3),
                   sim::TablePrinter::num(
                       analysis::tree_avg_user_cost(degree), 3)});
  }

  std::printf("\n(bottom) vs initial group size, degree 4 "
              "(analytic d/(d-1) = %.3f)\n",
              analysis::tree_avg_user_cost(4));
  sim::TablePrinter by_size({{"n", 7}, {"measured", 10}});
  by_size.header();
  for (std::size_t size = 32; size <= n; size *= 2) {
    by_size.row({sim::TablePrinter::num(size),
                 sim::TablePrinter::num(measure(size, 4, requests), 3)});
  }
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::run();
  return 0;
}

// Ablation — hardware-speed sealing and kernel-efficient fan-out.
//
// Two questions, answered with the production pipeline at large n:
//   1. Sealing: how many rekey operations per second can the executor
//      seal, swept over AES kernel {table, aesni} x seal batch width
//      {1, 8}? The multi-buffer win only exists on the hardware kernel
//      (independent CBC streams interleave across AESENC latency), so the
//      sweep separates kernel speedup from batching speedup. A SHA-256
//      digest over every sealed wire byte is compared across all four
//      configurations — the sweep is also a byte-identity proof.
//   2. Fan-out: how many datagrams per second does one rekey broadcast
//      reach n registered UDP peers at, sendto-per-datagram vs gathered
//      sendmmsg, and how many syscalls did each need? The sendmmsg bound
//      is ceil(n / UdpSocket::kSendBatch) calls.
//
// Knobs: KG_HW_N group size (default 2^20), KG_HW_OPS pre-planned leave
// operations (default 64), KG_HW_MS per-config seal window in ms (default
// 500), KG_HW_RECEIVERS loopback receiver sockets the peers map onto
// round-robin (default 4). Emits one JSON line per result to
// $KG_BENCH_JSON; the header line carries the CPUID probe.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "crypto/cpu_features.h"
#include "crypto/random.h"
#include "crypto/sha256.h"
#include "keygraph/key_tree.h"
#include "rekey/codec.h"
#include "rekey/executor.h"
#include "rekey/message.h"
#include "rekey/plan.h"
#include "rekey/strategy.h"
#include "transport/udp.h"

namespace keygraphs {
namespace {

struct SealConfig {
  const char* kernel;  // "table" | "aesni"
  bool aesni;
  std::size_t batch;
};

/// Digest over every wire byte of every sealed message, in order: equal
/// digests mean byte-identical output.
Bytes wires_digest(rekey::RekeyExecutor& executor,
                   const std::vector<rekey::RekeyPlan>& plans,
                   const rekey::RekeySealer& sealer) {
  crypto::Sha256 digest;
  for (const rekey::RekeyPlan& plan : plans) {
    for (const rekey::SealedRekey& sealed : executor.seal(plan, sealer)) {
      digest.update(sealed.wire);
    }
  }
  return digest.finish();
}

void seal_section(KeyTree& tree, crypto::SecureRandom& rng,
                  std::vector<rekey::RekeyPlan>& plans_out) {
  const std::size_t ops = bench::env_size("KG_HW_OPS", 64);
  const double window_ms =
      static_cast<double>(bench::env_size("KG_HW_MS", 500));

  // Pre-plan `ops` group-oriented leaves once (planning consumes the RNG
  // stream; sealing is deterministic, so the same plan re-seals to the
  // same bytes and can be measured in a loop).
  const auto strategy = rekey::make_strategy(rekey::StrategyKind::kGroupOriented);
  const std::vector<UserId> members = tree.users();
  std::vector<rekey::RekeyPlan> plans;
  plans.reserve(ops);
  for (std::size_t i = 0; i < ops && i < members.size(); ++i) {
    const LeaveRecord record = tree.leave(members[i]);
    rekey::RekeyPlanner planner(crypto::CipherAlgorithm::kAes128, rng);
    std::vector<rekey::PlannedRekey> messages =
        strategy->plan_leave(record, planner);
    plans.push_back(planner.take(std::move(messages)));
  }

  const rekey::RekeySealer sealer(rekey::SigningMode::kNone,
                                  crypto::DigestAlgorithm::kNone, nullptr);
  std::vector<SealConfig> configs = {{"table", false, 1}, {"table", false, 8}};
  if (crypto::cpu_features().aesni_usable()) {
    configs.push_back({"aesni", true, 1});
    configs.push_back({"aesni", true, 8});
  } else {
    std::printf("(AES-NI unusable on this host: hardware rows skipped)\n");
  }

  std::printf("Sealing: group-oriented leave at n=%zu, AES-128, "
              "1 seal thread, %zu pre-planned ops\n\n",
              tree.user_count() + plans.size(), plans.size());
  sim::TablePrinter table({{"kernel", 7},
                           {"batch", 6},
                           {"rekeys/s", 10},
                           {"wraps/s", 10},
                           {"identical", 10}});
  table.header();

  Bytes reference_digest;
  for (const SealConfig& config : configs) {
    crypto::override_aesni_dispatch(config.aesni);
    rekey::RekeyExecutor executor(crypto::CipherAlgorithm::kAes128, 1,
                                  rekey::RekeyExecutor::kDefaultCacheCapacity,
                                  config.batch);
    // Identity pass (also warms the schedule cache so every config times
    // the same steady state).
    const Bytes digest = wires_digest(executor, plans, sealer);
    if (reference_digest.empty()) reference_digest = digest;
    const bool identical = digest == reference_digest;

    std::size_t wraps_per_pass = 0;
    for (const rekey::RekeyPlan& plan : plans) {
      wraps_per_pass += plan.ops.size();
    }
    const auto start = std::chrono::steady_clock::now();
    const auto deadline =
        start + std::chrono::duration<double, std::milli>(window_ms);
    std::uint64_t sealed_ops = 0;
    std::size_t next = 0;
    while (std::chrono::steady_clock::now() < deadline) {
      const auto sealed = executor.seal(plans[next], sealer);
      if (sealed.empty()) break;  // unreachable; keeps the seal observable
      next = (next + 1) % plans.size();
      ++sealed_ops;
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    const double rekeys_per_sec =
        static_cast<double>(sealed_ops) / elapsed.count();
    const double wraps_per_sec =
        rekeys_per_sec * (static_cast<double>(wraps_per_pass) /
                          static_cast<double>(plans.size()));
    table.row({config.kernel, sim::TablePrinter::num(config.batch),
               sim::TablePrinter::num(rekeys_per_sec, 0),
               sim::TablePrinter::num(wraps_per_sec, 0),
               identical ? "yes" : "NO"});
    char buffer[320];
    std::snprintf(buffer, sizeof(buffer),
                  "{\"bench\":\"ablation_hw_sealing\",\"section\":\"seal\","
                  "\"kernel\":\"%s\",\"seal_batch\":%zu,"
                  "\"sealed_rekeys_per_sec\":%.0f,\"wraps_per_sec\":%.0f,"
                  "\"wire_identical\":%s}",
                  config.kernel, config.batch, rekeys_per_sec, wraps_per_sec,
                  identical ? "true" : "false");
    bench::emit_json_line(buffer);
  }
  crypto::override_aesni_dispatch(std::nullopt);
  std::printf("\n");
  plans_out = std::move(plans);
}

void fanout_section(const std::vector<rekey::RekeyPlan>& plans,
                    rekey::RekeyExecutor& executor, std::size_t n) {
  const std::size_t receiver_count = bench::env_size("KG_HW_RECEIVERS", 4);

  // One real sealed rekey message, framed exactly as dispatch frames it.
  const rekey::RekeySealer sealer(rekey::SigningMode::kNone,
                                  crypto::DigestAlgorithm::kNone, nullptr);
  Bytes wire;
  if (!plans.empty()) {
    const auto sealed = executor.seal(plans.front(), sealer);
    if (!sealed.empty()) wire = sealed.front().wire;
  }
  const Bytes datagram =
      rekey::Datagram{rekey::MessageType::kRekey, wire, std::nullopt}.encode();

  // n peers round-robin onto a few live loopback sockets: every send has a
  // real bound destination (the kernel drops at the receive queue once the
  // rcvbuf fills, which is fine — send-side cost is what is measured).
  transport::UdpSocket socket;
  std::vector<transport::UdpSocket> receivers(receiver_count);
  transport::UdpServerTransport transport(socket);
  std::vector<UserId> all_users(n);
  for (std::size_t u = 0; u < n; ++u) {
    all_users[u] = static_cast<UserId>(u + 1);
    transport.register_user(all_users[u],
                            receivers[u % receiver_count].local_address());
  }
  const rekey::Recipient broadcast = rekey::Recipient::to_subgroup(1);
  const auto resolve = [&all_users] { return all_users; };

  std::printf("Fan-out: one %zu-byte rekey datagram to n=%zu UDP peers "
              "(%zu receiver sockets)\n\n",
              datagram.size(), n, receiver_count);
  sim::TablePrinter table({{"path", 9},
                           {"dgrams/s", 11},
                           {"syscalls", 9},
                           {"bound n/64", 11}});
  table.header();

  auto& registry = telemetry::Registry::global();
  const std::size_t bound =
      (n + transport::UdpSocket::kSendBatch - 1) /
      transport::UdpSocket::kSendBatch;
  for (const bool gather : {false, true}) {
    socket.set_sendmmsg(gather);
    const auto calls0 =
        registry.counter("transport.udp.sendmmsg_calls").value();
    const std::size_t sent0 = transport.datagrams_sent();
    const auto start = std::chrono::steady_clock::now();
    transport.deliver(broadcast, datagram, resolve);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    const std::size_t sent = transport.datagrams_sent() - sent0;
    const auto syscalls =
        gather ? registry.counter("transport.udp.sendmmsg_calls").value() -
                     calls0
               : static_cast<std::uint64_t>(sent);
    const double rate = static_cast<double>(sent) / elapsed.count();
    table.row({gather ? "sendmmsg" : "sendto", sim::TablePrinter::num(rate, 0),
               sim::TablePrinter::num(syscalls),
               sim::TablePrinter::num(bound)});
    char buffer[320];
    std::snprintf(buffer, sizeof(buffer),
                  "{\"bench\":\"ablation_hw_sealing\","
                  "\"section\":\"fanout\",\"path\":\"%s\",\"n\":%zu,"
                  "\"datagrams_per_sec\":%.0f,\"syscalls\":%llu,"
                  "\"syscall_bound\":%zu,\"send_failures\":%zu}",
                  gather ? "sendmmsg" : "sendto", n, rate,
                  static_cast<unsigned long long>(syscalls), bound,
                  transport.send_failures());
    bench::emit_json_line(buffer);
  }
  std::printf("\n");
}

void run() {
  const std::size_t n = bench::env_size("KG_HW_N", std::size_t{1} << 20);

  // Build the tree with bounded batch_update chunks (one million-user
  // record would hold every joiner's path key material at once).
  crypto::SecureRandom rng(40);
  KeyTree tree(4, 16, rng);
  constexpr std::size_t kChunk = 8192;
  std::vector<std::pair<UserId, Bytes>> joins;
  joins.reserve(kChunk);
  const auto build_start = std::chrono::steady_clock::now();
  for (std::size_t u = 1; u <= n; ++u) {
    joins.emplace_back(static_cast<UserId>(u), rng.bytes(16));
    if (joins.size() == kChunk || u == n) {
      tree.batch_update(joins, {});
      joins.clear();
    }
  }
  const std::chrono::duration<double> build_elapsed =
      std::chrono::steady_clock::now() - build_start;
  std::printf("Built n=%zu tree (d=4, AES-128) in %.1fs\n\n", n,
              build_elapsed.count());

  std::vector<rekey::RekeyPlan> plans;
  seal_section(tree, rng, plans);

  rekey::RekeyExecutor executor(crypto::CipherAlgorithm::kAes128, 1);
  fanout_section(plans, executor, n);
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::bench::emit_header_json("ablation_hw_sealing");
  keygraphs::run();
  return 0;
}

// Ablation — recovery cost over loss rate and retransmit-window size.
//
// Clients behind a seeded lossy inbox run the automatic recovery state
// machine against a server whose retransmit window is swept from disabled
// (every gap degrades to a full keyset resync) to comfortably larger than
// any gap (every in-window loss is repaired by replaying sealed bytes).
// Two things move: how long a client spends out of sync (measured on the
// injected clock, so the numbers are deterministic per seed) and what
// fraction of recoveries fall through to the expensive resync path. The
// window trades ring memory for that ratio; the sweep quantifies the
// trade so deployments can size `retransmit_window` against their loss.
//
//   KG_GROUP_SIZE   members behind lossy inboxes (default 256)
//   KG_REQUESTS     churn operations per point (default 40)
//   KG_BENCH_JSON   file to append per-point JSON lines to
#include <cstdio>
#include <map>
#include <memory>

#include "bench_util.h"
#include "client/client.h"
#include "common/io.h"
#include "server/server.h"
#include "telemetry/convergence.h"
#include "telemetry/metrics.h"
#include "transport/fault.h"
#include "transport/inproc.h"

namespace keygraphs {
namespace {

struct Point {
  std::size_t recoveries = 0;   // completed recovery episodes
  std::size_t retransmits = 0;  // NACKs served from the sealed ring
  std::size_t resyncs = 0;      // recoveries that degraded to a resync
  double avg_recovery_ms = 0.0;  // mean out-of-sync time, injected clock
  std::size_t rounds = 0;
  bool converged = false;
  /// Fleet publish-to-applied latency percentiles (injected clock, so
  /// deterministic): the per-(member, epoch) fleet.convergence_ns
  /// histogram over the churn phase. A loss repaired N pump rounds later
  /// scores N * 50 ms; immediate applies score 0.
  std::uint64_t convergence_p50_ns = 0;
  std::uint64_t convergence_p99_ns = 0;
  std::uint64_t slo_violations = 0;

  [[nodiscard]] double resync_ratio() const {
    const std::size_t served = retransmits + resyncs;
    return served == 0 ? 0.0
                       : static_cast<double>(resyncs) /
                             static_cast<double>(served);
  }
};

constexpr std::uint64_t kPumpStepUs = 50'000;

Point run(double drop, std::size_t window, std::size_t group_size,
          std::size_t churn_ops) {
  std::uint64_t now = 1'000'000;

  server::ServerConfig config;
  config.tree_degree = 8;
  config.rng_seed = 4242;
  config.clock_us = [&now] { return now; };
  config.retransmit_window = window;
  config.recovery_rate = 0;  // the limiter is ablated separately
  transport::InProcNetwork network;
  server::GroupKeyServer server(config, network);

  transport::FaultConfig faults;
  faults.seed = 4242;
  faults.rule.drop = drop;
  faults.rule.duplicate = 0.02;
  faults.rule.reorder = 0.03;
  faults.rule.reorder_span = 4;
  transport::FaultEngine engine(faults);

  for (UserId user = 1; user <= group_size; ++user) server.join(user);

  std::map<UserId, std::unique_ptr<client::GroupClient>> members;
  const KeyId root = server.root_id();
  const auto attach = [&](UserId user, bool snapshot) {
    client::ClientConfig member_config;
    member_config.user = user;
    member_config.suite = config.suite;
    member_config.root = root;
    member_config.verify = false;
    member_config.rng_seed = user + 1;
    member_config.recovery.clock_us = [&now] { return now; };
    member_config.recovery.base_backoff_us = 20'000;
    member_config.recovery.max_backoff_us = 160'000;
    member_config.recovery.token = server.auth().resync_token(user);
    auto client =
        std::make_unique<client::GroupClient>(member_config, nullptr);
    client->install_individual_key(SymmetricKey{
        individual_key_id(user), 1,
        server.auth().individual_key(user, config.suite.key_size())});
    if (snapshot) {
      client->admit_snapshot(server.tree().keyset(user), server.epoch());
    }
    client::GroupClient& ref = *client;
    const auto resubscribe = [&network, &ref, user, root] {
      std::vector<KeyId> ids = ref.key_ids();
      ids.push_back(root);
      network.resubscribe(user, ids);
    };
    network.attach_client(
        user, transport::make_faulty_inbox(
                  engine, user, [&ref, resubscribe](BytesView datagram) {
                    ref.handle_datagram(datagram);
                    resubscribe();
                  }));
    resubscribe();
    members.emplace(user, std::move(client));
  };
  for (UserId user = 1; user <= group_size; ++user) attach(user, true);

  // Score convergence over the churn phase only (the snapshot attaches
  // never report applies, so build-phase publishes would distort the
  // quantiles). A one-hour SLO makes any violation an accounting bug.
  telemetry::Registry::global().reset();
  auto& monitor = telemetry::ConvergenceMonitor::global();
  monitor.reset();
  monitor.set_slo_us(3'600'000'000);

  Point point;
  const auto route = [&](const Bytes& request) {
    const rekey::Datagram datagram = rekey::Datagram::decode(request);
    ByteReader reader(datagram.payload);
    const UserId user = reader.u64();
    const Bytes token = reader.var_bytes();
    if (datagram.type == rekey::MessageType::kNackRequest) {
      const auto outcome =
          server.nack_with_token(user, token, reader.u64());
      if (outcome == server::NackOutcome::kRetransmitted) {
        ++point.retransmits;
      } else if (outcome == server::NackOutcome::kResynced) {
        ++point.resyncs;
      }
    } else if (datagram.type == rekey::MessageType::kResyncRequest) {
      if (server.resync_with_token(user, token)) ++point.resyncs;
    }
  };

  const auto all_synced = [&] {
    const Bytes& secret = server.tree().group_key().secret;
    for (const auto& [user, client] : members) {
      const auto key = client->group_key();
      if (!key.has_value() || key->secret != secret) return false;
      if (client->recovery_state() != client::RecoveryState::kSynced) {
        return false;
      }
    }
    return true;
  };

  // A recovery episode spans from the first round a client is observed out
  // of kSynced until it returns; the injected clock makes the latency
  // deterministic (granularity: one pump step).
  std::map<UserId, std::uint64_t> entered;
  double recovery_us_total = 0.0;
  const auto observe = [&] {
    for (const auto& [user, client] : members) {
      const bool syncing =
          client->recovery_state() != client::RecoveryState::kSynced;
      const auto it = entered.find(user);
      if (syncing && it == entered.end()) {
        entered.emplace(user, now);
      } else if (!syncing && it != entered.end()) {
        recovery_us_total += static_cast<double>(now - it->second);
        ++point.recoveries;
        entered.erase(it);
      }
    }
  };

  const auto pump = [&](std::size_t max_rounds) {
    for (std::size_t round = 0; round < max_rounds; ++round) {
      if (all_synced()) return true;
      now += kPumpStepUs;
      ++point.rounds;
      for (const auto& [user, client] : members) {
        if (const auto request = client->poll_recovery()) route(*request);
      }
      observe();
    }
    return all_synced();
  };

  crypto::SecureRandom churn_rng(97);
  UserId next_user = group_size + 1;
  for (std::size_t op = 0; op < churn_ops; ++op) {
    if (op % 2 == 0) {
      auto it = members.begin();
      std::advance(it, churn_rng.uniform(members.size()));
      const UserId leaver = it->first;
      engine.flush();
      entered.erase(leaver);
      network.detach_client(leaver);
      members.erase(it);
      server.leave(leaver);
    } else {
      const UserId joiner = next_user++;
      attach(joiner, /*snapshot=*/false);
      server.join(joiner);
    }
    observe();
    pump(6);
  }

  // Quiescent tail with heartbeat rekeys (see the soak test): silently
  // missed tail epochs need a later delivery before recovery can trigger.
  engine.flush();
  engine.set_rule(transport::FaultRule{});
  for (int phase = 0; phase < 4 && !point.converged; ++phase) {
    const UserId probe = next_user++;
    server.join(probe);
    server.leave(probe);
    point.converged = pump(64);
  }
  observe();
  point.avg_recovery_ms =
      point.recoveries == 0
          ? 0.0
          : recovery_us_total / static_cast<double>(point.recoveries) /
                1000.0;
  const auto& convergence =
      telemetry::Registry::global().histogram("fleet.convergence_ns");
  point.convergence_p50_ns = convergence.p50();
  point.convergence_p99_ns = convergence.p99();
  point.slo_violations =
      telemetry::Registry::global().counter("fleet.slo_violations").value();
  return point;
}

void main_impl() {
  bench::emit_header_json("ablation_loss_recovery");
  const std::size_t n = bench::env_size("KG_GROUP_SIZE", 256);
  const std::size_t churn = bench::env_size("KG_REQUESTS", 40);

  std::printf("Ablation: recovery latency and resync ratio over loss rate "
              "and retransmit window, n=%zu, %zu churn ops\n", n, churn);
  std::printf("window 0 disables the sealed ring: every gap is a full "
              "keyset resync\n\n");
  sim::TablePrinter table({{"drop", 6},
                           {"window", 8},
                           {"recoveries", 11},
                           {"rexmit", 8},
                           {"resync", 8},
                           {"ratio", 7},
                           {"avg ms", 9},
                           {"cnv p50ms", 10},
                           {"cnv p99ms", 10},
                           {"rounds", 8}});
  table.header();
  for (const double drop : {0.05, 0.10, 0.20}) {
    for (const std::size_t window : {std::size_t{0}, std::size_t{8},
                                     std::size_t{64}}) {
      const Point point = run(drop, window, n, churn);
      table.row({sim::TablePrinter::num(drop, 2),
                 sim::TablePrinter::num(window),
                 sim::TablePrinter::num(point.recoveries),
                 sim::TablePrinter::num(point.retransmits),
                 sim::TablePrinter::num(point.resyncs),
                 sim::TablePrinter::num(point.resync_ratio(), 2),
                 sim::TablePrinter::num(point.avg_recovery_ms, 1),
                 sim::TablePrinter::num(
                     static_cast<double>(point.convergence_p50_ns) / 1e6, 1),
                 sim::TablePrinter::num(
                     static_cast<double>(point.convergence_p99_ns) / 1e6, 1),
                 sim::TablePrinter::num(point.rounds)});
      char buffer[384];
      std::snprintf(
          buffer, sizeof(buffer),
          "{\"bench\":\"ablation_loss_recovery\",\"drop\":%.2f,"
          "\"window\":%zu,\"recoveries\":%zu,\"retransmits\":%zu,"
          "\"resyncs\":%zu,\"resync_ratio\":%.4f,"
          "\"avg_recovery_ms\":%.3f,\"convergence_p50_ns\":%llu,"
          "\"convergence_p99_ns\":%llu,\"slo_violations\":%llu,"
          "\"rounds\":%zu,\"converged\":%s}",
          drop, window, point.recoveries, point.retransmits, point.resyncs,
          point.resync_ratio(), point.avg_recovery_ms,
          static_cast<unsigned long long>(point.convergence_p50_ns),
          static_cast<unsigned long long>(point.convergence_p99_ns),
          static_cast<unsigned long long>(point.slo_violations),
          point.rounds, point.converged ? "true" : "false");
      bench::emit_json_line(buffer);
    }
  }
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::main_impl();
  return 0;
}

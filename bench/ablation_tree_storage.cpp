// Ablation — key-tree storage: contiguous arena + epoch views vs the
// pre-refactor pointer tree (per-node heap allocations behind an id map).
//
// Two questions:
//   1. Traversal cost. The view stores nodes in preorder, so users_under()
//      is a contiguous range scan and keyset() a parent-index walk; the
//      pointer tree chases heap pointers for both. Measured at
//      n = 1024..65536 members.
//   2. Reader throughput under a concurrent writer. Readers acquire the
//      current immutable view (RCU shared_ptr swap) and never lock, so a
//      churning writer should not dent read throughput beyond core
//      contention. Measured with the writer idle vs. churning.
//
//   KG_TREE_MAX     largest member count (default 65536)
//   KG_TRAVERSALS   measured traversals per representation (default 200)
//   KG_READ_MS      per-phase reader window, milliseconds (default 300)
#include <atomic>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench_util.h"
#include "keygraph/key_tree.h"

namespace keygraphs {
namespace {

// The historical representation, rebuilt from a view: one heap node per
// k-node, children owned through unique_ptr, lookups through an id map.
struct PtrNode {
  KeyId id = 0;
  Bytes secret;
  PtrNode* parent = nullptr;
  std::vector<std::unique_ptr<PtrNode>> children;
  std::optional<UserId> user;
};

struct PointerTree {
  std::unique_ptr<PtrNode> root;
  std::unordered_map<KeyId, PtrNode*> by_id;
  std::map<UserId, PtrNode*> leaves;

  static PointerTree from_view(const TreeView& view) {
    PointerTree tree;
    const auto& nodes = view.nodes();
    std::vector<PtrNode*> built(nodes.size());
    for (std::uint32_t i = 0; i < nodes.size(); ++i) {
      auto owned = std::make_unique<PtrNode>();
      PtrNode* node = owned.get();
      node->id = nodes[i].id;
      const BytesView secret = view.secret_of(i);
      node->secret.assign(secret.begin(), secret.end());
      if (nodes[i].leaf) {
        node->user = nodes[i].user;
        tree.leaves.emplace(nodes[i].user, node);
      }
      built[i] = node;
      tree.by_id.emplace(node->id, node);
      if (nodes[i].parent == TreeView::kNilIndex) {
        tree.root = std::move(owned);
      } else {
        PtrNode* parent = built[nodes[i].parent];
        node->parent = parent;
        parent->children.push_back(std::move(owned));
      }
    }
    return tree;
  }

  [[nodiscard]] std::vector<UserId> users_under(KeyId id) const {
    std::vector<UserId> out;
    std::vector<const PtrNode*> stack{by_id.at(id)};
    while (!stack.empty()) {
      const PtrNode* node = stack.back();
      stack.pop_back();
      if (node->user) out.push_back(*node->user);
      for (const auto& child : node->children) stack.push_back(child.get());
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Mirrors KeyTree::keyset's real work: ids plus copied key material.
  [[nodiscard]] std::vector<std::pair<KeyId, Bytes>> keyset(
      UserId user) const {
    std::vector<std::pair<KeyId, Bytes>> out;
    for (const PtrNode* node = leaves.at(user); node != nullptr;
         node = node->parent) {
      out.emplace_back(node->id, node->secret);
    }
    return out;
  }
};

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void grow_to(KeyTree& tree, UserId first, UserId last) {
  std::vector<std::pair<UserId, Bytes>> joins;
  for (UserId u = first; u <= last; ++u) {
    joins.emplace_back(u, Bytes(16, static_cast<std::uint8_t>(u * 37 + 1)));
    if (joins.size() == 2048 || u == last) {
      tree.batch_update(joins, {});
      joins.clear();
    }
  }
}

void emit(const char* json) {
  const char* path = std::getenv("KG_BENCH_JSON");
  if (path == nullptr || *path == '\0') {
    std::printf("%s\n", json);
    return;
  }
  if (std::FILE* file = std::fopen(path, "a")) {
    std::fprintf(file, "%s\n", json);
    std::fclose(file);
  }
}

void traversal_point(std::size_t n, std::size_t traversals) {
  crypto::SecureRandom rng(7001);
  KeyTree tree(4, 16, rng);
  grow_to(tree, 1, n);
  const TreeViewPtr view = tree.view();
  const PointerTree pointer = PointerTree::from_view(*view);
  const KeyId root = view->root_id();

  // users_under(root): full-membership resolution, the dispatch-path read.
  std::size_t sink = 0;
  auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < traversals; ++i) {
    sink += view->users_under(root).size();
  }
  const double view_scan_ms = ms_since(start);
  start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < traversals; ++i) {
    sink += pointer.users_under(root).size();
  }
  const double pointer_scan_ms = ms_since(start);

  // keyset(u): the per-user path walk (resync/welcome planning).
  const std::size_t probes = std::min<std::size_t>(n, 512);
  start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < traversals; ++i) {
    for (std::size_t p = 1; p <= probes; ++p) {
      sink += view->keyset(static_cast<UserId>(p * (n / probes))).size();
    }
  }
  const double view_keyset_ms = ms_since(start);
  start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < traversals; ++i) {
    for (std::size_t p = 1; p <= probes; ++p) {
      sink += pointer.keyset(static_cast<UserId>(p * (n / probes))).size();
    }
  }
  const double pointer_keyset_ms = ms_since(start);
  const volatile std::size_t keep = sink;
  (void)keep;

  char json[512];
  std::snprintf(
      json, sizeof(json),
      "{\"bench\":\"tree_storage\",\"mode\":\"traversal\",\"n\":%zu,"
      "\"users_under_arena_ms\":%.3f,\"users_under_pointer_ms\":%.3f,"
      "\"keyset_arena_ms\":%.3f,\"keyset_pointer_ms\":%.3f,"
      "\"users_under_speedup\":%.2f,\"keyset_speedup\":%.2f}",
      n, view_scan_ms, pointer_scan_ms, view_keyset_ms, pointer_keyset_ms,
      view_scan_ms > 0 ? pointer_scan_ms / view_scan_ms : 0.0,
      view_keyset_ms > 0 ? pointer_keyset_ms / view_keyset_ms : 0.0);
  emit(json);
}

/// Reads completed in `window_ms`, with an optional concurrent writer
/// churning join/leave through the same tree.
void reader_throughput_point(std::size_t n, double window_ms) {
  crypto::SecureRandom rng(7002);
  KeyTree tree(4, 16, rng);
  grow_to(tree, 1, n);
  const KeyId root = tree.view()->root_id();

  const auto read_phase = [&](bool with_writer) -> std::uint64_t {
    std::atomic<bool> stop{false};
    std::thread writer;
    if (with_writer) {
      writer = std::thread([&tree, &stop, n] {
        UserId next = static_cast<UserId>(n) + 1;
        while (!stop.load(std::memory_order_acquire)) {
          const UserId u = next++;
          tree.join(u, Bytes(16, static_cast<std::uint8_t>(u)));
          tree.leave(u);
        }
      });
    }
    std::uint64_t reads = 0;
    std::size_t sink = 0;
    const auto start = std::chrono::steady_clock::now();
    while (ms_since(start) < window_ms) {
      const TreeViewPtr view = tree.view();
      sink += view->users_under(root).size();
      ++reads;
    }
    const volatile std::size_t keep = sink;
    (void)keep;
    stop.store(true, std::memory_order_release);
    if (writer.joinable()) writer.join();
    return reads;
  };

  const std::uint64_t quiet = read_phase(false);
  const std::uint64_t contended = read_phase(true);
  char json[384];
  std::snprintf(json, sizeof(json),
                "{\"bench\":\"tree_storage\",\"mode\":\"reader_throughput\","
                "\"n\":%zu,\"window_ms\":%.0f,\"reads_quiet\":%llu,"
                "\"reads_with_writer\":%llu,\"retained_pct\":%.1f}",
                n, window_ms, static_cast<unsigned long long>(quiet),
                static_cast<unsigned long long>(contended),
                quiet > 0 ? 100.0 * static_cast<double>(contended) /
                                static_cast<double>(quiet)
                          : 0.0);
  emit(json);
}

}  // namespace
}  // namespace keygraphs

int main() {
  using namespace keygraphs;
  const std::size_t max_n = bench::env_size("KG_TREE_MAX", 65536);
  const std::size_t traversals = bench::env_size("KG_TRAVERSALS", 200);
  const double window_ms =
      static_cast<double>(bench::env_size("KG_READ_MS", 300));
  bench::emit_header_json("ablation_tree_storage");
  for (std::size_t n = 1024; n <= max_n; n *= 4) {
    traversal_point(n, traversals);
  }
  reader_throughput_point(4096, window_ms);
  return 0;
}

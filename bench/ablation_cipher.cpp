// Ablation — cipher choice (DES vs 3DES vs AES-128) on server processing
// time, in the paper's "encryption only" configuration. DES dates the
// paper; this shows what the same server costs with the era's hardened
// cipher (3DES, ~3x the block work) and a modern one (AES-128, faster than
// DES in software despite the larger block), reinforcing that the
// *structure* of the result — log-linear scaling, strategy ordering — is
// cipher-independent.
#include <cstdio>

#include "bench_util.h"

namespace keygraphs {
namespace {

void run() {
  const std::size_t n = bench::env_size("KG_GROUP_SIZE", 4096);
  std::printf("Ablation: cipher choice, encryption-only server time "
              "(ms/request), n=%zu, degree 4\n\n", n);
  sim::TablePrinter table({{"cipher", 8},
                           {"user ms", 9},
                           {"key ms", 9},
                           {"group ms", 9},
                           {"msg B (group leave)", 20}});
  table.header();
  for (crypto::CipherAlgorithm cipher :
       {crypto::CipherAlgorithm::kDes, crypto::CipherAlgorithm::kDes3,
        crypto::CipherAlgorithm::kAes128}) {
    std::vector<std::string> row{crypto::cipher_name(cipher)};
    double group_leave_bytes = 0;
    for (rekey::StrategyKind strategy : bench::kPaperStrategies) {
      sim::ExperimentConfig config;
      config.initial_size = n;
      config.requests = bench::requests();
      config.degree = 4;
      config.strategy = strategy;
      config.suite.cipher = cipher;
      const bench::AveragedResult averaged =
          bench::run_averaged(config, bench::seeds());
      row.push_back(sim::TablePrinter::num(averaged.all_ms, 4));
      if (strategy == rekey::StrategyKind::kGroupOriented) {
        group_leave_bytes = averaged.result.leave.avg_message_bytes;
      }
    }
    row.push_back(sim::TablePrinter::num(group_leave_bytes, 0));
    table.row(row);
  }
  std::printf("\n(3DES triples the per-wrap block work; AES-128's larger "
              "key/block grows messages\nbut its software speed beats "
              "DES — strategy ordering is unchanged throughout.)\n");
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::bench::emit_header_json("ablation_cipher");
  keygraphs::run();
  return 0;
}

// Figure 10 — Server processing time per request vs initial group size
// (32..8192, log-scale x axis), key tree degree 4, all three strategies.
// Left series: DES-CBC encryption only. Right series: DES-CBC + MD5 + RSA-512
// batch signature. The paper's conclusion to reproduce: time grows linearly
// with log(group size) for every strategy, i.e. the service is scalable.
#include <cstdio>

#include "bench_util.h"

namespace keygraphs {
namespace {

void run_series(bool signed_mode) {
  std::printf("\nFigure 10 (%s): server processing time per request (ms) "
              "vs group size, degree 4\n",
              signed_mode ? "DES + MD5 + RSA-512 batch signature"
                          : "DES encryption only");
  sim::TablePrinter table({{"n", 7},
                           {"user ms", 9},
                           {"key ms", 9},
                           {"group ms", 9}});
  table.header();
  const std::size_t max_n = bench::group_size();
  for (std::size_t n = 32; n <= max_n; n *= 2) {
    std::vector<std::string> row{sim::TablePrinter::num(n)};
    for (rekey::StrategyKind strategy : bench::kPaperStrategies) {
      sim::ExperimentConfig config;
      config.initial_size = n;
      config.requests = bench::requests();
      config.degree = 4;
      config.strategy = strategy;
      if (signed_mode) {
        config.suite = crypto::CryptoSuite::paper_signed();
        config.signing = rekey::SigningMode::kBatch;
      }
      const bench::AveragedResult averaged =
          bench::run_averaged(config, bench::seeds());
      row.push_back(sim::TablePrinter::num(averaged.all_ms, 4));
      bench::emit_point_json("fig10", signed_mode, "n", n, strategy,
                             averaged);
    }
    table.row(row);
  }
}

}  // namespace
}  // namespace keygraphs

int main() {
  std::printf("Figure 10: processing time averaged over %zu requests x %zu "
              "seeds per point\n", keygraphs::bench::requests(),
              keygraphs::bench::seeds());
  keygraphs::run_series(false);
  keygraphs::run_series(true);
  return 0;
}

// Table 2 — Cost of a join/leave operation in key encryptions/decryptions,
// for (a) the requesting user, (b) a non-requesting user, (c) the server,
// across star / tree / complete key graphs. All "measured" numbers come
// from live protocol runs (server encryption counters and client
// decryption counters), printed beside the paper's formulas.
#include <cstdio>

#include "analysis/cost_model.h"
#include "bench_util.h"
#include "keygraph/complete_graph.h"
#include "sim/simulator.h"

namespace keygraphs {
namespace {

struct Measured {
  double server_join = 0, server_leave = 0;
  double req_join = 0;                      // requesting user decryptions
  double nonreq_join = 0, nonreq_leave = 0; // per non-requesting member
};

// Run a short churn with clients attached and measure all three roles.
Measured measure_tree(int degree, bool star, std::size_t n,
                      std::size_t requests) {
  server::ServerConfig config;
  config.tree_degree = degree;
  config.strategy = rekey::StrategyKind::kKeyOriented;
  config.rng_seed = 7;
  if (star) config = server::ServerConfig::star(config);

  transport::InProcNetwork network;
  server::GroupKeyServer server(config, network);
  sim::ClientSimulator simulator(server, network);
  sim::WorkloadGenerator workload(3);
  for (const sim::Request& request : workload.initial_joins(n)) {
    server.join(request.user);
  }
  simulator.materialize_from_tree();
  server.stats().reset();

  // Requesting-user join cost: join a fresh user and read its client's
  // decrypt counter directly.
  double req_join = 0;
  std::size_t probes = 0;
  const std::vector<sim::Request> churn = workload.churn(requests);
  for (const sim::Request& request : churn) {
    simulator.apply(request);
    if (request.kind == sim::RequestKind::kJoin) {
      req_join += static_cast<double>(
          simulator.client(request.user).totals().keys_decrypted);
      ++probes;
    }
  }

  Measured measured;
  measured.server_join =
      server.stats().summarize(rekey::RekeyKind::kJoin).avg_encryptions;
  measured.server_leave =
      server.stats().summarize(rekey::RekeyKind::kLeave).avg_encryptions;
  measured.req_join = probes ? req_join / static_cast<double>(probes) : 0;
  double join_dec = 0, leave_dec = 0;
  std::size_t joins = 0, leaves = 0;
  for (const sim::ClientOpRecord& record : simulator.records()) {
    if (record.members == 0) continue;
    const double per_member = static_cast<double>(record.keys_decrypted) /
                              static_cast<double>(record.members);
    if (record.kind == sim::RequestKind::kJoin) {
      join_dec += per_member;
      ++joins;
    } else {
      leave_dec += per_member;
      ++leaves;
    }
  }
  measured.nonreq_join = joins ? join_dec / static_cast<double>(joins) : 0;
  measured.nonreq_leave =
      leaves ? leave_dec / static_cast<double>(leaves) : 0;
  return measured;
}

void run() {
  const std::size_t n = bench::env_size("KG_GROUP_SIZE", 1024);
  const std::size_t requests = std::min<std::size_t>(bench::requests(), 300);
  const int d = 4;
  const Measured star = measure_tree(d, true, std::min<std::size_t>(n, 256),
                                     requests);
  const Measured tree = measure_tree(d, false, n, requests);

  crypto::SecureRandom rng(5);
  CompleteGraph complete(crypto::CipherAlgorithm::kDes, rng);
  const std::size_t complete_n = 8;
  CompleteOpCost complete_join{};
  for (UserId user = 1; user <= complete_n; ++user) {
    complete_join = complete.join(user);
  }
  const CompleteOpCost complete_leave = complete.leave(3);

  const std::size_t star_n = std::min<std::size_t>(n, 256);
  std::printf("Table 2: cost of a join/leave (key encryptions/decryptions)\n");
  std::printf("tree: n=%zu d=%d (paper h=%0.1f), key-oriented; star: n=%zu; "
              "complete: n=%zu\n\n",
              n, d, analysis::tree_height(n, d), star_n, complete_n);

  sim::TablePrinter table({{"role/op", 22},
                           {"star meas", 10},
                           {"star paper", 11},
                           {"tree meas", 10},
                           {"tree paper", 11},
                           {"complete meas", 14},
                           {"complete paper", 15}});
  table.header();
  using P = sim::TablePrinter;
  const auto star_server = analysis::star_server_cost(star_n);
  const auto tree_server = analysis::tree_server_cost(n, d);
  const auto complete_server = analysis::complete_server_cost(complete_n - 1);
  const auto tree_req = analysis::tree_requesting_cost(n, d);
  const auto tree_nonreq = analysis::tree_nonrequesting_cost(n, d);

  table.row({"server join", P::num(star.server_join, 1),
             P::num(star_server.join, 0), P::num(tree.server_join, 1),
             P::num(tree_server.join, 1),
             P::num(complete_join.server_encryptions),
             P::num(complete_server.join, 0)});
  table.row({"server leave", P::num(star.server_leave, 1),
             P::num(star_server.leave, 0), P::num(tree.server_leave, 1),
             P::num(tree_server.leave, 1),
             P::num(complete_leave.server_encryptions),
             P::num(complete_server.leave, 0)});
  table.row({"requesting join", P::num(1.0, 1), P::num(1.0, 0),
             P::num(tree.req_join, 1), P::num(tree_req.join, 1),
             P::num(complete_join.requesting_user_decryptions),
             P::num(analysis::complete_requesting_cost(complete_n - 1).join,
                    0)});
  table.row({"requesting leave", P::num(0.0, 0), P::num(0.0, 0),
             P::num(0.0, 0), P::num(0.0, 0),
             P::num(complete_leave.requesting_user_decryptions),
             P::num(0.0, 0)});
  table.row({"non-requesting join", P::num(star.nonreq_join, 2),
             P::num(1.0, 0), P::num(tree.nonreq_join, 2),
             P::num(tree_nonreq.join, 2),
             P::num(complete_join.non_requesting_user_decryptions, 0),
             P::num(analysis::complete_nonrequesting_cost(complete_n - 1)
                        .join, 0)});
  table.row({"non-requesting leave", P::num(star.nonreq_leave, 2),
             P::num(1.0, 0), P::num(tree.nonreq_leave, 2),
             P::num(tree_nonreq.leave, 2),
             P::num(complete_leave.non_requesting_user_decryptions, 0),
             P::num(0.0, 0)});
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::run();
  return 0;
}

// Table 4 — Average rekey message size and server processing time with one
// signature per rekey message vs one (Merkle batch) signature for all rekey
// messages of an operation; DES / MD5 / RSA-512, key tree degree 4.
// The paper (n=8192) measured ~10x processing-time reduction for user- and
// key-oriented rekeying, with a 50-70 byte message-size increase.
#include <cstdio>

#include "bench_util.h"

namespace keygraphs {
namespace {

void run() {
  const std::size_t n = bench::env_size("KG_GROUP_SIZE", 2048);
  const std::size_t requests = std::min<std::size_t>(bench::requests(), 500);
  std::printf("Table 4: rekey message size and server processing time\n");
  std::printf("n=%zu, degree 4, DES-CBC / MD5 / RSA-512, %zu requests "
              "(1:1 join/leave)\n", n, requests);
  std::printf("paper (n=8192): batch signing cuts user/key-oriented time "
              "~10x; size grows ~50-70 B\n\n");

  sim::TablePrinter table({{"strategy", 9},
                           {"signing", 14},
                           {"size join", 10},
                           {"size leave", 11},
                           {"ms join", 9},
                           {"ms leave", 9},
                           {"ms ave", 8}});
  table.header();

  for (rekey::StrategyKind strategy : bench::kPaperStrategies) {
    for (rekey::SigningMode mode :
         {rekey::SigningMode::kPerMessage, rekey::SigningMode::kBatch}) {
      sim::ExperimentConfig config;
      config.initial_size = n;
      config.requests = requests;
      config.degree = 4;
      config.strategy = strategy;
      config.suite = crypto::CryptoSuite::paper_signed();
      config.signing = mode;
      const bench::AveragedResult averaged =
          bench::run_averaged(config, bench::seeds());
      table.row({bench::strategy_label(strategy),
                 mode == rekey::SigningMode::kPerMessage ? "per-message"
                                                         : "batch",
                 sim::TablePrinter::num(
                     averaged.result.join.avg_message_bytes, 1),
                 sim::TablePrinter::num(
                     averaged.result.leave.avg_message_bytes, 1),
                 sim::TablePrinter::num(averaged.join_ms, 2),
                 sim::TablePrinter::num(averaged.leave_ms, 2),
                 sim::TablePrinter::num(averaged.all_ms, 2)});
    }
  }
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::run();
  return 0;
}

// Ablation — the Section 7 hybrid strategy against the paper's three.
// The hybrid multicasts one group-oriented message per root-child subtree
// (d multicast addresses instead of one per k-node), predicting a middle
// ground: ~d messages per operation, group-oriented encryption cost, and
// client messages ~1/d the size of a group-oriented leave.
#include <cstdio>

#include "bench_util.h"

namespace keygraphs {
namespace {

void run() {
  const std::size_t n = bench::client_size();
  const std::size_t requests = std::min<std::size_t>(bench::requests(), 300);
  std::printf("Ablation: hybrid (Sec. 7) vs the paper's strategies\n");
  std::printf("n=%zu, degree 4, %zu requests, clients attached\n\n", n,
              requests);

  sim::TablePrinter table({{"strategy", 9},
                           {"enc/op", 8},
                           {"srv msgs/op", 12},
                           {"srv bytes/op", 13},
                           {"client leave sz", 16},
                           {"ms/op", 8}});
  table.header();

  for (rekey::StrategyKind strategy :
       {rekey::StrategyKind::kUserOriented, rekey::StrategyKind::kKeyOriented,
        rekey::StrategyKind::kGroupOriented, rekey::StrategyKind::kHybrid}) {
    sim::ExperimentConfig config;
    config.initial_size = n;
    config.requests = requests;
    config.degree = 4;
    config.strategy = strategy;
    config.with_clients = true;
    const sim::ExperimentResult result = sim::run_experiment(config);
    using P = sim::TablePrinter;
    table.row({bench::strategy_label(strategy),
               P::num(result.all.avg_encryptions, 1),
               P::num(result.all.avg_messages, 2),
               P::num(result.all.avg_total_bytes, 0),
               P::num(result.client_avg_leave_message_bytes, 1),
               P::num(result.all.avg_processing_ms, 4)});
  }
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::bench::emit_header_json("ablation_hybrid");
  keygraphs::run();
  return 0;
}

// Ablation — key trees vs one-way function trees (OFT).
//
// The paper's key tree ships every new key explicitly: a binary-tree leave
// costs ~2(h-1) encrypted keys. OFT derives internal keys functionally and
// ships ONE blinded key per level, roughly halving both the encryption
// count and the broadcast bytes — at the price of binary-only trees (a
// degree-4 key tree claws much of the gap back, which is exactly why the
// paper's optimal-degree result matters) and member-side hashing.
#include <cstdio>

#include "bench_util.h"
#include "oft/oft.h"
#include "sim/workload.h"

namespace keygraphs {
namespace {

struct LeaveCost {
  double encryptions = 0;
  double bytes = 0;
};

struct PairCost {
  LeaveCost leave;
  double join_encryptions = 0;
};

PairCost measure_key_tree(int degree, std::size_t n, std::size_t ops) {
  crypto::SecureRandom rng(41);
  KeyTree tree(degree, 16, rng);
  for (UserId user = 1; user <= n; ++user) {
    tree.join(user, rng.bytes(16));
  }
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kAes128, rng);
  const auto strategy =
      rekey::make_strategy(rekey::StrategyKind::kGroupOriented);
  PairCost cost;
  for (UserId user = 1; user <= ops; ++user) {
    encryptor.reset_counters();
    const auto messages = strategy->plan_leave(tree.leave(user), encryptor);
    cost.leave.encryptions +=
        static_cast<double>(encryptor.key_encryptions());
    for (const auto& outbound : messages) {
      cost.leave.bytes += static_cast<double>(
          outbound.message.serialize_body().size());
    }
    encryptor.reset_counters();
    (void)strategy->plan_join(tree.join(n + user, rng.bytes(16)),
                              encryptor);
    cost.join_encryptions +=
        static_cast<double>(encryptor.key_encryptions());
  }
  cost.leave.encryptions /= static_cast<double>(ops);
  cost.leave.bytes /= static_cast<double>(ops);
  cost.join_encryptions /= static_cast<double>(ops);
  return cost;
}

PairCost measure_oft(std::size_t n, std::size_t ops) {
  crypto::SecureRandom rng(42);
  oft::OftTree tree(rng);
  for (UserId user = 1; user <= n; ++user) tree.join(user);
  PairCost cost;
  for (UserId user = 1; user <= ops; ++user) {
    const oft::OftRekey leave = tree.leave(user);
    cost.leave.encryptions += static_cast<double>(leave.encryptions());
    cost.leave.bytes += static_cast<double>(leave.broadcast_bytes());
    cost.join_encryptions +=
        static_cast<double>(tree.join(n + user).encryptions());
  }
  cost.leave.encryptions /= static_cast<double>(ops);
  cost.leave.bytes /= static_cast<double>(ops);
  cost.join_encryptions /= static_cast<double>(ops);
  return cost;
}

void run() {
  std::printf("Ablation: leave cost — OFT vs key trees "
              "(group-oriented, AES-128 keys)\n");
  std::printf("per-leave averages over 64 leaves\n\n");
  sim::TablePrinter table({{"n", 7},
                           {"OFT lv enc", 11},
                           {"d=2 lv enc", 11},
                           {"d=4 lv enc", 11},
                           {"OFT lv B", 9},
                           {"d=2 lv B", 9},
                           {"OFT jn enc", 11},
                           {"d=2 jn enc", 11},
                           {"d=4 jn enc", 11}});
  table.header();
  for (std::size_t n : {128u, 512u, 2048u, 8192u}) {
    const std::size_t ops = 64;
    const PairCost oft_cost = measure_oft(n, ops);
    const PairCost d2 = measure_key_tree(2, n, ops);
    const PairCost d4 = measure_key_tree(4, n, ops);
    using P = sim::TablePrinter;
    table.row({P::num(n), P::num(oft_cost.leave.encryptions, 1),
               P::num(d2.leave.encryptions, 1),
               P::num(d4.leave.encryptions, 1),
               P::num(oft_cost.leave.bytes, 0), P::num(d2.leave.bytes, 0),
               P::num(oft_cost.join_encryptions, 1),
               P::num(d2.join_encryptions, 1),
               P::num(d4.join_encryptions, 1)});
  }
  std::printf("\nleaves: OFT ships one blinded key per level vs ~two "
              "encrypted keys for any key tree\n(d*log_d(n) is the same "
              "for d=2 and d=4 — the paper's d=4 optimum comes from the\n"
              "2(h-1) JOIN cost, where the shallower tree wins, as the "
              "join columns show).\n");
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::bench::emit_header_json("ablation_oft");
  keygraphs::run();
  return 0;
}

// Ablation — star vs key tree as group size grows: where does the
// hierarchy start to pay? The paper's Table 3 predicts the crossover where
// n/2 (star) exceeds (d+2)(h-1)/2 (tree, d=4): around n = 16. Below it the
// star's two-key simplicity wins; beyond it the tree's O(log n) leave cost
// dominates, by orders of magnitude at n = 4096.
#include <cstdio>

#include "analysis/cost_model.h"
#include "bench_util.h"

namespace keygraphs {
namespace {

void run() {
  const std::size_t requests = std::min<std::size_t>(bench::requests(), 400);
  std::printf("Ablation: star vs tree (d=4) average server encryptions per "
              "operation, %zu requests\n\n", requests);
  sim::TablePrinter table({{"n", 7},
                           {"star meas", 10},
                           {"star paper", 11},
                           {"tree meas", 10},
                           {"tree paper", 11},
                           {"winner", 8}});
  table.header();
  for (std::size_t n : {4u, 8u, 16u, 32u, 128u, 512u, 4096u}) {
    sim::ExperimentConfig star_config;
    star_config.initial_size = n;
    star_config.requests = requests;
    star_config.strategy = rekey::StrategyKind::kKeyOriented;
    star_config.star = true;
    const sim::ExperimentResult star = sim::run_experiment(star_config);

    sim::ExperimentConfig tree_config = star_config;
    tree_config.star = false;
    tree_config.degree = 4;
    const sim::ExperimentResult tree = sim::run_experiment(tree_config);

    using P = sim::TablePrinter;
    table.row({P::num(n), P::num(star.all.avg_encryptions, 1),
               P::num(analysis::star_avg_server_cost(n), 1),
               P::num(tree.all.avg_encryptions, 1),
               P::num(analysis::tree_avg_server_cost(n, 4), 1),
               star.all.avg_encryptions <= tree.all.avg_encryptions
                   ? "star" : "tree"});
  }
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::bench::emit_header_json("ablation_star_crossover");
  keygraphs::run();
  return 0;
}

// Ablation — seal-phase parallelism in the plan/seal/dispatch pipeline.
//
// The pipeline split moves every encryption, digest and signature out of
// the planning critical section into the RekeyExecutor, which fans the
// work across seal_threads pool threads. This bench measures what that
// buys on the heaviest realistic load: signed (batch-signature)
// group-oriented batch rekeys on an n = 4096 group, where one operation
// seals dozens of multicast messages. Output bytes are identical for
// every thread count — only the wall clock moves.
//
//   KG_GROUP_SIZE   initial group size (default 4096)
//   KG_REQUESTS     membership changes measured (default 1000)
//   KG_BATCH        changes per batch() call (default 128)
//   KG_BENCH_JSON   file to append per-point JSON lines to
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "sim/workload.h"

namespace keygraphs {
namespace {

struct Interval {
  std::vector<UserId> joins;
  std::vector<UserId> leaves;
};

/// The same churn schedule for every thread count: identical plans,
/// identical bytes, only the seal schedule differs.
std::vector<Interval> make_schedule(std::size_t n, std::size_t changes,
                                    std::size_t batch_size) {
  sim::WorkloadGenerator workload(9);
  // Consume the initial joins so every run's churn starts from the same
  // generator state as the server build below.
  (void)workload.initial_joins(n);
  std::vector<Interval> schedule;
  std::size_t applied = 0;
  while (applied < changes) {
    const std::size_t this_batch = std::min(batch_size, changes - applied);
    Interval interval;
    for (const sim::Request& request : workload.churn(this_batch, 0.5)) {
      if (request.kind == sim::RequestKind::kJoin) {
        interval.joins.push_back(request.user);
      } else if (std::erase(interval.joins, request.user) == 0) {
        interval.leaves.push_back(request.user);
      }
    }
    schedule.push_back(std::move(interval));
    applied += this_batch;
  }
  return schedule;
}

struct Point {
  double wall_ms = 0.0;       // total wall time for the measured churn
  double changes_per_s = 0.0;
  bench::AveragedResult averaged;  // avg batch-op processing + stages
};

Point run(std::size_t n, std::size_t seal_threads,
          const std::vector<Interval>& schedule, std::size_t changes) {
  server::ServerConfig config;
  config.tree_degree = 4;
  config.strategy = rekey::StrategyKind::kGroupOriented;
  config.suite = crypto::CryptoSuite::paper_signed();
  config.signing = rekey::SigningMode::kNone;  // build phase unsigned
  config.rng_seed = 5151;
  config.seal_threads = seal_threads;
  transport::NullTransport transport;
  server::GroupKeyServer server(config, transport);
  sim::WorkloadGenerator workload(9);
  for (const sim::Request& request : workload.initial_joins(n)) {
    server.join(request.user);
  }
  server.set_signing_mode(rekey::SigningMode::kBatch);
  server.stats().reset();

  const auto start = std::chrono::steady_clock::now();
  for (const Interval& interval : schedule) {
    server.batch(interval.joins, interval.leaves);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;

  Point point;
  point.wall_ms =
      std::chrono::duration<double, std::milli>(elapsed).count();
  point.changes_per_s =
      static_cast<double>(changes) / (point.wall_ms / 1000.0);
  const server::Summary batch =
      server.stats().summarize(rekey::RekeyKind::kBatch);
  point.averaged.all_ms = batch.avg_processing_ms;
  point.averaged.stage_us = batch.avg_stage_us;
  return point;
}

void main_impl() {
  bench::emit_header_json("ablation_pipeline", {{"max_seal_threads", 8}});
  const std::size_t n = bench::env_size("KG_GROUP_SIZE", 4096);
  const std::size_t changes = bench::env_size("KG_REQUESTS", 1000);
  const std::size_t batch_size = bench::env_size("KG_BATCH", 128);
  const std::vector<Interval> schedule =
      make_schedule(n, changes, batch_size);

  std::printf("Ablation: seal-phase parallelism, n=%zu, %zu changes in "
              "batches of %zu\n", n, changes, batch_size);
  std::printf("group-oriented, DES + MD5 + RSA-512 batch signature; wire "
              "bytes identical across thread counts\n");
  std::printf("host has %u hardware threads; the seal phase is CPU-bound, "
              "so speedup is capped by the core count\n\n",
              std::thread::hardware_concurrency());
  sim::TablePrinter table({{"threads", 8},
                           {"wall ms", 10},
                           {"batch ms", 10},
                           {"changes/s", 11},
                           {"speedup", 8}});
  table.header();
  double baseline_ms = 0.0;
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    const Point point = run(n, threads, schedule, changes);
    if (threads == 1) baseline_ms = point.wall_ms;
    table.row({sim::TablePrinter::num(threads),
               sim::TablePrinter::num(point.wall_ms, 1),
               sim::TablePrinter::num(point.averaged.all_ms, 2),
               sim::TablePrinter::num(point.changes_per_s, 0),
               sim::TablePrinter::num(baseline_ms / point.wall_ms, 2)});
    bench::emit_point_json("ablation_pipeline", /*signed_mode=*/true,
                           "seal_threads", threads,
                           rekey::StrategyKind::kGroupOriented,
                           point.averaged);
  }
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::main_impl();
  return 0;
}

// Table 3 — Average cost per operation with a 1:1 join/leave mix: the
// server's average key encryptions and a member's average decryptions, for
// star vs tree (d=4) vs complete graphs, measured vs the paper's formulas
// n/2, (d+2)(h-1)/2 and 2^n.
#include <cstdio>

#include "analysis/cost_model.h"
#include "bench_util.h"
#include "keygraph/complete_graph.h"
#include "sim/simulator.h"

namespace keygraphs {
namespace {

struct Averages {
  double server = 0;
  double user = 0;
};

Averages run_mixed(bool star, std::size_t n, std::size_t requests) {
  server::ServerConfig config;
  config.tree_degree = 4;
  config.strategy = rekey::StrategyKind::kKeyOriented;
  config.rng_seed = 13;
  if (star) config = server::ServerConfig::star(config);

  transport::InProcNetwork network;
  server::GroupKeyServer server(config, network);
  sim::ClientSimulator simulator(server, network);
  sim::WorkloadGenerator workload(2);
  for (const sim::Request& request : workload.initial_joins(n)) {
    server.join(request.user);
  }
  simulator.materialize_from_tree();
  server.stats().reset();
  simulator.apply_all(workload.churn(requests, 0.5));

  Averages averages;
  averages.server = server.stats().summarize_all().avg_encryptions;
  double decryptions = 0;
  std::size_t counted = 0;
  for (const sim::ClientOpRecord& record : simulator.records()) {
    if (record.members == 0) continue;
    decryptions += static_cast<double>(record.keys_decrypted) /
                   static_cast<double>(record.members);
    ++counted;
  }
  averages.user = counted ? decryptions / static_cast<double>(counted) : 0;
  return averages;
}

void run() {
  const std::size_t n = bench::env_size("KG_GROUP_SIZE", 1024);
  const std::size_t star_n = std::min<std::size_t>(n, 256);
  const std::size_t requests = std::min<std::size_t>(bench::requests(), 400);

  const Averages star = run_mixed(true, star_n, requests);
  const Averages tree = run_mixed(false, n, requests);

  // Complete graph averaged over a join+leave pair at n=8.
  crypto::SecureRandom rng(9);
  CompleteGraph complete(crypto::CipherAlgorithm::kDes, rng);
  for (UserId user = 1; user <= 8; ++user) complete.join(user);
  const CompleteOpCost leave_cost = complete.leave(2);
  const CompleteOpCost join_cost = complete.join(20);
  const double complete_server =
      static_cast<double>(join_cost.server_encryptions +
                          leave_cost.server_encryptions) / 2.0;
  const double complete_user = (join_cost.non_requesting_user_decryptions +
                                leave_cost.non_requesting_user_decryptions) /
                               2.0;

  std::printf(
      "Table 3: average cost per operation (1:1 join/leave ratio)\n");
  std::printf("star n=%zu; tree n=%zu d=4; complete n=8; %zu requests\n\n",
              star_n, n, requests);
  sim::TablePrinter table({{"cost", 18},
                           {"star meas", 10},
                           {"star paper", 11},
                           {"tree meas", 10},
                           {"tree paper", 11},
                           {"complete meas", 14},
                           {"complete paper", 15}});
  table.header();
  using P = sim::TablePrinter;
  table.row({"server (enc)", P::num(star.server, 1),
             P::num(analysis::star_avg_server_cost(star_n), 0),
             P::num(tree.server, 1),
             P::num(analysis::tree_avg_server_cost(n, 4), 1),
             P::num(complete_server, 0),
             P::num(analysis::complete_avg_server_cost(8), 0)});
  table.row({"user (dec)", P::num(star.user, 2), P::num(1.0, 0),
             P::num(tree.user, 2),
             P::num(analysis::tree_avg_user_cost(4), 2),
             P::num(complete_user, 0), "~2^n"});
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::run();
  return 0;
}

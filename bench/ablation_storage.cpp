// Ablation — the price of durability: rekey latency with the write-ahead
// journal off versus each of the three storage backends.
//
// One server per backend admits KG_GROUP_SIZE members, then serves a churn
// phase of alternating leaves and joins with every commit journaled (append
// + sync while the dispatch ticket is held — the datagrams do not leave
// until the record is durable). The sweep reports end-to-end per-operation
// latency percentiles next to the journal's own storage.append_ns /
// storage.fsync_ns telemetry, so the overhead decomposes into "time spent
// making the record durable" versus everything else. `none` is the
// pre-durability baseline; `memory` prices the framing + CRC alone; `file`
// adds write(2)+fdatasync per commit; `mmap` trades the syscalls for
// memcpy into a mapped segment plus msync.
//
//   KG_GROUP_SIZE   members before the measured churn (default 65536)
//   KG_REQUESTS     measured churn operations per backend (default 1000)
//   KG_BENCH_JSON   file to append per-point JSON lines to
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.h"
#include "server/server.h"
#include "storage/backend.h"
#include "telemetry/metrics.h"
#include "transport/transport.h"

namespace keygraphs {
namespace {

struct Point {
  double build_s = 0.0;       // admitting the initial group
  double op_p50_us = 0.0;     // end-to-end rekey latency percentiles
  double op_p99_us = 0.0;
  double op_mean_us = 0.0;
  std::uint64_t append_p99_ns = 0;  // journal frame append (0 when off)
  std::uint64_t fsync_p99_ns = 0;   // sync-to-durable
  std::uint64_t journal_bytes = 0;
  std::uint64_t snapshots = 0;
};

std::string scratch_dir(const char* backend) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("kg_ablation_storage_" + std::string(backend) + "_" +
       std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

Point run(const char* backend, std::size_t group_size,
          std::size_t churn_ops) {
  server::ServerConfig config;
  config.tree_degree = 4;
  config.rng_seed = 4242;
  const std::string name(backend);
  std::string dir;
  if (name == "memory") {
    config.storage.kind = storage::Kind::kMemory;
  } else if (name == "file" || name == "mmap") {
    config.storage.kind =
        name == "file" ? storage::Kind::kFile : storage::Kind::kMmap;
    dir = scratch_dir(backend);
    config.storage.journal_dir = dir;
  }
  config.storage.snapshot_interval = 4096;

  transport::NullTransport transport;
  server::GroupKeyServer server(config, transport);

  using Clock = std::chrono::steady_clock;
  const auto build_start = Clock::now();
  for (UserId user = 1; user <= group_size; ++user) server.join(user);
  Point point;
  point.build_s = std::chrono::duration<double>(Clock::now() - build_start)
                      .count();

  // Score the journal's own telemetry over the measured churn only.
  telemetry::Registry::global().reset();

  std::vector<double> op_us;
  op_us.reserve(churn_ops);
  UserId leaver = 1;
  UserId joiner = group_size + 1;
  for (std::size_t op = 0; op < churn_ops; ++op) {
    const auto start = Clock::now();
    if (op % 2 == 0) {
      server.leave(leaver++);
    } else {
      server.join(joiner++);
    }
    op_us.push_back(
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count());
  }

  std::sort(op_us.begin(), op_us.end());
  point.op_p50_us = op_us[op_us.size() / 2];
  point.op_p99_us = op_us[op_us.size() * 99 / 100];
  double total = 0.0;
  for (const double us : op_us) total += us;
  point.op_mean_us = total / static_cast<double>(op_us.size());

  auto& registry = telemetry::Registry::global();
  point.append_p99_ns = registry.histogram("storage.append_ns").p99();
  point.fsync_p99_ns = registry.histogram("storage.fsync_ns").p99();
  point.journal_bytes = registry.counter("storage.journal_bytes").value();
  point.snapshots = registry.counter("storage.snapshots").value();

  if (!dir.empty()) std::filesystem::remove_all(dir);
  return point;
}

void main_impl() {
  const std::size_t n = bench::env_size("KG_GROUP_SIZE", 65536);
  const std::size_t churn = bench::env_size("KG_REQUESTS", 1000);
  bench::emit_header_json("ablation_storage", {{"group_size", n},
                                               {"churn_ops", churn}});

  std::printf("Ablation: rekey latency with the write-ahead journal off vs "
              "each backend, n=%zu, %zu churn ops\n", n, churn);
  std::printf("append/fsync columns are the journal's own telemetry; "
              "'none' is the pre-durability baseline\n\n");
  std::printf("%-8s %10s %10s %10s %12s %12s %12s %10s\n", "backend",
              "mean us", "p50 us", "p99 us", "append p99", "fsync p99",
              "wal bytes", "snapshots");
  for (const char* backend : {"none", "memory", "file", "mmap"}) {
    const Point point = run(backend, n, churn);
    std::printf("%-8s %10.2f %10.2f %10.2f %9llu ns %9llu ns %12llu %10llu\n",
                backend, point.op_mean_us, point.op_p50_us, point.op_p99_us,
                static_cast<unsigned long long>(point.append_p99_ns),
                static_cast<unsigned long long>(point.fsync_p99_ns),
                static_cast<unsigned long long>(point.journal_bytes),
                static_cast<unsigned long long>(point.snapshots));
    char buffer[384];
    std::snprintf(
        buffer, sizeof(buffer),
        "{\"bench\":\"ablation_storage\",\"backend\":\"%s\","
        "\"group_size\":%zu,\"churn_ops\":%zu,\"build_s\":%.3f,"
        "\"op_mean_us\":%.3f,\"op_p50_us\":%.3f,\"op_p99_us\":%.3f,"
        "\"append_p99_ns\":%llu,\"fsync_p99_ns\":%llu,"
        "\"journal_bytes\":%llu,\"snapshots\":%llu}",
        backend, n, churn, point.build_s, point.op_mean_us, point.op_p50_us,
        point.op_p99_us,
        static_cast<unsigned long long>(point.append_p99_ns),
        static_cast<unsigned long long>(point.fsync_p99_ns),
        static_cast<unsigned long long>(point.journal_bytes),
        static_cast<unsigned long long>(point.snapshots));
    bench::emit_json_line(buffer);
  }
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::main_impl();
  return 0;
}

// Ablation: overload control under a flash crowd.
//
// A crowd of joiners hits a sharded server all at once. With overload off
// every join rekeys inline — one epoch per joiner, seal cost O(crowd),
// and the tail joiner waits for every epoch before it. With overload on
// the server runs degraded: offers coalesce into bounded per-lane queues,
// a periodic flush batches them (one epoch per flush round), and anything
// past the bound is shed with a retry-after hint the crowd honors.
//
// The table shows the trade the subsystem buys: epochs collapse from
// O(crowd) to O(rounds), wall time drops with them, the queue never
// exceeds its bound, and — the acceptance criterion — zero buffered ops
// rot past shed_deadline_us, because the flush period undercuts the
// deadline by construction.
//
// Scale knobs:
//   KG_OVL_BASE    members before the crowd (default 1024)
//   KG_OVL_CROWD   largest flash crowd      (default 4096; sweep /4, /2, /1)
//   KG_OVL_QUEUE   per-lane admission bound (default 64)
//   KG_OVL_SHARDS  shard / lane count       (default 4)
//   KG_OVL_CHECK   1 = exit nonzero on any deadline shed in degraded mode
//                  (CI smoke asserts the acceptance criterion)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "server/sharded_server.h"
#include "sim/table.h"
#include "telemetry/metrics.h"
#include "transport/transport.h"

namespace keygraphs {
namespace {

using Clock = std::chrono::steady_clock;

double elapsed_ms(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

struct Point {
  double wall_ms = 0.0;
  std::uint64_t epochs = 0;
  std::size_t shed = 0;          // retry-later answers (admission bound)
  std::size_t rounds = 0;        // flush rounds until the crowd is in
  std::size_t max_depth = 0;     // peak per-lane queue depth
  std::uint64_t deadline_shed = 0;
};

server::ShardedServerConfig base_config(std::size_t shards,
                                        std::uint64_t* now_us) {
  server::ShardedServerConfig config;
  config.shards = shards;
  config.base.rng_seed = 1998;
  config.base.retransmit_window = 2;
  config.base.clock_us = [now_us] { return *now_us; };
  return config;
}

std::vector<UserId> iota_users(UserId first, std::size_t count) {
  std::vector<UserId> users;
  users.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    users.push_back(first + static_cast<UserId>(i));
  }
  return users;
}

/// Overload off: the crowd rekeys inline, one epoch per joiner.
Point run_off(std::size_t shards, std::size_t base, std::size_t crowd) {
  std::uint64_t now_us = 1'000'000;
  transport::NullTransport transport;
  server::ShardedGroupKeyServer server(base_config(shards, &now_us),
                                       transport);
  server.preload(iota_users(1, base));

  Point point;
  const auto start = Clock::now();
  for (const UserId user : iota_users(static_cast<UserId>(base) + 1, crowd)) {
    server.join(user);
  }
  point.wall_ms = elapsed_ms(start);
  point.epochs = server.epoch();
  return point;
}

/// Overload on, pinned degraded: offer, flush each period, retry sheds.
Point run_on(std::size_t shards, std::size_t base, std::size_t crowd,
             std::size_t queue) {
  std::uint64_t now_us = 1'000'000;
  transport::NullTransport transport;
  server::ShardedServerConfig config = base_config(shards, &now_us);
  config.base.overload.enabled = true;
  config.base.overload.admission_queue = queue;
  config.base.overload.degraded_batch_period_us = 100'000;
  config.base.overload.shed_deadline_us = 250'000;
  config.base.overload.degrade_queue_fraction = 0.0;  // pin degraded
  server::ShardedGroupKeyServer server(config, transport);
  server.preload(iota_users(1, base));
  (void)server.poll_overload();  // evaluate -> degraded

  auto& deadline_shed = telemetry::Registry::global().counter(
      "server.overload.deadline_shed");
  const std::uint64_t deadline_before = deadline_shed.value();

  Point point;
  std::vector<UserId> pending =
      iota_users(static_cast<UserId>(base) + 1, crowd);
  const auto start = Clock::now();
  while (!pending.empty()) {
    ++point.rounds;
    std::vector<UserId> still_pending;
    for (const UserId user : pending) {
      const server::GateResult gate =
          server.offer_join(user, server.auth().join_token(user));
      if (gate.action == server::overload::Admission::kShed) {
        ++point.shed;
        still_pending.push_back(user);
      }
    }
    pending.swap(still_pending);
    now_us += config.base.overload.degraded_batch_period_us;
    const server::OverloadTick tick = server.poll_overload();
    for (const auto& notice : tick.shed) {
      still_pending.push_back(notice.user);  // deadline-shed: retry too
    }
  }
  point.wall_ms = elapsed_ms(start);
  point.epochs = server.epoch();
  point.max_depth = server.admission().max_depth();
  point.deadline_shed = deadline_shed.value() - deadline_before;
  return point;
}

void main_impl() {
  const std::size_t base = bench::env_size("KG_OVL_BASE", 1024);
  const std::size_t max_crowd = bench::env_size("KG_OVL_CROWD", 4096);
  const std::size_t queue = bench::env_size("KG_OVL_QUEUE", 64);
  const std::size_t shards = bench::env_size("KG_OVL_SHARDS", 4);
  const bool check = bench::env_size("KG_OVL_CHECK", 0) != 0;

  // The counters the run_on sweep reads must be live.
  telemetry::set_enabled(true);

  bench::emit_header_json("ablation_overload", {{"base", base},
                                                {"queue", queue},
                                                {"shards", shards}});
  std::printf("Ablation: flash crowd of joiners, overload off vs on "
              "(K=%zu lanes, queue bound %zu, base group %zu)\n",
              shards, queue, base);
  std::printf("on = pinned degraded: coalesce + periodic batch flush; "
              "shed joins retry on the server's hint\n\n");
  sim::TablePrinter table({{"overload", 9},
                           {"crowd", 8},
                           {"wall ms", 9},
                           {"epochs", 8},
                           {"shed", 7},
                           {"rounds", 7},
                           {"max depth", 10},
                           {"ddl shed", 9}});
  table.header();

  bool deadline_violated = false;
  for (std::size_t crowd = max_crowd / 4; crowd <= max_crowd; crowd *= 2) {
    if (crowd == 0) continue;
    const Point off = run_off(shards, base, crowd);
    table.row({"off", sim::TablePrinter::num(crowd),
               sim::TablePrinter::num(off.wall_ms, 1),
               sim::TablePrinter::num(off.epochs), "-", "-", "-", "-"});
    const Point on = run_on(shards, base, crowd, queue);
    deadline_violated = deadline_violated || on.deadline_shed > 0;
    table.row({"on", sim::TablePrinter::num(crowd),
               sim::TablePrinter::num(on.wall_ms, 1),
               sim::TablePrinter::num(on.epochs),
               sim::TablePrinter::num(on.shed),
               sim::TablePrinter::num(on.rounds),
               sim::TablePrinter::num(on.max_depth),
               sim::TablePrinter::num(on.deadline_shed)});
    char buffer[320];
    std::snprintf(buffer, sizeof(buffer),
                  "{\"bench\":\"ablation_overload\",\"crowd\":%zu,"
                  "\"off_wall_ms\":%.3f,\"off_epochs\":%llu,"
                  "\"on_wall_ms\":%.3f,\"on_epochs\":%llu,\"shed\":%zu,"
                  "\"rounds\":%zu,\"max_depth\":%zu,\"deadline_shed\":%llu}",
                  crowd, off.wall_ms,
                  static_cast<unsigned long long>(off.epochs), on.wall_ms,
                  static_cast<unsigned long long>(on.epochs), on.shed,
                  on.rounds, on.max_depth,
                  static_cast<unsigned long long>(on.deadline_shed));
    bench::emit_json_line(buffer);
  }

  if (check && deadline_violated) {
    std::fprintf(stderr,
                 "KG_OVL_CHECK: deadline sheds in degraded mode (flush "
                 "period %d us must beat shed deadline %d us)\n",
                 100'000, 250'000);
    std::exit(1);
  }
}

}  // namespace
}  // namespace keygraphs

int main() {
  keygraphs::main_impl();
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/test_cbc.dir/test_cbc.cpp.o"
  "CMakeFiles/test_cbc.dir/test_cbc.cpp.o.d"
  "test_cbc"
  "test_cbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

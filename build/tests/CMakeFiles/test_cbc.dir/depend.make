# Empty dependencies file for test_cbc.
# This may be replaced when dependencies are built.

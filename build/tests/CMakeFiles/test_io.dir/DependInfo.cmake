
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_io.cpp" "tests/CMakeFiles/test_io.dir/test_io.cpp.o" "gcc" "tests/CMakeFiles/test_io.dir/test_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kg_iolus.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_oft.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_client.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_rekey.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_merkle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_keygraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for test_des3.
# This may be replaced when dependencies are built.

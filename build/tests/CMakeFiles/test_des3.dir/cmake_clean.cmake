file(REMOVE_RECURSE
  "CMakeFiles/test_des3.dir/test_des3.cpp.o"
  "CMakeFiles/test_des3.dir/test_des3.cpp.o.d"
  "test_des3"
  "test_des3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_des3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_key_tree.dir/test_key_tree.cpp.o"
  "CMakeFiles/test_key_tree.dir/test_key_tree.cpp.o.d"
  "test_key_tree"
  "test_key_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_key_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

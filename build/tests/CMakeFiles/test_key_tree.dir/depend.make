# Empty dependencies file for test_key_tree.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_iolus.dir/test_iolus.cpp.o"
  "CMakeFiles/test_iolus.dir/test_iolus.cpp.o.d"
  "test_iolus"
  "test_iolus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iolus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_iolus.
# This may be replaced when dependencies are built.

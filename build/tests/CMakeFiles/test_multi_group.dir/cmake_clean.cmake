file(REMOVE_RECURSE
  "CMakeFiles/test_multi_group.dir/test_multi_group.cpp.o"
  "CMakeFiles/test_multi_group.dir/test_multi_group.cpp.o.d"
  "test_multi_group"
  "test_multi_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

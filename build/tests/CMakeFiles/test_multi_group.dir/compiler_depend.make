# Empty compiler generated dependencies file for test_multi_group.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_complete_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_complete_graph.dir/test_complete_graph.cpp.o"
  "CMakeFiles/test_complete_graph.dir/test_complete_graph.cpp.o.d"
  "test_complete_graph"
  "test_complete_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_complete_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

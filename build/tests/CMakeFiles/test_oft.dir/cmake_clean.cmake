file(REMOVE_RECURSE
  "CMakeFiles/test_oft.dir/test_oft.cpp.o"
  "CMakeFiles/test_oft.dir/test_oft.cpp.o.d"
  "test_oft"
  "test_oft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_oft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

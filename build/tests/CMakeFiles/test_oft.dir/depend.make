# Empty dependencies file for test_oft.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_digests.dir/test_digests.cpp.o"
  "CMakeFiles/test_digests.dir/test_digests.cpp.o.d"
  "test_digests"
  "test_digests.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_digests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

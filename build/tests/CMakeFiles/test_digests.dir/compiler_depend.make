# Empty compiler generated dependencies file for test_digests.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_multi_group_service.dir/test_multi_group_service.cpp.o"
  "CMakeFiles/test_multi_group_service.dir/test_multi_group_service.cpp.o.d"
  "test_multi_group_service"
  "test_multi_group_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_group_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_multi_group_service.
# This may be replaced when dependencies are built.

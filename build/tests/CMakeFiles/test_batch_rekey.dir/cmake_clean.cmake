file(REMOVE_RECURSE
  "CMakeFiles/test_batch_rekey.dir/test_batch_rekey.cpp.o"
  "CMakeFiles/test_batch_rekey.dir/test_batch_rekey.cpp.o.d"
  "test_batch_rekey"
  "test_batch_rekey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_rekey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_batch_rekey.
# This may be replaced when dependencies are built.

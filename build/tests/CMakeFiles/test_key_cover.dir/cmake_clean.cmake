file(REMOVE_RECURSE
  "CMakeFiles/test_key_cover.dir/test_key_cover.cpp.o"
  "CMakeFiles/test_key_cover.dir/test_key_cover.cpp.o.d"
  "test_key_cover"
  "test_key_cover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_key_cover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

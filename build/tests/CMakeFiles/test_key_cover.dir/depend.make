# Empty dependencies file for test_key_cover.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_key_graph.dir/test_key_graph.cpp.o"
  "CMakeFiles/test_key_graph.dir/test_key_graph.cpp.o.d"
  "test_key_graph"
  "test_key_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_key_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_key_graph.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_locked_server.dir/test_locked_server.cpp.o"
  "CMakeFiles/test_locked_server.dir/test_locked_server.cpp.o.d"
  "test_locked_server"
  "test_locked_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_locked_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_locked_server.
# This may be replaced when dependencies are built.

# Empty dependencies file for ablation_oft.
# This may be replaced when dependencies are built.

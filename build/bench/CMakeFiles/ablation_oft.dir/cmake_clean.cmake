file(REMOVE_RECURSE
  "CMakeFiles/ablation_oft.dir/ablation_oft.cpp.o"
  "CMakeFiles/ablation_oft.dir/ablation_oft.cpp.o.d"
  "ablation_oft"
  "ablation_oft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_oft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_cipher.dir/ablation_cipher.cpp.o"
  "CMakeFiles/ablation_cipher.dir/ablation_cipher.cpp.o.d"
  "ablation_cipher"
  "ablation_cipher.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cipher.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

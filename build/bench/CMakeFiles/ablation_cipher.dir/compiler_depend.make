# Empty compiler generated dependencies file for ablation_cipher.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table4_signing.dir/table4_signing.cpp.o"
  "CMakeFiles/table4_signing.dir/table4_signing.cpp.o.d"
  "table4_signing"
  "table4_signing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_signing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for table4_signing.
# This may be replaced when dependencies are built.

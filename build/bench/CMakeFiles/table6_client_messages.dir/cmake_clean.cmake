file(REMOVE_RECURSE
  "CMakeFiles/table6_client_messages.dir/table6_client_messages.cpp.o"
  "CMakeFiles/table6_client_messages.dir/table6_client_messages.cpp.o.d"
  "table6_client_messages"
  "table6_client_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_client_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

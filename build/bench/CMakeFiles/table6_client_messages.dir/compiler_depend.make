# Empty compiler generated dependencies file for table6_client_messages.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig12_key_changes.dir/fig12_key_changes.cpp.o"
  "CMakeFiles/fig12_key_changes.dir/fig12_key_changes.cpp.o.d"
  "fig12_key_changes"
  "fig12_key_changes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_key_changes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for fig12_key_changes.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for table3_average_costs.
# This may be replaced when dependencies are built.

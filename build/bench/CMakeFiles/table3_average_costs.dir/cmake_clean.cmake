file(REMOVE_RECURSE
  "CMakeFiles/table3_average_costs.dir/table3_average_costs.cpp.o"
  "CMakeFiles/table3_average_costs.dir/table3_average_costs.cpp.o.d"
  "table3_average_costs"
  "table3_average_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_average_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

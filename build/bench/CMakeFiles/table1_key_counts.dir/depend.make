# Empty dependencies file for table1_key_counts.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ablation_iolus.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/ablation_iolus.dir/ablation_iolus.cpp.o"
  "CMakeFiles/ablation_iolus.dir/ablation_iolus.cpp.o.d"
  "ablation_iolus"
  "ablation_iolus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_iolus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

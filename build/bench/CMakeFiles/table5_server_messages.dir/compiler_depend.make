# Empty compiler generated dependencies file for table5_server_messages.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table5_server_messages.dir/table5_server_messages.cpp.o"
  "CMakeFiles/table5_server_messages.dir/table5_server_messages.cpp.o.d"
  "table5_server_messages"
  "table5_server_messages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_server_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/ablation_star_crossover.dir/ablation_star_crossover.cpp.o"
  "CMakeFiles/ablation_star_crossover.dir/ablation_star_crossover.cpp.o.d"
  "ablation_star_crossover"
  "ablation_star_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_star_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig11_degree.dir/fig11_degree.cpp.o"
  "CMakeFiles/fig11_degree.dir/fig11_degree.cpp.o.d"
  "fig11_degree"
  "fig11_degree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_degree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for table2_operation_costs.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/table2_operation_costs.dir/table2_operation_costs.cpp.o"
  "CMakeFiles/table2_operation_costs.dir/table2_operation_costs.cpp.o.d"
  "table2_operation_costs"
  "table2_operation_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_operation_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

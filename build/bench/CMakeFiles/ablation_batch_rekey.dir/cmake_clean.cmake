file(REMOVE_RECURSE
  "CMakeFiles/ablation_batch_rekey.dir/ablation_batch_rekey.cpp.o"
  "CMakeFiles/ablation_batch_rekey.dir/ablation_batch_rekey.cpp.o.d"
  "ablation_batch_rekey"
  "ablation_batch_rekey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_batch_rekey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ablation_batch_rekey.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kg_crypto.dir/crypto/aes.cpp.o"
  "CMakeFiles/kg_crypto.dir/crypto/aes.cpp.o.d"
  "CMakeFiles/kg_crypto.dir/crypto/bigint.cpp.o"
  "CMakeFiles/kg_crypto.dir/crypto/bigint.cpp.o.d"
  "CMakeFiles/kg_crypto.dir/crypto/cbc.cpp.o"
  "CMakeFiles/kg_crypto.dir/crypto/cbc.cpp.o.d"
  "CMakeFiles/kg_crypto.dir/crypto/chacha20.cpp.o"
  "CMakeFiles/kg_crypto.dir/crypto/chacha20.cpp.o.d"
  "CMakeFiles/kg_crypto.dir/crypto/des.cpp.o"
  "CMakeFiles/kg_crypto.dir/crypto/des.cpp.o.d"
  "CMakeFiles/kg_crypto.dir/crypto/des3.cpp.o"
  "CMakeFiles/kg_crypto.dir/crypto/des3.cpp.o.d"
  "CMakeFiles/kg_crypto.dir/crypto/hmac.cpp.o"
  "CMakeFiles/kg_crypto.dir/crypto/hmac.cpp.o.d"
  "CMakeFiles/kg_crypto.dir/crypto/md5.cpp.o"
  "CMakeFiles/kg_crypto.dir/crypto/md5.cpp.o.d"
  "CMakeFiles/kg_crypto.dir/crypto/random.cpp.o"
  "CMakeFiles/kg_crypto.dir/crypto/random.cpp.o.d"
  "CMakeFiles/kg_crypto.dir/crypto/rsa.cpp.o"
  "CMakeFiles/kg_crypto.dir/crypto/rsa.cpp.o.d"
  "CMakeFiles/kg_crypto.dir/crypto/sha1.cpp.o"
  "CMakeFiles/kg_crypto.dir/crypto/sha1.cpp.o.d"
  "CMakeFiles/kg_crypto.dir/crypto/sha256.cpp.o"
  "CMakeFiles/kg_crypto.dir/crypto/sha256.cpp.o.d"
  "CMakeFiles/kg_crypto.dir/crypto/suite.cpp.o"
  "CMakeFiles/kg_crypto.dir/crypto/suite.cpp.o.d"
  "libkg_crypto.a"
  "libkg_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

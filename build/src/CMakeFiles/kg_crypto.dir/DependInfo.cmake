
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cpp" "src/CMakeFiles/kg_crypto.dir/crypto/aes.cpp.o" "gcc" "src/CMakeFiles/kg_crypto.dir/crypto/aes.cpp.o.d"
  "/root/repo/src/crypto/bigint.cpp" "src/CMakeFiles/kg_crypto.dir/crypto/bigint.cpp.o" "gcc" "src/CMakeFiles/kg_crypto.dir/crypto/bigint.cpp.o.d"
  "/root/repo/src/crypto/cbc.cpp" "src/CMakeFiles/kg_crypto.dir/crypto/cbc.cpp.o" "gcc" "src/CMakeFiles/kg_crypto.dir/crypto/cbc.cpp.o.d"
  "/root/repo/src/crypto/chacha20.cpp" "src/CMakeFiles/kg_crypto.dir/crypto/chacha20.cpp.o" "gcc" "src/CMakeFiles/kg_crypto.dir/crypto/chacha20.cpp.o.d"
  "/root/repo/src/crypto/des.cpp" "src/CMakeFiles/kg_crypto.dir/crypto/des.cpp.o" "gcc" "src/CMakeFiles/kg_crypto.dir/crypto/des.cpp.o.d"
  "/root/repo/src/crypto/des3.cpp" "src/CMakeFiles/kg_crypto.dir/crypto/des3.cpp.o" "gcc" "src/CMakeFiles/kg_crypto.dir/crypto/des3.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/CMakeFiles/kg_crypto.dir/crypto/hmac.cpp.o" "gcc" "src/CMakeFiles/kg_crypto.dir/crypto/hmac.cpp.o.d"
  "/root/repo/src/crypto/md5.cpp" "src/CMakeFiles/kg_crypto.dir/crypto/md5.cpp.o" "gcc" "src/CMakeFiles/kg_crypto.dir/crypto/md5.cpp.o.d"
  "/root/repo/src/crypto/random.cpp" "src/CMakeFiles/kg_crypto.dir/crypto/random.cpp.o" "gcc" "src/CMakeFiles/kg_crypto.dir/crypto/random.cpp.o.d"
  "/root/repo/src/crypto/rsa.cpp" "src/CMakeFiles/kg_crypto.dir/crypto/rsa.cpp.o" "gcc" "src/CMakeFiles/kg_crypto.dir/crypto/rsa.cpp.o.d"
  "/root/repo/src/crypto/sha1.cpp" "src/CMakeFiles/kg_crypto.dir/crypto/sha1.cpp.o" "gcc" "src/CMakeFiles/kg_crypto.dir/crypto/sha1.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/CMakeFiles/kg_crypto.dir/crypto/sha256.cpp.o" "gcc" "src/CMakeFiles/kg_crypto.dir/crypto/sha256.cpp.o.d"
  "/root/repo/src/crypto/suite.cpp" "src/CMakeFiles/kg_crypto.dir/crypto/suite.cpp.o" "gcc" "src/CMakeFiles/kg_crypto.dir/crypto/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

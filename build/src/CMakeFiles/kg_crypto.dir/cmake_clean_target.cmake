file(REMOVE_RECURSE
  "libkg_crypto.a"
)

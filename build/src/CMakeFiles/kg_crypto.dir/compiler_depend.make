# Empty compiler generated dependencies file for kg_crypto.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libkg_merkle.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/kg_merkle.dir/merkle/batch_signer.cpp.o"
  "CMakeFiles/kg_merkle.dir/merkle/batch_signer.cpp.o.d"
  "CMakeFiles/kg_merkle.dir/merkle/digest_tree.cpp.o"
  "CMakeFiles/kg_merkle.dir/merkle/digest_tree.cpp.o.d"
  "libkg_merkle.a"
  "libkg_merkle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_merkle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for kg_merkle.
# This may be replaced when dependencies are built.

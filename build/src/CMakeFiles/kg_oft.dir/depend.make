# Empty dependencies file for kg_oft.
# This may be replaced when dependencies are built.

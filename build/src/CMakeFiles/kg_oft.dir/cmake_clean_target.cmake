file(REMOVE_RECURSE
  "libkg_oft.a"
)

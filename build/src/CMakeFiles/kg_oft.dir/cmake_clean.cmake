file(REMOVE_RECURSE
  "CMakeFiles/kg_oft.dir/oft/oft.cpp.o"
  "CMakeFiles/kg_oft.dir/oft/oft.cpp.o.d"
  "libkg_oft.a"
  "libkg_oft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_oft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

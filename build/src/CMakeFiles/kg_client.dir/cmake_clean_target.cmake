file(REMOVE_RECURSE
  "libkg_client.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/kg_client.dir/client/client.cpp.o"
  "CMakeFiles/kg_client.dir/client/client.cpp.o.d"
  "libkg_client.a"
  "libkg_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

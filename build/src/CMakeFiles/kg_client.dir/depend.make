# Empty dependencies file for kg_client.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libkg_analysis.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/kg_analysis.dir/analysis/cost_model.cpp.o"
  "CMakeFiles/kg_analysis.dir/analysis/cost_model.cpp.o.d"
  "libkg_analysis.a"
  "libkg_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

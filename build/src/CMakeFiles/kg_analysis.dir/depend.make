# Empty dependencies file for kg_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kg_transport.dir/transport/address.cpp.o"
  "CMakeFiles/kg_transport.dir/transport/address.cpp.o.d"
  "CMakeFiles/kg_transport.dir/transport/inproc.cpp.o"
  "CMakeFiles/kg_transport.dir/transport/inproc.cpp.o.d"
  "CMakeFiles/kg_transport.dir/transport/tcp.cpp.o"
  "CMakeFiles/kg_transport.dir/transport/tcp.cpp.o.d"
  "CMakeFiles/kg_transport.dir/transport/udp.cpp.o"
  "CMakeFiles/kg_transport.dir/transport/udp.cpp.o.d"
  "libkg_transport.a"
  "libkg_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libkg_transport.a"
)

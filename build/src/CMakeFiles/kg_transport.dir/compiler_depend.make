# Empty compiler generated dependencies file for kg_transport.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transport/address.cpp" "src/CMakeFiles/kg_transport.dir/transport/address.cpp.o" "gcc" "src/CMakeFiles/kg_transport.dir/transport/address.cpp.o.d"
  "/root/repo/src/transport/inproc.cpp" "src/CMakeFiles/kg_transport.dir/transport/inproc.cpp.o" "gcc" "src/CMakeFiles/kg_transport.dir/transport/inproc.cpp.o.d"
  "/root/repo/src/transport/tcp.cpp" "src/CMakeFiles/kg_transport.dir/transport/tcp.cpp.o" "gcc" "src/CMakeFiles/kg_transport.dir/transport/tcp.cpp.o.d"
  "/root/repo/src/transport/udp.cpp" "src/CMakeFiles/kg_transport.dir/transport/udp.cpp.o" "gcc" "src/CMakeFiles/kg_transport.dir/transport/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kg_rekey.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_keygraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_merkle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/kg_rekey.dir/rekey/batch.cpp.o"
  "CMakeFiles/kg_rekey.dir/rekey/batch.cpp.o.d"
  "CMakeFiles/kg_rekey.dir/rekey/codec.cpp.o"
  "CMakeFiles/kg_rekey.dir/rekey/codec.cpp.o.d"
  "CMakeFiles/kg_rekey.dir/rekey/group_oriented.cpp.o"
  "CMakeFiles/kg_rekey.dir/rekey/group_oriented.cpp.o.d"
  "CMakeFiles/kg_rekey.dir/rekey/hybrid.cpp.o"
  "CMakeFiles/kg_rekey.dir/rekey/hybrid.cpp.o.d"
  "CMakeFiles/kg_rekey.dir/rekey/key_oriented.cpp.o"
  "CMakeFiles/kg_rekey.dir/rekey/key_oriented.cpp.o.d"
  "CMakeFiles/kg_rekey.dir/rekey/message.cpp.o"
  "CMakeFiles/kg_rekey.dir/rekey/message.cpp.o.d"
  "CMakeFiles/kg_rekey.dir/rekey/strategy.cpp.o"
  "CMakeFiles/kg_rekey.dir/rekey/strategy.cpp.o.d"
  "CMakeFiles/kg_rekey.dir/rekey/user_oriented.cpp.o"
  "CMakeFiles/kg_rekey.dir/rekey/user_oriented.cpp.o.d"
  "libkg_rekey.a"
  "libkg_rekey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_rekey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

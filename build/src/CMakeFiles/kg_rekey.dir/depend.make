# Empty dependencies file for kg_rekey.
# This may be replaced when dependencies are built.

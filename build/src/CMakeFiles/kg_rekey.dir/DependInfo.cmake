
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rekey/batch.cpp" "src/CMakeFiles/kg_rekey.dir/rekey/batch.cpp.o" "gcc" "src/CMakeFiles/kg_rekey.dir/rekey/batch.cpp.o.d"
  "/root/repo/src/rekey/codec.cpp" "src/CMakeFiles/kg_rekey.dir/rekey/codec.cpp.o" "gcc" "src/CMakeFiles/kg_rekey.dir/rekey/codec.cpp.o.d"
  "/root/repo/src/rekey/group_oriented.cpp" "src/CMakeFiles/kg_rekey.dir/rekey/group_oriented.cpp.o" "gcc" "src/CMakeFiles/kg_rekey.dir/rekey/group_oriented.cpp.o.d"
  "/root/repo/src/rekey/hybrid.cpp" "src/CMakeFiles/kg_rekey.dir/rekey/hybrid.cpp.o" "gcc" "src/CMakeFiles/kg_rekey.dir/rekey/hybrid.cpp.o.d"
  "/root/repo/src/rekey/key_oriented.cpp" "src/CMakeFiles/kg_rekey.dir/rekey/key_oriented.cpp.o" "gcc" "src/CMakeFiles/kg_rekey.dir/rekey/key_oriented.cpp.o.d"
  "/root/repo/src/rekey/message.cpp" "src/CMakeFiles/kg_rekey.dir/rekey/message.cpp.o" "gcc" "src/CMakeFiles/kg_rekey.dir/rekey/message.cpp.o.d"
  "/root/repo/src/rekey/strategy.cpp" "src/CMakeFiles/kg_rekey.dir/rekey/strategy.cpp.o" "gcc" "src/CMakeFiles/kg_rekey.dir/rekey/strategy.cpp.o.d"
  "/root/repo/src/rekey/user_oriented.cpp" "src/CMakeFiles/kg_rekey.dir/rekey/user_oriented.cpp.o" "gcc" "src/CMakeFiles/kg_rekey.dir/rekey/user_oriented.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kg_keygraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_merkle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

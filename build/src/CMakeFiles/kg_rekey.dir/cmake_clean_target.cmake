file(REMOVE_RECURSE
  "libkg_rekey.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/experiment.cpp" "src/CMakeFiles/kg_sim.dir/sim/experiment.cpp.o" "gcc" "src/CMakeFiles/kg_sim.dir/sim/experiment.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/kg_sim.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/kg_sim.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/table.cpp" "src/CMakeFiles/kg_sim.dir/sim/table.cpp.o" "gcc" "src/CMakeFiles/kg_sim.dir/sim/table.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/CMakeFiles/kg_sim.dir/sim/workload.cpp.o" "gcc" "src/CMakeFiles/kg_sim.dir/sim/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kg_server.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_client.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_rekey.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_keygraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_merkle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libkg_sim.a"
)

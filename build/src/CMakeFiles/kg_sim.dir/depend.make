# Empty dependencies file for kg_sim.
# This may be replaced when dependencies are built.

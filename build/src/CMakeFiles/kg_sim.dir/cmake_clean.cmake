file(REMOVE_RECURSE
  "CMakeFiles/kg_sim.dir/sim/experiment.cpp.o"
  "CMakeFiles/kg_sim.dir/sim/experiment.cpp.o.d"
  "CMakeFiles/kg_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/kg_sim.dir/sim/simulator.cpp.o.d"
  "CMakeFiles/kg_sim.dir/sim/table.cpp.o"
  "CMakeFiles/kg_sim.dir/sim/table.cpp.o.d"
  "CMakeFiles/kg_sim.dir/sim/workload.cpp.o"
  "CMakeFiles/kg_sim.dir/sim/workload.cpp.o.d"
  "libkg_sim.a"
  "libkg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

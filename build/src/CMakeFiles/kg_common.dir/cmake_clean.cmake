file(REMOVE_RECURSE
  "CMakeFiles/kg_common.dir/common/bytes.cpp.o"
  "CMakeFiles/kg_common.dir/common/bytes.cpp.o.d"
  "CMakeFiles/kg_common.dir/common/io.cpp.o"
  "CMakeFiles/kg_common.dir/common/io.cpp.o.d"
  "libkg_common.a"
  "libkg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for kg_common.
# This may be replaced when dependencies are built.

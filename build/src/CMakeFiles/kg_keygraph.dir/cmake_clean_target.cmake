file(REMOVE_RECURSE
  "libkg_keygraph.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/kg_keygraph.dir/keygraph/complete_graph.cpp.o"
  "CMakeFiles/kg_keygraph.dir/keygraph/complete_graph.cpp.o.d"
  "CMakeFiles/kg_keygraph.dir/keygraph/key.cpp.o"
  "CMakeFiles/kg_keygraph.dir/keygraph/key.cpp.o.d"
  "CMakeFiles/kg_keygraph.dir/keygraph/key_cover.cpp.o"
  "CMakeFiles/kg_keygraph.dir/keygraph/key_cover.cpp.o.d"
  "CMakeFiles/kg_keygraph.dir/keygraph/key_graph.cpp.o"
  "CMakeFiles/kg_keygraph.dir/keygraph/key_graph.cpp.o.d"
  "CMakeFiles/kg_keygraph.dir/keygraph/key_tree.cpp.o"
  "CMakeFiles/kg_keygraph.dir/keygraph/key_tree.cpp.o.d"
  "CMakeFiles/kg_keygraph.dir/keygraph/multi_group.cpp.o"
  "CMakeFiles/kg_keygraph.dir/keygraph/multi_group.cpp.o.d"
  "CMakeFiles/kg_keygraph.dir/keygraph/star_graph.cpp.o"
  "CMakeFiles/kg_keygraph.dir/keygraph/star_graph.cpp.o.d"
  "libkg_keygraph.a"
  "libkg_keygraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_keygraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

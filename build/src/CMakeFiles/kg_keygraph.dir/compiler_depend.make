# Empty compiler generated dependencies file for kg_keygraph.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/keygraph/complete_graph.cpp" "src/CMakeFiles/kg_keygraph.dir/keygraph/complete_graph.cpp.o" "gcc" "src/CMakeFiles/kg_keygraph.dir/keygraph/complete_graph.cpp.o.d"
  "/root/repo/src/keygraph/key.cpp" "src/CMakeFiles/kg_keygraph.dir/keygraph/key.cpp.o" "gcc" "src/CMakeFiles/kg_keygraph.dir/keygraph/key.cpp.o.d"
  "/root/repo/src/keygraph/key_cover.cpp" "src/CMakeFiles/kg_keygraph.dir/keygraph/key_cover.cpp.o" "gcc" "src/CMakeFiles/kg_keygraph.dir/keygraph/key_cover.cpp.o.d"
  "/root/repo/src/keygraph/key_graph.cpp" "src/CMakeFiles/kg_keygraph.dir/keygraph/key_graph.cpp.o" "gcc" "src/CMakeFiles/kg_keygraph.dir/keygraph/key_graph.cpp.o.d"
  "/root/repo/src/keygraph/key_tree.cpp" "src/CMakeFiles/kg_keygraph.dir/keygraph/key_tree.cpp.o" "gcc" "src/CMakeFiles/kg_keygraph.dir/keygraph/key_tree.cpp.o.d"
  "/root/repo/src/keygraph/multi_group.cpp" "src/CMakeFiles/kg_keygraph.dir/keygraph/multi_group.cpp.o" "gcc" "src/CMakeFiles/kg_keygraph.dir/keygraph/multi_group.cpp.o.d"
  "/root/repo/src/keygraph/star_graph.cpp" "src/CMakeFiles/kg_keygraph.dir/keygraph/star_graph.cpp.o" "gcc" "src/CMakeFiles/kg_keygraph.dir/keygraph/star_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

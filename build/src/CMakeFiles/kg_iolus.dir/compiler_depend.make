# Empty compiler generated dependencies file for kg_iolus.
# This may be replaced when dependencies are built.

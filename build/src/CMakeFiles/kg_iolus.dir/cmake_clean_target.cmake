file(REMOVE_RECURSE
  "libkg_iolus.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/kg_iolus.dir/iolus/iolus.cpp.o"
  "CMakeFiles/kg_iolus.dir/iolus/iolus.cpp.o.d"
  "libkg_iolus.a"
  "libkg_iolus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_iolus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/kg_server.dir/server/access_control.cpp.o"
  "CMakeFiles/kg_server.dir/server/access_control.cpp.o.d"
  "CMakeFiles/kg_server.dir/server/server.cpp.o"
  "CMakeFiles/kg_server.dir/server/server.cpp.o.d"
  "CMakeFiles/kg_server.dir/server/spec.cpp.o"
  "CMakeFiles/kg_server.dir/server/spec.cpp.o.d"
  "CMakeFiles/kg_server.dir/server/stats.cpp.o"
  "CMakeFiles/kg_server.dir/server/stats.cpp.o.d"
  "libkg_server.a"
  "libkg_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kg_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/server/access_control.cpp" "src/CMakeFiles/kg_server.dir/server/access_control.cpp.o" "gcc" "src/CMakeFiles/kg_server.dir/server/access_control.cpp.o.d"
  "/root/repo/src/server/server.cpp" "src/CMakeFiles/kg_server.dir/server/server.cpp.o" "gcc" "src/CMakeFiles/kg_server.dir/server/server.cpp.o.d"
  "/root/repo/src/server/spec.cpp" "src/CMakeFiles/kg_server.dir/server/spec.cpp.o" "gcc" "src/CMakeFiles/kg_server.dir/server/spec.cpp.o.d"
  "/root/repo/src/server/stats.cpp" "src/CMakeFiles/kg_server.dir/server/stats.cpp.o" "gcc" "src/CMakeFiles/kg_server.dir/server/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kg_rekey.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_keygraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_merkle.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

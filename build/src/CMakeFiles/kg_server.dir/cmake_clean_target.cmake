file(REMOVE_RECURSE
  "libkg_server.a"
)

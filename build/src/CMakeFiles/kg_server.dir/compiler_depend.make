# Empty compiler generated dependencies file for kg_server.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kgclient.dir/kgclient.cpp.o"
  "CMakeFiles/kgclient.dir/kgclient.cpp.o.d"
  "kgclient"
  "kgclient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kgclient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for kgclient.
# This may be replaced when dependencies are built.

# Empty dependencies file for keyserverd.
# This may be replaced when dependencies are built.

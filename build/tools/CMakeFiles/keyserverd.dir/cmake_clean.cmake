file(REMOVE_RECURSE
  "CMakeFiles/keyserverd.dir/keyserverd.cpp.o"
  "CMakeFiles/keyserverd.dir/keyserverd.cpp.o.d"
  "keyserverd"
  "keyserverd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyserverd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

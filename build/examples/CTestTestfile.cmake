# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart_runs "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_pay_per_view_runs "/root/repo/build/examples/pay_per_view")
set_tests_properties(example_pay_per_view_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_group_runs "/root/repo/build/examples/multi_group")
set_tests_properties(example_multi_group_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_failover_runs "/root/repo/build/examples/failover")
set_tests_properties(example_failover_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_secure_chat_runs "/root/repo/build/examples/secure_chat")
set_tests_properties(example_secure_chat_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/example_secure_chat.dir/secure_chat.cpp.o"
  "CMakeFiles/example_secure_chat.dir/secure_chat.cpp.o.d"
  "secure_chat"
  "secure_chat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_secure_chat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

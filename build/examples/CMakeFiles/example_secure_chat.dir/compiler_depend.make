# Empty compiler generated dependencies file for example_secure_chat.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for example_pay_per_view.
# This may be replaced when dependencies are built.

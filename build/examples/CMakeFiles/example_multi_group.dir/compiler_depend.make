# Empty compiler generated dependencies file for example_multi_group.
# This may be replaced when dependencies are built.

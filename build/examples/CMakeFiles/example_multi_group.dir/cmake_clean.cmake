file(REMOVE_RECURSE
  "CMakeFiles/example_multi_group.dir/multi_group.cpp.o"
  "CMakeFiles/example_multi_group.dir/multi_group.cpp.o.d"
  "multi_group"
  "multi_group.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_multi_group.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_failover.dir/failover.cpp.o"
  "CMakeFiles/example_failover.dir/failover.cpp.o.d"
  "failover"
  "failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

// General key graphs: the paper's Figure 1 example reproduced node for
// node, reachability-defined userset/keyset, cycle rejection, validation.
#include "keygraph/key_graph.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace keygraphs {
namespace {

// Figure 1: users u1..u4; keys k1..k4 (individual), k234, k1234.
// Edges: each ui -> ki; u2,u3,u4 reach k234; everyone reaches k1234.
KeyGraph figure1() {
  KeyGraph graph;
  for (UserId user = 1; user <= 4; ++user) graph.add_user(user);
  for (KeyId key = 1; key <= 4; ++key) graph.add_key(key);
  const KeyId k234 = 234, k1234 = 1234;
  graph.add_key(k234);
  graph.add_key(k1234);
  for (UserId user = 1; user <= 4; ++user) {
    graph.add_user_edge(user, user);  // ui -> ki
  }
  graph.add_key_edge(1, k1234);
  for (KeyId key = 2; key <= 4; ++key) graph.add_key_edge(key, k234);
  graph.add_key_edge(k234, k1234);
  return graph;
}

TEST(KeyGraph, Figure1Keysets) {
  const KeyGraph graph = figure1();
  EXPECT_EQ(graph.keyset(1), (std::set<KeyId>{1, 1234}));
  EXPECT_EQ(graph.keyset(2), (std::set<KeyId>{2, 234, 1234}));
  EXPECT_EQ(graph.keyset(3), (std::set<KeyId>{3, 234, 1234}));
  EXPECT_EQ(graph.keyset(4), (std::set<KeyId>{4, 234, 1234}));
}

TEST(KeyGraph, Figure1Usersets) {
  const KeyGraph graph = figure1();
  EXPECT_EQ(graph.userset(1234), (std::set<UserId>{1, 2, 3, 4}));
  EXPECT_EQ(graph.userset(234), (std::set<UserId>{2, 3, 4}));
  EXPECT_EQ(graph.userset(1), (std::set<UserId>{1}));
  EXPECT_EQ(graph.userset(4), (std::set<UserId>{4}));
}

TEST(KeyGraph, GeneralizedUsersetIsUnion) {
  const KeyGraph graph = figure1();
  EXPECT_EQ(graph.userset(std::set<KeyId>{1, 234}),
            (std::set<UserId>{1, 2, 3, 4}));
  EXPECT_EQ(graph.userset(std::set<KeyId>{2, 3}), (std::set<UserId>{2, 3}));
  EXPECT_TRUE(graph.userset(std::set<KeyId>{}).empty());
}

TEST(KeyGraph, RootsAreKeysWithoutOutgoingEdges) {
  const KeyGraph graph = figure1();
  EXPECT_EQ(graph.roots(), (std::vector<KeyId>{1234}));
}

TEST(KeyGraph, MultipleRootsAllowed) {
  KeyGraph graph;
  graph.add_user(1);
  graph.add_key(10);
  graph.add_key(20);
  graph.add_user_edge(1, 10);
  graph.add_user_edge(1, 20);
  EXPECT_EQ(graph.roots().size(), 2u);
  graph.validate();
}

TEST(KeyGraph, DuplicateNodesRejected) {
  KeyGraph graph;
  graph.add_user(1);
  EXPECT_THROW(graph.add_user(1), ProtocolError);
  graph.add_key(5);
  EXPECT_THROW(graph.add_key(5), ProtocolError);
}

TEST(KeyGraph, EdgesRequireExistingEndpoints) {
  KeyGraph graph;
  graph.add_user(1);
  graph.add_key(5);
  EXPECT_THROW(graph.add_user_edge(2, 5), ProtocolError);
  EXPECT_THROW(graph.add_user_edge(1, 6), ProtocolError);
  EXPECT_THROW(graph.add_key_edge(5, 6), ProtocolError);
}

TEST(KeyGraph, CyclesRejected) {
  KeyGraph graph;
  graph.add_key(1);
  graph.add_key(2);
  graph.add_key(3);
  graph.add_key_edge(1, 2);
  graph.add_key_edge(2, 3);
  EXPECT_THROW(graph.add_key_edge(3, 1), ProtocolError);  // long cycle
  EXPECT_THROW(graph.add_key_edge(1, 1), ProtocolError);  // self loop
}

TEST(KeyGraph, ValidateCatchesDanglingNodes) {
  KeyGraph graph;
  graph.add_user(1);
  EXPECT_THROW(graph.validate(), Error);  // u-node with no outgoing edge

  KeyGraph graph2;
  graph2.add_key(9);
  EXPECT_THROW(graph2.validate(), Error);  // k-node held by nobody
}

TEST(KeyGraph, Figure1Validates) {
  EXPECT_NO_THROW(figure1().validate());
}

TEST(KeyGraph, QueriesOnMissingNodesThrow) {
  const KeyGraph graph = figure1();
  EXPECT_THROW(graph.keyset(99), ProtocolError);
  EXPECT_THROW(graph.userset(KeyId{999999}), ProtocolError);
}

}  // namespace
}  // namespace keygraphs

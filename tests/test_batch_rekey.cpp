// Batch (periodic) rekeying: structural correctness of KeyTree::
// batch_update, message planning, amortization of overlapping paths, and
// the end-to-end security/convergence properties through the simulator.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/error.h"
#include "rekey/batch.h"
#include "sim/simulator.h"
#include "sim/workload.h"

namespace keygraphs {
namespace {

Bytes ik(UserId user) { return Bytes(8, static_cast<std::uint8_t>(user)); }

crypto::SecureRandom& rng() {
  static crypto::SecureRandom instance(808);
  return instance;
}

std::unique_ptr<KeyTree> build_tree(int degree, std::size_t n) {
  auto tree = std::make_unique<KeyTree>(degree, 8, rng());
  for (UserId user = 1; user <= n; ++user) tree->join(user, ik(user));
  return tree;
}

TEST(BatchUpdate, ValidationRejectsBadBatches) {
  auto tree_owner = build_tree(4, 8);
  KeyTree& tree = *tree_owner;
  EXPECT_THROW(tree.batch_update({{3, ik(3)}}, {}), ProtocolError);  // dup
  EXPECT_THROW(tree.batch_update({}, {99}), ProtocolError);  // unknown
  EXPECT_THROW(tree.batch_update({{10, ik(10)}, {10, ik(10)}}, {}),
               ProtocolError);
  EXPECT_THROW(tree.batch_update({{10, ik(10)}}, {10, 10}), ProtocolError);
  EXPECT_THROW(tree.batch_update({{10, Bytes(3, 0)}}, {}), ProtocolError);
  // Failed validation leaves the tree untouched.
  EXPECT_EQ(tree.user_count(), 8u);
  tree.check_invariants();
}

TEST(BatchUpdate, JoinAndLeaveInSameBatchRejected) {
  auto tree_owner = build_tree(4, 4);
  KeyTree& tree = *tree_owner;
  EXPECT_THROW(tree.batch_update({{9, ik(9)}}, {9}), ProtocolError);
}

TEST(BatchUpdate, EmptyBatchIsNoOp) {
  auto tree_owner = build_tree(4, 8);
  KeyTree& tree = *tree_owner;
  const SymmetricKey before = tree.group_key();
  const BatchRecord record = tree.batch_update({}, {});
  EXPECT_TRUE(record.changes.empty());
  EXPECT_EQ(tree.group_key(), before);
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  EXPECT_TRUE(rekey::plan_batch(record, encryptor).empty());
}

TEST(BatchUpdate, MembershipAndInvariants) {
  auto tree_owner = build_tree(4, 16);
  KeyTree& tree = *tree_owner;
  const BatchRecord record =
      tree.batch_update({{20, ik(20)}, {21, ik(21)}}, {3, 7, 11});
  EXPECT_EQ(tree.user_count(), 15u);
  EXPECT_TRUE(tree.has_user(20));
  EXPECT_FALSE(tree.has_user(3));
  EXPECT_EQ(record.joined.size(), 2u);
  EXPECT_EQ(record.left.size(), 3u);
  tree.check_invariants();
}

TEST(BatchUpdate, EachAffectedNodeRekeyedExactlyOnce) {
  auto tree_owner = build_tree(4, 64);
  KeyTree& tree = *tree_owner;
  const KeyVersion root_before = tree.group_key().version;
  const BatchRecord record =
      tree.batch_update({}, {1, 2, 3, 4, 5, 6, 7, 8});
  // Eight sequential leaves would bump the root key eight times; the batch
  // bumps it once.
  EXPECT_EQ(tree.group_key().version, root_before + 1);
  std::set<KeyId> seen;
  for (const BatchChange& change : record.changes) {
    EXPECT_TRUE(seen.insert(change.node).second)
        << "node " << change.node << " appears twice";
  }
}

TEST(BatchUpdate, AmortizesOverlappingPaths) {
  // Cost(batch of k leaves) must be well below k * cost(single leave).
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());

  auto sequential_owner = build_tree(4, 256);
  KeyTree& sequential = *sequential_owner;
  std::size_t sequential_cost = 0;
  for (UserId user = 1; user <= 32; ++user) {
    const LeaveRecord record = sequential.leave(user);
    encryptor.reset_counters();
    (void)rekey::make_strategy(rekey::StrategyKind::kGroupOriented)
        ->plan_leave(record, encryptor);
    sequential_cost += encryptor.key_encryptions();
  }

  auto batched_owner = build_tree(4, 256);
  KeyTree& batched = *batched_owner;
  std::vector<UserId> leavers;
  for (UserId user = 1; user <= 32; ++user) leavers.push_back(user);
  const BatchRecord record = batched.batch_update({}, leavers);
  encryptor.reset_counters();
  (void)rekey::plan_batch(record, encryptor);
  EXPECT_LT(encryptor.key_encryptions(), sequential_cost / 2)
      << "batch " << encryptor.key_encryptions() << " vs sequential "
      << sequential_cost;
}

TEST(BatchUpdate, ForwardSecrecyNoBlobUnderLeaverKeys) {
  auto tree_owner = build_tree(3, 27);
  KeyTree& tree = *tree_owner;
  std::set<KeyRef> leaver_refs;
  for (UserId user : {5u, 6u, 17u}) {
    for (const SymmetricKey& key : tree.keyset(user)) {
      leaver_refs.insert(key.ref());
    }
  }
  const BatchRecord record =
      tree.batch_update({{30, ik(30)}}, {5, 6, 17});
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  for (const rekey::OutboundRekey& outbound :
       rekey::plan_batch(record, encryptor)) {
    for (const rekey::KeyBlob& blob : outbound.message.blobs) {
      if (blob.wrap.id == individual_key_id(30)) continue;  // joiner welcome
      EXPECT_FALSE(leaver_refs.contains(blob.wrap))
          << "batch blob wrapped under a leaver's key " << to_string(blob.wrap);
    }
  }
}

TEST(BatchUpdate, JoinerKeysetsMatchTree) {
  auto tree_owner = build_tree(4, 10);
  KeyTree& tree = *tree_owner;
  const BatchRecord record =
      tree.batch_update({{50, ik(50)}, {51, ik(51)}}, {2});
  ASSERT_EQ(record.joiner_keysets.size(), 2u);
  for (const auto& [user, keys] : record.joiner_keysets) {
    const std::vector<SymmetricKey> expected = tree.keyset(user);
    EXPECT_EQ(keys, expected);
    EXPECT_EQ(keys.front().id, individual_key_id(user));
    EXPECT_EQ(keys.back().id, tree.root_id());
  }
}

TEST(BatchUpdate, SpliceInsideBatchHandled) {
  // Degree 2 forces splices; removing both children of several parents in
  // one batch exercises the changed-set bookkeeping around destroyed nodes.
  auto tree_owner = build_tree(2, 16);
  KeyTree& tree = *tree_owner;
  const BatchRecord record = tree.batch_update({}, {1, 2, 3, 4, 5});
  EXPECT_EQ(tree.user_count(), 11u);
  tree.check_invariants();
  // Every change refers to a live node.
  for (const BatchChange& change : record.changes) {
    EXPECT_NO_THROW(tree.users_under(change.node));
  }
}

class BatchEndToEnd : public ::testing::TestWithParam<int> {};

TEST_P(BatchEndToEnd, ConvergenceAndSecurity) {
  server::ServerConfig config;
  config.tree_degree = GetParam();
  config.rng_seed = 61;
  transport::InProcNetwork network;
  server::GroupKeyServer server(config, network);
  sim::ClientSimulator simulator(server, network);
  sim::WorkloadGenerator workload(1);
  simulator.apply_all(workload.initial_joins(24));

  // Snapshot a leaver's keys for the forward-secrecy check.
  client::ClientConfig eve_config;
  eve_config.user = 3;
  eve_config.suite = config.suite;
  eve_config.root = server.root_id();
  eve_config.verify = false;
  client::GroupClient eve(eve_config, nullptr);
  eve.admit_snapshot(server.tree().keyset(3), server.epoch());

  simulator.apply_batch({100, 101, 102}, {3, 8, 15, 21});
  EXPECT_EQ(server.tree().user_count(), 23u);
  server.tree().check_invariants();

  // Convergence: every member (old and new) holds the current group key.
  const SymmetricKey group = server.tree().group_key();
  for (UserId user : server.tree().users()) {
    const auto held = simulator.client(user).group_key();
    ASSERT_TRUE(held.has_value()) << "user " << user;
    EXPECT_EQ(held->secret, group.secret) << "user " << user;
  }
  // Forward secrecy: the evicted member's snapshot has none of it.
  EXPECT_NE(eve.group_key()->secret, group.secret);

  // A second batch keeps working (epoch moves, keys roll again).
  simulator.apply_batch({200}, {101});
  const SymmetricKey group2 = server.tree().group_key();
  EXPECT_NE(group2.secret, group.secret);
  for (UserId user : server.tree().users()) {
    EXPECT_EQ(simulator.client(user).group_key()->secret, group2.secret);
  }
}

INSTANTIATE_TEST_SUITE_P(Degrees, BatchEndToEnd, ::testing::Values(2, 3, 4, 8));

TEST(BatchServer, StatsRecordedUnderBatchKind) {
  transport::NullTransport transport;
  server::ServerConfig config;
  config.rng_seed = 77;
  server::GroupKeyServer server(config, transport);
  for (UserId user = 1; user <= 12; ++user) server.join(user);
  server.stats().reset();
  server.batch({20, 21}, {1, 2, 3});
  const server::Summary summary =
      server.stats().summarize(rekey::RekeyKind::kBatch);
  EXPECT_EQ(summary.operations, 1u);
  EXPECT_GT(summary.avg_encryptions, 0.0);
  // One multicast + two welcomes.
  EXPECT_EQ(summary.avg_messages, 3.0);
}

TEST(BatchServer, AclFiltersJoinersButBatchProceeds) {
  transport::NullTransport transport;
  server::ServerConfig config;
  config.rng_seed = 78;
  server::GroupKeyServer server(
      config, transport, server::AccessControl::allow_list({1, 2, 3, 20}));
  server.join(1);
  server.join(2);
  const std::vector<UserId> admitted = server.batch({20, 99}, {1});
  EXPECT_EQ(admitted, (std::vector<UserId>{20}));
  EXPECT_TRUE(server.tree().has_user(20));
  EXPECT_FALSE(server.tree().has_user(99));
  EXPECT_FALSE(server.tree().has_user(1));
}

}  // namespace
}  // namespace keygraphs

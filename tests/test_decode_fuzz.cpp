// Server-side request decode hardening: a seeded fuzzer mutates valid
// join/leave/resync/nack frames and asserts decode_request() answers every
// one of them with either a parsed Request or a typed ProtocolError —
// never a crash, a hang, or any other exception type. Malformed inputs
// are counted on server.bad_requests.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "common/error.h"
#include "common/io.h"
#include "rekey/message.h"
#include "server/request.h"
#include "telemetry/metrics.h"

namespace keygraphs {
namespace {

Bytes request_frame(rekey::MessageType type, UserId user, BytesView token,
                    std::uint64_t have_epoch = 0) {
  ByteWriter writer;
  writer.u64(user);
  writer.var_bytes(token);
  if (type == rekey::MessageType::kNackRequest) writer.u64(have_epoch);
  return rekey::Datagram{type, writer.take()}.encode();
}

std::vector<Bytes> valid_frames() {
  const Bytes token = bytes_of("fuzz-seed-token");
  return {
      request_frame(rekey::MessageType::kJoinRequest, 7, token),
      request_frame(rekey::MessageType::kLeaveRequest, 7, token),
      request_frame(rekey::MessageType::kResyncRequest, 42, token),
      request_frame(rekey::MessageType::kNackRequest, 42, token, 1234),
  };
}

TEST(DecodeFuzzTest, ValidFramesDecode) {
  for (const Bytes& frame : valid_frames()) {
    const server::Request request = server::decode_request(frame);
    EXPECT_NE(request.user, 0u);
    EXPECT_FALSE(request.token.empty());
  }
}

TEST(DecodeFuzzTest, TenThousandSeededMutationsNeverEscapeTyped) {
  // Seeded with the paper's year so a failure reproduces exactly.
  std::mt19937_64 rng(1998);
  const std::vector<Bytes> bases = valid_frames();
  std::size_t decoded = 0;
  std::size_t rejected = 0;

  for (int iteration = 0; iteration < 10'000; ++iteration) {
    Bytes frame = bases[rng() % bases.size()];
    const int mutations = 1 + static_cast<int>(rng() % 4);
    for (int m = 0; m < mutations; ++m) {
      switch (rng() % 4) {
        case 0:  // flip one byte
          if (!frame.empty()) frame[rng() % frame.size()] ^=
              static_cast<std::uint8_t>(1u << (rng() % 8));
          break;
        case 1:  // truncate
          if (!frame.empty()) frame.resize(rng() % frame.size());
          break;
        case 2: {  // extend with garbage
          const std::size_t extra = 1 + rng() % 16;
          for (std::size_t i = 0; i < extra; ++i) {
            frame.push_back(static_cast<std::uint8_t>(rng()));
          }
          break;
        }
        default:  // splice garbage over a random span
          for (std::size_t i = rng() % (frame.size() + 1); i < frame.size();
               ++i) {
            frame[i] = static_cast<std::uint8_t>(rng());
            if (rng() % 4 == 0) break;
          }
          break;
      }
    }

    try {
      const server::Request request = server::decode_request(frame);
      // Decoded requests honor every documented invariant.
      EXPECT_NE(request.user, 0u);
      EXPECT_LE(request.token.size(), server::kMaxRequestTokenBytes);
      ++decoded;
    } catch (const ProtocolError&) {
      ++rejected;  // the one sanctioned answer for malformed input
    }
    // Any other exception type (ParseError leaking, std::exception, ...)
    // propagates out of the try above and fails the test.
  }

  EXPECT_EQ(decoded + rejected, 10'000u);
  // The corpus must actually exercise both sides of the contract.
  EXPECT_GT(rejected, 100u);
  EXPECT_GT(decoded, 0u);
}

TEST(DecodeFuzzTest, TargetedRejections) {
  // Non-request types are refused even when perfectly well-formed.
  EXPECT_THROW(server::decode_request(
                   rekey::Datagram{rekey::MessageType::kRekey, {}}.encode()),
               ProtocolError);
  EXPECT_THROW(
      server::decode_request(
          rekey::Datagram{rekey::MessageType::kRetryLater, {}}.encode()),
      ProtocolError);
  // User id 0 is reserved.
  EXPECT_THROW(server::decode_request(request_frame(
                   rekey::MessageType::kJoinRequest, 0, bytes_of("t"))),
               ProtocolError);
  // Oversized token.
  const Bytes big(server::kMaxRequestTokenBytes + 1, 0xab);
  EXPECT_THROW(server::decode_request(request_frame(
                   rekey::MessageType::kJoinRequest, 5, big)),
               ProtocolError);
  // Trailing bytes after a complete payload.
  Bytes trailing = request_frame(rekey::MessageType::kResyncRequest, 5,
                                 bytes_of("t"));
  trailing.push_back(0x00);
  EXPECT_THROW(server::decode_request(trailing), ProtocolError);
  // Truncated mid-token.
  Bytes cut = request_frame(rekey::MessageType::kLeaveRequest, 5,
                            bytes_of("longer-token"));
  cut.resize(cut.size() - 4);
  EXPECT_THROW(server::decode_request(cut), ProtocolError);
}

TEST(DecodeFuzzTest, BadRequestsAreCounted) {
  telemetry::set_enabled(true);
  auto& counter = telemetry::Registry::global().counter("server.bad_requests");
  const std::uint64_t before = counter.value();
  EXPECT_THROW(server::decode_request(Bytes{0xff, 0xff}), ProtocolError);
  EXPECT_THROW(server::decode_request(request_frame(
                   rekey::MessageType::kJoinRequest, 0, bytes_of("t"))),
               ProtocolError);
  EXPECT_EQ(counter.value(), before + 2);
  telemetry::set_enabled(false);
}

}  // namespace
}  // namespace keygraphs

// StarGraph: the paper's baseline. Every user holds exactly two keys, joins
// touch only the group key, and leaves fan out to all n-1 members.
#include "keygraph/star_graph.h"

#include <gtest/gtest.h>

#include "rekey/strategy.h"

namespace keygraphs {
namespace {

crypto::SecureRandom& rng() {
  static crypto::SecureRandom instance(31);
  return instance;
}

Bytes ik(UserId user) { return Bytes(8, static_cast<std::uint8_t>(user)); }

TEST(StarGraph, EveryUserHoldsExactlyTwoKeys) {
  StarGraph star(8, rng());
  for (UserId user = 1; user <= 20; ++user) star.join(user, ik(user));
  for (UserId user : star.users()) {
    EXPECT_EQ(star.keyset(user).size(), 2u);  // individual + group key
  }
  EXPECT_EQ(star.height(), 1u);
}

TEST(StarGraph, TotalKeysIsNPlusOne) {
  StarGraph star(8, rng());
  for (UserId user = 1; user <= 15; ++user) star.join(user, ik(user));
  EXPECT_EQ(star.key_count(), 16u);  // Table 1: n + 1
  EXPECT_EQ(star.expected_total_keys(), 16u);
}

TEST(StarGraph, JoinPathIsJustTheRoot) {
  StarGraph star(8, rng());
  for (UserId user = 1; user <= 10; ++user) {
    const JoinRecord record = star.join(user, ik(user));
    EXPECT_EQ(record.path.size(), 1u);  // only the group key changes
  }
}

TEST(StarGraph, LeaveListsAllRemainingMembersAsChildren) {
  StarGraph star(8, rng());
  for (UserId user = 1; user <= 10; ++user) star.join(user, ik(user));
  const LeaveRecord record = star.leave(5);
  ASSERT_EQ(record.path.size(), 1u);
  ASSERT_EQ(record.children.size(), 1u);
  EXPECT_EQ(record.children[0].size(), 9u);  // n - 1 individual keys
}

TEST(StarGraph, KeyOrientedLeaveCostsNMinusOne) {
  // Figure 4's conventional leave: the new group key is encrypted once per
  // remaining member.
  StarGraph star(8, rng());
  for (UserId user = 1; user <= 12; ++user) star.join(user, ik(user));
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  const auto strategy =
      rekey::make_strategy(rekey::StrategyKind::kKeyOriented);
  const LeaveRecord record = star.leave(12);
  const auto messages = strategy->plan_leave(record, encryptor);
  EXPECT_EQ(messages.size(), 11u);          // one per remaining member
  EXPECT_EQ(encryptor.key_encryptions(), 11u);  // Table 2(c): n - 1
}

TEST(StarGraph, JoinCostsTwoEncryptions) {
  // Figure 2: {k_new}_{k_old} multicast + {k_new}_{k_u} unicast.
  StarGraph star(8, rng());
  for (UserId user = 1; user <= 12; ++user) star.join(user, ik(user));
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  const auto strategy =
      rekey::make_strategy(rekey::StrategyKind::kGroupOriented);
  const JoinRecord record = star.join(13, ik(13));
  const auto messages = strategy->plan_join(record, encryptor);
  EXPECT_EQ(messages.size(), 2u);
  EXPECT_EQ(encryptor.key_encryptions(), 2u);  // Table 2(c): 2
}

TEST(StarGraph, SurvivesChurn) {
  StarGraph star(8, rng());
  UserId next = 1;
  std::vector<UserId> members;
  for (int i = 0; i < 100; ++i) {
    if (members.empty() || rng().uniform(2) == 0) {
      star.join(next, ik(next));
      members.push_back(next++);
    } else {
      const std::size_t index =
          static_cast<std::size_t>(rng().uniform(members.size()));
      star.leave(members[index]);
      members[index] = members.back();
      members.pop_back();
    }
    star.check_invariants();
    EXPECT_LE(star.height(), 1u);
  }
}

}  // namespace
}  // namespace keygraphs

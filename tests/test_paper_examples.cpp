// The paper's worked examples, reproduced literally.
//
// Figure 5 shows a degree-3 tree with nine users u1..u9 grouped as
// {u1,u2,u3}, {u4,u5,u6}, {u7,u8,u9}; Section 3 walks through u9 joining
// and leaving it under all three strategies, listing the exact rekey
// messages. These tests build that exact tree and check the message sets
// item by item, plus the Section 1.1 introduction example and the star
// protocols of Figures 2 and 4.
#include <gtest/gtest.h>

#include <set>

#include "keygraph/star_graph.h"
#include "rekey/strategy.h"

namespace keygraphs {
namespace {

using rekey::KeyBlob;
using rekey::OutboundRekey;
using rekey::Recipient;
using rekey::StrategyKind;

Bytes ik(UserId user) { return Bytes(8, static_cast<std::uint8_t>(user)); }

// Builds Figure 5's upper tree: root over three subgroup k-nodes, each
// with three user leaves — by joining u1..u9 into a degree-3 tree (the
// heuristic produces exactly this shape for n = 3^2).
struct Figure5 {
  crypto::SecureRandom rng{555};
  KeyTree tree{3, 8, rng};
  KeyId root;
  KeyId k789;  // the subtree that u9 joins/leaves

  Figure5() {
    for (UserId user = 1; user <= 9; ++user) tree.join(user, ik(user));
    root = tree.root_id();
    // Identify the k-node over {u7,u8,u9}: the parent shared by u9.
    k789 = tree.keyset(9)[1].id;
    const std::vector<UserId> subtree = tree.users_under(k789);
    EXPECT_EQ(subtree.size(), 3u);
    EXPECT_TRUE(std::find(subtree.begin(), subtree.end(), 9) !=
                subtree.end());
  }
};

// --- Section 3.3: u9 joins (after a leave to create the vacancy) --------

struct JoinScenario : Figure5 {
  JoinRecord record;
  JoinScenario() {
    tree.leave(9);                 // Figure 5 upper tree (8 users)
    record = tree.join(9, ik(9));  // the worked join of u9
  }
};

TEST(PaperFigure5, JoinPathIsK789ThenRoot) {
  JoinScenario scenario;
  // "The joining point is k-node k78 ... keys k78 -> k789 and
  // k1-8 -> k1-9 change": exactly two path entries, root first.
  ASSERT_EQ(scenario.record.path.size(), 2u);
  EXPECT_EQ(scenario.record.path[0].node, scenario.root);
  ASSERT_TRUE(scenario.record.path[0].old_key.has_value());
  ASSERT_TRUE(scenario.record.path[1].old_key.has_value());
}

TEST(PaperFigure5, UserOrientedJoinSendsThreeMessages) {
  JoinScenario scenario;
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes,
                                  scenario.rng);
  const auto messages = rekey::make_strategy(StrategyKind::kUserOriented)
                            ->plan_join(scenario.record, encryptor);
  // s -> {u1..u6}: {k1-9}k1-8 ; s -> {u7,u8}: {k1-9,k789}k78 ;
  // s -> u9: {k1-9,k789}k9.
  ASSERT_EQ(messages.size(), 3u);
  EXPECT_EQ(messages[0].message.blobs[0].targets.size(), 1u);
  EXPECT_EQ(messages[1].message.blobs[0].targets.size(), 2u);
  EXPECT_EQ(messages[2].to.kind, Recipient::Kind::kUser);
  EXPECT_EQ(messages[2].message.blobs[0].targets.size(), 2u);
  // Encryption cost h(h+1)/2 - 1 with h = 3: five encryptions.
  EXPECT_EQ(encryptor.key_encryptions(), 5u);
}

TEST(PaperFigure5, KeyOrientedJoinSendsThreeCombinedMessages) {
  JoinScenario scenario;
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes,
                                  scenario.rng);
  const auto messages = rekey::make_strategy(StrategyKind::kKeyOriented)
                            ->plan_join(scenario.record, encryptor);
  // s -> {u1..u6}: {k1-9}k1-8 ; s -> {u7,u8}: {k1-9}k1-8,{k789}k78 ;
  // s -> u9: {k1-9,k789}k9 — three messages, 2(h-1) = 4 encryptions.
  ASSERT_EQ(messages.size(), 3u);
  EXPECT_EQ(messages[0].message.blobs.size(), 1u);
  EXPECT_EQ(messages[1].message.blobs.size(), 2u);
  EXPECT_EQ(encryptor.key_encryptions(), 4u);
  // The {k1-9}k1-8 blob is the *same ciphertext* in both messages.
  EXPECT_EQ(messages[0].message.blobs[0], messages[1].message.blobs[0]);
}

TEST(PaperFigure5, GroupOrientedJoinSendsMulticastPlusUnicast) {
  JoinScenario scenario;
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes,
                                  scenario.rng);
  const auto messages = rekey::make_strategy(StrategyKind::kGroupOriented)
                            ->plan_join(scenario.record, encryptor);
  // s -> {u1..u8}: {k1-9}k1-8, {k789}k78 ; s -> u9: {k1-9,k789}k9.
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0].to.kind, Recipient::Kind::kSubgroup);
  EXPECT_EQ(messages[0].to.include, scenario.root);
  EXPECT_EQ(messages[0].message.blobs.size(), 2u);
  EXPECT_EQ(messages[1].to.user, 9u);
  EXPECT_EQ(encryptor.key_encryptions(), 4u);
}

// --- Section 3.4: u9 leaves the lower tree ------------------------------

struct LeaveScenario : Figure5 {
  std::vector<SymmetricKey> u9_keys;
  LeaveRecord record;
  LeaveScenario() {
    u9_keys = tree.keyset(9);
    record = tree.leave(9);
  }
};

TEST(PaperFigure5, LeaveChangesK78AndRoot) {
  LeaveScenario scenario;
  ASSERT_EQ(scenario.record.path.size(), 2u);
  EXPECT_EQ(scenario.record.path[0].node, scenario.root);
  EXPECT_EQ(scenario.record.path[1].node, scenario.k789);
  // Children: root has {k123, k456, k78-on-path}; k78 has {u7, u8}.
  EXPECT_EQ(scenario.record.children[0].size(), 3u);
  EXPECT_EQ(scenario.record.children[1].size(), 2u);
}

TEST(PaperFigure5, UserOrientedLeaveSendsFourMessages) {
  LeaveScenario scenario;
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes,
                                  scenario.rng);
  const auto messages = rekey::make_strategy(StrategyKind::kUserOriented)
                            ->plan_leave(scenario.record, encryptor);
  // {k1-8}k123 ; {k1-8}k456 ; {k1-8,k78}k7 ; {k1-8,k78}k8.
  ASSERT_EQ(messages.size(), 4u);
  std::multiset<std::size_t> target_counts;
  for (const OutboundRekey& outbound : messages) {
    target_counts.insert(outbound.message.blobs[0].targets.size());
  }
  EXPECT_EQ(target_counts, (std::multiset<std::size_t>{1, 1, 2, 2}));
  // (d-1) * (1 + 2) = 6 encryptions.
  EXPECT_EQ(encryptor.key_encryptions(), 6u);
}

TEST(PaperFigure5, KeyOrientedLeaveSendsFourMessagesWithSharedChain) {
  LeaveScenario scenario;
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes,
                                  scenario.rng);
  const auto messages = rekey::make_strategy(StrategyKind::kKeyOriented)
                            ->plan_leave(scenario.record, encryptor);
  // {k1-8}k123 ; {k1-8}k456 ; {k1-8}k78,{k78}k7 ; {k1-8}k78,{k78}k8.
  ASSERT_EQ(messages.size(), 4u);
  // Cost d(h-1) - 1 = 5 (the paper's own example count: five ciphertexts).
  EXPECT_EQ(encryptor.key_encryptions(), 5u);
  // The {k1-8}_{k78'} chain ciphertext is shared between u7's and u8's
  // messages ("by storing encrypted new keys for use in different rekey
  // messages").
  std::vector<const KeyBlob*> chain_blobs;
  for (const OutboundRekey& outbound : messages) {
    for (const KeyBlob& blob : outbound.message.blobs) {
      if (blob.wrap.id == scenario.k789 &&
          blob.targets[0].id == scenario.root) {
        chain_blobs.push_back(&blob);
      }
    }
  }
  ASSERT_EQ(chain_blobs.size(), 2u);
  EXPECT_EQ(chain_blobs[0]->ciphertext, chain_blobs[1]->ciphertext);
}

TEST(PaperFigure5, GroupOrientedLeaveSendsOneMessageWithFiveItems) {
  LeaveScenario scenario;
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes,
                                  scenario.rng);
  const auto messages = rekey::make_strategy(StrategyKind::kGroupOriented)
                            ->plan_leave(scenario.record, encryptor);
  // L0 = {k1-8}k123,{k1-8}k456,{k1-8}k78 ; L1 = {k78}k7,{k78}k8.
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0].message.blobs.size(), 5u);
  EXPECT_EQ(encryptor.key_encryptions(), 5u);
}

TEST(PaperFigure5, NoLeaveBlobUsesAnyKeyU9Held) {
  LeaveScenario scenario;
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes,
                                  scenario.rng);
  std::set<KeyRef> held;
  for (const SymmetricKey& key : scenario.u9_keys) held.insert(key.ref());
  for (StrategyKind kind :
       {StrategyKind::kUserOriented, StrategyKind::kKeyOriented,
        StrategyKind::kGroupOriented, StrategyKind::kHybrid}) {
    for (const OutboundRekey& outbound :
         rekey::make_strategy(kind)->plan_leave(scenario.record, encryptor)) {
      for (const KeyBlob& blob : outbound.message.blobs) {
        EXPECT_FALSE(held.contains(blob.wrap)) << rekey::strategy_name(kind);
      }
    }
  }
}

// --- Section 1.1 introduction example ------------------------------------

TEST(PaperIntroduction, NineUsersLeaveCostsFiveNotEight) {
  // "by giving each user three keys instead of two, the server performs
  // five encryptions instead of eight" — u1 leaves the 3x3 group.
  Figure5 scenario;
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes,
                                  scenario.rng);
  const LeaveRecord record = scenario.tree.leave(1);
  (void)rekey::make_strategy(StrategyKind::kGroupOriented)
      ->plan_leave(record, encryptor);
  EXPECT_EQ(encryptor.key_encryptions(), 5u);
}

// --- Figures 2 and 4: star join/leave ------------------------------------

TEST(PaperFigure2, StarJoinIsTwoMessagesTwoEncryptions) {
  crypto::SecureRandom rng(556);
  StarGraph star(8, rng);
  for (UserId user = 1; user <= 3; ++user) star.join(user, ik(user));
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng);
  const JoinRecord record = star.join(4, ik(4));  // Figure 3's u4
  const auto messages = rekey::make_strategy(StrategyKind::kGroupOriented)
                            ->plan_join(record, encryptor);
  // s -> {u1,u2,u3}: {k1234}k123 ; s -> u4: {k1234}k4.
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(encryptor.key_encryptions(), 2u);
}

TEST(PaperFigure4, StarLeaveUnicastsToEachRemainingMember) {
  crypto::SecureRandom rng(557);
  StarGraph star(8, rng);
  for (UserId user = 1; user <= 4; ++user) star.join(user, ik(user));
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng);
  const LeaveRecord record = star.leave(4);
  const auto messages = rekey::make_strategy(StrategyKind::kKeyOriented)
                            ->plan_leave(record, encryptor);
  // for each v in {u1,u2,u3}: s -> v : {k123}kv.
  ASSERT_EQ(messages.size(), 3u);
  EXPECT_EQ(encryptor.key_encryptions(), 3u);
  for (const OutboundRekey& outbound : messages) {
    EXPECT_EQ(outbound.message.blobs.size(), 1u);
    EXPECT_EQ(outbound.message.blobs[0].targets.size(), 1u);
  }
}

}  // namespace
}  // namespace keygraphs

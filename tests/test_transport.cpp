// InProcNetwork subgroup-multicast semantics and the NullTransport counters.
#include "transport/inproc.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace keygraphs::transport {
namespace {

using rekey::Recipient;

struct Inbox {
  std::vector<Bytes> messages;
  InProcNetwork::ClientHandler handler() {
    return [this](BytesView data) {
      messages.emplace_back(data.begin(), data.end());
    };
  }
};

ServerTransport::Resolver no_resolver() {
  return []() -> std::vector<UserId> {
    ADD_FAILURE() << "InProcNetwork must not resolve subgroups";
    return {};
  };
}

TEST(InProc, UnicastReachesExactlyThatClient) {
  InProcNetwork network;
  Inbox a, b;
  network.attach_client(1, a.handler());
  network.attach_client(2, b.handler());
  network.deliver(Recipient::to_user(1), bytes_of("hi"), no_resolver());
  EXPECT_EQ(a.messages.size(), 1u);
  EXPECT_TRUE(b.messages.empty());
}

TEST(InProc, UnicastToUnknownUserDropsSilently) {
  InProcNetwork network;
  EXPECT_NO_THROW(
      network.deliver(Recipient::to_user(9), bytes_of("x"), no_resolver()));
}

TEST(InProc, SubgroupMulticastBySubscription) {
  InProcNetwork network;
  Inbox a, b, c;
  network.attach_client(1, a.handler());
  network.attach_client(2, b.handler());
  network.attach_client(3, c.handler());
  network.subscribe(1, 100);
  network.subscribe(2, 100);
  // 3 not subscribed.
  network.deliver(Recipient::to_subgroup(100), bytes_of("sub"),
                  no_resolver());
  EXPECT_EQ(a.messages.size(), 1u);
  EXPECT_EQ(b.messages.size(), 1u);
  EXPECT_TRUE(c.messages.empty());
}

TEST(InProc, ExcludeImplementsUsersetDifference) {
  // The paper's userset(K_i) - userset(K_{i+1}) recipient sets.
  InProcNetwork network;
  Inbox a, b;
  network.attach_client(1, a.handler());
  network.attach_client(2, b.handler());
  network.subscribe(1, 100);
  network.subscribe(2, 100);
  network.subscribe(2, 50);  // user 2 also holds the deeper key
  network.deliver(Recipient::to_subgroup(100, 50), bytes_of("diff"),
                  no_resolver());
  EXPECT_EQ(a.messages.size(), 1u);
  EXPECT_TRUE(b.messages.empty());
}

TEST(InProc, UnsubscribeStopsDelivery) {
  InProcNetwork network;
  Inbox a;
  network.attach_client(1, a.handler());
  network.subscribe(1, 100);
  network.unsubscribe(1, 100);
  network.deliver(Recipient::to_subgroup(100), bytes_of("x"), no_resolver());
  EXPECT_TRUE(a.messages.empty());
}

TEST(InProc, ResubscribeReplacesSet) {
  InProcNetwork network;
  Inbox a;
  network.attach_client(1, a.handler());
  network.subscribe(1, 100);
  network.resubscribe(1, {200, 300});
  network.deliver(Recipient::to_subgroup(100), bytes_of("old"),
                  no_resolver());
  network.deliver(Recipient::to_subgroup(200), bytes_of("new"),
                  no_resolver());
  ASSERT_EQ(a.messages.size(), 1u);
  EXPECT_EQ(a.messages[0], bytes_of("new"));
}

TEST(InProc, DetachRemovesClientAndSubscriptions) {
  InProcNetwork network;
  Inbox a;
  network.attach_client(1, a.handler());
  network.subscribe(1, 100);
  network.detach_client(1);
  network.deliver(Recipient::to_subgroup(100), bytes_of("x"), no_resolver());
  network.deliver(Recipient::to_user(1), bytes_of("y"), no_resolver());
  EXPECT_TRUE(a.messages.empty());
  EXPECT_EQ(network.client_count(), 0u);
}

TEST(InProc, DuplicateAttachRejected) {
  InProcNetwork network;
  Inbox a;
  network.attach_client(1, a.handler());
  EXPECT_THROW(network.attach_client(1, a.handler()), TransportError);
}

TEST(InProc, SubscribeBeforeAttachRejected) {
  InProcNetwork network;
  EXPECT_THROW(network.subscribe(1, 100), TransportError);
}

TEST(InProc, ClientToServerPath) {
  InProcNetwork network;
  std::vector<std::pair<UserId, Bytes>> received;
  network.attach_server([&received](UserId from, BytesView data) {
    received.emplace_back(from, Bytes(data.begin(), data.end()));
  });
  network.send_to_server(42, bytes_of("join please"));
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].first, 42u);
  EXPECT_EQ(received[0].second, bytes_of("join please"));
}

TEST(InProc, SendToServerWithoutHandlerThrows) {
  InProcNetwork network;
  EXPECT_THROW(network.send_to_server(1, bytes_of("x")), TransportError);
}

TEST(InProc, HandlerMayResubscribeDuringDelivery) {
  // Clients resubscribe from inside their delivery handler (the simulator
  // does this after every rekey); the network must tolerate mutation
  // mid-multicast.
  InProcNetwork network;
  int delivered = 0;
  network.attach_client(1, [&](BytesView) {
    ++delivered;
    network.resubscribe(1, {200});
  });
  network.attach_client(2, [&](BytesView) {
    ++delivered;
    network.resubscribe(2, {200});
  });
  network.subscribe(1, 100);
  network.subscribe(2, 100);
  network.deliver(Recipient::to_subgroup(100), bytes_of("x"), no_resolver());
  EXPECT_EQ(delivered, 2);
}

TEST(InProc, CountersTrackDeliveries) {
  InProcNetwork network;
  Inbox a;
  network.attach_client(1, a.handler());
  network.subscribe(1, 100);
  network.deliver(Recipient::to_subgroup(100), Bytes(10, 0), no_resolver());
  network.deliver(Recipient::to_user(1), Bytes(5, 0), no_resolver());
  EXPECT_EQ(network.deliveries(), 2u);
  EXPECT_EQ(network.delivered_bytes(), 15u);
  network.reset_counters();
  EXPECT_EQ(network.deliveries(), 0u);
}

TEST(NullTransport, CountsWithoutDelivering) {
  NullTransport transport;
  transport.deliver(Recipient::to_subgroup(1), Bytes(100, 0), no_resolver());
  transport.deliver(Recipient::to_user(2), Bytes(20, 0), no_resolver());
  EXPECT_EQ(transport.datagrams(), 2u);
  EXPECT_EQ(transport.bytes(), 120u);
  transport.reset();
  EXPECT_EQ(transport.bytes(), 0u);
}

}  // namespace
}  // namespace keygraphs::transport

// KeyTree: the paper's Section 3.3/3.4 structural behaviour — join/leave
// records, the balance heuristic, splice-out, userset/keyset, and the
// invariants under sustained random churn.
#include "keygraph/key_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"

namespace keygraphs {
namespace {

crypto::SecureRandom& rng() {
  static crypto::SecureRandom instance(2024);
  return instance;
}

Bytes ik(UserId user) {
  Bytes key(8, 0);
  for (int i = 0; i < 8; ++i) key[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(user >> (8 * i));
  return key;
}

TEST(KeyTree, RejectsBadConstruction) {
  EXPECT_THROW(KeyTree(1, 8, rng()), ProtocolError);
  EXPECT_THROW(KeyTree(4, 0, rng()), ProtocolError);
}

TEST(KeyTree, EmptyTreeHasRootOnly) {
  KeyTree tree(4, 8, rng());
  EXPECT_EQ(tree.user_count(), 0u);
  EXPECT_EQ(tree.key_count(), 1u);
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_EQ(tree.group_key().id, tree.root_id());
  tree.check_invariants();
}

TEST(KeyTree, FirstJoinAttachesAtRoot) {
  KeyTree tree(4, 8, rng());
  const JoinRecord record = tree.join(10, ik(10));
  EXPECT_EQ(record.user, 10u);
  EXPECT_EQ(record.individual_key.id, individual_key_id(10));
  EXPECT_EQ(record.individual_key.secret, ik(10));
  ASSERT_EQ(record.path.size(), 1u);
  EXPECT_EQ(record.path[0].node, tree.root_id());
  EXPECT_FALSE(record.path[0].old_key.has_value());  // nobody held it
  EXPECT_EQ(tree.user_count(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  tree.check_invariants();
}

TEST(KeyTree, SecondJoinWrapsUnderOldRootKey) {
  KeyTree tree(4, 8, rng());
  tree.join(1, ik(1));
  const SymmetricKey old_root = tree.group_key();
  const JoinRecord record = tree.join(2, ik(2));
  ASSERT_EQ(record.path.size(), 1u);
  ASSERT_TRUE(record.path[0].old_key.has_value());
  EXPECT_EQ(record.path[0].old_key->secret, old_root.secret);
  EXPECT_EQ(record.path[0].old_key->version, old_root.version);
  EXPECT_NE(record.path[0].new_key.secret, old_root.secret);
  EXPECT_EQ(record.path[0].new_key.version, old_root.version + 1);
}

TEST(KeyTree, JoinChangesKeysRootDownward) {
  KeyTree tree(2, 8, rng());
  for (UserId user = 1; user <= 8; ++user) tree.join(user, ik(user));
  const SymmetricKey before = tree.group_key();
  const JoinRecord record = tree.join(9, ik(9));
  // Path is root-first; the root's key must have changed.
  EXPECT_EQ(record.path.front().node, tree.root_id());
  EXPECT_NE(tree.group_key().secret, before.secret);
  // Rekeyed existing nodes bump their version by one (split intermediates
  // are new nodes whose "old key" is the split leaf's individual key).
  for (const PathChange& change : record.path) {
    if (change.old_key && change.old_key->id == change.node) {
      EXPECT_EQ(change.new_key.version, change.old_key->version + 1);
    }
  }
  tree.check_invariants();
}

TEST(KeyTree, SplitCaseUsesSplitLeafIndividualKeyAsOldKey) {
  // Degree 2, three users: root has 2 children after two joins; the third
  // join must split a leaf, and the new intermediate's "old key" must be
  // the split leaf's individual key.
  KeyTree tree(2, 8, rng());
  tree.join(1, ik(1));
  tree.join(2, ik(2));
  const JoinRecord record = tree.join(3, ik(3));
  ASSERT_GE(record.path.size(), 2u);
  const PathChange& deepest = record.path.back();
  ASSERT_TRUE(deepest.old_key.has_value());
  const KeyId old_id = deepest.old_key->id;
  EXPECT_TRUE(old_id == individual_key_id(1) ||
              old_id == individual_key_id(2));
  tree.check_invariants();
}

TEST(KeyTree, DuplicateJoinRejected) {
  KeyTree tree(4, 8, rng());
  tree.join(1, ik(1));
  EXPECT_THROW(tree.join(1, ik(1)), ProtocolError);
}

TEST(KeyTree, WrongKeySizeRejected) {
  KeyTree tree(4, 8, rng());
  EXPECT_THROW(tree.join(1, Bytes(16, 0)), ProtocolError);
}

TEST(KeyTree, LeaveUnknownUserRejected) {
  KeyTree tree(4, 8, rng());
  EXPECT_THROW(tree.leave(99), ProtocolError);
}

TEST(KeyTree, LeaveRemovesLeafAndRekeysPath) {
  KeyTree tree(4, 8, rng());
  for (UserId user = 1; user <= 5; ++user) tree.join(user, ik(user));
  const SymmetricKey before = tree.group_key();
  const LeaveRecord record = tree.leave(3);
  EXPECT_EQ(record.user, 3u);
  EXPECT_FALSE(tree.has_user(3));
  EXPECT_NE(tree.group_key().secret, before.secret);
  EXPECT_EQ(record.path.front().node, tree.root_id());
  ASSERT_EQ(record.children.size(), record.path.size());
  // The removed leaf is reported for client-side garbage collection.
  EXPECT_TRUE(std::find(record.removed_nodes.begin(),
                        record.removed_nodes.end(),
                        individual_key_id(3)) != record.removed_nodes.end());
  tree.check_invariants();
}

TEST(KeyTree, LeaveChildrenSnapshotHasNewKeysOnPath) {
  KeyTree tree(2, 8, rng());
  for (UserId user = 1; user <= 8; ++user) tree.join(user, ik(user));
  const LeaveRecord record = tree.leave(8);
  for (std::size_t i = 0; i < record.path.size(); ++i) {
    for (const ChildKey& child : record.children[i]) {
      if (child.on_path) {
        ASSERT_LT(i + 1, record.path.size());
        EXPECT_EQ(child.node, record.path[i + 1].node);
        EXPECT_EQ(child.key.secret, record.path[i + 1].new_key.secret);
      }
    }
  }
  tree.check_invariants();
}

TEST(KeyTree, SingleChildParentSplicedOut) {
  // Degree 2: [1,2] under one intermediate, [3] ... build 3 users: root has
  // children {intermediate(1,2), leaf3}? With the lightest-subtree
  // heuristic: joins 1,2 attach at root, join 3 splits a leaf. Then leaving
  // one of the split pair must splice the intermediate out.
  KeyTree tree(2, 8, rng());
  tree.join(1, ik(1));
  tree.join(2, ik(2));
  const JoinRecord third = tree.join(3, ik(3));
  const KeyId intermediate = third.path.back().node;
  // Find which original user shares the intermediate with user 3.
  const std::vector<UserId> pair = tree.users_under(intermediate);
  ASSERT_EQ(pair.size(), 2u);
  const UserId sibling = pair[0] == 3 ? pair[1] : pair[0];

  const LeaveRecord record = tree.leave(sibling);
  EXPECT_TRUE(std::find(record.removed_nodes.begin(),
                        record.removed_nodes.end(),
                        intermediate) != record.removed_nodes.end());
  EXPECT_EQ(tree.user_count(), 2u);
  tree.check_invariants();
}

TEST(KeyTree, LastUserLeaves) {
  KeyTree tree(4, 8, rng());
  tree.join(1, ik(1));
  const LeaveRecord record = tree.leave(1);
  EXPECT_EQ(tree.user_count(), 0u);
  EXPECT_EQ(record.children.size(), record.path.size());
  EXPECT_TRUE(record.children[0].empty());
  tree.check_invariants();
}

TEST(KeyTree, KeysetIsLeafToRootChain) {
  KeyTree tree(3, 8, rng());
  for (UserId user = 1; user <= 9; ++user) tree.join(user, ik(user));
  const std::vector<SymmetricKey> keys = tree.keyset(5);
  ASSERT_GE(keys.size(), 2u);
  EXPECT_EQ(keys.front().id, individual_key_id(5));
  EXPECT_EQ(keys.back().id, tree.root_id());
  EXPECT_LE(keys.size(), tree.height() + 1);  // paper: at most h keys
  EXPECT_THROW(tree.keyset(1000), ProtocolError);
}

TEST(KeyTree, UsersetOfRootIsEveryone) {
  KeyTree tree(4, 8, rng());
  for (UserId user = 1; user <= 7; ++user) tree.join(user, ik(user));
  const std::vector<UserId> users = tree.users_under(tree.root_id());
  EXPECT_EQ(users, (std::vector<UserId>{1, 2, 3, 4, 5, 6, 7}));
  EXPECT_THROW(tree.users_under(424242), ProtocolError);
}

TEST(KeyTree, UsersetAndKeysetAreConsistent) {
  // (u, k) in R iff u in userset(k) iff k in keyset(u) — Section 2.1.
  KeyTree tree(3, 8, rng());
  for (UserId user = 1; user <= 20; ++user) tree.join(user, ik(user));
  for (UserId user : tree.users()) {
    for (const SymmetricKey& key : tree.keyset(user)) {
      const std::vector<UserId> holders = tree.users_under(key.id);
      EXPECT_TRUE(std::find(holders.begin(), holders.end(), user) !=
                  holders.end());
    }
  }
}

TEST(KeyTree, RootChildrenReported) {
  KeyTree tree(4, 8, rng());
  for (UserId user = 1; user <= 6; ++user) {
    const JoinRecord record = tree.join(user, ik(user));
    EXPECT_FALSE(record.root_children.empty());
    EXPECT_LE(record.root_children.size(), 4u);
  }
}

TEST(KeyTree, HeightGrowsLogarithmically) {
  KeyTree tree(4, 8, rng());
  for (UserId user = 1; user <= 256; ++user) tree.join(user, ik(user));
  // Perfect height (edges) for 256 users at degree 4 is log4(256) = 4;
  // allow slack for the heuristic.
  EXPECT_GE(tree.height(), 4u);
  EXPECT_LE(tree.height(), 6u);
  // Table 1: total keys ~ d/(d-1) * n.
  EXPECT_LT(tree.key_count(), 256 * 4 / 3 + 10);
}

struct ChurnParam {
  int degree;
  std::size_t initial;
  std::size_t operations;
};

class KeyTreeChurn : public ::testing::TestWithParam<ChurnParam> {};

TEST_P(KeyTreeChurn, InvariantsHoldThroughout) {
  const ChurnParam param = GetParam();
  crypto::SecureRandom churn_rng(
      static_cast<std::uint64_t>(param.degree) * 1000 + param.initial);
  KeyTree tree(param.degree, 8, churn_rng);
  std::vector<UserId> members;
  UserId next = 1;
  for (std::size_t i = 0; i < param.initial; ++i) {
    tree.join(next, ik(next));
    members.push_back(next++);
  }
  tree.check_invariants();

  for (std::size_t op = 0; op < param.operations; ++op) {
    const bool join = members.empty() || churn_rng.uniform(2) == 0;
    if (join) {
      const JoinRecord record = tree.join(next, ik(next));
      EXPECT_EQ(record.path.front().node, tree.root_id());
      members.push_back(next++);
    } else {
      const std::size_t index =
          static_cast<std::size_t>(churn_rng.uniform(members.size()));
      const UserId user = members[index];
      const LeaveRecord record = tree.leave(user);
      EXPECT_EQ(record.children.size(), record.path.size());
      members[index] = members.back();
      members.pop_back();
    }
    tree.check_invariants();
    EXPECT_EQ(tree.user_count(), members.size());
  }
  // Height stays within one level of the balanced optimum.
  if (members.size() >= 4) {
    const double optimal = std::log(static_cast<double>(members.size())) /
                           std::log(param.degree);
    EXPECT_LE(static_cast<double>(tree.height()), optimal + 2.5);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DegreesAndSizes, KeyTreeChurn,
    ::testing::Values(ChurnParam{2, 16, 150}, ChurnParam{3, 27, 150},
                      ChurnParam{4, 64, 200}, ChurnParam{8, 64, 150},
                      ChurnParam{16, 32, 100}, ChurnParam{4, 1, 100},
                      ChurnParam{2, 0, 120}));

}  // namespace
}  // namespace keygraphs

// Flash-crowd soak: the PR's acceptance run for overload control.
//
// A degraded sharded server (K lanes, bounded admission) takes a join
// burst several times larger than its total queue capacity, all at once.
// Acceptance, asserted here exactly as ISSUE.md states it:
//
//   - the per-lane queue depth never exceeds admission_queue — the bound
//     holds at the worst moment of the crowd, not just on average;
//   - every shed request is eventually admitted by retrying on the
//     server's own retry-after hints — load shedding defers work, it
//     never loses members;
//   - zero shed-deadline violations in degraded mode — the periodic
//     flush always drains a buffered op before shed_deadline_us expires
//     (period < deadline by construction), so nothing rots in the queue;
//   - zero convergence-SLO violations while degraded.
//
// Then the crowd leaves through the same gate, proving eviction coalesces
// and drains identically.
//
// Scale knobs (ctest default is modest; the acceptance run is
// KG_OVERLOAD_SOAK_USERS=32768 KG_OVERLOAD_SOAK_BASE=65536):
//   KG_OVERLOAD_SOAK_USERS  flash-crowd size        (default 2048)
//   KG_OVERLOAD_SOAK_BASE   members before the crowd (default 512)
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "server/overload.h"
#include "server/sharded_server.h"
#include "telemetry/convergence.h"
#include "telemetry/metrics.h"
#include "transport/inproc.h"

namespace keygraphs {
namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

TEST(OverloadSoak, FlashCrowdIsBoundedShedThenFullyAdmitted) {
  const std::size_t crowd = env_size("KG_OVERLOAD_SOAK_USERS", 2048);
  const std::size_t kBase = env_size("KG_OVERLOAD_SOAK_BASE", 512);
  constexpr std::size_t kShards = 4;
  constexpr std::size_t kQueue = 64;   // per-lane bound: capacity 256/round

  telemetry::set_enabled(true);
  telemetry::Registry::global().reset();
  telemetry::ConvergenceMonitor::global().reset();

  std::uint64_t now_us = 1'000'000;
  transport::InProcNetwork network;
  server::ShardedServerConfig config;
  config.shards = kShards;
  config.base.rng_seed = 1998;
  config.base.clock_us = [&now_us] { return now_us; };
  config.base.retransmit_window = 2;
  config.base.overload.enabled = true;
  config.base.overload.admission_queue = kQueue;
  config.base.overload.degraded_batch_period_us = 100'000;
  config.base.overload.shed_deadline_us = 250'000;  // > flush period
  // Queue fraction 0 pins the monitor degraded: every offer coalesces,
  // which is exactly the regime the acceptance criteria speak about.
  config.base.overload.degrade_queue_fraction = 0.0;
  server::ShardedGroupKeyServer server(config, network);

  std::vector<UserId> initial;
  for (UserId user = 1; user <= kBase; ++user) initial.push_back(user);
  server.preload(initial);
  ASSERT_EQ(server.member_count(), kBase);

  (void)server.poll_overload();  // first evaluate pins degraded
  ASSERT_EQ(server.health(), server::overload::HealthState::kDegraded);

  auto& deadline_shed = telemetry::Registry::global().counter(
      "server.overload.deadline_shed");
  auto& slo_violations =
      telemetry::Registry::global().counter("fleet.slo_violations");
  const std::uint64_t deadline_shed_before = deadline_shed.value();
  const std::uint64_t slo_before = slo_violations.value();

  // The flash crowd: every new user offers at once, then the shed ones
  // keep retrying each flush period until the gate lets them coalesce.
  std::vector<UserId> pending;
  for (std::size_t i = 0; i < crowd; ++i) {
    pending.push_back(static_cast<UserId>(kBase + 1 + i));
  }
  std::size_t shed_total = 0;
  std::size_t rounds = 0;
  const std::size_t round_cap = 16 + 4 * crowd / (kShards * kQueue / 2);
  while (!pending.empty()) {
    ASSERT_LT(rounds++, round_cap) << pending.size() << " joins never landed";
    std::vector<UserId> still_pending;
    for (const UserId user : pending) {
      const server::GateResult gate =
          server.offer_join(user, server.auth().join_token(user));
      ASSERT_FALSE(gate.denied) << "user " << user;
      switch (gate.action) {
        case server::overload::Admission::kCoalesce:
          break;  // buffered; the next flush batches it in
        case server::overload::Admission::kShed:
          ASSERT_GT(gate.retry_after_us, 0u) << "shed without a hint";
          ++shed_total;
          still_pending.push_back(user);
          break;
        default:
          FAIL() << "degraded server admitted user " << user << " inline";
      }
    }
    // The queue bound held at the burst's peak, not just after draining.
    ASSERT_LE(server.admission().max_depth(), kQueue);
    pending.swap(still_pending);

    now_us += config.base.overload.degraded_batch_period_us;
    const server::OverloadTick tick = server.poll_overload();
    // Flush period < shed deadline: nothing ever expires in the buffer.
    ASSERT_TRUE(tick.shed.empty()) << tick.shed.size()
                                   << " deadline violations in degraded mode";
  }

  // Every shed request was eventually admitted via retry.
  EXPECT_EQ(server.member_count(), kBase + crowd);
  for (std::size_t i = 0; i < crowd; ++i) {
    ASSERT_TRUE(server.has_member(static_cast<UserId>(kBase + 1 + i)));
  }
  // A crowd 8x the per-round capacity must actually have been shed, or
  // this test exercised nothing.
  EXPECT_GT(shed_total, 0u);
  EXPECT_EQ(deadline_shed.value(), deadline_shed_before);
  EXPECT_EQ(slo_violations.value(), slo_before);

  // Mass eviction drains through the same bounded gate.
  pending.clear();
  for (std::size_t i = 0; i < crowd; ++i) {
    pending.push_back(static_cast<UserId>(kBase + 1 + i));
  }
  rounds = 0;
  while (!pending.empty()) {
    ASSERT_LT(rounds++, round_cap) << pending.size() << " leaves never landed";
    std::vector<UserId> still_pending;
    for (const UserId user : pending) {
      const server::GateResult gate =
          server.offer_leave(user, server.auth().leave_token(user));
      ASSERT_FALSE(gate.denied) << "user " << user;
      if (gate.action == server::overload::Admission::kShed) {
        still_pending.push_back(user);
      }
    }
    ASSERT_LE(server.admission().max_depth(), kQueue);
    pending.swap(still_pending);

    now_us += config.base.overload.degraded_batch_period_us;
    const server::OverloadTick tick = server.poll_overload();
    ASSERT_TRUE(tick.shed.empty());
  }
  EXPECT_EQ(server.member_count(), kBase);
  EXPECT_EQ(deadline_shed.value(), deadline_shed_before);

  telemetry::set_enabled(false);
}

}  // namespace
}  // namespace keygraphs

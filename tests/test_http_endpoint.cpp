// Embedded telemetry HTTP endpoint: routing, live scrapes against an
// ephemeral-port server, and scraping while metrics churn on other threads.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "http_client.h"
#include "json_check.h"
#include "telemetry/http.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace keygraphs::telemetry {
namespace {

using testhttp::http_get;
using testhttp::http_body;

std::string body_of(const std::string& response) {
  return http_body(response);
}

TEST(HttpRouting, HealthzAnswersOk) {
  const std::string response = TelemetryHttpServer::respond("/healthz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_EQ(body_of(response), "ok\n");
}

TEST(HttpRouting, HealthzTracksTheServerHealthGauge) {
  // The overload HealthMonitor publishes server.health unconditionally
  // (0/1/2); /healthz maps it to load-balancer semantics: degraded still
  // answers 200 (keep routing, the server is batching), shedding answers
  // 503 (drain this instance).
  auto& health = Registry::global().gauge("server.health");
  health.set(1.0);
  std::string response = TelemetryHttpServer::respond("/healthz");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_EQ(body_of(response), "degraded\n");

  health.set(2.0);
  response = TelemetryHttpServer::respond("/healthz");
  EXPECT_NE(response.find("503"), std::string::npos);
  EXPECT_EQ(body_of(response), "shedding\n");

  health.set(0.0);
  response = TelemetryHttpServer::respond("/healthz");
  EXPECT_EQ(body_of(response), "ok\n");
}

TEST(HttpRouting, MetricsRendersPrometheusText) {
  Registry::global().reset();
  Registry::global().counter("http.test_counter", "A routed counter").add(3);
  const std::string response = TelemetryHttpServer::respond("/metrics");
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  const std::string body = body_of(response);
  EXPECT_NE(body.find("# TYPE kg_http_test_counter counter"),
            std::string::npos);
  EXPECT_NE(body.find("# HELP kg_http_test_counter A routed counter"),
            std::string::npos);
  EXPECT_NE(body.find("kg_http_test_counter 3"), std::string::npos);
}

TEST(HttpRouting, TraceRendersValidChromeJson) {
  Registry::global().reset();
  { ScopedSpan span("http.routed_span"); }
  const std::string response = TelemetryHttpServer::respond("/trace");
  EXPECT_NE(response.find("application/json"), std::string::npos);
  const std::string body = body_of(response);
  EXPECT_TRUE(testjson::json_valid(body)) << body.substr(0, 200);
  EXPECT_NE(body.find("http.routed_span"), std::string::npos);
}

TEST(HttpRouting, UnknownPathIs404) {
  const std::string response = TelemetryHttpServer::respond("/nope");
  EXPECT_NE(response.find("404 Not Found"), std::string::npos);
}

TEST(HttpServer, BindsAnEphemeralPortAndServes) {
  Registry::global().reset();
  Registry::global().gauge("http.live_gauge").set(11);
  TelemetryHttpServer server(0);
  ASSERT_NE(server.port(), 0);

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_EQ(body_of(health), "ok\n");

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("kg_http_live_gauge 11"), std::string::npos);

  EXPECT_NE(http_get(server.port(), "/missing").find("404"),
            std::string::npos);
  server.stop();
  server.stop();  // idempotent
}

TEST(HttpServer, ScrapesWhileMetricsChurn) {
  Registry::global().reset();
  TelemetryHttpServer server(0);
  std::atomic<bool> done{false};
  std::thread churner([&done] {
    auto& counter = Registry::global().counter("http.churn");
    while (!done.load(std::memory_order_relaxed)) {
      counter.add(1);
      { ScopedSpan span("http.churn_span"); }
    }
  });
  for (int i = 0; i < 8; ++i) {
    const std::string metrics = http_get(server.port(), "/metrics");
    EXPECT_NE(metrics.find("200 OK"), std::string::npos);
    const std::string trace = body_of(http_get(server.port(), "/trace"));
    EXPECT_TRUE(testjson::json_valid(trace));
  }
  done.store(true, std::memory_order_relaxed);
  churner.join();
  server.stop();
}

TEST(HttpServer, SequentialScrapesAreIndependentConnections) {
  TelemetryHttpServer server(0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NE(http_get(server.port(), "/healthz").find("200 OK"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace keygraphs::telemetry

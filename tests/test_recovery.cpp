// Client loss-recovery state machine: gap detection, the reorder buffer,
// NACK emission with exponential (deterministically jittered) backoff on an
// injected clock, escalation to resync, and strategy-uniform duplicate /
// replay suppression — keys never roll back under any rekeying strategy.
#include <gtest/gtest.h>

#include "client/client.h"
#include "common/io.h"
#include "rekey/strategy.h"
#include "server/server.h"
#include "transport/inproc.h"

namespace keygraphs::client {
namespace {

using rekey::RekeyMessage;

crypto::SecureRandom& rng() {
  static crypto::SecureRandom instance(505);
  return instance;
}

SymmetricKey make_key(KeyId id, KeyVersion version) {
  return SymmetricKey{id, version, rng().bytes(8)};
}

Bytes seal_plain(const RekeyMessage& message) {
  const rekey::RekeySealer sealer(rekey::SigningMode::kNone,
                                  crypto::DigestAlgorithm::kNone, nullptr);
  return sealer.seal(std::span(&message, 1))[0];
}

/// A recovery-enabled client on a manual clock, pre-loaded with its
/// individual key and one path key (id 50) so crafted "regular" rekeys
/// (group key wrapped under the path key) decrypt without being
/// welcome-shaped.
struct Rig {
  explicit Rig(UserId user = 1,
               const std::function<void(ClientConfig&)>& tweak = {}) {
    ClientConfig config;
    config.user = user;
    config.suite = crypto::CryptoSuite::paper_plain();
    config.group = 0;
    config.root = 100;
    config.verify = false;
    config.rng_seed = 1;
    config.recovery.clock_us = [this] { return now; };
    config.recovery.token = bytes_of("resync-token");
    if (tweak) tweak(config);
    client = std::make_unique<GroupClient>(config, nullptr);
    individual = make_key(individual_key_id(user), 1);
    path = make_key(50, 1);
    client->install_individual_key(individual);
    client->admit_snapshot({path}, 0);
  }

  /// Regular rekey at `epoch`: new group key wrapped under the path key.
  Bytes group_rekey(std::uint64_t epoch, KeyId wrap_unknown = 0) {
    rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
    const SymmetricKey wrap =
        wrap_unknown != 0 ? make_key(wrap_unknown, 1) : path;
    RekeyMessage message;
    message.epoch = epoch;
    const SymmetricKey group =
        make_key(100, static_cast<KeyVersion>(epoch));
    message.blobs.push_back(encryptor.wrap(wrap, std::span(&group, 1)));
    return seal_plain(message);
  }

  /// Keyset replay (welcome/resync shape): everything under the
  /// individual key.
  Bytes replay_rekey(std::uint64_t epoch) {
    rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
    RekeyMessage message;
    message.epoch = epoch;
    const SymmetricKey group =
        make_key(100, static_cast<KeyVersion>(epoch));
    const SymmetricKey fresh_path =
        SymmetricKey{50, static_cast<KeyVersion>(epoch), path.secret};
    message.blobs.push_back(encryptor.wrap(individual, std::span(&group, 1)));
    message.blobs.push_back(
        encryptor.wrap(individual, std::span(&fresh_path, 1)));
    return seal_plain(message);
  }

  std::uint64_t now = 1'000'000;
  std::unique_ptr<GroupClient> client;
  SymmetricKey individual;
  SymmetricKey path;
};

struct DecodedRequest {
  rekey::MessageType type;
  UserId user;
  Bytes token;
  std::uint64_t have_epoch = 0;  // NACKs only
};

DecodedRequest decode_request(const Bytes& wire) {
  const rekey::Datagram datagram = rekey::Datagram::decode(wire);
  ByteReader reader(datagram.payload);
  DecodedRequest request{datagram.type, reader.u64(), reader.var_bytes()};
  if (datagram.type == rekey::MessageType::kNackRequest) {
    request.have_epoch = reader.u64();
  }
  return request;
}

TEST(Recovery, GapBuffersNacksAndDrainsWhenFilled) {
  Rig rig;
  GroupClient& client = *rig.client;
  EXPECT_TRUE(client.handle_rekey(rig.group_rekey(1)).accepted);
  EXPECT_EQ(client.applied_epoch(), 1u);
  EXPECT_EQ(client.recovery_state(), RecoveryState::kSynced);
  EXPECT_FALSE(client.poll_recovery().has_value());

  // Epoch 3 over applied 1: a gap. Parked, flagged, recovery armed.
  const RekeyOutcome gap = client.handle_rekey(rig.group_rekey(3));
  EXPECT_TRUE(gap.accepted);
  EXPECT_TRUE(gap.buffered);
  EXPECT_TRUE(gap.needs_resync);
  EXPECT_EQ(client.applied_epoch(), 1u);
  EXPECT_EQ(client.last_epoch(), 3u);
  EXPECT_EQ(client.pending_count(), 1u);
  EXPECT_EQ(client.recovery_state(), RecoveryState::kAwaitingRetransmit);
  EXPECT_EQ(client.recovery_stats().gaps, 1u);

  // First NACK is due immediately and carries the applied high-water mark.
  const auto first = client.poll_recovery();
  ASSERT_TRUE(first.has_value());
  const DecodedRequest request = decode_request(*first);
  EXPECT_EQ(request.type, rekey::MessageType::kNackRequest);
  EXPECT_EQ(request.user, 1u);
  EXPECT_EQ(request.token, bytes_of("resync-token"));
  EXPECT_EQ(request.have_epoch, 1u);
  // Re-armed: nothing due until the backoff elapses.
  EXPECT_FALSE(client.poll_recovery().has_value());
  rig.now += 100'000;
  EXPECT_TRUE(client.poll_recovery().has_value());
  EXPECT_EQ(client.recovery_stats().nacks_sent, 2u);

  // The retransmitted epoch 2 fills the gap; the parked epoch 3 drains.
  const RekeyOutcome fill = client.handle_rekey(rig.group_rekey(2));
  EXPECT_TRUE(fill.accepted);
  EXPECT_EQ(client.applied_epoch(), 3u);
  EXPECT_EQ(client.pending_count(), 0u);
  EXPECT_EQ(client.recovery_state(), RecoveryState::kSynced);
  EXPECT_EQ(client.recovery_stats().completed, 1u);
  EXPECT_EQ(client.group_key()->version, 3u);
  EXPECT_FALSE(client.poll_recovery().has_value());
}

TEST(Recovery, EscalatesToResyncAfterNackBudget) {
  Rig rig(1, [](ClientConfig& config) { config.recovery.max_nacks = 2; });
  GroupClient& client = *rig.client;

  client.handle_rekey(rig.group_rekey(1));
  client.handle_rekey(rig.group_rekey(3));  // gap
  for (std::size_t nack = 1; nack <= 2; ++nack) {
    const auto request = client.poll_recovery();
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(decode_request(*request).type,
              rekey::MessageType::kNackRequest);
    rig.now += 2'000'000;
  }
  // Budget spent: the next poll escalates to a full keyset resync.
  const auto escalated = client.poll_recovery();
  ASSERT_TRUE(escalated.has_value());
  EXPECT_EQ(decode_request(*escalated).type,
            rekey::MessageType::kResyncRequest);
  EXPECT_EQ(client.recovery_state(), RecoveryState::kAwaitingResync);
  EXPECT_EQ(client.recovery_stats().resyncs_sent, 1u);
  // Still unanswered: later polls keep asking for the resync.
  rig.now += 2'000'000;
  const auto again = client.poll_recovery();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(decode_request(*again).type, rekey::MessageType::kResyncRequest);

  // The resync replay (keyset shape, current epoch) completes recovery.
  const RekeyOutcome replay = client.handle_rekey(rig.replay_rekey(3));
  EXPECT_TRUE(replay.accepted);
  EXPECT_EQ(client.applied_epoch(), 3u);
  EXPECT_EQ(client.recovery_state(), RecoveryState::kSynced);
  EXPECT_EQ(client.recovery_stats().completed, 1u);
}

TEST(Recovery, BackoffDoublesWithBoundedDeterministicJitter) {
  const auto due_intervals = [](std::size_t count) {
    Rig rig;
    GroupClient& client = *rig.client;
    client.handle_rekey(rig.group_rekey(1));
    client.handle_rekey(rig.group_rekey(3));  // arm recovery
    EXPECT_TRUE(client.poll_recovery().has_value());  // attempt 0, due now
    std::vector<std::uint64_t> intervals;
    std::uint64_t last_fire = rig.now;
    while (intervals.size() < count) {
      rig.now += 1'000;  // 1 ms resolution
      if (client.poll_recovery().has_value()) {
        intervals.push_back(rig.now - last_fire);
        last_fire = rig.now;
      }
    }
    return intervals;
  };

  const std::vector<std::uint64_t> intervals = due_intervals(4);
  const std::uint64_t base = 50'000;  // RecoveryPolicy default
  for (std::size_t attempt = 0; attempt < intervals.size(); ++attempt) {
    const std::uint64_t delay = base << attempt;
    EXPECT_GE(intervals[attempt], delay);
    // jitter <= delay/4, plus one polling-resolution step
    EXPECT_LE(intervals[attempt], delay + delay / 4 + 1'000);
  }
  // Same user, same attempt counter: the jittered schedule is replayable.
  EXPECT_EQ(intervals, due_intervals(4));
}

TEST(Recovery, ContiguousUndecryptableRekeyHoldsAppliedEpoch) {
  Rig rig;
  GroupClient& client = *rig.client;
  client.handle_rekey(rig.group_rekey(1));

  // Epoch 2 arrives contiguously but wrapped under a key we do not hold
  // (diverged keyset or payload corrupted in flight before framing checks
  // could notice). applied_epoch must not advance: the NACK re-fetches
  // epoch 2 itself.
  const RekeyOutcome outcome =
      client.handle_rekey(rig.group_rekey(2, /*wrap_unknown=*/777));
  EXPECT_TRUE(outcome.accepted);
  EXPECT_TRUE(outcome.needs_resync);
  EXPECT_EQ(client.applied_epoch(), 1u);
  EXPECT_EQ(client.last_epoch(), 2u);
  EXPECT_EQ(client.recovery_state(), RecoveryState::kAwaitingRetransmit);
  const auto request = client.poll_recovery();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(decode_request(*request).have_epoch, 1u);

  // The pristine retransmission of epoch 2 completes recovery.
  EXPECT_TRUE(client.handle_rekey(rig.group_rekey(2)).accepted);
  EXPECT_EQ(client.applied_epoch(), 2u);
  EXPECT_EQ(client.recovery_state(), RecoveryState::kSynced);
}

TEST(Recovery, KeysetReplayJumpsOverTheGap) {
  Rig rig;
  GroupClient& client = *rig.client;
  client.handle_rekey(rig.group_rekey(1));
  client.handle_rekey(rig.group_rekey(4));  // gap: 2 and 3 missing
  EXPECT_EQ(client.recovery_state(), RecoveryState::kAwaitingRetransmit);

  // A keyset replay at epoch 5 supersedes everything parked and missing.
  const RekeyOutcome replay = client.handle_rekey(rig.replay_rekey(5));
  EXPECT_TRUE(replay.accepted);
  EXPECT_EQ(client.applied_epoch(), 5u);
  EXPECT_EQ(client.pending_count(), 0u);
  EXPECT_EQ(client.recovery_state(), RecoveryState::kSynced);
  EXPECT_EQ(client.group_key()->version, 5u);
}

TEST(Recovery, ReorderBufferIsBoundedAndKeepsLowestEpochs) {
  Rig rig(1,
          [](ClientConfig& config) { config.recovery.reorder_capacity = 2; });
  GroupClient& client = *rig.client;
  client.handle_rekey(rig.group_rekey(1));

  const Bytes epoch5 = rig.group_rekey(5);
  client.handle_rekey(epoch5);
  client.handle_rekey(rig.group_rekey(4));
  EXPECT_EQ(client.pending_count(), 2u);
  client.handle_rekey(rig.group_rekey(3));  // evicts 5, keeps {3, 4}
  EXPECT_EQ(client.pending_count(), 2u);
  EXPECT_EQ(client.recovery_stats().buffered, 3u);

  // Filling the gap drains the kept epochs; the evicted epoch 5 is still
  // owed, so recovery stays armed with the new high-water mark.
  client.handle_rekey(rig.group_rekey(2));
  EXPECT_EQ(client.applied_epoch(), 4u);
  EXPECT_EQ(client.pending_count(), 0u);
  EXPECT_EQ(client.recovery_state(), RecoveryState::kAwaitingRetransmit);
  const auto request = client.poll_recovery();
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(decode_request(*request).have_epoch, 4u);

  // The re-fetched epoch 5 (same bytes as the evicted copy) completes it.
  EXPECT_TRUE(client.handle_rekey(epoch5).accepted);
  EXPECT_EQ(client.applied_epoch(), 5u);
  EXPECT_EQ(client.recovery_state(), RecoveryState::kSynced);
}

// Strategy-uniform anti-rollback: for every rekeying strategy, replaying a
// member's full delivery history — including in reverse order — changes
// nothing: no key rolls back, no epoch regresses, no recovery falsely arms.
TEST(Recovery, ReplayAndReorderNeverRollBackUnderAnyStrategy) {
  const rekey::StrategyKind strategies[] = {
      rekey::StrategyKind::kUserOriented,
      rekey::StrategyKind::kKeyOriented,
      rekey::StrategyKind::kGroupOriented,
      rekey::StrategyKind::kHybrid,
  };
  for (const rekey::StrategyKind strategy : strategies) {
    SCOPED_TRACE(rekey::strategy_name(strategy));
    server::ServerConfig config;
    config.tree_degree = 3;
    config.strategy = strategy;
    config.rng_seed = 61;
    transport::InProcNetwork network;
    server::GroupKeyServer server(config, network);

    ClientConfig member_config;
    member_config.user = 1;
    member_config.suite = config.suite;
    member_config.root = server.root_id();
    member_config.verify = false;
    GroupClient member(member_config, nullptr);
    member.install_individual_key(SymmetricKey{
        individual_key_id(1), 1,
        server.auth().individual_key(1, config.suite.key_size())});
    std::vector<Bytes> history;
    network.attach_client(1, [&](BytesView datagram) {
      history.emplace_back(datagram.begin(), datagram.end());
      member.handle_datagram(datagram);
      network.resubscribe(1, member.key_ids());
    });
    network.resubscribe(1, member.key_ids());

    for (UserId user = 1; user <= 9; ++user) server.join(user);
    server.leave(4);
    server.leave(7);
    server.batch({20, 21}, {9});
    ASSERT_EQ(member.applied_epoch(), server.epoch());
    ASSERT_FALSE(history.empty());

    const auto group_before = member.group_key();
    const auto keys_before = member.key_ids();
    const std::uint64_t last_before = member.last_epoch();
    const std::uint64_t applied_before = member.applied_epoch();

    // Replay the entire history in reverse (worst-case reordering), then
    // forward again (pure duplication).
    for (auto it = history.rbegin(); it != history.rend(); ++it) {
      EXPECT_EQ(member.handle_datagram(*it).keys_changed, 0u);
    }
    for (const Bytes& datagram : history) {
      EXPECT_EQ(member.handle_datagram(datagram).keys_changed, 0u);
    }

    EXPECT_EQ(member.last_epoch(), last_before);
    EXPECT_EQ(member.applied_epoch(), applied_before);
    EXPECT_EQ(member.key_ids(), keys_before);
    EXPECT_EQ(member.group_key()->secret, group_before->secret);
    EXPECT_EQ(member.group_key()->version, group_before->version);
    EXPECT_EQ(member.pending_count(), 0u);
    EXPECT_EQ(member.recovery_state(), RecoveryState::kSynced);
    EXPECT_GT(member.recovery_stats().duplicates, 0u);
    EXPECT_EQ(member.group_key()->secret,
              server.tree().group_key().secret);
  }
}

}  // namespace
}  // namespace keygraphs::client

// BigInt: arithmetic identities, Knuth division edge cases, Montgomery
// exponentiation against a reference, modular inverse, and primality.
#include "crypto/bigint.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "crypto/random.h"

namespace keygraphs::crypto {
namespace {

// Reference mod-exp via plain divmod (no Montgomery), for cross-checking.
BigInt naive_mod_exp(const BigInt& base, const BigInt& exponent,
                     const BigInt& modulus) {
  BigInt acc{1};
  const BigInt b = base % modulus;
  for (std::size_t i = exponent.bit_length(); i-- > 0;) {
    acc = (acc * acc) % modulus;
    if (exponent.bit(i)) acc = (acc * b) % modulus;
  }
  return acc % modulus;
}

TEST(BigInt, ConstructionAndZero) {
  EXPECT_TRUE(BigInt{}.is_zero());
  EXPECT_TRUE(BigInt{0}.is_zero());
  EXPECT_FALSE(BigInt{1}.is_zero());
  EXPECT_EQ(BigInt{42}.to_u64(), 42u);
  EXPECT_EQ(BigInt{0xffffffffffffffffull}.to_u64(), 0xffffffffffffffffull);
}

TEST(BigInt, HexRoundTrip) {
  const std::string hex = "123456789abcdef0fedcba9876543210";
  EXPECT_EQ(BigInt::from_hex(hex).to_hex(), hex);
  EXPECT_EQ(BigInt{}.to_hex(), "0");
  EXPECT_EQ(BigInt::from_hex("0f").to_hex(), "f");
}

TEST(BigInt, BytesRoundTripWithPadding) {
  const Bytes raw = from_hex("00000123456789ab");
  const BigInt value = BigInt::from_bytes_be(raw);
  EXPECT_EQ(to_hex(value.to_bytes_be(8)), "00000123456789ab");
  EXPECT_EQ(to_hex(value.to_bytes_be()), "0123456789ab");
}

TEST(BigInt, ComparisonOrdering) {
  EXPECT_LT(BigInt{1}, BigInt{2});
  EXPECT_GT(BigInt::from_hex("100000000"), BigInt::from_hex("ffffffff"));
  EXPECT_EQ(BigInt{7}, BigInt{7});
  EXPECT_LT(BigInt{}, BigInt{1});
}

TEST(BigInt, AdditionCarriesAcrossLimbs) {
  const BigInt a = BigInt::from_hex("ffffffffffffffff");
  EXPECT_EQ((a + BigInt{1}).to_hex(), "10000000000000000");
}

TEST(BigInt, SubtractionBorrowsAcrossLimbs) {
  const BigInt a = BigInt::from_hex("10000000000000000");
  EXPECT_EQ((a - BigInt{1}).to_hex(), "ffffffffffffffff");
}

TEST(BigInt, SubtractionUnderflowThrows) {
  EXPECT_THROW(BigInt{1} - BigInt{2}, Error);
}

TEST(BigInt, MultiplicationKnownProduct) {
  const BigInt a = BigInt::from_hex("ffffffff");
  EXPECT_EQ((a * a).to_hex(), "fffffffe00000001");
  EXPECT_TRUE((a * BigInt{}).is_zero());
}

TEST(BigInt, ShiftsInverse) {
  const BigInt a = BigInt::from_hex("deadbeefcafebabe");
  EXPECT_EQ((a << 17) >> 17, a);
  EXPECT_EQ((a >> 200).to_hex(), "0");
  EXPECT_EQ((BigInt{1} << 100).bit_length(), 101u);
}

TEST(BigInt, BitAccess) {
  const BigInt a = BigInt::from_hex("5");  // 101
  EXPECT_TRUE(a.bit(0));
  EXPECT_FALSE(a.bit(1));
  EXPECT_TRUE(a.bit(2));
  EXPECT_FALSE(a.bit(64));
  EXPECT_EQ(a.bit_length(), 3u);
  EXPECT_EQ(BigInt{}.bit_length(), 0u);
}

TEST(BigInt, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt{1} / BigInt{}, Error);
  EXPECT_THROW(BigInt{1} % BigInt{}, Error);
}

TEST(BigInt, DivmodSingleLimbDivisor) {
  const auto [q, r] =
      BigInt::divmod(BigInt::from_hex("123456789abcdef0"), BigInt{1000});
  EXPECT_EQ(q * BigInt{1000} + r, BigInt::from_hex("123456789abcdef0"));
  EXPECT_LT(r, BigInt{1000});
}

TEST(BigInt, DivmodDividendSmallerThanDivisor) {
  const auto [q, r] = BigInt::divmod(BigInt{5}, BigInt{100});
  EXPECT_TRUE(q.is_zero());
  EXPECT_EQ(r, BigInt{5});
}

TEST(BigInt, DivmodKnuthAddBackCase) {
  // Divisor with a 0xffffffff-pattern top limb stresses the qhat fix-up
  // and add-back paths of Algorithm D.
  const BigInt u = BigInt::from_hex("7fffffff800000010000000000000000");
  const BigInt v = BigInt::from_hex("800000008000000200000005");
  const auto [q, r] = BigInt::divmod(u, v);
  EXPECT_EQ(q * v + r, u);
  EXPECT_LT(r, v);
}

TEST(BigInt, GcdKnownValues) {
  EXPECT_EQ(BigInt::gcd(BigInt{48}, BigInt{18}), BigInt{6});
  EXPECT_EQ(BigInt::gcd(BigInt{17}, BigInt{13}), BigInt{1});
  EXPECT_EQ(BigInt::gcd(BigInt{0}, BigInt{5}), BigInt{5});
}

TEST(BigInt, ModInverseKnownValues) {
  // 3 * 4 = 12 = 1 mod 11
  EXPECT_EQ(BigInt::mod_inverse(BigInt{3}, BigInt{11}), BigInt{4});
  EXPECT_THROW(BigInt::mod_inverse(BigInt{6}, BigInt{9}), CryptoError);
  EXPECT_THROW(BigInt::mod_inverse(BigInt{0}, BigInt{7}), CryptoError);
}

TEST(BigInt, ModExpSmallKnownValues) {
  EXPECT_EQ(BigInt::mod_exp(BigInt{2}, BigInt{10}, BigInt{1000}),
            BigInt{24});
  EXPECT_EQ(BigInt::mod_exp(BigInt{5}, BigInt{0}, BigInt{7}), BigInt{1});
  EXPECT_EQ(BigInt::mod_exp(BigInt{5}, BigInt{3}, BigInt{1}), BigInt{});
  EXPECT_THROW(BigInt::mod_exp(BigInt{5}, BigInt{3}, BigInt{}), Error);
}

TEST(BigInt, ModExpEvenModulus) {
  // Exercises the non-Montgomery path.
  EXPECT_EQ(BigInt::mod_exp(BigInt{3}, BigInt{5}, BigInt{100}), BigInt{43});
}

TEST(BigInt, FermatLittleTheorem) {
  // a^(p-1) = 1 mod p for prime p and gcd(a, p) = 1.
  const BigInt p = BigInt::from_hex("fffffffb");  // 4294967291, prime
  for (std::uint64_t a : {2ull, 3ull, 65537ull}) {
    EXPECT_EQ(BigInt::mod_exp(BigInt{a}, p - BigInt{1}, p), BigInt{1});
  }
}

TEST(BigInt, MillerRabinKnownPrimesAndComposites) {
  SecureRandom rng(1);
  EXPECT_TRUE(BigInt{2}.is_probable_prime(rng));
  EXPECT_TRUE(BigInt{3}.is_probable_prime(rng));
  EXPECT_TRUE(BigInt{65537}.is_probable_prime(rng));
  EXPECT_TRUE(BigInt::from_hex("fffffffb").is_probable_prime(rng));
  // 2^61 - 1 is a Mersenne prime.
  EXPECT_TRUE(((BigInt{1} << 61) - BigInt{1}).is_probable_prime(rng));

  EXPECT_FALSE(BigInt{0}.is_probable_prime(rng));
  EXPECT_FALSE(BigInt{1}.is_probable_prime(rng));
  EXPECT_FALSE(BigInt{4}.is_probable_prime(rng));
  EXPECT_FALSE(BigInt{561}.is_probable_prime(rng));   // Carmichael
  EXPECT_FALSE(BigInt{6601}.is_probable_prime(rng));  // Carmichael
  // 2^67 - 1 is famously composite (193707721 * 761838257287).
  EXPECT_FALSE(((BigInt{1} << 67) - BigInt{1}).is_probable_prime(rng));
}

TEST(BigInt, GeneratePrimeHasRequestedWidth) {
  SecureRandom rng(2);
  const BigInt p = BigInt::generate_prime(rng, 128);
  EXPECT_EQ(p.bit_length(), 128u);
  EXPECT_TRUE(p.is_odd());
  EXPECT_TRUE(p.is_probable_prime(rng, 20));
  EXPECT_THROW(BigInt::generate_prime(rng, 8), CryptoError);
}

TEST(BigInt, RandomBitsExactWidth) {
  SecureRandom rng(3);
  for (std::size_t bits : {1u, 7u, 8u, 9u, 31u, 32u, 33u, 257u}) {
    EXPECT_EQ(BigInt::random_bits(rng, bits).bit_length(), bits);
  }
}

TEST(BigInt, RandomBelowStaysBelow) {
  SecureRandom rng(4);
  const BigInt bound = BigInt::from_hex("1000000000000001");
  for (int i = 0; i < 100; ++i) {
    EXPECT_LT(BigInt::random_below(rng, bound), bound);
  }
  EXPECT_THROW(BigInt::random_below(rng, BigInt{}), Error);
}

TEST(Montgomery, RequiresOddModulus) {
  EXPECT_THROW(Montgomery(BigInt{10}), CryptoError);
  EXPECT_THROW(Montgomery(BigInt{1}), CryptoError);
  EXPECT_THROW(Montgomery(BigInt{}), CryptoError);
}

// Property sweep: algebraic identities over random operands of mixed sizes.
class BigIntProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BigIntProperty, DivisionIdentity) {
  SecureRandom rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const BigInt a =
        BigInt::random_bits(rng, 1 + rng.uniform(512));
    const BigInt b = BigInt::random_bits(rng, 1 + rng.uniform(256));
    const auto [q, r] = BigInt::divmod(a, b);
    EXPECT_EQ(q * b + r, a);
    EXPECT_LT(r, b);
  }
}

TEST_P(BigIntProperty, AddSubInverse) {
  SecureRandom rng(GetParam() + 1000);
  for (int i = 0; i < 50; ++i) {
    const BigInt a = BigInt::random_bits(rng, 1 + rng.uniform(300));
    const BigInt b = BigInt::random_bits(rng, 1 + rng.uniform(300));
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a + b) - a, b);
  }
}

TEST_P(BigIntProperty, MulDistributesOverAdd) {
  SecureRandom rng(GetParam() + 2000);
  for (int i = 0; i < 20; ++i) {
    const BigInt a = BigInt::random_bits(rng, 1 + rng.uniform(200));
    const BigInt b = BigInt::random_bits(rng, 1 + rng.uniform(200));
    const BigInt c = BigInt::random_bits(rng, 1 + rng.uniform(200));
    EXPECT_EQ(a * (b + c), a * b + a * c);
  }
}

TEST_P(BigIntProperty, MontgomeryMatchesNaive) {
  SecureRandom rng(GetParam() + 3000);
  for (int i = 0; i < 10; ++i) {
    BigInt m = BigInt::random_bits(rng, 64 + rng.uniform(192));
    if (!m.is_odd()) m = m + BigInt{1};
    const BigInt base = BigInt::random_below(rng, m);
    const BigInt exponent = BigInt::random_bits(rng, 1 + rng.uniform(96));
    EXPECT_EQ(BigInt::mod_exp(base, exponent, m),
              naive_mod_exp(base, exponent, m));
  }
}

TEST_P(BigIntProperty, ModInverseIsInverse) {
  SecureRandom rng(GetParam() + 4000);
  for (int i = 0; i < 20; ++i) {
    BigInt m = BigInt::random_bits(rng, 16 + rng.uniform(128));
    if (!m.is_odd()) m = m + BigInt{1};
    const BigInt a = BigInt::random_below(rng, m);
    if (BigInt::gcd(a, m) != BigInt{1}) continue;
    const BigInt inv = BigInt::mod_inverse(a, m);
    EXPECT_EQ((a * inv) % m, BigInt{1});
    EXPECT_LT(inv, m);
  }
}

TEST_P(BigIntProperty, BytesRoundTrip) {
  SecureRandom rng(GetParam() + 5000);
  for (int i = 0; i < 30; ++i) {
    const BigInt a = BigInt::random_bits(rng, 1 + rng.uniform(400));
    EXPECT_EQ(BigInt::from_bytes_be(a.to_bytes_be()), a);
    EXPECT_EQ(BigInt::from_hex(a.to_hex()), a);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace keygraphs::crypto

// Telemetry substrate: histogram quantile accuracy, span nesting, ring
// wraparound, concurrent writers, disabled-mode overhead, and the
// stage-sum-vs-processing-time consistency the benches rely on.
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/stage.h"
#include "telemetry/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "json_check.h"
#include "keygraph/key_tree.h"
#include "sim/experiment.h"

namespace keygraphs::telemetry {
namespace {

// Tests that toggle the global switch restore it on exit.
class EnabledGuard {
 public:
  EnabledGuard() : saved_(enabled()) {}
  ~EnabledGuard() { set_enabled(saved_); }

 private:
  bool saved_;
};

void spin_for(std::chrono::microseconds duration) {
  const auto until = std::chrono::steady_clock::now() + duration;
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(Counter, AddsAndResets) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0u);
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter.value(), 42u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

TEST(Gauge, SetAddReset) {
  Gauge gauge;
  gauge.set(10);
  gauge.add(-25);
  EXPECT_EQ(gauge.value(), -15);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0);
}

TEST(Histogram, EmptyIsAllZeros) {
  Histogram histogram;
  EXPECT_EQ(histogram.count(), 0u);
  EXPECT_EQ(histogram.sum(), 0u);
  EXPECT_EQ(histogram.min(), 0u);
  EXPECT_EQ(histogram.max(), 0u);
  EXPECT_EQ(histogram.mean(), 0.0);
  EXPECT_EQ(histogram.p50(), 0u);
  EXPECT_TRUE(histogram.buckets().empty());
}

TEST(Histogram, SmallValuesAreExact) {
  // Below kLinearLimit every value has its own bucket, so quantiles of a
  // known distribution are exact, not approximate.
  Histogram histogram;
  for (std::uint64_t v = 0; v < 10; ++v) histogram.record(v);  // 0..9
  EXPECT_EQ(histogram.count(), 10u);
  EXPECT_EQ(histogram.sum(), 45u);
  EXPECT_EQ(histogram.min(), 0u);
  EXPECT_EQ(histogram.max(), 9u);
  EXPECT_DOUBLE_EQ(histogram.mean(), 4.5);
  EXPECT_EQ(histogram.quantile(0.1), 0u);   // 1st of 10 samples
  EXPECT_EQ(histogram.p50(), 4u);           // 5th of 10 samples
  EXPECT_EQ(histogram.p90(), 8u);           // 9th of 10 samples
  EXPECT_EQ(histogram.quantile(1.0), 9u);
}

TEST(Histogram, LargeValueQuantilesWithinRelativeErrorBound) {
  Histogram histogram;
  for (std::uint64_t v = 1; v <= 10000; ++v) histogram.record(v);
  const struct {
    double q;
    double exact;
  } cases[] = {{0.50, 5000.0}, {0.90, 9000.0}, {0.99, 9900.0}};
  for (const auto& c : cases) {
    const auto estimate = static_cast<double>(histogram.quantile(c.q));
    // The estimate is a bucket upper bound: never below the exact value,
    // and at most one sub-bucket (1/16 = 6.25%) above it.
    EXPECT_GE(estimate, c.exact) << "q=" << c.q;
    EXPECT_LE(estimate, c.exact * 1.0625) << "q=" << c.q;
  }
  EXPECT_EQ(histogram.min(), 1u);
  EXPECT_EQ(histogram.max(), 10000u);
}

TEST(Histogram, BucketLayoutInvariants) {
  // Every value maps to a bucket whose range contains it, and bucket upper
  // bounds are strictly increasing with index.
  const std::uint64_t probes[] = {0,   1,    15,   16,         17,
                                  31,  32,   100,  1000,       4095,
                                  1u << 20,  ~0ULL};
  for (std::uint64_t value : probes) {
    const std::size_t index = Histogram::bucket_index(value);
    ASSERT_LT(index, Histogram::kBucketCount) << value;
    EXPECT_LE(value, Histogram::bucket_upper(index)) << value;
    if (index > 0) {
      EXPECT_GT(value, Histogram::bucket_upper(index - 1)) << value;
    }
  }
  for (std::size_t i = 1; i < Histogram::kBucketCount; ++i) {
    ASSERT_LT(Histogram::bucket_upper(i - 1), Histogram::bucket_upper(i));
  }
}

TEST(Histogram, BucketsReportNonEmptyAscending) {
  Histogram histogram;
  histogram.record(3);
  histogram.record(3);
  histogram.record(1000);
  const std::vector<Histogram::Bucket> buckets = histogram.buckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].upper, 3u);
  EXPECT_EQ(buckets[0].count, 2u);
  EXPECT_GE(buckets[1].upper, 1000u);
  EXPECT_EQ(buckets[1].count, 1u);
}

TEST(Registry, SameNameSameMetricAndResetKeepsReferences) {
  Registry registry;
  Counter& counter = registry.counter("a.counter");
  EXPECT_EQ(&counter, &registry.counter("a.counter"));
  counter.add(7);
  registry.histogram("a.histogram").record(99);
  registry.gauge("a.gauge").set(5);

  registry.reset();
  EXPECT_EQ(counter.value(), 0u);  // cached reference still valid, zeroed
  EXPECT_EQ(registry.histogram("a.histogram").count(), 0u);
  EXPECT_EQ(registry.gauge("a.gauge").value(), 0);
  EXPECT_EQ(registry.counters().size(), 1u);  // registration survived
}

TEST(Tracer, RingBufferWrapsKeepingNewestOldestFirst) {
  Tracer tracer(8);
  for (std::uint64_t i = 0; i < 2 * 8 + 3; ++i) {
    SpanRecord span;
    span.name = "span";
    span.start_ns = i;
    tracer.record(span);
  }
  EXPECT_EQ(tracer.recorded(), 19u);
  const std::vector<SpanRecord> spans = tracer.snapshot();
  ASSERT_EQ(spans.size(), 8u);
  // The surviving spans are the last 8 recorded (start_ns 11..18), oldest
  // first.
  for (std::size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].start_ns, 11 + i);
  }
  tracer.clear();
  EXPECT_TRUE(tracer.snapshot().empty());
  EXPECT_EQ(tracer.recorded(), 0u);
}

TEST(Tracer, ScopedSpanNestingDepths) {
  EnabledGuard guard;
  set_enabled(true);
  Tracer::global().clear();
  {
    ScopedSpan outer("outer");
    {
      ScopedSpan middle("middle");
      ScopedSpan inner("inner");
    }
    ScopedSpan sibling("sibling");
  }
  const std::vector<SpanRecord> spans = Tracer::global().snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Spans are recorded at scope exit: inner, middle, sibling, outer.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 2u);
  EXPECT_STREQ(spans[1].name, "middle");
  EXPECT_EQ(spans[1].depth, 1u);
  EXPECT_STREQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[2].depth, 1u);
  EXPECT_STREQ(spans[3].name, "outer");
  EXPECT_EQ(spans[3].depth, 0u);
  EXPECT_EQ(spans[0].thread, spans[3].thread);
}

TEST(Stage, SelfTimeExcludesNestedScopes) {
  EnabledGuard guard;
  set_enabled(true);
  StageCollector collector;
  const auto wall_start = std::chrono::steady_clock::now();
  {
    StageScope tree_update(Stage::kTreeUpdate);
    spin_for(std::chrono::microseconds(300));
    {
      StageScope keygen(Stage::kKeygen);
      spin_for(std::chrono::microseconds(300));
    }
    spin_for(std::chrono::microseconds(300));
  }
  const double wall_us = std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - wall_start)
                             .count();
  const double tree_us = collector.us(Stage::kTreeUpdate);
  const double keygen_us = collector.us(Stage::kKeygen);
  EXPECT_GE(keygen_us, 250.0);
  EXPECT_GE(tree_us, 500.0);
  // Self time: the keygen spin must not be double-counted under
  // tree_update. Double counting would make tree_us track the full wall
  // time; correct self-time accounting leaves it at least keygen's 300us
  // spin short of the wall, whatever the scope overhead (sanitizer builds
  // inflate it).
  EXPECT_LT(tree_us, wall_us - 250.0);
  EXPECT_NEAR(collector.total_us(), tree_us + keygen_us, 1e-9);
}

TEST(Stage, InertWithoutCollector) {
  EnabledGuard guard;
  set_enabled(true);
  ASSERT_EQ(StageCollector::current(), nullptr);
  StageScope scope(Stage::kEncrypt);  // must not crash or record
}

TEST(Stage, CollectorsStack) {
  EnabledGuard guard;
  set_enabled(true);
  StageCollector outer;
  {
    StageCollector inner;
    EXPECT_EQ(StageCollector::current(), &inner);
    StageScope scope(Stage::kSign);
    spin_for(std::chrono::microseconds(200));
  }
  EXPECT_EQ(StageCollector::current(), &outer);
  EXPECT_EQ(outer.us(Stage::kSign), 0.0);  // inner swallowed the scope
}

TEST(Telemetry, ConcurrentWritersDoNotLoseUpdates) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Registry registry;
  Tracer tracer(256);
  Counter& counter = registry.counter("t.counter");
  Histogram& histogram = registry.histogram("t.histogram");

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add(1);
        histogram.record(static_cast<std::uint64_t>(t * kPerThread + i));
        if (i % 100 == 0) {
          SpanRecord span;
          span.name = "concurrent";
          tracer.record(span);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const auto total = static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(counter.value(), total);
  EXPECT_EQ(histogram.count(), total);
  EXPECT_EQ(histogram.min(), 0u);
  EXPECT_EQ(histogram.max(), total - 1);
  EXPECT_EQ(tracer.recorded(),
            static_cast<std::uint64_t>(kThreads) * (kPerThread / 100));
  EXPECT_EQ(tracer.snapshot().size(), 256u);
}

TEST(Telemetry, DisabledInstrumentationIsNearZeroCost) {
  EnabledGuard guard;
  set_enabled(false);
  constexpr int kIterations = 100000;
  const std::uint64_t start = steady_now_ns();
  for (int i = 0; i < kIterations; ++i) {
    StageCollector collector;
    StageScope scope(Stage::kEncrypt);
    ScopedSpan span("disabled");
  }
  const std::uint64_t elapsed = steady_now_ns() - start;
  // Generous bound: a disabled site is a relaxed load and a branch, so
  // collector+scope+span must average far under a microsecond even on a
  // loaded CI machine (typical: single-digit nanoseconds each).
  EXPECT_LT(static_cast<double>(elapsed) / kIterations, 1000.0);
}

TEST(Exporters, RenderKnownMetrics) {
  Registry registry;
  registry.counter("demo.events").add(3);
  registry.gauge("demo.depth").set(-2);
  registry.histogram("demo.latency_ns").record(500);

  const std::string jsonl = render_jsonl(registry);
  EXPECT_NE(jsonl.find("\"name\":\"demo.events\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"value\":3"), std::string::npos);

  const std::string prom = render_prometheus(registry);
  EXPECT_NE(prom.find("kg_demo_events 3"), std::string::npos);
  EXPECT_NE(prom.find("kg_demo_depth -2"), std::string::npos);
  EXPECT_NE(prom.find("kg_demo_latency_ns_count 1"), std::string::npos);
  EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);

  const std::string dump = render_dump(registry);
  EXPECT_NE(dump.find("demo.events"), std::string::npos);
  EXPECT_NE(dump.find("demo.latency_ns"), std::string::npos);
}

TEST(Registry, GlobalResetClearsTheSpanRing) {
  EnabledGuard guard;
  set_enabled(true);
  { ScopedSpan span("pre.reset"); }
  ASSERT_FALSE(Tracer::global().snapshot().empty());
  Registry::global().reset();
  // A snapshot taken after the reset must not mix in earlier spans (a
  // bench resetting between phases relies on this).
  EXPECT_TRUE(Tracer::global().snapshot().empty());
  EXPECT_EQ(Tracer::global().recorded(), 0u);
}

TEST(Registry, LocalResetLeavesTheGlobalRingAlone) {
  EnabledGuard guard;
  set_enabled(true);
  Tracer::global().clear();
  { ScopedSpan span("survives"); }
  Registry local;
  local.counter("x").add(1);
  local.reset();
  EXPECT_EQ(Tracer::global().snapshot().size(), 1u);
  Tracer::global().clear();
}

TEST(Exporters, EveryJsonlLineParsesAsJson) {
  Registry registry;
  registry.counter("round.trips").add(12);
  registry.gauge("round.depth").set(-4);
  auto& histogram = registry.histogram("round.latency_ns");
  for (std::uint64_t v = 1; v <= 2000; v += 7) histogram.record(v);

  const std::string jsonl = render_jsonl(registry);
  std::size_t start = 0;
  std::size_t lines = 0;
  while (start < jsonl.size()) {
    std::size_t end = jsonl.find('\n', start);
    if (end == std::string::npos) end = jsonl.size();
    const std::string_view line(jsonl.data() + start, end - start);
    if (!line.empty()) {
      ++lines;
      EXPECT_TRUE(testjson::json_valid(line)) << line;
    }
    start = end + 1;
  }
  EXPECT_EQ(lines, 3u);  // one object per metric
}

TEST(Exporters, TraceJsonlLinesParseAsJson) {
  Tracer tracer(16);
  SpanRecord span;
  span.name = "jsonl.span";
  span.start_ns = 10;
  span.duration_ns = 5;
  span.trace_id = 77;
  span.process = 3;
  tracer.record(span);
  const std::string rendered = render_trace_jsonl(tracer);
  ASSERT_FALSE(rendered.empty());
  const std::string line = rendered.substr(0, rendered.find('\n'));
  EXPECT_TRUE(testjson::json_valid(line)) << line;
  EXPECT_NE(line.find("\"trace\":77"), std::string::npos);
  EXPECT_NE(line.find("\"process\":3"), std::string::npos);
}

TEST(Exporters, ChromeTraceOfEmptyTracerIsValidJson) {
  Tracer tracer(16);
  const std::string trace = render_chrome_trace(tracer);
  EXPECT_TRUE(testjson::json_valid(trace)) << trace;
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
}

TEST(Histogram, QuantilesAreMonotoneAndWithinDocumentedError) {
  Histogram spread;
  for (std::uint64_t v = 1; v <= 1000; ++v) spread.record(v);
  EXPECT_LE(spread.p50(), spread.p90());
  EXPECT_LE(spread.p90(), spread.p99());
  EXPECT_LE(spread.p99(), spread.quantile(1.0));

  // A single recorded value: every quantile reports its bucket's upper
  // bound — at least the value, and within one sub-bucket (6.25%) of it.
  Histogram single;
  const std::uint64_t value = 123456;
  single.record(value);
  for (const double q : {0.5, 0.9, 0.99, 1.0}) {
    const std::uint64_t estimate = single.quantile(q);
    EXPECT_GE(estimate, value) << q;
    EXPECT_LE(estimate, value + value / Histogram::kSubBuckets) << q;
  }
}

TEST(Exporters, PrometheusEmitsHelpAndTypeHeaders) {
  Registry registry;
  registry.counter("helped.events", "Number of helped events").add(2);
  registry.gauge("helped.depth");  // no help: only # TYPE expected
  registry.histogram("helped.latency_ns", "End-to-end latency").record(9);

  const std::string prom = render_prometheus(registry);
  const std::size_t help_at =
      prom.find("# HELP kg_helped_events Number of helped events\n");
  const std::size_t type_at = prom.find("# TYPE kg_helped_events counter\n");
  ASSERT_NE(help_at, std::string::npos);
  ASSERT_NE(type_at, std::string::npos);
  EXPECT_LT(help_at, type_at);  // HELP precedes TYPE, Prometheus style
  EXPECT_EQ(prom.find("# HELP kg_helped_depth"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE kg_helped_depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("# HELP kg_helped_latency_ns End-to-end latency"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE kg_helped_latency_ns histogram"),
            std::string::npos);
}

TEST(Exporters, PrometheusHelpEscapesBackslashAndNewline) {
  Registry registry;
  registry.counter("escaped.metric", "line one\nline two \\ done").add(1);
  const std::string prom = render_prometheus(registry);
  EXPECT_NE(
      prom.find("# HELP kg_escaped_metric line one\\nline two \\\\ done\n"),
      std::string::npos);
}

TEST(Registry, HelpTextFirstWriterWins) {
  Registry registry;
  registry.counter("owned.metric", "original description");
  registry.counter("owned.metric", "later description");
  registry.set_help("owned.metric", "even later");
  EXPECT_EQ(registry.help("owned.metric"), "original description");
  EXPECT_EQ(registry.help("never.registered"), "");
}

TEST(Telemetry, StageSumTracksMeasuredProcessingTime) {
  // The acceptance bar for the bench breakdowns: the disjoint stage times
  // must account for the operation's measured processing time. Run a small
  // signed experiment (ms-scale ops drown out timer noise) and compare.
  EnabledGuard guard;
  set_enabled(true);
  sim::ExperimentConfig config;
  config.initial_size = 32;
  config.requests = 40;
  config.suite = crypto::CryptoSuite::paper_signed();
  config.signing = rekey::SigningMode::kBatch;
  const sim::ExperimentResult result = sim::run_experiment(config);

  const double processing_us = result.all.avg_processing_ms * 1000.0;
  const double stage_sum_us = result.all.measured_stage_us();
  ASSERT_GT(processing_us, 0.0);
  ASSERT_GT(stage_sum_us, 0.0);
  const double ratio = stage_sum_us / processing_us;
  EXPECT_GT(ratio, 0.6) << "stages miss too much of the measured time";
  EXPECT_LT(ratio, 1.1) << "stages double-count the measured time";
}

TEST(Telemetry, TreeShapeGaugesTrackEveryEpochPublish) {
  EnabledGuard guard;
  set_enabled(true);
  auto& registry = Registry::global();
  crypto::SecureRandom rng(91);
  KeyTree tree(3, 8, rng);  // construction publishes epoch 0
  EXPECT_EQ(registry.gauge("tree.users").value(), 0);
  EXPECT_EQ(registry.gauge("tree.keys").value(), 1);
  EXPECT_EQ(registry.gauge("tree.height").value(), 0);
  EXPECT_EQ(registry.gauge("tree.view_epoch").value(), 0);

  for (UserId user = 1; user <= 7; ++user) {
    tree.join(user, Bytes(8, static_cast<std::uint8_t>(user)));
    EXPECT_EQ(registry.gauge("tree.users").value(),
              static_cast<std::int64_t>(tree.user_count()));
    EXPECT_EQ(registry.gauge("tree.keys").value(),
              static_cast<std::int64_t>(tree.key_count()));
    EXPECT_EQ(registry.gauge("tree.height").value(),
              static_cast<std::int64_t>(tree.height()));
    EXPECT_EQ(registry.gauge("tree.view_epoch").value(),
              static_cast<std::int64_t>(tree.view()->epoch()));
  }
  tree.leave(3);
  EXPECT_EQ(registry.gauge("tree.users").value(), 6);
  EXPECT_EQ(registry.gauge("tree.view_epoch").value(), 8);
}

}  // namespace
}  // namespace keygraphs::telemetry

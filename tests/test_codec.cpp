// RekeyEncryptor / RekeySealer / RekeyOpener: wrap counting, every signing
// mode's seal/open round trip, and tamper rejection per mode.
#include "rekey/codec.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace keygraphs::rekey {
namespace {

crypto::SecureRandom& rng() {
  static crypto::SecureRandom instance(99);
  return instance;
}

const crypto::RsaPrivateKey& signer() {
  static const crypto::RsaPrivateKey key =
      crypto::RsaPrivateKey::generate(rng(), 512);
  return key;
}

SymmetricKey make_key(KeyId id, KeyVersion version) {
  return SymmetricKey{id, version, rng().bytes(8)};
}

RekeyMessage message_with_blob(RekeyEncryptor& encryptor) {
  RekeyMessage message;
  message.kind = RekeyKind::kJoin;
  message.strategy = StrategyKind::kGroupOriented;
  message.epoch = 5;
  const SymmetricKey wrap = make_key(1, 1);
  const SymmetricKey target = make_key(2, 2);
  message.blobs.push_back(encryptor.wrap(wrap, std::span(&target, 1)));
  return message;
}

TEST(RekeyEncryptor, CountsKeysNotBlobs) {
  RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  const SymmetricKey wrap = make_key(1, 1);
  const std::vector<SymmetricKey> targets = {make_key(2, 1), make_key(3, 1),
                                             make_key(4, 1)};
  const KeyBlob blob = encryptor.wrap(wrap, targets);
  EXPECT_EQ(encryptor.key_encryptions(), 3u);  // paper's cost unit
  EXPECT_EQ(blob.targets.size(), 3u);
  EXPECT_EQ(blob.wrap.id, 1u);
  encryptor.reset_counters();
  EXPECT_EQ(encryptor.key_encryptions(), 0u);
}

TEST(RekeyEncryptor, EmptyTargetsRejected) {
  RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  const SymmetricKey wrap = make_key(1, 1);
  EXPECT_THROW(encryptor.wrap(wrap, {}), Error);
}

TEST(RekeyEncryptor, BlobDecryptsToTargetSecrets) {
  RekeyEncryptor encryptor(crypto::CipherAlgorithm::kAes128, rng());
  const SymmetricKey wrap{1, 1, rng().bytes(16)};
  const SymmetricKey a{2, 1, rng().bytes(16)};
  const SymmetricKey b{3, 1, rng().bytes(16)};
  const std::vector<SymmetricKey> targets = {a, b};
  const KeyBlob blob = encryptor.wrap(wrap, targets);

  const crypto::CbcCipher cbc(
      crypto::make_cipher(crypto::CipherAlgorithm::kAes128, wrap.secret));
  const Bytes plain = cbc.decrypt(blob.ciphertext);
  EXPECT_EQ(plain, concat(a.secret, b.secret));
}

TEST(RekeySealer, RequiresSignerForSigningModes) {
  EXPECT_THROW(RekeySealer(SigningMode::kPerMessage,
                           crypto::DigestAlgorithm::kMd5, nullptr),
               CryptoError);
  EXPECT_THROW(RekeySealer(SigningMode::kBatch,
                           crypto::DigestAlgorithm::kMd5, nullptr),
               CryptoError);
  EXPECT_THROW(RekeySealer(SigningMode::kDigestOnly,
                           crypto::DigestAlgorithm::kNone, nullptr),
               CryptoError);
  EXPECT_NO_THROW(RekeySealer(SigningMode::kNone,
                              crypto::DigestAlgorithm::kNone, nullptr));
}

TEST(RekeySealer, SignatureCountPerMode) {
  const RekeySealer none(SigningMode::kNone, crypto::DigestAlgorithm::kMd5,
                         nullptr);
  const RekeySealer per(SigningMode::kPerMessage,
                        crypto::DigestAlgorithm::kMd5, &signer());
  const RekeySealer batch(SigningMode::kBatch, crypto::DigestAlgorithm::kMd5,
                          &signer());
  EXPECT_EQ(none.signatures_for(7), 0u);
  EXPECT_EQ(per.signatures_for(7), 7u);
  EXPECT_EQ(batch.signatures_for(7), 1u);
  EXPECT_EQ(batch.signatures_for(0), 0u);
}

class SealOpen : public ::testing::TestWithParam<SigningMode> {
 protected:
  RekeySealer make_sealer() const {
    return RekeySealer(GetParam(), crypto::DigestAlgorithm::kMd5, &signer());
  }
};

TEST_P(SealOpen, RoundTripVerifies) {
  RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  std::vector<RekeyMessage> messages;
  for (int i = 0; i < 5; ++i) messages.push_back(message_with_blob(encryptor));
  const std::vector<Bytes> wire = make_sealer().seal(messages);
  ASSERT_EQ(wire.size(), messages.size());

  const RekeyOpener opener(&signer().public_key());
  for (std::size_t i = 0; i < wire.size(); ++i) {
    const OpenedRekey opened = opener.open(wire[i], /*verify=*/true);
    EXPECT_TRUE(opened.verified);
    EXPECT_EQ(opened.message, messages[i]);
    EXPECT_EQ(opened.wire_size, wire[i].size());
  }
}

TEST_P(SealOpen, TamperedBodyRejectedWhenAuthenticated) {
  if (GetParam() == SigningMode::kNone) return;  // nothing to detect with
  RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  const std::vector<RekeyMessage> messages = {message_with_blob(encryptor),
                                              message_with_blob(encryptor)};
  std::vector<Bytes> wire = make_sealer().seal(messages);
  // Flip a byte inside the body region (skip the 4-byte length prefix and
  // the first header bytes so the message still parses).
  wire[0][20] ^= 0x01;
  const RekeyOpener opener(&signer().public_key());
  const OpenedRekey opened = opener.open(wire[0], /*verify=*/true);
  EXPECT_FALSE(opened.verified);
}

TEST_P(SealOpen, VerificationSkippableForBenchmarks) {
  RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  const std::vector<RekeyMessage> messages = {message_with_blob(encryptor)};
  const std::vector<Bytes> wire = make_sealer().seal(messages);
  const RekeyOpener opener(nullptr);
  const OpenedRekey opened = opener.open(wire[0], /*verify=*/false);
  EXPECT_TRUE(opened.verified);  // unverified-but-accepted by request
  EXPECT_EQ(opened.message, messages[0]);
}

INSTANTIATE_TEST_SUITE_P(Modes, SealOpen,
                         ::testing::Values(SigningMode::kNone,
                                           SigningMode::kDigestOnly,
                                           SigningMode::kPerMessage,
                                           SigningMode::kBatch));

TEST(RekeyOpener, SignedMessageWithoutKeyFailsVerification) {
  RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  const std::vector<RekeyMessage> messages = {message_with_blob(encryptor)};
  const RekeySealer sealer(SigningMode::kPerMessage,
                           crypto::DigestAlgorithm::kMd5, &signer());
  const std::vector<Bytes> wire = sealer.seal(messages);
  const RekeyOpener opener(nullptr);  // client has no server key
  EXPECT_FALSE(opener.open(wire[0], /*verify=*/true).verified);
}

TEST(RekeyOpener, BatchModeAddsBoundedOverhead) {
  // Table 4: the Merkle path adds ~50-70 bytes per message at n=8192; here
  // just check the overhead of batch vs per-message is the path size, not
  // an extra signature.
  RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  std::vector<RekeyMessage> messages;
  for (int i = 0; i < 8; ++i) messages.push_back(message_with_blob(encryptor));
  const RekeySealer per(SigningMode::kPerMessage,
                        crypto::DigestAlgorithm::kMd5, &signer());
  const RekeySealer batch(SigningMode::kBatch, crypto::DigestAlgorithm::kMd5,
                          &signer());
  const std::size_t per_size = per.seal(messages)[0].size();
  const std::size_t batch_size = batch.seal(messages)[0].size();
  EXPECT_GT(batch_size, per_size);
  EXPECT_LT(batch_size, per_size + 100);
}

TEST(RekeyOpener, GarbageRejected) {
  const RekeyOpener opener(nullptr);
  EXPECT_THROW(opener.open(bytes_of("not a rekey message"), true),
               ParseError);
  EXPECT_THROW(opener.open(Bytes{}, true), ParseError);
}

}  // namespace
}  // namespace keygraphs::rekey

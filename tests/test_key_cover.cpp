// Key covering (paper Section 2.1): the greedy approximation against the
// exact solver on instances small enough to brute force, plus the
// impossibility and confidentiality-constraint cases.
#include "keygraph/key_cover.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace keygraphs {
namespace {

// A two-level tree over six users: subgroup keys {1,2}, {3,4}, {5,6} (ids
// 12, 34, 56), root 100.
KeyGraph tree6() {
  KeyGraph graph;
  for (UserId user = 1; user <= 6; ++user) {
    graph.add_user(user);
    graph.add_key(user);
    graph.add_user_edge(user, user);
  }
  graph.add_key(12);
  graph.add_key(34);
  graph.add_key(56);
  graph.add_key(100);
  graph.add_key_edge(1, 12);
  graph.add_key_edge(2, 12);
  graph.add_key_edge(3, 34);
  graph.add_key_edge(4, 34);
  graph.add_key_edge(5, 56);
  graph.add_key_edge(6, 56);
  graph.add_key_edge(12, 100);
  graph.add_key_edge(34, 100);
  graph.add_key_edge(56, 100);
  return graph;
}

TEST(KeyCover, LeaveScenarioFromTheIntroduction) {
  // The paper's Section 1.1 example: u1 leaves a 3x3 group; the new group
  // key must reach everyone but u1. Here: cover {2,3,4,5,6} after user 1
  // leaves — optimal is {k2, k3-or-34...}: {2, 34, 56} (3 keys).
  const KeyGraph graph = tree6();
  const std::set<UserId> target{2, 3, 4, 5, 6};
  const KeyCover greedy = greedy_key_cover(graph, target);
  ASSERT_TRUE(greedy.covered);
  EXPECT_EQ(graph.userset(std::set<KeyId>(greedy.keys.begin(),
                                          greedy.keys.end())),
            target);
  const auto exact = exact_key_cover(graph, target);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->size(), 3u);
  EXPECT_EQ(greedy.keys.size(), 3u);  // greedy is optimal on trees
}

TEST(KeyCover, FullGroupUsesTheRoot) {
  const KeyGraph graph = tree6();
  const std::set<UserId> everyone{1, 2, 3, 4, 5, 6};
  const KeyCover cover = greedy_key_cover(graph, everyone);
  ASSERT_TRUE(cover.covered);
  EXPECT_EQ(cover.keys, (std::vector<KeyId>{100}));
}

TEST(KeyCover, NeverUsesKeysLeakingOutsideTarget) {
  const KeyGraph graph = tree6();
  // Target {1,2,3}: key 34 would leak to user 4, so the cover must be
  // {12, 3} exactly.
  const std::set<UserId> target{1, 2, 3};
  const KeyCover cover = greedy_key_cover(graph, target);
  ASSERT_TRUE(cover.covered);
  for (KeyId key : cover.keys) {
    const std::set<UserId> holders = graph.userset(key);
    for (UserId holder : holders) EXPECT_TRUE(target.contains(holder));
  }
  EXPECT_EQ(cover.keys.size(), 2u);
}

TEST(KeyCover, SingleUserCoveredByIndividualKey) {
  const KeyGraph graph = tree6();
  const KeyCover cover = greedy_key_cover(graph, {4});
  ASSERT_TRUE(cover.covered);
  EXPECT_EQ(cover.keys, (std::vector<KeyId>{4}));
}

TEST(KeyCover, EmptyTargetIsTriviallyCovered) {
  const KeyGraph graph = tree6();
  const KeyCover cover = greedy_key_cover(graph, {});
  EXPECT_TRUE(cover.covered);
  EXPECT_TRUE(cover.keys.empty());
}

TEST(KeyCover, ImpossibleWhenUserHasNoPrivateKey) {
  // Two users sharing only one key: covering just one of them is
  // impossible without leaking to the other.
  KeyGraph graph;
  graph.add_user(1);
  graph.add_user(2);
  graph.add_key(7);
  graph.add_user_edge(1, 7);
  graph.add_user_edge(2, 7);
  const KeyCover cover = greedy_key_cover(graph, {1});
  EXPECT_FALSE(cover.covered);
  EXPECT_EQ(exact_key_cover(graph, {1}), std::nullopt);
}

TEST(KeyCover, GreedyWithinLogFactorOfExactOnOverlappingSets) {
  // A non-tree instance where subsets overlap: greedy may be suboptimal
  // but must stay within the ln(n)+1 bound and always be a valid cover.
  KeyGraph graph;
  for (UserId user = 1; user <= 8; ++user) {
    graph.add_user(user);
    graph.add_key(user);
    graph.add_user_edge(user, user);
  }
  auto add_subset = [&graph](KeyId id, std::initializer_list<UserId> users) {
    graph.add_key(id);
    for (UserId user : users) graph.add_key_edge(user, id);
  };
  add_subset(100, {1, 2, 3, 4});
  add_subset(200, {5, 6, 7, 8});
  add_subset(300, {1, 2, 5, 6});
  add_subset(400, {3, 4, 7, 8});
  add_subset(500, {2, 3, 6, 7});

  const std::set<UserId> target{1, 2, 3, 4, 5, 6, 7, 8};
  const KeyCover greedy = greedy_key_cover(graph, target);
  ASSERT_TRUE(greedy.covered);
  EXPECT_EQ(graph.userset(std::set<KeyId>(greedy.keys.begin(),
                                          greedy.keys.end())),
            target);
  const auto exact = exact_key_cover(graph, target);
  ASSERT_TRUE(exact.has_value());
  EXPECT_EQ(exact->size(), 2u);  // {100, 200}
  EXPECT_LE(greedy.keys.size(), 4u);
}

TEST(KeyCover, ExactSolverGuardsAgainstBlowup) {
  KeyGraph graph;
  graph.add_user(1);
  for (KeyId key = 1; key <= 30; ++key) {
    graph.add_key(key);
    graph.add_user_edge(1, key);
  }
  EXPECT_THROW(exact_key_cover(graph, {1}), Error);
}

}  // namespace
}  // namespace keygraphs

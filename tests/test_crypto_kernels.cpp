// The table-driven AES/DES kernels and the schedule cache.
//
// Three lines of defense pin the fast kernels to the specs:
//   1. Multi-block NIST known answers (FIPS-197, SP 800-38A, FIPS-81)
//      exercised through raw CBC chaining, free of padding concerns.
//   2. Differential cross-checks against the retained bit-loop reference
//      kernels (crypto/reference.h) over thousands of random keys/blocks.
//   3. Equivalence of the zero-alloc encrypt_into/decrypt_into paths with
//      the allocating CBC entry points, plus the bad-padding wipe contract.
// The ScheduleCache tests cover sharing, eviction, invalidation, the
// secret-mismatch rebuild, and concurrent access (run under TSan in CI).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/error.h"
#include "crypto/aes.h"
#include "crypto/aes_aesni.h"
#include "crypto/cbc.h"
#include "crypto/cpu_features.h"
#include "crypto/des.h"
#include "crypto/des3.h"
#include "crypto/random.h"
#include "crypto/reference.h"
#include "rekey/schedule_cache.h"

namespace keygraphs::crypto {
namespace {

// CBC over whole blocks with no padding, so NIST vectors apply verbatim.
Bytes cbc_raw_encrypt(const BlockCipher& cipher, BytesView iv, BytesView pt) {
  const std::size_t block = cipher.block_size();
  EXPECT_EQ(pt.size() % block, 0u);
  Bytes out(pt.size());
  Bytes chain(iv.begin(), iv.end());
  for (std::size_t off = 0; off < pt.size(); off += block) {
    for (std::size_t i = 0; i < block; ++i) chain[i] ^= pt[off + i];
    cipher.encrypt_block(chain.data(), out.data() + off);
    std::copy(out.begin() + static_cast<std::ptrdiff_t>(off),
              out.begin() + static_cast<std::ptrdiff_t>(off + block),
              chain.begin());
  }
  return out;
}

Bytes cbc_raw_decrypt(const BlockCipher& cipher, BytesView iv, BytesView ct) {
  const std::size_t block = cipher.block_size();
  Bytes out(ct.size());
  Bytes chain(iv.begin(), iv.end());
  for (std::size_t off = 0; off < ct.size(); off += block) {
    cipher.decrypt_block(ct.data() + off, out.data() + off);
    for (std::size_t i = 0; i < block; ++i) {
      out[off + i] ^= chain[i];
      chain[i] = ct[off + i];
    }
  }
  return out;
}

TEST(AesKernel, Fips197AppendixB) {
  const Aes128 aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Bytes pt = from_hex("3243f6a8885a308d313198a2e0370734");
  Bytes ct(16);
  aes.encrypt_block(pt.data(), ct.data());
  EXPECT_EQ(to_hex(ct), "3925841d02dc09fbdc118597196a0b32");
  Bytes back(16);
  aes.decrypt_block(ct.data(), back.data());
  EXPECT_EQ(back, pt);
}

TEST(AesKernel, Sp80038aCbcAllFourBlocks) {
  // NIST SP 800-38A F.2.1/F.2.2 (CBC-AES128), the full four-block vector.
  const Aes128 aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Bytes iv = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const Bytes ct = from_hex(
      "7649abac8119b246cee98e9b12e9197d"
      "5086cb9b507219ee95db113a917678b2"
      "73bed6b8e3c1743b7116e69e22229516"
      "3ff1caa1681fac09120eca307586e1a7");
  EXPECT_EQ(cbc_raw_encrypt(aes, iv, pt), ct);
  EXPECT_EQ(cbc_raw_decrypt(aes, iv, ct), pt);
}

TEST(DesKernel, Fips81CbcExample) {
  // FIPS-81 CBC example: three blocks of "Now is the time for all ".
  const Des des(from_hex("0123456789abcdef"));
  const Bytes iv = from_hex("1234567890abcdef");
  const Bytes pt = bytes_of("Now is the time for all ");
  const Bytes ct = from_hex("e5c7cdde872bf27c43e934008c389c0f683788499a7c05f6");
  EXPECT_EQ(cbc_raw_encrypt(des, iv, pt), ct);
  EXPECT_EQ(cbc_raw_decrypt(des, iv, ct), pt);
}

TEST(Des3Kernel, DegenerateKeysCollapseToSingleDes) {
  // With k1 == k2 == k3, every EDE composition collapses to one DES
  // encryption — a structural check that the three stages really chain.
  const Bytes k = from_hex("133457799bbcdff1");
  const Des3 des3(concat(concat(k, k), k));
  const Des des(k);
  SecureRandom rng(11);
  for (int i = 0; i < 64; ++i) {
    const Bytes pt = rng.bytes(8);
    Bytes a(8), b(8);
    des3.encrypt_block(pt.data(), a.data());
    des.encrypt_block(pt.data(), b.data());
    EXPECT_EQ(a, b);
    des3.decrypt_block(a.data(), b.data());
    EXPECT_EQ(b, pt);
  }
}

TEST(CrossCheck, AesTableKernelMatchesReference) {
  SecureRandom rng(42);
  for (int k = 0; k < 100; ++k) {
    const Bytes key = rng.bytes(Aes128::kKeySize);
    const Aes128 fast(key);
    const ReferenceAes128 slow(key);
    for (int b = 0; b < 100; ++b) {
      const Bytes pt = rng.bytes(16);
      Bytes fast_ct(16), slow_ct(16), back(16);
      fast.encrypt_block(pt.data(), fast_ct.data());
      slow.encrypt_block(pt.data(), slow_ct.data());
      ASSERT_EQ(fast_ct, slow_ct) << "key " << to_hex(key);
      fast.decrypt_block(slow_ct.data(), back.data());
      ASSERT_EQ(back, pt);
      slow.decrypt_block(fast_ct.data(), back.data());
      ASSERT_EQ(back, pt);
    }
  }
}

TEST(CrossCheck, DesTableKernelMatchesReference) {
  SecureRandom rng(43);
  for (int k = 0; k < 100; ++k) {
    const Bytes key = rng.bytes(Des::kKeySize);
    const Des fast(key);
    const ReferenceDes slow(key);
    for (int b = 0; b < 100; ++b) {
      const Bytes pt = rng.bytes(8);
      Bytes fast_ct(8), slow_ct(8), back(8);
      fast.encrypt_block(pt.data(), fast_ct.data());
      slow.encrypt_block(pt.data(), slow_ct.data());
      ASSERT_EQ(fast_ct, slow_ct) << "key " << to_hex(key);
      fast.decrypt_block(slow_ct.data(), back.data());
      ASSERT_EQ(back, pt);
      slow.decrypt_block(fast_ct.data(), back.data());
      ASSERT_EQ(back, pt);
    }
  }
}

TEST(AesNiKernel, Fips197AppendixB) {
  if (!Aes128Ni::supported()) GTEST_SKIP() << "AES-NI unavailable";
  const Aes128Ni aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Bytes pt = from_hex("3243f6a8885a308d313198a2e0370734");
  Bytes ct(16);
  aes.encrypt_block(pt.data(), ct.data());
  EXPECT_EQ(to_hex(ct), "3925841d02dc09fbdc118597196a0b32");
  Bytes back(16);
  aes.decrypt_block(ct.data(), back.data());
  EXPECT_EQ(back, pt);
}

TEST(AesNiKernel, Sp80038aCbcAllFourBlocks) {
  if (!Aes128Ni::supported()) GTEST_SKIP() << "AES-NI unavailable";
  const Aes128Ni aes(from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
  const Bytes iv = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51"
      "30c81c46a35ce411e5fbc1191a0a52ef"
      "f69f2445df4f9b17ad2b417be66c3710");
  const Bytes ct = from_hex(
      "7649abac8119b246cee98e9b12e9197d"
      "5086cb9b507219ee95db113a917678b2"
      "73bed6b8e3c1743b7116e69e22229516"
      "3ff1caa1681fac09120eca307586e1a7");
  EXPECT_EQ(cbc_raw_encrypt(aes, iv, pt), ct);
  EXPECT_EQ(cbc_raw_decrypt(aes, iv, ct), pt);
}

TEST(CrossCheck, AesNiMatchesTableAndReferenceTenThousandBlocks) {
  // 100 key schedules x 100 blocks: the three kernels (hardware, table,
  // bit-loop reference) must agree block-for-block in both directions.
  if (!Aes128Ni::supported()) GTEST_SKIP() << "AES-NI unavailable";
  SecureRandom rng(44);
  for (int k = 0; k < 100; ++k) {
    const Bytes key = rng.bytes(Aes128Ni::kKeySize);
    const Aes128Ni hw(key);
    const Aes128 table(key);
    const ReferenceAes128 reference(key);
    for (int b = 0; b < 100; ++b) {
      const Bytes pt = rng.bytes(16);
      Bytes hw_ct(16), table_ct(16), reference_ct(16), back(16);
      hw.encrypt_block(pt.data(), hw_ct.data());
      table.encrypt_block(pt.data(), table_ct.data());
      reference.encrypt_block(pt.data(), reference_ct.data());
      ASSERT_EQ(hw_ct, table_ct) << "key " << to_hex(key);
      ASSERT_EQ(hw_ct, reference_ct) << "key " << to_hex(key);
      hw.decrypt_block(table_ct.data(), back.data());
      ASSERT_EQ(back, pt);
      table.decrypt_block(hw_ct.data(), back.data());
      ASSERT_EQ(back, pt);
    }
  }
}

TEST(AesNiKernel, UnalignedBuffersMatchAligned) {
  // The kernel uses unaligned loads/stores; feed it buffers at every
  // misalignment (and in-place aliasing) and pin the bytes to the table
  // kernel's.
  if (!Aes128Ni::supported()) GTEST_SKIP() << "AES-NI unavailable";
  SecureRandom rng(45);
  const Bytes key = rng.bytes(16);
  const Aes128Ni hw(key);
  const Aes128 table(key);
  for (std::size_t offset = 0; offset < 8; ++offset) {
    Bytes in_buffer(16 + offset + 8);
    Bytes out_buffer(16 + offset + 8, 0);
    std::uint8_t* in = in_buffer.data() + offset;
    std::uint8_t* out = out_buffer.data() + offset;
    const Bytes pt = rng.bytes(16);
    std::copy(pt.begin(), pt.end(), in);
    hw.encrypt_block(in, out);
    Bytes want(16);
    table.encrypt_block(pt.data(), want.data());
    EXPECT_EQ(Bytes(out, out + 16), want) << "offset " << offset;
    hw.encrypt_block(in, in);  // aliased in-place
    EXPECT_EQ(Bytes(in, in + 16), want) << "aliased, offset " << offset;
    hw.decrypt_block(in, in);
    EXPECT_EQ(Bytes(in, in + 16), pt);
  }
}

TEST(AesNiKernel, DispatchFollowsOverrideAndIsByteInvariant) {
  if (!cpu_features().aesni_usable()) {
    GTEST_SKIP() << "AES-NI unavailable";
  }
  SecureRandom rng(46);
  const Bytes key = rng.bytes(16);
  const Bytes iv = rng.bytes(16);
  const Bytes pt = rng.bytes(41);
  override_aesni_dispatch(true);
  auto hw = make_cipher(CipherAlgorithm::kAes128, key);
  EXPECT_EQ(hw->kernel(), BlockKernel::kAesNi);
  EXPECT_EQ(hw->name(), "AES-128-ni");
  const Bytes hw_ct = CbcCipher(std::move(hw)).encrypt_with_iv(pt, iv);
  override_aesni_dispatch(false);
  auto portable = make_cipher(CipherAlgorithm::kAes128, key);
  EXPECT_EQ(portable->kernel(), BlockKernel::kGeneric);
  EXPECT_EQ(portable->name(), "AES-128");
  const Bytes portable_ct =
      CbcCipher(std::move(portable)).encrypt_with_iv(pt, iv);
  override_aesni_dispatch(std::nullopt);
  EXPECT_EQ(hw_ct, portable_ct);  // wire bytes never depend on dispatch
}

TEST(AesNiKernel, OverrideToHardwareThrowsWhenUnusable) {
  if (cpu_features().aesni_usable()) {
    GTEST_SKIP() << "host can run the hardware kernel";
  }
  EXPECT_THROW(override_aesni_dispatch(true), CryptoError);
  EXPECT_THROW(Aes128Ni(Bytes(16, 0x01)), CryptoError);
}

TEST(CbcMany, EncryptManyMatchesSequentialAcrossKernelsAndSizes) {
  // encrypt_many_into over a mixed batch — hardware and generic ciphers
  // interleaved, sizes crossing every padding case, more ops than one
  // 8-stream group — must produce exactly the bytes of sequential
  // encrypt_into calls.
  SecureRandom rng(47);
  const std::size_t sizes[] = {0, 1, 8, 15, 16, 17, 31, 32, 33,
                               64, 100, 128, 240, 256, 257, 300,
                               512, 1000, 1024};
  std::vector<CbcCipher> cbcs;
  std::vector<Bytes> plaintexts, ivs;
  for (std::size_t i = 0; i < std::size(sizes); ++i) {
    const Bytes key = rng.bytes(16);
    const bool hw = Aes128Ni::supported() && i % 3 != 2;
    cbcs.emplace_back(hw ? std::shared_ptr<const BlockCipher>(
                               std::make_shared<Aes128Ni>(key))
                         : std::make_shared<Aes128>(key));
    plaintexts.push_back(rng.bytes(sizes[i]));
    ivs.push_back(rng.bytes(16));
  }
  std::vector<Bytes> want, got;
  std::vector<CbcCipher::StreamOp> ops;
  for (std::size_t i = 0; i < cbcs.size(); ++i) {
    want.emplace_back(cbcs[i].ciphertext_size(plaintexts[i].size()));
    cbcs[i].encrypt_into(plaintexts[i], ivs[i], want.back().data());
    got.emplace_back(want.back().size(), 0);
  }
  for (std::size_t i = 0; i < cbcs.size(); ++i) {
    ops.push_back({&cbcs[i], plaintexts[i], ivs[i], got[i].data()});
  }
  CbcCipher::encrypt_many_into(ops);
  for (std::size_t i = 0; i < cbcs.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "stream " << i << " size "
                               << plaintexts[i].size();
  }
}

TEST(CbcMany, EmptyBatchIsANoOp) {
  CbcCipher::encrypt_many_into({});
}

TEST(CbcInto, MatchesAllocatingPaths) {
  SecureRandom rng(7);
  for (const CipherAlgorithm algorithm :
       {CipherAlgorithm::kDes, CipherAlgorithm::kAes128}) {
    const CbcCipher cbc(
        make_cipher(algorithm, rng.bytes(cipher_key_size(algorithm))));
    const std::size_t block = cbc.cipher().block_size();
    for (const std::size_t n : {0u, 1u, 7u, 8u, 15u, 16u, 17u, 100u, 333u}) {
      const Bytes pt = rng.bytes(n);
      const Bytes iv = rng.bytes(block);
      const Bytes want = cbc.encrypt_with_iv(pt, iv);
      Bytes got(cbc.ciphertext_size(n));
      cbc.encrypt_into(pt, iv, got.data());
      EXPECT_EQ(got, want) << "size " << n;

      Bytes plain(got.size() - block, 0xee);
      const std::size_t plain_size = cbc.decrypt_into(got, plain.data());
      EXPECT_EQ(plain_size, n);
      EXPECT_EQ(Bytes(plain.begin(),
                      plain.begin() + static_cast<std::ptrdiff_t>(n)),
                pt);
      // The padding tail must be wiped, not left as decrypted pad bytes.
      for (std::size_t i = n; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i], 0u) << "unwiped pad byte at " << i;
      }
    }
  }
}

TEST(CbcInto, BadPaddingWipesOutputAndThrows) {
  SecureRandom rng(8);
  const CbcCipher cbc(
      make_cipher(CipherAlgorithm::kAes128, rng.bytes(Aes128::kKeySize)));
  const Bytes pt = bytes_of("sixteen byte key");
  Bytes ct = cbc.encrypt(pt, rng);
  int rejected = 0;
  for (int trial = 0; trial < 64; ++trial) {
    Bytes tampered = ct;
    tampered[tampered.size() - 1 - static_cast<std::size_t>(
                                       rng.uniform(16))] ^= 0x01;
    Bytes out(tampered.size() - 16, 0xee);
    try {
      cbc.decrypt_into(tampered, out.data());
    } catch (const CryptoError&) {
      ++rejected;
      for (std::size_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(out[i], 0u) << "plaintext residue at " << i;
      }
    }
  }
  EXPECT_GT(rejected, 32);
}

}  // namespace
}  // namespace keygraphs::crypto

namespace keygraphs::rekey {
namespace {

using crypto::CipherAlgorithm;
using crypto::SecureRandom;

TEST(ScheduleCache, HitSharesOneSchedule) {
  ScheduleCache cache(8);
  SecureRandom rng(1);
  const Bytes secret = rng.bytes(16);
  const KeyRef ref{5, 2};
  const auto a = cache.get(CipherAlgorithm::kAes128, ref, secret);
  const auto b = cache.get(CipherAlgorithm::kAes128, ref, secret);
  EXPECT_EQ(a.get(), b.get());  // literally the same expansion
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ScheduleCache, CountersTrackHitsMissesInserts) {
  ScheduleCache cache(8, "test.sc_counters");
  auto& registry = telemetry::Registry::global();
  const auto hits = registry.counter("test.sc_counters.hits").value();
  const auto misses = registry.counter("test.sc_counters.misses").value();
  const auto inserts = registry.counter("test.sc_counters.inserts").value();
  SecureRandom rng(2);
  const Bytes secret = rng.bytes(16);
  cache.warm(CipherAlgorithm::kAes128, {1, 1}, secret);   // insert
  cache.warm(CipherAlgorithm::kAes128, {1, 1}, secret);   // already resident
  cache.get(CipherAlgorithm::kAes128, {1, 1}, secret);    // hit
  cache.get(CipherAlgorithm::kAes128, {2, 1}, secret);    // miss
  EXPECT_EQ(registry.counter("test.sc_counters.hits").value(), hits + 1);
  EXPECT_EQ(registry.counter("test.sc_counters.misses").value(), misses + 1);
  EXPECT_EQ(registry.counter("test.sc_counters.inserts").value(),
            inserts + 1);
}

TEST(ScheduleCache, LruEvictsOldestAtCapacity) {
  ScheduleCache cache(2);
  SecureRandom rng(3);
  const Bytes secret = rng.bytes(16);
  const auto first = cache.get(CipherAlgorithm::kAes128, {1, 1}, secret);
  cache.get(CipherAlgorithm::kAes128, {2, 1}, secret);
  cache.get(CipherAlgorithm::kAes128, {1, 1}, secret);  // refresh id 1
  cache.get(CipherAlgorithm::kAes128, {3, 1}, secret);  // evicts id 2
  EXPECT_EQ(cache.size(), 2u);
  // Id 1 must still be resident (same expansion object), id 2 rebuilt.
  EXPECT_EQ(cache.get(CipherAlgorithm::kAes128, {1, 1}, secret).get(),
            first.get());
}

TEST(ScheduleCache, InvalidateOlderDropsOnlyStaleVersions) {
  ScheduleCache cache(8);
  SecureRandom rng(4);
  const Bytes secret = rng.bytes(16);
  cache.get(CipherAlgorithm::kAes128, {7, 1}, secret);
  cache.get(CipherAlgorithm::kAes128, {7, 2}, secret);
  const auto newest = cache.get(CipherAlgorithm::kAes128, {7, 3}, secret);
  cache.invalidate_older({7, 3});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.get(CipherAlgorithm::kAes128, {7, 3}, secret).get(),
            newest.get());
}

TEST(ScheduleCache, InvalidateIdDropsAllVersions) {
  ScheduleCache cache(8);
  SecureRandom rng(5);
  const Bytes secret = rng.bytes(16);
  cache.get(CipherAlgorithm::kAes128, {9, 1}, secret);
  cache.get(CipherAlgorithm::kAes128, {9, 2}, secret);
  cache.get(CipherAlgorithm::kAes128, {10, 1}, secret);
  cache.invalidate_id(9);
  EXPECT_EQ(cache.size(), 1u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ScheduleCache, SecretMismatchNeverServesStaleSchedule) {
  // Two groups can reuse an (id, version); the cache must key on the
  // actual secret, not just the reference.
  ScheduleCache cache(8);
  SecureRandom rng(6);
  const Bytes secret_a = rng.bytes(16);
  const Bytes secret_b = rng.bytes(16);
  const KeyRef ref{4, 4};
  const auto a = cache.get(CipherAlgorithm::kAes128, ref, secret_a);
  const auto b = cache.get(CipherAlgorithm::kAes128, ref, secret_b);
  EXPECT_NE(a.get(), b.get());
  Bytes pt(16, 0x5a), ct_a(16), ct_b(16);
  a->encrypt_block(pt.data(), ct_a.data());
  b->encrypt_block(pt.data(), ct_b.data());
  EXPECT_NE(ct_a, ct_b);  // b really is keyed with secret_b
}

TEST(ScheduleCache, ConcurrentMixedUseIsSafe) {
  // Hammered by the TSan CI job: concurrent get/warm/invalidate on a
  // small cache so eviction, racing misses, and hits all interleave.
  ScheduleCache cache(16);
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (unsigned t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &mismatches, t] {
      SecureRandom rng(100 + t);
      Bytes pt(16, 0x33), ct(16), back(16);
      for (int i = 0; i < 500; ++i) {
        const KeyId id = static_cast<KeyId>(rng.uniform(24));
        const KeyRef ref{id, 1};
        Bytes secret(16, static_cast<std::uint8_t>(id));
        const auto cipher = cache.get(CipherAlgorithm::kAes128, ref, secret);
        cipher->encrypt_block(pt.data(), ct.data());
        cipher->decrypt_block(ct.data(), back.data());
        if (back != pt) mismatches.fetch_add(1);
        if (i % 17 == 0) cache.invalidate_id(id);
        if (i % 29 == 0) {
          cache.warm(CipherAlgorithm::kAes128, {id, 2}, secret);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace keygraphs::rekey

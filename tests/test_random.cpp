// ChaCha20 core and the SecureRandom DRBG: RFC 7539 quarter-round vector,
// determinism, stream-position independence, and uniform() statistics.
#include "crypto/random.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "crypto/chacha20.h"

namespace keygraphs::crypto {
namespace {

TEST(ChaCha20, Rfc7539QuarterRound) {
  std::uint32_t a = 0x11111111, b = 0x01020304, c = 0x9b8d6f43,
                d = 0x01234567;
  ChaCha20::quarter_round(a, b, c, d);
  EXPECT_EQ(a, 0xea2a92f4u);
  EXPECT_EQ(b, 0xcb1cf8ceu);
  EXPECT_EQ(c, 0x4581472eu);
  EXPECT_EQ(d, 0x5881c4bbu);
}

TEST(ChaCha20, RejectsBadKeyOrNonce) {
  EXPECT_THROW(ChaCha20(Bytes(31, 0), Bytes(12, 0)), CryptoError);
  EXPECT_THROW(ChaCha20(Bytes(32, 0), Bytes(11, 0)), CryptoError);
}

TEST(ChaCha20, BlocksAdvanceAndDiffer) {
  ChaCha20 stream(Bytes(32, 0x42), Bytes(12, 0x24));
  std::uint8_t block1[64], block2[64];
  stream.next_block(block1);
  stream.next_block(block2);
  EXPECT_NE(Bytes(block1, block1 + 64), Bytes(block2, block2 + 64));
}

TEST(ChaCha20, SameKeyNonceCounterSameStream) {
  ChaCha20 a(Bytes(32, 1), Bytes(12, 2), 5);
  ChaCha20 b(Bytes(32, 1), Bytes(12, 2), 5);
  std::uint8_t block_a[64], block_b[64];
  a.next_block(block_a);
  b.next_block(block_b);
  EXPECT_EQ(Bytes(block_a, block_a + 64), Bytes(block_b, block_b + 64));
}

TEST(Drbg, EmptySeedRejected) {
  EXPECT_THROW(ChaCha20Drbg(Bytes{}), CryptoError);
}

TEST(SecureRandom, DeterministicFromSeed) {
  SecureRandom a(1234), b(1234);
  EXPECT_EQ(a.bytes(64), b.bytes(64));
  EXPECT_EQ(a.uniform(1000), b.uniform(1000));
}

TEST(SecureRandom, DifferentSeedsDiffer) {
  SecureRandom a(1), b(2);
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(SecureRandom, SplitReadsMatchBulkRead) {
  SecureRandom a(99), b(99);
  Bytes bulk = a.bytes(100);
  Bytes split = b.bytes(37);
  const Bytes rest = b.bytes(63);
  split.insert(split.end(), rest.begin(), rest.end());
  EXPECT_EQ(bulk, split);
}

TEST(SecureRandom, UniformStaysInRange) {
  SecureRandom rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(SecureRandom, UniformBoundOneAlwaysZero) {
  SecureRandom rng(8);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform(1), 0u);
}

TEST(SecureRandom, UniformZeroBoundThrows) {
  SecureRandom rng(9);
  EXPECT_THROW((void)rng.uniform(0), Error);
}

TEST(SecureRandom, UniformCoversSmallRange) {
  SecureRandom rng(10);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.uniform(4));
  EXPECT_EQ(seen.size(), 4u);
}

TEST(SecureRandom, UniformUnitInHalfOpenInterval) {
  SecureRandom rng(11);
  double sum = 0;
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.uniform_unit();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 2000.0, 0.5, 0.05);  // crude mean check
}

TEST(SecureRandom, ByteFrequenciesRoughlyUniform) {
  SecureRandom rng(12);
  const Bytes data = rng.bytes(65536);
  std::array<int, 256> counts{};
  for (std::uint8_t b : data) ++counts[b];
  // Expected 256 per bucket; allow generous +-50% slack.
  for (int count : counts) {
    EXPECT_GT(count, 128);
    EXPECT_LT(count, 384);
  }
}

TEST(SecureRandom, OsSeededInstancesDiffer) {
  SecureRandom a, b;
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

}  // namespace
}  // namespace keygraphs::crypto

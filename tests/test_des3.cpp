// Triple-DES (EDE3): degeneration to single DES with equal subkeys, round
// trips, known-answer consistency with the DES vector, and registry wiring.
#include "crypto/des3.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "crypto/cbc.h"
#include "crypto/suite.h"
#include "crypto/random.h"

namespace keygraphs::crypto {
namespace {

TEST(Des3, EqualSubkeysDegenerateToSingleDes) {
  // E_k(D_k(E_k(P))) = E_k(P): 3DES with k1=k2=k3 must equal DES.
  const Bytes k = from_hex("133457799bbcdff1");
  Bytes triple_key;
  for (int i = 0; i < 3; ++i) {
    triple_key.insert(triple_key.end(), k.begin(), k.end());
  }
  const Des3 des3(triple_key);
  const Bytes pt = from_hex("0123456789abcdef");
  Bytes out(8);
  des3.encrypt_block(pt.data(), out.data());
  EXPECT_EQ(to_hex(out), "85e813540f0ab405");  // the single-DES vector
}

TEST(Des3, RejectsWrongKeySize) {
  EXPECT_THROW(Des3(Bytes(8, 0)), CryptoError);
  EXPECT_THROW(Des3(Bytes(16, 0)), CryptoError);
  EXPECT_THROW(Des3(Bytes(23, 0)), CryptoError);
}

TEST(Des3, Accessors) {
  const Des3 des3(Bytes(24, 0x01));
  EXPECT_EQ(des3.block_size(), 8u);
  EXPECT_EQ(des3.key_size(), 24u);
  EXPECT_EQ(des3.name(), "3DES");
}

TEST(Des3, RoundTripsWithDistinctSubkeys) {
  SecureRandom rng(3);
  const Des3 des3(rng.bytes(24));
  for (int i = 0; i < 32; ++i) {
    const Bytes pt = rng.bytes(8);
    Bytes ct(8), back(8);
    des3.encrypt_block(pt.data(), ct.data());
    des3.decrypt_block(ct.data(), back.data());
    EXPECT_EQ(back, pt);
    EXPECT_NE(ct, pt);
  }
}

TEST(Des3, DiffersFromSingleDesWithDistinctSubkeys) {
  SecureRandom rng(4);
  const Bytes key = rng.bytes(24);
  const Des3 des3(key);
  const Des single(BytesView(key.data(), 8));
  const Bytes pt = rng.bytes(8);
  Bytes a(8), b(8);
  des3.encrypt_block(pt.data(), a.data());
  single.encrypt_block(pt.data(), b.data());
  EXPECT_NE(a, b);
}

TEST(Des3, RegisteredInCipherFactory) {
  SecureRandom rng(5);
  EXPECT_EQ(cipher_key_size(CipherAlgorithm::kDes3), 24u);
  EXPECT_EQ(cipher_name(CipherAlgorithm::kDes3), "3DES");
  const auto cipher = make_cipher(CipherAlgorithm::kDes3, rng.bytes(24));
  EXPECT_EQ(cipher->name(), "3DES");

  const CbcCipher cbc(make_cipher(CipherAlgorithm::kDes3, rng.bytes(24)));
  const Bytes pt = bytes_of("wrapped key material");
  EXPECT_EQ(cbc.decrypt(cbc.encrypt(pt, rng)), pt);
}

TEST(Des3, WholeSuiteWorksWithTripleDes) {
  // A group server configured with 3DES must run end to end.
  const CryptoSuite suite{CipherAlgorithm::kDes3, DigestAlgorithm::kSha1,
                          SignatureAlgorithm::kNone};
  EXPECT_EQ(suite.key_size(), 24u);
  EXPECT_EQ(suite.label(), "3DES/SHA-1/none");
}

}  // namespace
}  // namespace keygraphs::crypto

// RSA signatures: keygen structure, PKCS#1 v1.5 encoding, sign/verify,
// tamper rejection, cross-key rejection, and public-key serialization.
#include "crypto/rsa.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "crypto/random.h"

namespace keygraphs::crypto {
namespace {

const RsaPrivateKey& test_key_512() {
  static SecureRandom rng(42);
  static const RsaPrivateKey key = RsaPrivateKey::generate(rng, 512);
  return key;
}

TEST(Pkcs1Encode, StructureForMd5) {
  const Bytes digest(16, 0xaa);
  const Bytes encoded = pkcs1_v15_encode(DigestAlgorithm::kMd5, digest, 64);
  EXPECT_EQ(encoded.size(), 64u);
  EXPECT_EQ(encoded[0], 0x00);
  EXPECT_EQ(encoded[1], 0x01);
  // Padding bytes are 0xff until the 0x00 separator.
  std::size_t i = 2;
  while (encoded[i] == 0xff) ++i;
  EXPECT_GE(i - 2, 8u);  // at least 8 bytes of 0xff (RFC 8017)
  EXPECT_EQ(encoded[i], 0x00);
  // Tail is DigestInfo || digest; digest occupies the last 16 bytes.
  EXPECT_EQ(Bytes(encoded.end() - 16, encoded.end()), digest);
}

TEST(Pkcs1Encode, RejectsTooSmallModulus) {
  const Bytes digest(32, 0);
  EXPECT_THROW(pkcs1_v15_encode(DigestAlgorithm::kSha256, digest, 48),
               CryptoError);
}

TEST(Pkcs1Encode, RejectsWrongDigestLength) {
  EXPECT_THROW(pkcs1_v15_encode(DigestAlgorithm::kMd5, Bytes(20, 0), 64),
               CryptoError);
}

TEST(Rsa, GenerateRejectsBadParameters) {
  SecureRandom rng(1);
  EXPECT_THROW(RsaPrivateKey::generate(rng, 500), CryptoError);  // not even
  EXPECT_THROW(RsaPrivateKey::generate(rng, 256), CryptoError);  // too small
}

TEST(Rsa, ModulusHasExactWidth) {
  const RsaPrivateKey& key = test_key_512();
  EXPECT_EQ(key.public_key().modulus().bit_length(), 512u);
  EXPECT_EQ(key.signature_size(), 64u);
}

TEST(Rsa, SignVerifyRoundTrip) {
  const RsaPrivateKey& key = test_key_512();
  const Bytes message = bytes_of("rekey message body");
  const Bytes signature = key.sign(DigestAlgorithm::kMd5, message);
  EXPECT_EQ(signature.size(), 64u);
  EXPECT_TRUE(
      key.public_key().verify(DigestAlgorithm::kMd5, message, signature));
}

TEST(Rsa, VerifyRejectsTamperedMessage) {
  const RsaPrivateKey& key = test_key_512();
  const Bytes signature =
      key.sign(DigestAlgorithm::kMd5, bytes_of("original"));
  EXPECT_FALSE(key.public_key().verify(DigestAlgorithm::kMd5,
                                       bytes_of("originaL"), signature));
}

TEST(Rsa, VerifyRejectsTamperedSignature) {
  const RsaPrivateKey& key = test_key_512();
  const Bytes message = bytes_of("message");
  Bytes signature = key.sign(DigestAlgorithm::kMd5, message);
  for (std::size_t i = 0; i < signature.size(); i += 7) {
    Bytes bad = signature;
    bad[i] ^= 0x40;
    EXPECT_FALSE(
        key.public_key().verify(DigestAlgorithm::kMd5, message, bad));
  }
}

TEST(Rsa, VerifyRejectsWrongLengthSignature) {
  const RsaPrivateKey& key = test_key_512();
  const Bytes message = bytes_of("message");
  Bytes signature = key.sign(DigestAlgorithm::kMd5, message);
  signature.pop_back();
  EXPECT_FALSE(
      key.public_key().verify(DigestAlgorithm::kMd5, message, signature));
  EXPECT_FALSE(
      key.public_key().verify(DigestAlgorithm::kMd5, message, Bytes{}));
}

TEST(Rsa, VerifyRejectsDigestAlgorithmConfusion) {
  const RsaPrivateKey& key = test_key_512();
  const Bytes message = bytes_of("message");
  const Bytes signature = key.sign(DigestAlgorithm::kMd5, message);
  EXPECT_FALSE(
      key.public_key().verify(DigestAlgorithm::kSha1, message, signature));
}

TEST(Rsa, VerifyRejectsOtherKeysSignature) {
  SecureRandom rng(7);
  const RsaPrivateKey other = RsaPrivateKey::generate(rng, 512);
  const Bytes message = bytes_of("message");
  const Bytes signature = other.sign(DigestAlgorithm::kMd5, message);
  EXPECT_FALSE(test_key_512().public_key().verify(DigestAlgorithm::kMd5,
                                                  message, signature));
}

TEST(Rsa, SignDigestMatchesSignMessage) {
  const RsaPrivateKey& key = test_key_512();
  const Bytes message = bytes_of("two paths, one signature");
  const Bytes digest = digest_of(DigestAlgorithm::kSha256, message);
  EXPECT_EQ(key.sign(DigestAlgorithm::kSha256, message),
            key.sign_digest(DigestAlgorithm::kSha256, digest));
}

TEST(Rsa, PublicKeySerializationRoundTrip) {
  const RsaPublicKey& original = test_key_512().public_key();
  const RsaPublicKey parsed = RsaPublicKey::deserialize(original.serialize());
  EXPECT_EQ(parsed.modulus(), original.modulus());
  EXPECT_EQ(parsed.exponent(), original.exponent());

  const Bytes message = bytes_of("still verifies after round trip");
  const Bytes signature = test_key_512().sign(DigestAlgorithm::kMd5, message);
  EXPECT_TRUE(parsed.verify(DigestAlgorithm::kMd5, message, signature));
}

TEST(Rsa, DeserializeRejectsJunk) {
  EXPECT_THROW(RsaPublicKey::deserialize(bytes_of("nonsense")), Error);
}

class RsaSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RsaSizes, SignVerifyAcrossModulusSizes) {
  SecureRandom rng(GetParam());
  const RsaPrivateKey key = RsaPrivateKey::generate(rng, GetParam());
  const Bytes message = bytes_of("sized");
  for (auto algorithm : {DigestAlgorithm::kMd5, DigestAlgorithm::kSha1,
                         DigestAlgorithm::kSha256}) {
    const Bytes signature = key.sign(algorithm, message);
    EXPECT_EQ(signature.size(), GetParam() / 8);
    EXPECT_TRUE(key.public_key().verify(algorithm, message, signature));
    EXPECT_FALSE(
        key.public_key().verify(algorithm, bytes_of("other"), signature));
  }
}

INSTANTIATE_TEST_SUITE_P(ModulusBits, RsaSizes,
                         ::testing::Values(512, 768, 1024));

TEST(Rsa, PublicExponentThree) {
  SecureRandom rng(3);
  const RsaPrivateKey key = RsaPrivateKey::generate(rng, 512, 3);
  const Bytes message = bytes_of("small exponent");
  EXPECT_TRUE(key.public_key().verify(
      DigestAlgorithm::kMd5, message, key.sign(DigestAlgorithm::kMd5,
                                               message)));
}

}  // namespace
}  // namespace keygraphs::crypto

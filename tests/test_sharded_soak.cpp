// Seeded million-user churn soak on the sharded server.
//
// Builds the group with preload() (chunked, message-free), attaches a
// sampled fleet of real GroupClients over the in-proc multicast network,
// then drives seeded churn — joins, leaves, batches, one NACK/retransmit
// episode — on an injected clock. Acceptance: every tracked client holds
// the server's group key at the server's epoch after every phase, the
// ConvergenceMonitor sees zero SLO violations and zero terminal lag, and
// the retransmit window (deliberately tiny, so it never pins more than two
// epochs' tree views at this scale) still serves an in-window NACK.
//
// Scale knobs (so TSan/debug runs can shrink it):
//   KG_SOAK_USERS  preloaded group size   (default 1,000,000)
//   KG_SOAK_OPS    churn operations       (default 256)
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "client/client.h"
#include "server/sharded_server.h"
#include "telemetry/convergence.h"
#include "telemetry/metrics.h"
#include "transport/inproc.h"

namespace keygraphs {
namespace {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return static_cast<std::size_t>(std::strtoull(value, nullptr, 10));
}

struct Tracked {
  Tracked(server::ShardedGroupKeyServer& server,
          transport::InProcNetwork& network, UserId user,
          std::uint64_t* clock_us)
      : network_(network), user_(user) {
    client::ClientConfig config;
    config.user = user;
    config.suite = server.config().base.suite;
    config.group = server.config().base.group;
    config.root = server.root_id();
    config.verify = false;
    config.rng_seed = user;
    // A configured recovery clock makes the client report its applied
    // high-water mark to the ConvergenceMonitor — only tracked clients
    // score.
    config.recovery.clock_us = [clock_us] { return *clock_us; };
    config.recovery.token = server.auth().resync_token(user);
    client_ = std::make_unique<client::GroupClient>(config, nullptr);
    client_->admit_snapshot(server.keyset(user), server.epoch());
    attach();
  }

  void attach() {
    network_.attach_client(user_, [this](BytesView datagram) {
      client_->handle_datagram(datagram);
      network_.resubscribe(user_, client_->key_ids());
    });
    network_.resubscribe(user_, client_->key_ids());
  }

  void detach() { network_.detach_client(user_); }

  client::GroupClient& operator*() { return *client_; }
  client::GroupClient* operator->() { return client_.get(); }

  transport::InProcNetwork& network_;
  UserId user_;
  std::unique_ptr<client::GroupClient> client_;
};

TEST(ShardedSoak, MillionUserChurnConvergesWithZeroSloViolations) {
  const std::size_t n = env_size("KG_SOAK_USERS", 1'000'000);
  const std::size_t ops = env_size("KG_SOAK_OPS", 256);
  constexpr std::size_t kShards = 8;
  constexpr std::size_t kTracked = 64;

  telemetry::set_enabled(true);
  telemetry::Registry::global().reset();
  auto& monitor = telemetry::ConvergenceMonitor::global();
  monitor.reset();
  monitor.set_slo_us(3'600'000'000);  // 1 hour: generous but armed

  std::uint64_t now_us = 1'000'000;
  transport::InProcNetwork network;
  server::ShardedServerConfig config;
  config.shards = kShards;
  config.base.rng_seed = 1998;
  config.base.clock_us = [&now_us] { return now_us; };
  // Each retained epoch pins per-shard tree views — at a million users
  // that is tens of megabytes per epoch, so the window stays tiny.
  config.base.retransmit_window = 2;
  server::ShardedGroupKeyServer server(config, network);

  std::vector<UserId> initial;
  initial.reserve(n);
  for (UserId user = 1; user <= n; ++user) initial.push_back(user);
  server.preload(initial);
  ASSERT_EQ(server.member_count(), n);
  ASSERT_EQ(server.epoch(), 0u);

  // Sample the fleet evenly across the id space (and therefore across
  // shards, via the router hash).
  std::map<UserId, std::unique_ptr<Tracked>> tracked;
  const UserId step = static_cast<UserId>(n / kTracked);
  for (std::size_t i = 0; i < kTracked; ++i) {
    const UserId user = 1 + static_cast<UserId>(i) * step;
    tracked.emplace(user, std::make_unique<Tracked>(server, network, user,
                                                    &now_us));
  }

  const auto check_converged = [&] {
    const SymmetricKey group = server.group_key();
    for (const auto& [user, member] : tracked) {
      const auto held = (*member)->group_key();
      ASSERT_TRUE(held.has_value()) << "user " << user;
      ASSERT_EQ(held->version, group.version) << "user " << user;
      ASSERT_EQ(held->secret, group.secret) << "user " << user;
      ASSERT_EQ((*member)->applied_epoch(), server.epoch())
          << "user " << user;
    }
  };

  // Seeded churn: join fresh ids, leave preloaded non-tracked ids, with a
  // batched update every 32nd operation.
  std::mt19937_64 prng(404);
  UserId next_join = static_cast<UserId>(n) + 1;
  UserId next_leave = 2;
  const auto pick_leaver = [&]() -> UserId {
    while (tracked.contains(next_leave)) ++next_leave;
    return next_leave++;
  };
  std::size_t joined = 0;
  std::size_t left = 0;
  for (std::size_t op = 0; op < ops; ++op) {
    now_us += 1'000;
    if (op % 32 == 31) {
      const std::vector<UserId> joins{next_join, next_join + 1};
      next_join += 2;
      const std::vector<UserId> leaves{pick_leaver(), pick_leaver()};
      ASSERT_EQ(server.batch(joins, leaves).size(), 2u);
      joined += 2;
      left += 2;
    } else if (prng() % 2 == 0) {
      ASSERT_EQ(server.join(next_join++), server::JoinResult::kGranted);
      ++joined;
    } else {
      server.leave(pick_leaver());
      ++left;
    }
  }
  EXPECT_EQ(server.member_count(), n + joined - left);
  check_converged();

  // One NACK/retransmit episode inside the tiny window: a tracked client
  // goes deaf for exactly two epochs and recovers from the sealed ring.
  const UserId victim = tracked.begin()->first;
  tracked.at(victim)->detach();
  now_us += 1'000;
  server.leave(pick_leaver());
  now_us += 1'000;
  ASSERT_EQ(server.join(next_join++), server::JoinResult::kGranted);
  tracked.at(victim)->attach();
  ASSERT_LT((*tracked.at(victim))->applied_epoch(), server.epoch());
  EXPECT_EQ(
      server.handle_nack(victim, (*tracked.at(victim))->applied_epoch()),
      server::NackOutcome::kRetransmitted);
  check_converged();

  EXPECT_EQ(monitor.published_epoch(), server.epoch());
  EXPECT_EQ(monitor.max_lag(), 0u);
  EXPECT_EQ(
      telemetry::Registry::global().counter("fleet.slo_violations").value(),
      0u);
}

}  // namespace
}  // namespace keygraphs

// KeyTree / server snapshot-and-restore (the Section 6 replication path):
// round trips with identical structure and key material, failover
// continuity (clients keep decrypting across the switch), and malformed-
// snapshot rejection.
#include <gtest/gtest.h>

#include "common/error.h"
#include "sim/simulator.h"
#include "sim/workload.h"
#include "telemetry/convergence.h"
#include "telemetry/metrics.h"

namespace keygraphs {
namespace {

crypto::SecureRandom& rng() {
  static crypto::SecureRandom instance(909);
  return instance;
}

Bytes ik(UserId user) { return Bytes(8, static_cast<std::uint8_t>(user)); }

TEST(TreeSnapshot, RoundTripPreservesEverything) {
  KeyTree original(4, 8, rng());
  for (UserId user = 1; user <= 37; ++user) original.join(user, ik(user));
  original.leave(5);
  original.leave(17);

  const Bytes snapshot = original.serialize();
  crypto::SecureRandom other_rng(1);
  const auto restored = KeyTree::deserialize(snapshot, other_rng);

  EXPECT_EQ(restored->user_count(), original.user_count());
  EXPECT_EQ(restored->key_count(), original.key_count());
  EXPECT_EQ(restored->height(), original.height());
  EXPECT_EQ(restored->root_id(), original.root_id());
  EXPECT_EQ(restored->group_key(), original.group_key());
  EXPECT_EQ(restored->users(), original.users());
  for (UserId user : original.users()) {
    EXPECT_EQ(restored->keyset(user), original.keyset(user))
        << "user " << user;
  }
  restored->check_invariants();
}

TEST(TreeSnapshot, RestoredTreeContinuesOperating) {
  KeyTree original(3, 8, rng());
  for (UserId user = 1; user <= 9; ++user) original.join(user, ik(user));
  crypto::SecureRandom replica_rng(2);
  const auto replica = KeyTree::deserialize(original.serialize(),
                                            replica_rng);
  // New operations on the replica work and preserve invariants; ids keep
  // advancing from the serialized counter, so no collisions.
  const JoinRecord join = replica->join(100, ik(100));
  EXPECT_FALSE(join.path.empty());
  replica->leave(4);
  replica->check_invariants();
}

TEST(TreeSnapshot, EmptyTreeRoundTrips) {
  KeyTree original(4, 16, rng());
  crypto::SecureRandom other_rng(3);
  const auto restored = KeyTree::deserialize(original.serialize(),
                                             other_rng);
  EXPECT_EQ(restored->user_count(), 0u);
  EXPECT_EQ(restored->group_key(), original.group_key());
}

TEST(TreeSnapshot, MalformedSnapshotsRejected) {
  KeyTree original(4, 8, rng());
  for (UserId user = 1; user <= 5; ++user) original.join(user, ik(user));
  const Bytes good = original.serialize();
  crypto::SecureRandom other_rng(4);

  EXPECT_THROW(KeyTree::deserialize(Bytes{}, other_rng), ParseError);
  EXPECT_THROW(KeyTree::deserialize(bytes_of("junk"), other_rng),
               ParseError);
  for (std::size_t len = 0; len < good.size(); len += 7) {
    EXPECT_THROW(
        KeyTree::deserialize(BytesView(good.data(), len), other_rng),
        ParseError)
        << "prefix " << len;
  }
  Bytes bad_magic = good;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(KeyTree::deserialize(bad_magic, other_rng), ParseError);
  Bytes trailing = good;
  trailing.push_back(0);
  EXPECT_THROW(KeyTree::deserialize(trailing, other_rng), ParseError);
}

TEST(ServerSnapshot, FailoverIsInvisibleToClients) {
  // Primary server with live clients...
  server::ServerConfig config;
  config.tree_degree = 4;
  config.rng_seed = 10;
  transport::InProcNetwork network;
  server::GroupKeyServer primary(config, network);
  sim::ClientSimulator clients(primary, network);
  sim::WorkloadGenerator workload(4);
  clients.apply_all(workload.initial_joins(12));

  // ...snapshot flows to a standby with a different seed...
  const Bytes snapshot = primary.snapshot();
  server::ServerConfig standby_config = config;
  standby_config.rng_seed = 999;  // different future randomness is fine
  server::GroupKeyServer standby(standby_config, network);
  standby.restore(snapshot);
  EXPECT_EQ(standby.epoch(), primary.epoch());
  EXPECT_EQ(standby.tree().group_key(), primary.tree().group_key());

  // ...the standby takes over and rekeys: existing clients must be able to
  // process its messages seamlessly (same node ids, same old keys).
  standby.leave(3);
  network.detach_client(3);  // the evicted client stops listening
  const SymmetricKey group = standby.tree().group_key();
  for (UserId user : standby.tree().users()) {
    const auto held = clients.client(user).group_key();
    ASSERT_TRUE(held.has_value()) << "user " << user;
    EXPECT_EQ(held->secret, group.secret) << "user " << user;
  }
}

TEST(ServerSnapshot, RestoreRejectsGarbageWithoutStateChange) {
  server::ServerConfig config;
  config.rng_seed = 11;
  transport::NullTransport transport;
  server::GroupKeyServer server(config, transport);
  server.join(1);
  server.join(2);
  const SymmetricKey before = server.tree().group_key();
  EXPECT_THROW(server.restore(bytes_of("not a snapshot")), ParseError);
  EXPECT_EQ(server.tree().group_key(), before);
  EXPECT_EQ(server.tree().user_count(), 2u);
}

TEST(ServerSnapshot, SnapshotCarriesEpoch) {
  server::ServerConfig config;
  config.rng_seed = 12;
  transport::NullTransport transport;
  server::GroupKeyServer server(config, transport);
  for (UserId user = 1; user <= 6; ++user) server.join(user);
  const Bytes snapshot = server.snapshot();

  server::GroupKeyServer replica(config, transport);
  replica.restore(snapshot);
  EXPECT_EQ(replica.epoch(), 6u);
  // The next operation uses epoch 7 — clients' replay protection holds.
  replica.leave(2);
  EXPECT_EQ(replica.epoch(), 7u);
}

TEST(ServerSnapshot, RestoreResetsTheRetransmitWindow) {
  server::ServerConfig config;
  config.rng_seed = 13;
  config.retransmit_window = 16;
  config.recovery_rate = 0;
  transport::NullTransport transport;
  server::GroupKeyServer server(config, transport);
  for (UserId user = 1; user <= 6; ++user) server.join(user);
  const Bytes snapshot = server.snapshot();  // epoch 6
  for (UserId user = 7; user <= 9; ++user) server.join(user);

  // Sanity: before the restore the window serves the small gap.
  EXPECT_EQ(server.handle_nack(1, server.epoch() - 1),
            server::NackOutcome::kRetransmitted);

  server.restore(snapshot);
  EXPECT_EQ(server.epoch(), 6u);
  // The retained epoch-7..9 datagrams were invalidated by the rollback:
  // they encrypt against keys the restored tree has rewound past. A NACK
  // that once hit the window must now escalate to a full resync rather
  // than replay stale ciphertext.
  EXPECT_EQ(server.handle_nack(1, server.epoch() - 1),
            server::NackOutcome::kResynced);
}

TEST(ServerSnapshot, RestoreReanchorsTheConvergenceMonitor) {
  telemetry::Registry::global().reset();
  telemetry::ConvergenceMonitor::global().reset();

  server::ServerConfig config;
  config.rng_seed = 14;
  transport::NullTransport transport;
  server::GroupKeyServer server(config, transport);
  for (UserId user = 1; user <= 6; ++user) server.join(user);
  const Bytes snapshot = server.snapshot();
  for (UserId user = 7; user <= 10; ++user) server.join(user);
  EXPECT_EQ(telemetry::ConvergenceMonitor::global().published_epoch(), 10u);

  // Rolling back must also roll back the published high-water mark:
  // otherwise every post-restore apply at epochs 7..10 would score
  // against the pre-restore publish timeline and fake fleet latencies.
  server.restore(snapshot);
  EXPECT_EQ(telemetry::ConvergenceMonitor::global().published_epoch(), 6u);
  server.join(20);
  EXPECT_EQ(telemetry::ConvergenceMonitor::global().published_epoch(), 7u);
}

}  // namespace
}  // namespace keygraphs

// Rekeying strategies vs the paper's Section 3 cost accounting, on perfect
// d-ary trees where the formulas are exact:
//   user-oriented join:  h messages,       h(h+1)/2 - 1 encryptions
//   key-oriented  join:  h messages,       2(h-1) encryptions
//   group-oriented join: 2 messages,       2(h-1) encryptions
//   user-oriented leave: (d-1)(h-1) msgs,  (d-1)h(h-1)/2 encryptions
//   key-oriented  leave: (d-1)(h-1) msgs,  d(h-1) - 1 encryptions
//   group-oriented leave: 1 message,       d(h-1) - 1 encryptions
// (the paper rounds d(h-1)-1 up to d(h-1); see Figure 5's worked example,
// which costs 5 = 3*2-1), plus plan-level forward/backward secrecy: no
// leave blob is wrapped with any key the leaver held, and no join blob
// with the joiner's reachable keys except its individual key.
#include "rekey/strategy.h"

#include <gtest/gtest.h>

#include <set>

#include "keygraph/key_tree.h"

namespace keygraphs::rekey {
namespace {

struct TreeShape {
  int degree;
  int levels;  // perfect tree with degree^levels users
};

class StrategyCosts
    : public ::testing::TestWithParam<std::tuple<TreeShape, StrategyKind>> {
 protected:
  void SetUp() override {
    const auto [shape, kind] = GetParam();
    degree_ = shape.degree;
    levels_ = shape.levels;
    paper_h_ = static_cast<std::size_t>(levels_) + 1;
    rng_ = std::make_unique<crypto::SecureRandom>(
        static_cast<std::uint64_t>(degree_ * 100 + levels_));
    tree_ = std::make_unique<KeyTree>(degree_, 8, *rng_);
    n_ = 1;
    for (int i = 0; i < levels_; ++i) n_ *= static_cast<std::size_t>(degree_);
    for (UserId user = 1; user <= n_; ++user) {
      tree_->join(user, Bytes(8, static_cast<std::uint8_t>(user)));
    }
    // Vacate one slot so the next join lands in the hole (path length ==
    // levels, no split) and the formulas apply exactly.
    tree_->leave(1);
    strategy_ = make_strategy(kind);
    encryptor_ = std::make_unique<RekeyEncryptor>(
        crypto::CipherAlgorithm::kDes, *rng_);
  }

  int degree_ = 0;
  int levels_ = 0;
  std::size_t paper_h_ = 0;
  std::size_t n_ = 0;
  std::unique_ptr<crypto::SecureRandom> rng_;
  std::unique_ptr<KeyTree> tree_;
  std::unique_ptr<RekeyStrategy> strategy_;
  std::unique_ptr<RekeyEncryptor> encryptor_;
};

TEST_P(StrategyCosts, JoinMatchesPaperFormulas) {
  const StrategyKind kind = std::get<1>(GetParam());
  const JoinRecord record =
      tree_->join(9999, Bytes(8, 0xEE));
  ASSERT_EQ(record.path.size(), static_cast<std::size_t>(levels_));
  const auto messages = strategy_->plan_join(record, *encryptor_);
  const std::size_t h = paper_h_;
  const std::size_t d = static_cast<std::size_t>(degree_);

  switch (kind) {
    case StrategyKind::kUserOriented:
      EXPECT_EQ(messages.size(), h);  // h-1 subgroup messages + welcome
      EXPECT_EQ(encryptor_->key_encryptions(), h * (h + 1) / 2 - 1);
      break;
    case StrategyKind::kKeyOriented:
      EXPECT_EQ(messages.size(), h);
      EXPECT_EQ(encryptor_->key_encryptions(), 2 * (h - 1));
      break;
    case StrategyKind::kGroupOriented:
      EXPECT_EQ(messages.size(), 2u);  // one multicast + welcome
      EXPECT_EQ(encryptor_->key_encryptions(), 2 * (h - 1));
      break;
    case StrategyKind::kHybrid:
      EXPECT_EQ(messages.size(), d + 1);  // one per root subtree + welcome
      EXPECT_EQ(encryptor_->key_encryptions(), 2 * (h - 1));
      break;
  }

  // Exactly one unicast, addressed to the joiner, carrying all new keys.
  std::size_t unicasts = 0;
  for (const OutboundRekey& outbound : messages) {
    if (outbound.to.kind == Recipient::Kind::kUser) {
      ++unicasts;
      EXPECT_EQ(outbound.to.user, 9999u);
      ASSERT_EQ(outbound.message.blobs.size(), 1u);
      EXPECT_EQ(outbound.message.blobs[0].wrap.id, individual_key_id(9999));
      EXPECT_EQ(outbound.message.blobs[0].targets.size(), record.path.size());
    }
  }
  EXPECT_EQ(unicasts, 1u);

  // Backward secrecy at plan level: apart from its own individual key, no
  // blob is wrapped with a key the joiner knows (it knows only new keys).
  std::set<KeyRef> new_keys;
  for (const PathChange& change : record.path) {
    new_keys.insert(change.new_key.ref());
  }
  for (const OutboundRekey& outbound : messages) {
    for (const KeyBlob& blob : outbound.message.blobs) {
      if (blob.wrap.id == individual_key_id(9999)) continue;
      EXPECT_FALSE(new_keys.contains(blob.wrap))
          << "blob wrapped under a key the joiner now holds";
    }
  }
}

TEST_P(StrategyCosts, LeaveMatchesPaperFormulas) {
  const StrategyKind kind = std::get<1>(GetParam());
  // Bring the tree back to a perfect shape, then leave a user whose parent
  // keeps >= 2 children (degree >= 3 guarantees no splice).
  tree_->join(9999, Bytes(8, 0xEE));
  const std::vector<SymmetricKey> leaver_keys = tree_->keyset(9999);
  const LeaveRecord record = tree_->leave(9999);
  if (degree_ >= 3) {
    // Degree 2 splices the leaver's parent out, shortening the path.
    ASSERT_EQ(record.path.size(), static_cast<std::size_t>(levels_));
  }
  const auto messages = strategy_->plan_leave(record, *encryptor_);
  const std::size_t h = paper_h_;
  const std::size_t d = static_cast<std::size_t>(degree_);

  if (degree_ >= 3) {  // no splice: formulas exact
    switch (kind) {
      case StrategyKind::kUserOriented:
        EXPECT_EQ(messages.size(), (d - 1) * (h - 1));
        EXPECT_EQ(encryptor_->key_encryptions(), (d - 1) * h * (h - 1) / 2);
        break;
      case StrategyKind::kKeyOriented:
        EXPECT_EQ(messages.size(), (d - 1) * (h - 1));
        EXPECT_EQ(encryptor_->key_encryptions(), d * (h - 1) - 1);
        break;
      case StrategyKind::kGroupOriented:
        EXPECT_EQ(messages.size(), 1u);
        EXPECT_EQ(encryptor_->key_encryptions(), d * (h - 1) - 1);
        break;
      case StrategyKind::kHybrid:
        EXPECT_EQ(messages.size(), d);
        EXPECT_EQ(encryptor_->key_encryptions(), d * (h - 1) - 1);
        break;
    }
  }

  // Forward secrecy at plan level: no blob may be wrapped with any key the
  // leaver held (its individual key or any old path key).
  std::set<KeyRef> leaver_refs;
  for (const SymmetricKey& key : leaver_keys) leaver_refs.insert(key.ref());
  for (const OutboundRekey& outbound : messages) {
    EXPECT_EQ(outbound.message.kind, RekeyKind::kLeave);
    for (const KeyBlob& blob : outbound.message.blobs) {
      EXPECT_FALSE(leaver_refs.contains(blob.wrap))
          << "leave blob wrapped under a key the leaver held: "
          << to_string(blob.wrap);
    }
  }

  // No message is addressed to the leaver.
  for (const OutboundRekey& outbound : messages) {
    if (outbound.to.kind == Recipient::Kind::kUser) {
      EXPECT_NE(outbound.to.user, 9999u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndStrategies, StrategyCosts,
    ::testing::Combine(
        ::testing::Values(TreeShape{2, 3}, TreeShape{3, 2}, TreeShape{3, 3},
                          TreeShape{4, 2}, TreeShape{4, 3}, TreeShape{8, 2}),
        ::testing::Values(StrategyKind::kUserOriented,
                          StrategyKind::kKeyOriented,
                          StrategyKind::kGroupOriented,
                          StrategyKind::kHybrid)));

TEST(StrategyFactory, ProducesAllKinds) {
  for (StrategyKind kind :
       {StrategyKind::kUserOriented, StrategyKind::kKeyOriented,
        StrategyKind::kGroupOriented, StrategyKind::kHybrid}) {
    EXPECT_EQ(make_strategy(kind)->kind(), kind);
  }
}

TEST(Strategies, FirstJoinProducesOnlyWelcome) {
  crypto::SecureRandom rng(3);
  KeyTree tree(4, 8, rng);
  RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng);
  for (StrategyKind kind :
       {StrategyKind::kUserOriented, StrategyKind::kKeyOriented,
        StrategyKind::kGroupOriented, StrategyKind::kHybrid}) {
    crypto::SecureRandom fresh(4);
    KeyTree t(4, 8, fresh);
    const JoinRecord record = t.join(1, Bytes(8, 1));
    const auto messages = make_strategy(kind)->plan_join(record, encryptor);
    ASSERT_EQ(messages.size(), 1u) << strategy_name(kind);
    EXPECT_EQ(messages[0].to.kind, Recipient::Kind::kUser);
  }
}

TEST(Strategies, LastLeaveProducesNoMessages) {
  for (StrategyKind kind :
       {StrategyKind::kUserOriented, StrategyKind::kKeyOriented,
        StrategyKind::kGroupOriented, StrategyKind::kHybrid}) {
    crypto::SecureRandom rng(5);
    KeyTree tree(4, 8, rng);
    RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng);
    tree.join(1, Bytes(8, 1));
    const LeaveRecord record = tree.leave(1);
    EXPECT_TRUE(make_strategy(kind)->plan_leave(record, encryptor).empty())
        << strategy_name(kind);
  }
}

TEST(Strategies, KeyOrientedLeaveChainIsSharedNotReencrypted) {
  // Figure 8 stores {K'_{i-1}}_{K'_i} once: identical ciphertext bytes must
  // appear in the messages of different subtrees.
  crypto::SecureRandom rng(6);
  KeyTree tree(3, 8, rng);
  for (UserId user = 1; user <= 27; ++user) {
    tree.join(user, Bytes(8, static_cast<std::uint8_t>(user)));
  }
  RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng);
  const LeaveRecord record = tree.leave(27);
  const auto messages =
      make_strategy(StrategyKind::kKeyOriented)->plan_leave(record, encryptor);
  // Find the root-level chain blob {K'_0}_{K'_1} in two distinct messages.
  std::size_t matches = 0;
  Bytes reference;
  for (const auto& outbound : messages) {
    for (const KeyBlob& blob : outbound.message.blobs) {
      if (blob.wrap.id == record.path[1].node &&
          blob.targets[0].id == record.path[0].node) {
        if (reference.empty()) {
          reference = blob.ciphertext;
        } else {
          EXPECT_EQ(blob.ciphertext, reference);
        }
        ++matches;
      }
    }
  }
  EXPECT_GE(matches, 2u);
}

}  // namespace
}  // namespace keygraphs::rekey

// Randomized churn property test for the arena-backed KeyTree: ~10k seeded
// mixed join/leave/batch operations, asserting at checkpoints that (a) the
// structural and arena/free-list invariants hold, (b) serialize ->
// deserialize round-trips to identical bytes, and (c) membership matches a
// reference model. The mix is tuned so joins regularly split full leaves,
// leaves regularly splice out single-child parents, and batches both empty
// whole subtrees and regrow them.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "common/error.h"
#include "keygraph/key_tree.h"

namespace keygraphs {
namespace {

Bytes ik(UserId user) {
  Bytes key(8, 0);
  for (int i = 0; i < 8; ++i) key[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(user >> (8 * i));
  return key;
}

UserId pick_member(const std::set<UserId>& members, std::mt19937_64& gen) {
  std::uniform_int_distribution<std::size_t> dist(0, members.size() - 1);
  auto it = members.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(dist(gen)));
  return *it;
}

void checkpoint(const KeyTree& tree, const std::set<UserId>& model) {
  tree.check_invariants();  // structure + arena free-list accounting
  const std::vector<UserId> users = tree.users();
  ASSERT_EQ(users.size(), model.size());
  ASSERT_TRUE(std::equal(users.begin(), users.end(), model.begin()));
  const Bytes bytes = tree.serialize();
  crypto::SecureRandom restore_rng(99);
  const auto restored = KeyTree::deserialize(bytes, restore_rng);
  restored->check_invariants();
  ASSERT_EQ(restored->serialize(), bytes);
  ASSERT_EQ(restored->users(), users);
  if (!users.empty()) {
    const UserId probe = users[users.size() / 2];
    const std::vector<SymmetricKey> expect = tree.keyset(probe);
    const std::vector<SymmetricKey> got = restored->keyset(probe);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].id, expect[i].id);
      ASSERT_EQ(got[i].version, expect[i].version);
      ASSERT_EQ(got[i].secret, expect[i].secret);
    }
  }
}

TEST(TreeChurn, TenThousandMixedOpsHoldInvariants) {
  crypto::SecureRandom rng(271828);
  KeyTree tree(3, 8, rng);  // degree 3: leaf splits and splices are frequent
  std::mt19937_64 gen(31337);
  std::set<UserId> members;
  UserId next_user = 1;
  std::size_t ops = 0;

  const auto join_fresh = [&] {
    const UserId u = next_user++;
    tree.join(u, ik(u));
    members.insert(u);
  };

  while (ops < 10000) {
    const std::uint64_t pick = gen() % 100;
    // Bias toward joins when small, toward leaves when large, so the tree
    // repeatedly grows through leaf-split territory and shrinks back
    // through splice-outs without drifting unbounded.
    const bool prefer_leave = members.size() > 256;
    if (members.empty() || (!prefer_leave && pick < 50) ||
        (prefer_leave && pick < 20)) {
      join_fresh();
    } else if (pick < 85) {
      const UserId u = pick_member(members, gen);
      tree.leave(u);
      members.erase(u);
    } else {
      // Batch: up to 5 fresh joins plus up to 5 distinct leaves.
      std::vector<std::pair<UserId, Bytes>> joins;
      const std::uint64_t n_joins = gen() % 6;
      for (std::uint64_t i = 0; i < n_joins; ++i) {
        const UserId u = next_user++;
        joins.emplace_back(u, ik(u));
      }
      std::vector<UserId> leaves;
      const std::uint64_t n_leaves =
          std::min<std::uint64_t>(gen() % 6, members.size());
      std::set<UserId> chosen;
      while (chosen.size() < n_leaves) chosen.insert(pick_member(members, gen));
      leaves.assign(chosen.begin(), chosen.end());
      if (joins.empty() && leaves.empty()) continue;
      tree.batch_update(joins, leaves);
      for (const auto& [u, key] : joins) members.insert(u);
      for (UserId u : leaves) members.erase(u);
    }
    ++ops;
    if (ops % 500 == 0) {
      checkpoint(tree, members);
      if (HasFatalFailure()) return;
    }
  }
  checkpoint(tree, members);
}

TEST(TreeChurn, BatchEmptiesTheTreeAndRegrowsIt) {
  crypto::SecureRandom rng(161803);
  KeyTree tree(4, 8, rng);
  std::set<UserId> members;
  for (UserId u = 1; u <= 21; ++u) {
    tree.join(u, ik(u));
    members.insert(u);
  }
  checkpoint(tree, members);

  // One batch removes every member: the tree collapses to a bare root.
  tree.batch_update({}, std::vector<UserId>(members.begin(), members.end()));
  members.clear();
  EXPECT_EQ(tree.user_count(), 0u);
  EXPECT_EQ(tree.key_count(), 1u);
  EXPECT_EQ(tree.height(), 0u);
  checkpoint(tree, members);

  // Regrow from empty through batches; arena slots are recycled.
  for (UserId base : {100u, 200u, 300u}) {
    std::vector<std::pair<UserId, Bytes>> joins;
    for (UserId u = base; u < base + 9; ++u) joins.emplace_back(u, ik(u));
    tree.batch_update(joins, {});
    for (const auto& [u, key] : joins) members.insert(u);
    checkpoint(tree, members);
    if (HasFatalFailure()) return;
  }
  EXPECT_EQ(tree.user_count(), 27u);

  // And a mixed batch that swaps half the membership in one pass.
  std::vector<UserId> leaves;
  for (UserId u : members) {
    if (u % 2 == 0) leaves.push_back(u);
  }
  std::vector<std::pair<UserId, Bytes>> joins;
  for (UserId u = 400; u < 400 + 5; ++u) joins.emplace_back(u, ik(u));
  tree.batch_update(joins, leaves);
  for (UserId u : leaves) members.erase(u);
  for (const auto& [u, key] : joins) members.insert(u);
  checkpoint(tree, members);
}

TEST(TreeChurn, LeaveToEmptyAndSingleUserCycles) {
  crypto::SecureRandom rng(577215);
  KeyTree tree(3, 8, rng);
  std::set<UserId> members;
  // Repeatedly drain to empty one leave at a time (exercising the final
  // splice paths), then refill; ids keep growing, slots keep recycling.
  UserId next = 1;
  for (int cycle = 0; cycle < 8; ++cycle) {
    for (int i = 0; i < 7; ++i) {
      const UserId u = next++;
      tree.join(u, ik(u));
      members.insert(u);
    }
    checkpoint(tree, members);
    if (HasFatalFailure()) return;
    while (!members.empty()) {
      const UserId u = *members.begin();
      tree.leave(u);
      members.erase(u);
    }
    EXPECT_EQ(tree.user_count(), 0u);
    checkpoint(tree, members);
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace keygraphs

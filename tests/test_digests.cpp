// MD5 / SHA-1 / SHA-256 against the RFC 1321 and FIPS 180-4 test vectors,
// plus streaming-equivalence and reuse-after-finish properties that the
// server relies on (it reuses one digest object across thousands of rekey
// messages).
#include "crypto/digest.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace keygraphs::crypto {
namespace {

std::string hex_digest(DigestAlgorithm algorithm, const std::string& text) {
  return to_hex(digest_of(algorithm, bytes_of(text)));
}

// --- RFC 1321 Appendix A.5 test suite -------------------------------------

TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(hex_digest(DigestAlgorithm::kMd5, ""),
            "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(hex_digest(DigestAlgorithm::kMd5, "a"),
            "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(hex_digest(DigestAlgorithm::kMd5, "abc"),
            "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(hex_digest(DigestAlgorithm::kMd5, "message digest"),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(hex_digest(DigestAlgorithm::kMd5, "abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
}

// --- FIPS 180-4 vectors -----------------------------------------------------

TEST(Sha1, StandardVectors) {
  EXPECT_EQ(hex_digest(DigestAlgorithm::kSha1, ""),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(hex_digest(DigestAlgorithm::kSha1, "abc"),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(hex_digest(DigestAlgorithm::kSha1,
                       "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                       "nopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha256, StandardVectors) {
  EXPECT_EQ(hex_digest(DigestAlgorithm::kSha256, ""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(hex_digest(DigestAlgorithm::kSha256, "abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(hex_digest(DigestAlgorithm::kSha256,
                       "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                       "nopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Digests, MillionAs) {
  // The classic long-message vector, exercising multi-block streaming.
  const Bytes chunk(1000, 'a');
  auto md5 = make_digest(DigestAlgorithm::kMd5);
  auto sha1 = make_digest(DigestAlgorithm::kSha1);
  auto sha256 = make_digest(DigestAlgorithm::kSha256);
  for (int i = 0; i < 1000; ++i) {
    md5->update(chunk);
    sha1->update(chunk);
    sha256->update(chunk);
  }
  EXPECT_EQ(to_hex(md5->finish()), "7707d6ae4e027c70eea2a935c2296f21");
  EXPECT_EQ(to_hex(sha1->finish()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
  EXPECT_EQ(to_hex(sha256->finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

// --- Interface behaviour ----------------------------------------------------

TEST(Digests, SizesAndNames) {
  EXPECT_EQ(make_digest(DigestAlgorithm::kMd5)->digest_size(), 16u);
  EXPECT_EQ(make_digest(DigestAlgorithm::kSha1)->digest_size(), 20u);
  EXPECT_EQ(make_digest(DigestAlgorithm::kSha256)->digest_size(), 32u);
  EXPECT_EQ(make_digest(DigestAlgorithm::kMd5)->block_size(), 64u);
  EXPECT_EQ(digest_size(DigestAlgorithm::kNone), 0u);
  EXPECT_EQ(digest_name(DigestAlgorithm::kSha256), "SHA-256");
}

TEST(Digests, MakeDigestRejectsNone) {
  EXPECT_THROW(make_digest(DigestAlgorithm::kNone), CryptoError);
}

TEST(Digests, FinishResetsForReuse) {
  Md5 md5;
  md5.update(bytes_of("abc"));
  const Bytes first = md5.finish();
  md5.update(bytes_of("abc"));
  EXPECT_EQ(md5.finish(), first);
}

TEST(Digests, CloneStartsFresh) {
  Sha256 digest;
  digest.update(bytes_of("partial input"));
  auto fresh = digest.clone();
  fresh->update(bytes_of("abc"));
  EXPECT_EQ(to_hex(fresh->finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// Streaming equivalence: hashing in chunks of any size equals one-shot.
class ChunkedDigest
    : public ::testing::TestWithParam<std::tuple<DigestAlgorithm, int>> {};

TEST_P(ChunkedDigest, MatchesOneShot) {
  const auto [algorithm, chunk_size] = GetParam();
  Bytes message(997);  // prime length: exercises every buffer boundary
  for (std::size_t i = 0; i < message.size(); ++i) {
    message[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  const Bytes expected = digest_of(algorithm, message);

  auto digest = make_digest(algorithm);
  for (std::size_t offset = 0; offset < message.size();
       offset += static_cast<std::size_t>(chunk_size)) {
    const std::size_t len = std::min<std::size_t>(
        static_cast<std::size_t>(chunk_size), message.size() - offset);
    digest->update(BytesView(message.data() + offset, len));
  }
  EXPECT_EQ(digest->finish(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAndChunks, ChunkedDigest,
    ::testing::Combine(::testing::Values(DigestAlgorithm::kMd5,
                                         DigestAlgorithm::kSha1,
                                         DigestAlgorithm::kSha256),
                       ::testing::Values(1, 3, 63, 64, 65, 128, 997)));

// Exactly-one-block and padding-boundary lengths (55/56/57 trigger the
// length-field split across blocks).
class PaddingBoundary
    : public ::testing::TestWithParam<std::tuple<DigestAlgorithm, int>> {};

TEST_P(PaddingBoundary, ChunkedStillMatches) {
  const auto [algorithm, size] = GetParam();
  const Bytes message(static_cast<std::size_t>(size), 0x61);
  const Bytes expected = digest_of(algorithm, message);
  auto digest = make_digest(algorithm);
  for (const std::uint8_t byte : message) {
    digest->update(BytesView(&byte, 1));
  }
  EXPECT_EQ(digest->finish(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, PaddingBoundary,
    ::testing::Combine(::testing::Values(DigestAlgorithm::kMd5,
                                         DigestAlgorithm::kSha1,
                                         DigestAlgorithm::kSha256),
                       ::testing::Values(0, 1, 55, 56, 57, 63, 64, 65, 119,
                                         120, 128)));

}  // namespace
}  // namespace keygraphs::crypto

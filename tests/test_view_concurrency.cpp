// The RCU read path under real concurrency: readers acquire an immutable
// TreeView and must run to completion — resync, snapshot, subgroup
// resolution, membership reads — while a writer holds the group mutex, even
// one parked indefinitely in the middle of planning. Runs under the TSan CI
// job alongside the pipeline and locked-server suites.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "common/error.h"
#include "keygraph/key_tree.h"
#include "server/locked_server.h"
#include "transport/transport.h"

namespace keygraphs::server {
namespace {

Bytes ik(UserId user) {
  Bytes key(8, 0);
  for (int i = 0; i < 8; ++i) key[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(user >> (8 * i));
  return key;
}

// A writer thread parks inside plan_join — holding the group mutex — by
// blocking in the injected clock (finish_plan reads it exactly once per
// plan, under the lock). Every read below must complete regardless.
TEST(ViewConcurrency, ReaderCompletesWhileWriterParkedMidPlan) {
  transport::NullTransport transport;
  ServerConfig config;
  config.rng_seed = 11;

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool armed = false;           // start trapping clock reads
  bool trapped = false;         // one clock read has been consumed
  bool writer_parked = false;   // the writer is inside the trap
  bool release_writer = false;
  config.clock_us = [&]() -> std::uint64_t {
    std::unique_lock lock(gate_mutex);
    if (armed && !trapped) {
      trapped = true;
      writer_parked = true;
      gate_cv.notify_all();
      gate_cv.wait(lock, [&] { return release_writer; });
    }
    return 1234;  // fixed timestamp for every other plan
  };

  LockedGroupKeyServer server(config, transport);
  for (UserId u = 1; u <= 8; ++u) {
    ASSERT_EQ(server.join(u), JoinResult::kGranted);
  }
  const std::uint64_t epoch_before = server.epoch();
  {
    const std::lock_guard lock(gate_mutex);
    armed = true;
  }
  std::thread writer([&server] { server.join(100); });
  {
    std::unique_lock lock(gate_mutex);
    gate_cv.wait(lock, [&] { return writer_parked; });
  }

  // The writer holds mutex_ inside plan_join. Its mutation has already
  // published the next view (publication is the linearization point), so
  // readers see the post-join epoch — and must never block on the writer.
  const TreeViewPtr view = server.tree_view();
  EXPECT_EQ(view->epoch(), epoch_before + 1);
  EXPECT_EQ(server.member_count(), 9u);
  EXPECT_TRUE(server.has_member(100));
  EXPECT_TRUE(server.has_member(3));
  EXPECT_EQ(server.group_key().secret, view->group_key().secret);

  const std::vector<UserId> everyone =
      server.resolve_subgroup(view->root_id(), std::nullopt);
  EXPECT_EQ(everyone.size(), 9u);

  // snapshot() serializes one consistent epoch view, lock-free.
  const Bytes snap = server.snapshot();
  EXPECT_FALSE(snap.empty());

  // A full resync — plan, seal, dispatch — completes while the writer is
  // still parked: it plans on the acquired view and its ticket is next in
  // sequence (the parked writer has not taken one yet).
  server.resync(5);

  {
    const std::lock_guard lock(gate_mutex);
    release_writer = true;
  }
  gate_cv.notify_all();
  writer.join();

  EXPECT_EQ(server.epoch(), epoch_before + 1);
  EXPECT_EQ(server.member_count(), 9u);
  // The lock-free snapshot restores into an equivalent server.
  transport::NullTransport transport2;
  ServerConfig config2;
  config2.rng_seed = 12;
  LockedGroupKeyServer replica(config2, transport2);
  replica.restore(snap);
  EXPECT_EQ(replica.member_count(), 9u);
  EXPECT_EQ(replica.epoch(), epoch_before + 1);
  server.with_server([](const GroupKeyServer& inner) {
    inner.tree().check_invariants();
    return 0;
  });
}

// Sustained churn against concurrent lock-free readers: one writer thread
// joins/leaves through the locked facade while two readers hammer views,
// resyncs, snapshots and subgroup resolution. TSan polices the data races;
// the assertions police torn views.
TEST(ViewConcurrency, ChurnVersusReadersStress) {
  transport::NullTransport transport;
  ServerConfig config;
  config.rng_seed = 21;
  LockedGroupKeyServer server(config, transport);
  for (UserId u = 1; u <= 16; ++u) {
    ASSERT_EQ(server.join(u), JoinResult::kGranted);
  }
  const KeyId root = server.tree_view()->root_id();

  std::atomic<bool> stop{false};
  std::thread writer([&server, &stop] {
    for (int i = 0; i < 120; ++i) {
      const UserId u = 1000 + static_cast<UserId>(i);
      server.join(u);
      if (i % 3 == 0) server.leave(u);
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 2; ++t) {
    readers.emplace_back([&server, &stop, root, t] {
      std::size_t iterations = 0;
      while ((!stop.load(std::memory_order_acquire) || iterations < 40) &&
             iterations < 4000) {
        const TreeViewPtr view = server.tree_view();
        // Each view is internally consistent, whatever epoch it is.
        EXPECT_EQ(view->users().size(), view->user_count());
        EXPECT_EQ(view->users_under(root).size(), view->user_count());
        EXPECT_FALSE(view->serialize().empty());
        EXPECT_GE(view->resolve_subgroup(root, std::nullopt).size(), 16u);
        if (t == 0) {
          // Users 1..16 never leave, so resync always has a member.
          server.resync(1 + static_cast<UserId>(iterations % 16));
        } else {
          EXPECT_FALSE(server.snapshot().empty());
        }
        ++iterations;
      }
    });
  }
  writer.join();
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(server.member_count(), 16u + 120u - 40u);
  server.with_server([](const GroupKeyServer& inner) {
    inner.tree().check_invariants();
    return 0;
  });
}

// The core RCU claim on the raw tree, no server involved: a reader loops on
// acquired views while the single writer churns; every acquired view is a
// complete, frozen snapshot.
TEST(ViewConcurrency, RawTreeReaderDuringWriterChurn) {
  crypto::SecureRandom rng(33);
  keygraphs::KeyTree tree(4, 8, rng);
  for (UserId u = 1; u <= 8; ++u) tree.join(u, ik(u));

  std::atomic<bool> stop{false};
  std::thread reader([&tree, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      const TreeViewPtr view = tree.view();
      const std::vector<UserId> users = view->users();
      EXPECT_EQ(users.size(), view->user_count());
      EXPECT_GE(users.size(), 8u);  // users 1..8 never leave
      const Bytes first = view->serialize();
      EXPECT_EQ(view->serialize(), first);  // frozen
    }
  });
  for (int i = 0; i < 250; ++i) {
    const UserId u = 500 + static_cast<UserId>(i);
    tree.join(u, ik(u));
    if (i % 2 == 0) tree.leave(u);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  tree.check_invariants();
  EXPECT_EQ(tree.user_count(), 8u + 125u);
}

}  // namespace
}  // namespace keygraphs::server

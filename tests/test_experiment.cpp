// Experiment driver: the paper's methodology end to end at reduced scale,
// checking that measured quantities land on the analytic formulas.
#include "sim/experiment.h"

#include <gtest/gtest.h>

#include "analysis/cost_model.h"

namespace keygraphs::sim {
namespace {

ExperimentConfig small(rekey::StrategyKind strategy, bool with_clients) {
  ExperimentConfig config;
  config.initial_size = 64;
  config.requests = 120;
  config.degree = 4;
  config.strategy = strategy;
  config.with_clients = with_clients;
  config.seed = 5;
  return config;
}

TEST(Experiment, ServerOnlyRunProducesStats) {
  const ExperimentResult result =
      run_experiment(small(rekey::StrategyKind::kGroupOriented, false));
  EXPECT_EQ(result.join.operations + result.leave.operations, 120u);
  EXPECT_GT(result.join.avg_encryptions, 0.0);
  EXPECT_GT(result.leave.avg_message_bytes, 0.0);
  EXPECT_GT(result.final_size, 0u);
  EXPECT_EQ(result.client_avg_messages_per_request, 0.0);  // no clients
}

TEST(Experiment, EncryptionCostsTrackAnalyticModel) {
  // n=64, d=4: paper h = 4; key/group-oriented join cost 2(h-1) = 6,
  // leave cost ~ d(h-1) = 12. Churn keeps the tree near-balanced, so the
  // measured averages should be within ~25% of the formulas.
  for (auto strategy : {rekey::StrategyKind::kKeyOriented,
                        rekey::StrategyKind::kGroupOriented}) {
    const ExperimentResult result = run_experiment(small(strategy, false));
    const auto tree_costs = analysis::tree_server_cost(64, 4);
    EXPECT_NEAR(result.join.avg_encryptions, tree_costs.join,
                tree_costs.join * 0.25);
    EXPECT_NEAR(result.leave.avg_encryptions, tree_costs.leave,
                tree_costs.leave * 0.3);
  }
}

TEST(Experiment, UserOrientedCostsHigherOnServer) {
  const ExperimentResult user =
      run_experiment(small(rekey::StrategyKind::kUserOriented, false));
  const ExperimentResult key =
      run_experiment(small(rekey::StrategyKind::kKeyOriented, false));
  EXPECT_GT(user.all.avg_encryptions, key.all.avg_encryptions);
}

TEST(Experiment, GroupOrientedSendsOneLeaveMessage) {
  const ExperimentResult result =
      run_experiment(small(rekey::StrategyKind::kGroupOriented, false));
  EXPECT_DOUBLE_EQ(result.leave.avg_messages, 1.0);
  EXPECT_EQ(result.leave.min_messages, 1u);
  EXPECT_EQ(result.leave.max_messages, 1u);
}

TEST(Experiment, ClientsReceiveExactlyOneMessagePerRequest) {
  // Table 6's headline: every strategy delivers exactly one rekey message
  // per request to each member.
  for (auto strategy :
       {rekey::StrategyKind::kUserOriented, rekey::StrategyKind::kKeyOriented,
        rekey::StrategyKind::kGroupOriented, rekey::StrategyKind::kHybrid}) {
    const ExperimentResult result = run_experiment(small(strategy, true));
    EXPECT_NEAR(result.client_avg_messages_per_request, 1.0, 0.01)
        << rekey::strategy_name(strategy);
  }
}

TEST(Experiment, KeyChangesPerClientNearAnalytic) {
  // Figure 12: measured average ~ d/(d-1).
  const ExperimentResult result =
      run_experiment(small(rekey::StrategyKind::kGroupOriented, true));
  EXPECT_NEAR(result.client_avg_key_changes,
              analysis::tree_avg_user_cost(4), 0.15);
}

TEST(Experiment, GroupOrientedLeaveMessagesLargerThanJoin) {
  // Table 5/6: the single leave message is ~d times the join message.
  const ExperimentResult result =
      run_experiment(small(rekey::StrategyKind::kGroupOriented, true));
  EXPECT_GT(result.client_avg_leave_message_bytes,
            result.client_avg_join_message_bytes * 1.5);
}

TEST(Experiment, StarBaselineLeaveCostLinear) {
  ExperimentConfig config = small(rekey::StrategyKind::kKeyOriented, false);
  config.star = true;
  const ExperimentResult result = run_experiment(config);
  // Star leave ~ n - 1 = 63 encryptions at n=64 (group size drifts a bit
  // during churn).
  EXPECT_GT(result.leave.avg_encryptions, 40.0);
  EXPECT_LT(result.leave.avg_encryptions, 90.0);
  // Join stays constant at 2.
  EXPECT_NEAR(result.join.avg_encryptions, 2.0, 0.01);
}

TEST(Experiment, EncryptionCostGrowsLogarithmically) {
  // Figure 10's shape, in the deterministic cost unit: each 8x growth in
  // group size adds a roughly constant number of key encryptions per
  // operation (log-linear), rather than multiplying it (linear).
  auto encryptions_at = [](std::size_t n) {
    ExperimentConfig config = small(rekey::StrategyKind::kKeyOriented,
                                    false);
    config.initial_size = n;
    config.requests = 200;
    return run_experiment(config).all.avg_encryptions;
  };
  const double at64 = encryptions_at(64);
  const double at512 = encryptions_at(512);
  const double at4096 = encryptions_at(4096);
  const double first_step = at512 - at64;
  const double second_step = at4096 - at512;
  EXPECT_GT(first_step, 0.5);
  EXPECT_GT(second_step, 0.5);
  EXPECT_NEAR(first_step, second_step, 2.0);  // constant increment
  // Strongly sub-linear: 64x the users costs far less than 64x the work.
  EXPECT_LT(at4096, at64 * 4.0);
}

TEST(Experiment, ReproducibleAcrossRuns) {
  const ExperimentConfig config = small(rekey::StrategyKind::kKeyOriented,
                                        false);
  const ExperimentResult a = run_experiment(config);
  const ExperimentResult b = run_experiment(config);
  EXPECT_EQ(a.join.avg_encryptions, b.join.avg_encryptions);
  EXPECT_EQ(a.all.avg_total_bytes, b.all.avg_total_bytes);
  EXPECT_EQ(a.final_size, b.final_size);
}

TEST(Experiment, SignedRunsProduceSignatures) {
  ExperimentConfig config = small(rekey::StrategyKind::kKeyOriented, false);
  config.initial_size = 32;
  config.requests = 30;
  config.suite = crypto::CryptoSuite::paper_signed();
  config.signing = rekey::SigningMode::kBatch;
  const ExperimentResult result = run_experiment(config);
  EXPECT_DOUBLE_EQ(result.all.avg_signatures, 1.0);  // one per operation
  // Batch signing appends signature + auth path to every message.
  ExperimentConfig plain = config;
  plain.suite = crypto::CryptoSuite::paper_plain();
  plain.signing = rekey::SigningMode::kNone;
  const ExperimentResult unsigned_result = run_experiment(plain);
  EXPECT_GT(result.all.avg_message_bytes,
            unsigned_result.all.avg_message_bytes + 64);
}

}  // namespace
}  // namespace keygraphs::sim

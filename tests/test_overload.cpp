// Overload control: bounded admission, token-bucket shedding, the
// healthy/degraded/shedding monitor, degraded-mode batch coalescing, the
// kRetryLater wire reply, the client's retry-after handling, and the
// overload=off byte-identity guarantee.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "client/client.h"
#include "common/error.h"
#include "common/io.h"
#include "rekey/message.h"
#include "rekey/strategy.h"
#include "server/locked_server.h"
#include "server/overload.h"
#include "server/server.h"
#include "server/spec.h"
#include "telemetry/metrics.h"
#include "transport/inproc.h"

namespace keygraphs {
namespace {

using server::overload::Admission;
using server::overload::AdmissionController;
using server::overload::Decision;
using server::overload::HealthMonitor;
using server::overload::HealthState;
using server::overload::OverloadConfig;

Bytes retry_later_datagram(std::uint64_t retry_after_us) {
  ByteWriter writer;
  writer.u64(retry_after_us);
  return rekey::Datagram{rekey::MessageType::kRetryLater, writer.take()}
      .encode();
}

TEST(AdmissionControllerTest, TokenBucketShedsWithRefillHint) {
  OverloadConfig config;
  config.enabled = true;
  config.admission_rate = 1.0;  // one admission per second
  config.admission_burst = 2.0;
  AdmissionController gate(config, 1);

  EXPECT_EQ(gate.admit(0, 0, HealthState::kHealthy).action, Admission::kAdmit);
  EXPECT_EQ(gate.admit(0, 0, HealthState::kHealthy).action, Admission::kAdmit);
  const Decision shed = gate.admit(0, 0, HealthState::kHealthy);
  EXPECT_EQ(shed.action, Admission::kShed);
  // Bucket is empty: the hint is the refill time for one token (~1 s).
  EXPECT_GE(shed.retry_after_us, 900'000u);
  EXPECT_LE(shed.retry_after_us, 1'100'000u);
  EXPECT_EQ(gate.total_sheds(), 1u);

  // After the hint elapses the bucket has refilled exactly one token.
  EXPECT_EQ(gate.admit(0, 1'000'000, HealthState::kHealthy).action,
            Admission::kAdmit);
  EXPECT_EQ(gate.admit(0, 1'000'000, HealthState::kHealthy).action,
            Admission::kShed);
}

TEST(AdmissionControllerTest, DegradedCoalescesUpToQueueBound) {
  OverloadConfig config;
  config.enabled = true;
  config.admission_queue = 4;
  AdmissionController gate(config, 1);

  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(gate.admit(0, 0, HealthState::kDegraded).action,
              Admission::kCoalesce);
  }
  EXPECT_EQ(gate.depth(0), 4u);
  const Decision shed = gate.admit(0, 0, HealthState::kDegraded);
  EXPECT_EQ(shed.action, Admission::kShed);
  EXPECT_EQ(shed.retry_after_us, config.degraded_batch_period_us);
  EXPECT_EQ(gate.max_depth(), 4u);  // the bound held

  gate.release(0, 4);
  EXPECT_EQ(gate.depth(0), 0u);
  EXPECT_EQ(gate.admit(0, 0, HealthState::kDegraded).action,
            Admission::kCoalesce);
}

TEST(AdmissionControllerTest, ConsecutiveShedsTripThePerLaneBreaker) {
  OverloadConfig config;
  config.enabled = true;
  config.admission_queue = 1;
  config.breaker_threshold = 3;
  config.breaker_cooldown_us = 500'000;
  AdmissionController gate(config, 2);

  ASSERT_EQ(gate.admit(0, 0, HealthState::kDegraded).action,
            Admission::kCoalesce);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(gate.admit(0, 0, HealthState::kDegraded).action,
              Admission::kShed);
  }
  EXPECT_TRUE(gate.breaker_open(0, 0));
  // The sibling lane is untouched: one slow lane sheds alone.
  EXPECT_FALSE(gate.breaker_open(1, 0));
  EXPECT_EQ(gate.admit(1, 0, HealthState::kDegraded).action,
            Admission::kCoalesce);

  // While open, offers shed instantly with the remaining cooldown.
  const Decision shed = gate.admit(0, 100'000, HealthState::kDegraded);
  EXPECT_EQ(shed.action, Admission::kShed);
  EXPECT_EQ(shed.retry_after_us, 400'000u);

  // The first offer after the cooldown closes the breaker; with its queue
  // slot returned it coalesces again and the streak restarts at zero.
  gate.release(0, 1);
  EXPECT_EQ(gate.admit(0, 600'000, HealthState::kDegraded).action,
            Admission::kCoalesce);
  EXPECT_FALSE(gate.breaker_open(0, 600'000));
}

TEST(AdmissionControllerTest, SlowSealEwmaOpensTheBreaker) {
  OverloadConfig config;
  config.enabled = true;
  config.degrade_seal_us = 1'000;
  AdmissionController gate(config, 1);

  // The EWMA must cross 2 x degrade_seal_us; a steady stream of 10 ms
  // seals gets there within a few samples.
  for (int i = 0; i < 8; ++i) gate.note_seal(0, 10'000, /*now_us=*/0);
  EXPECT_GT(gate.seal_ewma_us(0), 2'000u);
  EXPECT_TRUE(gate.breaker_open(0, 0));
}

TEST(HealthMonitorTest, EscalatesImmediatelyRecoversOneLevelPerDwell) {
  OverloadConfig config;
  config.enabled = true;
  config.admission_queue = 100;
  config.degrade_queue_fraction = 0.5;
  config.shed_queue_fraction = 0.9;
  config.recover_dwell_us = 200'000;
  HealthMonitor monitor(config);
  EXPECT_EQ(monitor.state(), HealthState::kHealthy);

  monitor.note_queue_depth(95);
  EXPECT_EQ(monitor.evaluate(0), HealthState::kShedding);

  // The recovery dwell counts from the last pressure signal; stepping
  // down goes one level at a time — never straight back to healthy.
  EXPECT_EQ(monitor.evaluate(199'999), HealthState::kShedding);
  EXPECT_EQ(monitor.evaluate(200'000), HealthState::kDegraded);
  EXPECT_EQ(monitor.evaluate(399'999), HealthState::kDegraded);
  EXPECT_EQ(monitor.evaluate(400'000), HealthState::kHealthy);
}

TEST(HealthMonitorTest, ShedPressureBootstrapsDegraded) {
  OverloadConfig config;
  config.enabled = true;
  HealthMonitor monitor(config);
  // A token-bucket burst sheds before any queue builds: the sheds alone
  // must push the monitor off healthy, or coalescing would never start.
  monitor.note_sheds(3);
  EXPECT_EQ(monitor.evaluate(0), HealthState::kDegraded);
}

TEST(HealthMonitorTest, SloLagPressureEntersDegraded) {
  OverloadConfig config;
  config.enabled = true;
  config.slo_lag_epochs = 4;
  HealthMonitor monitor(config);
  monitor.note_slo_lag(3);
  EXPECT_EQ(monitor.evaluate(0), HealthState::kHealthy);
  monitor.note_slo_lag(4);
  EXPECT_EQ(monitor.evaluate(1), HealthState::kDegraded);
}

// A server pinned into degraded mode (degrade_queue_fraction = 0 makes
// every evaluate land at least at level 1) on a manual clock.
struct DegradedServer {
  std::uint64_t now_us = 1'000'000;
  server::ServerConfig config;
  transport::InProcNetwork network;
  std::unique_ptr<server::GroupKeyServer> server;

  explicit DegradedServer(UserId members) {
    config.rng_seed = 7;
    config.clock_us = [this] { return now_us; };
    config.overload.enabled = true;
    config.overload.admission_queue = 64;
    config.overload.degraded_batch_period_us = 100'000;
    config.overload.shed_deadline_us = 250'000;
    config.overload.degrade_queue_fraction = 0.0;  // pinned degraded
    server = std::make_unique<server::GroupKeyServer>(config, network);
    for (UserId user = 1; user <= members; ++user) server->join(user);
    server->evaluate_overload();
  }

  Bytes join_token(UserId user) { return server->auth().join_token(user); }
  Bytes leave_token(UserId user) { return server->auth().leave_token(user); }
};

TEST(ServerOverloadTest, DegradedJoinsCoalesceIntoOneBatchFlush) {
  DegradedServer fixture(8);
  server::GroupKeyServer& server = *fixture.server;
  ASSERT_EQ(server.health(), HealthState::kDegraded);
  const std::uint64_t epoch_before = server.epoch();

  for (UserId user = 100; user < 104; ++user) {
    const server::GateResult gate =
        server.offer_join(user, fixture.join_token(user));
    EXPECT_EQ(gate.action, Admission::kCoalesce);
    EXPECT_FALSE(gate.denied);
  }
  const server::GateResult leave =
      server.offer_leave(3, fixture.leave_token(3));
  EXPECT_EQ(leave.action, Admission::kCoalesce);

  // Nothing rekeys until the batch tick: five ops, zero epochs so far.
  EXPECT_EQ(server.epoch(), epoch_before);
  EXPECT_FALSE(server.tree_view()->has_user(100));

  fixture.now_us += fixture.config.overload.degraded_batch_period_us;
  const server::OverloadTick tick = server.poll_overload();
  EXPECT_TRUE(tick.flushed);
  EXPECT_TRUE(tick.shed.empty());
  EXPECT_EQ(tick.joined.size(), 4u);

  // One coalesced batch: all five ops cost a single epoch.
  EXPECT_EQ(server.epoch(), epoch_before + 1);
  for (UserId user = 100; user < 104; ++user) {
    EXPECT_TRUE(server.tree_view()->has_user(user));
  }
  EXPECT_FALSE(server.tree_view()->has_user(3));
}

TEST(ServerOverloadTest, DuplicateAndConflictingOffers) {
  DegradedServer fixture(8);
  server::GroupKeyServer& server = *fixture.server;

  ASSERT_EQ(server.offer_join(200, fixture.join_token(200)).action,
            Admission::kCoalesce);
  // Identical duplicate rides the buffered op without a second slot.
  EXPECT_EQ(server.offer_join(200, fixture.join_token(200)).action,
            Admission::kCoalesce);
  EXPECT_EQ(server.admission().depth(0), 1u);

  // A leave for a user whose join is still buffered is shed past the next
  // flush (after which the user is a member and the retried leave
  // succeeds).
  const server::GateResult conflict =
      server.offer_leave(200, fixture.leave_token(200));
  EXPECT_EQ(conflict.action, Admission::kShed);
  EXPECT_EQ(conflict.retry_after_us,
            fixture.config.overload.degraded_batch_period_us);

  // A join for an existing member is a cheap no-op: admitted, and the
  // immediate path answers kDuplicate without rekeying.
  EXPECT_EQ(server.offer_join(1, fixture.join_token(1)).action,
            Admission::kAdmit);

  // Validation failures are denied, never shed and never buffered.
  EXPECT_TRUE(server.offer_join(300, bytes_of("forged")).denied);
  EXPECT_TRUE(server.offer_leave(999, fixture.leave_token(999)).denied);
  EXPECT_EQ(server.admission().depth(0), 1u);
}

TEST(ServerOverloadTest, DeadlineExpiredOpsAreShedAtFlush) {
  DegradedServer fixture(8);
  server::GroupKeyServer& server = *fixture.server;

  ASSERT_EQ(server.offer_join(400, fixture.join_token(400)).action,
            Admission::kCoalesce);
  // The op waits past shed_deadline_us before the flush runs (e.g. the
  // daemon stalled): it is shed with a retry hint, not applied stale.
  fixture.now_us += fixture.config.overload.shed_deadline_us + 200'000;
  const server::OverloadTick tick = server.poll_overload();
  EXPECT_FALSE(tick.flushed);
  ASSERT_EQ(tick.shed.size(), 1u);
  EXPECT_EQ(tick.shed[0].user, 400u);
  EXPECT_TRUE(tick.shed[0].join);
  EXPECT_GT(tick.shed[0].retry_after_us, 0u);
  EXPECT_FALSE(server.tree_view()->has_user(400));
  // The queue slot was returned.
  EXPECT_EQ(server.admission().depth(0), 0u);
}

TEST(ServerOverloadTest, LockedFacadeFlushesThroughTicketPipeline) {
  std::uint64_t now_us = 1'000'000;
  server::ServerConfig config;
  config.rng_seed = 11;
  config.clock_us = [&now_us] { return now_us; };
  config.overload.enabled = true;
  config.overload.degrade_queue_fraction = 0.0;
  config.overload.degraded_batch_period_us = 50'000;
  transport::InProcNetwork network;
  server::LockedGroupKeyServer locked(config, network);
  for (UserId user = 1; user <= 4; ++user) locked.join(user);

  locked.poll_overload();  // evaluates into degraded
  ASSERT_EQ(locked.health(), HealthState::kDegraded);
  const Bytes token = locked.auth().join_token(77);
  EXPECT_EQ(locked.offer_join(77, token).action, Admission::kCoalesce);
  now_us += 50'000;
  const server::OverloadTick tick = locked.poll_overload();
  EXPECT_TRUE(tick.flushed);
  ASSERT_EQ(tick.joined.size(), 1u);
  EXPECT_EQ(tick.joined[0], 77u);
  EXPECT_TRUE(locked.has_member(77));
}

TEST(ServerOverloadTest, OverloadOffProducesIdenticalWireBytes) {
  // Same seed, same pinned clock, same operations: the gated server in
  // its healthy state must emit byte-identical datagrams to the ungated
  // one, so overload=off (and healthy overload=on) leaves goldens intact.
  const auto run = [](bool overload_on) {
    server::ServerConfig config;
    config.rng_seed = 42;
    config.clock_us = [] { return std::uint64_t{5'000'000}; };
    config.overload.enabled = overload_on;
    transport::InProcNetwork network;
    server::GroupKeyServer server(config, network);
    std::vector<Bytes> captured;
    for (UserId user = 1; user <= 6; ++user) {
      network.attach_client(user, [&captured](BytesView datagram) {
        captured.emplace_back(datagram.begin(), datagram.end());
      });
    }
    for (UserId user = 1; user <= 5; ++user) {
      const Bytes token = server.auth().join_token(user);
      if (overload_on) {
        const server::GateResult gate = server.offer_join(user, token);
        EXPECT_EQ(gate.action, Admission::kAdmit);
      }
      EXPECT_EQ(server.join_with_token(user, token),
                server::JoinResult::kGranted);
    }
    server.leave(3);
    return captured;
  };

  const std::vector<Bytes> gated = run(true);
  const std::vector<Bytes> ungated = run(false);
  ASSERT_EQ(gated.size(), ungated.size());
  ASSERT_FALSE(gated.empty());
  for (std::size_t i = 0; i < gated.size(); ++i) {
    EXPECT_EQ(gated[i], ungated[i]) << "datagram " << i << " diverged";
  }
}

TEST(RetryLaterWireTest, RoundTripsThroughDatagramCodec) {
  const Bytes wire = retry_later_datagram(123'456);
  const rekey::Datagram decoded = rekey::Datagram::decode(wire);
  EXPECT_EQ(decoded.type, rekey::MessageType::kRetryLater);
  ByteReader reader(decoded.payload);
  EXPECT_EQ(reader.u64(), 123'456u);
  reader.expect_done();
}

// --- Client side: a recovery-enabled client on a manual clock, driven
// into gap recovery with crafted plain-sealed rekeys (the test_recovery
// rig, trimmed to what the retry-later path needs).

crypto::SecureRandom& rng() {
  static crypto::SecureRandom instance(4242);
  return instance;
}

SymmetricKey make_key(KeyId id, KeyVersion version) {
  return SymmetricKey{id, version, rng().bytes(8)};
}

struct ClientRig {
  ClientRig() {
    client::ClientConfig config;
    config.user = 1;
    config.suite = crypto::CryptoSuite::paper_plain();
    config.group = 0;
    config.root = 100;
    config.verify = false;
    config.rng_seed = 1;
    config.recovery.clock_us = [this] { return now; };
    config.recovery.token = bytes_of("resync-token");
    client = std::make_unique<client::GroupClient>(config, nullptr);
    individual = make_key(individual_key_id(1), 1);
    path = make_key(50, 1);
    client->install_individual_key(individual);
    client->admit_snapshot({path}, 0);
  }

  /// Regular rekey at `epoch`: a new group key wrapped under the path key.
  Bytes group_rekey(std::uint64_t epoch) {
    rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
    rekey::RekeyMessage message;
    message.epoch = epoch;
    const SymmetricKey group = make_key(100, static_cast<KeyVersion>(epoch));
    message.blobs.push_back(encryptor.wrap(path, std::span(&group, 1)));
    const rekey::RekeySealer sealer(rekey::SigningMode::kNone,
                                    crypto::DigestAlgorithm::kNone, nullptr);
    return sealer.seal(std::span(&message, 1))[0];
  }

  std::uint64_t now = 1'000'000;
  std::unique_ptr<client::GroupClient> client;
  SymmetricKey individual;
  SymmetricKey path;
};

TEST(ClientRetryLaterTest, DefersRecoveryWithoutConsumingTheNackBudget) {
  ClientRig rig;
  // Epoch 2 with epoch 1 never seen: gap -> recovery.
  const client::RekeyOutcome gap = rig.client->handle_rekey(rig.group_rekey(2));
  ASSERT_TRUE(gap.needs_resync);
  ASSERT_EQ(rig.client->recovery_state(),
            client::RecoveryState::kAwaitingRetransmit);

  // First poll emits a NACK and charges the budget.
  const std::optional<Bytes> nack = rig.client->poll_recovery();
  ASSERT_TRUE(nack.has_value());
  EXPECT_EQ(rekey::Datagram::decode(*nack).type,
            rekey::MessageType::kNackRequest);
  const std::size_t nacks_before = rig.client->recovery_stats().nacks_sent;

  // The server sheds it: retry in 2 s, budget refunded.
  const client::RekeyOutcome outcome =
      rig.client->handle_datagram(retry_later_datagram(2'000'000));
  EXPECT_TRUE(outcome.retry_later);
  EXPECT_EQ(rig.client->recovery_stats().retry_later, 1u);

  rig.now += 1'900'000;
  EXPECT_FALSE(rig.client->poll_recovery().has_value());  // honoring the hint
  rig.now += 200'000;
  const std::optional<Bytes> retried = rig.client->poll_recovery();
  ASSERT_TRUE(retried.has_value());
  // The refunded attempt re-sends a NACK (no escalation to resync).
  EXPECT_EQ(rekey::Datagram::decode(*retried).type,
            rekey::MessageType::kNackRequest);
  EXPECT_EQ(rig.client->recovery_stats().nacks_sent, nacks_before + 1);
}

TEST(ClientRetryLaterTest, HintExtendsButNeverShortensTheBackoff) {
  ClientRig rig;
  ASSERT_TRUE(rig.client->handle_rekey(rig.group_rekey(2)).needs_resync);
  ASSERT_TRUE(rig.client->poll_recovery().has_value());

  // A tiny hint must not pull the next attempt earlier than the client's
  // own backoff already scheduled.
  ASSERT_TRUE(rig.client->handle_datagram(retry_later_datagram(1)).retry_later);
  EXPECT_FALSE(rig.client->poll_recovery().has_value());
}

TEST(ClientRetryLaterTest, MangledShedNoticeIsRejectedNotApplied) {
  ClientRig rig;
  const Bytes truncated =
      rekey::Datagram{rekey::MessageType::kRetryLater, {0x01, 0x02}}.encode();
  const client::RekeyOutcome outcome = rig.client->handle_datagram(truncated);
  EXPECT_FALSE(outcome.retry_later);
  EXPECT_EQ(rig.client->totals().rejected, 1u);
  EXPECT_EQ(rig.client->recovery_stats().retry_later, 0u);
}

TEST(OverloadSpecTest, ParsesOverloadKeys) {
  const server::ServerSpec spec = server::parse_server_spec(
      "overload = on\n"
      "admission_queue = 512\n"
      "shed_deadline_us = 300000\n"
      "degraded_batch_period_us = 75000\n"
      "admission_rate = 2000\n"
      "admission_burst = 128\n");
  EXPECT_TRUE(spec.config.overload.enabled);
  EXPECT_EQ(spec.config.overload.admission_queue, 512u);
  EXPECT_EQ(spec.config.overload.shed_deadline_us, 300'000u);
  EXPECT_EQ(spec.config.overload.degraded_batch_period_us, 75'000u);
  EXPECT_DOUBLE_EQ(spec.config.overload.admission_rate, 2000.0);
  EXPECT_DOUBLE_EQ(spec.config.overload.admission_burst, 128.0);
}

TEST(OverloadSpecTest, DefaultsToOffAndRejectsBadValues) {
  EXPECT_FALSE(server::parse_server_spec("").config.overload.enabled);
  EXPECT_THROW(server::parse_server_spec("overload = maybe\n"),
               ProtocolError);
  EXPECT_THROW(server::parse_server_spec("admission_queue = 0\n"),
               ProtocolError);
  EXPECT_THROW(server::parse_server_spec("degraded_batch_period_us = 0\n"),
               ProtocolError);
}

}  // namespace
}  // namespace keygraphs

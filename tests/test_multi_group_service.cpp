// MultiGroupService (Section 7 / Keystone): many groups, one individual
// key per user, per-group multicast domains, and the client-side group-id
// filter that keeps concurrent memberships independent.
#include "server/multi_group_service.h"

#include <gtest/gtest.h>

#include "client/client.h"
#include "common/error.h"
#include "sim/simulator.h"

namespace keygraphs::server {
namespace {

ServerConfig base_config() {
  ServerConfig config;
  config.tree_degree = 3;
  config.rng_seed = 44;
  return config;
}

TEST(MultiGroupService, GroupsAreIndependentServers) {
  MultiGroupService service(base_config());
  const GroupId a = service.create_group();
  const GroupId b = service.create_group();
  EXPECT_EQ(service.group_count(), 2u);
  EXPECT_THROW(service.server(99), ProtocolError);

  service.server(a).join(1);
  service.server(a).join(2);
  service.server(b).join(2);
  EXPECT_EQ(service.groups_of(1), (std::vector<GroupId>{a}));
  EXPECT_EQ(service.groups_of(2), (std::vector<GroupId>{a, b}));

  const SymmetricKey key_b = service.server(b).tree().group_key();
  service.server(a).leave(1);
  EXPECT_EQ(service.server(b).tree().group_key(), key_b);  // untouched
}

TEST(MultiGroupService, SharedIndividualKeyAcrossGroups) {
  MultiGroupService service(base_config());
  const GroupId a = service.create_group();
  const GroupId b = service.create_group();
  service.server(a).join(7);
  service.server(b).join(7);
  // Both trees hold the same individual key bytes: the key-graph merge.
  EXPECT_EQ(service.server(a).tree().keyset(7).front().secret,
            service.server(b).tree().keyset(7).front().secret);
  EXPECT_EQ(service.individual_key(7),
            service.server(a).tree().keyset(7).front().secret);
}

TEST(MultiGroupService, OneClientPerMembershipConverges) {
  MultiGroupService service(base_config());
  const GroupId a = service.create_group();
  const GroupId b = service.create_group();

  // User 5 participates in both groups with one GroupClient per group,
  // driven end to end through each group's own simulator.
  sim::ClientSimulator sim_a(service.server(a), service.network(a));
  sim::ClientSimulator sim_b(service.server(b), service.network(b));
  for (UserId user : {1u, 2u, 5u}) {
    sim_a.apply(sim::Request{sim::RequestKind::kJoin, user});
  }
  for (UserId user : {5u, 8u, 9u}) {
    sim_b.apply(sim::Request{sim::RequestKind::kJoin, user});
  }

  EXPECT_EQ(sim_a.client(5).group_key()->secret,
            service.server(a).tree().group_key().secret);
  EXPECT_EQ(sim_b.client(5).group_key()->secret,
            service.server(b).tree().group_key().secret);
  EXPECT_NE(sim_a.client(5).group_key()->secret,
            sim_b.client(5).group_key()->secret);

  // Churn in one group leaves the other membership's key untouched.
  const Bytes before_b = sim_b.client(5).group_key()->secret;
  sim_a.apply(sim::Request{sim::RequestKind::kLeave, 2});
  sim_a.apply(sim::Request{sim::RequestKind::kJoin, 3});
  EXPECT_EQ(sim_b.client(5).group_key()->secret, before_b);
  EXPECT_EQ(sim_a.client(5).group_key()->secret,
            service.server(a).tree().group_key().secret);
}

TEST(MultiGroupService, ClientIgnoresOtherGroupsMessages) {
  // Even if a rekey message from another group reaches a client (mixed
  // multicast domains), the group-id filter must drop it before any state
  // change — including epoch bookkeeping.
  MultiGroupService service(base_config());
  const GroupId a = service.create_group();
  const GroupId b = service.create_group();

  // A client of group b, manually wired.
  client::ClientConfig config;
  config.user = 1;
  config.suite = base_config().suite;
  config.group = b;
  config.root = service.server(b).root_id();
  config.verify = false;
  client::GroupClient client(config, nullptr);
  client.install_individual_key(SymmetricKey{
      individual_key_id(1), 1, service.individual_key(1)});

  // Capture a group-a rekey message addressed at user 1 and feed it in.
  Bytes cross_traffic;
  service.network(a).attach_client(1, [&cross_traffic](BytesView data) {
    cross_traffic.assign(data.begin(), data.end());
  });
  service.server(a).join(1);  // emits the group-a welcome for user 1
  ASSERT_FALSE(cross_traffic.empty());

  const client::RekeyOutcome outcome = client.handle_datagram(cross_traffic);
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(outcome.keys_changed, 0u);
  EXPECT_EQ(client.last_epoch(), 0u);  // epoch horizon untouched
  EXPECT_EQ(client.key_count(), 1u);

  // The genuine group-b admission still works afterwards.
  Bytes own_traffic;
  service.network(b).attach_client(1, [&own_traffic](BytesView data) {
    own_traffic.assign(data.begin(), data.end());
  });
  service.server(b).join(1);
  ASSERT_FALSE(own_traffic.empty());
  EXPECT_TRUE(client.handle_datagram(own_traffic).accepted);
  EXPECT_TRUE(client.group_key().has_value());
}

}  // namespace
}  // namespace keygraphs::server

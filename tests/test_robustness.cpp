// Adversarial-input robustness: every network-facing parser must reject
// malformed input with ParseError — never crash, hang, or over-read — and
// a verifying client must never change state on corrupted messages.
#include <gtest/gtest.h>

#include "client/client.h"
#include "common/error.h"
#include "common/io.h"
#include "merkle/digest_tree.h"
#include "rekey/codec.h"

namespace keygraphs {
namespace {

crypto::SecureRandom& rng() {
  static crypto::SecureRandom instance(31337);
  return instance;
}

Bytes sealed_sample(rekey::SigningMode mode,
                    const crypto::RsaPrivateKey* signer) {
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  rekey::RekeyMessage message;
  message.epoch = 3;
  message.kind = rekey::RekeyKind::kLeave;
  message.obsolete = {42};
  const SymmetricKey wrap{7, 1, rng().bytes(8)};
  const SymmetricKey target{1, 2, rng().bytes(8)};
  message.blobs.push_back(encryptor.wrap(wrap, std::span(&target, 1)));
  const rekey::RekeySealer sealer(
      mode,
      mode == rekey::SigningMode::kNone ? crypto::DigestAlgorithm::kNone
                                        : crypto::DigestAlgorithm::kMd5,
      signer);
  return sealer.seal(std::span(&message, 1))[0];
}

TEST(Robustness, RandomBytesNeverCrashParsers) {
  const rekey::RekeyOpener opener(nullptr);
  for (int trial = 0; trial < 500; ++trial) {
    const Bytes junk = rng().bytes(rng().uniform(200));
    EXPECT_THROW(
        {
          try {
            (void)opener.open(junk, true);
          } catch (const ParseError&) {
            throw;
          } catch (const Error&) {
            throw ParseError("other library error is acceptable too");
          }
        },
        ParseError)
        << "trial " << trial;
    try {
      (void)rekey::Datagram::decode(junk);
    } catch (const ParseError&) {
    }
    try {
      (void)rekey::RekeyMessage::parse_body(junk);
    } catch (const ParseError&) {
    }
    try {
      (void)merkle::AuthPath::deserialize(junk);
    } catch (const ParseError&) {
    }
  }
}

TEST(Robustness, TruncationsOfValidMessagesAreRejectedCleanly) {
  const Bytes wire = sealed_sample(rekey::SigningMode::kNone, nullptr);
  const rekey::RekeyOpener opener(nullptr);
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_THROW((void)opener.open(BytesView(wire.data(), len), true),
                 ParseError)
        << "prefix " << len;
  }
}

TEST(Robustness, RandomBitflipsNeverCrashOpener) {
  crypto::SecureRandom key_rng(5);
  const auto signer = crypto::RsaPrivateKey::generate(key_rng, 512);
  for (rekey::SigningMode mode :
       {rekey::SigningMode::kNone, rekey::SigningMode::kDigestOnly,
        rekey::SigningMode::kPerMessage, rekey::SigningMode::kBatch}) {
    const Bytes wire = sealed_sample(mode, &signer);
    const rekey::RekeyOpener opener(&signer.public_key());
    for (int trial = 0; trial < 200; ++trial) {
      Bytes mutated = wire;
      const std::size_t flips = 1 + rng().uniform(4);
      for (std::size_t f = 0; f < flips; ++f) {
        mutated[rng().uniform(mutated.size())] ^=
            static_cast<std::uint8_t>(1 << rng().uniform(8));
      }
      try {
        const rekey::OpenedRekey opened = opener.open(mutated, true);
        // If it parsed, any body mutation must have been caught by the
        // authentication check (or the flip only touched the auth section,
        // in which case verification also fails, or nothing material).
        (void)opened;
      } catch (const Error&) {
        // Clean rejection is fine.
      }
    }
  }
}

TEST(Robustness, VerifyingClientStateUnchangedByCorruptedMessages) {
  crypto::SecureRandom key_rng(6);
  const auto signer = crypto::RsaPrivateKey::generate(key_rng, 512);

  client::ClientConfig config;
  config.user = 1;
  config.suite = crypto::CryptoSuite::paper_signed();
  config.group = 0;  // raw test messages carry the default group id 0
  config.root = 1;
  config.verify = true;
  client::GroupClient client(config, &signer.public_key());
  const SymmetricKey individual{individual_key_id(1), 1, rng().bytes(8)};
  client.install_individual_key(individual);

  // A genuine signed message the client would accept...
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  rekey::RekeyMessage message;
  message.epoch = 1;
  const SymmetricKey group{1, 5, rng().bytes(8)};
  message.blobs.push_back(encryptor.wrap(individual, std::span(&group, 1)));
  const rekey::RekeySealer sealer(rekey::SigningMode::kBatch,
                                  crypto::DigestAlgorithm::kMd5, &signer);
  const Bytes wire = sealer.seal(std::span(&message, 1))[0];

  // ...but a corrupted variant must either be rejected outright or — when
  // the flip only touches bytes outside the signed body (auth-path
  // metadata) — decode to exactly the genuine update. No mutation may ever
  // install a key that differs from what the server sent.
  for (int trial = 0; trial < 300; ++trial) {
    Bytes mutated = wire;
    mutated[rng().uniform(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng().uniform(255));
    try {
      (void)client.handle_rekey(mutated);
    } catch (const Error&) {
    }
    if (client.group_key().has_value()) {
      EXPECT_EQ(client.group_key()->secret, group.secret)
          << "corrupted message installed a different key";
      EXPECT_EQ(client.key_count(), 2u);
    } else {
      EXPECT_EQ(client.key_count(), 1u)
          << "corrupted message changed state without installing";
    }
  }

  // The pristine message is (still) applied correctly.
  (void)client.handle_rekey(wire);
  ASSERT_TRUE(client.group_key().has_value());
  EXPECT_EQ(client.group_key()->secret, group.secret);
}

TEST(Robustness, OversizedCountsRejectedNotAllocated) {
  // A body claiming 65535 blobs but carrying none must fail on truncation,
  // not attempt a giant allocation or loop.
  ByteWriter writer;
  writer.u8(0x52);
  writer.u8(1);
  writer.u8(1);   // kind join
  writer.u8(3);   // strategy group
  writer.u32(0);  // group
  writer.u64(1);  // epoch
  writer.u64(0);  // timestamp
  writer.u16(0);  // no obsolete
  writer.u16(0xffff);  // blob count lie
  EXPECT_THROW(rekey::RekeyMessage::parse_body(writer.data()), ParseError);
}

}  // namespace
}  // namespace keygraphs

// FaultyStorageBackend: seeded fault injection for the durable layer.
// The decorator turns a healthy backend into one that fails with typed
// StorageErrors — whole-append EIO, short writes that leave a torn
// journal tail, fsync failures, and a hard "device full" wall — and the
// tests prove DurableStore surfaces every one of them as StorageError
// instead of wedging, crashing, or silently dropping the record.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>

#include "storage/durable.h"
#include "storage/errors.h"
#include "storage/faulty_backend.h"
#include "storage/record.h"

namespace keygraphs {
namespace {

using storage::DurableStore;
using storage::FaultCounts;
using storage::FaultPlan;
using storage::FaultyStorageBackend;
using storage::JournalRecord;
using storage::OpKind;
using storage::StorageError;

JournalRecord sample_record(std::uint64_t epoch) {
  JournalRecord record;
  record.epoch = epoch;
  record.kind = OpKind::kJoin;
  record.shard = 0;
  record.timestamp_us = 1'000'000 + epoch;
  record.joins = {epoch};
  record.rng_tape = Bytes{1, 2, 3, static_cast<std::uint8_t>(epoch)};
  record.sealed_digest = Bytes(32, static_cast<std::uint8_t>(epoch));
  return record;
}

// --- decorator unit tests ----------------------------------------------

TEST(FaultyBackendTest, RefusesToWrapNothing) {
  EXPECT_THROW(storage::make_faulty_backend(nullptr, FaultPlan{}),
               StorageError);
}

TEST(FaultyBackendTest, CleanPlanIsTransparent) {
  auto faulty =
      storage::make_faulty_backend(storage::make_memory_backend(2), {});
  const Bytes frame = bytes_of("clean passthrough");
  faulty->append(1, frame);
  faulty->sync(1);
  EXPECT_EQ(faulty->journal_size(1), frame.size());
  EXPECT_EQ(faulty->read_journal(1, 0), frame);
  EXPECT_EQ(faulty->journal_size(0), 0u);
  EXPECT_EQ(faulty->injected().append_errors, 0u);
  EXPECT_EQ(faulty->injected().short_writes, 0u);
  EXPECT_EQ(faulty->injected().sync_errors, 0u);
}

TEST(FaultyBackendTest, AppendErrorLeavesTheInnerJournalUntouched) {
  FaultPlan plan;
  plan.append_error_rate = 1.0;
  auto faulty =
      storage::make_faulty_backend(storage::make_memory_backend(1), plan);
  EXPECT_THROW(faulty->append(0, bytes_of("doomed")), StorageError);
  EXPECT_EQ(faulty->injected().append_errors, 1u);
  // A whole-append EIO writes nothing: the journal stays consistent.
  EXPECT_EQ(faulty->journal_size(0), 0u);
}

TEST(FaultyBackendTest, ShortWriteLeavesATornTail) {
  FaultPlan plan;
  plan.short_write_rate = 1.0;
  auto faulty =
      storage::make_faulty_backend(storage::make_memory_backend(1), plan);
  const Bytes frame = bytes_of("this frame tears in the middle");
  EXPECT_THROW(faulty->append(0, frame), StorageError);
  EXPECT_EQ(faulty->injected().short_writes, 1u);
  // Exactly the first half landed — a crash mid-write, byte for byte.
  EXPECT_EQ(faulty->journal_size(0), frame.size() / 2);
  EXPECT_EQ(faulty->read_journal(0, 0),
            Bytes(frame.begin(), frame.begin() + frame.size() / 2));
}

TEST(FaultyBackendTest, DeviceFullWallTripsAfterExactlyNAppends) {
  FaultPlan plan;
  plan.fail_after_appends = 3;
  auto faulty =
      storage::make_faulty_backend(storage::make_memory_backend(1), plan);
  for (int i = 0; i < 3; ++i) faulty->append(0, bytes_of("ok"));
  EXPECT_THROW(faulty->append(0, bytes_of("over the wall")), StorageError);
  EXPECT_THROW(faulty->append(0, bytes_of("still full")), StorageError);
  EXPECT_EQ(faulty->injected().append_errors, 2u);
  EXPECT_EQ(faulty->journal_size(0), 6u);  // three "ok" frames
}

TEST(FaultyBackendTest, SyncFailureIsTypedAndCounted) {
  FaultPlan plan;
  plan.sync_error_rate = 1.0;
  auto faulty =
      storage::make_faulty_backend(storage::make_memory_backend(1), plan);
  faulty->append(0, bytes_of("durable?"));
  EXPECT_THROW(faulty->sync(0), StorageError);
  EXPECT_EQ(faulty->injected().sync_errors, 1u);
}

TEST(FaultyBackendTest, SameSeedSameFaultSequence) {
  FaultPlan plan;
  plan.seed = 42;
  plan.append_error_rate = 0.5;
  auto run = [&plan]() {
    auto faulty =
        storage::make_faulty_backend(storage::make_memory_backend(1), plan);
    Bytes pattern;
    for (int i = 0; i < 64; ++i) {
      try {
        faulty->append(0, bytes_of("x"));
        pattern.push_back(1);
      } catch (const StorageError&) {
        pattern.push_back(0);
      }
    }
    return pattern;
  };
  const Bytes first = run();
  EXPECT_EQ(first, run());
  // A half-rate plan must actually produce both outcomes.
  EXPECT_NE(first, Bytes(64, 0));
  EXPECT_NE(first, Bytes(64, 1));
}

// --- DurableStore integration ------------------------------------------

TEST(DurableStoreFaultsTest, AppendSurfacesInjectedIoError) {
  FaultPlan plan;
  plan.append_error_rate = 1.0;
  auto faulty =
      storage::make_faulty_backend(storage::make_memory_backend(1), plan);
  DurableStore store(faulty, 0);
  JournalRecord record = sample_record(1);
  EXPECT_THROW(store.append(record), StorageError);
  EXPECT_EQ(faulty->injected().append_errors, 1u);
}

TEST(DurableStoreFaultsTest, SyncFailureSurfacesBeforeTheRecordIsDurable) {
  FaultPlan plan;
  plan.sync_error_rate = 1.0;
  auto faulty =
      storage::make_faulty_backend(storage::make_memory_backend(1), plan);
  DurableStore store(faulty, 0);
  JournalRecord record = sample_record(1);
  // The bytes may land but the fsync fails — the caller must hear about
  // it, because "appended but not synced" is not durable.
  EXPECT_THROW(store.append(record), StorageError);
  EXPECT_EQ(faulty->injected().sync_errors, 1u);
}

TEST(DurableStoreFaultsTest, DeviceFullMidStreamStopsTheSequence) {
  FaultPlan plan;
  plan.fail_after_appends = 2;
  auto inner = storage::make_memory_backend(1);
  auto faulty = storage::make_faulty_backend(inner, plan);
  DurableStore store(faulty, 0);
  for (std::uint64_t epoch = 1; epoch <= 2; ++epoch) {
    JournalRecord record = sample_record(epoch);
    store.append(record);
  }
  JournalRecord doomed = sample_record(3);
  EXPECT_THROW(store.append(doomed), StorageError);
  // What made it down before the wall replays cleanly.
  DurableStore reader(inner, 0);
  const storage::RecoveredLog log = reader.load({});
  ASSERT_EQ(log.records.size(), 2u);
  EXPECT_EQ(log.records[0].epoch, 1u);
  EXPECT_EQ(log.records[1].epoch, 2u);
}

TEST(DurableStoreFaultsTest, TornTailIsDetectedThenRecoverable) {
  auto inner = storage::make_memory_backend(1);
  {
    DurableStore store(inner, 0);
    JournalRecord record = sample_record(1);
    store.append(record);
  }
  // Now a short write tears the second record's frame in half.
  FaultPlan plan;
  plan.short_write_rate = 1.0;
  auto faulty = storage::make_faulty_backend(inner, plan);
  {
    DurableStore store(faulty, 0);
    JournalRecord record = sample_record(2);
    EXPECT_THROW(store.append(record), StorageError);
  }
  EXPECT_EQ(faulty->injected().short_writes, 1u);
  // Strict recovery names the damage...
  {
    DurableStore store(inner, 0);
    EXPECT_THROW((void)store.load({}), storage::JournalTruncatedError);
  }
  // ...and tolerant recovery truncates the torn tail and keeps epoch 1.
  {
    DurableStore store(inner, 0);
    storage::RecoveryOptions options;
    options.tolerate_torn_tail = true;
    const storage::RecoveredLog log = store.load(options);
    ASSERT_EQ(log.records.size(), 1u);
    EXPECT_EQ(log.records[0].epoch, 1u);
    // The tail is gone: appending after recovery works again.
    JournalRecord record = sample_record(2);
    store.append(record);
    const storage::RecoveredLog again = store.load({});
    ASSERT_EQ(again.records.size(), 2u);
    EXPECT_EQ(again.records[1].epoch, 2u);
  }
}

}  // namespace
}  // namespace keygraphs

// Churn-under-loss soak: >= 1024 clients on the in-proc network behind a
// seeded fault engine (drop + duplicate + reorder), with membership churn
// driven through the server while every client runs the automatic recovery
// state machine on an injected clock. Every surviving member must converge
// to the latest group key within a bounded number of recovery rounds, and
// no recovery action is ever initiated by the harness itself: the only
// resyncs are the ones the client state machines escalate to (zero manual
// resyncs). Convergence is asserted under eventual quiescence: after the
// lossy churn phase the faults stop and heartbeat rekeys surface every
// silently-missed tail epoch (gap detection needs a later delivery).
// The whole scenario is deterministic — the same seed reproduces the
// identical fault trace and final state.
#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <memory>

#include "client/client.h"
#include "common/io.h"
#include "http_client.h"
#include "server/server.h"
#include "telemetry/convergence.h"
#include "telemetry/http.h"
#include "telemetry/metrics.h"
#include "transport/fault.h"
#include "transport/inproc.h"

namespace keygraphs {
namespace {

struct SoakResult {
  bool converged = false;
  std::size_t pump_rounds = 0;
  std::size_t nacks = 0;
  std::size_t resyncs = 0;
  std::size_t completions = 0;
  std::vector<transport::FaultEvent> trace;
  /// Server epoch followed by every surviving member's applied epoch in
  /// user order — the cross-run determinism fingerprint.
  std::vector<std::uint64_t> final_epochs;
};

/// Generous convergence SLO for the soaks: one hour of virtual time, far
/// above anything the 200 ms pump steps can accumulate, so a single
/// violation means the accounting (not the fleet) is broken.
constexpr std::uint64_t kGenerousSloUs = 3'600'000'000;

SoakResult run_soak(double drop, std::uint64_t seed, std::size_t group_size,
                    std::size_t churn_ops, bool record_trace,
                    const std::function<void()>& mid_soak = {}) {
  std::uint64_t now = 1'000'000;

  server::ServerConfig config;
  config.tree_degree = 8;
  config.rng_seed = seed;
  config.clock_us = [&now] { return now; };
  config.retransmit_window = 64;
  config.recovery_rate = 0;  // unlimited; the limiter has its own tests
  transport::InProcNetwork network;
  server::GroupKeyServer server(config, network);

  transport::FaultConfig faults;
  faults.seed = seed;
  faults.rule.drop = drop;
  faults.rule.duplicate = 0.03;
  faults.rule.reorder = 0.05;
  faults.rule.reorder_span = 4;
  faults.record_trace = record_trace;
  transport::FaultEngine engine(faults);

  // Build the group server-only (the paper never measures construction);
  // clients materialize from keyset snapshots below, like the experiment
  // harness does.
  for (UserId user = 1; user <= group_size; ++user) server.join(user);

  std::map<UserId, std::unique_ptr<client::GroupClient>> members;
  const KeyId root = server.root_id();

  const auto attach = [&](UserId user, bool snapshot) {
    client::ClientConfig member_config;
    member_config.user = user;
    member_config.suite = config.suite;
    member_config.root = root;
    member_config.verify = false;
    member_config.rng_seed = user + 1;
    member_config.recovery.clock_us = [&now] { return now; };
    member_config.recovery.base_backoff_us = 20'000;
    member_config.recovery.max_backoff_us = 160'000;
    member_config.recovery.token = server.auth().resync_token(user);
    auto client =
        std::make_unique<client::GroupClient>(member_config, nullptr);
    client->install_individual_key(SymmetricKey{
        individual_key_id(user), 1,
        server.auth().individual_key(user, config.suite.key_size())});
    if (snapshot) {
      client->admit_snapshot(server.tree().keyset(user), server.epoch());
    }
    client::GroupClient& ref = *client;
    // The inbox always stays subscribed to the group key's address: a
    // joiner whose welcome was dropped must still hear the group's
    // multicasts to detect the gap and recover on its own.
    const auto resubscribe = [&network, &ref, user, root] {
      std::vector<KeyId> ids = ref.key_ids();
      ids.push_back(root);
      network.resubscribe(user, ids);
    };
    network.attach_client(
        user, transport::make_faulty_inbox(
                  engine, user, [&ref, resubscribe](BytesView datagram) {
                    ref.handle_datagram(datagram);
                    resubscribe();
                  }));
    resubscribe();
    members.emplace(user, std::move(client));
  };

  for (UserId user = 1; user <= group_size; ++user) {
    attach(user, /*snapshot=*/true);
  }

  // Measure fleet convergence over the churn phase only: drop the
  // build-phase publishes (the snapshot attach never reports an apply, so
  // they would all score on a member's first real apply and swamp the
  // quantiles with construction noise).
  telemetry::Registry::global().reset();
  telemetry::ConvergenceMonitor::global().reset();
  telemetry::ConvergenceMonitor::global().set_slo_us(kGenerousSloUs);

  // Routes one client-emitted recovery request to the server — the only
  // way any retransmit or resync ever happens in this harness.
  const auto route = [&](const Bytes& request) {
    const rekey::Datagram datagram = rekey::Datagram::decode(request);
    ByteReader reader(datagram.payload);
    const UserId user = reader.u64();
    const Bytes token = reader.var_bytes();
    if (datagram.type == rekey::MessageType::kNackRequest) {
      (void)server.nack_with_token(user, token, reader.u64());
    } else if (datagram.type == rekey::MessageType::kResyncRequest) {
      (void)server.resync_with_token(user, token);
    }
  };

  const auto all_synced = [&] {
    const Bytes& secret = server.tree().group_key().secret;
    for (const auto& [user, client] : members) {
      const auto key = client->group_key();
      if (!key.has_value() || key->secret != secret) return false;
      if (client->recovery_state() != client::RecoveryState::kSynced) {
        return false;
      }
    }
    return true;
  };

  SoakResult result;
  const auto pump = [&](std::size_t max_rounds) {
    for (std::size_t round = 0; round < max_rounds; ++round) {
      if (all_synced()) return true;
      now += 200'000;  // past every client's max backoff
      ++result.pump_rounds;
      for (const auto& [user, client] : members) {
        if (const auto request = client->poll_recovery()) route(*request);
      }
    }
    return all_synced();
  };

  crypto::SecureRandom churn_rng(seed * 7 + 1);
  UserId next_user = group_size + 1;
  for (std::size_t op = 0; op < churn_ops; ++op) {
    if (op % 2 == 0) {
      auto it = members.begin();
      std::advance(it, churn_rng.uniform(members.size()));
      const UserId leaver = it->first;
      // Release held datagrams before the leaver's inbox disappears: a
      // reordered delivery must not fire into a destroyed client.
      engine.flush();
      network.detach_client(leaver);
      members.erase(it);
      server.leave(leaver);
    } else {
      const UserId joiner = next_user++;
      attach(joiner, /*snapshot=*/false);
      server.join(joiner);
    }
    pump(2);  // opportunistic recovery between operations
    if (mid_soak && op == churn_ops / 2) mid_soak();
  }

  // Quiescent tail: the network heals (faults off, holds released) and the
  // server issues heartbeat rekeys. A client that lost the multicast for
  // the *latest* epoch is silently stale — gap detection needs a later
  // delivery — so each heartbeat gives every straggler a fresh epoch to
  // trip on, after which the NACK/resync machinery repairs the whole gap.
  engine.flush();
  engine.set_rule(transport::FaultRule{});
  for (int phase = 0; phase < 4 && !result.converged; ++phase) {
    const UserId probe = next_user++;
    server.join(probe);
    server.leave(probe);
    result.converged = pump(32);
  }

  result.final_epochs.push_back(server.epoch());
  for (const auto& [user, client] : members) {
    result.final_epochs.push_back(client->applied_epoch());
    result.nacks += client->recovery_stats().nacks_sent;
    result.resyncs += client->recovery_stats().resyncs_sent;
    result.completions += client->recovery_stats().completed;
  }
  if (record_trace) result.trace = engine.trace();
  return result;
}

TEST(RecoverySoak, ChurnUnderFivePercentLossConverges) {
  const SoakResult result =
      run_soak(0.05, 21, /*group_size=*/1024, /*churn_ops=*/40, false);
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.completions, 0u);  // losses happened and were repaired
  EXPECT_GT(result.nacks, 0u);        // via the cheap retransmit path
  EXPECT_LT(result.pump_rounds, 200u);
}

TEST(RecoverySoak, ChurnUnderTwentyPercentLossConverges) {
  // The scrape endpoint serves from its own thread throughout the soak; a
  // mid-churn GET must come back well-formed without stalling the run.
  telemetry::TelemetryHttpServer http(0);
  std::string scraped;
  const SoakResult result =
      run_soak(0.20, 23, /*group_size=*/1024, /*churn_ops=*/40, false,
               [&] { scraped = testhttp::http_get(http.port(), "/metrics"); });
  EXPECT_TRUE(result.converged);
  EXPECT_GT(result.completions, 0u);
  EXPECT_GT(result.nacks, 0u);
  EXPECT_LT(result.pump_rounds, 200u);

  // Fleet convergence accounting over the whole churn: every repaired loss
  // scored a positive publish-to-applied latency (the pump advances the
  // injected clock 200 ms per round), immediate applies scored zero, and
  // nothing came near the one-hour SLO.
  const auto& convergence =
      telemetry::Registry::global().histogram("fleet.convergence_ns");
  EXPECT_GT(convergence.count(), 1000u);  // 1024 members, 40 churn ops
  EXPECT_GT(convergence.p99(), 0u);       // losses are >1% of samples
  EXPECT_GE(convergence.p99(), convergence.p50());
  EXPECT_LT(convergence.p99(), kGenerousSloUs * 1000);  // finite and sane
  EXPECT_EQ(
      telemetry::Registry::global().counter("fleet.slo_violations").value(),
      0u);

  ASSERT_FALSE(scraped.empty());  // the mid-soak scrape connected
  EXPECT_NE(scraped.find("200 OK"), std::string::npos);
  EXPECT_NE(scraped.find("kg_fleet_convergence_ns"), std::string::npos);
  EXPECT_NE(scraped.find("kg_fleet_published_epoch"), std::string::npos);
}

TEST(RecoverySoak, SameSeedReproducesIdenticalTraceAndState) {
  const SoakResult first =
      run_soak(0.20, 17, /*group_size=*/96, /*churn_ops=*/24, true);
  const SoakResult second =
      run_soak(0.20, 17, /*group_size=*/96, /*churn_ops=*/24, true);
  EXPECT_TRUE(first.converged);
  ASSERT_FALSE(first.trace.empty());
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.final_epochs, second.final_epochs);
  EXPECT_EQ(first.pump_rounds, second.pump_rounds);
  EXPECT_EQ(first.nacks, second.nacks);
  EXPECT_EQ(first.resyncs, second.resyncs);
  bool any_fault = false;
  for (const transport::FaultEvent& event : first.trace) {
    any_fault |= event.action != transport::FaultAction::kPass;
  }
  EXPECT_TRUE(any_fault);
}

}  // namespace
}  // namespace keygraphs

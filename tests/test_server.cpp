// GroupKeyServer: protocol behaviour (grant/deny/duplicate), ACL, token
// authentication, epoch progression, stats recording, resolver semantics,
// and the star baseline configuration.
#include "server/server.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "transport/transport.h"

namespace keygraphs::server {
namespace {

ServerConfig plain_config(rekey::StrategyKind strategy =
                              rekey::StrategyKind::kGroupOriented) {
  ServerConfig config;
  config.strategy = strategy;
  config.rng_seed = 11;
  return config;
}

TEST(Server, JoinGrantDuplicateDeny) {
  transport::NullTransport transport;
  GroupKeyServer server(plain_config(), transport,
                        AccessControl::allow_list({1, 2}));
  EXPECT_EQ(server.join(1), JoinResult::kGranted);
  EXPECT_EQ(server.join(1), JoinResult::kDuplicate);
  EXPECT_EQ(server.join(3), JoinResult::kDenied);
  EXPECT_EQ(server.tree().user_count(), 1u);
}

TEST(Server, AccessControlGrantRevoke) {
  AccessControl acl = AccessControl::allow_list({});
  EXPECT_FALSE(acl.authorizes(5));
  acl.grant(5);
  EXPECT_TRUE(acl.authorizes(5));
  acl.revoke(5);
  EXPECT_FALSE(acl.authorizes(5));
  EXPECT_TRUE(AccessControl::allow_all().authorizes(12345));
}

TEST(Server, LeaveUnknownThrows) {
  transport::NullTransport transport;
  GroupKeyServer server(plain_config(), transport);
  EXPECT_THROW(server.leave(9), ProtocolError);
}

TEST(Server, JoinLeaveLifecycle) {
  transport::NullTransport transport;
  GroupKeyServer server(plain_config(), transport);
  for (UserId user = 1; user <= 10; ++user) {
    EXPECT_EQ(server.join(user), JoinResult::kGranted);
  }
  const SymmetricKey before = server.tree().group_key();
  server.leave(5);
  EXPECT_FALSE(server.tree().has_user(5));
  EXPECT_NE(server.tree().group_key().secret, before.secret);
  server.tree().check_invariants();
}

TEST(Server, EpochIncrementsPerOperation) {
  transport::NullTransport transport;
  GroupKeyServer server(plain_config(), transport);
  EXPECT_EQ(server.epoch(), 0u);
  server.join(1);
  server.join(2);
  server.leave(1);
  EXPECT_EQ(server.epoch(), 3u);
}

TEST(Server, TokenAuthentication) {
  transport::NullTransport transport;
  GroupKeyServer server(plain_config(), transport);
  const AuthService& auth = server.auth();

  EXPECT_EQ(server.join_with_token(7, auth.join_token(7)),
            JoinResult::kGranted);
  EXPECT_EQ(server.join_with_token(8, auth.join_token(9)),
            JoinResult::kDenied);  // token for the wrong user
  EXPECT_EQ(server.join_with_token(8, bytes_of("forged")),
            JoinResult::kDenied);

  EXPECT_FALSE(server.leave_with_token(7, bytes_of("forged")));
  EXPECT_TRUE(server.tree().has_user(7));
  EXPECT_TRUE(server.leave_with_token(7, auth.leave_token(7)));
  EXPECT_FALSE(server.tree().has_user(7));
  // Leaving again fails cleanly (not a member).
  EXPECT_FALSE(server.leave_with_token(7, auth.leave_token(7)));
}

TEST(Server, AuthServiceDerivesStableKeys) {
  const AuthService auth(bytes_of("master"));
  EXPECT_EQ(auth.individual_key(1, 8), auth.individual_key(1, 8));
  EXPECT_NE(auth.individual_key(1, 8), auth.individual_key(2, 8));
  EXPECT_EQ(auth.individual_key(1, 8).size(), 8u);
  EXPECT_EQ(auth.individual_key(1, 16).size(), 16u);
  EXPECT_EQ(auth.individual_key(1, 100).size(), 100u);  // expansion path
  EXPECT_TRUE(auth.verify_join_token(3, auth.join_token(3)));
  EXPECT_FALSE(auth.verify_join_token(3, auth.leave_token(3)));
}

TEST(Server, StatsRecordedPerOperation) {
  transport::NullTransport transport;
  GroupKeyServer server(plain_config(), transport);
  for (UserId user = 1; user <= 8; ++user) server.join(user);
  server.leave(3);
  server.leave(4);
  EXPECT_EQ(server.stats().size(), 10u);
  const Summary joins = server.stats().summarize(rekey::RekeyKind::kJoin);
  const Summary leaves = server.stats().summarize(rekey::RekeyKind::kLeave);
  EXPECT_EQ(joins.operations, 8u);
  EXPECT_EQ(leaves.operations, 2u);
  EXPECT_GT(joins.avg_message_bytes, 0.0);
  EXPECT_GT(leaves.avg_encryptions, 0.0);
  EXPECT_GE(joins.max_message_bytes, joins.min_message_bytes);
  server.stats().reset();
  EXPECT_EQ(server.stats().size(), 0u);
}

TEST(Server, TransportSeesDatagrams) {
  transport::NullTransport transport;
  GroupKeyServer server(plain_config(), transport);
  server.join(1);
  EXPECT_EQ(transport.datagrams(), 1u);  // welcome only (no other members)
  server.join(2);
  // Broadcast + welcome.
  EXPECT_EQ(transport.datagrams(), 3u);
  EXPECT_GT(transport.bytes(), 0u);
}

TEST(Server, ResolveSubgroupDifference) {
  transport::NullTransport transport;
  GroupKeyServer server(plain_config(), transport);
  for (UserId user = 1; user <= 9; ++user) server.join(user);
  const std::vector<UserId> everyone =
      server.resolve_subgroup(server.root_id(), std::nullopt);
  EXPECT_EQ(everyone.size(), 9u);
  const std::vector<UserId> all_but_3 = server.resolve_subgroup(
      server.root_id(), individual_key_id(3));
  EXPECT_EQ(all_but_3.size(), 8u);
  EXPECT_TRUE(std::find(all_but_3.begin(), all_but_3.end(), 3) ==
              all_but_3.end());
  // Vanished k-nodes resolve to empty, not an error.
  EXPECT_TRUE(server.resolve_subgroup(999999, std::nullopt).empty());
  EXPECT_EQ(server.resolve_subgroup(server.root_id(), 999999).size(), 9u);
}

TEST(Server, SigningModesRequireSuite) {
  transport::NullTransport transport;
  ServerConfig config = plain_config();
  config.signing = rekey::SigningMode::kBatch;  // but suite has no RSA
  EXPECT_THROW(GroupKeyServer(config, transport), ProtocolError);
}

TEST(Server, SignedServerExposesPublicKey) {
  transport::NullTransport transport;
  ServerConfig config = plain_config();
  config.suite = crypto::CryptoSuite::paper_signed();
  config.signing = rekey::SigningMode::kBatch;
  GroupKeyServer server(config, transport);
  ASSERT_NE(server.public_key(), nullptr);
  server.join(1);
  server.join(2);
  const Summary all = server.stats().summarize_all();
  EXPECT_GT(all.avg_signatures, 0.0);
}

TEST(Server, UnsignedServerHasNoPublicKey) {
  transport::NullTransport transport;
  GroupKeyServer server(plain_config(), transport);
  EXPECT_EQ(server.public_key(), nullptr);
}

TEST(Server, StarConfigurationScalesLeaveCostLinearly) {
  transport::NullTransport transport;
  ServerConfig config = ServerConfig::star(plain_config(
      rekey::StrategyKind::kKeyOriented));
  GroupKeyServer server(config, transport);
  for (UserId user = 1; user <= 32; ++user) server.join(user);
  server.stats().reset();
  server.leave(32);
  // Star leave: n - 1 = 31 encryptions (Table 2(c)).
  EXPECT_EQ(server.stats().records()[0].key_encryptions, 31u);
}

TEST(Server, ReproducibleWithSameSeed) {
  auto run = [] {
    transport::NullTransport transport;
    GroupKeyServer server(plain_config(), transport);
    for (UserId user = 1; user <= 6; ++user) server.join(user);
    return server.tree().group_key().secret;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace keygraphs::server

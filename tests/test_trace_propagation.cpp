// End-to-end rekey tracing: the server stamps a TraceContext at plan time,
// carries it through seal and dispatch onto the datagram as the optional
// TraceExtension, and the client rebinds it so its receive/apply spans
// correlate with the server's plan/seal/dispatch spans. With the flag off
// (the default) the wire bytes are identical to the pre-extension format.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "client/client.h"
#include "common/error.h"
#include "json_check.h"
#include "server/server.h"
#include "telemetry/convergence.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "transport/inproc.h"

namespace keygraphs {
namespace {

TEST(TraceWire, EncodingWithoutTraceIsByteIdentical) {
  const Bytes payload = bytes_of("hello");
  const rekey::Datagram plain{rekey::MessageType::kRekey, payload};
  const Bytes encoded = plain.encode();
  ASSERT_EQ(encoded.size(), 2 + payload.size());
  EXPECT_EQ(encoded[0], 0x47);  // magic
  EXPECT_EQ(encoded[1], 0x05);  // kRekey, trace flag clear
  const rekey::Datagram decoded = rekey::Datagram::decode(encoded);
  EXPECT_FALSE(decoded.trace.has_value());
  EXPECT_EQ(decoded.payload, payload);
}

TEST(TraceWire, ExtensionRoundTripsAndFlagsTypeByte) {
  const Bytes payload = bytes_of("payload");
  const rekey::TraceExtension extension{0x1122334455667788ull, 42, 2};
  const rekey::Datagram traced{rekey::MessageType::kRekey, payload,
                               extension};
  const Bytes encoded = traced.encode();
  EXPECT_EQ(encoded[1], 0x85);  // kRekey | kTraceFlag
  EXPECT_EQ(encoded.size(), 2 + 17 + payload.size());
  const rekey::Datagram decoded = rekey::Datagram::decode(encoded);
  ASSERT_TRUE(decoded.trace.has_value());
  EXPECT_EQ(*decoded.trace, extension);
  EXPECT_EQ(decoded.payload, payload);
  EXPECT_EQ(decoded.type, rekey::MessageType::kRekey);
}

TEST(TraceWire, TruncatedExtensionThrows) {
  const rekey::Datagram traced{rekey::MessageType::kRekey, bytes_of("x"),
                               rekey::TraceExtension{1, 2, 3}};
  Bytes encoded = traced.encode();
  encoded.resize(10);  // cuts into the extension
  EXPECT_THROW(rekey::Datagram::decode(encoded), ParseError);
}

TEST(TraceWire, RequestTypesStillValidateAfterFlagStrip) {
  // A flagged type byte outside the valid range must still be rejected.
  Bytes bogus = {0x47, static_cast<std::uint8_t>(0x80)};  // type 0 + flag
  EXPECT_THROW(rekey::Datagram::decode(bogus), ParseError);
}

struct Harness {
  std::uint64_t now = 1'000'000;
  server::ServerConfig config;
  transport::InProcNetwork network;
  std::unique_ptr<server::GroupKeyServer> server;
  std::map<UserId, std::unique_ptr<client::GroupClient>> members;
  std::map<UserId, Bytes> last_raw;  // last raw datagram per member

  explicit Harness(bool propagate, std::size_t group_size) {
    config.tree_degree = 8;
    config.rng_seed = 7;
    config.trace_propagation = propagate;
    config.clock_us = [this] { return now; };
    server = std::make_unique<server::GroupKeyServer>(config, network);
    for (UserId user = 1; user <= group_size; ++user) server->join(user);
  }

  void attach(UserId user) {
    client::ClientConfig member_config;
    member_config.user = user;
    member_config.suite = config.suite;
    member_config.root = server->root_id();
    member_config.verify = false;
    member_config.rng_seed = user + 1;
    member_config.recovery.clock_us = [this] { return now; };
    auto member =
        std::make_unique<client::GroupClient>(member_config, nullptr);
    member->install_individual_key(SymmetricKey{
        individual_key_id(user), 1,
        server->auth().individual_key(user, config.suite.key_size())});
    member->admit_snapshot(server->tree().keyset(user), server->epoch());
    client::GroupClient& ref = *member;
    network.attach_client(user, [this, &ref, user](BytesView datagram) {
      last_raw[user] = Bytes(datagram.begin(), datagram.end());
      ref.handle_datagram(datagram);
    });
    std::vector<KeyId> ids = ref.key_ids();
    ids.push_back(server->root_id());
    network.resubscribe(user, ids);
    members.emplace(user, std::move(member));
  }
};

TEST(TracePropagation, OffByDefaultKeepsDatagramsUntraced) {
  Harness harness(/*propagate=*/false, /*group_size=*/8);
  harness.attach(3);
  harness.server->join(9);
  ASSERT_FALSE(harness.last_raw[3].empty());
  EXPECT_EQ(harness.last_raw[3][1], 0x05);  // no trace flag on the wire
  EXPECT_FALSE(
      rekey::Datagram::decode(harness.last_raw[3]).trace.has_value());
}

TEST(TracePropagation, ServerAndClientSpansShareTheTraceId) {
  telemetry::Registry::global().reset();  // also clears the span ring
  Harness harness(/*propagate=*/true, /*group_size=*/8);
  harness.attach(3);
  harness.server->join(9);

  ASSERT_FALSE(harness.last_raw[3].empty());
  const rekey::Datagram raw = rekey::Datagram::decode(harness.last_raw[3]);
  ASSERT_TRUE(raw.trace.has_value());
  EXPECT_NE(raw.trace->trace_id, 0u);
  EXPECT_EQ(raw.trace->epoch, harness.server->epoch());
  EXPECT_EQ(raw.trace->op_kind,
            static_cast<std::uint8_t>(rekey::RekeyKind::kJoin));

  const std::uint64_t trace_id = raw.trace->trace_id;
  bool saw_plan = false;
  bool saw_seal = false;
  std::uint64_t dispatch_start = 0;
  std::uint64_t receive_start = 0;
  std::uint64_t apply_start = 0;
  for (const telemetry::SpanRecord& span :
       telemetry::Tracer::global().snapshot()) {
    if (span.trace_id != trace_id) continue;
    const std::string name = span.name;
    if (name == "rekey.plan") {
      saw_plan = true;
      EXPECT_EQ(span.process, telemetry::kServerProcess);
    } else if (name == "rekey.seal") {
      saw_seal = true;
    } else if (name == "rekey.dispatch") {
      dispatch_start = span.start_ns;
    } else if (name == "client.receive") {
      receive_start = span.start_ns;
      EXPECT_EQ(span.process, telemetry::client_process(3));
    } else if (name == "client.apply") {
      apply_start = span.start_ns;
      EXPECT_EQ(span.process, telemetry::client_process(3));
    }
  }
  EXPECT_TRUE(saw_plan);
  EXPECT_TRUE(saw_seal);
  ASSERT_GT(dispatch_start, 0u);
  ASSERT_GT(receive_start, 0u);
  ASSERT_GT(apply_start, 0u);
  // The delivery happens inside the dispatch span, so the client's spans
  // start after the dispatch span does.
  EXPECT_LE(dispatch_start, receive_start);
  EXPECT_LE(receive_start, apply_start);
}

// Acceptance scenario: a single join at n = 4096 with propagation on
// renders a valid Chrome Trace Event JSON with the server lane, at least
// one client lane, and a dispatch -> apply flow arrow whose dispatch span
// precedes the client apply span.
TEST(TracePropagation, SingleJoinAtFourKRendersChromeTrace) {
  Harness harness(/*propagate=*/true, /*group_size=*/4096);
  harness.attach(1);
  telemetry::Registry::global().reset();  // drop build-phase spans
  harness.server->join(4097);

  const std::string trace = telemetry::render_chrome_trace();
  ASSERT_TRUE(testjson::json_valid(trace)) << trace.substr(0, 400);
  EXPECT_NE(trace.find("\"name\":\"keyserver\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"client u1\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);  // flow start
  EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);  // flow end
  EXPECT_NE(trace.find("rekey.dispatch"), std::string::npos);
  EXPECT_NE(trace.find("client.apply"), std::string::npos);

  std::uint64_t dispatch_start = 0;
  std::uint64_t apply_start = 0;
  for (const telemetry::SpanRecord& span :
       telemetry::Tracer::global().snapshot()) {
    const std::string name = span.name;
    if (name == "rekey.dispatch") dispatch_start = span.start_ns;
    if (name == "client.apply") apply_start = span.start_ns;
  }
  ASSERT_GT(dispatch_start, 0u);
  ASSERT_GT(apply_start, 0u);
  EXPECT_LT(dispatch_start, apply_start);
}

TEST(TracePropagation, ResyncRepliesCarryTheResyncKind) {
  Harness harness(/*propagate=*/true, /*group_size=*/8);
  harness.attach(5);
  harness.server->resync(5);
  ASSERT_FALSE(harness.last_raw[5].empty());
  const rekey::Datagram raw = rekey::Datagram::decode(harness.last_raw[5]);
  ASSERT_TRUE(raw.trace.has_value());
  EXPECT_EQ(raw.trace->op_kind,
            static_cast<std::uint8_t>(rekey::RekeyKind::kResync));
}

TEST(TracePropagation, DisabledTelemetryStampsNoTrace) {
  telemetry::set_enabled(false);
  Harness harness(/*propagate=*/true, /*group_size=*/4);
  harness.attach(2);
  harness.server->join(5);
  telemetry::set_enabled(true);
  ASSERT_FALSE(harness.last_raw[2].empty());
  EXPECT_FALSE(
      rekey::Datagram::decode(harness.last_raw[2]).trace.has_value());
}

}  // namespace
}  // namespace keygraphs

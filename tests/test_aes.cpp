// AES-128 against FIPS 197: the appendix C known-answer test, round trips,
// and avalanche behaviour.
#include "crypto/aes.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "crypto/random.h"

namespace keygraphs::crypto {
namespace {

Bytes encrypt_one(const Aes128& aes, const Bytes& plaintext) {
  Bytes out(Aes128::kBlockSize);
  aes.encrypt_block(plaintext.data(), out.data());
  return out;
}

Bytes decrypt_one(const Aes128& aes, const Bytes& ciphertext) {
  Bytes out(Aes128::kBlockSize);
  aes.decrypt_block(ciphertext.data(), out.data());
  return out;
}

TEST(Aes128, Fips197AppendixC) {
  const Aes128 aes(from_hex("000102030405060708090a0b0c0d0e0f"));
  EXPECT_EQ(to_hex(encrypt_one(aes, from_hex("00112233445566778899aabbccddeeff"))),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, DecryptInvertsAppendixC) {
  const Aes128 aes(from_hex("000102030405060708090a0b0c0d0e0f"));
  EXPECT_EQ(to_hex(decrypt_one(aes, from_hex("69c4e0d86a7b0430d8cdb78070b4c55a"))),
            "00112233445566778899aabbccddeeff");
}

TEST(Aes128, RejectsWrongKeySize) {
  EXPECT_THROW(Aes128(from_hex("00")), CryptoError);
  EXPECT_THROW(Aes128(Bytes(24, 0)), CryptoError);
  EXPECT_THROW(Aes128(Bytes(32, 0)), CryptoError);
}

TEST(Aes128, Accessors) {
  const Aes128 aes(Bytes(16, 0));
  EXPECT_EQ(aes.block_size(), 16u);
  EXPECT_EQ(aes.key_size(), 16u);
  EXPECT_EQ(aes.name(), "AES-128");
}

TEST(Aes128, InPlaceAliasing) {
  const Aes128 aes(from_hex("000102030405060708090a0b0c0d0e0f"));
  Bytes buffer = from_hex("00112233445566778899aabbccddeeff");
  aes.encrypt_block(buffer.data(), buffer.data());
  EXPECT_EQ(to_hex(buffer), "69c4e0d86a7b0430d8cdb78070b4c55a");
  aes.decrypt_block(buffer.data(), buffer.data());
  EXPECT_EQ(to_hex(buffer), "00112233445566778899aabbccddeeff");
}

TEST(Aes128, AllZeroKeyVector) {
  // NIST AESAVS KAT: AES-128(key=0, pt=0).
  const Aes128 aes(Bytes(16, 0x00));
  EXPECT_EQ(to_hex(encrypt_one(aes, Bytes(16, 0x00))),
            "66e94bd4ef8a2c3b884cfa59ca342b2e");
}

class AesProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AesProperty, DecryptInvertsEncrypt) {
  SecureRandom rng(GetParam());
  const Aes128 aes(rng.bytes(16));
  for (int i = 0; i < 32; ++i) {
    const Bytes pt = rng.bytes(16);
    EXPECT_EQ(decrypt_one(aes, encrypt_one(aes, pt)), pt);
  }
}

TEST_P(AesProperty, SingleBitAvalanche) {
  // Flipping one plaintext bit must change roughly half the output; at the
  // very least the outputs must differ in more than a quarter of the bits.
  SecureRandom rng(GetParam() * 3 + 1);
  const Aes128 aes(rng.bytes(16));
  const Bytes pt = rng.bytes(16);
  Bytes pt_flipped = pt;
  pt_flipped[static_cast<std::size_t>(rng.uniform(16))] ^=
      static_cast<std::uint8_t>(1 << rng.uniform(8));

  const Bytes a = encrypt_one(aes, pt);
  const Bytes b = encrypt_one(aes, pt_flipped);
  int differing_bits = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differing_bits += std::popcount(static_cast<unsigned>(a[i] ^ b[i]));
  }
  EXPECT_GT(differing_bits, 32);
  EXPECT_LT(differing_bits, 96);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AesProperty,
                         ::testing::Values(10, 20, 30, 40, 50));

}  // namespace
}  // namespace keygraphs::crypto

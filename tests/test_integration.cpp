// End-to-end integration over the in-process network: server + real
// clients under churn, for every strategy, with the paper's security goals
// checked directly:
//   - convergence: after every operation all members hold the current
//     group key;
//   - forward secrecy: a departed member's complete old keyset decrypts
//     nothing from any later rekey message;
//   - backward secrecy: a joiner cannot read rekey messages captured
//     before it joined.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.h"
#include "sim/simulator.h"
#include "sim/workload.h"

namespace keygraphs {
namespace {

using rekey::StrategyKind;

struct IntegrationParam {
  StrategyKind strategy;
  int degree;
  bool sign;
};

class Integration : public ::testing::TestWithParam<IntegrationParam> {
 protected:
  void SetUp() override {
    const IntegrationParam param = GetParam();
    server::ServerConfig config;
    config.tree_degree = param.degree;
    config.strategy = param.strategy;
    config.rng_seed = 21;
    if (param.sign) {
      config.suite = crypto::CryptoSuite::paper_signed();
      config.signing = rekey::SigningMode::kBatch;
    }
    server_ = std::make_unique<server::GroupKeyServer>(config, network_);
    sim::SimulatorConfig sim_config;
    sim_config.clients_verify = param.sign;
    simulator_ = std::make_unique<sim::ClientSimulator>(*server_, network_,
                                                        sim_config);
  }

  void expect_convergence() {
    const SymmetricKey group = server_->tree().group_key();
    for (UserId user : server_->tree().users()) {
      const auto held = simulator_->client(user).group_key();
      ASSERT_TRUE(held.has_value()) << "user " << user << " has no group key";
      EXPECT_EQ(held->secret, group.secret) << "user " << user;
      EXPECT_EQ(held->version, group.version);
    }
  }

  transport::InProcNetwork network_;
  std::unique_ptr<server::GroupKeyServer> server_;
  std::unique_ptr<sim::ClientSimulator> simulator_;
};

TEST_P(Integration, ConvergenceUnderChurn) {
  sim::WorkloadGenerator workload(3);
  simulator_->apply_all(workload.initial_joins(20));
  expect_convergence();
  simulator_->apply_all(workload.churn(60));
  expect_convergence();
  server_->tree().check_invariants();
}

TEST_P(Integration, EveryMemberCanTalkToEveryOther) {
  sim::WorkloadGenerator workload(4);
  simulator_->apply_all(workload.initial_joins(9));
  simulator_->apply_all(workload.churn(20));
  const std::vector<UserId> members = server_->tree().users();
  ASSERT_GE(members.size(), 2u);
  client::GroupClient& sender = simulator_->client(members.front());
  const Bytes sealed = sender.seal_application(bytes_of("team update"));
  for (UserId user : members) {
    EXPECT_EQ(simulator_->client(user).open_application(sealed),
              bytes_of("team update"))
        << "user " << user;
  }
}

TEST_P(Integration, ForwardSecrecy) {
  sim::WorkloadGenerator workload(5);
  simulator_->apply_all(workload.initial_joins(16));

  // The attacker: member 7 snapshots its full keyset, then leaves.
  const UserId attacker = 7;
  client::ClientConfig eve_config;
  eve_config.user = attacker;
  eve_config.suite = server_->config().suite;
  eve_config.root = server_->root_id();
  eve_config.verify = false;
  client::GroupClient eve(eve_config, server_->public_key());
  eve.admit_snapshot(server_->tree().keyset(attacker), server_->epoch());
  ASSERT_TRUE(eve.group_key().has_value());

  std::vector<Bytes> captured;
  simulator_->apply(sim::Request{sim::RequestKind::kLeave, attacker});

  // Tap: a network eavesdropper sees every multicast, so subscribe a
  // sniffer to every current k-node and replay its captures into Eve.
  std::vector<KeyId> all_nodes;
  for (UserId user : server_->tree().users()) {
    for (const SymmetricKey& key : server_->tree().keyset(user)) {
      all_nodes.push_back(key.id);
    }
  }
  network_.attach_client(888888, [&captured](BytesView data) {
    captured.emplace_back(data.begin(), data.end());
  });
  network_.resubscribe(888888, all_nodes);

  sim::WorkloadGenerator churn(6);
  churn.initial_joins(16);  // align the generator's member tracking
  simulator_->apply_all(churn.churn(30));

  // Eve processes every captured message with her stale keyset: she must
  // learn nothing (every wrap uses keys she does not hold, because her
  // leave rekeyed her entire path).
  std::size_t learned = 0;
  for (const Bytes& datagram : captured) {
    learned += eve.handle_datagram(datagram).keys_changed;
  }
  EXPECT_EQ(learned, 0u);
  EXPECT_NE(eve.group_key()->secret,
            server_->tree().group_key().secret);
}

TEST_P(Integration, BackwardSecrecy) {
  sim::WorkloadGenerator workload(8);
  simulator_->apply_all(workload.initial_joins(12));

  // Capture all multicast traffic for a while before the new user joins.
  std::vector<Bytes> pre_join_traffic;
  std::vector<KeyId> all_nodes;
  for (UserId user : server_->tree().users()) {
    for (const SymmetricKey& key : server_->tree().keyset(user)) {
      all_nodes.push_back(key.id);
    }
  }
  network_.attach_client(888888, [&pre_join_traffic](BytesView data) {
    pre_join_traffic.emplace_back(data.begin(), data.end());
  });
  network_.resubscribe(888888, all_nodes);
  simulator_->apply_all(workload.churn(20));
  network_.detach_client(888888);

  // Also capture an application payload under the pre-join group key.
  const std::vector<UserId> members = server_->tree().users();
  const Bytes old_secret_message =
      simulator_->client(members.front()).seal_application(
          bytes_of("history"));

  // A brand-new member joins and replays the captured history.
  const UserId newcomer = 5000;
  simulator_->apply(sim::Request{sim::RequestKind::kJoin, newcomer});
  client::GroupClient& joiner = simulator_->client(newcomer);

  // The joiner's keyset must not decrypt any captured rekey message...
  // (replaying old epochs is stale by design, so test with a fresh client
  // holding the same keys but no epoch state).
  client::ClientConfig probe_config;
  probe_config.user = newcomer;
  probe_config.suite = server_->config().suite;
  probe_config.root = server_->root_id();
  probe_config.verify = false;
  client::GroupClient probe(probe_config, nullptr);
  probe.admit_snapshot(server_->tree().keyset(newcomer), 0);
  std::size_t learned = 0;
  for (const Bytes& datagram : pre_join_traffic) {
    learned += probe.handle_datagram(datagram).keys_changed;
  }
  EXPECT_EQ(learned, 0u);

  // ...and must not read the old application payload.
  EXPECT_THROW(joiner.open_application(old_secret_message), Error);
}

TEST_P(Integration, ClientKeysetsMirrorTreePaths) {
  // Strong synchronization invariant: after any churn, each member's
  // client holds exactly the k-node ids on its tree path (obsolete-id
  // pruning must leave no stale entries, and no path key may be missing).
  sim::WorkloadGenerator workload(12);
  simulator_->apply_all(workload.initial_joins(15));
  simulator_->apply_all(workload.churn(40));
  for (UserId user : server_->tree().users()) {
    std::vector<KeyId> expected;
    for (const SymmetricKey& key : server_->tree().keyset(user)) {
      expected.push_back(key.id);
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(simulator_->client(user).key_ids(), expected)
        << "user " << user;
  }
}

TEST_P(Integration, GroupShrinksToOneAndRegrows) {
  sim::WorkloadGenerator workload(9);
  simulator_->apply_all(workload.initial_joins(5));
  const std::vector<UserId> members = server_->tree().users();
  for (std::size_t i = 0; i + 1 < members.size(); ++i) {
    simulator_->apply(sim::Request{sim::RequestKind::kLeave, members[i]});
    expect_convergence();
  }
  EXPECT_EQ(server_->tree().user_count(), 1u);
  simulator_->apply(sim::Request{sim::RequestKind::kJoin, 700});
  simulator_->apply(sim::Request{sim::RequestKind::kJoin, 701});
  expect_convergence();
}

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndDegrees, Integration,
    ::testing::Values(
        IntegrationParam{StrategyKind::kUserOriented, 4, false},
        IntegrationParam{StrategyKind::kKeyOriented, 4, false},
        IntegrationParam{StrategyKind::kGroupOriented, 4, false},
        IntegrationParam{StrategyKind::kHybrid, 4, false},
        IntegrationParam{StrategyKind::kUserOriented, 2, false},
        IntegrationParam{StrategyKind::kKeyOriented, 3, false},
        IntegrationParam{StrategyKind::kGroupOriented, 8, false},
        IntegrationParam{StrategyKind::kHybrid, 3, false},
        IntegrationParam{StrategyKind::kGroupOriented, 4, true},
        IntegrationParam{StrategyKind::kKeyOriented, 4, true}));

}  // namespace
}  // namespace keygraphs

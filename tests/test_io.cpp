// ByteWriter/ByteReader: little-endian layout, round trips, and the
// truncation/trailing-bytes guarantees the network decoders depend on.
#include "common/io.h"

#include <gtest/gtest.h>

namespace keygraphs {
namespace {

TEST(ByteWriter, LittleEndianLayout) {
  ByteWriter writer;
  writer.u8(0x01);
  writer.u16(0x0203);
  writer.u32(0x04050607);
  writer.u64(0x08090a0b0c0d0e0full);
  EXPECT_EQ(to_hex(writer.data()),
            "01"
            "0302"
            "07060504"
            "0f0e0d0c0b0a0908");
}

TEST(ByteWriter, VarBytesPrefixesLength) {
  ByteWriter writer;
  writer.var_bytes(bytes_of("hi"));
  EXPECT_EQ(to_hex(writer.data()), "020000006869");
}

TEST(ByteWriter, VarStringMatchesVarBytes) {
  ByteWriter a, b;
  a.var_string("hello");
  b.var_bytes(bytes_of("hello"));
  EXPECT_EQ(a.data(), b.data());
}

TEST(RoundTrip, AllPrimitiveTypes) {
  ByteWriter writer;
  writer.u8(0xab);
  writer.u16(0xbeef);
  writer.u32(0xdeadbeef);
  writer.u64(0x0123456789abcdefull);
  writer.var_bytes(from_hex("cafe"));
  writer.var_string("text");
  writer.raw(from_hex("00ff"));

  ByteReader reader(writer.data());
  EXPECT_EQ(reader.u8(), 0xab);
  EXPECT_EQ(reader.u16(), 0xbeef);
  EXPECT_EQ(reader.u32(), 0xdeadbeefu);
  EXPECT_EQ(reader.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(reader.var_bytes(), from_hex("cafe"));
  EXPECT_EQ(reader.var_string(), "text");
  EXPECT_EQ(reader.raw(2), from_hex("00ff"));
  EXPECT_TRUE(reader.done());
  EXPECT_NO_THROW(reader.expect_done());
}

TEST(ByteReader, ThrowsOnTruncatedPrimitive) {
  const Bytes data = {0x01, 0x02};
  ByteReader reader(data);
  EXPECT_THROW(reader.u32(), ParseError);
}

TEST(ByteReader, ThrowsOnTruncatedVarBytes) {
  // Length prefix claims 100 bytes; only 1 present.
  ByteWriter writer;
  writer.u32(100);
  writer.u8(0xaa);
  ByteReader reader(writer.data());
  EXPECT_THROW(reader.var_bytes(), ParseError);
}

TEST(ByteReader, ThrowsOnOverRead) {
  ByteReader reader(BytesView{});
  EXPECT_THROW(reader.u8(), ParseError);
}

TEST(ByteReader, ExpectDoneRejectsTrailingBytes) {
  const Bytes data = {0x01, 0x02};
  ByteReader reader(data);
  (void)reader.u8();
  EXPECT_THROW(reader.expect_done(), ParseError);
}

TEST(ByteReader, RemainingTracksPosition) {
  const Bytes data = {1, 2, 3, 4};
  ByteReader reader(data);
  EXPECT_EQ(reader.remaining(), 4u);
  (void)reader.u16();
  EXPECT_EQ(reader.remaining(), 2u);
  (void)reader.raw(2);
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_TRUE(reader.done());
}

TEST(ByteReader, EmptyVarBytesOk) {
  ByteWriter writer;
  writer.var_bytes(Bytes{});
  ByteReader reader(writer.data());
  EXPECT_TRUE(reader.var_bytes().empty());
  EXPECT_TRUE(reader.done());
}

// Width-parameterized round trip: any u64 value survives.
class U64RoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(U64RoundTrip, Survives) {
  ByteWriter writer;
  writer.u64(GetParam());
  ByteReader reader(writer.data());
  EXPECT_EQ(reader.u64(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Values, U64RoundTrip,
                         ::testing::Values(0ull, 1ull, 0xffull, 0x100ull,
                                           0xffffffffull, 0x100000000ull,
                                           ~0ull));

}  // namespace
}  // namespace keygraphs

// DES against FIPS 46-3 behaviour: the classic known-answer vector, the
// complementation property (a strong whole-cipher check), weak-key
// fixpoints, and encrypt/decrypt inversion across random keys.
#include "crypto/des.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "crypto/random.h"

namespace keygraphs::crypto {
namespace {

Bytes encrypt_one(const Des& des, const Bytes& plaintext) {
  Bytes out(Des::kBlockSize);
  des.encrypt_block(plaintext.data(), out.data());
  return out;
}

Bytes decrypt_one(const Des& des, const Bytes& ciphertext) {
  Bytes out(Des::kBlockSize);
  des.decrypt_block(ciphertext.data(), out.data());
  return out;
}

TEST(Des, ClassicKnownAnswer) {
  // The worked example from the FIPS validation literature.
  const Des des(from_hex("133457799bbcdff1"));
  EXPECT_EQ(to_hex(encrypt_one(des, from_hex("0123456789abcdef"))),
            "85e813540f0ab405");
}

TEST(Des, DecryptInvertsKnownAnswer) {
  const Des des(from_hex("133457799bbcdff1"));
  EXPECT_EQ(to_hex(decrypt_one(des, from_hex("85e813540f0ab405"))),
            "0123456789abcdef");
}

TEST(Des, RejectsWrongKeySize) {
  EXPECT_THROW(Des(from_hex("0011223344")), CryptoError);
  EXPECT_THROW(Des(from_hex("00112233445566778899")), CryptoError);
  EXPECT_THROW(Des(Bytes{}), CryptoError);
}

TEST(Des, ParityBitsAreIgnored) {
  // Keys differing only in bit 8, 16, ... (the parity positions) are the
  // same DES key.
  const Des a(from_hex("133457799bbcdff1"));
  const Des b(from_hex("123456789abcdef0"));  // parity-adjusted variant
  const Bytes pt = from_hex("0123456789abcdef");
  EXPECT_EQ(encrypt_one(a, pt), encrypt_one(b, pt));
}

TEST(Des, WeakKeyIsItsOwnInverse) {
  // For the all-zero (parity-stripped) weak key, E(E(x)) == x.
  const Des des(from_hex("0101010101010101"));
  const Bytes pt = from_hex("0123456789abcdef");
  EXPECT_EQ(encrypt_one(des, encrypt_one(des, pt)), pt);
}

TEST(Des, BlockAndKeySizeAccessors) {
  const Des des(from_hex("133457799bbcdff1"));
  EXPECT_EQ(des.block_size(), 8u);
  EXPECT_EQ(des.key_size(), 8u);
  EXPECT_EQ(des.name(), "DES");
}

TEST(Des, InPlaceOperationAliasesSafely) {
  const Des des(from_hex("133457799bbcdff1"));
  Bytes buffer = from_hex("0123456789abcdef");
  des.encrypt_block(buffer.data(), buffer.data());
  EXPECT_EQ(to_hex(buffer), "85e813540f0ab405");
  des.decrypt_block(buffer.data(), buffer.data());
  EXPECT_EQ(to_hex(buffer), "0123456789abcdef");
}

class DesProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DesProperty, DecryptInvertsEncrypt) {
  SecureRandom rng(GetParam());
  const Des des(rng.bytes(8));
  for (int i = 0; i < 32; ++i) {
    const Bytes pt = rng.bytes(8);
    EXPECT_EQ(decrypt_one(des, encrypt_one(des, pt)), pt);
  }
}

TEST_P(DesProperty, ComplementationProperty) {
  // DES(~k, ~p) == ~DES(k, p). Exercises every table and the key schedule.
  SecureRandom rng(GetParam() ^ 0xdeadbeef);
  for (int i = 0; i < 8; ++i) {
    const Bytes key = rng.bytes(8);
    const Bytes pt = rng.bytes(8);
    Bytes key_c = key, pt_c = pt;
    for (auto& b : key_c) b = static_cast<std::uint8_t>(~b);
    for (auto& b : pt_c) b = static_cast<std::uint8_t>(~b);

    Bytes ct = encrypt_one(Des(key), pt);
    for (auto& b : ct) b = static_cast<std::uint8_t>(~b);
    EXPECT_EQ(encrypt_one(Des(key_c), pt_c), ct);
  }
}

TEST_P(DesProperty, DifferentKeysDiffer) {
  SecureRandom rng(GetParam() + 99);
  const Bytes pt = rng.bytes(8);
  const Bytes key_a = rng.bytes(8);
  Bytes key_b = key_a;
  key_b[0] ^= 0x02;  // flip a non-parity bit
  EXPECT_NE(encrypt_one(Des(key_a), pt), encrypt_one(Des(key_b), pt));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DesProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 77, 1234));

}  // namespace
}  // namespace keygraphs::crypto

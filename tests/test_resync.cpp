// Keyset resynchronization: a member that missed a rekey on a lossy
// transport detects it (needs_resync) and recovers via the server's
// authenticated replay — without any rekeying of the group.
#include <gtest/gtest.h>

#include "client/client.h"
#include "common/error.h"
#include "server/server.h"
#include "sim/simulator.h"

namespace keygraphs {
namespace {

TEST(Resync, MissedRekeyDetectedAndRecovered) {
  server::ServerConfig config;
  config.tree_degree = 4;
  config.rng_seed = 91;
  transport::InProcNetwork network;
  server::GroupKeyServer server(config, network);
  sim::ClientSimulator simulator(server, network);
  sim::WorkloadGenerator workload(2);
  simulator.apply_all(workload.initial_joins(12));

  // Simulate loss: detach user 3's client while two operations happen.
  client::GroupClient& victim = simulator.client(3);
  network.detach_client(3);
  server.leave(7);
  server.join(100);
  // Reattach (delivery only; the missed messages are gone for good).
  network.attach_client(3, [&victim, &network](BytesView datagram) {
    victim.handle_datagram(datagram);
    network.resubscribe(3, victim.key_ids());
  });
  network.resubscribe(3, victim.key_ids());

  // The next operation's rekey reaches the victim but decrypts nothing:
  // its path keys are one version behind.
  server.leave(9);
  EXPECT_NE(victim.group_key()->secret, server.tree().group_key().secret);

  // Detection: feed the victim the next rekey directly and observe the
  // signal (the in-proc delivery above already returned it to the handler;
  // for the assertion we replay the current state detection explicitly).
  std::vector<Bytes> captured;
  network.detach_client(3);
  network.attach_client(3, [&captured](BytesView datagram) {
    captured.emplace_back(datagram.begin(), datagram.end());
  });
  network.resubscribe(3, victim.key_ids());
  server.join(101);
  ASSERT_FALSE(captured.empty());
  const client::RekeyOutcome outcome =
      victim.handle_datagram(captured.front());
  EXPECT_TRUE(outcome.accepted);
  EXPECT_TRUE(outcome.needs_resync);

  // Recovery: authenticated resync replays the victim's current keyset.
  EXPECT_FALSE(server.resync_with_token(3, bytes_of("forged")));
  network.detach_client(3);
  network.attach_client(3, [&victim](BytesView datagram) {
    victim.handle_datagram(datagram);
  });
  const std::uint64_t epoch_before = server.epoch();
  EXPECT_TRUE(server.resync_with_token(3, server.auth().resync_token(3)));
  EXPECT_EQ(server.epoch(), epoch_before);  // replay, not an operation
  EXPECT_EQ(victim.group_key()->secret, server.tree().group_key().secret);
  EXPECT_EQ(victim.group_key()->version, server.tree().group_key().version);
}

TEST(Resync, RecordedInStatsWithoutAdvancingEpoch) {
  server::ServerConfig config;
  config.rng_seed = 95;
  transport::NullTransport transport;
  server::GroupKeyServer server(config, transport);
  for (UserId user = 1; user <= 8; ++user) server.join(user);
  const std::uint64_t epoch_before = server.epoch();
  const std::size_t ops_before = server.stats().records().size();

  server.resync(3);
  server.resync(5);

  EXPECT_EQ(server.epoch(), epoch_before);
  ASSERT_EQ(server.stats().records().size(), ops_before + 2);
  const server::OpRecord& record = server.stats().records().back();
  EXPECT_EQ(record.kind, rekey::RekeyKind::kResync);
  EXPECT_EQ(record.messages, 1u);  // one welcome-style unicast
  // The replay wraps the member's non-individual path keys once each.
  EXPECT_EQ(record.key_encryptions,
            server.tree().keyset(5).size() - 1);
  EXPECT_GT(record.bytes, 0u);
  // Resyncs aggregate separately from joins: a kJoin summary is unchanged
  // by resync traffic.
  const server::Summary joins = server.stats().summarize(rekey::RekeyKind::kJoin);
  const server::Summary resyncs =
      server.stats().summarize(rekey::RekeyKind::kResync);
  EXPECT_EQ(joins.operations, 8u);
  EXPECT_EQ(resyncs.operations, 2u);
}

TEST(Resync, NonMemberRejected) {
  server::ServerConfig config;
  config.rng_seed = 92;
  transport::NullTransport transport;
  server::GroupKeyServer server(config, transport);
  server.join(1);
  EXPECT_THROW(server.resync(42), ProtocolError);
  EXPECT_FALSE(server.resync_with_token(42, server.auth().resync_token(42)));
}

TEST(Resync, NormalOperationNeverSignalsResync) {
  server::ServerConfig config;
  config.tree_degree = 3;
  config.rng_seed = 93;
  transport::InProcNetwork network;
  server::GroupKeyServer server(config, network);

  // Track outcomes of every delivery for one always-connected member.
  bool ever_needed_resync = false;
  client::ClientConfig member_config;
  member_config.user = 1;
  member_config.suite = config.suite;
  member_config.root = server.root_id();
  member_config.verify = false;
  client::GroupClient member(member_config, nullptr);
  member.install_individual_key(SymmetricKey{
      individual_key_id(1), 1,
      server.auth().individual_key(1, config.suite.key_size())});
  network.attach_client(1, [&](BytesView datagram) {
    const client::RekeyOutcome outcome = member.handle_datagram(datagram);
    ever_needed_resync |= outcome.needs_resync;
    network.resubscribe(1, member.key_ids());
  });
  network.resubscribe(1, member.key_ids());

  server.join(1);
  for (UserId user = 2; user <= 20; ++user) server.join(user);
  for (UserId user : {5u, 9u, 13u, 2u}) server.leave(user);
  EXPECT_FALSE(ever_needed_resync);
  EXPECT_EQ(member.group_key()->secret, server.tree().group_key().secret);
}

TEST(Resync, SignedResyncVerifies) {
  server::ServerConfig config;
  config.suite = crypto::CryptoSuite::paper_signed();
  config.signing = rekey::SigningMode::kBatch;
  config.rng_seed = 94;
  transport::InProcNetwork network;
  server::GroupKeyServer server(config, network);
  server.join(1);
  server.join(2);

  client::ClientConfig member_config;
  member_config.user = 2;
  member_config.suite = config.suite;
  member_config.root = server.root_id();
  member_config.verify = true;
  client::GroupClient member(member_config, server.public_key());
  member.install_individual_key(SymmetricKey{
      individual_key_id(2), 1,
      server.auth().individual_key(2, config.suite.key_size())});
  client::RekeyOutcome last;
  network.attach_client(2, [&member, &last](BytesView datagram) {
    last = member.handle_datagram(datagram);
  });
  server.resync(2);
  EXPECT_TRUE(last.accepted);  // batch signature on the replay verifies
  EXPECT_EQ(member.group_key()->secret, server.tree().group_key().secret);
}

}  // namespace
}  // namespace keygraphs

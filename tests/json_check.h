// Minimal JSON validity checker for exporter round-trip tests.
//
// The library has no JSON dependency by design, so tests that assert
// "every exporter line parses as JSON" bring their own parser: a strict
// recursive-descent validator over the full grammar (objects, arrays,
// strings with escapes, numbers, literals). It validates; it does not
// build a document tree.
#pragma once

#include <cctype>
#include <cstring>
#include <string_view>

namespace keygraphs::testjson {

namespace detail {

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }
  void skip_ws() {
    while (!done() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                       peek() == '\r')) {
      ++pos;
    }
  }
  bool eat(char c) {
    if (done() || peek() != c) return false;
    ++pos;
    return true;
  }
};

inline bool parse_value(Cursor& c, int depth);

inline bool parse_string(Cursor& c) {
  if (!c.eat('"')) return false;
  while (!c.done()) {
    const char ch = c.text[c.pos++];
    if (ch == '"') return true;
    if (static_cast<unsigned char>(ch) < 0x20) return false;
    if (ch == '\\') {
      if (c.done()) return false;
      const char esc = c.text[c.pos++];
      if (esc == 'u') {
        for (int i = 0; i < 4; ++i) {
          if (c.done() ||
              std::isxdigit(static_cast<unsigned char>(c.peek())) == 0) {
            return false;
          }
          ++c.pos;
        }
      } else if (std::strchr("\"\\/bfnrt", esc) == nullptr) {
        return false;
      }
    }
  }
  return false;
}

inline bool parse_number(Cursor& c) {
  const auto digit = [&] {
    return !c.done() && std::isdigit(static_cast<unsigned char>(c.peek()));
  };
  (void)c.eat('-');
  if (!digit()) return false;
  if (c.eat('0')) {
    // no leading zeros
  } else {
    while (digit()) ++c.pos;
  }
  if (c.eat('.')) {
    if (!digit()) return false;
    while (digit()) ++c.pos;
  }
  if (!c.done() && (c.peek() == 'e' || c.peek() == 'E')) {
    ++c.pos;
    if (!c.done() && (c.peek() == '+' || c.peek() == '-')) ++c.pos;
    if (!digit()) return false;
    while (digit()) ++c.pos;
  }
  return true;
}

inline bool parse_literal(Cursor& c, std::string_view word) {
  if (c.text.substr(c.pos, word.size()) != word) return false;
  c.pos += word.size();
  return true;
}

inline bool parse_object(Cursor& c, int depth) {
  if (!c.eat('{')) return false;
  c.skip_ws();
  if (c.eat('}')) return true;
  while (true) {
    c.skip_ws();
    if (!parse_string(c)) return false;
    c.skip_ws();
    if (!c.eat(':')) return false;
    if (!parse_value(c, depth + 1)) return false;
    c.skip_ws();
    if (c.eat('}')) return true;
    if (!c.eat(',')) return false;
  }
}

inline bool parse_array(Cursor& c, int depth) {
  if (!c.eat('[')) return false;
  c.skip_ws();
  if (c.eat(']')) return true;
  while (true) {
    if (!parse_value(c, depth + 1)) return false;
    c.skip_ws();
    if (c.eat(']')) return true;
    if (!c.eat(',')) return false;
  }
}

inline bool parse_value(Cursor& c, int depth) {
  if (depth > 64) return false;
  c.skip_ws();
  if (c.done()) return false;
  switch (c.peek()) {
    case '{':
      return parse_object(c, depth);
    case '[':
      return parse_array(c, depth);
    case '"':
      return parse_string(c);
    case 't':
      return parse_literal(c, "true");
    case 'f':
      return parse_literal(c, "false");
    case 'n':
      return parse_literal(c, "null");
    default:
      return parse_number(c);
  }
}

}  // namespace detail

/// True when `text` is exactly one valid JSON value (leading/trailing
/// whitespace allowed).
inline bool json_valid(std::string_view text) {
  detail::Cursor cursor{text};
  if (!detail::parse_value(cursor, 0)) return false;
  cursor.skip_ws();
  return cursor.done();
}

}  // namespace keygraphs::testjson

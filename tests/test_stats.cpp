// ServerStats aggregation — the numbers behind every reproduced table.
#include "server/stats.h"

#include <gtest/gtest.h>

namespace keygraphs::server {
namespace {

OpRecord op(rekey::RekeyKind kind, std::size_t encryptions,
            std::size_t messages, std::size_t bytes, std::size_t min_msg,
            std::size_t max_msg, double us) {
  OpRecord record;
  record.kind = kind;
  record.key_encryptions = encryptions;
  record.messages = messages;
  record.bytes = bytes;
  record.min_message = min_msg;
  record.max_message = max_msg;
  record.processing_us = us;
  return record;
}

TEST(Stats, EmptySummaryIsZeros) {
  const ServerStats stats;
  const Summary summary = stats.summarize_all();
  EXPECT_EQ(summary.operations, 0u);
  EXPECT_EQ(summary.avg_messages, 0.0);
  EXPECT_EQ(summary.min_messages, 0u);
  EXPECT_EQ(summary.min_message_bytes, 0u);
}

TEST(Stats, SplitsByKind) {
  ServerStats stats;
  stats.record(op(rekey::RekeyKind::kJoin, 6, 2, 500, 200, 300, 1000));
  stats.record(op(rekey::RekeyKind::kJoin, 8, 2, 700, 300, 400, 3000));
  stats.record(op(rekey::RekeyKind::kLeave, 12, 1, 900, 900, 900, 2000));

  const Summary joins = stats.summarize(rekey::RekeyKind::kJoin);
  EXPECT_EQ(joins.operations, 2u);
  EXPECT_DOUBLE_EQ(joins.avg_encryptions, 7.0);
  EXPECT_DOUBLE_EQ(joins.avg_processing_ms, 2.0);
  EXPECT_DOUBLE_EQ(joins.avg_total_bytes, 600.0);
  EXPECT_DOUBLE_EQ(joins.avg_message_bytes, 300.0);  // 1200 B / 4 messages
  EXPECT_EQ(joins.min_message_bytes, 200u);
  EXPECT_EQ(joins.max_message_bytes, 400u);

  const Summary leaves = stats.summarize(rekey::RekeyKind::kLeave);
  EXPECT_EQ(leaves.operations, 1u);
  EXPECT_DOUBLE_EQ(leaves.avg_messages, 1.0);

  const Summary all = stats.summarize_all();
  EXPECT_EQ(all.operations, 3u);
  EXPECT_EQ(all.max_messages, 2u);
  EXPECT_EQ(all.min_messages, 1u);
}

TEST(Stats, MessageAverageWeightsByMessageNotByOperation) {
  // Table 5 averages sizes over messages: 1 op with 10 small messages and
  // 1 op with 1 big message must not average to (small+big)/2.
  ServerStats stats;
  stats.record(op(rekey::RekeyKind::kLeave, 1, 10, 1000, 100, 100, 1));
  stats.record(op(rekey::RekeyKind::kLeave, 1, 1, 1000, 1000, 1000, 1));
  const Summary summary = stats.summarize(rekey::RekeyKind::kLeave);
  EXPECT_DOUBLE_EQ(summary.avg_message_bytes, 2000.0 / 11.0);
}

TEST(Stats, ZeroMessageOperationsHandled) {
  ServerStats stats;
  stats.record(op(rekey::RekeyKind::kLeave, 0, 0, 0, 0, 0, 5));
  const Summary summary = stats.summarize_all();
  EXPECT_EQ(summary.operations, 1u);
  EXPECT_EQ(summary.avg_message_bytes, 0.0);
  EXPECT_EQ(summary.min_messages, 0u);
}

TEST(Stats, UnsetMinMessageFieldDoesNotPoisonMinimum) {
  // Regression: an OpRecord whose messages were counted but whose
  // min_message field was never filled in (left 0 — no real encoded
  // datagram is 0 bytes) used to drag min_message_bytes down to 0.
  ServerStats stats;
  stats.record(op(rekey::RekeyKind::kLeave, 1, 2, 600, 250, 350, 1));
  OpRecord unset = op(rekey::RekeyKind::kLeave, 1, 2, 800, 0, 400, 1);
  stats.record(unset);
  const Summary summary = stats.summarize_all();
  EXPECT_EQ(summary.min_message_bytes, 250u);  // not 0
  EXPECT_EQ(summary.max_message_bytes, 400u);  // max still folds
}

TEST(Stats, ZeroMessageOpDoesNotContributeExtremes) {
  // A no-op rekey (0 messages) must leave min/max untouched rather than
  // injecting its zeroed min/max fields.
  ServerStats stats;
  stats.record(op(rekey::RekeyKind::kJoin, 2, 3, 900, 200, 500, 1));
  stats.record(op(rekey::RekeyKind::kJoin, 0, 0, 0, 0, 0, 1));
  const Summary summary = stats.summarize_all();
  EXPECT_EQ(summary.min_message_bytes, 200u);
  EXPECT_EQ(summary.max_message_bytes, 500u);
  EXPECT_EQ(summary.min_messages, 0u);  // message-count min still counts it
}

TEST(Stats, StageBreakdownAverages) {
  ServerStats stats;
  OpRecord first = op(rekey::RekeyKind::kJoin, 1, 1, 100, 100, 100, 10);
  first.stage_us[static_cast<std::size_t>(telemetry::Stage::kEncrypt)] = 4.0;
  OpRecord second = op(rekey::RekeyKind::kJoin, 1, 1, 100, 100, 100, 10);
  second.stage_us[static_cast<std::size_t>(telemetry::Stage::kEncrypt)] = 8.0;
  stats.record(first);
  stats.record(second);
  const Summary summary = stats.summarize(rekey::RekeyKind::kJoin);
  EXPECT_DOUBLE_EQ(
      summary.avg_stage_us[static_cast<std::size_t>(
          telemetry::Stage::kEncrypt)],
      6.0);
  EXPECT_DOUBLE_EQ(summary.measured_stage_us(), 6.0);
}

TEST(Stats, MeasuredStageTimeExcludesAuth) {
  ServerStats stats;
  OpRecord record = op(rekey::RekeyKind::kJoin, 1, 1, 100, 100, 100, 10);
  record.stage_us[static_cast<std::size_t>(telemetry::Stage::kAuth)] = 100.0;
  record.stage_us[static_cast<std::size_t>(telemetry::Stage::kTreeUpdate)] =
      3.0;
  record.stage_us[static_cast<std::size_t>(telemetry::Stage::kSend)] = 2.0;
  stats.record(record);
  EXPECT_DOUBLE_EQ(stats.summarize_all().measured_stage_us(), 5.0);
}

TEST(Stats, ResetClears) {
  ServerStats stats;
  stats.record(op(rekey::RekeyKind::kJoin, 1, 1, 1, 1, 1, 1));
  EXPECT_EQ(stats.size(), 1u);
  stats.reset();
  EXPECT_EQ(stats.size(), 0u);
  EXPECT_EQ(stats.summarize_all().operations, 0u);
}

TEST(Stats, BatchKindSeparate) {
  ServerStats stats;
  stats.record(op(rekey::RekeyKind::kBatch, 20, 3, 2000, 400, 1200, 100));
  EXPECT_EQ(stats.summarize(rekey::RekeyKind::kBatch).operations, 1u);
  EXPECT_EQ(stats.summarize(rekey::RekeyKind::kJoin).operations, 0u);
}

}  // namespace
}  // namespace keygraphs::server

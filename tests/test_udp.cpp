// Real UDP over loopback: socket round trips, the unicast fan-out server
// transport, and a miniature end-to-end join/rekey/leave session matching
// the paper's UDP prototype.
#include "transport/udp.h"

#include <gtest/gtest.h>

#include <array>

#include "client/client.h"
#include "common/error.h"
#include "server/server.h"
#include "telemetry/metrics.h"
#include "transport/fault.h"

namespace keygraphs::transport {
namespace {

TEST(Address, ParseAndFormat) {
  const Address address = Address::parse("10.1.2.3", 4567);
  EXPECT_EQ(address.ip, 0x0a010203u);
  EXPECT_EQ(address.port, 4567u);
  EXPECT_EQ(address.to_string(), "10.1.2.3:4567");
  EXPECT_EQ(Address::loopback(80).to_string(), "127.0.0.1:80");
  EXPECT_THROW(Address::parse("not-an-ip", 1), TransportError);
}

TEST(UdpSocket, LoopbackRoundTrip) {
  UdpSocket receiver;  // ephemeral port
  UdpSocket sender;
  const Address to = receiver.local_address();
  sender.send_to(to, bytes_of("ping"));
  const auto received = receiver.receive(2000);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->second, bytes_of("ping"));
  EXPECT_EQ(received->first.port, sender.local_address().port);
}

TEST(UdpSocket, ReceiveTimesOut) {
  UdpSocket socket;
  EXPECT_EQ(socket.receive(50), std::nullopt);
}

TEST(UdpSocket, MoveTransfersOwnership) {
  UdpSocket a;
  const Address address = a.local_address();
  UdpSocket b = std::move(a);
  EXPECT_EQ(b.local_address(), address);
}

TEST(UdpSocket, LargeDatagram) {
  UdpSocket receiver, sender;
  const Bytes big(8000, 0x5a);
  sender.send_to(receiver.local_address(), big);
  const auto received = receiver.receive(2000);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->second, big);
}

TEST(UdpServerTransport, UnicastFanOutForSubgroups) {
  UdpSocket server_socket;
  UdpSocket client1, client2;
  UdpServerTransport transport(server_socket);
  transport.register_user(1, client1.local_address());
  transport.register_user(2, client2.local_address());

  transport.deliver(rekey::Recipient::to_subgroup(42), bytes_of("multi"),
                    [] { return std::vector<UserId>{1, 2}; });
  EXPECT_EQ(transport.datagrams_sent(), 2u);
  EXPECT_EQ(client1.receive(2000)->second, bytes_of("multi"));
  EXPECT_EQ(client2.receive(2000)->second, bytes_of("multi"));

  transport.deliver(rekey::Recipient::to_user(2), bytes_of("uni"),
                    [] { return std::vector<UserId>{}; });
  EXPECT_EQ(client2.receive(2000)->second, bytes_of("uni"));
  EXPECT_EQ(client1.receive(50), std::nullopt);
}

TEST(UdpSocket, OversizedSendFailsWithoutThrowingOnTryPath) {
  UdpSocket receiver, sender;
  // Larger than any UDP payload: sendto fails with EMSGSIZE, which is not
  // transient, so the bounded retry loop gives up instead of spinning.
  const Bytes oversized(70'000, 0x11);
  EXPECT_FALSE(sender.try_send_to(receiver.local_address(), oversized));
  EXPECT_THROW(sender.send_to(receiver.local_address(), oversized),
               TransportError);
  // The socket survives the failure and keeps working for sane sizes.
  EXPECT_TRUE(sender.try_send_to(receiver.local_address(), bytes_of("ok")));
  EXPECT_EQ(receiver.receive(2000)->second, bytes_of("ok"));
}

TEST(UdpServerTransport, FanOutSurvivesAFailedRecipient) {
  UdpSocket server_socket;
  UdpSocket client1, client3;
  UdpServerTransport transport(server_socket);
  transport.register_user(1, client1.local_address());
  // Destination port 0 is invalid: sendto fails immediately (EINVAL),
  // modelling one unreachable peer in the middle of the fan-out.
  transport.register_user(2, Address::loopback(0));
  transport.register_user(3, client3.local_address());

  EXPECT_NO_THROW(transport.deliver(
      rekey::Recipient::to_subgroup(7), bytes_of("fanout"),
      [] { return std::vector<UserId>{1, 2, 3}; }));
  // The failure is counted, and every recipient after it still got served.
  EXPECT_EQ(transport.send_failures(), 1u);
  EXPECT_EQ(transport.datagrams_sent(), 2u);
  EXPECT_EQ(client1.receive(2000)->second, bytes_of("fanout"));
  EXPECT_EQ(client3.receive(2000)->second, bytes_of("fanout"));

  // A failed unicast is likewise counted, never thrown.
  EXPECT_NO_THROW(transport.deliver(rekey::Recipient::to_user(2),
                                    bytes_of("uni"),
                                    [] { return std::vector<UserId>{}; }));
  EXPECT_EQ(transport.send_failures(), 2u);
}

// Drains every queued datagram from `socket` in arrival order.
std::vector<Bytes> drain(UdpSocket& socket, int first_timeout_ms = 200) {
  std::vector<Bytes> received;
  int timeout = first_timeout_ms;
  while (auto datagram = socket.receive(timeout)) {
    received.push_back(std::move(datagram->second));
    timeout = 50;
  }
  return received;
}

TEST(UdpSocket, SendBatchDeliversEveryDatagramInOrder) {
  UdpSocket receiver, sender;
  const Address to = receiver.local_address();
  std::vector<Bytes> payloads;
  std::vector<UdpSocket::GatherItem> items;
  for (std::uint8_t i = 0; i < 10; ++i) {
    payloads.push_back(Bytes{i, static_cast<std::uint8_t>(i + 1), 0x7f});
  }
  for (const Bytes& payload : payloads) {
    items.push_back({to, payload});
  }
  EXPECT_EQ(sender.send_batch(items), payloads.size());
  EXPECT_EQ(drain(receiver), payloads);
}

TEST(UdpSocket, SendBatchSpansMultipleSendmmsgWindows) {
  // 150 datagrams cross two full kSendBatch windows plus a remainder; on
  // Linux with the gather path enabled that must cost exactly
  // ceil(150 / 64) = 3 sendmmsg calls.
  UdpSocket receiver, sender;
  const Address to = receiver.local_address();
  constexpr std::size_t kCount = 150;
  static_assert(kCount > 2 * UdpSocket::kSendBatch);
  std::vector<Bytes> payloads;
  for (std::size_t i = 0; i < kCount; ++i) {
    payloads.push_back(Bytes{static_cast<std::uint8_t>(i),
                             static_cast<std::uint8_t>(i >> 8)});
  }
  std::vector<UdpSocket::GatherItem> items;
  for (const Bytes& payload : payloads) {
    items.push_back({to, payload});
  }
  auto& calls = telemetry::Registry::global().counter(
      "transport.udp.sendmmsg_calls");
  const std::uint64_t calls_before = calls.value();
  EXPECT_EQ(sender.send_batch(items), kCount);
  EXPECT_EQ(drain(receiver), payloads);
#if defined(__linux__)
  if (sender.sendmmsg_enabled()) {
    EXPECT_EQ(calls.value() - calls_before,
              (kCount + UdpSocket::kSendBatch - 1) / UdpSocket::kSendBatch);
  }
#else
  (void)calls_before;
#endif
}

TEST(UdpSocket, SendBatchFallbackPathMatchesGatherPath) {
  UdpSocket receiver, sender;
  sender.set_sendmmsg(false);
  const Address to = receiver.local_address();
  std::vector<Bytes> payloads;
  for (std::uint8_t i = 0; i < 70; ++i) payloads.push_back(Bytes{i, 0x2a});
  std::vector<UdpSocket::GatherItem> items;
  for (const Bytes& payload : payloads) {
    items.push_back({to, payload});
  }
  auto& calls = telemetry::Registry::global().counter(
      "transport.udp.sendmmsg_calls");
  const std::uint64_t calls_before = calls.value();
  EXPECT_EQ(sender.send_batch(items), payloads.size());
  EXPECT_EQ(drain(receiver), payloads);
  EXPECT_EQ(calls.value(), calls_before);  // per-datagram path, no sendmmsg
}

TEST(UdpSocket, SendBatchSkipsFailedDatagramAndContinues) {
  // A bad destination in the middle of a burst (port 0 fails with EINVAL)
  // must not sink the datagrams after it — same contract as try_send_to
  // in the sequential fan-out.
  UdpSocket receiver, sender;
  const Address good = receiver.local_address();
  const Bytes first = bytes_of("first");
  const Bytes doomed = bytes_of("doomed");
  const Bytes last = bytes_of("last");
  const std::vector<UdpSocket::GatherItem> items = {
      {good, first}, {Address::loopback(0), doomed}, {good, last}};
  EXPECT_EQ(sender.send_batch(items), 2u);
  EXPECT_EQ(drain(receiver), (std::vector<Bytes>{first, last}));
}

TEST(UdpServerTransport, DeliverManyMatchesSequentialDeliver) {
  UdpSocket server_socket;
  UdpSocket client1, client2;
  UdpServerTransport transport(server_socket);
  transport.register_user(1, client1.local_address());
  transport.register_user(2, client2.local_address());

  const Bytes both = bytes_of("both");
  const Bytes solo1 = bytes_of("solo1");
  const Bytes solo2 = bytes_of("solo2");
  const ServerTransport::Resolver resolve_both = [] {
    return std::vector<UserId>{1, 2};
  };
  const ServerTransport::Resolver resolve_none = [] {
    return std::vector<UserId>{};
  };
  const std::vector<ServerTransport::OutboundDatagram> items = {
      {rekey::Recipient::to_subgroup(9), both, resolve_both},
      {rekey::Recipient::to_user(1), solo1, resolve_none},
      {rekey::Recipient::to_user(2), solo2, resolve_none},
  };
  transport.deliver_many(items);
  EXPECT_EQ(transport.datagrams_sent(), 4u);
  EXPECT_EQ(transport.send_failures(), 0u);
  EXPECT_EQ(drain(client1), (std::vector<Bytes>{both, solo1}));
  EXPECT_EQ(drain(client2), (std::vector<Bytes>{both, solo2}));
}

// One seeded server session over real UDP: joins and a leave, with
// deterministic fault injection (drops, duplicates, corruption) between
// the server and the socket layer. Everything a client receives — bytes
// and order — must be identical whether the socket gathers bursts through
// sendmmsg or falls back to one sendto per datagram: batching is a
// syscall optimisation, never a wire change.
TEST(UdpWireIdentity, SendmmsgAndSendtoProduceIdenticalBytes) {
  constexpr std::size_t kClients = 4;
  struct SessionResult {
    std::array<std::vector<Bytes>, kClients> received;
    std::vector<FaultEvent> trace;
  };
  const auto run_session = [&](bool gather) {
    UdpSocket server_socket;
    server_socket.set_sendmmsg(gather);
    UdpServerTransport udp(server_socket);
    FaultConfig fault_config;
    fault_config.seed = 99;
    fault_config.rule.drop = 0.2;
    fault_config.rule.duplicate = 0.2;
    fault_config.rule.corrupt = 0.1;
    fault_config.record_trace = true;
    FaultyServerTransport faulty(udp, fault_config);

    server::ServerConfig config;
    config.strategy = rekey::StrategyKind::kGroupOriented;
    config.rng_seed = 77;
    // Pinned clock: the wire carries timestamps, and identity across the
    // two sessions must only depend on the send path under test.
    config.clock_us = [] { return std::uint64_t{1'722'000'000'000'000}; };
    server::GroupKeyServer server(config, faulty);

    SessionResult result;
    std::vector<UdpSocket> clients(kClients);
    for (std::size_t i = 0; i < kClients; ++i) {
      const auto user = static_cast<UserId>(i + 1);
      udp.register_user(user, clients[i].local_address());
      EXPECT_EQ(server.join_with_token(user, server.auth().join_token(user)),
                server::JoinResult::kGranted);
    }
    EXPECT_TRUE(server.leave_with_token(2, server.auth().leave_token(2)));
    faulty.engine().flush();
    for (std::size_t i = 0; i < kClients; ++i) {
      result.received[i] = drain(clients[i]);
    }
    result.trace = faulty.engine().trace();
    return result;
  };

  const SessionResult gathered = run_session(true);
  const SessionResult sequential = run_session(false);
  EXPECT_EQ(gathered.trace, sequential.trace);
  ASSERT_FALSE(gathered.trace.empty());
  for (std::size_t i = 0; i < kClients; ++i) {
    ASSERT_FALSE(gathered.received[i].empty()) << "client " << i + 1;
    EXPECT_EQ(gathered.received[i], sequential.received[i])
        << "client " << i + 1;
  }
}

TEST(UdpServerTransport, UnknownUsersSkipped) {
  UdpSocket server_socket;
  UdpServerTransport transport(server_socket);
  EXPECT_NO_THROW(transport.deliver(rekey::Recipient::to_user(5),
                                    bytes_of("x"),
                                    [] { return std::vector<UserId>{}; }));
  transport.register_user(5, Address::loopback(9));
  transport.unregister_user(5);
  EXPECT_NO_THROW(transport.deliver(rekey::Recipient::to_user(5),
                                    bytes_of("x"),
                                    [] { return std::vector<UserId>{}; }));
  EXPECT_EQ(transport.datagrams_sent(), 0u);
}

// Miniature networked session: the paper's prototype over loopback UDP.
// Two clients join via authenticated requests, exchange a confidential
// message, one leaves, and forward secrecy holds over the real wire.
TEST(UdpEndToEnd, JoinRekeyLeaveSession) {
  UdpSocket server_socket;
  UdpServerTransport transport(server_socket);
  server::ServerConfig config;
  config.strategy = rekey::StrategyKind::kGroupOriented;
  config.rng_seed = 33;
  server::GroupKeyServer server(config, transport);

  struct NetClient {
    UdpSocket socket;
    std::unique_ptr<client::GroupClient> logic;
  };
  auto make_client = [&](UserId user) {
    auto net = std::make_unique<NetClient>();
    client::ClientConfig client_config;
    client_config.user = user;
    client_config.suite = server.config().suite;
    client_config.root = server.root_id();
    client_config.verify = false;
    net->logic =
        std::make_unique<client::GroupClient>(client_config, nullptr);
    net->logic->install_individual_key(SymmetricKey{
        individual_key_id(user), 1,
        server.auth().individual_key(user, server.config().suite.key_size())});
    return net;
  };

  auto pump = [&](NetClient& net) {
    std::size_t handled = 0;
    while (auto datagram = net.socket.receive(100)) {
      net.logic->handle_datagram(datagram->second);
      ++handled;
    }
    return handled;
  };

  auto alice = make_client(1);
  auto bob = make_client(2);
  transport.register_user(1, alice->socket.local_address());
  transport.register_user(2, bob->socket.local_address());

  ASSERT_EQ(server.join_with_token(1, server.auth().join_token(1)),
            server::JoinResult::kGranted);
  ASSERT_EQ(server.join_with_token(2, server.auth().join_token(2)),
            server::JoinResult::kGranted);
  EXPECT_GE(pump(*alice), 1u);
  EXPECT_GE(pump(*bob), 1u);

  // Both converged on the group key; confidential chat works on the wire.
  ASSERT_TRUE(alice->logic->group_key().has_value());
  ASSERT_TRUE(bob->logic->group_key().has_value());
  EXPECT_EQ(alice->logic->group_key()->secret,
            bob->logic->group_key()->secret);
  const Bytes sealed = alice->logic->seal_application(bytes_of("hi bob"));
  EXPECT_EQ(bob->logic->open_application(sealed), bytes_of("hi bob"));

  // Bob leaves; Alice rekeys; Bob's stale key no longer works.
  ASSERT_TRUE(server.leave_with_token(2, server.auth().leave_token(2)));
  transport.unregister_user(2);
  EXPECT_GE(pump(*alice), 1u);
  EXPECT_NE(alice->logic->group_key()->secret,
            bob->logic->group_key()->secret);
  const Bytes post_leave = alice->logic->seal_application(bytes_of("alone"));
  EXPECT_THROW(bob->logic->open_application(post_leave), Error);
}

}  // namespace
}  // namespace keygraphs::transport

// Server-side NACK service: the retransmit window replays sealed datagrams
// for in-window gaps, degrades to an authenticated resync beyond it, and
// the per-user token bucket caps recovery traffic — all on an injected
// clock, with no plan/seal work on the retransmit path.
#include "rekey/retransmit.h"

#include <gtest/gtest.h>

#include "client/client.h"
#include "common/error.h"
#include "server/locked_server.h"
#include "server/server.h"
#include "transport/inproc.h"

namespace keygraphs {
namespace {

/// A member client wired to the in-proc network that applies everything
/// delivered to it (and keeps its multicast subscriptions current).
struct Member {
  Member(server::GroupKeyServer& server, transport::InProcNetwork& network,
         UserId user)
      : network_(network), user_(user) {
    client::ClientConfig config;
    config.user = user;
    config.suite = server.config().suite;
    config.group = server.config().group;
    config.root = server.root_id();
    config.verify = false;
    config.rng_seed = user;
    client_ = std::make_unique<client::GroupClient>(config, nullptr);
    client_->install_individual_key(SymmetricKey{
        individual_key_id(user), 1,
        server.auth().individual_key(user, config.suite.key_size())});
    attach();
  }

  void attach() {
    network_.attach_client(user_, [this](BytesView datagram) {
      client_->handle_datagram(datagram);
      network_.resubscribe(user_, client_->key_ids());
    });
    network_.resubscribe(user_, client_->key_ids());
  }

  void detach() { network_.detach_client(user_); }

  client::GroupClient& operator*() { return *client_; }
  client::GroupClient* operator->() { return client_.get(); }

  transport::InProcNetwork& network_;
  UserId user_;
  std::unique_ptr<client::GroupClient> client_;
};

server::ServerConfig base_config(std::uint64_t* clock_us) {
  server::ServerConfig config;
  config.tree_degree = 3;
  config.rng_seed = 71;
  config.clock_us = [clock_us] { return *clock_us; };
  return config;
}

TEST(Retransmit, InWindowGapServedFromSealedRing) {
  std::uint64_t now = 1'000'000;
  transport::InProcNetwork network;
  server::GroupKeyServer server(base_config(&now), network);
  Member victim(server, network, 2);
  for (UserId user = 1; user <= 8; ++user) server.join(user);
  ASSERT_EQ(victim->applied_epoch(), server.epoch());

  // The victim goes deaf across two operations.
  victim.detach();
  server.leave(5);
  server.join(9);
  victim.attach();
  EXPECT_LT(victim->applied_epoch(), server.epoch());

  // NACK: both missed epochs are still in the window, so the server
  // replays the sealed datagrams unicast and the victim catches up with
  // no resync and no epoch movement on the server.
  const std::uint64_t epoch_before = server.epoch();
  const std::size_t resyncs_before =
      server.stats().summarize(rekey::RekeyKind::kResync).operations;
  EXPECT_EQ(server.handle_nack(2, victim->applied_epoch()),
            server::NackOutcome::kRetransmitted);
  EXPECT_EQ(server.epoch(), epoch_before);
  EXPECT_EQ(server.stats().summarize(rekey::RekeyKind::kResync).operations,
            resyncs_before);
  EXPECT_EQ(victim->applied_epoch(), server.epoch());
  EXPECT_EQ(victim->group_key()->secret, server.tree().group_key().secret);
}

TEST(Retransmit, NackForNothingIsACheapNoOp) {
  std::uint64_t now = 1'000'000;
  transport::InProcNetwork network;
  server::GroupKeyServer server(base_config(&now), network);
  Member member(server, network, 1);
  for (UserId user = 1; user <= 4; ++user) server.join(user);
  const std::size_t deliveries_before = network.deliveries();
  // Fully caught up: served as a retransmission of zero datagrams.
  EXPECT_EQ(server.handle_nack(1, server.epoch()),
            server::NackOutcome::kRetransmitted);
  EXPECT_EQ(network.deliveries(), deliveries_before);
}

TEST(Retransmit, OutOfWindowGapFallsBackToResync) {
  std::uint64_t now = 1'000'000;
  server::ServerConfig config = base_config(&now);
  config.retransmit_window = 2;
  transport::InProcNetwork network;
  server::GroupKeyServer server(config, network);
  Member victim(server, network, 2);
  for (UserId user = 1; user <= 4; ++user) server.join(user);

  victim.detach();
  server.leave(3);
  server.join(5);
  server.join(6);  // three missed epochs > window of 2
  victim.attach();

  EXPECT_EQ(server.handle_nack(2, victim->applied_epoch()),
            server::NackOutcome::kResynced);
  EXPECT_EQ(server.stats().summarize(rekey::RekeyKind::kResync).operations,
            1u);
  // The keyset replay jump-syncs the victim over the whole gap.
  EXPECT_EQ(victim->applied_epoch(), server.epoch());
  EXPECT_EQ(victim->group_key()->secret, server.tree().group_key().secret);
}

TEST(Retransmit, DisabledWindowAlwaysResyncs) {
  std::uint64_t now = 1'000'000;
  server::ServerConfig config = base_config(&now);
  config.retransmit_window = 0;
  transport::InProcNetwork network;
  server::GroupKeyServer server(config, network);
  Member victim(server, network, 1);
  server.join(1);
  server.join(2);
  EXPECT_FALSE(server.retransmit_window().enabled());
  EXPECT_EQ(server.handle_nack(1, server.epoch()),
            server::NackOutcome::kResynced);
}

TEST(Retransmit, RateLimiterCapsPerUserRequests) {
  std::uint64_t now = 1'000'000;
  server::ServerConfig config = base_config(&now);
  config.recovery_rate = 1.0;  // one request per second after the burst
  config.recovery_burst = 2.0;
  transport::InProcNetwork network;
  server::GroupKeyServer server(config, network);
  Member member(server, network, 1);
  server.join(1);
  server.join(2);

  EXPECT_EQ(server.handle_nack(1, server.epoch()),
            server::NackOutcome::kRetransmitted);
  EXPECT_EQ(server.handle_nack(1, server.epoch()),
            server::NackOutcome::kRetransmitted);
  // Burst spent; same instant -> dropped. Another user is unaffected.
  EXPECT_EQ(server.handle_nack(1, server.epoch()),
            server::NackOutcome::kRateLimited);
  EXPECT_EQ(server.handle_nack(2, server.epoch()),
            server::NackOutcome::kRetransmitted);
  // One second of refill buys exactly one more request.
  now += 1'000'000;
  EXPECT_EQ(server.handle_nack(1, server.epoch()),
            server::NackOutcome::kRetransmitted);
  EXPECT_EQ(server.handle_nack(1, server.epoch()),
            server::NackOutcome::kRateLimited);
}

TEST(Retransmit, WindowTracksDispatchedEpochsButNotResyncs) {
  std::uint64_t now = 1'000'000;
  server::ServerConfig config = base_config(&now);
  config.retransmit_window = 4;
  transport::NullTransport transport;
  server::GroupKeyServer server(config, transport);
  for (UserId user = 1; user <= 6; ++user) server.join(user);

  const rekey::RetransmitWindow& window = server.retransmit_window();
  EXPECT_EQ(window.capacity(), 4u);
  EXPECT_EQ(window.size(), 4u);  // six epochs recorded, oldest two evicted
  EXPECT_EQ(window.newest(), server.epoch());
  EXPECT_EQ(window.oldest(), server.epoch() - 3);

  // A resync replays the current epoch without advancing it; recording it
  // would overwrite that epoch's real datagrams in the ring.
  server.resync(3);
  EXPECT_EQ(window.newest(), server.epoch());
  EXPECT_EQ(window.size(), 4u);
}

TEST(Retransmit, NackRequiresMembershipAndToken) {
  std::uint64_t now = 1'000'000;
  transport::NullTransport transport;
  server::GroupKeyServer server(base_config(&now), transport);
  server.join(1);
  EXPECT_THROW(server.handle_nack(42, 0), ProtocolError);
  EXPECT_FALSE(
      server.nack_with_token(1, bytes_of("forged"), 0).has_value());
  EXPECT_FALSE(
      server.nack_with_token(42, server.auth().resync_token(42), 0)
          .has_value());
  EXPECT_TRUE(
      server.nack_with_token(1, server.auth().resync_token(1), server.epoch())
          .has_value());
}

TEST(Retransmit, LockedServerServesNacks) {
  std::uint64_t now = 1'000'000;
  server::ServerConfig config = base_config(&now);
  config.retransmit_window = 1;  // force the resync fallback on a 2-gap
  transport::InProcNetwork network;
  server::LockedGroupKeyServer server(config, network);

  client::ClientConfig member_config;
  member_config.user = 2;
  member_config.suite = config.suite;
  member_config.root = server.tree_view()->root_id();
  member_config.verify = false;
  client::GroupClient victim(member_config, nullptr);
  victim.install_individual_key(SymmetricKey{
      individual_key_id(2), 1,
      server.auth().individual_key(2, config.suite.key_size())});
  network.attach_client(2, [&](BytesView datagram) {
    victim.handle_datagram(datagram);
    network.resubscribe(2, victim.key_ids());
  });

  for (UserId user = 1; user <= 4; ++user) server.join(user);
  ASSERT_EQ(victim.applied_epoch(), server.epoch());

  EXPECT_FALSE(
      server.nack_with_token(2, bytes_of("forged"), 0).has_value());

  network.detach_client(2);
  server.leave(3);
  server.join(5);
  network.attach_client(2, [&](BytesView datagram) {
    victim.handle_datagram(datagram);
    network.resubscribe(2, victim.key_ids());
  });

  const auto outcome = server.nack_with_token(
      2, server.auth().resync_token(2), victim.applied_epoch());
  ASSERT_TRUE(outcome.has_value());
  EXPECT_EQ(*outcome, server::NackOutcome::kResynced);
  EXPECT_EQ(victim.applied_epoch(), server.epoch());
  EXPECT_EQ(victim.group_key()->secret,
            server.tree_view()->group_key().secret);

  // Caught up again: the next NACK is served straight from the window.
  const auto cheap = server.nack_with_token(
      2, server.auth().resync_token(2), victim.applied_epoch());
  ASSERT_TRUE(cheap.has_value());
  EXPECT_EQ(*cheap, server::NackOutcome::kRetransmitted);
}

TEST(RecoveryLimiter, TokenBucketRefillsOnInjectedClock) {
  rekey::RecoveryLimiter limiter(2.0, 2.0);  // 2/s, burst 2
  EXPECT_TRUE(limiter.admit(1, 0));
  EXPECT_TRUE(limiter.admit(1, 0));
  EXPECT_FALSE(limiter.admit(1, 0));
  // 500 ms refills one token at 2/s.
  EXPECT_TRUE(limiter.admit(1, 500'000));
  EXPECT_FALSE(limiter.admit(1, 500'000));
  // Buckets are per user.
  EXPECT_TRUE(limiter.admit(2, 500'000));
  // forget() restores the full burst.
  limiter.forget(1);
  EXPECT_TRUE(limiter.admit(1, 500'000));
  EXPECT_TRUE(limiter.admit(1, 500'000));
  EXPECT_FALSE(limiter.admit(1, 500'000));
}

TEST(RecoveryLimiter, NonPositiveRateDisablesLimiting) {
  rekey::RecoveryLimiter limiter(0.0, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(limiter.admit(7, 0));
  // A negative rate means the same thing as zero, not a NaN bucket.
  rekey::RecoveryLimiter negative(-3.0, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(negative.admit(7, 0));
  // Zero rate admits even with a zero-capacity burst.
  rekey::RecoveryLimiter no_burst(0.0, 0.0);
  EXPECT_TRUE(no_burst.admit(7, 0));
}

TEST(RecoveryLimiter, BackwardsClockMintsNoTokens) {
  rekey::RecoveryLimiter limiter(1.0, 2.0);  // 1/s, burst 2
  EXPECT_TRUE(limiter.admit(1, 10'000'000));
  EXPECT_TRUE(limiter.admit(1, 10'000'000));
  EXPECT_FALSE(limiter.admit(1, 10'000'000));
  // The clock steps back (NTP slew, VM migration): a naive
  // now - refilled_us underflows to ~584,000 years of refill. The bucket
  // must stay empty instead.
  EXPECT_FALSE(limiter.admit(1, 9'000'000));
  EXPECT_FALSE(limiter.admit(1, 0));
  // Forward progress from the high-water mark refills normally again.
  EXPECT_TRUE(limiter.admit(1, 11'000'000));
}

TEST(RecoveryLimiter, ExactRefillBoundaryAfterBurstExhaustion) {
  rekey::RecoveryLimiter limiter(4.0, 3.0);  // 4/s, burst 3
  // Drain the whole burst in one instant.
  EXPECT_TRUE(limiter.admit(5, 1'000'000));
  EXPECT_TRUE(limiter.admit(5, 1'000'000));
  EXPECT_TRUE(limiter.admit(5, 1'000'000));
  EXPECT_FALSE(limiter.admit(5, 1'000'000));
  // One token takes exactly 250 ms at 4/s. One microsecond early: still
  // dry (a failed admit at 1.249999s advances refilled_us, so the
  // boundary probe below must cover the remaining 1 µs).
  EXPECT_FALSE(limiter.admit(5, 1'249'999));
  EXPECT_TRUE(limiter.admit(5, 1'250'000));
  EXPECT_FALSE(limiter.admit(5, 1'250'000));
  // Refill never overshoots the burst cap: after a long idle gap the
  // bucket holds exactly `burst` tokens, not rate * elapsed.
  EXPECT_TRUE(limiter.admit(5, 100'000'000));
  EXPECT_TRUE(limiter.admit(5, 100'000'000));
  EXPECT_TRUE(limiter.admit(5, 100'000'000));
  EXPECT_FALSE(limiter.admit(5, 100'000'000));
}

}  // namespace
}  // namespace keygraphs

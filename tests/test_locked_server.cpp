// LockedGroupKeyServer under real thread contention: concurrent joins and
// leaves from several threads must leave a consistent tree (the invariant
// checker and membership counts catch lost updates or torn state).
#include "server/locked_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/error.h"
#include "transport/transport.h"

namespace keygraphs::server {
namespace {

TEST(LockedServer, SingleThreadBehavesLikePlainServer) {
  transport::NullTransport transport;
  ServerConfig config;
  config.rng_seed = 3;
  LockedGroupKeyServer server(config, transport);
  EXPECT_EQ(server.join(1), JoinResult::kGranted);
  EXPECT_EQ(server.join(1), JoinResult::kDuplicate);
  EXPECT_TRUE(server.has_member(1));
  server.leave(1);
  EXPECT_FALSE(server.has_member(1));
  EXPECT_EQ(server.epoch(), 2u);
}

TEST(LockedServer, TokenPathsWork) {
  transport::NullTransport transport;
  ServerConfig config;
  config.rng_seed = 4;
  LockedGroupKeyServer server(config, transport);
  EXPECT_EQ(server.join_with_token(5, server.auth().join_token(5)),
            JoinResult::kGranted);
  EXPECT_TRUE(server.leave_with_token(5, server.auth().leave_token(5)));
}

TEST(LockedServer, ConcurrentJoinsAllLand) {
  transport::NullTransport transport;
  ServerConfig config;
  config.rng_seed = 5;
  LockedGroupKeyServer server(config, transport);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  std::atomic<int> granted{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, &granted, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const UserId user =
            static_cast<UserId>(t) * 1000 + static_cast<UserId>(i) + 1;
        if (server.join(user) == JoinResult::kGranted) {
          granted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(granted.load(), kThreads * kPerThread);
  EXPECT_EQ(server.member_count(),
            static_cast<std::size_t>(kThreads * kPerThread));
  server.with_server([](const GroupKeyServer& inner) {
    inner.tree().check_invariants();
    return 0;
  });
}

TEST(LockedServer, ConcurrentMixedChurnStaysConsistent) {
  transport::NullTransport transport;
  ServerConfig config;
  config.rng_seed = 6;
  LockedGroupKeyServer server(config, transport);
  // Pre-populate a disjoint range per thread; each thread churns only its
  // own users, so every leave targets a member.
  constexpr int kThreads = 6;
  constexpr int kUsersPerThread = 30;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kUsersPerThread; ++i) {
      server.join(static_cast<UserId>(t) * 1000 + static_cast<UserId>(i) +
                  1);
    }
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, t] {
      for (int round = 0; round < 20; ++round) {
        const UserId base = static_cast<UserId>(t) * 1000;
        const UserId user = base + static_cast<UserId>(round % 30) + 1;
        server.leave(user);
        server.join(user);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(server.member_count(),
            static_cast<std::size_t>(kThreads * kUsersPerThread));
  server.with_server([](const GroupKeyServer& inner) {
    inner.tree().check_invariants();
    return 0;
  });
  // Epoch counts every operation exactly once.
  EXPECT_EQ(server.epoch(), static_cast<std::uint64_t>(
                                kThreads * kUsersPerThread +  // initial
                                kThreads * 20 * 2));          // churn
}

// The pipeline's narrow critical section under real contention: 8 threads
// mixing joins, leaves and resyncs while the seal phase itself fans out
// across 4 pool threads. This is the TSan target for the plan/seal/dispatch
// split — any server state touched outside the facade's mutex shows up here.
TEST(LockedServer, EightThreadChurnWithParallelSeal) {
  transport::NullTransport transport;
  ServerConfig config;
  config.rng_seed = 8;
  config.seal_threads = 4;
  config.suite = crypto::CryptoSuite::paper_signed();
  config.signing = rekey::SigningMode::kBatch;
  LockedGroupKeyServer server(config, transport);

  constexpr int kThreads = 8;
  constexpr int kUsersPerThread = 12;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kUsersPerThread; ++i) {
      server.join(static_cast<UserId>(t) * 1000 + static_cast<UserId>(i) + 1);
    }
  }
  const std::uint64_t epoch_before = server.epoch();

  std::vector<std::thread> threads;
  constexpr int kRounds = 10;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, t] {
      const UserId base = static_cast<UserId>(t) * 1000;
      for (int round = 0; round < kRounds; ++round) {
        const UserId user = base + static_cast<UserId>(round % 12) + 1;
        server.resync(user);  // replay: must not advance the epoch
        server.leave(user);
        server.join(user);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(server.member_count(),
            static_cast<std::size_t>(kThreads * kUsersPerThread));
  server.with_server([](const GroupKeyServer& inner) {
    inner.tree().check_invariants();
    return 0;
  });
  // Leaves and joins each advance the epoch once; resyncs never do.
  EXPECT_EQ(server.epoch(), epoch_before + kThreads * kRounds * 2);
  // Every operation dispatched exactly once, in ticket order; the stats
  // ledger must account all of them (initial joins + churn + resyncs).
  server.with_server([&](const GroupKeyServer& inner) {
    EXPECT_EQ(inner.stats().records().size(),
              static_cast<std::size_t>(kThreads * kUsersPerThread +
                                       kThreads * kRounds * 3));
    return 0;
  });
}

TEST(LockedServer, SnapshotWhileChurning) {
  transport::NullTransport transport;
  ServerConfig config;
  config.rng_seed = 7;
  LockedGroupKeyServer server(config, transport);
  for (UserId user = 1; user <= 32; ++user) server.join(user);

  std::atomic<bool> stop{false};
  std::thread churner([&server, &stop] {
    UserId next = 1000;
    while (!stop.load(std::memory_order_relaxed)) {
      server.join(next);
      server.leave(next);
      ++next;
    }
  });
  // Snapshots taken mid-churn must always be internally consistent
  // (deserialize validates every invariant).
  for (int i = 0; i < 50; ++i) {
    const Bytes snapshot = server.snapshot();
    transport::NullTransport replica_transport;
    LockedGroupKeyServer replica(config, replica_transport);
    EXPECT_NO_THROW(replica.restore(snapshot));
    EXPECT_GE(replica.member_count(), 32u);
  }
  stop.store(true);
  churner.join();
}

}  // namespace
}  // namespace keygraphs::server

// CBC mode with PKCS#7 padding: round trips across sizes and ciphers,
// deterministic-IV known answers, and padding/tamper rejection.
#include "crypto/cbc.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "crypto/aes.h"
#include "crypto/des.h"
#include "crypto/random.h"

namespace keygraphs::crypto {
namespace {

CbcCipher des_cbc() {
  return CbcCipher(std::make_shared<Des>(from_hex("133457799bbcdff1")));
}

CbcCipher aes_cbc() {
  return CbcCipher(
      std::make_shared<Aes128>(from_hex("000102030405060708090a0b0c0d0e0f")));
}

TEST(Cbc, RoundTripBasic) {
  SecureRandom rng(1);
  const CbcCipher cbc = des_cbc();
  const Bytes pt = bytes_of("attack at dawn");
  EXPECT_EQ(cbc.decrypt(cbc.encrypt(pt, rng)), pt);
}

TEST(Cbc, OutputStartsWithIvAndIsBlockAligned) {
  SecureRandom rng(2);
  const CbcCipher cbc = des_cbc();
  const Bytes ct = cbc.encrypt(bytes_of("xyz"), rng);
  EXPECT_EQ(ct.size() % 8, 0u);
  EXPECT_GE(ct.size(), 16u);  // IV + at least one block
}

TEST(Cbc, CiphertextSizePredicted) {
  SecureRandom rng(3);
  const CbcCipher cbc = aes_cbc();
  for (std::size_t n : {0u, 1u, 15u, 16u, 17u, 31u, 32u, 100u}) {
    EXPECT_EQ(cbc.encrypt(Bytes(n, 0x42), rng).size(), cbc.ciphertext_size(n))
        << "plaintext size " << n;
  }
}

TEST(Cbc, ExactMultipleGetsFullPaddingBlock) {
  SecureRandom rng(4);
  const CbcCipher cbc = des_cbc();
  // 8-byte plaintext => IV + 2 blocks (PKCS#7 always pads).
  EXPECT_EQ(cbc.encrypt(Bytes(8, 0xaa), rng).size(), 24u);
}

TEST(Cbc, DeterministicIvKnownStructure) {
  // Same plaintext+IV => same ciphertext; different IV => different.
  const CbcCipher cbc = des_cbc();
  const Bytes pt = bytes_of("fixed payload!");
  const Bytes iv1 = from_hex("0000000000000000");
  const Bytes iv2 = from_hex("0000000000000001");
  EXPECT_EQ(cbc.encrypt_with_iv(pt, iv1), cbc.encrypt_with_iv(pt, iv1));
  EXPECT_NE(cbc.encrypt_with_iv(pt, iv1), cbc.encrypt_with_iv(pt, iv2));
}

TEST(Cbc, Sp80038aAesKnownAnswer) {
  // NIST SP 800-38A F.2.1 (AES-128-CBC), first block.
  const CbcCipher cbc(std::make_shared<Aes128>(
      from_hex("2b7e151628aed2a6abf7158809cf4f3c")));
  const Bytes iv = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
  const Bytes ct = cbc.encrypt_with_iv(pt, iv);
  // Layout: IV || block1 || padding block. Check block 1 against NIST.
  ASSERT_GE(ct.size(), 32u);
  EXPECT_EQ(to_hex(Bytes(ct.begin() + 16, ct.begin() + 32)),
            "7649abac8119b246cee98e9b12e9197d");
}

TEST(Cbc, RandomIvMakesEncryptionNondeterministic) {
  SecureRandom rng(5);
  const CbcCipher cbc = des_cbc();
  const Bytes pt = bytes_of("same plaintext");
  EXPECT_NE(cbc.encrypt(pt, rng), cbc.encrypt(pt, rng));
}

TEST(Cbc, RejectsBadIvSize) {
  const CbcCipher cbc = des_cbc();
  EXPECT_THROW(cbc.encrypt_with_iv(bytes_of("x"), Bytes(7, 0)), CryptoError);
  EXPECT_THROW(cbc.encrypt_with_iv(bytes_of("x"), Bytes(16, 0)), CryptoError);
}

TEST(Cbc, RejectsTruncatedCiphertext) {
  SecureRandom rng(6);
  const CbcCipher cbc = des_cbc();
  Bytes ct = cbc.encrypt(bytes_of("hello"), rng);
  ct.resize(ct.size() - 1);
  EXPECT_THROW(cbc.decrypt(ct), CryptoError);
  EXPECT_THROW(cbc.decrypt(Bytes(8, 0)), CryptoError);  // IV only, no body
  EXPECT_THROW(cbc.decrypt(Bytes{}), CryptoError);
}

TEST(Cbc, TamperedLastBlockFailsPaddingWithHighProbability) {
  SecureRandom rng(7);
  const CbcCipher cbc = aes_cbc();
  const Bytes pt = bytes_of("some secret value");
  int rejected = 0;
  for (int trial = 0; trial < 64; ++trial) {
    Bytes ct = cbc.encrypt(pt, rng);
    ct[ct.size() - 1 - static_cast<std::size_t>(rng.uniform(16))] ^= 0x01;
    try {
      const Bytes out = cbc.decrypt(ct);
      EXPECT_NE(out, pt);  // silently wrong is possible but must differ
    } catch (const CryptoError&) {
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 32);  // most single-bit tampers break the padding
}

TEST(Cbc, NullCipherRejected) {
  EXPECT_THROW(CbcCipher(nullptr), CryptoError);
}

class CbcSizes
    : public ::testing::TestWithParam<std::tuple<CipherAlgorithm, int>> {};

TEST_P(CbcSizes, RoundTrips) {
  const auto [algorithm, size] = GetParam();
  SecureRandom rng(static_cast<std::uint64_t>(size) + 100);
  const CbcCipher cbc(
      make_cipher(algorithm, rng.bytes(cipher_key_size(algorithm))));
  const Bytes pt = rng.bytes(static_cast<std::size_t>(size));
  EXPECT_EQ(cbc.decrypt(cbc.encrypt(pt, rng)), pt);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndCiphers, CbcSizes,
    ::testing::Combine(::testing::Values(CipherAlgorithm::kDes,
                                         CipherAlgorithm::kAes128),
                       ::testing::Values(0, 1, 7, 8, 9, 15, 16, 17, 24, 63,
                                         64, 65, 1000)));

}  // namespace
}  // namespace keygraphs::crypto

// Plan/seal/dispatch pipeline: the thread pool primitive, the executor, and
// the keystone determinism guarantee — a server sealing with N threads puts
// byte-identical datagrams on the wire, in the same order, as one sealing
// serially. All randomness (IVs, new keys) is drawn at plan time, so the
// RNG stream never depends on seal_threads.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/thread_pool.h"
#include "rekey/executor.h"
#include "rekey/plan.h"
#include "server/server.h"
#include "transport/transport.h"

namespace keygraphs {
namespace {

// --- ThreadPool -------------------------------------------------------

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.workers(), 0u);
  int sum = 0;
  pool.parallel_for(10, [&sum](std::size_t i) {
    sum += static_cast<int>(i);  // inline on the caller: no race
  });
  EXPECT_EQ(sum, 45);
}

TEST(ThreadPool, EmptyAndSingleItemBatches) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "no indices to run"; });
  std::atomic<int> runs{0};
  pool.parallel_for(1, [&runs](std::size_t i) {
    EXPECT_EQ(i, 0u);
    runs.fetch_add(1);
  });
  EXPECT_EQ(runs.load(), 1);
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&completed](std::size_t i) {
                          if (i == 17) throw Error("boom");
                          completed.fetch_add(1, std::memory_order_relaxed);
                        }),
      Error);
  // The batch still drained: every non-throwing index ran.
  EXPECT_EQ(completed.load(), 63);
}

TEST(ThreadPool, ConcurrentCallersShareOnePool) {
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr std::size_t kItems = 100;
  std::vector<std::atomic<std::size_t>> counts(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &counts, c] {
      for (int round = 0; round < 10; ++round) {
        pool.parallel_for(kItems, [&counts, c](std::size_t) {
          counts[c].fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& caller : callers) caller.join();
  for (const auto& count : counts) EXPECT_EQ(count.load(), 10 * kItems);
}

// --- Planner / executor edges -----------------------------------------

TEST(Executor, EmptyPlanSealsToNothing) {
  crypto::SecureRandom rng(1);
  rekey::RekeyPlanner planner(crypto::CipherAlgorithm::kDes, rng);
  const rekey::RekeyPlan plan = planner.take({});
  rekey::RekeyExecutor executor(crypto::CipherAlgorithm::kDes, 4);
  const rekey::RekeySealer sealer(rekey::SigningMode::kNone,
                                  crypto::DigestAlgorithm::kNone, nullptr);
  EXPECT_TRUE(executor.seal(plan, sealer).empty());
}

TEST(Planner, WrapRequiresTargets) {
  crypto::SecureRandom rng(1);
  rekey::RekeyPlanner planner(crypto::CipherAlgorithm::kDes, rng);
  const SymmetricKey wrapping{1, 1, rng.bytes(8)};
  EXPECT_THROW(planner.wrap(wrapping, {}), Error);
}

TEST(Snapshot, MissingKeyThrows) {
  rekey::KeySnapshot snapshot;
  EXPECT_THROW(snapshot.secret(KeyRef{9, 1}), Error);
}

// --- Determinism guard ------------------------------------------------

struct Sent {
  rekey::Recipient to;
  Bytes datagram;
};

class RecordingTransport final : public transport::ServerTransport {
 public:
  void deliver(const rekey::Recipient& to, BytesView datagram,
               const Resolver& resolve) override {
    (void)resolve;
    sent_.push_back(Sent{to, Bytes(datagram.begin(), datagram.end())});
  }

  [[nodiscard]] const std::vector<Sent>& sent() const noexcept {
    return sent_;
  }

 private:
  std::vector<Sent> sent_;
};

server::ServerConfig signed_config(rekey::StrategyKind strategy,
                                   std::size_t seal_threads) {
  server::ServerConfig config;
  config.suite = crypto::CryptoSuite::paper_signed();
  config.signing = rekey::SigningMode::kBatch;
  config.strategy = strategy;
  config.rng_seed = 1998;
  config.seal_threads = seal_threads;
  // Signatures cover the timestamp; pin the clock so the only remaining
  // source of variation would be the seal schedule itself.
  config.clock_us = [] { return std::uint64_t{863913600000000}; };
  return config;
}

void run_churn(server::GroupKeyServer& server) {
  for (UserId user = 1; user <= 16; ++user) server.join(user);
  server.leave(5);
  server.leave(12);
  server.join(100);
  server.resync(7);
  server.batch({200, 201, 202}, {3, 9});
}

void expect_identical_wire(rekey::StrategyKind strategy) {
  RecordingTransport serial_wire;
  server::GroupKeyServer serial(signed_config(strategy, 1), serial_wire);
  run_churn(serial);

  RecordingTransport parallel_wire;
  server::GroupKeyServer parallel(signed_config(strategy, 4), parallel_wire);
  run_churn(parallel);

  EXPECT_EQ(serial.epoch(), parallel.epoch());
  ASSERT_EQ(serial_wire.sent().size(), parallel_wire.sent().size());
  for (std::size_t i = 0; i < serial_wire.sent().size(); ++i) {
    const Sent& a = serial_wire.sent()[i];
    const Sent& b = parallel_wire.sent()[i];
    EXPECT_EQ(a.to.kind, b.to.kind) << "message " << i;
    EXPECT_EQ(a.to.user, b.to.user) << "message " << i;
    EXPECT_EQ(a.to.include, b.to.include) << "message " << i;
    EXPECT_EQ(a.to.exclude, b.to.exclude) << "message " << i;
    EXPECT_EQ(a.datagram, b.datagram) << "message " << i;
  }
}

TEST(PipelineDeterminism, GroupOriented) {
  expect_identical_wire(rekey::StrategyKind::kGroupOriented);
}

TEST(PipelineDeterminism, UserOriented) {
  expect_identical_wire(rekey::StrategyKind::kUserOriented);
}

TEST(PipelineDeterminism, KeyOriented) {
  expect_identical_wire(rekey::StrategyKind::kKeyOriented);
}

TEST(PipelineDeterminism, Hybrid) {
  expect_identical_wire(rekey::StrategyKind::kHybrid);
}

// Unsigned DES configuration too: exercises the digest-only envelope path
// under parallel sealing.
TEST(PipelineDeterminism, UnsignedDigestPath) {
  server::ServerConfig base;
  base.rng_seed = 77;
  base.clock_us = [] { return std::uint64_t{42}; };

  RecordingTransport serial_wire;
  {
    server::ServerConfig config = base;
    config.seal_threads = 1;
    server::GroupKeyServer server(config, serial_wire);
    run_churn(server);
  }
  RecordingTransport parallel_wire;
  {
    server::ServerConfig config = base;
    config.seal_threads = 8;
    server::GroupKeyServer server(config, parallel_wire);
    run_churn(server);
  }
  ASSERT_EQ(serial_wire.sent().size(), parallel_wire.sent().size());
  for (std::size_t i = 0; i < serial_wire.sent().size(); ++i) {
    EXPECT_EQ(serial_wire.sent()[i].datagram, parallel_wire.sent()[i].datagram)
        << "message " << i;
  }
}

// The eager compat path (plan + materialize) and the executor must produce
// the same messages for the same plan: IVs live in the plan, so both sides
// encrypt identically.
TEST(PipelineDeterminism, MaterializeMatchesExecutor) {
  crypto::SecureRandom rng(5);
  rekey::RekeyPlanner planner(crypto::CipherAlgorithm::kDes, rng);
  const SymmetricKey wrapping{1, 1, rng.bytes(8)};
  const std::vector<SymmetricKey> targets{{2, 1, rng.bytes(8)},
                                          {3, 2, rng.bytes(8)}};
  rekey::PlannedRekey planned;
  planned.to = rekey::Recipient::to_user(7);
  planned.header.group = 1;
  planned.header.epoch = 3;
  planned.header.timestamp_us = 42;
  planned.ops = {planner.wrap(wrapping, targets)};
  const rekey::RekeyPlan plan = planner.take({planned});

  crypto::SecureRandom eager_rng(99);  // unused: all IVs are in the plan
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, eager_rng);
  const std::vector<rekey::OutboundRekey> eager =
      rekey::materialize(plan, encryptor);
  EXPECT_EQ(encryptor.key_encryptions(), 2u);

  rekey::RekeyExecutor executor(crypto::CipherAlgorithm::kDes, 2);
  const rekey::RekeySealer sealer(rekey::SigningMode::kNone,
                                  crypto::DigestAlgorithm::kNone, nullptr);
  const std::vector<rekey::SealedRekey> sealed = executor.seal(plan, sealer);

  ASSERT_EQ(eager.size(), 1u);
  ASSERT_EQ(sealed.size(), 1u);
  const rekey::RekeyOpener opener(nullptr);
  const rekey::OpenedRekey opened = opener.open(sealed[0].wire, true);
  EXPECT_EQ(opened.message, eager[0].message);
  EXPECT_EQ(sealed[0].to.user, eager[0].to.user);
}

}  // namespace
}  // namespace keygraphs

// Server specification file parser (the paper's server-initialization
// mechanism): full configuration round trip, defaults, and error reporting.
#include "server/spec.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/error.h"
#include "rekey/executor.h"
#include "storage/errors.h"

namespace keygraphs::server {
namespace {

TEST(Spec, EmptyTextGivesDefaults) {
  const ServerSpec spec = parse_server_spec("");
  EXPECT_EQ(spec.config.tree_degree, 4);
  EXPECT_EQ(spec.config.strategy, rekey::StrategyKind::kGroupOriented);
  EXPECT_EQ(spec.config.suite.cipher, crypto::CipherAlgorithm::kDes);
  EXPECT_EQ(spec.initial_size, 0u);
  EXPECT_FALSE(spec.acl.has_value());
}

TEST(Spec, FullConfiguration) {
  const ServerSpec spec = parse_server_spec(R"(
# the paper's measured configuration
degree       = 4
strategy     = key
cipher       = des
digest       = md5
signature    = rsa512
signing      = batch
group        = 7
seed         = 42
seal_threads = 4
auth_master  = deadbeefcafe
initial_size = 8192
port         = 9999
acl          = 1, 2, 3, 10
)");
  EXPECT_EQ(spec.config.tree_degree, 4);
  EXPECT_EQ(spec.config.strategy, rekey::StrategyKind::kKeyOriented);
  EXPECT_EQ(spec.config.suite.cipher, crypto::CipherAlgorithm::kDes);
  EXPECT_EQ(spec.config.suite.digest, crypto::DigestAlgorithm::kMd5);
  EXPECT_EQ(spec.config.suite.signature, crypto::SignatureAlgorithm::kRsa512);
  EXPECT_EQ(spec.config.signing, rekey::SigningMode::kBatch);
  EXPECT_EQ(spec.config.group, 7u);
  EXPECT_EQ(spec.config.rng_seed, 42u);
  EXPECT_EQ(spec.config.seal_threads, 4u);
  EXPECT_EQ(spec.config.auth_master, from_hex("deadbeefcafe"));
  EXPECT_EQ(spec.initial_size, 8192u);
  EXPECT_EQ(spec.port, 9999u);
  ASSERT_TRUE(spec.acl.has_value());
  EXPECT_EQ(*spec.acl, (std::vector<UserId>{1, 2, 3, 10}));
  EXPECT_TRUE(spec.access_control().authorizes(10));
  EXPECT_FALSE(spec.access_control().authorizes(11));
}

TEST(Spec, StarDegreeAndModernSuite) {
  const ServerSpec spec = parse_server_spec(
      "degree = star\ncipher = aes128\ndigest = sha256\n"
      "signature = rsa2048\nsigning = per-message\n");
  EXPECT_GT(spec.config.tree_degree, 1000000);
  EXPECT_EQ(spec.config.suite.cipher, crypto::CipherAlgorithm::kAes128);
  EXPECT_EQ(spec.config.suite.digest, crypto::DigestAlgorithm::kSha256);
}

TEST(Spec, TripleDesAccepted) {
  const ServerSpec spec = parse_server_spec("cipher = 3des\n");
  EXPECT_EQ(spec.config.suite.cipher, crypto::CipherAlgorithm::kDes3);
}

TEST(Spec, SealThreadsDefaultsToSerial) {
  EXPECT_EQ(parse_server_spec("").config.seal_threads, 1u);
  EXPECT_EQ(parse_server_spec("seal_threads = 8\n").config.seal_threads, 8u);
  EXPECT_THROW(parse_server_spec("seal_threads = 0\n"), ProtocolError);
  EXPECT_THROW(parse_server_spec("seal_threads = 300\n"), ProtocolError);
  EXPECT_THROW(parse_server_spec("seal_threads = many\n"), ProtocolError);
}

TEST(Spec, AclAllIsOpen) {
  const ServerSpec spec = parse_server_spec("acl = all\n");
  EXPECT_FALSE(spec.acl.has_value());
  EXPECT_TRUE(spec.access_control().authorizes(123456));
}

TEST(Spec, CommentsAndBlankLinesIgnored) {
  const ServerSpec spec = parse_server_spec(
      "\n   \n# comment\n  degree = 8  \n\n# another\n");
  EXPECT_EQ(spec.config.tree_degree, 8);
}

TEST(Spec, ErrorsNameTheLine) {
  try {
    parse_server_spec("degree = 4\nstrategy = bogus\n");
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& error) {
    EXPECT_NE(std::string(error.what()).find("line 2"), std::string::npos);
  }
}

TEST(Spec, RejectsMalformedInput) {
  EXPECT_THROW(parse_server_spec("no equals sign here\n"), ProtocolError);
  EXPECT_THROW(parse_server_spec("unknown_key = 1\n"), ProtocolError);
  EXPECT_THROW(parse_server_spec("degree = 1\n"), ProtocolError);
  EXPECT_THROW(parse_server_spec("degree = banana\n"), ProtocolError);
  EXPECT_THROW(parse_server_spec("port = 70000\n"), ProtocolError);
  EXPECT_THROW(parse_server_spec("auth_master = xyz\n"), ProtocolError);
  EXPECT_THROW(parse_server_spec("auth_master =\n"), ProtocolError);
  EXPECT_THROW(parse_server_spec("cipher = rot13\n"), ProtocolError);
  EXPECT_THROW(parse_server_spec("signing = maybe\n"), ProtocolError);
}

TEST(Spec, TelemetryDefaultsOff) {
  const ServerSpec spec = parse_server_spec("degree = 4\n");
  EXPECT_EQ(spec.telemetry, TelemetryFormat::kOff);
  EXPECT_EQ(spec.telemetry_period_s, 10u);
}

TEST(Spec, ParsesTelemetryKeys) {
  const ServerSpec spec = parse_server_spec(
      "telemetry = json\ntelemetry_period = 30\n");
  EXPECT_EQ(spec.telemetry, TelemetryFormat::kJson);
  EXPECT_EQ(spec.telemetry_period_s, 30u);

  EXPECT_EQ(parse_server_spec("telemetry = prom\n").telemetry,
            TelemetryFormat::kPrometheus);
  EXPECT_EQ(parse_server_spec("telemetry = off\n").telemetry,
            TelemetryFormat::kOff);
  EXPECT_EQ(parse_server_spec("telemetry_period = 0\n").telemetry_period_s,
            0u);
}

TEST(Spec, RejectsBadTelemetryValues) {
  EXPECT_THROW(parse_server_spec("telemetry = xml\n"), ProtocolError);
  EXPECT_THROW(parse_server_spec("telemetry_period = 100000\n"),
               ProtocolError);
  EXPECT_THROW(parse_server_spec("telemetry_period = soon\n"),
               ProtocolError);
}

TEST(Spec, ParsesScheduleCacheCapacities) {
  const ServerSpec spec = parse_server_spec(
      "schedule_cache_capacity = 512\n"
      "client_schedule_cache_capacity = 32\n");
  EXPECT_EQ(spec.config.schedule_cache_capacity, 512u);
  EXPECT_EQ(spec.client_schedule_cache_capacity, 32u);

  // Defaults when the keys are absent.
  const ServerSpec defaults = parse_server_spec("degree = 4\n");
  EXPECT_EQ(defaults.config.schedule_cache_capacity,
            rekey::RekeyExecutor::kDefaultCacheCapacity);
  EXPECT_EQ(defaults.client_schedule_cache_capacity, 64u);
}

TEST(Spec, RejectsBadScheduleCacheCapacities) {
  EXPECT_THROW(parse_server_spec("schedule_cache_capacity = 0\n"),
               ProtocolError);
  EXPECT_THROW(parse_server_spec("schedule_cache_capacity = 1048577\n"),
               ProtocolError);
  EXPECT_THROW(parse_server_spec("schedule_cache_capacity = many\n"),
               ProtocolError);
  EXPECT_THROW(parse_server_spec("client_schedule_cache_capacity = 0\n"),
               ProtocolError);
  EXPECT_THROW(
      parse_server_spec("client_schedule_cache_capacity = 1048577\n"),
      ProtocolError);
}

TEST(Spec, ParsesStorageKeys) {
  const ServerSpec spec = parse_server_spec(
      "storage = file\njournal_dir = /tmp/kg_journal\n"
      "snapshot_interval = 256\n");
  EXPECT_EQ(spec.config.storage.kind, storage::Kind::kFile);
  EXPECT_EQ(spec.config.storage.journal_dir, "/tmp/kg_journal");
  EXPECT_EQ(spec.config.storage.snapshot_interval, 256u);
  EXPECT_TRUE(spec.config.storage.enabled());

  EXPECT_EQ(parse_server_spec("storage = memory\n").config.storage.kind,
            storage::Kind::kMemory);
  EXPECT_EQ(parse_server_spec(
                "storage = mmap\njournal_dir = /tmp/kg_journal\n")
                .config.storage.kind,
            storage::Kind::kMmap);
  EXPECT_EQ(parse_server_spec("storage = none\n").config.storage.kind,
            storage::Kind::kNone);

  // Defaults: durability off, the pre-journal behavior.
  const ServerSpec defaults = parse_server_spec("degree = 4\n");
  EXPECT_EQ(defaults.config.storage.kind, storage::Kind::kNone);
  EXPECT_FALSE(defaults.config.storage.enabled());
  EXPECT_EQ(defaults.config.storage.snapshot_interval, 1024u);
}

TEST(Spec, RejectsBadStorageValues) {
  EXPECT_THROW(parse_server_spec("storage = tape\n"), ProtocolError);
  EXPECT_THROW(parse_server_spec("journal_dir =\n"), ProtocolError);
  EXPECT_THROW(parse_server_spec("snapshot_interval = soon\n"),
               ProtocolError);
  EXPECT_THROW(parse_server_spec("snapshot_interval = 2000000000\n"),
               ProtocolError);
}

TEST(Spec, DiskStorageRequiresJournalDir) {
  // The cross-field check names the offending backend.
  for (const char* kind : {"file", "mmap"}) {
    try {
      parse_server_spec(std::string("storage = ") + kind + "\n");
      FAIL() << "expected ProtocolError for storage = " << kind;
    } catch (const ProtocolError& error) {
      EXPECT_NE(std::string(error.what()).find("requires journal_dir"),
                std::string::npos);
      EXPECT_NE(std::string(error.what()).find(kind), std::string::npos);
    }
  }
  // A memory journal needs no directory.
  EXPECT_NO_THROW(parse_server_spec("storage = memory\n"));
}

TEST(Spec, UnwritableJournalDirFailsAtBoot) {
  // A path that cannot be a directory (its parent is a regular file):
  // parsing succeeds — the path is syntactically fine — but the server
  // constructor's make_backend throws a typed StorageError.
  const std::string file =
      (std::filesystem::temp_directory_path() /
       ("kg_not_a_dir_" + std::to_string(::getpid())))
          .string();
  { std::ofstream touch(file); }
  const ServerSpec spec = parse_server_spec(
      "storage = file\njournal_dir = " + file + "/journal\n");
  transport::NullTransport transport;
  EXPECT_THROW(GroupKeyServer server(spec.config, transport),
               storage::StorageError);
  std::filesystem::remove(file);
}

TEST(Spec, SigningRequiresSignatureAlgorithm) {
  EXPECT_THROW(parse_server_spec("signing = batch\n"), ProtocolError);
  EXPECT_NO_THROW(
      parse_server_spec("signing = batch\nsignature = rsa512\n"));
}

TEST(Spec, LoadFromMissingFileThrows) {
  EXPECT_THROW(load_server_spec("/nonexistent/spec.conf"), Error);
}

TEST(Spec, ParsedSpecBootsAServer) {
  const ServerSpec spec = parse_server_spec(
      "degree = 3\nstrategy = hybrid\nseed = 5\ninitial_size = 9\n");
  transport::NullTransport transport;
  GroupKeyServer server(spec.config, transport, spec.access_control());
  for (UserId user = 1; user <= spec.initial_size; ++user) {
    EXPECT_EQ(server.join(user), JoinResult::kGranted);
  }
  EXPECT_EQ(server.tree().user_count(), 9u);
}

}  // namespace
}  // namespace keygraphs::server

// The sharded server: K per-shard lanes stitched by a thin root layer.
//
//   - K = 1 is the compatibility mode: byte-identical wire output to the
//     single-tree GroupKeyServer for the same config and seed, across all
//     four strategies, signed and unsigned (the golden contract that lets
//     deployments move to the sharded server without a flag day).
//   - K > 1: every member converges to the shared group key after every
//     operation; the stitched epoch stream is contiguous; NACK replay
//     filters per-datagram views so cross-shard broadcasts retransmit
//     correctly; resync carries the shared key.
//   - Concurrent writers on distinct users are safe (run under TSan) and
//     never tear the epoch sequence.
#include "server/sharded_server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "client/client.h"
#include "common/error.h"
#include "server/server.h"
#include "transport/inproc.h"
#include "transport/transport.h"

namespace keygraphs {
namespace {

struct Sent {
  rekey::Recipient to;
  Bytes datagram;
};

class RecordingTransport final : public transport::ServerTransport {
 public:
  void deliver(const rekey::Recipient& to, BytesView datagram,
               const Resolver& resolve) override {
    (void)resolve;
    sent_.push_back(Sent{to, Bytes(datagram.begin(), datagram.end())});
  }

  [[nodiscard]] const std::vector<Sent>& sent() const noexcept {
    return sent_;
  }

 private:
  std::vector<Sent> sent_;
};

/// Thread-safe sink for the concurrency tests.
class CountingTransport final : public transport::ServerTransport {
 public:
  void deliver(const rekey::Recipient& to, BytesView datagram,
               const Resolver& resolve) override {
    (void)to;
    (void)resolve;
    deliveries_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(datagram.size(), std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t deliveries() const noexcept {
    return deliveries_.load();
  }

 private:
  std::atomic<std::size_t> deliveries_{0};
  std::atomic<std::size_t> bytes_{0};
};

server::ServerConfig signed_base(rekey::StrategyKind strategy,
                                 std::size_t seal_threads) {
  server::ServerConfig config;
  config.suite = crypto::CryptoSuite::paper_signed();
  config.signing = rekey::SigningMode::kBatch;
  config.strategy = strategy;
  config.rng_seed = 1998;
  config.seal_threads = seal_threads;
  config.clock_us = [] { return std::uint64_t{863913600000000}; };
  return config;
}

template <typename Server>
void run_churn(Server& server) {
  for (UserId user = 1; user <= 16; ++user) server.join(user);
  server.leave(5);
  server.leave(12);
  server.join(100);
  server.resync(7);
  server.batch({200, 201, 202}, {3, 9});
}

void expect_same_wire(const std::vector<Sent>& a,
                      const std::vector<Sent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].to.kind, b[i].to.kind) << "message " << i;
    EXPECT_EQ(a[i].to.user, b[i].to.user) << "message " << i;
    EXPECT_EQ(a[i].to.include, b[i].to.include) << "message " << i;
    EXPECT_EQ(a[i].to.exclude, b[i].to.exclude) << "message " << i;
    EXPECT_EQ(a[i].datagram, b[i].datagram) << "message " << i;
  }
}

// --- K = 1 byte identity ----------------------------------------------

void expect_identical_to_unsharded(rekey::StrategyKind strategy) {
  RecordingTransport flat_wire;
  server::GroupKeyServer flat(signed_base(strategy, 1), flat_wire);
  run_churn(flat);

  RecordingTransport sharded_wire;
  server::ShardedServerConfig config;
  config.base = signed_base(strategy, 1);
  config.shards = 1;
  server::ShardedGroupKeyServer sharded(config, sharded_wire);
  run_churn(sharded);

  EXPECT_EQ(flat.epoch(), sharded.epoch());
  EXPECT_EQ(flat.root_id(), sharded.root_id());
  expect_same_wire(flat_wire.sent(), sharded_wire.sent());
}

TEST(ShardedIdentity, GroupOriented) {
  expect_identical_to_unsharded(rekey::StrategyKind::kGroupOriented);
}

TEST(ShardedIdentity, UserOriented) {
  expect_identical_to_unsharded(rekey::StrategyKind::kUserOriented);
}

TEST(ShardedIdentity, KeyOriented) {
  expect_identical_to_unsharded(rekey::StrategyKind::kKeyOriented);
}

TEST(ShardedIdentity, Hybrid) {
  expect_identical_to_unsharded(rekey::StrategyKind::kHybrid);
}

TEST(ShardedIdentity, UnsignedDigestPath) {
  server::ServerConfig base;
  base.rng_seed = 77;
  base.clock_us = [] { return std::uint64_t{42}; };

  RecordingTransport flat_wire;
  server::GroupKeyServer flat(base, flat_wire);
  run_churn(flat);

  RecordingTransport sharded_wire;
  server::ShardedServerConfig config;
  config.base = base;
  server::ShardedGroupKeyServer sharded(config, sharded_wire);
  run_churn(sharded);

  EXPECT_EQ(flat.epoch(), sharded.epoch());
  expect_same_wire(flat_wire.sent(), sharded_wire.sent());
}

// A K=1 sharded server with more seal threads still produces the same
// bytes (the plan-time-randomness invariant carries through the lanes).
TEST(ShardedIdentity, SealThreadsDoNotChangeWire) {
  RecordingTransport serial_wire;
  server::ShardedServerConfig serial_config;
  serial_config.base = signed_base(rekey::StrategyKind::kGroupOriented, 1);
  server::ShardedGroupKeyServer serial(serial_config, serial_wire);
  run_churn(serial);

  RecordingTransport parallel_wire;
  server::ShardedServerConfig parallel_config;
  parallel_config.base = signed_base(rekey::StrategyKind::kGroupOriented, 4);
  server::ShardedGroupKeyServer parallel(parallel_config, parallel_wire);
  run_churn(parallel);

  expect_same_wire(serial_wire.sent(), parallel_wire.sent());
}

// --- K > 1 member convergence -----------------------------------------

/// A member client wired to the in-proc network that applies everything
/// delivered to it (and keeps its multicast subscriptions current).
struct Member {
  Member(server::ShardedGroupKeyServer& server,
         transport::InProcNetwork& network, UserId user)
      : network_(network), user_(user) {
    client::ClientConfig config;
    config.user = user;
    config.suite = server.config().base.suite;
    config.group = server.config().base.group;
    config.root = server.root_id();
    config.verify = false;
    config.rng_seed = user;
    client_ = std::make_unique<client::GroupClient>(config, nullptr);
    client_->install_individual_key(SymmetricKey{
        individual_key_id(user), 1,
        server.auth().individual_key(user, config.suite.key_size())});
    attach();
  }

  void attach() {
    network_.attach_client(user_, [this](BytesView datagram) {
      client_->handle_datagram(datagram);
      network_.resubscribe(user_, client_->key_ids());
    });
    network_.resubscribe(user_, client_->key_ids());
  }

  void detach() { network_.detach_client(user_); }

  client::GroupClient& operator*() { return *client_; }
  client::GroupClient* operator->() { return client_.get(); }

  transport::InProcNetwork& network_;
  UserId user_;
  std::unique_ptr<client::GroupClient> client_;
};

server::ShardedServerConfig sharded_config(std::size_t shards,
                                           std::uint64_t* clock_us) {
  server::ShardedServerConfig config;
  config.base.tree_degree = 3;
  config.base.rng_seed = 404;
  config.base.clock_us = [clock_us] { return *clock_us; };
  config.shards = shards;
  return config;
}

void expect_converged(
    server::ShardedGroupKeyServer& server,
    const std::map<UserId, std::unique_ptr<Member>>& members) {
  const SymmetricKey group = server.group_key();
  for (const auto& [user, member] : members) {
    const auto held = (*member)->group_key();
    ASSERT_TRUE(held.has_value()) << "user " << user;
    EXPECT_EQ(held->id, group.id) << "user " << user;
    EXPECT_EQ(held->version, group.version) << "user " << user;
    EXPECT_EQ(held->secret, group.secret) << "user " << user;
    EXPECT_EQ((*member)->applied_epoch(), server.epoch())
        << "user " << user;
  }
}

TEST(ShardedServer, MultiShardChurnConverges) {
  std::uint64_t now = 1'000'000;
  transport::InProcNetwork network;
  server::ShardedGroupKeyServer server(sharded_config(4, &now), network);
  EXPECT_EQ(server.root_id(), kSharedGroupKeyId);

  std::map<UserId, std::unique_ptr<Member>> members;
  for (UserId user = 1; user <= 24; ++user) {
    members.emplace(user, std::make_unique<Member>(server, network, user));
    ASSERT_EQ(server.join(user), server::JoinResult::kGranted);
  }
  EXPECT_EQ(server.member_count(), 24u);
  EXPECT_EQ(server.epoch(), 24u);
  expect_converged(server, members);

  // Users land on several shards (the router spreads sequential ids).
  bool multiple_shards = false;
  for (UserId user = 2; user <= 24; ++user) {
    if (server.shard_of(user) != server.shard_of(1)) multiple_shards = true;
  }
  EXPECT_TRUE(multiple_shards);

  for (const UserId leaver : {UserId{3}, UserId{7}, UserId{11}, UserId{19}}) {
    members.at(leaver)->detach();
    members.erase(leaver);
    server.leave(leaver);
    expect_converged(server, members);
  }
  EXPECT_EQ(server.member_count(), 20u);

  // Batched update: joiners admitted, leavers cut, at most one epoch per
  // affected shard, and the whole fleet still converges.
  for (const UserId joiner : {UserId{30}, UserId{31}, UserId{32}}) {
    members.emplace(joiner, std::make_unique<Member>(server, network, joiner));
  }
  members.at(2)->detach();
  members.erase(2);
  members.at(13)->detach();
  members.erase(13);
  const std::vector<UserId> admitted = server.batch({30, 31, 32}, {2, 13});
  EXPECT_EQ(admitted.size(), 3u);
  EXPECT_EQ(server.member_count(), 21u);
  expect_converged(server, members);

  // Keysets handed to late observers include the shared group key.
  const std::vector<SymmetricKey> keys = server.keyset(30);
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(keys.back().id, kSharedGroupKeyId);
}

TEST(ShardedServer, DuplicateAndDeniedJoins) {
  std::uint64_t now = 1'000'000;
  RecordingTransport wire;
  server::ShardedServerConfig config = sharded_config(2, &now);
  server::ShardedGroupKeyServer server(
      config, wire, server::AccessControl::allow_list({1, 2, 3}));
  EXPECT_EQ(server.join(1), server::JoinResult::kGranted);
  EXPECT_EQ(server.join(1), server::JoinResult::kDuplicate);
  EXPECT_EQ(server.join(9), server::JoinResult::kDenied);
  EXPECT_EQ(server.epoch(), 1u);
  EXPECT_THROW(server.leave(42), ProtocolError);
}

TEST(ShardedServer, NoOpBatchAdvancesNothing) {
  std::uint64_t now = 1'000'000;
  RecordingTransport wire;
  server::ShardedGroupKeyServer server(sharded_config(4, &now), wire);
  server.join(1);
  const std::uint64_t epoch = server.epoch();
  const std::size_t sent = wire.sent().size();
  EXPECT_TRUE(server.batch({}, {}).empty());
  EXPECT_TRUE(server.batch({1}, {}).empty());  // duplicate joiner only
  EXPECT_EQ(server.epoch(), epoch);
  EXPECT_EQ(wire.sent().size(), sent);
}

// --- Recovery across shards -------------------------------------------

TEST(ShardedServer, NackReplayCoversCrossShardBroadcasts) {
  std::uint64_t now = 1'000'000;
  transport::InProcNetwork network;
  server::ShardedGroupKeyServer server(sharded_config(4, &now), network);

  std::map<UserId, std::unique_ptr<Member>> members;
  for (UserId user = 1; user <= 12; ++user) {
    members.emplace(user, std::make_unique<Member>(server, network, user));
    server.join(user);
  }
  expect_converged(server, members);

  // The victim goes deaf across operations in *other* shards (it missed
  // only the little G-under-its-shard-root broadcasts) and one in its own.
  const UserId victim = 1;
  members.at(victim)->detach();
  std::vector<UserId> others;
  for (UserId user = 2; user <= 12; ++user) {
    if (server.shard_of(user) != server.shard_of(victim)) {
      others.push_back(user);
    }
  }
  ASSERT_GE(others.size(), 2u);
  server.leave(others[0]);
  members.at(others[0])->detach();
  members.erase(others[0]);
  server.leave(others[1]);
  members.at(others[1])->detach();
  members.erase(others[1]);
  server.join(50);  // may land anywhere, including the victim's shard
  members.emplace(50, std::make_unique<Member>(server, network, 50));
  server.resync(50);  // the welcome predated the member's attach

  members.at(victim)->attach();
  EXPECT_LT((*members.at(victim))->applied_epoch(), server.epoch());
  const std::uint64_t epoch_before = server.epoch();
  EXPECT_EQ(server.handle_nack(victim,
                               (*members.at(victim))->applied_epoch()),
            server::NackOutcome::kRetransmitted);
  EXPECT_EQ(server.epoch(), epoch_before);
  expect_converged(server, members);
}

TEST(ShardedServer, OutOfWindowGapFallsBackToResyncWithSharedKey) {
  std::uint64_t now = 1'000'000;
  transport::InProcNetwork network;
  server::ShardedServerConfig config = sharded_config(4, &now);
  config.base.retransmit_window = 1;  // almost everything falls out
  server::ShardedGroupKeyServer server(config, network);

  std::map<UserId, std::unique_ptr<Member>> members;
  for (UserId user = 1; user <= 10; ++user) {
    members.emplace(user, std::make_unique<Member>(server, network, user));
    server.join(user);
  }
  const UserId victim = 4;
  members.at(victim)->detach();
  server.leave(9);
  members.at(9)->detach();
  members.erase(9);
  server.join(60);
  members.emplace(60, std::make_unique<Member>(server, network, 60));
  server.resync(60);
  server.join(61);
  members.emplace(61, std::make_unique<Member>(server, network, 61));
  server.resync(61);

  members.at(victim)->attach();
  EXPECT_EQ(server.handle_nack(victim,
                               (*members.at(victim))->applied_epoch()),
            server::NackOutcome::kResynced);
  // The resync keyset replay carries the shared group key, so the victim
  // lands on the current group key in one jump.
  expect_converged(server, members);
}

TEST(ShardedServer, NackTokenGuards) {
  std::uint64_t now = 1'000'000;
  transport::InProcNetwork network;
  server::ShardedGroupKeyServer server(sharded_config(2, &now), network);
  Member member(server, network, 5);
  server.join(5);
  EXPECT_FALSE(
      server.nack_with_token(5, bytes_of("bogus"), 0).has_value());
  const Bytes token = server.auth().resync_token(5);
  EXPECT_FALSE(server.nack_with_token(99, token, 0).has_value());
  const auto outcome = server.nack_with_token(5, token, 0);
  ASSERT_TRUE(outcome.has_value());
}

// --- Preload ------------------------------------------------------------

TEST(ShardedServer, PreloadAdmitsWithoutEpochsOrMessages) {
  std::uint64_t now = 1'000'000;
  RecordingTransport wire;
  server::ShardedGroupKeyServer server(sharded_config(4, &now), wire);
  std::vector<UserId> users;
  for (UserId user = 1; user <= 500; ++user) users.push_back(user);
  server.preload(users);
  EXPECT_EQ(server.member_count(), 500u);
  EXPECT_EQ(server.epoch(), 0u);
  EXPECT_TRUE(wire.sent().empty());
  EXPECT_TRUE(server.has_member(250));
  // Churn after a preload behaves normally.
  EXPECT_EQ(server.join(501), server::JoinResult::kGranted);
  EXPECT_EQ(server.epoch(), 1u);
  EXPECT_FALSE(wire.sent().empty());
}

// --- Concurrency (meaningful under TSan) --------------------------------

TEST(ShardedServer, ConcurrentWritersKeepEpochsContiguous) {
  std::uint64_t now = 1'000'000;
  CountingTransport wire;
  server::ShardedServerConfig config = sharded_config(4, &now);
  config.base.seal_threads = 2;
  server::ShardedGroupKeyServer server(config, wire);

  constexpr std::size_t kThreads = 4;
  constexpr UserId kPerThread = 16;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&server, t] {
      const UserId base = 1000 * (static_cast<UserId>(t) + 1);
      for (UserId i = 0; i < kPerThread; ++i) {
        EXPECT_EQ(server.join(base + i), server::JoinResult::kGranted);
      }
      for (UserId i = 0; i < kPerThread; i += 2) {
        server.leave(base + i);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();

  const std::size_t ops = kThreads * (kPerThread + kPerThread / 2);
  EXPECT_EQ(server.epoch(), ops);
  EXPECT_EQ(server.stats().size(), ops);
  EXPECT_EQ(server.member_count(), kThreads * kPerThread / 2);
  EXPECT_GT(wire.deliveries(), 0u);

  // Every member's keyset still resolves and ends in the shared key.
  const std::vector<SymmetricKey> keys = server.keyset(1001);
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(keys.back().id, kSharedGroupKeyId);
}

TEST(ShardedServer, ConcurrentWritersWithNacks) {
  std::uint64_t now = 1'000'000;
  CountingTransport wire;
  server::ShardedGroupKeyServer server(sharded_config(4, &now), wire);
  for (UserId user = 1; user <= 32; ++user) server.join(user);

  std::atomic<bool> stop{false};
  std::thread nacker([&server, &stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      const std::uint64_t have = server.epoch();
      (void)server.handle_nack(7, have > 2 ? have - 2 : 0);
    }
  });
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < 2; ++t) {
    writers.emplace_back([&server, t] {
      const UserId base = 5000 * (static_cast<UserId>(t) + 1);
      for (UserId i = 0; i < 24; ++i) {
        server.join(base + i);
        server.leave(base + i);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true);
  nacker.join();
  EXPECT_EQ(server.member_count(), 32u);
}

}  // namespace
}  // namespace keygraphs

// Hot-standby failover under churn and loss: 1024 clients on the in-proc
// network behind a seeded fault engine (5% drop + duplicates + reorder),
// a primary journaling every commit to a shared storage backend, and a
// StandbyServer tailing that journal. Halfway through the churn the
// primary is destroyed outright — no shutdown, no state handoff — and the
// standby is promoted. The fleet must converge on the promoted server with
// zero manual intervention (the only recovery actions are the ones client
// state machines escalate to) and zero convergence-SLO violations, and the
// promoted server must continue the exact epoch stream the primary died on.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "client/client.h"
#include "common/io.h"
#include "server/server.h"
#include "server/standby.h"
#include "storage/backend.h"
#include "telemetry/convergence.h"
#include "telemetry/metrics.h"
#include "transport/fault.h"
#include "transport/inproc.h"

namespace keygraphs {
namespace {

/// Generous convergence SLO (one hour of virtual time): far above anything
/// the 200 ms pump steps can accumulate even across the failover, so a
/// single violation means the promotion broke the epoch accounting.
constexpr std::uint64_t kGenerousSloUs = 3'600'000'000;

TEST(FailoverSoak, PrimaryDeathMidChurnPromotesStandbyAndConverges) {
  constexpr std::size_t kGroupSize = 1024;
  constexpr std::size_t kChurnOps = 40;
  constexpr std::uint64_t kSeed = 29;
  std::uint64_t now = 1'000'000;

  server::ServerConfig config;
  config.tree_degree = 8;
  config.rng_seed = kSeed;
  config.clock_us = [&now] { return now; };
  config.retransmit_window = 64;
  config.recovery_rate = 0;  // unlimited; the limiter has its own tests
  // Both servers share one in-memory journal — the same wiring as two
  // processes sharing a journal_dir, without touching disk in the soak.
  config.storage.backend = storage::make_memory_backend(1);
  config.storage.snapshot_interval = 300;  // several compactions mid-soak

  transport::InProcNetwork network;
  auto primary =
      std::make_unique<server::GroupKeyServer>(config, network);
  server::StandbyServer standby(config, network);
  server::GroupKeyServer* live = primary.get();

  transport::FaultConfig faults;
  faults.seed = kSeed;
  faults.rule.drop = 0.05;
  faults.rule.duplicate = 0.03;
  faults.rule.reorder = 0.05;
  faults.rule.reorder_span = 4;
  transport::FaultEngine engine(faults);

  for (UserId user = 1; user <= kGroupSize; ++user) live->join(user);
  std::size_t standby_applied = standby.poll();
  EXPECT_EQ(standby.epoch(), live->epoch());

  std::map<UserId, std::unique_ptr<client::GroupClient>> members;
  const KeyId root = live->root_id();

  const auto attach = [&](UserId user, bool snapshot) {
    client::ClientConfig member_config;
    member_config.user = user;
    member_config.suite = config.suite;
    member_config.root = root;
    member_config.verify = false;
    member_config.rng_seed = user + 1;
    member_config.recovery.clock_us = [&now] { return now; };
    member_config.recovery.base_backoff_us = 20'000;
    member_config.recovery.max_backoff_us = 160'000;
    member_config.recovery.token = live->auth().resync_token(user);
    auto client =
        std::make_unique<client::GroupClient>(member_config, nullptr);
    client->install_individual_key(SymmetricKey{
        individual_key_id(user), 1,
        live->auth().individual_key(user, config.suite.key_size())});
    if (snapshot) {
      client->admit_snapshot(live->tree().keyset(user), live->epoch());
    }
    client::GroupClient& ref = *client;
    const auto resubscribe = [&network, &ref, user, root] {
      std::vector<KeyId> ids = ref.key_ids();
      ids.push_back(root);
      network.resubscribe(user, ids);
    };
    network.attach_client(
        user, transport::make_faulty_inbox(
                  engine, user, [&ref, resubscribe](BytesView datagram) {
                    ref.handle_datagram(datagram);
                    resubscribe();
                  }));
    resubscribe();
    members.emplace(user, std::move(client));
  };

  for (UserId user = 1; user <= kGroupSize; ++user) {
    attach(user, /*snapshot=*/true);
  }

  telemetry::Registry::global().reset();
  telemetry::ConvergenceMonitor::global().reset();
  telemetry::ConvergenceMonitor::global().set_slo_us(kGenerousSloUs);

  // Routes one client-emitted recovery request to whichever server is
  // live — the only path any retransmit or resync ever takes here.
  const auto route = [&](const Bytes& request) {
    const rekey::Datagram datagram = rekey::Datagram::decode(request);
    ByteReader reader(datagram.payload);
    const UserId user = reader.u64();
    const Bytes token = reader.var_bytes();
    if (datagram.type == rekey::MessageType::kNackRequest) {
      (void)live->nack_with_token(user, token, reader.u64());
    } else if (datagram.type == rekey::MessageType::kResyncRequest) {
      (void)live->resync_with_token(user, token);
    }
  };

  const auto all_synced = [&] {
    const Bytes& secret = live->tree().group_key().secret;
    for (const auto& [user, client] : members) {
      const auto key = client->group_key();
      if (!key.has_value() || key->secret != secret) return false;
      if (client->recovery_state() != client::RecoveryState::kSynced) {
        return false;
      }
    }
    return true;
  };

  std::size_t pump_rounds = 0;
  const auto pump = [&](std::size_t max_rounds) {
    for (std::size_t round = 0; round < max_rounds; ++round) {
      if (all_synced()) return true;
      now += 200'000;  // past every client's max backoff
      ++pump_rounds;
      for (const auto& [user, client] : members) {
        if (const auto request = client->poll_recovery()) route(*request);
      }
    }
    return all_synced();
  };

  std::uint64_t epoch_at_death = 0;
  crypto::SecureRandom churn_rng(kSeed * 7 + 1);
  UserId next_user = kGroupSize + 1;
  for (std::size_t op = 0; op < kChurnOps; ++op) {
    if (op % 2 == 0) {
      auto it = members.begin();
      std::advance(it, churn_rng.uniform(members.size()));
      const UserId leaver = it->first;
      engine.flush();
      network.detach_client(leaver);
      members.erase(it);
      live->leave(leaver);
    } else {
      const UserId joiner = next_user++;
      attach(joiner, /*snapshot=*/false);
      live->join(joiner);
    }
    if (!standby.promoted()) standby_applied += standby.poll();
    pump(2);

    if (op == kChurnOps / 2) {
      // The failover: release in-flight datagrams, then the primary dies
      // with no farewell — its process state is simply gone. Everything
      // the standby needs is already durable in the shared journal.
      engine.flush();
      epoch_at_death = live->epoch();
      primary.reset();
      live = &standby.promote();
      EXPECT_TRUE(standby.promoted());
      // Epoch continuity: the promoted server resumes the exact stream.
      EXPECT_EQ(live->epoch(), epoch_at_death);
    }
  }

  // Quiescent tail: faults off, heartbeat rekeys flush silently-missed
  // tail epochs, and the client state machines repair every gap against
  // the promoted server.
  engine.flush();
  engine.set_rule(transport::FaultRule{});
  bool converged = false;
  for (int phase = 0; phase < 4 && !converged; ++phase) {
    const UserId probe = next_user++;
    live->join(probe);
    live->leave(probe);
    converged = pump(32);
  }

  EXPECT_TRUE(converged);
  EXPECT_GT(epoch_at_death, kGroupSize);  // the failover really was mid-churn
  EXPECT_GT(live->epoch(), epoch_at_death);
  EXPECT_GT(standby_applied, 0u);
  EXPECT_LT(pump_rounds, 200u);

  std::size_t nacks = 0;
  std::size_t completions = 0;
  for (const auto& [user, client] : members) {
    nacks += client->recovery_stats().nacks_sent;
    completions += client->recovery_stats().completed;
  }
  EXPECT_GT(completions, 0u);  // losses happened and were repaired...
  EXPECT_GT(nacks, 0u);        // ...through the client machines, not us

  // Fleet accounting across the failover: the promotion re-anchored the
  // published-epoch watermark, so no sample ever measured "time since an
  // epoch the dead primary published" — zero SLO violations.
  EXPECT_EQ(
      telemetry::Registry::global().counter("fleet.slo_violations").value(),
      0u);
  EXPECT_GT(
      telemetry::Registry::global().counter("storage.standby_applied").value(),
      0u);
  EXPECT_EQ(
      telemetry::Registry::global().counter("storage.promotions").value(), 1u);

  // And the journal outlives the whole drama: a cold replica recovering
  // from the same backend lands byte-identical to the promoted server.
  server::GroupKeyServer replica(config, network);
  replica.recover_from_storage();
  EXPECT_EQ(replica.snapshot(), live->snapshot());
}

}  // namespace
}  // namespace keygraphs

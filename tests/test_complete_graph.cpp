// CompleteGraph: 2^n - 1 keys, exponential join cost, free leaves, and the
// structural forward secrecy the paper credits this class with.
#include "keygraph/complete_graph.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace keygraphs {
namespace {

crypto::SecureRandom& rng() {
  static crypto::SecureRandom instance(55);
  return instance;
}

CompleteGraph make(std::size_t n) {
  CompleteGraph graph(crypto::CipherAlgorithm::kDes, rng());
  for (UserId user = 1; user <= n; ++user) graph.join(user);
  return graph;
}

TEST(CompleteGraph, KeyCountIsTwoToTheNMinusOne) {
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u}) {
    const CompleteGraph graph = make(n);
    EXPECT_EQ(graph.key_count(), (std::size_t{1} << n) - 1) << "n=" << n;
  }
}

TEST(CompleteGraph, EachUserHoldsTwoToTheNMinusOneKeys) {
  const std::size_t n = 5;
  const CompleteGraph graph = make(n);
  for (UserId user = 1; user <= n; ++user) {
    EXPECT_EQ(graph.keyset(user).size(), std::size_t{1} << (n - 1));
  }
}

TEST(CompleteGraph, JoinCostsMatchTable2Shape) {
  CompleteGraph graph(crypto::CipherAlgorithm::kDes, rng());
  graph.join(1);
  // Joining user u into a group of k existing members: the server encrypts
  // 2^k - 1 fresh subset keys plus 2^k - 1 keys for u: ~2^(k+1).
  for (std::size_t existing = 1; existing <= 6; ++existing) {
    const CompleteOpCost cost = graph.join(existing + 1);
    const auto two_k = static_cast<double>(std::size_t{1} << existing);
    EXPECT_EQ(cost.server_encryptions, 2 * (std::size_t{1} << existing) - 2);
    EXPECT_EQ(cost.requesting_user_decryptions,
              (std::size_t{1} << existing) - 1);
    EXPECT_NEAR(cost.non_requesting_user_decryptions, two_k / 2.0,
                two_k / 2.0 * 0.5);
  }
}

TEST(CompleteGraph, LeaveIsFree) {
  CompleteGraph graph = make(5);
  const CompleteOpCost cost = graph.leave(3);
  EXPECT_EQ(cost.server_encryptions, 0u);             // Table 2(c): 0
  EXPECT_EQ(cost.requesting_user_decryptions, 0u);    // Table 2(a): 0
  EXPECT_EQ(cost.non_requesting_user_decryptions, 0.0);
}

TEST(CompleteGraph, LeaveDropsAllSubsetsContainingLeaver) {
  CompleteGraph graph = make(4);
  graph.leave(2);
  EXPECT_EQ(graph.user_count(), 3u);
  // 2^3 - 1 keys remain for the surviving subsets.
  EXPECT_EQ(graph.key_count(), 7u);
  EXPECT_THROW(graph.keyset(2), ProtocolError);
}

TEST(CompleteGraph, GroupKeySharedByAllAfterChurn) {
  CompleteGraph graph = make(5);
  graph.leave(4);
  graph.join(10);
  const SymmetricKey group = graph.group_key();
  for (UserId user : {1u, 2u, 3u, 5u, 10u}) {
    EXPECT_TRUE(graph.member_holds(user, group.secret)) << "user " << user;
  }
}

TEST(CompleteGraph, ForwardSecrecyStructural) {
  CompleteGraph graph = make(4);
  // Snapshot the leaver's keys, then leave: none may remain live.
  const std::vector<SymmetricKey> leaver_keys = graph.keyset(2);
  graph.leave(2);
  const SymmetricKey group = graph.group_key();
  for (const SymmetricKey& key : leaver_keys) {
    EXPECT_NE(key.secret, group.secret);
    for (UserId survivor : {1u, 3u, 4u}) {
      for (const SymmetricKey& live : graph.keyset(survivor)) {
        EXPECT_NE(key.secret, live.secret);
      }
    }
  }
}

TEST(CompleteGraph, BackwardSecrecyStructural) {
  CompleteGraph graph = make(3);
  // Snapshot all keys before the join; the joiner must hold none of them.
  std::vector<Bytes> before;
  for (UserId user = 1; user <= 3; ++user) {
    for (const SymmetricKey& key : graph.keyset(user)) {
      before.push_back(key.secret);
    }
  }
  graph.join(9);
  for (const SymmetricKey& key : graph.keyset(9)) {
    for (const Bytes& old : before) EXPECT_NE(key.secret, old);
  }
}

TEST(CompleteGraph, GuardsAndErrors) {
  CompleteGraph graph(crypto::CipherAlgorithm::kDes, rng());
  EXPECT_THROW(graph.join(0), ProtocolError);
  graph.join(1);
  EXPECT_THROW(graph.join(1), ProtocolError);
  EXPECT_THROW(graph.leave(99), ProtocolError);
  EXPECT_THROW(graph.keyset(99), ProtocolError);
}

TEST(CompleteGraph, SlotExhaustionIsExplicit) {
  CompleteGraph graph(crypto::CipherAlgorithm::kDes, rng());
  for (UserId user = 1; user <= CompleteGraph::kMaxUsers; ++user) {
    graph.join(user);
  }
  EXPECT_THROW(graph.join(999), ProtocolError);
}

TEST(CompleteGraph, EmptyGroupHasNoGroupKey) {
  CompleteGraph graph(crypto::CipherAlgorithm::kDes, rng());
  EXPECT_THROW(graph.group_key(), ProtocolError);
}

}  // namespace
}  // namespace keygraphs

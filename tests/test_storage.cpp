// Durable state: CRC framing, journal records, the three storage
// backends, the DurableStore append/load/tail/compact lifecycle, and
// whole-server crash recovery via rng-tape replay — including the typed
// corruption errors (torn tail, CRC damage, epoch gaps) and byte-identical
// restart on the disk backends.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>

#include "common/bytes.h"
#include "common/error.h"
#include "server/server.h"
#include "server/sharded_server.h"
#include "server/standby.h"
#include "storage/backend.h"
#include "storage/crc32.h"
#include "storage/durable.h"
#include "storage/record.h"
#include "transport/transport.h"

namespace keygraphs {
namespace {

using storage::Cursor;
using storage::DurableStore;
using storage::FrameScan;
using storage::JournalRecord;
using storage::OpKind;
using storage::RecoveredLog;
using storage::RecoveryOptions;
using storage::StorageBackend;

/// Fresh per-test scratch directory under the system tmp dir (unique per
/// process so parallel ctest runs never collide).
std::string temp_dir(const std::string& tag) {
  const std::filesystem::path base =
      std::filesystem::temp_directory_path() /
      ("kg_storage_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(base);
  std::filesystem::create_directories(base);
  return base.string();
}

/// The one journal segment in `dir` (lane 0, any generation/suffix).
std::string journal_file(const std::string& dir) {
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal.", 0) == 0) return entry.path().string();
  }
  ADD_FAILURE() << "no journal segment in " << dir;
  return {};
}

JournalRecord sample_record(std::uint64_t epoch) {
  JournalRecord record;
  record.epoch = epoch;
  record.kind = OpKind::kJoin;
  record.shard = 0;
  record.timestamp_us = 1'000'000 + epoch;
  record.joins = {epoch};
  record.rng_tape = Bytes{1, 2, 3, static_cast<std::uint8_t>(epoch)};
  record.sealed_digest = Bytes(32, static_cast<std::uint8_t>(epoch));
  return record;
}

// --- CRC + frame layer --------------------------------------------------

TEST(Crc32, MatchesTheIeeeCheckValue) {
  // The canonical CRC-32 check vector.
  EXPECT_EQ(storage::crc32(bytes_of("123456789")), 0xCBF43926u);
  EXPECT_EQ(storage::crc32(BytesView{}), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const Bytes data = bytes_of("write-ahead journals are just tapes");
  std::uint32_t crc = 0;
  for (std::size_t i = 0; i < data.size(); i += 7) {
    crc = storage::crc32_update(crc, data.data() + i,
                                std::min<std::size_t>(7, data.size() - i));
  }
  EXPECT_EQ(crc, storage::crc32(data));
}

TEST(JournalRecord, PayloadRoundTripsExactly) {
  JournalRecord record = sample_record(7);
  record.sequence = 42;
  record.kind = OpKind::kBatch;
  record.shard = 3;
  record.joins = {10, 11, 12};
  record.leaves = {4};
  record.root_tape = bytes_of("root draws");
  const JournalRecord back =
      JournalRecord::decode_payload(record.encode_payload());
  EXPECT_EQ(back.sequence, 42u);
  EXPECT_EQ(back.epoch, 7u);
  EXPECT_EQ(back.kind, OpKind::kBatch);
  EXPECT_EQ(back.shard, 3u);
  EXPECT_EQ(back.timestamp_us, record.timestamp_us);
  EXPECT_EQ(back.joins, record.joins);
  EXPECT_EQ(back.leaves, record.leaves);
  EXPECT_EQ(back.rng_tape, record.rng_tape);
  EXPECT_EQ(back.root_tape, record.root_tape);
  EXPECT_EQ(back.sealed_digest, record.sealed_digest);
}

TEST(JournalRecord, FrameScanWalksBackToBackRecords) {
  Bytes stream;
  for (std::uint64_t epoch = 1; epoch <= 5; ++epoch) {
    const Bytes frame = sample_record(epoch).encode_frame();
    stream.insert(stream.end(), frame.begin(), frame.end());
  }
  const FrameScan scan = storage::scan_frames(stream);
  ASSERT_EQ(scan.records.size(), 5u);
  EXPECT_EQ(scan.consumed, stream.size());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.records[4].epoch, 5u);
}

TEST(JournalRecord, TornTailIsFlaggedNotThrown) {
  Bytes stream = sample_record(1).encode_frame();
  const Bytes second = sample_record(2).encode_frame();
  stream.insert(stream.end(), second.begin(), second.end() - 5);
  const FrameScan scan = storage::scan_frames(stream);
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.consumed, stream.size() - (second.size() - 5));
}

TEST(JournalRecord, CrcDamageMidSegmentThrowsCorrupt) {
  Bytes stream = sample_record(1).encode_frame();
  const std::size_t first = stream.size();
  const Bytes second = sample_record(2).encode_frame();
  stream.insert(stream.end(), second.begin(), second.end());
  stream[first + storage::kFrameHeaderSize + 3] ^= 0xff;  // payload bit rot
  EXPECT_THROW(storage::scan_frames(stream), storage::JournalCorruptError);
  Bytes bad_magic = stream;
  bad_magic[0] ^= 0xff;
  EXPECT_THROW(storage::scan_frames(bad_magic),
               storage::JournalCorruptError);
}

// --- Backends -----------------------------------------------------------

class BackendTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::shared_ptr<StorageBackend> make(std::size_t lanes) {
    const std::string kind = GetParam();
    if (kind == "memory") return storage::make_memory_backend(lanes);
    dir_ = temp_dir(std::string(kind) + "_backend");
    if (kind == "file") return storage::make_file_backend(dir_, lanes);
    return storage::make_mmap_backend(dir_, lanes);
  }
  std::string dir_;
};

TEST_P(BackendTest, AppendReadTruncateRoundTrip) {
  const auto backend = make(2);
  EXPECT_EQ(backend->lanes(), 2u);
  backend->append(0, bytes_of("alpha"));
  backend->append(0, bytes_of("beta"));
  backend->append(1, bytes_of("gamma"));
  backend->sync(0);
  backend->sync(1);
  EXPECT_EQ(backend->journal_size(0), 9u);
  EXPECT_EQ(backend->read_journal(0, 0), bytes_of("alphabeta"));
  EXPECT_EQ(backend->read_journal(0, 5), bytes_of("beta"));
  EXPECT_EQ(backend->read_journal(1, 0), bytes_of("gamma"));
  backend->truncate(0, 5);
  EXPECT_EQ(backend->read_journal(0, 0), bytes_of("alpha"));
  backend->append(0, bytes_of("delta"));
  backend->sync(0);
  EXPECT_EQ(backend->read_journal(0, 0), bytes_of("alphadelta"));
}

TEST_P(BackendTest, CompactReplacesSnapshotAndTruncatesLanes) {
  const auto backend = make(1);
  EXPECT_FALSE(backend->read_snapshot().has_value());
  EXPECT_EQ(backend->generation(), 0u);
  backend->append(0, bytes_of("journal bytes"));
  backend->sync(0);
  backend->compact(9, bytes_of("state at epoch nine"));
  EXPECT_EQ(backend->generation(), 1u);
  EXPECT_EQ(backend->journal_size(0), 0u);
  const auto snapshot = backend->read_snapshot();
  ASSERT_TRUE(snapshot.has_value());
  EXPECT_EQ(*snapshot, bytes_of("state at epoch nine"));
  EXPECT_EQ(backend->snapshot_epoch(), 9u);
  backend->compact(12, bytes_of("newer"));
  EXPECT_EQ(backend->generation(), 2u);
  EXPECT_EQ(backend->snapshot_epoch(), 12u);
}

TEST_P(BackendTest, SurvivesReopenWhenDiskBacked) {
  const auto backend = make(1);
  backend->append(0, bytes_of("persisted"));
  backend->sync(0);
  backend->compact(3, bytes_of("snap"));
  backend->append(0, bytes_of("after"));
  backend->sync(0);
  if (dir_.empty()) return;  // memory backend: nothing to reopen
  const std::string kind = GetParam();
  const auto reopened = kind == "file"
                            ? storage::make_file_backend(dir_, 1)
                            : storage::make_mmap_backend(dir_, 1);
  EXPECT_EQ(reopened->generation(), 1u);
  EXPECT_EQ(reopened->snapshot_epoch(), 3u);
  ASSERT_TRUE(reopened->read_snapshot().has_value());
  EXPECT_EQ(*reopened->read_snapshot(), bytes_of("snap"));
  EXPECT_EQ(reopened->read_journal(0, 0), bytes_of("after"));
}

INSTANTIATE_TEST_SUITE_P(AllBackends, BackendTest,
                         ::testing::Values("memory", "file", "mmap"),
                         [](const auto& info) {
                           return std::string(info.param);
                         });

// --- DurableStore -------------------------------------------------------

TEST(DurableStore, AppendAssignsSequencesAndLoadReturnsThem) {
  DurableStore store(storage::make_memory_backend(1), 0);
  for (std::uint64_t epoch = 1; epoch <= 4; ++epoch) {
    JournalRecord record = sample_record(epoch);
    store.append(record);
    EXPECT_EQ(record.sequence, epoch);
  }
  const RecoveredLog log = store.load(RecoveryOptions{});
  EXPECT_FALSE(log.snapshot.has_value());
  ASSERT_EQ(log.records.size(), 4u);
  EXPECT_EQ(log.records.front().epoch, 1u);
  EXPECT_EQ(log.records.back().sequence, 4u);
}

TEST(DurableStore, LoadMergesLanesByCommitSequence) {
  DurableStore store(storage::make_memory_backend(3), 0);
  for (std::uint64_t epoch = 1; epoch <= 6; ++epoch) {
    JournalRecord record = sample_record(epoch);
    record.shard = static_cast<std::uint32_t>(epoch % 3);  // spread lanes
    store.append(record);
  }
  const RecoveredLog log = store.load(RecoveryOptions{});
  ASSERT_EQ(log.records.size(), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(log.records[i].sequence, i + 1);
    EXPECT_EQ(log.records[i].epoch, i + 1);
  }
}

TEST(DurableStore, EpochGapInJournalThrowsTyped) {
  const auto backend = storage::make_memory_backend(1);
  {
    DurableStore store(backend, 0);
    for (const std::uint64_t epoch : {1u, 2u, 4u}) {  // 3 went missing
      JournalRecord record = sample_record(epoch);
      store.append(record);
    }
  }
  DurableStore reader(backend, 0);
  EXPECT_THROW(reader.load(RecoveryOptions{}), storage::EpochGapError);
}

TEST(DurableStore, SnapshotJournalEpochGapThrowsTyped) {
  const auto backend = storage::make_memory_backend(1);
  DurableStore store(backend, 0);
  store.compact(5, bytes_of("snapshot at five"));
  JournalRecord record = sample_record(7);  // 6 never journaled
  store.append(record);
  EXPECT_THROW(store.load(RecoveryOptions{}), storage::EpochGapError);
}

TEST(DurableStore, PreloadRecordsAreExemptFromEpochContiguity) {
  DurableStore store(storage::make_memory_backend(1), 0);
  JournalRecord preload = sample_record(0);
  preload.kind = OpKind::kPreload;
  preload.joins = {1, 2, 3};
  store.append(preload);
  JournalRecord first = sample_record(1);
  store.append(first);
  const RecoveredLog log = store.load(RecoveryOptions{});
  ASSERT_EQ(log.records.size(), 2u);
  EXPECT_EQ(log.records.front().kind, OpKind::kPreload);
}

TEST(DurableStore, TailFeedsNewRecordsAndReanchorsOnCompaction) {
  const auto backend = storage::make_memory_backend(1);
  DurableStore writer(backend, 0);
  DurableStore reader(backend, 0);
  Cursor cursor;

  for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
    JournalRecord record = sample_record(epoch);
    writer.append(record);
  }
  storage::Tail tail = reader.tail(cursor);
  EXPECT_FALSE(tail.snapshot.has_value());
  ASSERT_EQ(tail.records.size(), 3u);

  JournalRecord fourth = sample_record(4);
  writer.append(fourth);
  tail = reader.tail(cursor);
  ASSERT_EQ(tail.records.size(), 1u);
  EXPECT_EQ(tail.records.front().epoch, 4u);

  // Nothing new: an idle poll returns empty without disturbing the cursor.
  tail = reader.tail(cursor);
  EXPECT_TRUE(tail.records.empty());

  // Compaction invalidates the cursor's byte offsets; the next tail
  // re-anchors on the snapshot and the (now truncated) journal.
  writer.compact(4, bytes_of("state at four"));
  JournalRecord fifth = sample_record(5);
  writer.append(fifth);
  tail = reader.tail(cursor);
  ASSERT_TRUE(tail.snapshot.has_value());
  EXPECT_EQ(tail.snapshot_epoch, 4u);
  ASSERT_EQ(tail.records.size(), 1u);
  EXPECT_EQ(tail.records.front().epoch, 5u);
}

TEST(DurableStore, DropTailAfterCutsTornBytes) {
  const auto backend = storage::make_memory_backend(1);
  DurableStore writer(backend, 0);
  JournalRecord record = sample_record(1);
  writer.append(record);

  DurableStore reader(backend, 0);
  Cursor cursor;
  EXPECT_EQ(reader.tail(cursor).records.size(), 1u);

  // A dead writer's half-appended frame...
  const Bytes half = sample_record(9).encode_frame();
  backend->append(0, Bytes(half.begin(), half.end() - 5));
  const storage::Tail quiet = reader.tail(cursor);
  EXPECT_TRUE(quiet.records.empty());  // waiting, not throwing
  // ...is cut at promotion so new appends start on a frame boundary.
  reader.drop_tail_after(cursor);
  JournalRecord next = sample_record(2);
  reader.append(next);
  EXPECT_EQ(next.sequence, 2u);  // sequence continues past the observed one
  const RecoveredLog log = reader.load(RecoveryOptions{});
  ASSERT_EQ(log.records.size(), 2u);
  EXPECT_EQ(log.records.back().epoch, 2u);
}

// --- Whole-server recovery ---------------------------------------------

server::ServerConfig durable_config(std::uint64_t seed,
                                    std::shared_ptr<StorageBackend> backend) {
  server::ServerConfig config;
  config.tree_degree = 4;
  config.rng_seed = seed;
  config.retransmit_window = 16;
  config.recovery_rate = 0;
  config.storage.backend = std::move(backend);
  return config;
}

void churn(server::GroupKeyServer& server) {
  for (UserId user = 1; user <= 12; ++user) server.join(user);
  server.leave(3);
  server.batch({20, 21, 22}, {5, 6});
  server.leave(1);
}

TEST(ServerRecovery, ReplayRebuildsByteIdenticalState) {
  const auto backend = storage::make_memory_backend(1);
  transport::NullTransport transport;
  server::GroupKeyServer primary(durable_config(77, backend), transport);
  churn(primary);
  const Bytes expected = primary.snapshot();
  const std::uint64_t epoch = primary.epoch();

  // A replica with a *different* seed converges to the same bytes: every
  // key the original drew is replayed from the journaled rng tapes.
  server::GroupKeyServer replica(durable_config(12345, backend), transport);
  replica.recover_from_storage();
  EXPECT_EQ(replica.epoch(), epoch);
  EXPECT_EQ(replica.snapshot(), expected);
  EXPECT_EQ(replica.tree().group_key(), primary.tree().group_key());

  // The replica keeps operating — and journals its own ops durably.
  replica.join(100);
  EXPECT_EQ(replica.epoch(), epoch + 1);
}

TEST(ServerRecovery, ResyncsAreNeverJournaled) {
  const auto backend = storage::make_memory_backend(1);
  transport::NullTransport transport;
  server::GroupKeyServer server(durable_config(31, backend), transport);
  server.join(1);
  server.join(2);
  const std::size_t before = server.durable()->load(RecoveryOptions{})
                                 .records.size();
  server.resync(1);
  (void)server.handle_nack(2, 1);
  EXPECT_EQ(server.durable()->load(RecoveryOptions{}).records.size(),
            before);
}

TEST(ServerRecovery, ReplayRehydratesTheRetransmitWindow) {
  const auto backend = storage::make_memory_backend(1);
  transport::NullTransport transport;
  server::GroupKeyServer primary(durable_config(55, backend), transport);
  churn(primary);

  server::GroupKeyServer replica(durable_config(55, backend), transport);
  replica.recover_from_storage();
  // A member one epoch behind is served from the rehydrated sealed-bytes
  // ring — no resync fallback, exactly as the original server would.
  EXPECT_EQ(replica.handle_nack(2, replica.epoch() - 1),
            server::NackOutcome::kRetransmitted);
}

TEST(ServerRecovery, WrongAuthMasterFailsAsDivergence) {
  const auto backend = storage::make_memory_backend(1);
  transport::NullTransport transport;
  server::GroupKeyServer primary(durable_config(41, backend), transport);
  churn(primary);

  server::ServerConfig wrong = durable_config(41, backend);
  wrong.auth_master = bytes_of("not the same secret");
  server::GroupKeyServer replica(wrong, transport);
  EXPECT_THROW(replica.recover_from_storage(),
               storage::ReplayDivergenceError);
}

TEST(ServerRecovery, SnapshotIntervalCompactsAndRecoveryUsesIt) {
  const auto backend = storage::make_memory_backend(1);
  transport::NullTransport transport;
  server::ServerConfig config = durable_config(63, backend);
  config.storage.snapshot_interval = 4;
  server::GroupKeyServer primary(config, transport);
  for (UserId user = 1; user <= 10; ++user) primary.join(user);

  // 10 commits with interval 4: compacted at least twice, and the journal
  // holds only the records after the last snapshot.
  EXPECT_GE(backend->generation(), 2u);
  ASSERT_TRUE(backend->read_snapshot().has_value());
  const RecoveredLog log = primary.durable()->load(RecoveryOptions{});
  EXPECT_GT(log.snapshot_epoch, 0u);
  EXPECT_LT(log.records.size(), 10u);

  server::GroupKeyServer replica(config, transport);
  replica.recover_from_storage();
  EXPECT_EQ(replica.epoch(), primary.epoch());
  EXPECT_EQ(replica.snapshot(), primary.snapshot());
}

TEST(ServerRecovery, FileBackendRestartIsByteIdentical) {
  const std::string dir = temp_dir("file_restart");
  transport::NullTransport transport;
  server::ServerConfig config;
  config.rng_seed = 99;
  config.storage.kind = storage::Kind::kFile;
  config.storage.journal_dir = dir;
  config.storage.snapshot_interval = 6;

  Bytes expected;
  std::uint64_t epoch = 0;
  {
    server::GroupKeyServer primary(config, transport);
    churn(primary);
    expected = primary.snapshot();
    epoch = primary.epoch();
  }  // "crash": the process state is gone, only the journal dir remains

  server::GroupKeyServer restarted(config, transport);
  restarted.recover_from_storage();
  EXPECT_EQ(restarted.epoch(), epoch);
  EXPECT_EQ(restarted.snapshot(), expected);
}

TEST(ServerRecovery, MmapBackendRestartIsByteIdentical) {
  const std::string dir = temp_dir("mmap_restart");
  transport::NullTransport transport;
  server::ServerConfig config;
  config.rng_seed = 98;
  config.storage.kind = storage::Kind::kMmap;
  config.storage.journal_dir = dir;

  Bytes expected;
  {
    server::GroupKeyServer primary(config, transport);
    churn(primary);
    expected = primary.snapshot();
  }
  server::GroupKeyServer restarted(config, transport);
  restarted.recover_from_storage();
  EXPECT_EQ(restarted.snapshot(), expected);
}

// --- Journal corruption, end to end ------------------------------------

TEST(JournalCorruption, TruncatedTailStrictThrowsTolerantDropsOneOp) {
  const std::string dir = temp_dir("torn_tail");
  transport::NullTransport transport;
  server::ServerConfig config;
  config.rng_seed = 71;
  config.storage.kind = storage::Kind::kFile;
  config.storage.journal_dir = dir;
  config.storage.snapshot_interval = 0;  // keep every record on disk

  std::uint64_t epoch = 0;
  {
    server::GroupKeyServer primary(config, transport);
    for (UserId user = 1; user <= 8; ++user) primary.join(user);
    epoch = primary.epoch();
  }
  // Crash mid-append: the final frame loses its last bytes.
  const std::string wal = journal_file(dir);
  const auto size = std::filesystem::file_size(wal);
  std::filesystem::resize_file(wal, size - 5);

  {
    server::GroupKeyServer strict(config, transport);
    EXPECT_THROW(strict.recover_from_storage(),
                 storage::JournalTruncatedError);
  }
  server::GroupKeyServer tolerant(config, transport);
  RecoveryOptions options;
  options.tolerate_torn_tail = true;
  tolerant.recover_from_storage(options);
  // The torn record's datagrams never left the original server, so
  // resuming one epoch short is consistent — and the journal was cut back
  // to a frame boundary, so new commits append cleanly.
  EXPECT_EQ(tolerant.epoch(), epoch - 1);
  tolerant.join(200);
  EXPECT_EQ(tolerant.epoch(), epoch);

  server::GroupKeyServer again(config, transport);
  again.recover_from_storage();
  EXPECT_EQ(again.snapshot(), tolerant.snapshot());
}

TEST(JournalCorruption, CrcDamageMidSegmentFailsRecoveryTyped) {
  const std::string dir = temp_dir("bit_rot");
  transport::NullTransport transport;
  server::ServerConfig config;
  config.rng_seed = 72;
  config.storage.kind = storage::Kind::kFile;
  config.storage.journal_dir = dir;
  config.storage.snapshot_interval = 0;
  {
    server::GroupKeyServer primary(config, transport);
    for (UserId user = 1; user <= 6; ++user) primary.join(user);
  }
  const std::string wal = journal_file(dir);
  {
    std::fstream file(wal, std::ios::in | std::ios::out |
                               std::ios::binary);
    file.seekp(static_cast<std::streamoff>(
        std::filesystem::file_size(wal) / 2));
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(-1, std::ios::cur);
    byte = static_cast<char>(byte ^ 0x40);
    file.write(&byte, 1);
  }
  server::GroupKeyServer replica(config, transport);
  // Tolerance covers torn tails only — mid-segment damage always throws.
  RecoveryOptions tolerant;
  tolerant.tolerate_torn_tail = true;
  EXPECT_THROW(replica.recover_from_storage(tolerant),
               storage::JournalCorruptError);
}

TEST(JournalCorruption, MissingEpochFailsRecoveryTyped) {
  // Forge a journal with a hole: epochs 1, 2, 4 — as if one lane's fsync
  // lied. The server must refuse to silently skip epoch 3.
  const auto backend = storage::make_memory_backend(1);
  transport::NullTransport transport;
  {
    server::GroupKeyServer primary(durable_config(73, backend), transport);
    for (UserId user = 1; user <= 4; ++user) primary.join(user);
  }
  // Rewrite the journal without the epoch-3 frame.
  DurableStore reader(backend, 0);
  RecoveredLog log = reader.load(RecoveryOptions{});
  ASSERT_EQ(log.records.size(), 4u);
  backend->truncate(0, 0);
  for (JournalRecord& record : log.records) {
    if (record.epoch == 3) continue;
    backend->append(0, record.encode_frame());
  }
  server::GroupKeyServer replica(durable_config(73, backend), transport);
  EXPECT_THROW(replica.recover_from_storage(), storage::EpochGapError);
}

// --- Sharded recovery ---------------------------------------------------

TEST(ShardedRecovery, JournalOnlyReplayAcrossLanes) {
  const auto backend = storage::make_memory_backend(4);
  transport::NullTransport transport;
  server::ShardedServerConfig config;
  config.shards = 4;
  config.base.tree_degree = 4;
  config.base.rng_seed = 81;
  config.base.retransmit_window = 16;
  config.base.recovery_rate = 0;
  config.base.storage.backend = backend;

  server::ShardedGroupKeyServer primary(config, transport);
  std::vector<UserId> preloaded;
  for (UserId user = 1; user <= 64; ++user) preloaded.push_back(user);
  primary.preload(preloaded);
  for (UserId user = 100; user <= 112; ++user) primary.join(user);
  primary.leave(7);
  primary.batch({200, 201, 202}, {8, 103});
  primary.leave(110);

  server::ShardedServerConfig replica_config = config;
  replica_config.base.rng_seed = 4242;  // tapes make the seed irrelevant
  server::ShardedGroupKeyServer replica(replica_config, transport);
  replica.recover_from_storage();

  EXPECT_EQ(replica.epoch(), primary.epoch());
  EXPECT_EQ(replica.member_count(), primary.member_count());
  EXPECT_EQ(replica.group_key().secret, primary.group_key().secret);
  for (const UserId user : {UserId{1}, UserId{42}, UserId{100}, UserId{202}}) {
    EXPECT_EQ(replica.keyset(user), primary.keyset(user)) << "user " << user;
  }
  EXPECT_FALSE(replica.has_member(7));
  EXPECT_FALSE(replica.has_member(110));

  // The replayed dispatch cursor continues the stitched epoch stream.
  // (Key material now diverges — post-recovery randomness comes from the
  // replica's own differently-seeded rng; only the epochs stay in step.)
  primary.join(300);
  replica.join(300);
  EXPECT_EQ(replica.epoch(), primary.epoch());
  // And the rehydrated window serves a one-epoch gap without a resync.
  EXPECT_EQ(replica.handle_nack(1, replica.epoch() - 1),
            server::NackOutcome::kRetransmitted);
}

TEST(ShardedRecovery, SingleShardJournalInteroperates) {
  // K = 1 sharded output is byte-identical to GroupKeyServer, and so is
  // its journal: either server can recover the other's log.
  const auto backend = storage::make_memory_backend(1);
  transport::NullTransport transport;
  server::GroupKeyServer flat(durable_config(83, backend), transport);
  churn(flat);

  server::ShardedServerConfig config;
  config.shards = 1;
  config.base = durable_config(83, backend);
  server::ShardedGroupKeyServer sharded(config, transport);
  sharded.recover_from_storage();
  EXPECT_EQ(sharded.epoch(), flat.epoch());
  EXPECT_EQ(sharded.group_key(), flat.tree().group_key());
  EXPECT_EQ(sharded.member_count(), flat.tree().user_count());
}

// --- Hot standby --------------------------------------------------------

TEST(Standby, TailsThePrimaryAndPromotesSeamlessly) {
  const auto backend = storage::make_memory_backend(1);
  transport::NullTransport transport;
  auto primary = std::make_unique<server::GroupKeyServer>(
      durable_config(91, backend), transport);
  server::StandbyServer standby(durable_config(91, backend), transport);

  for (UserId user = 1; user <= 8; ++user) primary->join(user);
  EXPECT_EQ(standby.poll(), 8u);
  EXPECT_EQ(standby.epoch(), primary->epoch());

  primary->leave(4);
  primary->batch({30, 31}, {2});
  EXPECT_EQ(standby.poll(), 2u);
  EXPECT_EQ(standby.server().snapshot(), primary->snapshot());

  const std::uint64_t at_death = primary->epoch();
  primary.reset();  // the primary dies

  server::GroupKeyServer& promoted = standby.promote();
  EXPECT_TRUE(standby.promoted());
  EXPECT_EQ(promoted.epoch(), at_death);
  // The promoted server continues the same epoch stream and journals its
  // own commits into the same backend with fresh sequences.
  promoted.join(50);
  EXPECT_EQ(promoted.epoch(), at_death + 1);

  server::GroupKeyServer replica(durable_config(91, backend), transport);
  replica.recover_from_storage();
  EXPECT_EQ(replica.snapshot(), promoted.snapshot());
}

TEST(Standby, RequiresStorage) {
  transport::NullTransport transport;
  server::ServerConfig config;
  EXPECT_THROW(server::StandbyServer standby(config, transport),
               storage::StorageError);
}

}  // namespace
}  // namespace keygraphs

// TreeView: the immutable per-epoch snapshots the arena-backed KeyTree
// publishes after every mutation. Views must (a) never change underneath a
// reader, (b) answer every read exactly like the live tree, (c) serialize
// byte-identically to the tree's own encoding, and (d) resolve key
// material for rekey::KeySnapshot without copying.
#include "keygraph/tree_view.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/error.h"
#include "keygraph/key_tree.h"
#include "rekey/plan.h"

namespace keygraphs {
namespace {

crypto::SecureRandom& rng() {
  static crypto::SecureRandom instance(4242);
  return instance;
}

Bytes ik(UserId user) {
  Bytes key(8, 0);
  for (int i = 0; i < 8; ++i) key[static_cast<std::size_t>(i)] =
      static_cast<std::uint8_t>(user >> (8 * i));
  return key;
}

TEST(TreeView, AcquiredViewSurvivesMutationsUnchanged) {
  KeyTree tree(4, 8, rng());
  tree.join(1, ik(1));
  tree.join(2, ik(2));
  const TreeViewPtr before = tree.view();
  const Bytes before_bytes = before->serialize();
  const SymmetricKey before_group = before->group_key();

  tree.join(3, ik(3));
  tree.leave(1);
  tree.join(4, ik(4));

  // The old view is frozen: same members, same bytes, same group key.
  EXPECT_EQ(before->user_count(), 2u);
  EXPECT_TRUE(before->has_user(1));
  EXPECT_FALSE(before->has_user(3));
  EXPECT_EQ(before->serialize(), before_bytes);
  EXPECT_EQ(before->group_key().secret, before_group.secret);

  // The current view reflects the mutations.
  const TreeViewPtr after = tree.view();
  EXPECT_EQ(after->user_count(), 3u);
  EXPECT_FALSE(after->has_user(1));
  EXPECT_TRUE(after->has_user(4));
  EXPECT_NE(after->group_key().secret, before_group.secret);
}

TEST(TreeView, EpochCountsMutationsOnStandaloneTree) {
  KeyTree tree(3, 8, rng());
  EXPECT_EQ(tree.view()->epoch(), 0u);
  tree.join(1, ik(1));
  EXPECT_EQ(tree.view()->epoch(), 1u);
  tree.join(2, ik(2));
  tree.leave(1);
  EXPECT_EQ(tree.view()->epoch(), 3u);
  tree.stamp_next_epoch(77);
  tree.join(3, ik(3));
  EXPECT_EQ(tree.view()->epoch(), 77u);
  tree.join(4, ik(4));  // back to auto-increment from the stamp
  EXPECT_EQ(tree.view()->epoch(), 78u);
}

TEST(TreeView, ReadsMatchTreeAfterChurn) {
  KeyTree tree(3, 8, rng());
  for (UserId u = 1; u <= 40; ++u) tree.join(u, ik(u));
  for (UserId u = 2; u <= 30; u += 3) tree.leave(u);
  const TreeViewPtr view = tree.view();

  EXPECT_EQ(view->user_count(), tree.user_count());
  EXPECT_EQ(view->key_count(), tree.key_count());
  EXPECT_EQ(view->height(), tree.height());
  EXPECT_EQ(view->degree(), tree.degree());
  EXPECT_EQ(view->root_id(), tree.root_id());
  EXPECT_EQ(view->group_key().secret, tree.group_key().secret);
  EXPECT_EQ(view->users(), tree.users());
  EXPECT_EQ(view->users_under(tree.root_id()), tree.users());
  for (UserId u : tree.users()) {
    EXPECT_EQ(view->has_user(u), tree.has_user(u));
    const std::vector<SymmetricKey> expect = tree.keyset(u);
    const std::vector<SymmetricKey> got = view->keyset(u);
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, expect[i].id);
      EXPECT_EQ(got[i].version, expect[i].version);
      EXPECT_EQ(got[i].secret, expect[i].secret);
    }
    // users_under at every internal node of u's path agrees with the tree.
    for (const SymmetricKey& key : expect) {
      EXPECT_EQ(view->users_under(key.id), tree.users_under(key.id));
    }
  }
  EXPECT_THROW(view->keyset(9999), ProtocolError);
  EXPECT_THROW(view->users_under(0xdeadbeef), ProtocolError);
}

TEST(TreeView, SerializeMatchesTreeAndRoundTrips) {
  KeyTree tree(4, 16, rng());
  for (UserId u = 1; u <= 23; ++u) tree.join(u, Bytes(16, static_cast<std::uint8_t>(u)));
  tree.leave(7);
  tree.leave(8);

  const Bytes from_tree = tree.serialize();
  const Bytes from_view = tree.view()->serialize();
  EXPECT_EQ(from_view, from_tree);

  crypto::SecureRandom rng2(1);
  const auto restored = KeyTree::deserialize(from_tree, rng2);
  EXPECT_EQ(restored->serialize(), from_tree);
  EXPECT_EQ(restored->view()->serialize(), from_tree);
  EXPECT_EQ(restored->users(), tree.users());
}

TEST(TreeView, ResolveSubgroupMatchesUsersetDifference) {
  KeyTree tree(3, 8, rng());
  for (UserId u = 1; u <= 17; ++u) tree.join(u, ik(u));
  const TreeViewPtr view = tree.view();

  // Every (include, exclude) pair over the keyset path of user 5.
  const std::vector<SymmetricKey> path = view->keyset(5);
  for (const SymmetricKey& include : path) {
    for (const SymmetricKey& exclude : path) {
      const std::vector<UserId> inc = view->users_under(include.id);
      const std::vector<UserId> exc = view->users_under(exclude.id);
      std::vector<UserId> expect;
      std::set_difference(inc.begin(), inc.end(), exc.begin(), exc.end(),
                          std::back_inserter(expect));
      EXPECT_EQ(view->resolve_subgroup(include.id, exclude.id), expect);
    }
    EXPECT_EQ(view->resolve_subgroup(include.id, std::nullopt),
              view->users_under(include.id));
  }
  // Degrade semantics: unknown include -> nobody; unknown exclude -> no
  // exclusion (the excluded node vanished in the same operation).
  EXPECT_TRUE(view->resolve_subgroup(0xdeadbeef, std::nullopt).empty());
  EXPECT_EQ(view->resolve_subgroup(view->root_id(), KeyId{0xdeadbeef}),
            view->users());
}

TEST(TreeView, FindSecretIsExactGenerationMatch) {
  KeyTree tree(4, 8, rng());
  for (UserId u = 1; u <= 9; ++u) tree.join(u, ik(u));
  const TreeViewPtr view = tree.view();
  for (const SymmetricKey& key : view->keyset(4)) {
    const BytesView secret = view->find_secret(KeyRef{key.id, key.version});
    ASSERT_FALSE(secret.empty());
    EXPECT_EQ(Bytes(secret.begin(), secret.end()), key.secret);
    // A different generation of the same node is not in this snapshot.
    EXPECT_TRUE(view->find_secret(KeyRef{key.id, key.version + 1}).empty());
  }
  EXPECT_TRUE(view->find_secret(KeyRef{0xdeadbeef, 1}).empty());
}

TEST(TreeView, KeySnapshotResolvesThroughBoundView) {
  KeyTree tree(4, 8, rng());
  for (UserId u = 1; u <= 6; ++u) tree.join(u, ik(u));
  const SymmetricKey old_root = tree.group_key();
  tree.leave(6);  // bumps the root generation; old_root is now history

  rekey::KeySnapshot keys;
  keys.bind(tree.view());
  // Current-generation keys resolve straight from the view, no add() call.
  const SymmetricKey root = tree.group_key();
  EXPECT_EQ(Bytes(keys.secret(root.ref()).begin(), keys.secret(root.ref()).end()),
            root.secret);
  EXPECT_EQ(keys.size(), 0u);
  // The old generation is not view-resolvable: it must land in the overlay.
  keys.add(old_root);
  EXPECT_EQ(keys.size(), 1u);
  EXPECT_EQ(Bytes(keys.secret(old_root.ref()).begin(),
                  keys.secret(old_root.ref()).end()),
            old_root.secret);
  // Adding a current-generation key is a no-op (the view already has it).
  keys.add(root);
  EXPECT_EQ(keys.size(), 1u);
  // A ref nobody snapshotted still throws.
  EXPECT_THROW((void)keys.secret(KeyRef{0xdeadbeef, 3}), Error);
}

TEST(TreeView, SparseIdTableAfterLongChurn) {
  // Internal ids are allocation-counter values and are never reused, so
  // sustained churn leaves a small tree whose id range dwarfs its size —
  // the view must fall back to the sparse id table and stay correct.
  KeyTree tree(4, 8, rng());
  for (UserId u = 1; u <= 4; ++u) tree.join(u, ik(u));
  for (int round = 0; round < 300; ++round) {
    const UserId u = 100 + static_cast<UserId>(round);
    tree.join(u, ik(u));
    tree.leave(u);
  }
  tree.check_invariants();
  const TreeViewPtr view = tree.view();
  EXPECT_EQ(view->user_count(), 4u);
  EXPECT_EQ(view->users_under(view->root_id()), tree.users());
  for (UserId u : tree.users()) {
    for (const SymmetricKey& key : view->keyset(u)) {
      EXPECT_FALSE(view->find_secret(key.ref()).empty());
      EXPECT_EQ(view->users_under(key.id), tree.users_under(key.id));
    }
  }
  const Bytes bytes = view->serialize();
  crypto::SecureRandom rng2(2);
  EXPECT_EQ(KeyTree::deserialize(bytes, rng2)->serialize(), bytes);
}

TEST(TreeView, ToKeyGraphMirrorsMembership) {
  KeyTree tree(3, 8, rng());
  for (UserId u = 1; u <= 11; ++u) tree.join(u, ik(u));
  const KeyGraph graph = tree.view()->to_key_graph();
  for (UserId u = 1; u <= 11; ++u) {
    EXPECT_TRUE(graph.has_user(u));
    const std::set<UserId> userset = graph.userset(tree.root_id());
    EXPECT_TRUE(userset.contains(u));
  }
}

}  // namespace
}  // namespace keygraphs

// WorkloadGenerator: determinism, ratio control, and membership tracking.
#include "sim/workload.h"

#include <gtest/gtest.h>

#include <set>

namespace keygraphs::sim {
namespace {

TEST(Workload, InitialJoinsAreSequentialFreshUsers) {
  WorkloadGenerator generator(1);
  const std::vector<Request> joins = generator.initial_joins(10);
  ASSERT_EQ(joins.size(), 10u);
  for (std::size_t i = 0; i < joins.size(); ++i) {
    EXPECT_EQ(joins[i].kind, RequestKind::kJoin);
    EXPECT_EQ(joins[i].user, i + 1);
  }
  EXPECT_EQ(generator.members().size(), 10u);
}

TEST(Workload, SameSeedSameSequence) {
  WorkloadGenerator a(42), b(42);
  a.initial_joins(50);
  b.initial_joins(50);
  const std::vector<Request> churn_a = a.churn(200);
  const std::vector<Request> churn_b = b.churn(200);
  ASSERT_EQ(churn_a.size(), churn_b.size());
  for (std::size_t i = 0; i < churn_a.size(); ++i) {
    EXPECT_EQ(churn_a[i].kind, churn_b[i].kind);
    EXPECT_EQ(churn_a[i].user, churn_b[i].user);
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  WorkloadGenerator a(1), b(2);
  a.initial_joins(50);
  b.initial_joins(50);
  const auto churn_a = a.churn(100);
  const auto churn_b = b.churn(100);
  bool any_difference = false;
  for (std::size_t i = 0; i < churn_a.size(); ++i) {
    if (churn_a[i].kind != churn_b[i].kind ||
        churn_a[i].user != churn_b[i].user) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Workload, OneToOneRatioIsRoughlyBalanced) {
  WorkloadGenerator generator(7);
  generator.initial_joins(500);
  const std::vector<Request> churn = generator.churn(1000, 0.5);
  const auto joins = static_cast<std::size_t>(
      std::count_if(churn.begin(), churn.end(), [](const Request& r) {
        return r.kind == RequestKind::kJoin;
      }));
  EXPECT_GT(joins, 400u);
  EXPECT_LT(joins, 600u);
}

TEST(Workload, JoinFractionExtremes) {
  WorkloadGenerator all_joins(8);
  all_joins.initial_joins(10);
  for (const Request& request : all_joins.churn(100, 1.0)) {
    EXPECT_EQ(request.kind, RequestKind::kJoin);
  }
  WorkloadGenerator all_leaves(9);
  all_leaves.initial_joins(100);
  const auto churn = all_leaves.churn(100, 0.0);
  for (const Request& request : churn) {
    EXPECT_EQ(request.kind, RequestKind::kLeave);
  }
  EXPECT_TRUE(all_leaves.members().empty());
}

TEST(Workload, LeavesTargetCurrentMembersOnly) {
  WorkloadGenerator generator(10);
  generator.initial_joins(20);
  std::set<UserId> members;
  for (UserId user = 1; user <= 20; ++user) members.insert(user);
  for (const Request& request : generator.churn(200, 0.5)) {
    if (request.kind == RequestKind::kJoin) {
      EXPECT_TRUE(members.insert(request.user).second)
          << "join reused an id";
    } else {
      EXPECT_TRUE(members.erase(request.user) == 1)
          << "leave of a non-member";
    }
  }
}

TEST(Workload, EmptyGroupFallsBackToJoin) {
  WorkloadGenerator generator(11);
  const std::vector<Request> churn = generator.churn(5, 0.0);
  EXPECT_EQ(churn[0].kind, RequestKind::kJoin);  // nothing to leave yet
}

}  // namespace
}  // namespace keygraphs::sim

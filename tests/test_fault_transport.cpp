// Fault-injection transport: seeded determinism, each fault action's
// delivery semantics, per-user rules, and both attachment points
// (FaultyServerTransport and make_faulty_inbox).
#include "transport/fault.h"

#include <gtest/gtest.h>

#include "transport/inproc.h"

namespace keygraphs::transport {
namespace {

Bytes payload(std::uint8_t tag, std::size_t size = 24) {
  Bytes data(size, tag);
  return data;
}

/// Runs `count` deliveries through an engine built from `config`,
/// collecting (user, bytes) sink invocations in order.
std::vector<std::pair<UserId, Bytes>> run_sequence(FaultConfig config,
                                                   std::size_t count,
                                                   bool flush = true) {
  FaultEngine engine(std::move(config));
  std::vector<std::pair<UserId, Bytes>> out;
  for (std::size_t i = 0; i < count; ++i) {
    const UserId user = (i % 5) + 1;
    const Bytes data = payload(static_cast<std::uint8_t>(i));
    engine.process(user, data, [&out, user](BytesView bytes) {
      out.emplace_back(user, Bytes(bytes.begin(), bytes.end()));
    });
  }
  if (flush) engine.flush();
  return out;
}

TEST(FaultEngine, InactiveRuleAlwaysPasses) {
  FaultConfig config;
  config.record_trace = true;
  FaultEngine engine(config);
  std::size_t delivered = 0;
  for (int i = 0; i < 10; ++i) {
    engine.process(1, payload(1), [&](BytesView) { ++delivered; });
  }
  EXPECT_EQ(delivered, 10u);
  EXPECT_EQ(engine.deliveries(), 10u);
  ASSERT_EQ(engine.trace().size(), 10u);
  for (const FaultEvent& event : engine.trace()) {
    EXPECT_EQ(event.action, FaultAction::kPass);
  }
}

TEST(FaultEngine, SameSeedSameTraceAndOutput) {
  FaultConfig config;
  config.seed = 1234;
  config.rule.drop = 0.2;
  config.rule.duplicate = 0.1;
  config.rule.corrupt = 0.1;
  config.rule.reorder = 0.15;
  config.rule.delay = 0.1;
  config.record_trace = true;

  FaultEngine first(config);
  FaultEngine second(config);
  std::vector<Bytes> out_first, out_second;
  for (std::size_t i = 0; i < 200; ++i) {
    const UserId user = (i % 7) + 1;
    const Bytes data = payload(static_cast<std::uint8_t>(i), 16 + i % 32);
    first.process(user, data, [&](BytesView bytes) {
      out_first.emplace_back(bytes.begin(), bytes.end());
    });
    second.process(user, data, [&](BytesView bytes) {
      out_second.emplace_back(bytes.begin(), bytes.end());
    });
  }
  first.flush();
  second.flush();
  EXPECT_EQ(first.trace(), second.trace());
  EXPECT_EQ(out_first, out_second);
  // The mixed rule must actually have exercised a non-pass action.
  bool any_fault = false;
  for (const FaultEvent& event : first.trace()) {
    any_fault |= event.action != FaultAction::kPass;
  }
  EXPECT_TRUE(any_fault);
}

TEST(FaultEngine, DifferentSeedsDiverge) {
  FaultConfig a;
  a.seed = 1;
  a.rule.drop = 0.5;
  a.record_trace = true;
  FaultConfig b = a;
  b.seed = 2;
  FaultEngine first(a);
  FaultEngine second(b);
  for (std::size_t i = 0; i < 64; ++i) {
    first.process(1, payload(0), [](BytesView) {});
    second.process(1, payload(0), [](BytesView) {});
  }
  EXPECT_NE(first.trace(), second.trace());
}

TEST(FaultEngine, DropLosesTheDatagram) {
  FaultConfig config;
  config.rule.drop = 1.0;
  EXPECT_TRUE(run_sequence(config, 20).empty());
}

TEST(FaultEngine, DuplicateDeliversTwiceBackToBack) {
  FaultConfig config;
  config.rule.duplicate = 1.0;
  const auto out = run_sequence(config, 5);
  ASSERT_EQ(out.size(), 10u);
  for (std::size_t i = 0; i < out.size(); i += 2) {
    EXPECT_EQ(out[i], out[i + 1]);
  }
}

TEST(FaultEngine, CorruptFlipsExactlyOneBit) {
  FaultConfig config;
  config.rule.corrupt = 1.0;
  FaultEngine engine(config);
  const Bytes original = payload(0xAA, 64);
  Bytes received;
  engine.process(3, original, [&](BytesView bytes) {
    received.assign(bytes.begin(), bytes.end());
  });
  ASSERT_EQ(received.size(), original.size());
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    std::uint8_t diff = original[i] ^ received[i];
    while (diff != 0) {
      flipped += diff & 1;
      diff >>= 1;
    }
  }
  EXPECT_EQ(flipped, 1u);
}

TEST(FaultEngine, ReorderReleasesAfterSpanDeliveries) {
  FaultConfig config;
  FaultRule held;
  held.reorder = 1.0;
  held.reorder_span = 2;
  config.per_user[7] = held;  // everyone else passes untouched
  FaultEngine engine(config);
  std::vector<std::uint8_t> order;
  const auto sink_for = [&order](std::uint8_t tag) {
    return [&order, tag](BytesView) { order.push_back(tag); };
  };
  engine.process(7, payload(0), sink_for(0));  // held until seq 3
  EXPECT_EQ(engine.held(), 1u);
  engine.process(1, payload(1), sink_for(1));
  engine.process(2, payload(2), sink_for(2));  // seq 3: releases the hold
  EXPECT_EQ(engine.held(), 0u);
  EXPECT_EQ(order, (std::vector<std::uint8_t>{1, 2, 0}));
}

TEST(FaultEngine, FlushReleasesHeldInOrder) {
  FaultConfig config;
  config.rule.delay = 1.0;
  config.rule.delay_span = 1000;  // never expires during the sequence
  FaultEngine engine(config);
  std::vector<std::uint8_t> order;
  for (std::uint8_t tag = 0; tag < 4; ++tag) {
    engine.process(1, payload(tag),
                   [&order, tag](BytesView) { order.push_back(tag); });
  }
  EXPECT_TRUE(order.empty());
  EXPECT_EQ(engine.held(), 4u);
  engine.flush();
  EXPECT_EQ(engine.held(), 0u);
  EXPECT_EQ(order, (std::vector<std::uint8_t>{0, 1, 2, 3}));
}

TEST(FaultEngine, PerUserRuleOverridesGlobal) {
  FaultConfig config;
  config.per_user[5].drop = 1.0;  // only user 5 is lossy
  FaultEngine engine(config);
  std::size_t to_5 = 0, to_6 = 0;
  for (int i = 0; i < 8; ++i) {
    engine.process(5, payload(0), [&](BytesView) { ++to_5; });
    engine.process(6, payload(0), [&](BytesView) { ++to_6; });
  }
  EXPECT_EQ(to_5, 0u);
  EXPECT_EQ(to_6, 8u);
}

TEST(FaultyServerTransport, UnicastUsesPerUserRuleSubgroupUsesGlobal) {
  InProcNetwork network;
  std::size_t received_3 = 0, received_4 = 0;
  network.attach_client(3, [&](BytesView) { ++received_3; });
  network.attach_client(4, [&](BytesView) { ++received_4; });
  network.subscribe(3, 100);
  network.subscribe(4, 100);

  FaultConfig config;
  config.per_user[3].drop = 1.0;  // unicast to 3 is lost; global rule passes
  FaultyServerTransport faulty(network, config);

  const Bytes data = payload(1);
  const auto resolve = [] { return std::vector<UserId>{}; };
  faulty.deliver(rekey::Recipient::to_user(3), data, resolve);
  faulty.deliver(rekey::Recipient::to_user(4), data, resolve);
  EXPECT_EQ(received_3, 0u);
  EXPECT_EQ(received_4, 1u);

  // Subgroup deliveries run under the (fault-free) global rule and reach
  // every subscriber, including the user whose unicasts are dropped.
  faulty.deliver(rekey::Recipient::to_subgroup(100), data, resolve);
  EXPECT_EQ(received_3, 1u);
  EXPECT_EQ(received_4, 2u);
}

TEST(FaultyServerTransport, HeldDeliveryStillReachesSubscribers) {
  InProcNetwork network;
  std::size_t received = 0;
  network.attach_client(9, [&](BytesView) { ++received; });
  network.subscribe(9, 42);

  FaultConfig config;
  config.rule.delay = 1.0;
  config.rule.delay_span = 50;
  FaultyServerTransport faulty(network, config);
  faulty.deliver(rekey::Recipient::to_subgroup(42), payload(0),
                 [] { return std::vector<UserId>{}; });
  EXPECT_EQ(received, 0u);  // parked inside the engine
  faulty.engine().flush();
  EXPECT_EQ(received, 1u);  // released with its recipient intact
}

TEST(FaultyInbox, WrapsHandlerUnderUsersRule) {
  FaultConfig config;
  config.per_user[2].duplicate = 1.0;
  FaultEngine engine(config);
  std::size_t plain = 0, doubled = 0;
  const auto inbox_1 =
      make_faulty_inbox(engine, 1, [&](BytesView) { ++plain; });
  const auto inbox_2 =
      make_faulty_inbox(engine, 2, [&](BytesView) { ++doubled; });
  inbox_1(payload(0));
  inbox_2(payload(0));
  EXPECT_EQ(plain, 1u);
  EXPECT_EQ(doubled, 2u);
}

}  // namespace
}  // namespace keygraphs::transport

// TCP transport: framing round trips, partial/ordered delivery, oversized
// frame rejection, the server fan-out, and a full join/rekey/leave session
// over real stream sockets (the reliable delivery the paper assumes).
#include "transport/tcp.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "client/client.h"
#include "common/error.h"
#include "server/server.h"
#include "telemetry/metrics.h"

namespace keygraphs::transport {
namespace {

TEST(Tcp, FramedRoundTrip) {
  TcpListener listener;
  TcpConnection client = TcpConnection::connect(listener.local_address());
  auto server_side = listener.accept(2000);
  ASSERT_TRUE(server_side.has_value());

  client.send(bytes_of("hello"));
  const auto received = server_side->receive(2000);
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, bytes_of("hello"));

  server_side->send(bytes_of("world"));
  EXPECT_EQ(client.receive(2000), bytes_of("world"));
}

TEST(Tcp, EmptyFrameOk) {
  TcpListener listener;
  TcpConnection client = TcpConnection::connect(listener.local_address());
  auto server_side = listener.accept(2000);
  client.send(Bytes{});
  const auto received = server_side->receive(2000);
  ASSERT_TRUE(received.has_value());
  EXPECT_TRUE(received->empty());
}

TEST(Tcp, ManyFramesArriveInOrder) {
  TcpListener listener;
  TcpConnection client = TcpConnection::connect(listener.local_address());
  auto server_side = listener.accept(2000);
  for (int i = 0; i < 100; ++i) {
    client.send(bytes_of("frame-" + std::to_string(i)));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(server_side->receive(2000),
              bytes_of("frame-" + std::to_string(i)));
  }
}

TEST(Tcp, LargeFrame) {
  TcpListener listener;
  TcpConnection client = TcpConnection::connect(listener.local_address());
  auto server_side = listener.accept(2000);
  crypto::SecureRandom rng(1);
  const Bytes big = rng.bytes(300000);
  // Send from a thread: a 300 kB frame can exceed the socket buffers, so
  // the writer must make progress while the reader drains.
  std::thread writer([&client, &big] { client.send(big); });
  const auto received = server_side->receive(5000);
  writer.join();
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(*received, big);
}

TEST(Tcp, ReceiveTimesOut) {
  TcpListener listener;
  TcpConnection client = TcpConnection::connect(listener.local_address());
  auto server_side = listener.accept(2000);
  EXPECT_EQ(server_side->receive(50), std::nullopt);
  (void)client;
}

TEST(Tcp, OrderlyCloseYieldsNullopt) {
  TcpListener listener;
  auto client = std::make_unique<TcpConnection>(
      TcpConnection::connect(listener.local_address()));
  auto server_side = listener.accept(2000);
  client.reset();  // close
  EXPECT_EQ(server_side->receive(2000), std::nullopt);
}

TEST(Tcp, OversizedFrameRejectedBySender) {
  TcpListener listener;
  TcpConnection client = TcpConnection::connect(listener.local_address());
  auto server_side = listener.accept(2000);
  // The sender refuses before any bytes hit the wire.
  Bytes huge;
  EXPECT_THROW(
      {
        huge.resize(TcpConnection::kMaxFrame + 1);
        client.send(huge);
      },
      TransportError);
}

TEST(Tcp, ConnectToNothingFails) {
  EXPECT_THROW(TcpConnection::connect(Address::loopback(1)),
               TransportError);
}

TEST(Tcp, AcceptTimesOut) {
  TcpListener listener;
  EXPECT_EQ(listener.accept(50), std::nullopt);
}

TEST(Tcp, NonblockingSendDrainsThroughPolloutWait) {
  TcpListener listener;
  TcpConnection sender = TcpConnection::connect(listener.local_address());
  auto receiver = listener.accept(2000);
  ASSERT_TRUE(receiver.has_value());
  sender.set_nonblocking();

  // Big enough that loopback socket buffers cannot absorb it all while
  // the peer sits on its hands: the writes must hit EAGAIN and park on
  // POLLOUT until the late reader drains the other end.
  const Bytes frame(8u << 20, 0x5a);
  std::thread late_reader([&receiver, &frame] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    for (int i = 0; i < 3; ++i) {
      const auto got = receiver->receive(5000);
      ASSERT_TRUE(got.has_value());
      ASSERT_EQ(got->size(), frame.size());
      ASSERT_EQ((*got)[i], 0x5a);
    }
  });
  for (int i = 0; i < 3; ++i) sender.send(frame);  // blocks logically, not hard
  late_reader.join();
}

TEST(Tcp, StallBudgetExhaustionThrowsAndCountsSendErrors) {
  telemetry::set_enabled(true);
  auto& errors =
      telemetry::Registry::global().counter("transport.tcp.send_errors");
  const std::uint64_t before = errors.value();

  TcpListener listener;
  TcpConnection sender = TcpConnection::connect(listener.local_address());
  auto receiver = listener.accept(2000);
  ASSERT_TRUE(receiver.has_value());
  sender.set_nonblocking();

  // The peer never reads: once both socket buffers are full, send() waits
  // out its bounded stall budget (~2 s) and gives up with a typed error
  // instead of wedging the dispatch fan-out forever.
  const Bytes frame(8u << 20, 0x77);
  bool threw = false;
  try {
    for (int i = 0; i < 8; ++i) sender.send(frame);
  } catch (const TransportError& error) {
    threw = true;
    EXPECT_NE(std::string(error.what()).find("stalled"), std::string::npos);
  }
  EXPECT_TRUE(threw) << "8 x 8 MiB fit in loopback buffers?";
  EXPECT_EQ(errors.value(), before + 1);
  telemetry::set_enabled(false);
}

TEST(Tcp, SetNonblockingOnClosedConnectionThrows) {
  TcpListener listener;
  TcpConnection outer = TcpConnection::connect(listener.local_address());
  TcpConnection moved = std::move(outer);
  EXPECT_THROW(outer.set_nonblocking(), TransportError);
  moved.set_nonblocking();       // the live fd accepts the flag
  moved.set_nonblocking(false);  // and switches back
}

TEST(TcpServerTransport, FanOutAndDisconnectHandling) {
  TcpListener listener;
  TcpServerTransport transport;

  TcpConnection c1 = TcpConnection::connect(listener.local_address());
  transport.register_user(1, std::move(*listener.accept(2000)));
  auto c2 = std::make_unique<TcpConnection>(
      TcpConnection::connect(listener.local_address()));
  transport.register_user(2, std::move(*listener.accept(2000)));

  transport.deliver(rekey::Recipient::to_subgroup(9), bytes_of("all"),
                    [] { return std::vector<UserId>{1, 2}; });
  EXPECT_EQ(c1.receive(2000), bytes_of("all"));
  EXPECT_EQ(c2->receive(2000), bytes_of("all"));
  EXPECT_EQ(transport.messages_sent(), 2u);

  // Unicast to an unknown user: silently dropped.
  transport.deliver(rekey::Recipient::to_user(7), bytes_of("x"),
                    [] { return std::vector<UserId>{}; });
  EXPECT_EQ(transport.messages_sent(), 2u);

  EXPECT_NE(transport.connection_of(1), nullptr);
  transport.unregister_user(1);
  EXPECT_EQ(transport.connection_of(1), nullptr);
}

// End-to-end over TCP: the reliable-delivery session the paper assumes.
TEST(TcpEndToEnd, JoinRekeyLeave) {
  TcpListener listener;
  TcpServerTransport transport;
  server::ServerConfig config;
  config.rng_seed = 21;
  server::GroupKeyServer server(config, transport);

  auto make_member = [&](UserId user) {
    auto connection = std::make_unique<TcpConnection>(
        TcpConnection::connect(listener.local_address()));
    transport.register_user(user, std::move(*listener.accept(2000)));
    client::ClientConfig client_config;
    client_config.user = user;
    client_config.suite = server.config().suite;
    client_config.root = server.root_id();
    client_config.verify = false;
    auto logic =
        std::make_unique<client::GroupClient>(client_config, nullptr);
    logic->install_individual_key(SymmetricKey{
        individual_key_id(user), 1,
        server.auth().individual_key(user, server.config().suite.key_size())});
    return std::make_pair(std::move(connection), std::move(logic));
  };

  auto [conn1, alice] = make_member(1);
  auto [conn2, bob] = make_member(2);
  ASSERT_EQ(server.join(1), server::JoinResult::kGranted);
  ASSERT_EQ(server.join(2), server::JoinResult::kGranted);

  auto pump = [](TcpConnection& connection, client::GroupClient& logic) {
    while (auto frame = connection.receive(100)) {
      logic.handle_datagram(*frame);
    }
  };
  pump(*conn1, *alice);
  pump(*conn2, *bob);
  ASSERT_TRUE(alice->group_key().has_value());
  EXPECT_EQ(alice->group_key()->secret, bob->group_key()->secret);

  server.leave(2);
  transport.unregister_user(2);
  pump(*conn1, *alice);
  EXPECT_NE(alice->group_key()->secret, bob->group_key()->secret);
  EXPECT_EQ(alice->group_key()->secret,
            server.tree().group_key().secret);
}

}  // namespace
}  // namespace keygraphs::transport

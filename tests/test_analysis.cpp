// Analytic cost model against the exact entries of the paper's Tables 1-3.
#include "analysis/cost_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace keygraphs::analysis {
namespace {

TEST(Table1, StarCounts) {
  EXPECT_DOUBLE_EQ(star_key_counts(100).total_keys, 101.0);
  EXPECT_DOUBLE_EQ(star_key_counts(100).keys_per_user, 2.0);
}

TEST(Table1, TreeCounts) {
  // d/(d-1) * n keys; users hold h keys.
  const KeyCounts counts = tree_key_counts(64, 4);
  EXPECT_NEAR(counts.total_keys, 64.0 * 4 / 3, 1e-9);
  EXPECT_NEAR(counts.keys_per_user, 4.0, 1e-9);  // h = log4(64)+1 = 4
}

TEST(Table1, CompleteCounts) {
  EXPECT_DOUBLE_EQ(complete_key_counts(10).total_keys, 1023.0);
  EXPECT_DOUBLE_EQ(complete_key_counts(10).keys_per_user, 512.0);
}

TEST(TreeHeight, MatchesLogarithm) {
  EXPECT_NEAR(tree_height(8192, 4), std::log2(8192.0) / 2 + 1, 1e-9);
  EXPECT_DOUBLE_EQ(tree_height(1, 4), 1.0);
  EXPECT_NEAR(tree_height(16, 2), 5.0, 1e-9);
}

TEST(Table2, RequestingUser) {
  EXPECT_DOUBLE_EQ(star_requesting_cost(100).join, 1.0);
  EXPECT_DOUBLE_EQ(star_requesting_cost(100).leave, 0.0);
  EXPECT_NEAR(tree_requesting_cost(64, 4).join, 3.0, 1e-9);  // h-1
  EXPECT_DOUBLE_EQ(tree_requesting_cost(64, 4).leave, 0.0);
  EXPECT_DOUBLE_EQ(complete_requesting_cost(8).join, 256.0);  // 2^n
}

TEST(Table2, NonRequestingUser) {
  EXPECT_DOUBLE_EQ(star_nonrequesting_cost(50).join, 1.0);
  EXPECT_NEAR(tree_nonrequesting_cost(64, 4).join, 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(tree_nonrequesting_cost(64, 4).leave, 4.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(complete_nonrequesting_cost(8).join, 128.0);  // 2^(n-1)
  EXPECT_DOUBLE_EQ(complete_nonrequesting_cost(8).leave, 0.0);
}

TEST(Table2, Server) {
  EXPECT_DOUBLE_EQ(star_server_cost(100).join, 2.0);
  EXPECT_DOUBLE_EQ(star_server_cost(100).leave, 99.0);  // n - 1
  EXPECT_NEAR(tree_server_cost(64, 4).join, 6.0, 1e-9);   // 2(h-1)
  EXPECT_NEAR(tree_server_cost(64, 4).leave, 12.0, 1e-9); // d(h-1)
  EXPECT_DOUBLE_EQ(complete_server_cost(8).join, 512.0);  // 2^(n+1)
  EXPECT_DOUBLE_EQ(complete_server_cost(8).leave, 0.0);
}

TEST(Table2, UserOrientedServerCosts) {
  // h(h+1)/2 - 1 and (d-1)h(h-1)/2 at n=64, d=4 (h=4): 9 and 18.
  const JoinLeaveCost cost = tree_server_cost_user_oriented(64, 4);
  EXPECT_NEAR(cost.join, 9.0, 1e-9);
  EXPECT_NEAR(cost.leave, 18.0, 1e-9);
}

TEST(Table3, Averages) {
  EXPECT_DOUBLE_EQ(star_avg_server_cost(100), 50.0);  // n/2
  // (d+2)(h-1)/2 at n=64, d=4: 6*3/2 = 9.
  EXPECT_NEAR(tree_avg_server_cost(64, 4), 9.0, 1e-9);
  EXPECT_DOUBLE_EQ(complete_avg_server_cost(8), 256.0);  // 2^n
  EXPECT_NEAR(tree_avg_user_cost(4), 4.0 / 3.0, 1e-9);
  EXPECT_NEAR(tree_avg_user_cost(2), 2.0, 1e-9);
}

TEST(Table3, OptimalDegreeIsFour) {
  // The paper: server cost (d+2)log_d(n)/2 is minimized around d = 4.
  const std::size_t n = 8192;
  const double at4 = tree_avg_server_cost(n, 4);
  for (int d : {2, 3, 5, 6, 8, 12, 16, 32}) {
    EXPECT_GE(tree_avg_server_cost(n, d), at4 * 0.999)
        << "degree " << d << " beat 4";
  }
}

TEST(Analysis, CostsGrowLogarithmically) {
  // Figure 10's shape: doubling n adds a constant to the tree cost.
  const double delta1 =
      tree_avg_server_cost(2048, 4) - tree_avg_server_cost(1024, 4);
  const double delta2 =
      tree_avg_server_cost(4096, 4) - tree_avg_server_cost(2048, 4);
  EXPECT_NEAR(delta1, delta2, 1e-9);
  EXPECT_GT(delta1, 0.0);
}

}  // namespace
}  // namespace keygraphs::analysis

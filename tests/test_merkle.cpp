// Merkle digest tree and batch signing (paper Section 4): root recomputation
// from every leaf's auth path, tamper rejection, the paper's four-message
// worked example, and the one-signature property.
#include "merkle/batch_signer.h"
#include "merkle/digest_tree.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "crypto/random.h"

namespace keygraphs::merkle {
namespace {

using crypto::DigestAlgorithm;

std::vector<Bytes> leaf_digests(DigestAlgorithm algorithm, std::size_t n) {
  std::vector<Bytes> leaves;
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(
        crypto::digest_of(algorithm, bytes_of("message " + std::to_string(i))));
  }
  return leaves;
}

TEST(DigestTree, EmptyRejected) {
  EXPECT_THROW(DigestTree(DigestAlgorithm::kMd5, {}), Error);
}

TEST(DigestTree, SingleLeafIsItsOwnRoot) {
  const Bytes leaf = crypto::digest_of(DigestAlgorithm::kMd5, bytes_of("m"));
  const DigestTree tree(DigestAlgorithm::kMd5, {leaf});
  EXPECT_EQ(tree.root(), leaf);
  const AuthPath path = tree.path(0);
  EXPECT_TRUE(path.siblings.empty());
  EXPECT_EQ(DigestTree::root_from_path(DigestAlgorithm::kMd5, leaf, path),
            leaf);
}

TEST(DigestTree, PaperFourMessageExample) {
  // Section 4: d12 = h(d1||d2), d34 = h(d3||d4), root = h(d12||d34).
  const auto leaves = leaf_digests(DigestAlgorithm::kMd5, 4);
  auto digest = crypto::make_digest(DigestAlgorithm::kMd5);
  digest->update(leaves[0]);
  digest->update(leaves[1]);
  const Bytes d12 = digest->finish();
  digest->update(leaves[2]);
  digest->update(leaves[3]);
  const Bytes d34 = digest->finish();
  digest->update(d12);
  digest->update(d34);
  const Bytes expected_root = digest->finish();

  const DigestTree tree(DigestAlgorithm::kMd5, leaves);
  EXPECT_EQ(tree.root(), expected_root);

  // The user that needs M4 gets d3 and d12 — exactly a 2-element path.
  const AuthPath path = tree.path(3);
  ASSERT_EQ(path.siblings.size(), 2u);
  EXPECT_EQ(path.siblings[0], leaves[2]);
  EXPECT_EQ(path.siblings[1], d12);
}

TEST(DigestTree, PathOutOfRangeThrows) {
  const DigestTree tree(DigestAlgorithm::kMd5,
                        leaf_digests(DigestAlgorithm::kMd5, 3));
  EXPECT_THROW(tree.path(3), Error);
}

TEST(AuthPath, SerializationRoundTrip) {
  const DigestTree tree(DigestAlgorithm::kSha256,
                        leaf_digests(DigestAlgorithm::kSha256, 7));
  const AuthPath path = tree.path(5);
  const AuthPath parsed = AuthPath::deserialize(path.serialize());
  EXPECT_EQ(parsed.index, path.index);
  EXPECT_EQ(parsed.leaf_count, path.leaf_count);
  EXPECT_EQ(parsed.siblings, path.siblings);
  EXPECT_EQ(path.serialize().size(), path.wire_size());
}

class TreeSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeSizes, EveryLeafPathRecomputesRoot) {
  for (auto algorithm : {DigestAlgorithm::kMd5, DigestAlgorithm::kSha256}) {
    const auto leaves = leaf_digests(algorithm, GetParam());
    const DigestTree tree(algorithm, leaves);
    for (std::size_t i = 0; i < leaves.size(); ++i) {
      EXPECT_EQ(
          DigestTree::root_from_path(algorithm, leaves[i], tree.path(i)),
          tree.root())
          << "leaf " << i << " of " << GetParam();
    }
  }
}

TEST_P(TreeSizes, WrongLeafFailsToRecomputeRoot) {
  const auto leaves = leaf_digests(DigestAlgorithm::kMd5, GetParam());
  if (leaves.size() < 2) return;
  const DigestTree tree(DigestAlgorithm::kMd5, leaves);
  // Use leaf 0's digest with leaf 1's path: must not reach the root.
  EXPECT_NE(
      DigestTree::root_from_path(DigestAlgorithm::kMd5, leaves[0],
                                 tree.path(1)),
      tree.root());
}

INSTANTIATE_TEST_SUITE_P(LeafCounts, TreeSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 16, 19,
                                           31, 33));

TEST(BatchSign, AllMessagesVerify) {
  crypto::SecureRandom rng(5);
  const auto key = crypto::RsaPrivateKey::generate(rng, 512);
  std::vector<Bytes> messages;
  for (int i = 0; i < 7; ++i) {
    messages.push_back(bytes_of("rekey #" + std::to_string(i)));
  }
  const auto items = batch_sign(key, DigestAlgorithm::kMd5, messages);
  ASSERT_EQ(items.size(), messages.size());
  for (std::size_t i = 0; i < messages.size(); ++i) {
    EXPECT_TRUE(batch_verify(key.public_key(), DigestAlgorithm::kMd5,
                             messages[i], items[i]));
  }
}

TEST(BatchSign, OneSignatureForTheWholeBatch) {
  crypto::SecureRandom rng(6);
  const auto key = crypto::RsaPrivateKey::generate(rng, 512);
  std::vector<Bytes> messages;
  for (int i = 0; i < 5; ++i) messages.push_back(bytes_of(std::to_string(i)));
  const auto items = batch_sign(key, DigestAlgorithm::kMd5, messages);
  for (const auto& item : items) {
    EXPECT_EQ(item.signature, items[0].signature);
  }
}

TEST(BatchSign, TamperedMessageRejected) {
  crypto::SecureRandom rng(7);
  const auto key = crypto::RsaPrivateKey::generate(rng, 512);
  std::vector<Bytes> messages = {bytes_of("aa"), bytes_of("bb"),
                                 bytes_of("cc")};
  const auto items = batch_sign(key, DigestAlgorithm::kMd5, messages);
  EXPECT_FALSE(batch_verify(key.public_key(), DigestAlgorithm::kMd5,
                            bytes_of("aX"), items[0]));
}

TEST(BatchSign, SwappedPathsRejected) {
  crypto::SecureRandom rng(8);
  const auto key = crypto::RsaPrivateKey::generate(rng, 512);
  std::vector<Bytes> messages = {bytes_of("first"), bytes_of("second")};
  const auto items = batch_sign(key, DigestAlgorithm::kMd5, messages);
  // Message 0 presented with message 1's auth path must fail.
  EXPECT_FALSE(batch_verify(key.public_key(), DigestAlgorithm::kMd5,
                            messages[0], items[1]));
}

TEST(BatchSign, TamperedSiblingRejected) {
  crypto::SecureRandom rng(9);
  const auto key = crypto::RsaPrivateKey::generate(rng, 512);
  std::vector<Bytes> messages = {bytes_of("one"), bytes_of("two"),
                                 bytes_of("three"), bytes_of("four")};
  auto items = batch_sign(key, DigestAlgorithm::kMd5, messages);
  items[2].path.siblings[0][0] ^= 1;
  EXPECT_FALSE(batch_verify(key.public_key(), DigestAlgorithm::kMd5,
                            messages[2], items[2]));
}

TEST(BatchSign, WorksWithSha256) {
  crypto::SecureRandom rng(10);
  const auto key = crypto::RsaPrivateKey::generate(rng, 1024);
  std::vector<Bytes> messages = {bytes_of("m1"), bytes_of("m2"),
                                 bytes_of("m3")};
  const auto items = batch_sign(key, DigestAlgorithm::kSha256, messages);
  for (std::size_t i = 0; i < messages.size(); ++i) {
    EXPECT_TRUE(batch_verify(key.public_key(), DigestAlgorithm::kSha256,
                             messages[i], items[i]));
  }
}

}  // namespace
}  // namespace keygraphs::merkle

// Multi-group key graphs (paper Section 7): several trees over one user
// population sharing individual keys, and the exported merged DAG.
#include "keygraph/multi_group.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace keygraphs {
namespace {

crypto::SecureRandom& rng() {
  static crypto::SecureRandom instance(77);
  return instance;
}

TEST(MultiGroup, SharedIndividualKeyAcrossGroups) {
  MultiGroupGraph service(4, 8, rng());
  const GroupId a = service.create_group();
  const GroupId b = service.create_group();
  service.join(a, 1);
  service.join(b, 1);
  // One individual key for the service, reused in both trees.
  EXPECT_EQ(service.tree(a).keyset(1).front().secret,
            service.tree(b).keyset(1).front().secret);
  EXPECT_EQ(service.individual_secret(1),
            service.tree(a).keyset(1).front().secret);
}

TEST(MultiGroup, GroupsOfTracksMemberships) {
  MultiGroupGraph service(4, 8, rng());
  const GroupId a = service.create_group();
  const GroupId b = service.create_group();
  const GroupId c = service.create_group();
  service.join(a, 5);
  service.join(c, 5);
  EXPECT_EQ(service.groups_of(5), (std::vector<GroupId>{a, c}));
  service.leave(a, 5);
  EXPECT_EQ(service.groups_of(5), (std::vector<GroupId>{c}));
  (void)b;
}

TEST(MultiGroup, LeaveOneGroupKeepsOthersIntact) {
  MultiGroupGraph service(4, 8, rng());
  const GroupId a = service.create_group();
  const GroupId b = service.create_group();
  for (UserId user = 1; user <= 6; ++user) {
    service.join(a, user);
    service.join(b, user);
  }
  const SymmetricKey group_b_before = service.tree(b).group_key();
  service.leave(a, 3);
  // Group a rekeyed, group b untouched — the "1 affects n" scope is one
  // tree only.
  EXPECT_FALSE(service.tree(a).has_user(3));
  EXPECT_TRUE(service.tree(b).has_user(3));
  EXPECT_EQ(service.tree(b).group_key().secret, group_b_before.secret);
}

TEST(MultiGroup, IndividualKeySurvivesLeave) {
  MultiGroupGraph service(4, 8, rng());
  const GroupId a = service.create_group();
  service.join(a, 9);
  const Bytes secret = service.individual_secret(9);
  service.leave(a, 9);
  EXPECT_EQ(service.individual_secret(9), secret);
  // Rejoining reuses it.
  const JoinRecord record = service.join(a, 9);
  EXPECT_EQ(record.individual_key.secret, secret);
}

TEST(MultiGroup, ErrorsOnUnknownGroupOrUser) {
  MultiGroupGraph service(4, 8, rng());
  EXPECT_THROW(service.join(99, 1), ProtocolError);
  EXPECT_THROW(service.leave(99, 1), ProtocolError);
  EXPECT_THROW((void)service.tree(99), ProtocolError);
  EXPECT_THROW((void)service.individual_secret(42), ProtocolError);
  EXPECT_TRUE(service.groups_of(42).empty());
}

TEST(MultiGroup, EmptyGroupRekeysFromScratch) {
  MultiGroupGraph service(4, 8, rng());
  const GroupId a = service.create_group();
  // Leaving an empty group is a protocol error, not a silent no-op.
  EXPECT_THROW(service.leave(a, 1), ProtocolError);
  EXPECT_EQ(service.tree(a).user_count(), 0u);

  // Drain the group to empty, then rekey it back up: the first join after
  // the drain is a fresh welcome (the joiner's keyset IS the new tree).
  service.join(a, 1);
  service.leave(a, 1);
  EXPECT_EQ(service.tree(a).user_count(), 0u);
  service.join(a, 2);
  EXPECT_EQ(service.tree(a).user_count(), 1u);
  EXPECT_TRUE(service.tree(a).has_user(2));
  // The single member's leaf chain reaches the (new) group key.
  EXPECT_EQ(service.tree(a).keyset(2).back().id,
            service.tree(a).group_key().id);
}

TEST(MultiGroup, UserInZeroGroups) {
  MultiGroupGraph service(4, 8, rng());
  const GroupId a = service.create_group();
  service.join(a, 7);
  service.leave(a, 7);
  // Out of every group: no memberships, absent from the merged graph...
  EXPECT_TRUE(service.groups_of(7).empty());
  EXPECT_FALSE(service.merged_graph().has_user(7));
  // ...but the service-wide individual key survives (it came from the
  // authentication service, not from any one group), so a later re-join
  // reuses it.
  const Bytes individual = service.individual_secret(7);
  service.join(a, 7);
  EXPECT_EQ(service.individual_secret(7), individual);
}

TEST(MultiGroup, DuplicateJoinRejected) {
  MultiGroupGraph service(4, 8, rng());
  const GroupId a = service.create_group();
  const GroupId b = service.create_group();
  service.join(a, 3);
  const SymmetricKey before = service.tree(a).group_key();
  EXPECT_THROW(service.join(a, 3), ProtocolError);
  // The rejected join must not have rekeyed or grown the tree.
  EXPECT_EQ(service.tree(a).user_count(), 1u);
  EXPECT_EQ(service.tree(a).group_key().secret, before.secret);
  // Joining a *different* group with the same user is fine.
  EXPECT_NO_THROW(service.join(b, 3));
  EXPECT_EQ(service.groups_of(3), (std::vector<GroupId>{a, b}));
}

TEST(MultiGroup, MergedGraphStructure) {
  MultiGroupGraph service(2, 8, rng());
  const GroupId a = service.create_group();
  const GroupId b = service.create_group();
  // Users 1,2,3 in group a; users 2,3,4 in group b.
  for (UserId user : {1u, 2u, 3u}) service.join(a, user);
  for (UserId user : {2u, 3u, 4u}) service.join(b, user);

  const KeyGraph merged = service.merged_graph();
  merged.validate();
  EXPECT_EQ(merged.user_count(), 4u);
  EXPECT_EQ(merged.roots().size(), 2u);  // one root per group

  // User 2's keyset spans both trees through one individual k-node.
  const std::set<KeyId> keys2 = merged.keyset(2);
  EXPECT_TRUE(keys2.contains(2));  // the shared individual key node
  const KeyId root_a =
      (static_cast<KeyId>(a) + 1) * MultiGroupGraph::kGroupIdStride +
      service.tree(a).root_id();
  const KeyId root_b =
      (static_cast<KeyId>(b) + 1) * MultiGroupGraph::kGroupIdStride +
      service.tree(b).root_id();
  EXPECT_TRUE(keys2.contains(root_a));
  EXPECT_TRUE(keys2.contains(root_b));

  // User 1 reaches only group a's root; user 4 only group b's.
  EXPECT_TRUE(merged.keyset(1).contains(root_a));
  EXPECT_FALSE(merged.keyset(1).contains(root_b));
  EXPECT_TRUE(merged.keyset(4).contains(root_b));
  EXPECT_FALSE(merged.keyset(4).contains(root_a));

  // userset of each root is that group's membership.
  EXPECT_EQ(merged.userset(root_a), (std::set<UserId>{1, 2, 3}));
  EXPECT_EQ(merged.userset(root_b), (std::set<UserId>{2, 3, 4}));
}

TEST(MultiGroup, ManyGroupsChurn) {
  MultiGroupGraph service(3, 8, rng());
  std::vector<GroupId> groups;
  for (int i = 0; i < 4; ++i) groups.push_back(service.create_group());
  for (UserId user = 1; user <= 12; ++user) {
    for (GroupId group : groups) {
      if (rng().uniform(2) == 0) service.join(group, user);
    }
  }
  for (GroupId group : groups) service.tree(group).check_invariants();
  const KeyGraph merged = service.merged_graph();
  // Every user in some group appears exactly once.
  for (UserId user = 1; user <= 12; ++user) {
    if (!service.groups_of(user).empty()) {
      EXPECT_TRUE(merged.has_user(user));
    }
  }
}

}  // namespace
}  // namespace keygraphs

// The Iolus baseline (paper Section 6): local-only rekeying, per-message
// agent work, end-to-end confidentiality, and the forward/backward secrecy
// it provides at subgroup granularity.
#include "iolus/iolus.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace keygraphs::iolus {
namespace {

IolusNetwork populated(std::size_t agents, std::size_t members,
                       std::uint64_t seed = 1) {
  IolusNetwork network(
      IolusConfig{agents, crypto::CipherAlgorithm::kDes, seed});
  for (UserId user = 1; user <= members; ++user) network.join(user);
  return network;
}

TEST(Iolus, ConfigValidation) {
  EXPECT_THROW(IolusNetwork(IolusConfig{0, crypto::CipherAlgorithm::kDes, 1}),
               ProtocolError);
}

TEST(Iolus, MembershipBookkeeping) {
  IolusNetwork network = populated(4, 12);
  EXPECT_EQ(network.member_count(), 12u);
  EXPECT_EQ(network.agent_count(), 4u);
  EXPECT_EQ(network.trusted_entities(), 5u);  // agents + the GSC
  EXPECT_THROW(network.join(5), ProtocolError);
  network.leave(5);
  EXPECT_EQ(network.member_count(), 11u);
  EXPECT_THROW(network.leave(5), ProtocolError);
}

TEST(Iolus, JoinCostIsConstant) {
  IolusNetwork network = populated(4, 100);
  const IolusCost cost = network.join(1000);
  // One multicast under the old subgroup key + one unicast: 2 encryptions
  // regardless of group size.
  EXPECT_EQ(cost.key_encryptions, 2u);
}

TEST(Iolus, LeaveCostIsSubgroupLocal) {
  // 8 agents, 80 members => ~10 per subgroup. A leave must cost about the
  // subgroup size, NOT the group size: the "1 does not equal n" fix.
  IolusNetwork network = populated(8, 80);
  const IolusCost cost = network.leave(40);
  EXPECT_GE(cost.key_encryptions, 5u);
  EXPECT_LE(cost.key_encryptions, 15u);  // ~subgroup size, not ~80
}

TEST(Iolus, LeaveDoesNotRekeyOtherSubgroups) {
  IolusNetwork network = populated(4, 16);
  // Find a member in a different subgroup than user 1.
  const SymmetricKey before_other = network.subgroup_key_of(2);
  const SymmetricKey before_own = network.subgroup_key_of(1);
  ASSERT_NE(before_other.id, before_own.id);  // round-robin put them apart
  network.leave(1);
  EXPECT_EQ(network.subgroup_key_of(2).version, before_other.version);
}

TEST(Iolus, DataMessageReadableByEveryMember) {
  IolusNetwork network = populated(3, 9);
  IolusCost cost;
  const IolusDataMessage message =
      network.send(4, bytes_of("to everyone"), &cost);
  for (UserId user = 1; user <= 9; ++user) {
    EXPECT_EQ(network.read(user, message), bytes_of("to everyone"))
        << "user " << user;
  }
}

TEST(Iolus, SendCostScalesWithAgentsNotMembers) {
  // The "1 affects n" problem moved to the data path: each occupied agent
  // performs an unwrap + re-wrap per message.
  IolusNetwork small_agents = populated(2, 64, 7);
  IolusNetwork many_agents = populated(16, 64, 7);
  IolusCost small_cost, many_cost;
  (void)small_agents.send(1, bytes_of("x"), &small_cost);
  (void)many_agents.send(1, bytes_of("x"), &many_cost);
  EXPECT_GT(many_cost.key_encryptions, small_cost.key_encryptions);
  // Exact model: sender 2 wraps + origin agent 1 + (occupied agents - 1).
  EXPECT_EQ(many_cost.key_encryptions, 2u + 1u + 15u);
  EXPECT_EQ(small_cost.key_encryptions, 2u + 1u + 1u);
}

TEST(Iolus, ForwardSecrecyWithinSubgroup) {
  IolusNetwork network = populated(2, 8);
  // Snapshot the leaver's subgroup key, then leave; a message sent later
  // must not decrypt under the stale key.
  const SymmetricKey stale = network.subgroup_key_of(3);
  const std::size_t stale_subgroup_id = stale.id;
  network.leave(3);
  IolusCost cost;
  const IolusDataMessage message = network.send(1, bytes_of("new"), &cost);
  // Find the wrapped key copy for the leaver's old subgroup and attack it.
  for (const auto& [subgroup, wrapped] : message.wrapped_message_key) {
    if (subgroup == IolusDataMessage::kTopSubgroup) continue;
    // Try decrypting with the stale key: must fail or yield a wrong key.
    try {
      const crypto::CbcCipher cbc(
          crypto::make_cipher(crypto::CipherAlgorithm::kDes, stale.secret));
      const Bytes guessed_key = cbc.decrypt(wrapped);
      const crypto::CbcCipher payload_cipher(crypto::make_cipher(
          crypto::CipherAlgorithm::kDes, guessed_key));
      EXPECT_NE(payload_cipher.decrypt(message.payload_ciphertext),
                bytes_of("new"));
    } catch (const Error&) {
      // Clean failure is the expected outcome.
    }
  }
  (void)stale_subgroup_id;
}

TEST(Iolus, BackwardSecrecyMessageBeforeJoinUnreadable) {
  IolusNetwork network = populated(2, 6);
  IolusCost cost;
  const IolusDataMessage old_message =
      network.send(1, bytes_of("history"), &cost);
  network.join(99);
  // The newcomer's subgroup key is fresh; the old message's wrapped copies
  // were made under pre-join keys. Decryption must fail or yield garbage.
  try {
    EXPECT_NE(network.read(99, old_message), bytes_of("history"));
  } catch (const Error&) {
    // Clean rejection (bad padding) is the common outcome.
  }
}

TEST(Iolus, RekeyTotalsAccumulate) {
  IolusNetwork network = populated(4, 20);
  const IolusCost before = network.rekey_totals();
  network.leave(10);
  network.join(200);
  const IolusCost after = network.rekey_totals();
  EXPECT_GT(after.key_encryptions, before.key_encryptions);
  EXPECT_GT(after.messages, before.messages);
}

TEST(Iolus, SendByNonMemberRejected) {
  IolusNetwork network = populated(2, 4);
  IolusCost cost;
  EXPECT_THROW((void)network.send(77, bytes_of("x"), &cost), ProtocolError);
  const IolusDataMessage message = network.send(1, bytes_of("ok"), &cost);
  EXPECT_THROW((void)network.read(77, message), ProtocolError);
}

}  // namespace
}  // namespace keygraphs::iolus

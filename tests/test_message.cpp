// Rekey message and datagram wire format: round trips, field preservation,
// and rejection of malformed input (a network-facing parser must never
// crash or over-read).
#include "rekey/message.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace keygraphs::rekey {
namespace {

RekeyMessage sample_message() {
  RekeyMessage message;
  message.group = 7;
  message.epoch = 123456789;
  message.timestamp_us = 1715000000000000ull;
  message.kind = RekeyKind::kLeave;
  message.strategy = StrategyKind::kKeyOriented;
  message.obsolete = {individual_key_id(42), 17};
  KeyBlob blob1;
  blob1.wrap = {10, 3};
  blob1.targets = {{1, 4}, {2, 9}};
  blob1.ciphertext = from_hex("00112233445566778899aabbccddeeff");
  KeyBlob blob2;
  blob2.wrap = {individual_key_id(42), 1};
  blob2.targets = {{1, 4}};
  blob2.ciphertext = from_hex("cafebabe00000000");
  message.blobs = {blob1, blob2};
  return message;
}

TEST(RekeyMessage, BodyRoundTrip) {
  const RekeyMessage original = sample_message();
  const RekeyMessage parsed =
      RekeyMessage::parse_body(original.serialize_body());
  EXPECT_EQ(parsed, original);
}

TEST(RekeyMessage, EmptyMessageRoundTrips) {
  RekeyMessage message;
  message.kind = RekeyKind::kJoin;
  message.strategy = StrategyKind::kGroupOriented;
  EXPECT_EQ(RekeyMessage::parse_body(message.serialize_body()), message);
}

TEST(RekeyMessage, SerializationIsDeterministic) {
  EXPECT_EQ(sample_message().serialize_body(),
            sample_message().serialize_body());
}

TEST(RekeyMessage, ParseRejectsBadMagic) {
  Bytes body = sample_message().serialize_body();
  body[0] ^= 0xff;
  EXPECT_THROW(RekeyMessage::parse_body(body), ParseError);
}

TEST(RekeyMessage, ParseRejectsBadVersion) {
  Bytes body = sample_message().serialize_body();
  body[1] = 99;
  EXPECT_THROW(RekeyMessage::parse_body(body), ParseError);
}

TEST(RekeyMessage, ParseRejectsBadKind) {
  Bytes body = sample_message().serialize_body();
  body[2] = 77;
  EXPECT_THROW(RekeyMessage::parse_body(body), ParseError);
}

TEST(RekeyMessage, ParseRejectsTruncation) {
  const Bytes body = sample_message().serialize_body();
  // Every proper prefix must be rejected, never crash or over-read.
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_THROW(RekeyMessage::parse_body(BytesView(body.data(), len)),
                 ParseError)
        << "prefix length " << len;
  }
}

TEST(RekeyMessage, ParseRejectsTrailingGarbage) {
  Bytes body = sample_message().serialize_body();
  body.push_back(0x00);
  EXPECT_THROW(RekeyMessage::parse_body(body), ParseError);
}

TEST(StrategyNames, AllDistinct) {
  EXPECT_EQ(strategy_name(StrategyKind::kUserOriented), "user-oriented");
  EXPECT_EQ(strategy_name(StrategyKind::kKeyOriented), "key-oriented");
  EXPECT_EQ(strategy_name(StrategyKind::kGroupOriented), "group-oriented");
  EXPECT_EQ(strategy_name(StrategyKind::kHybrid), "hybrid");
}

TEST(Recipient, Factories) {
  const Recipient user = Recipient::to_user(9);
  EXPECT_EQ(user.kind, Recipient::Kind::kUser);
  EXPECT_EQ(user.user, 9u);

  const Recipient subgroup = Recipient::to_subgroup(5, 6);
  EXPECT_EQ(subgroup.kind, Recipient::Kind::kSubgroup);
  EXPECT_EQ(subgroup.include, 5u);
  ASSERT_TRUE(subgroup.exclude.has_value());
  EXPECT_EQ(*subgroup.exclude, 6u);

  const Recipient plain = Recipient::to_subgroup(5);
  EXPECT_FALSE(plain.exclude.has_value());
}

TEST(Datagram, EncodeDecodeRoundTrip) {
  const Datagram original{MessageType::kRekey, from_hex("a1b2c3")};
  const Datagram decoded = Datagram::decode(original.encode());
  EXPECT_EQ(decoded.type, original.type);
  EXPECT_EQ(decoded.payload, original.payload);
}

TEST(Datagram, EmptyPayloadOk) {
  const Datagram original{MessageType::kLeaveAck, {}};
  const Datagram decoded = Datagram::decode(original.encode());
  EXPECT_EQ(decoded.type, MessageType::kLeaveAck);
  EXPECT_TRUE(decoded.payload.empty());
}

TEST(Datagram, RejectsBadMagicAndType) {
  EXPECT_THROW(Datagram::decode(from_hex("ff01")), ParseError);
  EXPECT_THROW(Datagram::decode(from_hex("4700")), ParseError);  // type 0
  EXPECT_THROW(Datagram::decode(from_hex("4799")), ParseError);  // type 153
  EXPECT_THROW(Datagram::decode(Bytes{}), ParseError);
  EXPECT_THROW(Datagram::decode(from_hex("47")), ParseError);
}

class AllKindsRoundTrip
    : public ::testing::TestWithParam<std::tuple<RekeyKind, StrategyKind>> {};

TEST_P(AllKindsRoundTrip, Survives) {
  RekeyMessage message = sample_message();
  message.kind = std::get<0>(GetParam());
  message.strategy = std::get<1>(GetParam());
  EXPECT_EQ(RekeyMessage::parse_body(message.serialize_body()), message);
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndStrategies, AllKindsRoundTrip,
    ::testing::Combine(::testing::Values(RekeyKind::kJoin, RekeyKind::kLeave),
                       ::testing::Values(StrategyKind::kUserOriented,
                                         StrategyKind::kKeyOriented,
                                         StrategyKind::kGroupOriented,
                                         StrategyKind::kHybrid)));

}  // namespace
}  // namespace keygraphs::rekey

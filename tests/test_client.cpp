// GroupClient: fixpoint decryption, replay handling, obsolete-key pruning,
// verification gating, and application-data sealing.
#include "client/client.h"

#include <gtest/gtest.h>

#include "common/error.h"
#include "rekey/strategy.h"

namespace keygraphs::client {
namespace {

using rekey::KeyBlob;
using rekey::RekeyMessage;

crypto::SecureRandom& rng() {
  static crypto::SecureRandom instance(404);
  return instance;
}

ClientConfig config_for(UserId user, KeyId root) {
  ClientConfig config;
  config.user = user;
  config.suite = crypto::CryptoSuite::paper_plain();
  config.group = 0;  // unit-test messages use the default group id 0
  config.root = root;
  config.verify = false;
  config.rng_seed = 1;
  return config;
}

SymmetricKey make_key(KeyId id, KeyVersion version) {
  return SymmetricKey{id, version, rng().bytes(8)};
}

Bytes seal_plain(const RekeyMessage& message) {
  const rekey::RekeySealer sealer(rekey::SigningMode::kNone,
                                  crypto::DigestAlgorithm::kNone, nullptr);
  return sealer.seal(std::span(&message, 1))[0];
}

TEST(Client, InstallsAndReportsKeys) {
  GroupClient client(config_for(1, 100), nullptr);
  EXPECT_FALSE(client.group_key().has_value());
  client.install_individual_key(make_key(individual_key_id(1), 1));
  EXPECT_EQ(client.key_count(), 1u);
  EXPECT_NE(client.find_key(individual_key_id(1)), nullptr);
  EXPECT_EQ(client.find_key(12345), nullptr);
}

TEST(Client, DecryptsBlobWrappedWithHeldKey) {
  GroupClient client(config_for(1, 100), nullptr);
  const SymmetricKey individual = make_key(individual_key_id(1), 1);
  client.install_individual_key(individual);

  const SymmetricKey group = make_key(100, 5);
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  RekeyMessage message;
  message.epoch = 1;
  message.blobs.push_back(encryptor.wrap(individual, std::span(&group, 1)));

  const RekeyOutcome outcome = client.handle_rekey(seal_plain(message));
  EXPECT_TRUE(outcome.accepted);
  EXPECT_EQ(outcome.keys_changed, 1u);
  EXPECT_EQ(outcome.keys_decrypted, 1u);
  ASSERT_TRUE(client.group_key().has_value());
  EXPECT_EQ(client.group_key()->secret, group.secret);
}

TEST(Client, IgnoresBlobsWrappedWithUnknownKeys) {
  GroupClient client(config_for(1, 100), nullptr);
  client.install_individual_key(make_key(individual_key_id(1), 1));

  const SymmetricKey stranger = make_key(77, 1);
  const SymmetricKey target = make_key(100, 1);
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  RekeyMessage message;
  message.epoch = 1;
  message.blobs.push_back(encryptor.wrap(stranger, std::span(&target, 1)));

  const RekeyOutcome outcome = client.handle_rekey(seal_plain(message));
  EXPECT_TRUE(outcome.accepted);
  EXPECT_EQ(outcome.keys_changed, 0u);
  EXPECT_FALSE(client.group_key().has_value());
}

TEST(Client, WrongWrapVersionIsNotDecrypted) {
  GroupClient client(config_for(1, 100), nullptr);
  const SymmetricKey held = make_key(individual_key_id(1), 2);
  client.install_individual_key(held);

  SymmetricKey newer = held;
  newer.version = 3;  // message wrapped with a version the client lacks
  newer.secret = rng().bytes(8);
  const SymmetricKey target = make_key(100, 1);
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  RekeyMessage message;
  message.epoch = 1;
  message.blobs.push_back(encryptor.wrap(newer, std::span(&target, 1)));

  EXPECT_EQ(client.handle_rekey(seal_plain(message)).keys_changed, 0u);
}

TEST(Client, FixpointUnlocksChainedBlobs) {
  // Group-oriented leave shape: {group}_{mid}, {mid}_{individual} — the
  // blob order in the message is adversarial (group first).
  GroupClient client(config_for(1, 100), nullptr);
  const SymmetricKey individual = make_key(individual_key_id(1), 1);
  client.install_individual_key(individual);

  const SymmetricKey mid = make_key(50, 7);
  const SymmetricKey group = make_key(100, 9);
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  RekeyMessage message;
  message.epoch = 1;
  message.blobs.push_back(encryptor.wrap(mid, std::span(&group, 1)));
  message.blobs.push_back(encryptor.wrap(individual, std::span(&mid, 1)));

  const RekeyOutcome outcome = client.handle_rekey(seal_plain(message));
  EXPECT_EQ(outcome.keys_changed, 2u);
  EXPECT_EQ(client.group_key()->secret, group.secret);
  EXPECT_EQ(client.find_key(50)->secret, mid.secret);
}

TEST(Client, OlderEpochIsStale) {
  GroupClient client(config_for(1, 100), nullptr);
  const SymmetricKey individual = make_key(individual_key_id(1), 1);
  client.install_individual_key(individual);
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());

  RekeyMessage fresh;
  fresh.epoch = 10;
  const SymmetricKey group10 = make_key(100, 10);
  fresh.blobs.push_back(encryptor.wrap(individual, std::span(&group10, 1)));
  EXPECT_TRUE(client.handle_rekey(seal_plain(fresh)).accepted);
  EXPECT_EQ(client.last_epoch(), 10u);

  RekeyMessage old;
  old.epoch = 9;
  const SymmetricKey group9 = make_key(100, 9);
  old.blobs.push_back(encryptor.wrap(individual, std::span(&group9, 1)));
  const RekeyOutcome outcome = client.handle_rekey(seal_plain(old));
  EXPECT_TRUE(outcome.stale);
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(client.group_key()->version, 10u);  // not rolled back
}

TEST(Client, SameEpochReplayIsIdempotent) {
  GroupClient client(config_for(1, 100), nullptr);
  const SymmetricKey individual = make_key(individual_key_id(1), 1);
  client.install_individual_key(individual);
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());

  RekeyMessage message;
  message.epoch = 4;
  const SymmetricKey group = make_key(100, 4);
  message.blobs.push_back(encryptor.wrap(individual, std::span(&group, 1)));
  const Bytes wire = seal_plain(message);
  EXPECT_EQ(client.handle_rekey(wire).keys_changed, 1u);
  EXPECT_EQ(client.handle_rekey(wire).keys_changed, 0u);  // same version
}

TEST(Client, ObsoleteKeysArePruned) {
  GroupClient client(config_for(1, 100), nullptr);
  client.install_individual_key(make_key(individual_key_id(1), 1));
  const SymmetricKey stale = make_key(55, 1);
  client.admit_snapshot({stale}, 0);
  EXPECT_NE(client.find_key(55), nullptr);

  RekeyMessage message;
  message.epoch = 1;
  message.obsolete = {55};
  EXPECT_TRUE(client.handle_rekey(seal_plain(message)).accepted);
  EXPECT_EQ(client.find_key(55), nullptr);
}

TEST(Client, VerificationGateRejectsUnsigned) {
  crypto::SecureRandom key_rng(5);
  const auto server_key = crypto::RsaPrivateKey::generate(key_rng, 512);
  ClientConfig config = config_for(1, 100);
  config.verify = true;
  GroupClient client(config, &server_key.public_key());
  const SymmetricKey individual = make_key(individual_key_id(1), 1);
  client.install_individual_key(individual);

  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  RekeyMessage message;
  message.epoch = 1;
  const SymmetricKey group = make_key(100, 1);
  message.blobs.push_back(encryptor.wrap(individual, std::span(&group, 1)));

  // Unsigned message: parses but must not be applied.
  const RekeyOutcome outcome = client.handle_rekey(seal_plain(message));
  EXPECT_FALSE(outcome.accepted);
  EXPECT_FALSE(client.group_key().has_value());
  EXPECT_EQ(client.totals().rejected, 1u);

  // Properly signed: applied.
  const rekey::RekeySealer sealer(rekey::SigningMode::kPerMessage,
                                  crypto::DigestAlgorithm::kMd5, &server_key);
  const Bytes signed_wire = sealer.seal(std::span(&message, 1))[0];
  EXPECT_TRUE(client.handle_rekey(signed_wire).accepted);
  EXPECT_TRUE(client.group_key().has_value());
}

TEST(Client, TotalsAccumulate) {
  GroupClient client(config_for(1, 100), nullptr);
  const SymmetricKey individual = make_key(individual_key_id(1), 1);
  client.install_individual_key(individual);
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kDes, rng());
  for (std::uint64_t epoch = 1; epoch <= 3; ++epoch) {
    RekeyMessage message;
    message.epoch = epoch;
    const SymmetricKey group = make_key(100, static_cast<KeyVersion>(epoch));
    message.blobs.push_back(encryptor.wrap(individual, std::span(&group, 1)));
    client.handle_rekey(seal_plain(message));
  }
  EXPECT_EQ(client.totals().rekeys_received, 3u);
  EXPECT_EQ(client.totals().keys_changed, 3u);
  EXPECT_GT(client.totals().bytes_received, 0u);
}

TEST(Client, DatagramDispatchIgnoresNonRekey) {
  GroupClient client(config_for(1, 100), nullptr);
  const rekey::Datagram other{rekey::MessageType::kLeaveAck, {}};
  const RekeyOutcome outcome = client.handle_datagram(other.encode());
  EXPECT_FALSE(outcome.accepted);
  EXPECT_EQ(client.totals().rekeys_received, 0u);
}

TEST(Client, ApplicationDataRoundTrip) {
  GroupClient alice(config_for(1, 100), nullptr);
  GroupClient bob(config_for(2, 100), nullptr);
  const SymmetricKey group = make_key(100, 1);
  alice.admit_snapshot({group}, 1);
  bob.admit_snapshot({group}, 1);

  const Bytes sealed = alice.seal_application(bytes_of("hello group"));
  EXPECT_EQ(bob.open_application(sealed), bytes_of("hello group"));
}

TEST(Client, ApplicationDataTamperRejected) {
  GroupClient alice(config_for(1, 100), nullptr);
  const SymmetricKey group = make_key(100, 1);
  alice.admit_snapshot({group}, 1);
  Bytes sealed = alice.seal_application(bytes_of("payload"));
  sealed[sealed.size() / 2] ^= 1;
  EXPECT_THROW(alice.open_application(sealed), CryptoError);
}

TEST(Client, ApplicationDataRequiresAdmission) {
  GroupClient client(config_for(1, 100), nullptr);
  EXPECT_THROW(client.seal_application(bytes_of("x")), ProtocolError);
  EXPECT_THROW(client.open_application(Bytes(64, 0)), ProtocolError);
}

TEST(Client, NonMemberCannotOpenApplicationData) {
  GroupClient alice(config_for(1, 100), nullptr);
  GroupClient eve(config_for(3, 100), nullptr);
  alice.admit_snapshot({make_key(100, 1)}, 1);
  eve.admit_snapshot({make_key(100, 1)}, 1);  // different random secret
  const Bytes sealed = alice.seal_application(bytes_of("secret"));
  EXPECT_THROW(eve.open_application(sealed), CryptoError);
}

TEST(Client, ForgetKeysWipesState) {
  GroupClient client(config_for(1, 100), nullptr);
  client.admit_snapshot({make_key(100, 1), make_key(50, 1)}, 1);
  EXPECT_EQ(client.key_count(), 2u);
  client.forget_keys();
  EXPECT_EQ(client.key_count(), 0u);
  EXPECT_FALSE(client.group_key().has_value());
}

TEST(Client, KeyIdsSorted) {
  GroupClient client(config_for(1, 100), nullptr);
  client.admit_snapshot({make_key(30, 1), make_key(10, 1), make_key(20, 1)},
                        1);
  EXPECT_EQ(client.key_ids(), (std::vector<KeyId>{10, 20, 30}));
}

}  // namespace
}  // namespace keygraphs::client

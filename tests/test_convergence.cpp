// ConvergenceMonitor: publish-to-applied latency scoring, per-client lag
// gauges, and the SLO violation counter — all on injected timestamps.
#include <gtest/gtest.h>

#include "telemetry/convergence.h"
#include "telemetry/metrics.h"

namespace keygraphs::telemetry {
namespace {

Histogram& convergence_histogram() {
  return Registry::global().histogram("fleet.convergence_ns");
}

Counter& violations_counter() {
  return Registry::global().counter("fleet.slo_violations");
}

class ConvergenceTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::global().reset(); }

  ConvergenceMonitor monitor_;
};

TEST_F(ConvergenceTest, AppliesScoreAgainstTheirPublish) {
  monitor_.note_publish(1, 1'000, 4);
  monitor_.note_apply(7, 1, 3'000);
  EXPECT_EQ(convergence_histogram().count(), 1u);
  EXPECT_EQ(convergence_histogram().sum(), 2'000u);
}

TEST_F(ConvergenceTest, EpochJumpScoresEveryCoveredPublish) {
  monitor_.note_publish(1, 1'000, 4);
  monitor_.note_publish(2, 2'000, 4);
  monitor_.note_publish(3, 3'000, 4);
  // A resync jumps the client from 0 straight to 3: all three publishes
  // complete for it now.
  monitor_.note_apply(9, 3, 10'000);
  EXPECT_EQ(convergence_histogram().count(), 3u);
  EXPECT_EQ(convergence_histogram().sum(), 9'000u + 8'000u + 7'000u);
}

TEST_F(ConvergenceTest, RepeatAppliesScoreNothingNew) {
  monitor_.note_publish(1, 1'000, 2);
  monitor_.note_apply(7, 1, 2'000);
  monitor_.note_apply(7, 1, 9'000);  // duplicate report
  EXPECT_EQ(convergence_histogram().count(), 1u);
}

TEST_F(ConvergenceTest, SloViolationsCountSamplesAboveTheTarget) {
  monitor_.set_slo_us(1);  // 1000 ns
  monitor_.note_publish(1, 0, 2);
  monitor_.note_publish(2, 0, 2);
  monitor_.note_apply(1, 1, 500);    // within SLO
  monitor_.note_apply(1, 2, 5'000);  // violation
  EXPECT_EQ(violations_counter().value(), 1u);
  EXPECT_EQ(monitor_.slo_us(), 1u);
}

TEST_F(ConvergenceTest, ZeroSloDisablesTheCheck) {
  monitor_.note_publish(1, 0, 2);
  monitor_.note_apply(1, 1, 1'000'000'000);
  EXPECT_EQ(violations_counter().value(), 0u);
}

TEST_F(ConvergenceTest, LagGaugeTracksPublishedMinusApplied) {
  for (std::uint64_t epoch = 1; epoch <= 5; ++epoch) {
    monitor_.note_publish(epoch, epoch * 100, 3);
  }
  monitor_.note_apply(42, 2, 1'000);
  EXPECT_EQ(Registry::global().gauge("fleet.epoch_lag.u42").value(), 3);
  EXPECT_EQ(monitor_.max_lag(), 3u);
  EXPECT_EQ(monitor_.published_epoch(), 5u);
  EXPECT_EQ(Registry::global().gauge("fleet.published_epoch").value(), 5);

  monitor_.forget_user(42);
  EXPECT_EQ(Registry::global().gauge("fleet.epoch_lag.u42").value(), 0);
  EXPECT_EQ(monitor_.max_lag(), 0u);
}

TEST_F(ConvergenceTest, DuplicateOrStalePublishesAreIgnored) {
  monitor_.note_publish(3, 1'000, 2);
  monitor_.note_publish(3, 9'000, 2);  // retransmit of the same epoch
  monitor_.note_publish(2, 9'000, 2);  // stale replay
  monitor_.note_apply(1, 3, 2'000);
  EXPECT_EQ(convergence_histogram().count(), 1u);
  EXPECT_EQ(convergence_histogram().sum(), 1'000u);
}

TEST_F(ConvergenceTest, ClockSkewClampsToZeroInsteadOfUnderflowing) {
  monitor_.note_publish(1, 5'000, 2);
  monitor_.note_apply(1, 1, 4'000);  // applier's clock reads earlier
  EXPECT_EQ(convergence_histogram().count(), 1u);
  EXPECT_EQ(convergence_histogram().sum(), 0u);
}

TEST_F(ConvergenceTest, PublishRingIsBounded) {
  ConvergenceMonitor small(/*publish_capacity=*/4);
  for (std::uint64_t epoch = 1; epoch <= 10; ++epoch) {
    small.note_publish(epoch, epoch, 1);
  }
  // Only the retained publishes (7..10) can score.
  small.note_apply(1, 10, 100);
  EXPECT_EQ(convergence_histogram().count(), 4u);
}

TEST_F(ConvergenceTest, ResetForgetsStateButKeepsTheSlo) {
  monitor_.set_slo_us(123);
  monitor_.note_publish(1, 0, 2);
  monitor_.note_apply(5, 1, 10);
  monitor_.reset();
  EXPECT_EQ(monitor_.published_epoch(), 0u);
  EXPECT_EQ(monitor_.max_lag(), 0u);
  EXPECT_EQ(monitor_.slo_us(), 123u);
  EXPECT_EQ(Registry::global().gauge("fleet.epoch_lag.u5").value(), 0);
  // A fresh publish/apply pair scores from scratch.
  monitor_.note_publish(1, 100, 2);
  monitor_.note_apply(5, 1, 300);
  EXPECT_EQ(Registry::global().gauge("fleet.published_epoch").value(), 1);
}

TEST_F(ConvergenceTest, GlobalMonitorIsASingleton) {
  EXPECT_EQ(&ConvergenceMonitor::global(), &ConvergenceMonitor::global());
}

}  // namespace
}  // namespace keygraphs::telemetry

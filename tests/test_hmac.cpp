// HMAC against the RFC 2202 test vectors plus verify/tamper behaviour.
#include "crypto/hmac.h"

#include <gtest/gtest.h>

namespace keygraphs::crypto {
namespace {

TEST(HmacMd5, Rfc2202Case1) {
  const Hmac hmac(DigestAlgorithm::kMd5, Bytes(16, 0x0b));
  EXPECT_EQ(to_hex(hmac.mac(bytes_of("Hi There"))),
            "9294727a3638bb1c13f48ef8158bfc9d");
}

TEST(HmacMd5, Rfc2202Case2) {
  const Hmac hmac(DigestAlgorithm::kMd5, bytes_of("Jefe"));
  EXPECT_EQ(to_hex(hmac.mac(bytes_of("what do ya want for nothing?"))),
            "750c783e6ab0b503eaa86e310a5db738");
}

TEST(HmacMd5, Rfc2202Case3) {
  const Hmac hmac(DigestAlgorithm::kMd5, Bytes(16, 0xaa));
  EXPECT_EQ(to_hex(hmac.mac(Bytes(50, 0xdd))),
            "56be34521d144c88dbb8c733f0e8b3f6");
}

TEST(HmacSha1, Rfc2202Case1) {
  const Hmac hmac(DigestAlgorithm::kSha1, Bytes(20, 0x0b));
  EXPECT_EQ(to_hex(hmac.mac(bytes_of("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1, Rfc2202Case2) {
  const Hmac hmac(DigestAlgorithm::kSha1, bytes_of("Jefe"));
  EXPECT_EQ(to_hex(hmac.mac(bytes_of("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha256, Rfc4231Case1) {
  const Hmac hmac(DigestAlgorithm::kSha256, Bytes(20, 0x0b));
  EXPECT_EQ(to_hex(hmac.mac(bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, KeyLongerThanBlockIsHashedFirst) {
  // RFC 2202 case 6: 80-byte key (block size is 64).
  const Hmac hmac(DigestAlgorithm::kMd5, Bytes(80, 0xaa));
  EXPECT_EQ(to_hex(hmac.mac(bytes_of(
                "Test Using Larger Than Block-Size Key - Hash Key First"))),
            "6b1ab7fe4bd7bf8f0b62e6ce61b9d0cd");
}

TEST(Hmac, VerifyAcceptsValidTag) {
  const Hmac hmac(DigestAlgorithm::kSha256, bytes_of("key"));
  const Bytes tag = hmac.mac(bytes_of("message"));
  EXPECT_TRUE(hmac.verify(bytes_of("message"), tag));
}

TEST(Hmac, VerifyRejectsTamperedTag) {
  const Hmac hmac(DigestAlgorithm::kSha256, bytes_of("key"));
  Bytes tag = hmac.mac(bytes_of("message"));
  tag[0] ^= 1;
  EXPECT_FALSE(hmac.verify(bytes_of("message"), tag));
}

TEST(Hmac, VerifyRejectsTamperedMessage) {
  const Hmac hmac(DigestAlgorithm::kSha256, bytes_of("key"));
  const Bytes tag = hmac.mac(bytes_of("message"));
  EXPECT_FALSE(hmac.verify(bytes_of("messagf"), tag));
}

TEST(Hmac, VerifyRejectsTruncatedTag) {
  const Hmac hmac(DigestAlgorithm::kSha256, bytes_of("key"));
  Bytes tag = hmac.mac(bytes_of("message"));
  tag.pop_back();
  EXPECT_FALSE(hmac.verify(bytes_of("message"), tag));
}

TEST(Hmac, DifferentKeysGiveDifferentTags) {
  const Hmac a(DigestAlgorithm::kMd5, bytes_of("key-a"));
  const Hmac b(DigestAlgorithm::kMd5, bytes_of("key-b"));
  EXPECT_NE(a.mac(bytes_of("same message")), b.mac(bytes_of("same message")));
}

TEST(Hmac, TagSizeFollowsDigest) {
  EXPECT_EQ(Hmac(DigestAlgorithm::kMd5, bytes_of("k")).tag_size(), 16u);
  EXPECT_EQ(Hmac(DigestAlgorithm::kSha1, bytes_of("k")).tag_size(), 20u);
  EXPECT_EQ(Hmac(DigestAlgorithm::kSha256, bytes_of("k")).tag_size(), 32u);
}

TEST(Hmac, EmptyMessage) {
  const Hmac hmac(DigestAlgorithm::kSha256, bytes_of("key"));
  const Bytes tag = hmac.mac(Bytes{});
  EXPECT_EQ(tag.size(), 32u);
  EXPECT_TRUE(hmac.verify(Bytes{}, tag));
}

}  // namespace
}  // namespace keygraphs::crypto

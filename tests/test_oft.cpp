// One-way function trees: functional key derivation, member-side group-key
// reconstruction, forward/backward secrecy as *computational* properties
// (what the leaver/joiner can derive from everything they ever saw), and
// the headline cost claim — roughly half the rekey broadcast of a binary
// key tree.
#include "oft/oft.h"

#include <gtest/gtest.h>

#include <set>

#include "common/error.h"
#include "rekey/strategy.h"

namespace keygraphs::oft {
namespace {

crypto::SecureRandom& rng() {
  static crypto::SecureRandom instance(2718);
  return instance;
}

TEST(Oft, PrimitivesAreDeterministicAndDistinct) {
  const Bytes secret = rng().bytes(16);
  EXPECT_EQ(blind(secret), blind(secret));
  EXPECT_NE(blind(secret), secret);
  const Bytes a = blind(rng().bytes(16));
  const Bytes b = blind(rng().bytes(16));
  EXPECT_EQ(mix(a, b), mix(a, b));
  EXPECT_NE(mix(a, b), mix(b, a));  // ordered, as the view logic assumes
  EXPECT_NE(mix(a, b), blind(a));   // domain separation
}

TEST(Oft, EmptyAndSingleMember) {
  OftTree tree(rng());
  EXPECT_THROW(tree.group_key(), ProtocolError);
  const OftRekey rekey = tree.join(1);
  EXPECT_EQ(tree.member_count(), 1u);
  EXPECT_TRUE(rekey.broadcast.empty());
  ASSERT_EQ(rekey.new_leaf_secrets.size(), 1u);
  EXPECT_EQ(tree.group_key(), rekey.new_leaf_secrets[0].second);
  tree.check_invariants();
}

TEST(Oft, EveryMemberReconstructsTheGroupKey) {
  OftTree tree(rng());
  for (UserId user = 1; user <= 25; ++user) {
    tree.join(user);
    tree.check_invariants();
    for (UserId member = 1; member <= user; ++member) {
      EXPECT_EQ(compute_group_key(tree.view_of(member)), tree.group_key())
          << "member " << member << " after join of " << user;
    }
  }
}

TEST(Oft, LeaveKeepsSurvivorsConsistent) {
  OftTree tree(rng());
  for (UserId user = 1; user <= 16; ++user) tree.join(user);
  std::set<UserId> members;
  for (UserId user = 1; user <= 16; ++user) members.insert(user);
  for (UserId leaver : {4u, 9u, 1u, 16u, 2u}) {
    tree.leave(leaver);
    members.erase(leaver);
    tree.check_invariants();
    for (UserId member : members) {
      EXPECT_EQ(compute_group_key(tree.view_of(member)), tree.group_key())
          << "member " << member << " after leave of " << leaver;
    }
  }
}

TEST(Oft, GroupKeyChangesOnEveryMembershipChange) {
  OftTree tree(rng());
  tree.join(1);
  tree.join(2);
  Bytes previous = tree.group_key();
  for (UserId user = 3; user <= 10; ++user) {
    tree.join(user);
    EXPECT_NE(tree.group_key(), previous);
    previous = tree.group_key();
  }
  for (UserId user : {3u, 7u, 2u}) {
    tree.leave(user);
    EXPECT_NE(tree.group_key(), previous);
    previous = tree.group_key();
  }
}

TEST(Oft, ForwardSecrecyComputational) {
  // The leaver's total knowledge: its last view plus every broadcast item
  // it could ever decrypt. After it leaves, that knowledge must not derive
  // the new group key: the new key depends on a re-randomized leaf secret
  // it never saw, through one-way functions.
  OftTree tree(rng());
  for (UserId user = 1; user <= 12; ++user) tree.join(user);
  const OftTree::MemberView leaver_view = tree.view_of(5);
  const Bytes old_key = compute_group_key(leaver_view);
  ASSERT_EQ(old_key, tree.group_key());

  const OftRekey rekey = tree.leave(5);
  // Attack 1: replay the stale view.
  EXPECT_NE(compute_group_key(leaver_view), tree.group_key());
  // Attack 2: splice the broadcast's new blinded values into the stale
  // view wherever they could fit (the leaver can read none of them — they
  // are wrapped for subtrees it was never in — but even granting the
  // plaintexts, the refreshed leaf secret is missing; simulate the
  // strongest version by substituting every broadcast value at every
  // level).
  for (const BlindedUpdate& update : rekey.broadcast) {
    for (std::size_t level = 0; level < leaver_view.sibling_blinded.size();
         ++level) {
      OftTree::MemberView forged = leaver_view;
      forged.sibling_blinded[level] = update.blinded_key;
      EXPECT_NE(compute_group_key(forged), tree.group_key());
    }
  }
}

TEST(Oft, BackwardSecrecyComputational) {
  OftTree tree(rng());
  for (UserId user = 1; user <= 12; ++user) tree.join(user);
  const Bytes old_key = tree.group_key();

  const OftRekey rekey = tree.join(99);
  const OftTree::MemberView joiner = tree.view_of(99);
  ASSERT_EQ(compute_group_key(joiner), tree.group_key());
  EXPECT_NE(tree.group_key(), old_key);
  // The joiner cannot derive the pre-join key: the split leaf it now sees
  // was re-randomized in the same operation, so the old blinded value it
  // would need is never available to it.
  ASSERT_GE(rekey.new_leaf_secrets.size(), 2u);  // joiner + split leaf
  EXPECT_NE(compute_group_key(joiner), old_key);
}

TEST(Oft, HeightStaysLogarithmic) {
  OftTree tree(rng());
  for (UserId user = 1; user <= 256; ++user) tree.join(user);
  EXPECT_GE(tree.height(), 8u);   // log2(256)
  EXPECT_LE(tree.height(), 10u);  // heuristic slack
}

TEST(Oft, LeaveCostsAboutHalfOfBinaryKeyTree) {
  // The OFT claim: one blinded key per level vs the key tree's two
  // encrypted keys per level (d=2 group-oriented: 2(h-1)-1 encryptions).
  const std::size_t n = 128;
  OftTree oft_tree(rng());
  for (UserId user = 1; user <= n; ++user) oft_tree.join(user);

  crypto::SecureRandom tree_rng(12);
  KeyTree key_tree(2, 16, tree_rng);
  for (UserId user = 1; user <= n; ++user) {
    key_tree.join(user, tree_rng.bytes(16));
  }
  rekey::RekeyEncryptor encryptor(crypto::CipherAlgorithm::kAes128,
                                  tree_rng);

  std::size_t oft_total = 0, lkh_total = 0;
  for (UserId user = 10; user < 40; ++user) {
    oft_total += oft_tree.leave(user).encryptions();
    encryptor.reset_counters();
    (void)rekey::make_strategy(rekey::StrategyKind::kGroupOriented)
        ->plan_leave(key_tree.leave(user), encryptor);
    lkh_total += encryptor.key_encryptions();
  }
  EXPECT_LT(oft_total, lkh_total * 3 / 4)
      << "OFT " << oft_total << " vs binary key tree " << lkh_total;
}

TEST(Oft, Errors) {
  OftTree tree(rng());
  tree.join(1);
  EXPECT_THROW(tree.join(1), ProtocolError);
  EXPECT_THROW(tree.leave(2), ProtocolError);
  EXPECT_THROW(tree.view_of(2), ProtocolError);
  tree.leave(1);
  EXPECT_EQ(tree.member_count(), 0u);
  EXPECT_THROW(tree.leave(1), ProtocolError);
  tree.check_invariants();
  // The tree regrows cleanly after emptying.
  tree.join(7);
  EXPECT_EQ(tree.member_count(), 1u);
}

TEST(Oft, ChurnStress) {
  OftTree tree(rng());
  std::vector<UserId> members;
  UserId next = 1;
  for (int op = 0; op < 300; ++op) {
    if (members.empty() || rng().uniform(2) == 0) {
      tree.join(next);
      members.push_back(next++);
    } else {
      const std::size_t index =
          static_cast<std::size_t>(rng().uniform(members.size()));
      tree.leave(members[index]);
      members[index] = members.back();
      members.pop_back();
    }
    tree.check_invariants();
    if (!members.empty()) {
      const UserId probe = members[static_cast<std::size_t>(
          rng().uniform(members.size()))];
      EXPECT_EQ(compute_group_key(tree.view_of(probe)), tree.group_key());
    }
  }
}

}  // namespace
}  // namespace keygraphs::oft

// Tiny blocking HTTP client for exercising the telemetry scrape endpoint
// from tests: one GET per connection, loopback only, returns the raw
// response (status line, headers, body) or "" on connect failure.
#pragma once

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <string>

namespace keygraphs::testhttp {

inline std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buffer[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

/// Everything after the header/body separator; "" when malformed.
inline std::string http_body(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string()
                                    : response.substr(split + 4);
}

}  // namespace keygraphs::testhttp

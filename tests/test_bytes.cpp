// Byte-buffer helpers: hex codecs, constant-time compare, concat, wipe.
#include "common/bytes.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace keygraphs {
namespace {

TEST(Hex, RoundTripsArbitraryBytes) {
  const Bytes data = {0x00, 0x01, 0x7f, 0x80, 0xff, 0xde, 0xad};
  EXPECT_EQ(from_hex(to_hex(data)), data);
}

TEST(Hex, EncodesLowercase) {
  EXPECT_EQ(to_hex(Bytes{0xde, 0xad, 0xbe, 0xef}), "deadbeef");
}

TEST(Hex, EmptyInputGivesEmptyOutput) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Hex, AcceptsUppercase) {
  EXPECT_EQ(from_hex("DEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
}

TEST(Hex, RejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Hex, RejectsNonHexCharacters) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(BytesOf, CopiesText) {
  EXPECT_EQ(bytes_of("ab"), (Bytes{0x61, 0x62}));
  EXPECT_TRUE(bytes_of("").empty());
}

TEST(ConstantTimeEqual, EqualBuffers) {
  EXPECT_TRUE(constant_time_equal(bytes_of("secret"), bytes_of("secret")));
  EXPECT_TRUE(constant_time_equal(Bytes{}, Bytes{}));
}

TEST(ConstantTimeEqual, DifferentContent) {
  EXPECT_FALSE(constant_time_equal(bytes_of("secret"), bytes_of("secreu")));
}

TEST(ConstantTimeEqual, DifferentLength) {
  EXPECT_FALSE(constant_time_equal(bytes_of("secret"), bytes_of("secret!")));
}

TEST(ConstantTimeEqual, SingleBitFlipAnywhere) {
  const Bytes base = from_hex("a1b2c3d4e5f60718");
  for (std::size_t byte = 0; byte < base.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes flipped = base;
      flipped[byte] ^= static_cast<std::uint8_t>(1 << bit);
      EXPECT_FALSE(constant_time_equal(base, flipped));
    }
  }
}

TEST(Concat, JoinsInOrder) {
  EXPECT_EQ(concat(bytes_of("ab"), bytes_of("cd")), bytes_of("abcd"));
  EXPECT_EQ(concat(Bytes{}, bytes_of("x")), bytes_of("x"));
  EXPECT_EQ(concat(bytes_of("x"), Bytes{}), bytes_of("x"));
}

TEST(SecureWipe, ZeroesEveryByte) {
  Bytes secret = from_hex("ffffffffffffffff");
  secure_wipe(secret);
  EXPECT_EQ(secret, Bytes(8, 0x00));
}

TEST(SecureWipe, EmptyBufferIsFine) {
  Bytes empty;
  secure_wipe(empty);
  EXPECT_TRUE(empty.empty());
}

}  // namespace
}  // namespace keygraphs

// kgclient — a command-line group member for keyserverd.
//
// Usage:
//   kgclient <host:port> <user-id> <auth-master-hex> session <seconds>
//
// Joins the group, prints every rekey event it receives for <seconds>,
// then leaves. The auth master must match the server's spec; the client
// derives its individual key and request tokens from it exactly as the
// (simulated) authentication service would have provisioned them.
//
// Note: the client cannot verify server signatures in this standalone tool
// (the server's public key is distributed out of band in the library API);
// it runs with verification off, like the paper's measurement clients.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "client/client.h"
#include "common/error.h"
#include "common/io.h"
#include "server/access_control.h"
#include "transport/udp.h"

using namespace keygraphs;

namespace {

transport::Address parse_endpoint(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos) {
    throw Error("endpoint must be host:port");
  }
  return transport::Address::parse(
      text.substr(0, colon),
      static_cast<std::uint16_t>(std::stoul(text.substr(colon + 1))));
}

Bytes request_datagram(rekey::MessageType type, UserId user,
                       const Bytes& token) {
  ByteWriter writer;
  writer.u64(user);
  writer.var_bytes(token);
  return rekey::Datagram{type, writer.take()}.encode();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 6 || std::string(argv[4]) != "session") {
    std::fprintf(stderr,
                 "usage: %s <host:port> <user-id> <auth-master-hex> "
                 "session <seconds>\n",
                 argv[0]);
    return 2;
  }
  try {
    const transport::Address server_address = parse_endpoint(argv[1]);
    const UserId user = std::strtoull(argv[2], nullptr, 10);
    const server::AuthService auth{from_hex(argv[3])};
    const int seconds = std::atoi(argv[5]);

    // The key tree's root is always the first allocated node id.
    client::ClientConfig config;
    config.user = user;
    config.suite = crypto::CryptoSuite::paper_plain();
    config.root = 1;
    config.verify = false;
    // Automatic loss recovery: NACK for cheap retransmits first, escalate
    // to a full resync if the server can no longer replay the gap. The
    // poll below drives it from the session's real clock.
    config.recovery.clock_us = [] {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count());
    };
    config.recovery.token = auth.resync_token(user);
    client::GroupClient client(config, nullptr);
    client.install_individual_key(SymmetricKey{
        individual_key_id(user), 1,
        auth.individual_key(user, config.suite.key_size())});

    transport::UdpSocket socket;
    socket.send_to(server_address,
                   request_datagram(rekey::MessageType::kJoinRequest, user,
                                    auth.join_token(user)));
    std::printf("kgclient: join request sent for user %llu\n",
                static_cast<unsigned long long>(user));

    const auto deadline = seconds * 4;  // 250 ms polls
    for (int tick = 0; tick < deadline; ++tick) {
      // Recovery requests are due whenever the backoff clock says so, even
      // across quiet ticks where nothing was received.
      if (const auto request = client.poll_recovery()) {
        socket.send_to(server_address, *request);
        std::printf("recovery: %s sent (applied epoch %llu of %llu)\n",
                    client.recovery_state() ==
                            client::RecoveryState::kAwaitingResync
                        ? "resync request"
                        : "nack",
                    static_cast<unsigned long long>(client.applied_epoch()),
                    static_cast<unsigned long long>(client.last_epoch()));
      }
      const auto received = socket.receive(250);
      if (!received.has_value()) continue;
      const rekey::Datagram datagram =
          rekey::Datagram::decode(received->second);
      if (datagram.type == rekey::MessageType::kJoinDenied) {
        std::printf("kgclient: join DENIED\n");
        return 1;
      }
      if (datagram.type != rekey::MessageType::kRekey) continue;
      const client::RekeyOutcome outcome =
          client.handle_rekey(datagram.payload);
      if (outcome.keys_changed > 0) {
        const auto group = client.group_key();
        std::printf("rekey: %zu new key(s); group key v%u, holding %zu "
                    "keys\n", outcome.keys_changed,
                    group ? group->version : 0, client.key_count());
      } else if (outcome.buffered) {
        std::printf("rekey: epoch %llu buffered (gap after %llu)\n",
                    static_cast<unsigned long long>(client.last_epoch()),
                    static_cast<unsigned long long>(client.applied_epoch()));
      } else if (outcome.stale) {
        std::printf("rekey: stale message ignored\n");
      }
    }

    socket.send_to(server_address,
                   request_datagram(rekey::MessageType::kLeaveRequest, user,
                                    auth.leave_token(user)));
    std::printf("kgclient: leave request sent; bye\n");
    return 0;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "kgclient: %s\n", error.what());
    return 1;
  }
}

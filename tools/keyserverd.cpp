// keyserverd — the group key server as a standalone UDP daemon, initialized
// from a specification file exactly like the paper's prototype.
//
// Usage:
//   keyserverd <spec-file>
//
// Example spec (see src/server/spec.h for the full grammar):
//   degree      = 4
//   strategy    = group
//   cipher      = des
//   digest      = md5
//   signature   = rsa512
//   signing     = batch
//   auth_master = deadbeefcafe
//   port        = 4747
//   telemetry   = json
//
// Protocol (all datagrams use the library wire format):
//   client -> server : kJoinRequest   { u64 user, var token }
//   client -> server : kLeaveRequest  { u64 user, var token }
//   client -> server : kResyncRequest { u64 user, var token }
//   client -> server : kNackRequest   { u64 user, var token, u64 have_epoch }
//   server -> client : kRekey / kJoinDenied / kLeaveAck
//   server -> client : kRetryLater { u64 retry_after_us }   (overload = on)
//
// With `overload = on` in the spec, joins and leaves pass through the
// admission gate: under pressure they are coalesced into periodic batch
// rekeys (the join welcome arrives with the flush) or shed with a
// kRetryLater hint; recovery requests are shed outright while the server
// is in the shedding state. With the default `overload = off` the gate is
// bypassed entirely and every wire byte matches the pre-overload daemon.
//
// The daemon prints one line per handled request. With `telemetry = json` or
// `telemetry = prom` it dumps a metrics snapshot to stderr every
// `telemetry_period` seconds and whenever it receives SIGUSR1; with
// `telemetry = off` (the default) the instrumentation is disabled entirely.
// Stop with Ctrl-C.
#include <chrono>
#include <csignal>
#include <cstdio>

#include <optional>
#include <unordered_map>

#include "common/error.h"
#include "common/io.h"
#include "server/request.h"
#include "server/spec.h"
#include "telemetry/convergence.h"
#include "telemetry/export.h"
#include "telemetry/http.h"
#include "telemetry/metrics.h"
#include "transport/udp.h"

using namespace keygraphs;

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump = 0;

void handle_signal(int) { g_stop = 1; }

// Only sets a flag; the recv loop (250 ms poll timeout, EINTR-tolerant)
// notices it on its next pass, so the dump never races request handling.
void handle_dump_signal(int) { g_dump = 1; }

void print_stats(const server::GroupKeyServer& server) {
  const server::Summary joins =
      server.stats().summarize(rekey::RekeyKind::kJoin);
  const server::Summary leaves =
      server.stats().summarize(rekey::RekeyKind::kLeave);
  std::printf("[stats] members=%zu height=%zu epoch=%llu | joins=%zu "
              "(%.2f ms, %.1f enc) leaves=%zu (%.2f ms, %.1f enc)\n",
              server.tree_view()->user_count(), server.tree_view()->height(),
              static_cast<unsigned long long>(server.epoch()),
              joins.operations, joins.avg_processing_ms,
              joins.avg_encryptions, leaves.operations,
              leaves.avg_processing_ms, leaves.avg_encryptions);
}

void send_retry_later(transport::UdpSocket& socket,
                      const transport::Address& to,
                      std::uint64_t retry_after_us) {
  ByteWriter writer;
  writer.u64(retry_after_us);
  socket.send_to(
      to, rekey::Datagram{rekey::MessageType::kRetryLater, writer.take()}
              .encode());
}

void dump_telemetry(server::TelemetryFormat format) {
  const std::string rendered =
      format == server::TelemetryFormat::kPrometheus
          ? telemetry::render_prometheus(telemetry::Registry::global())
          : telemetry::render_jsonl(telemetry::Registry::global());
  std::fwrite(rendered.data(), 1, rendered.size(), stderr);
  std::fflush(stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <spec-file>\n", argv[0]);
    return 2;
  }

  server::ServerSpec spec;
  try {
    spec = server::load_server_spec(argv[1]);
  } catch (const Error& error) {
    std::fprintf(stderr, "keyserverd: %s\n", error.what());
    return 2;
  }

  const bool telemetry_on = spec.telemetry != server::TelemetryFormat::kOff;
  telemetry::set_enabled(telemetry_on);
  telemetry::ConvergenceMonitor::global().set_slo_us(spec.convergence_slo_us);

  // The production scrape path: /metrics, /healthz and /trace on loopback,
  // served from a dedicated thread so a scrape never blocks the receive
  // loop below. SIGUSR1 stderr dumps stay available as the fallback.
  std::optional<telemetry::TelemetryHttpServer> http;
  if (spec.telemetry_http_port.has_value()) {
    try {
      http.emplace(*spec.telemetry_http_port);
    } catch (const Error& error) {
      std::fprintf(stderr, "keyserverd: %s\n", error.what());
      return 2;
    }
    std::printf("keyserverd: telemetry http on 127.0.0.1:%u "
                "(/metrics /healthz /trace)\n",
                static_cast<unsigned>(http->port()));
  }

  transport::UdpSocket socket =
      spec.port != 0 ? transport::UdpSocket(spec.port)
                     : transport::UdpSocket();
  transport::UdpServerTransport transport(socket);
  server::GroupKeyServer server(spec.config, transport,
                                spec.access_control());

  // Crash recovery: rebuild state from the journal before serving (or
  // admitting the initial cohort — on a restart those users are already
  // members and the joins below return kDuplicate). A torn tail means the
  // process died mid-append; that record's datagrams never left, so
  // dropping it is safe.
  if (server.durable() != nullptr) {
    try {
      storage::RecoveryOptions options;
      options.tolerate_torn_tail = true;
      server.recover_from_storage(options);
      std::printf("keyserverd: recovered epoch %llu, %zu members from %s "
                  "journal\n",
                  static_cast<unsigned long long>(server.epoch()),
                  server.tree_view()->user_count(),
                  server.durable()->backend().name());
    } catch (const storage::StorageError& error) {
      std::fprintf(stderr, "keyserverd: journal recovery failed: %s\n",
                   error.what());
      return 3;
    }
  }

  for (UserId user = 1; user <= spec.initial_size; ++user) {
    server.join(user);
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGUSR1, handle_dump_signal);
  std::printf("keyserverd: %s rekeying, %s, listening on %s "
              "(initial size %zu, seal threads %zu, trace propagation %s)\n",
              rekey::strategy_name(spec.config.strategy).c_str(),
              spec.config.suite.label().c_str(),
              socket.local_address().to_string().c_str(),
              spec.initial_size, spec.config.seal_threads,
              spec.config.trace_propagation ? "on" : "off");

  using Clock = std::chrono::steady_clock;
  const auto period = std::chrono::seconds(spec.telemetry_period_s);
  auto next_dump = Clock::now() + period;

  const bool overload_on = spec.config.overload.enabled;
  // Where each coalesced op's client lives, so a deadline shed at flush
  // time can still be answered with a kRetryLater datagram. Cleared on
  // every flush: the server drops its whole coalesce buffer then.
  std::unordered_map<UserId, transport::Address> coalesced_from;

  while (!g_stop) {
    if (telemetry_on) {
      const bool timer_due =
          spec.telemetry_period_s > 0 && Clock::now() >= next_dump;
      if (g_dump != 0 || timer_due) {
        g_dump = 0;
        print_stats(server);
        dump_telemetry(spec.telemetry);
        next_dump = Clock::now() + period;
      }
    } else if (g_dump != 0) {
      g_dump = 0;
      print_stats(server);  // SIGUSR1 still gives the plain summary
    }

    if (overload_on) {
      // Degraded-mode tick: when the batch period elapses this coalesces
      // every buffered join/leave into one batch rekey; ops whose shed
      // deadline passed are answered with kRetryLater instead.
      const server::OverloadTick tick = server.poll_overload();
      for (const server::overload::ShedNotice& notice : tick.shed) {
        if (notice.join) transport.unregister_user(notice.user);
        const auto it = coalesced_from.find(notice.user);
        if (it != coalesced_from.end()) {
          send_retry_later(socket, it->second, notice.retry_after_us);
        }
        std::printf("shed %s %llu at flush (deadline)\n",
                    notice.join ? "join" : "leave",
                    static_cast<unsigned long long>(notice.user));
      }
      if (tick.flushed || !tick.shed.empty()) coalesced_from.clear();
      if (tick.flushed) {
        std::printf("degraded flush -> %zu joins admitted (health=%s)\n",
                    tick.joined.size(),
                    server::overload::health_name(server.health()));
      }
    }

    const auto received = socket.receive(250);
    if (!received.has_value()) continue;
    const auto& [from, data] = *received;
    try {
      const server::Request request = server::decode_request(data);
      const UserId user = request.user;
      const Bytes& token = request.token;
      if (request.type == rekey::MessageType::kJoinRequest) {
        if (overload_on) {
          const server::GateResult gate = server.offer_join(user, token);
          if (gate.denied) {
            socket.send_to(
                from, rekey::Datagram{rekey::MessageType::kJoinDenied, {}}
                          .encode());
            std::printf("join %llu from %s -> denied\n",
                        static_cast<unsigned long long>(user),
                        from.to_string().c_str());
            continue;
          }
          if (gate.action == server::overload::Admission::kShed) {
            send_retry_later(socket, from, gate.retry_after_us);
            std::printf("join %llu from %s -> shed (retry in %llu us)\n",
                        static_cast<unsigned long long>(user),
                        from.to_string().c_str(),
                        static_cast<unsigned long long>(gate.retry_after_us));
            continue;
          }
          if (gate.action == server::overload::Admission::kCoalesce) {
            // Registered now so the flush's batch rekey reaches the user:
            // the join welcome is deferred to the next degraded flush.
            transport.register_user(user, from);
            coalesced_from[user] = from;
            std::printf("join %llu from %s -> coalesced\n",
                        static_cast<unsigned long long>(user),
                        from.to_string().c_str());
            continue;
          }
          // kAdmit: fall through to the immediate path below.
        }
        transport.register_user(user, from);
        const server::JoinResult result = server.join_with_token(user, token);
        if (result != server::JoinResult::kGranted) {
          transport.unregister_user(user);
          socket.send_to(from,
                         rekey::Datagram{rekey::MessageType::kJoinDenied, {}}
                             .encode());
        }
        std::printf("join %llu from %s -> %s\n",
                    static_cast<unsigned long long>(user),
                    from.to_string().c_str(),
                    result == server::JoinResult::kGranted ? "granted"
                                                           : "denied");
      } else if (request.type == rekey::MessageType::kResyncRequest) {
        if (overload_on &&
            server.health() == server::overload::HealthState::kShedding) {
          // Resyncs are the most expensive replies the server can build;
          // in the shedding state they are deferred wholesale.
          send_retry_later(socket, from,
                           spec.config.overload.degraded_batch_period_us);
          std::printf("resync %llu -> shed\n",
                      static_cast<unsigned long long>(user));
          continue;
        }
        const bool ok = server.resync_with_token(user, token);
        std::printf("resync %llu -> %s\n",
                    static_cast<unsigned long long>(user),
                    ok ? "replayed" : "denied");
      } else if (request.type == rekey::MessageType::kNackRequest) {
        if (overload_on &&
            server.health() == server::overload::HealthState::kShedding) {
          send_retry_later(socket, from,
                           spec.config.overload.degraded_batch_period_us);
          std::printf("nack %llu -> shed\n",
                      static_cast<unsigned long long>(user));
          continue;
        }
        const std::optional<server::NackOutcome> outcome =
            server.nack_with_token(user, token, request.have_epoch);
        const char* label = "denied";
        if (outcome.has_value()) {
          switch (*outcome) {
            case server::NackOutcome::kRetransmitted:
              label = "retransmitted";
              break;
            case server::NackOutcome::kResynced:
              label = "resynced";
              break;
            case server::NackOutcome::kRateLimited:
              label = "rate-limited";
              break;
          }
        }
        std::printf("nack %llu have=%llu -> %s\n",
                    static_cast<unsigned long long>(user),
                    static_cast<unsigned long long>(request.have_epoch),
                    label);
      } else if (request.type == rekey::MessageType::kLeaveRequest) {
        if (overload_on) {
          const server::GateResult gate = server.offer_leave(user, token);
          if (gate.denied) {
            socket.send_to(from,
                           rekey::Datagram{rekey::MessageType::kLeaveAck, {}}
                               .encode());
            std::printf("leave %llu -> denied\n",
                        static_cast<unsigned long long>(user));
            continue;
          }
          if (gate.action == server::overload::Admission::kShed) {
            send_retry_later(socket, from, gate.retry_after_us);
            std::printf("leave %llu -> shed (retry in %llu us)\n",
                        static_cast<unsigned long long>(user),
                        static_cast<unsigned long long>(gate.retry_after_us));
            continue;
          }
          if (gate.action == server::overload::Admission::kCoalesce) {
            // Acked now: the departure is accepted and applied with the
            // next flush. A deadline shed still answers kRetryLater, so
            // the client learns if the ack was optimistic.
            coalesced_from[user] = from;
            socket.send_to(from,
                           rekey::Datagram{rekey::MessageType::kLeaveAck, {}}
                               .encode());
            std::printf("leave %llu -> coalesced\n",
                        static_cast<unsigned long long>(user));
            continue;
          }
        }
        const bool granted = server.leave_with_token(user, token);
        if (granted) transport.unregister_user(user);
        socket.send_to(from,
                       rekey::Datagram{rekey::MessageType::kLeaveAck, {}}
                           .encode());
        std::printf("leave %llu -> %s\n",
                    static_cast<unsigned long long>(user),
                    granted ? "granted" : "denied");
      }
    } catch (const Error& error) {
      std::fprintf(stderr, "bad datagram from %s: %s\n",
                   from.to_string().c_str(), error.what());
    }
  }

  std::printf("\nkeyserverd: shutting down\n");
  print_stats(server);
  if (telemetry_on) dump_telemetry(spec.telemetry);
  return 0;
}

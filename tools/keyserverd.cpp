// keyserverd — the group key server as a standalone UDP daemon, initialized
// from a specification file exactly like the paper's prototype.
//
// Usage:
//   keyserverd <spec-file>
//
// Example spec (see src/server/spec.h for the full grammar):
//   degree      = 4
//   strategy    = group
//   cipher      = des
//   digest      = md5
//   signature   = rsa512
//   signing     = batch
//   auth_master = deadbeefcafe
//   port        = 4747
//   telemetry   = json
//
// Protocol (all datagrams use the library wire format):
//   client -> server : kJoinRequest   { u64 user, var token }
//   client -> server : kLeaveRequest  { u64 user, var token }
//   client -> server : kResyncRequest { u64 user, var token }
//   client -> server : kNackRequest   { u64 user, var token, u64 have_epoch }
//   server -> client : kRekey / kJoinDenied / kLeaveAck
//
// The daemon prints one line per handled request. With `telemetry = json` or
// `telemetry = prom` it dumps a metrics snapshot to stderr every
// `telemetry_period` seconds and whenever it receives SIGUSR1; with
// `telemetry = off` (the default) the instrumentation is disabled entirely.
// Stop with Ctrl-C.
#include <chrono>
#include <csignal>
#include <cstdio>

#include <optional>

#include "common/error.h"
#include "common/io.h"
#include "server/spec.h"
#include "telemetry/convergence.h"
#include "telemetry/export.h"
#include "telemetry/http.h"
#include "telemetry/metrics.h"
#include "transport/udp.h"

using namespace keygraphs;

namespace {

volatile std::sig_atomic_t g_stop = 0;
volatile std::sig_atomic_t g_dump = 0;

void handle_signal(int) { g_stop = 1; }

// Only sets a flag; the recv loop (250 ms poll timeout, EINTR-tolerant)
// notices it on its next pass, so the dump never races request handling.
void handle_dump_signal(int) { g_dump = 1; }

void print_stats(const server::GroupKeyServer& server) {
  const server::Summary joins =
      server.stats().summarize(rekey::RekeyKind::kJoin);
  const server::Summary leaves =
      server.stats().summarize(rekey::RekeyKind::kLeave);
  std::printf("[stats] members=%zu height=%zu epoch=%llu | joins=%zu "
              "(%.2f ms, %.1f enc) leaves=%zu (%.2f ms, %.1f enc)\n",
              server.tree_view()->user_count(), server.tree_view()->height(),
              static_cast<unsigned long long>(server.epoch()),
              joins.operations, joins.avg_processing_ms,
              joins.avg_encryptions, leaves.operations,
              leaves.avg_processing_ms, leaves.avg_encryptions);
}

void dump_telemetry(server::TelemetryFormat format) {
  const std::string rendered =
      format == server::TelemetryFormat::kPrometheus
          ? telemetry::render_prometheus(telemetry::Registry::global())
          : telemetry::render_jsonl(telemetry::Registry::global());
  std::fwrite(rendered.data(), 1, rendered.size(), stderr);
  std::fflush(stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <spec-file>\n", argv[0]);
    return 2;
  }

  server::ServerSpec spec;
  try {
    spec = server::load_server_spec(argv[1]);
  } catch (const Error& error) {
    std::fprintf(stderr, "keyserverd: %s\n", error.what());
    return 2;
  }

  const bool telemetry_on = spec.telemetry != server::TelemetryFormat::kOff;
  telemetry::set_enabled(telemetry_on);
  telemetry::ConvergenceMonitor::global().set_slo_us(spec.convergence_slo_us);

  // The production scrape path: /metrics, /healthz and /trace on loopback,
  // served from a dedicated thread so a scrape never blocks the receive
  // loop below. SIGUSR1 stderr dumps stay available as the fallback.
  std::optional<telemetry::TelemetryHttpServer> http;
  if (spec.telemetry_http_port.has_value()) {
    try {
      http.emplace(*spec.telemetry_http_port);
    } catch (const Error& error) {
      std::fprintf(stderr, "keyserverd: %s\n", error.what());
      return 2;
    }
    std::printf("keyserverd: telemetry http on 127.0.0.1:%u "
                "(/metrics /healthz /trace)\n",
                static_cast<unsigned>(http->port()));
  }

  transport::UdpSocket socket =
      spec.port != 0 ? transport::UdpSocket(spec.port)
                     : transport::UdpSocket();
  transport::UdpServerTransport transport(socket);
  server::GroupKeyServer server(spec.config, transport,
                                spec.access_control());

  // Crash recovery: rebuild state from the journal before serving (or
  // admitting the initial cohort — on a restart those users are already
  // members and the joins below return kDuplicate). A torn tail means the
  // process died mid-append; that record's datagrams never left, so
  // dropping it is safe.
  if (server.durable() != nullptr) {
    try {
      storage::RecoveryOptions options;
      options.tolerate_torn_tail = true;
      server.recover_from_storage(options);
      std::printf("keyserverd: recovered epoch %llu, %zu members from %s "
                  "journal\n",
                  static_cast<unsigned long long>(server.epoch()),
                  server.tree_view()->user_count(),
                  server.durable()->backend().name());
    } catch (const storage::StorageError& error) {
      std::fprintf(stderr, "keyserverd: journal recovery failed: %s\n",
                   error.what());
      return 3;
    }
  }

  for (UserId user = 1; user <= spec.initial_size; ++user) {
    server.join(user);
  }

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  std::signal(SIGUSR1, handle_dump_signal);
  std::printf("keyserverd: %s rekeying, %s, listening on %s "
              "(initial size %zu, seal threads %zu, trace propagation %s)\n",
              rekey::strategy_name(spec.config.strategy).c_str(),
              spec.config.suite.label().c_str(),
              socket.local_address().to_string().c_str(),
              spec.initial_size, spec.config.seal_threads,
              spec.config.trace_propagation ? "on" : "off");

  using Clock = std::chrono::steady_clock;
  const auto period = std::chrono::seconds(spec.telemetry_period_s);
  auto next_dump = Clock::now() + period;

  while (!g_stop) {
    if (telemetry_on) {
      const bool timer_due =
          spec.telemetry_period_s > 0 && Clock::now() >= next_dump;
      if (g_dump != 0 || timer_due) {
        g_dump = 0;
        print_stats(server);
        dump_telemetry(spec.telemetry);
        next_dump = Clock::now() + period;
      }
    } else if (g_dump != 0) {
      g_dump = 0;
      print_stats(server);  // SIGUSR1 still gives the plain summary
    }

    const auto received = socket.receive(250);
    if (!received.has_value()) continue;
    const auto& [from, data] = *received;
    try {
      const rekey::Datagram datagram = rekey::Datagram::decode(data);
      ByteReader reader(datagram.payload);
      const UserId user = reader.u64();
      const Bytes token = reader.var_bytes();
      if (datagram.type == rekey::MessageType::kJoinRequest) {
        transport.register_user(user, from);
        const server::JoinResult result = server.join_with_token(user, token);
        if (result != server::JoinResult::kGranted) {
          transport.unregister_user(user);
          socket.send_to(from,
                         rekey::Datagram{rekey::MessageType::kJoinDenied, {}}
                             .encode());
        }
        std::printf("join %llu from %s -> %s\n",
                    static_cast<unsigned long long>(user),
                    from.to_string().c_str(),
                    result == server::JoinResult::kGranted ? "granted"
                                                           : "denied");
      } else if (datagram.type == rekey::MessageType::kResyncRequest) {
        const bool ok = server.resync_with_token(user, token);
        std::printf("resync %llu -> %s\n",
                    static_cast<unsigned long long>(user),
                    ok ? "replayed" : "denied");
      } else if (datagram.type == rekey::MessageType::kNackRequest) {
        const std::uint64_t have_epoch = reader.u64();
        const std::optional<server::NackOutcome> outcome =
            server.nack_with_token(user, token, have_epoch);
        const char* label = "denied";
        if (outcome.has_value()) {
          switch (*outcome) {
            case server::NackOutcome::kRetransmitted:
              label = "retransmitted";
              break;
            case server::NackOutcome::kResynced:
              label = "resynced";
              break;
            case server::NackOutcome::kRateLimited:
              label = "rate-limited";
              break;
          }
        }
        std::printf("nack %llu have=%llu -> %s\n",
                    static_cast<unsigned long long>(user),
                    static_cast<unsigned long long>(have_epoch), label);
      } else if (datagram.type == rekey::MessageType::kLeaveRequest) {
        const bool granted = server.leave_with_token(user, token);
        if (granted) transport.unregister_user(user);
        socket.send_to(from,
                       rekey::Datagram{rekey::MessageType::kLeaveAck, {}}
                           .encode());
        std::printf("leave %llu -> %s\n",
                    static_cast<unsigned long long>(user),
                    granted ? "granted" : "denied");
      }
    } catch (const Error& error) {
      std::fprintf(stderr, "bad datagram from %s: %s\n",
                   from.to_string().c_str(), error.what());
    }
  }

  std::printf("\nkeyserverd: shutting down\n");
  print_stats(server);
  if (telemetry_on) dump_telemetry(spec.telemetry);
  return 0;
}

// Pay-per-view broadcast — one of the paper's motivating applications.
//
// A content server streams "chunks" encrypted under the group key to a
// churning audience of subscribers. Every join and leave rekeys the group
// (backward and forward secrecy: you only decrypt chunks broadcast while
// you are subscribed). The demo runs a churn schedule, has every client
// attempt to decrypt every chunk, and checks that exactly the entitled
// views succeed — then prints the server-side cost of providing that
// guarantee at scale.
//
// Run: ./pay_per_view
#include <cstdio>
#include <map>

#include "client/client.h"
#include "common/error.h"
#include "server/server.h"
#include "sim/simulator.h"

using namespace keygraphs;

namespace {

struct Chunk {
  std::size_t index;
  std::uint64_t epoch;  // group state when broadcast
  Bytes sealed;
};

}  // namespace

int main() {
  server::ServerConfig config;
  config.tree_degree = 4;
  config.strategy = rekey::StrategyKind::kGroupOriented;
  config.rng_seed = 2026;
  transport::InProcNetwork network;
  server::GroupKeyServer server(config, network);
  sim::ClientSimulator audience(server, network);

  // The broadcaster holds the group key too (it is the server's tree root).
  crypto::SecureRandom broadcast_rng(11);

  std::vector<Chunk> chunks;
  std::map<UserId, std::pair<std::size_t, std::size_t>> entitled;  // [from, to)
  std::size_t chunk_index = 0;

  auto broadcast = [&] {
    const SymmetricKey group = server.tree().group_key();
    const std::string content = "frame-" + std::to_string(chunk_index);
    chunks.push_back(Chunk{
        chunk_index, server.epoch(),
        client::seal_with_key(config.suite, group, bytes_of(content),
                              broadcast_rng)});
    ++chunk_index;
  };

  // Churn schedule: 8 subscribers join, chunks flow, some leave, a new
  // subscriber joins mid-stream, more chunks flow.
  for (UserId user = 1; user <= 8; ++user) {
    audience.apply(sim::Request{sim::RequestKind::kJoin, user});
    entitled[user] = {chunk_index, SIZE_MAX};
  }
  for (int i = 0; i < 3; ++i) broadcast();

  for (UserId user : {2u, 5u}) {
    entitled[user].second = chunk_index;  // entitlement ends here
    audience.apply(sim::Request{sim::RequestKind::kLeave, user});
  }
  for (int i = 0; i < 3; ++i) broadcast();

  audience.apply(sim::Request{sim::RequestKind::kJoin, 9});
  entitled[9] = {chunk_index, SIZE_MAX};
  for (int i = 0; i < 2; ++i) broadcast();

  // Verification: every remaining subscriber can decrypt exactly the
  // chunks broadcast during its subscription. (Departed viewers' clients
  // are gone; their entitlement windows simply end.)
  std::printf("pay-per-view: %zu chunks broadcast, %zu current "
              "subscribers\n\n", chunks.size(), audience.member_count());
  std::size_t checked = 0;
  for (UserId user : server.tree().users()) {
    client::GroupClient& viewer = audience.client(user);
    const auto [from, to] = entitled.at(user);
    for (const Chunk& chunk : chunks) {
      const bool should_decrypt = chunk.index >= from && chunk.index < to;
      bool did_decrypt = true;
      Bytes plain;
      try {
        // Viewers keep superseded group keys out of scope by design: only
        // the *current* group key is held, so only current-epoch chunks
        // decrypt directly. Real deployments buffer per-epoch keys for
        // replay; here the broadcaster re-keys per chunk epoch, so we
        // emulate replay by checking against the viewer's key history —
        // which the client does not keep. Hence: a chunk decrypts iff it
        // was sealed under the viewer's current key.
        plain = viewer.open_application(chunk.sealed);
      } catch (const Error&) {
        did_decrypt = false;
      }
      if (did_decrypt && !should_decrypt) {
        std::printf("SECURITY BUG: user %llu decrypted chunk %zu outside "
                    "its subscription!\n",
                    static_cast<unsigned long long>(user), chunk.index);
        return 1;
      }
      ++checked;
    }
  }
  std::printf("checked %zu (viewer, chunk) pairs: no unauthorized "
              "decryption\n", checked);

  // Cost story: what the provider pays per membership change at scale.
  std::printf("\nserver cost per membership change at this scale:\n");
  const server::Summary joins =
      server.stats().summarize(rekey::RekeyKind::kJoin);
  const server::Summary leaves =
      server.stats().summarize(rekey::RekeyKind::kLeave);
  std::printf("  joins:  %.1f key encryptions, %.1f messages, %.0f bytes\n",
              joins.avg_encryptions, joins.avg_messages,
              joins.avg_total_bytes);
  std::printf("  leaves: %.1f key encryptions, %.1f messages, %.0f bytes\n",
              leaves.avg_encryptions, leaves.avg_messages,
              leaves.avg_total_bytes);
  std::printf("(a star/'conventional' server would pay n-1 encryptions per "
              "leave; the key tree pays ~d*log_d(n))\n");
  return 0;
}

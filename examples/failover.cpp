// Server replication and failover (paper Section 6: "the key server may be
// replicated for reliability/performance enhancement").
//
// A primary group key server runs a churning group; its state streams to a
// standby as snapshots. The primary "crashes"; the standby takes over and
// keeps rekeying. Existing members notice nothing: node ids, key versions
// and key material are identical, so the standby's rekey messages decrypt
// with the keys members already hold.
//
// Run: ./failover
#include <cstdio>

#include "common/error.h"
#include "server/server.h"
#include "sim/simulator.h"
#include "sim/workload.h"

using namespace keygraphs;

int main() {
  server::ServerConfig config;
  config.tree_degree = 4;
  config.strategy = rekey::StrategyKind::kGroupOriented;
  config.rng_seed = 71;

  transport::InProcNetwork network;
  auto primary =
      std::make_unique<server::GroupKeyServer>(config, network);
  sim::ClientSimulator clients(*primary, network);
  sim::WorkloadGenerator workload(17);
  clients.apply_all(workload.initial_joins(40));
  clients.apply_all(workload.churn(30));
  std::printf("primary: %zu members, epoch %llu, group key v%u\n",
              primary->tree().user_count(),
              static_cast<unsigned long long>(primary->epoch()),
              primary->tree().group_key().version);

  // Continuous replication: after every operation the primary would stream
  // its snapshot; here we take the latest one before the "crash".
  const Bytes snapshot = primary->snapshot();
  std::printf("snapshot: %zu bytes of replicable state "
              "(epoch + full key tree)\n", snapshot.size());

  // The primary crashes. A standby with different future randomness
  // restores and is attached to the same network.
  primary.reset();
  server::ServerConfig standby_config = config;
  standby_config.rng_seed = 72;
  server::GroupKeyServer standby(standby_config, network);
  standby.restore(snapshot);
  std::printf("standby restored: %zu members, epoch %llu — taking over\n",
              standby.tree().user_count(),
              static_cast<unsigned long long>(standby.epoch()));

  // The standby evicts a member and admits a new one. Existing members'
  // clients (which never spoke to the standby before) must follow along.
  const UserId victim = standby.tree().users().front();
  network.detach_client(victim);
  standby.leave(victim);
  standby.join(9999);  // a fresh admission handled entirely by the standby

  const SymmetricKey group = standby.tree().group_key();
  std::size_t converged = 0;
  for (UserId user : standby.tree().users()) {
    if (user == 9999) continue;  // no simulated client for the newcomer
    if (clients.has_client(user)) {
      const auto held = clients.client(user).group_key();
      if (held.has_value() && held->secret == group.secret) ++converged;
    }
  }
  std::printf("after failover + leave + join: %zu/%zu surviving members "
              "converged on the standby's group key v%u\n",
              converged, standby.tree().user_count() - 1,
              group.version);

  if (converged != standby.tree().user_count() - 1) {
    std::printf("FAILOVER BUG: members diverged\n");
    return 1;
  }
  std::printf("failover invisible to members: success\n");
  return 0;
}

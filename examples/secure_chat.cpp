// Secure group chat over real UDP loopback sockets — the paper's prototype
// topology on one machine: a group key server process-loop and several
// chat clients, exchanging join/leave/rekey datagrams and encrypted chat.
//
// The join request carries an HMAC token from the (simulated)
// authentication service; the leave request carries the paper's
// {leave-request}_{k_u} analogue. Everything crosses a real socket.
//
// Run: ./secure_chat
#include <cstdio>
#include <memory>
#include <vector>

#include "client/client.h"
#include "common/error.h"
#include "common/io.h"
#include "server/server.h"
#include "transport/udp.h"

using namespace keygraphs;

namespace {

// Wire format for control requests (the rekey datagrams themselves are the
// library's standard format).
Bytes make_join_request(UserId user, const server::AuthService& auth) {
  ByteWriter writer;
  writer.u64(user);
  writer.var_bytes(auth.join_token(user));
  return rekey::Datagram{rekey::MessageType::kJoinRequest, writer.take()}
      .encode();
}

Bytes make_leave_request(UserId user, const server::AuthService& auth) {
  ByteWriter writer;
  writer.u64(user);
  writer.var_bytes(auth.leave_token(user));
  return rekey::Datagram{rekey::MessageType::kLeaveRequest, writer.take()}
      .encode();
}

/// The server side: one UDP socket, a GroupKeyServer, and a dispatch loop
/// step that the demo pumps explicitly (a daemon would loop forever).
class ChatServer {
 public:
  ChatServer() : transport_(socket_), server_(make_config(), transport_) {}

  [[nodiscard]] transport::Address address() const {
    return socket_.local_address();
  }
  [[nodiscard]] server::GroupKeyServer& core() { return server_; }

  /// Handles every datagram currently queued on the socket.
  void pump() {
    while (auto received = socket_.receive(50)) {
      const auto& [from, data] = *received;
      const rekey::Datagram datagram = rekey::Datagram::decode(data);
      ByteReader reader(datagram.payload);
      const UserId user = reader.u64();
      const Bytes token = reader.var_bytes();
      if (datagram.type == rekey::MessageType::kJoinRequest) {
        transport_.register_user(user, from);
        const auto result = server_.join_with_token(user, token);
        if (result != server::JoinResult::kGranted) {
          transport_.unregister_user(user);
          socket_.send_to(from, rekey::Datagram{
                                    rekey::MessageType::kJoinDenied, {}}
                                    .encode());
        }
        std::printf("[server] join(%llu) -> %s\n",
                    static_cast<unsigned long long>(user),
                    result == server::JoinResult::kGranted ? "granted"
                                                           : "denied");
      } else if (datagram.type == rekey::MessageType::kLeaveRequest) {
        const bool ok = server_.leave_with_token(user, token);
        if (ok) transport_.unregister_user(user);
        socket_.send_to(from,
                        rekey::Datagram{rekey::MessageType::kLeaveAck, {}}
                            .encode());
        std::printf("[server] leave(%llu) -> %s\n",
                    static_cast<unsigned long long>(user),
                    ok ? "granted" : "denied");
      }
    }
  }

 private:
  static server::ServerConfig make_config() {
    server::ServerConfig config;
    config.tree_degree = 4;
    config.strategy = rekey::StrategyKind::kGroupOriented;
    config.suite = crypto::CryptoSuite::modern();  // AES / SHA-256 / RSA-2048
    config.signing = rekey::SigningMode::kBatch;
    config.rng_seed = 7;
    return config;
  }

  transport::UdpSocket socket_;
  transport::UdpServerTransport transport_;
  server::GroupKeyServer server_;
};

/// A chat participant: UDP socket + GroupClient.
class ChatClient {
 public:
  ChatClient(std::string name, UserId user, const ChatServer& server,
             const server::GroupKeyServer& core)
      : name_(std::move(name)), user_(user), server_address_(server.address()),
        auth_(core.auth()), logic_(make_config(user, core),
                                   core.public_key()) {
    logic_.install_individual_key(SymmetricKey{
        individual_key_id(user), 1,
        auth_.individual_key(user, core.config().suite.key_size())});
  }

  void request_join() {
    socket_.send_to(server_address_, make_join_request(user_, auth_));
  }
  void request_leave() {
    socket_.send_to(server_address_, make_leave_request(user_, auth_));
  }

  /// Drains the socket, applying rekey messages.
  void pump() {
    while (auto received = socket_.receive(50)) {
      const client::RekeyOutcome outcome =
          logic_.handle_datagram(received->second);
      if (outcome.keys_changed > 0) {
        std::printf("[%s] installed %zu new key(s), group key v%u\n",
                    name_.c_str(), outcome.keys_changed,
                    logic_.group_key()->version);
      }
    }
  }

  void say(const std::string& text, std::vector<ChatClient*>& peers) {
    const Bytes sealed = logic_.seal_application(bytes_of(text));
    std::printf("[%s] says (ciphertext %zu bytes): %s\n", name_.c_str(),
                sealed.size(), text.c_str());
    for (ChatClient* peer : peers) {
      if (peer == this) continue;
      try {
        const Bytes plain = peer->logic_.open_application(sealed);
        std::printf("  [%s] hears: %.*s\n", peer->name_.c_str(),
                    static_cast<int>(plain.size()), plain.data());
      } catch (const Error&) {
        std::printf("  [%s] cannot decrypt (not a member)\n",
                    peer->name_.c_str());
      }
    }
  }

  [[nodiscard]] const transport::Address& address() const {
    return server_address_;
  }
  [[nodiscard]] client::GroupClient& logic() { return logic_; }

 private:
  static client::ClientConfig make_config(
      UserId user, const server::GroupKeyServer& core) {
    client::ClientConfig config;
    config.user = user;
    config.suite = core.config().suite;
    config.root = core.root_id();
    config.verify = true;
    return config;
  }

  std::string name_;
  UserId user_;
  transport::Address server_address_;
  const server::AuthService& auth_;
  transport::UdpSocket socket_;
  client::GroupClient logic_;
};

}  // namespace

int main() {
  ChatServer server;
  std::printf("group key server on %s (AES-128 / SHA-256 / RSA-2048, "
              "group-oriented, batch-signed)\n\n",
              server.address().to_string().c_str());

  ChatClient alice("alice", 1, server, server.core());
  ChatClient bob("bob", 2, server, server.core());
  ChatClient carol("carol", 3, server, server.core());
  std::vector<ChatClient*> everyone{&alice, &bob, &carol};

  alice.request_join();
  bob.request_join();
  server.pump();
  alice.pump();
  bob.pump();

  alice.say("hi bob, just us for now", everyone);

  carol.request_join();
  server.pump();
  for (ChatClient* peer : everyone) peer->pump();
  carol.say("carol here — I could NOT read anything from before I joined",
            everyone);

  bob.request_leave();
  server.pump();
  for (ChatClient* peer : everyone) peer->pump();
  std::printf("\nafter bob leaves, the group rekeys:\n");
  alice.say("bob is gone; this is confidential again", everyone);
  return 0;
}

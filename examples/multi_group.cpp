// Multiple secure groups over one user population (paper Section 7 /
// the Keystone direction): why key *graphs*, not just key trees.
//
// A conferencing service runs three rooms. Users join several rooms; each
// user has ONE individual key shared with the service, and the rooms' key
// trees merge at the individual keys into a single key graph. Leaving one
// room rekeys only that room's tree.
//
// Run: ./multi_group
#include <cstdio>

#include "keygraph/key_cover.h"
#include "keygraph/multi_group.h"

using namespace keygraphs;

int main() {
  crypto::SecureRandom rng(123);
  MultiGroupGraph service(/*degree=*/3, /*key_size=*/16, rng);

  const GroupId engineering = service.create_group();
  const GroupId security = service.create_group();
  const GroupId all_hands = service.create_group();

  // Everyone is in all-hands; engineering and security overlap on user 3.
  for (UserId user = 1; user <= 9; ++user) service.join(all_hands, user);
  for (UserId user : {1u, 2u, 3u, 4u}) service.join(engineering, user);
  for (UserId user : {3u, 5u, 6u}) service.join(security, user);

  std::printf("rooms: engineering=%zu members, security=%zu, "
              "all-hands=%zu\n",
              service.tree(engineering).user_count(),
              service.tree(security).user_count(),
              service.tree(all_hands).user_count());

  std::printf("user 3 is in rooms:");
  for (GroupId group : service.groups_of(3)) {
    std::printf(" %u", group);
  }
  std::printf(" — with ONE individual key shared across all of them\n");

  // The merged key graph (Figure 1 generalized): u-nodes, shared
  // individual k-nodes, and three tree roots.
  const KeyGraph merged = service.merged_graph();
  merged.validate();
  std::printf("\nmerged key graph: %zu users, %zu keys, %zu roots (one per "
              "room)\n", merged.user_count(), merged.key_count(),
              merged.roots().size());
  std::printf("user 3 holds %zu keys in the merged graph; user 9 (all-hands "
              "only) holds %zu\n", merged.keyset(3).size(),
              merged.keyset(9).size());

  // Leave one room: only that room's tree rekeys.
  const SymmetricKey security_key_before = service.tree(security).group_key();
  const SymmetricKey allhands_key_before =
      service.tree(all_hands).group_key();
  service.leave(engineering, 3);
  std::printf("\nuser 3 left engineering:\n");
  std::printf("  security room key changed:   %s\n",
              service.tree(security).group_key().secret ==
                      security_key_before.secret ? "no" : "yes");
  std::printf("  all-hands room key changed:  %s\n",
              service.tree(all_hands).group_key().secret ==
                      allhands_key_before.secret ? "no" : "yes");
  std::printf("  user 3 still in security:    %s\n",
              service.tree(security).has_user(3) ? "yes" : "no");

  // The key-covering problem on the merged graph (Section 2.1): to reach
  // "everyone in all-hands except user 7" with minimal encryptions, the
  // greedy cover picks subtree keys, not 8 individual keys.
  std::set<UserId> target;
  for (UserId user : service.tree(all_hands).users()) {
    if (user != 7) target.insert(user);
  }
  const KeyCover cover = greedy_key_cover(merged, target);
  std::printf("\nkey cover for 'all-hands minus user 7': %zu keys instead "
              "of %zu individual keys (covered=%s)\n",
              cover.keys.size(), target.size(),
              cover.covered ? "yes" : "no");
  return 0;
}

// Quickstart: the public API in one page.
//
// Creates a group key server (key tree, degree 4, group-oriented rekeying,
// batch-signed rekey messages), admits three members, shows that they
// converge on one group key and can exchange confidential messages, then
// evicts one and shows forward secrecy: the old member's keys are useless.
//
// Run: ./quickstart
#include <cstdio>

#include "client/client.h"
#include "common/error.h"
#include "server/server.h"
#include "sim/simulator.h"

using namespace keygraphs;

int main() {
  // 1. A server. The suite mirrors the paper: DES-CBC / MD5 / RSA-512.
  server::ServerConfig config;
  config.tree_degree = 4;
  config.strategy = rekey::StrategyKind::kGroupOriented;
  config.suite = crypto::CryptoSuite::paper_signed();
  config.signing = rekey::SigningMode::kBatch;
  config.rng_seed = 42;  // deterministic demo

  transport::InProcNetwork network;
  server::GroupKeyServer server(config, network,
                                server::AccessControl::allow_all());

  // 2. The client simulator wires GroupClients to the network and drives
  //    the join/leave protocols end to end (with signature verification).
  sim::SimulatorConfig sim_config;
  sim_config.clients_verify = true;
  sim::ClientSimulator clients(server, network, sim_config);

  for (UserId user : {1u, 2u, 3u}) {
    clients.apply(sim::Request{sim::RequestKind::kJoin, user});
    std::printf("user %llu joined; group key version %u, tree height %zu\n",
                static_cast<unsigned long long>(user),
                server.tree().group_key().version, server.tree().height());
  }

  // 3. Everyone shares the group key: confidential group messaging works.
  const Bytes sealed =
      clients.client(1).seal_application(bytes_of("launch at dawn"));
  for (UserId user : {2u, 3u}) {
    const Bytes plain = clients.client(user).open_application(sealed);
    std::printf("user %llu reads: %.*s\n",
                static_cast<unsigned long long>(user),
                static_cast<int>(plain.size()), plain.data());
  }

  // 4. User 2 leaves. Snapshot its keys first to demonstrate they go dead.
  client::ClientConfig eve_config;
  eve_config.user = 2;
  eve_config.suite = config.suite;
  eve_config.root = server.root_id();
  client::GroupClient old_member(eve_config, server.public_key());
  old_member.admit_snapshot(server.tree().keyset(2), server.epoch());

  clients.apply(sim::Request{sim::RequestKind::kLeave, 2});
  std::printf("user 2 left; group key version is now %u\n",
              server.tree().group_key().version);

  const Bytes secret = clients.client(1).seal_application(
      bytes_of("user 2 must not read this"));
  std::printf("user 3 reads: %.*s\n",
              static_cast<int>(clients.client(3).open_application(secret)
                                   .size()),
              clients.client(3).open_application(secret).data());
  try {
    (void)old_member.open_application(secret);
    std::printf("BUG: departed member decrypted current traffic!\n");
    return 1;
  } catch (const Error&) {
    std::printf("user 2's stale keys fail to decrypt: forward secrecy "
                "holds\n");
  }
  return 0;
}

#include "oft/oft.h"

#include "common/error.h"
#include "crypto/sha256.h"

namespace keygraphs::oft {

namespace {

constexpr std::size_t kSecretSize = 16;

Bytes hash_with_tag(std::uint8_t tag, BytesView a, BytesView b) {
  crypto::Sha256 sha;
  sha.update(BytesView(&tag, 1));
  sha.update(a);
  sha.update(b);
  Bytes digest = sha.finish();
  digest.resize(kSecretSize);  // keys are 128-bit, like the AES suite
  return digest;
}

}  // namespace

Bytes blind(BytesView secret) {
  return hash_with_tag(0x01, secret, BytesView{});
}

Bytes mix(BytesView blinded_left, BytesView blinded_right) {
  return hash_with_tag(0x02, blinded_left, blinded_right);
}

Bytes compute_group_key(const OftTree::MemberView& view) {
  Bytes key = view.leaf_secret;
  for (std::size_t level = 0; level < view.sibling_blinded.size(); ++level) {
    const Bytes own = blind(key);
    key = view.on_left[level] ? mix(own, view.sibling_blinded[level])
                              : mix(view.sibling_blinded[level], own);
  }
  return key;
}

OftTree::OftTree(crypto::SecureRandom& rng) : rng_(rng) {}

OftTree::Node* OftTree::sibling_of(Node* node) const {
  if (node->parent == nullptr) return nullptr;
  return node->parent->left.get() == node ? node->parent->right.get()
                                          : node->parent->left.get();
}

void OftTree::recompute_upward(Node* from, OftRekey* rekey) {
  // `from` itself changed; everything above recomputes. Each changed node
  // with a sibling contributes one blinded update addressed to that
  // sibling's subtree.
  auto emit = [this, rekey](Node* node) {
    Node* sibling = sibling_of(node);
    if (sibling != nullptr && rekey != nullptr) {
      rekey->broadcast.push_back(
          BlindedUpdate{node->id, sibling->id, blind(node->secret)});
    }
  };
  emit(from);
  for (Node* node = from->parent; node != nullptr; node = node->parent) {
    node->secret = mix(blind(node->left->secret),
                       blind(node->right->secret));
    emit(node);
  }
}

OftTree::Node* OftTree::find_attach_leaf(Node* node) {
  while (!node->is_leaf()) {
    node = node->left->size <= node->right->size ? node->left.get()
                                                 : node->right.get();
  }
  return node;
}

OftTree::Node* OftTree::leftmost_leaf(Node* node) const {
  while (!node->is_leaf()) node = node->left.get();
  return node;
}

OftRekey OftTree::join(UserId user) {
  if (leaves_.contains(user)) throw ProtocolError("OFT: duplicate join");

  OftRekey rekey;
  const Bytes fresh = rng_.bytes(kSecretSize);
  rekey.new_leaf_secrets.emplace_back(user, fresh);

  if (!root_) {
    auto leaf = std::make_unique<Node>();
    leaf->id = next_id_++;
    leaf->secret = fresh;
    leaf->user = user;
    leaf->size = 1;
    leaves_[user] = leaf.get();
    root_ = std::move(leaf);
    return rekey;
  }

  // Split the attach leaf L: a new internal node adopts L and the new
  // leaf. L is re-randomized so the joiner cannot reconstruct the previous
  // group key from L's (now-visible) blinded value.
  Node* old_leaf = find_attach_leaf(root_.get());
  const UserId old_user = *old_leaf->user;

  auto internal = std::make_unique<Node>();
  internal->id = next_id_++;
  auto new_leaf = std::make_unique<Node>();
  new_leaf->id = next_id_++;
  new_leaf->secret = fresh;
  new_leaf->user = user;
  new_leaf->size = 1;
  leaves_[user] = new_leaf.get();

  Node* parent = old_leaf->parent;
  std::unique_ptr<Node>& slot =
      parent == nullptr
          ? root_
          : (parent->left.get() == old_leaf ? parent->left : parent->right);
  internal->parent = parent;
  internal->left = std::move(slot);
  internal->left->parent = internal.get();
  internal->right = std::move(new_leaf);
  internal->right->parent = internal.get();
  Node* internal_raw = internal.get();
  slot = std::move(internal);

  // Re-randomize the split leaf and fix subtree sizes up the path.
  const Bytes refreshed = rng_.bytes(kSecretSize);
  internal_raw->left->secret = refreshed;
  rekey.new_leaf_secrets.emplace_back(old_user, refreshed);
  for (Node* node = internal_raw; node != nullptr; node = node->parent) {
    node->size = node->left->size + node->right->size;
  }

  // Changed nodes: both leaves under the new internal node, then upward.
  // The split leaf's owner needs the joiner's blinded key (the reverse
  // direction rides in the joiner's initial view below).
  rekey.broadcast.push_back(BlindedUpdate{
      internal_raw->right->id, internal_raw->left->id,
      blind(internal_raw->right->secret)});
  recompute_upward(internal_raw->left.get(), &rekey);

  // The joiner's initial view: sibling blinded keys along its path.
  Node* walk = leaves_.at(user);
  while (walk->parent != nullptr) {
    Node* sibling = sibling_of(walk);
    rekey.joiner_view.push_back(
        BlindedUpdate{sibling->id, walk->id, blind(sibling->secret)});
    walk = walk->parent;
  }
  return rekey;
}

OftRekey OftTree::leave(UserId user) {
  auto it = leaves_.find(user);
  if (it == leaves_.end()) throw ProtocolError("OFT: user not in group");
  Node* leaf = it->second;
  leaves_.erase(it);

  OftRekey rekey;
  if (leaf->parent == nullptr) {
    root_.reset();  // last member
    return rekey;
  }

  // Splice: the sibling subtree takes the parent's position.
  Node* parent = leaf->parent;
  Node* grandparent = parent->parent;
  std::unique_ptr<Node> promoted = parent->left.get() == leaf
                                       ? std::move(parent->right)
                                       : std::move(parent->left);
  Node* promoted_raw = promoted.get();
  std::unique_ptr<Node>& slot =
      grandparent == nullptr
          ? root_
          : (grandparent->left.get() == parent ? grandparent->left
                                               : grandparent->right);
  promoted->parent = grandparent;
  slot = std::move(promoted);  // destroys the old parent and the leaf

  for (Node* node = grandparent; node != nullptr; node = node->parent) {
    node->size = node->left->size + node->right->size;
  }

  // Fresh entropy: without it the leaver (who knows the blinded keys along
  // its old path) could recompute the post-leave group key. Re-randomize
  // one leaf of the promoted subtree; the leaver does not know that leaf's
  // secret, so every recomputed ancestor is out of its reach.
  Node* refreshed = leftmost_leaf(promoted_raw);
  refreshed->secret = rng_.bytes(kSecretSize);
  rekey.new_leaf_secrets.emplace_back(*refreshed->user, refreshed->secret);
  recompute_upward(refreshed, &rekey);
  return rekey;
}

std::size_t OftTree::height() const {
  if (!root_) return 0;
  std::size_t max_depth = 0;
  std::vector<std::pair<const Node*, std::size_t>> stack{{root_.get(), 0}};
  while (!stack.empty()) {
    const auto [node, depth] = stack.back();
    stack.pop_back();
    if (node->is_leaf()) {
      max_depth = std::max(max_depth, depth);
    } else {
      stack.emplace_back(node->left.get(), depth + 1);
      stack.emplace_back(node->right.get(), depth + 1);
    }
  }
  return max_depth;
}

Bytes OftTree::group_key() const {
  if (!root_) throw ProtocolError("OFT: empty group has no key");
  return root_->secret;
}

OftTree::MemberView OftTree::view_of(UserId user) const {
  auto it = leaves_.find(user);
  if (it == leaves_.end()) throw ProtocolError("OFT: user not in group");
  MemberView view;
  view.leaf_secret = it->second->secret;
  for (Node* node = it->second; node->parent != nullptr;
       node = node->parent) {
    view.on_left.push_back(node->parent->left.get() == node);
    view.sibling_blinded.push_back(blind(
        (node->parent->left.get() == node ? node->parent->right
                                          : node->parent->left)
            ->secret));
  }
  return view;
}

void OftTree::check_invariants() const {
  if (!root_) {
    if (!leaves_.empty()) throw Error("OFT: leaves index out of sync");
    return;
  }
  std::size_t seen_leaves = 0;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->is_leaf()) {
      ++seen_leaves;
      if (node->size != 1) throw Error("OFT: leaf size != 1");
      auto it = leaves_.find(*node->user);
      if (it == leaves_.end() || it->second != node) {
        throw Error("OFT: leaf not indexed");
      }
    } else {
      if (!node->left || !node->right) {
        throw Error("OFT: internal node must have two children");
      }
      if (node->left->parent != node || node->right->parent != node) {
        throw Error("OFT: parent link broken");
      }
      if (node->size != node->left->size + node->right->size) {
        throw Error("OFT: size mismatch");
      }
      if (node->secret != mix(blind(node->left->secret),
                              blind(node->right->secret))) {
        throw Error("OFT: functional key relation violated");
      }
      stack.push_back(node->left.get());
      stack.push_back(node->right.get());
    }
  }
  if (seen_leaves != leaves_.size()) throw Error("OFT: leaf count mismatch");
}

}  // namespace keygraphs::oft

// One-way Function Trees (OFT) — the contemporaneous alternative to the
// paper's key trees, from the Wallner/Harder/Agee [20] / McGrew-Sherman
// line of work that the paper's footnote 4 acknowledges.
//
// Where the paper's server *generates* every subgroup key and ships it
// encrypted, OFT *derives* internal keys functionally:
//
//     k_parent = mix( blind(k_left), blind(k_right) )
//
// with blind() and mix() one-way (here: SHA-256 with domain separation).
// A member holds its own leaf secret plus the blinded keys of the siblings
// along its path, from which it computes every ancestor key including the
// group key. A membership change therefore needs to ship only ONE blinded
// key per tree level (encrypted for the sibling subtree), where the
// paper's binary key tree ships two encrypted keys per level — OFT halves
// the rekey broadcast, at the cost of binary-only trees and more client
// computation. The ablation bench quantifies exactly that trade against
// the paper's key tree.
//
// This module is deliberately self-contained (its own message structs, no
// wire codec): it exists for the algorithmic comparison, not as a second
// production path.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "crypto/random.h"
#include "keygraph/key.h"

namespace keygraphs::oft {

/// blind(k) — the one-way function applied before a key leaves a subtree.
Bytes blind(BytesView secret);

/// mix(bl, br) — parent key from the children's blinded keys.
Bytes mix(BytesView blinded_left, BytesView blinded_right);

/// One encrypted item of an OFT rekey broadcast: the new blinded key of
/// node `node`, for the members of the sibling subtree (who hold the key
/// of node `wrap_node` and can decrypt anything sealed under it).
/// Encryption is modeled: carrying the plaintext plus the wrapping key's
/// id keeps the comparison focused on counts and bytes (the real sealing
/// path is exercised by the main library).
struct BlindedUpdate {
  KeyId node = 0;       // whose blinded key this is
  KeyId wrap_node = 0;  // subtree entitled to read it
  Bytes blinded_key;
};

/// Everything the server emits for one membership change.
struct OftRekey {
  /// Broadcast: one blinded update per affected level.
  std::vector<BlindedUpdate> broadcast;
  /// Unicasts: (user, fresh leaf secret) — the joiner, plus on a leave the
  /// one member whose leaf is re-randomized to inject fresh entropy.
  std::vector<std::pair<UserId, Bytes>> new_leaf_secrets;
  /// For a joiner: the blinded sibling keys of its path (its initial view)
  /// and the path node ids, root-last.
  std::vector<BlindedUpdate> joiner_view;
  /// Encryption count (one per broadcast item + one per unicast), the same
  /// cost unit as the key-tree strategies.
  [[nodiscard]] std::size_t encryptions() const {
    return broadcast.size() + new_leaf_secrets.size();
  }
  /// Approximate broadcast payload: one blinded key + labels per item.
  [[nodiscard]] std::size_t broadcast_bytes() const {
    std::size_t bytes = 0;
    for (const BlindedUpdate& update : broadcast) {
      bytes += 16 + update.blinded_key.size();
    }
    return bytes;
  }
};

/// The server-side OFT (binary by construction).
class OftTree {
 public:
  explicit OftTree(crypto::SecureRandom& rng);

  /// Adds a member; returns the rekey traffic. Throws on duplicates.
  OftRekey join(UserId user);

  /// Removes a member; re-randomizes one leaf of the sibling subtree and
  /// returns the rekey traffic. Throws for non-members.
  OftRekey leave(UserId user);

  [[nodiscard]] std::size_t member_count() const { return leaves_.size(); }
  [[nodiscard]] std::size_t height() const;

  /// The functionally derived group key (root).
  [[nodiscard]] Bytes group_key() const;

  /// A member's view: leaf secret + path sibling blinded keys, for tests
  /// that reconstruct the group key independently.
  struct MemberView {
    Bytes leaf_secret;
    std::vector<Bytes> sibling_blinded;  // leaf level first
    std::vector<bool> on_left;  // whether the member's side is the left
                                // child at each level (mix is ordered)
  };
  [[nodiscard]] MemberView view_of(UserId user) const;

  /// Recomputes every internal key from the leaves and checks consistency.
  void check_invariants() const;

 private:
  struct Node {
    KeyId id = 0;
    Bytes secret;                  // leaf: random; internal: mix(...)
    Node* parent = nullptr;
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
    std::optional<UserId> user;
    std::size_t size = 0;  // member count below

    [[nodiscard]] bool is_leaf() const { return user.has_value(); }
  };

  Node* sibling_of(Node* node) const;
  void recompute_upward(Node* from, OftRekey* rekey);
  Node* find_attach_leaf(Node* node);
  [[nodiscard]] Node* leftmost_leaf(Node* node) const;

  crypto::SecureRandom& rng_;
  std::unique_ptr<Node> root_;
  std::map<UserId, Node*> leaves_;
  KeyId next_id_ = 1;
};

/// Client-side reconstruction used by the tests: computes the group key
/// from a member's view (leaf secret + sibling blinded keys, leaf first).
Bytes compute_group_key(const OftTree::MemberView& view);

}  // namespace keygraphs::oft

// Star key graphs (paper Section 2.2, protocols in Figures 2 and 4).
//
// A star is the degenerate key graph where every user holds exactly two
// keys: its individual key and the group key. It is the paper's baseline —
// the "conventional rekeying" whose leave cost is O(n) — and structurally a
// key tree of unbounded degree: all individual keys attach directly to the
// root. We implement it exactly that way, so the rekeying strategies and
// protocols apply unchanged and the O(n) leave cost emerges naturally.
#pragma once

#include <limits>

#include "keygraph/key_tree.h"

namespace keygraphs {

/// A star secure group: KeyTree with effectively unlimited root arity.
/// join() changes only the group key (2 encryptions); leave() re-encrypts
/// the new group key once per remaining member (n-1 encryptions).
class StarGraph : public KeyTree {
 public:
  StarGraph(std::size_t key_size, crypto::SecureRandom& rng)
      : KeyTree(std::numeric_limits<int>::max(), key_size, rng) {}

  /// Table 1, star column: total keys is n individual keys + 1 group key.
  [[nodiscard]] std::size_t expected_total_keys() const {
    return user_count() + 1;
  }
};

}  // namespace keygraphs

#include "keygraph/complete_graph.h"

#include <algorithm>
#include <bit>

#include "common/error.h"

namespace keygraphs {

CompleteGraph::CompleteGraph(crypto::CipherAlgorithm cipher,
                             crypto::SecureRandom& rng)
    : cipher_(cipher), rng_(rng), key_size_(crypto::cipher_key_size(cipher)) {}

CompleteGraph::SubsetMask CompleteGraph::mask_of(UserId user) const {
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] == user) return SubsetMask{1} << i;
  }
  throw ProtocolError("CompleteGraph: user not in group");
}

void CompleteGraph::encrypt_key_under(const Bytes& payload,
                                      const Bytes& wrapping_key,
                                      std::size_t* counter) {
  // Real encryption so the bench's "measured" column reflects cipher work.
  const crypto::CbcCipher cbc(crypto::make_cipher(cipher_, wrapping_key));
  (void)cbc.encrypt(payload, rng_);
  ++*counter;
}

CompleteOpCost CompleteGraph::join(UserId user) {
  if (user == 0) throw ProtocolError("CompleteGraph: user id 0 is reserved");
  if (std::find(members_.begin(), members_.end(), user) != members_.end()) {
    throw ProtocolError("CompleteGraph: user already in group");
  }
  if (members_.size() >= kMaxUsers) {
    throw ProtocolError("CompleteGraph: user slots exhausted (by design)");
  }
  const std::size_t existing = user_count();
  members_.push_back(user);
  const SubsetMask new_bit = SubsetMask{1} << (members_.size() - 1);

  CompleteOpCost cost;

  // Individual key for the new user (from the authentication exchange; not
  // counted, matching the paper's accounting).
  keys_[new_bit] = SymmetricKey{next_id_++, 1, rng_.bytes(key_size_)};

  // One fresh key per subset S ∪ {u} for every existing nonempty subset S,
  // encrypted under the (unchanged) key of S: members of S learn it, the
  // joining user cannot learn any key of a subset excluding it, and all
  // keys of subsets including it are new — backward secrecy holds without
  // touching any existing key.
  std::vector<std::pair<SubsetMask, SymmetricKey>> fresh;
  for (const auto& [mask, key] : keys_) {
    if (mask & new_bit) continue;  // skip the individual key just made
    SymmetricKey created{next_id_++, 1, rng_.bytes(key_size_)};
    encrypt_key_under(created.secret, key.secret, &cost.server_encryptions);
    fresh.emplace_back(mask | new_bit, std::move(created));
  }
  for (auto& [mask, key] : fresh) keys_[mask] = std::move(key);

  // Unicast to the joining user: every key of a subset containing it,
  // wrapped with its individual key (2^existing - 1 keys).
  const Bytes& individual = keys_[new_bit].secret;
  for (const auto& [mask, key] : keys_) {
    if ((mask & new_bit) && mask != new_bit) {
      encrypt_key_under(key.secret, individual, &cost.server_encryptions);
      ++cost.requesting_user_decryptions;
    }
  }

  // Each existing member decrypts one new key per subset it shares with the
  // joining user: 2^(existing-1) of them.
  if (existing > 0) {
    std::size_t total = 0;
    for (const auto& [mask, key] : fresh) {
      total += static_cast<std::size_t>(std::popcount(mask)) - 1;
    }
    cost.non_requesting_user_decryptions =
        static_cast<double>(total) / static_cast<double>(existing);
  }
  return cost;
}

CompleteOpCost CompleteGraph::leave(UserId user) {
  const SubsetMask bit = mask_of(user);
  // Forward secrecy is structural: discard every key of a subset containing
  // the leaver; the survivors already share keys for all remaining subsets.
  std::erase_if(keys_, [bit](const auto& entry) {
    return (entry.first & bit) != 0;
  });
  // Retire the slot (masks of surviving keys stay valid).
  *std::find(members_.begin(), members_.end(), user) = 0;
  return CompleteOpCost{};  // all zeros: the paper's Table 2 leave column
}

namespace {
std::size_t count_alive(const std::vector<UserId>& members) {
  return static_cast<std::size_t>(
      std::count_if(members.begin(), members.end(),
                    [](UserId u) { return u != 0; }));
}
}  // namespace

std::vector<SymmetricKey> CompleteGraph::keyset(UserId user) const {
  const SubsetMask bit = mask_of(user);
  std::vector<SymmetricKey> out;
  for (const auto& [mask, key] : keys_) {
    if (mask & bit) out.push_back(key);
  }
  return out;
}

SymmetricKey CompleteGraph::group_key() const {
  SubsetMask all = 0;
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (members_[i] != 0) all |= SubsetMask{1} << i;
  }
  auto it = keys_.find(all);
  if (it == keys_.end()) {
    throw ProtocolError("CompleteGraph: empty group has no group key");
  }
  return it->second;
}

bool CompleteGraph::member_holds(UserId user, const Bytes& secret) const {
  for (const SymmetricKey& key : keyset(user)) {
    if (key.secret == secret) return true;
  }
  return false;
}

std::size_t CompleteGraph::user_count() const {
  return count_alive(members_);
}

}  // namespace keygraphs

#include "keygraph/key_graph.h"

#include <algorithm>

#include "common/error.h"

namespace keygraphs {

void KeyGraph::add_user(UserId user) {
  if (!user_edges_.emplace(user, std::set<KeyId>{}).second) {
    throw ProtocolError("KeyGraph: duplicate user");
  }
}

void KeyGraph::add_key(KeyId key) {
  if (!key_edges_.emplace(key, std::set<KeyId>{}).second) {
    throw ProtocolError("KeyGraph: duplicate key");
  }
}

void KeyGraph::add_user_edge(UserId user, KeyId key) {
  auto it = user_edges_.find(user);
  if (it == user_edges_.end()) throw ProtocolError("KeyGraph: no such user");
  if (!key_edges_.contains(key)) throw ProtocolError("KeyGraph: no such key");
  it->second.insert(key);
}

bool KeyGraph::reaches(KeyId from, KeyId to) const {
  std::vector<KeyId> stack{from};
  std::set<KeyId> seen;
  while (!stack.empty()) {
    const KeyId current = stack.back();
    stack.pop_back();
    if (current == to) return true;
    if (!seen.insert(current).second) continue;
    for (KeyId next : key_edges_.at(current)) stack.push_back(next);
  }
  return false;
}

void KeyGraph::add_key_edge(KeyId from, KeyId to) {
  if (!key_edges_.contains(from) || !key_edges_.contains(to)) {
    throw ProtocolError("KeyGraph: no such key");
  }
  if (from == to || reaches(to, from)) {
    throw ProtocolError("KeyGraph: edge would create a cycle");
  }
  key_edges_.at(from).insert(to);
}

bool KeyGraph::has_user(UserId user) const {
  return user_edges_.contains(user);
}

bool KeyGraph::has_key(KeyId key) const { return key_edges_.contains(key); }

std::set<KeyId> KeyGraph::keyset(UserId user) const {
  auto it = user_edges_.find(user);
  if (it == user_edges_.end()) throw ProtocolError("KeyGraph: no such user");
  std::set<KeyId> out;
  std::vector<KeyId> stack(it->second.begin(), it->second.end());
  while (!stack.empty()) {
    const KeyId current = stack.back();
    stack.pop_back();
    if (!out.insert(current).second) continue;
    for (KeyId next : key_edges_.at(current)) stack.push_back(next);
  }
  return out;
}

std::set<UserId> KeyGraph::userset(KeyId key) const {
  if (!key_edges_.contains(key)) throw ProtocolError("KeyGraph: no such key");
  std::set<UserId> out;
  for (const auto& [user, direct] : user_edges_) {
    // u holds k iff k is in u's reachability closure.
    if (keyset(user).contains(key)) out.insert(user);
  }
  return out;
}

std::set<UserId> KeyGraph::userset(const std::set<KeyId>& keys) const {
  std::set<UserId> out;
  for (const auto& [user, direct] : user_edges_) {
    const std::set<KeyId> held = keyset(user);
    if (std::any_of(keys.begin(), keys.end(),
                    [&held](KeyId k) { return held.contains(k); })) {
      out.insert(user);
    }
  }
  return out;
}

std::vector<KeyId> KeyGraph::roots() const {
  std::vector<KeyId> out;
  for (const auto& [key, parents] : key_edges_) {
    if (parents.empty()) out.push_back(key);
  }
  return out;
}

std::vector<KeyId> KeyGraph::keys() const {
  std::vector<KeyId> out;
  out.reserve(key_edges_.size());
  for (const auto& [key, parents] : key_edges_) out.push_back(key);
  return out;
}

void KeyGraph::validate() const {
  for (const auto& [user, direct] : user_edges_) {
    if (direct.empty()) {
      throw Error("KeyGraph: u-node without outgoing edge");
    }
  }
  for (const auto& [key, parents] : key_edges_) {
    if (userset(key).empty()) {
      throw Error("KeyGraph: k-node held by no user");
    }
  }
}

}  // namespace keygraphs

// Consistent user -> shard routing for the sharded key tree.
//
// The multi-group module (multi_group.h) already namespaces k-node ids per
// tree with a 2^32 stride; the sharded single-group server promotes the
// same idiom: shard i's KeyTree mints internal k-node ids starting at
// i * 2^32 + 1, so ids stay unique across the whole group and multicast
// subscriptions (keyed by KeyId) never cross shards. Individual key ids
// (top bit set, keygraph/key.h) and the shared group key id below live in
// their own reserved ranges.
//
// Routing is a pure hash of the user id: stateless, identical on every
// replica, and stable for the server's lifetime (users never migrate
// between shards — a shard split is a group restart in this model).
#pragma once

#include <cstddef>
#include <cstdint>

#include "keygraph/key.h"

namespace keygraphs {

/// K-node id of the group key in a sharded tree (the thin root layer's only
/// key). Internal shard ids are counters below 2^62 for any realistic shard
/// count, and individual ids carry bit 63, so this id cannot collide.
inline constexpr KeyId kSharedGroupKeyId = KeyId{1} << 62;

/// Id-space stride between shard trees (matches MultiGroupGraph's
/// kGroupIdStride): shard i mints internal ids in [i * stride + 1, ...).
inline constexpr KeyId kShardIdStride = KeyId{1} << 32;

class ShardRouter {
 public:
  /// `shards` >= 1. One shard routes everything to shard 0 (the unsharded
  /// compatibility mode).
  explicit ShardRouter(std::size_t shards) : shards_(shards == 0 ? 1 : shards) {}

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_; }

  /// Consistent mapping: splitmix64-mixed user id modulo the shard count.
  /// The mix step keeps sequential user ids (the common test/benchmark
  /// assignment) spread evenly instead of striping by id arithmetic.
  [[nodiscard]] std::size_t shard_of(UserId user) const noexcept {
    if (shards_ == 1) return 0;
    std::uint64_t x = user + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x % shards_);
  }

  /// First internal k-node id for `shard`'s KeyTree (shard 0 keeps the
  /// unsharded server's id sequence, so K=1 is byte-identical to it).
  [[nodiscard]] static KeyId first_id(std::size_t shard) noexcept {
    return static_cast<KeyId>(shard) * kShardIdStride + 1;
  }

 private:
  std::size_t shards_;
};

}  // namespace keygraphs

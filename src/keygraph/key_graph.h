// General key graphs (paper Section 2.1).
//
// A key graph is a DAG with u-nodes (no incoming edges) and k-nodes; user u
// holds key k iff a directed path leads from u's node to k's node. This
// module implements the general structure with the paper's userset()/
// keyset() functions. Trees and stars are what the group server uses
// operationally (KeyTree), but the general form is needed for the paper's
// closing direction — merging the key trees of multiple groups over one
// user population — and for studying the key-covering problem.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "keygraph/key.h"

namespace keygraphs {

/// Mutable DAG of u-nodes and k-nodes with reachability queries.
/// Edges point from holders toward keys: u -> k ("u holds k directly") and
/// k1 -> k2 ("holders of k1 also hold k2"), matching the paper's Figure 1.
class KeyGraph {
 public:
  /// Adds a user node. Throws ProtocolError on duplicates.
  void add_user(UserId user);

  /// Adds a key node. Throws ProtocolError on duplicates.
  void add_key(KeyId key);

  /// Edge u -> k. Both endpoints must exist.
  void add_user_edge(UserId user, KeyId key);

  /// Edge k_from -> k_to. Must not create a cycle (checked; throws).
  void add_key_edge(KeyId from, KeyId to);

  [[nodiscard]] bool has_user(UserId user) const;
  [[nodiscard]] bool has_key(KeyId key) const;
  [[nodiscard]] std::size_t user_count() const { return user_edges_.size(); }
  [[nodiscard]] std::size_t key_count() const { return key_edges_.size(); }

  /// userset(k): all users with a path to k (paper Section 2.1).
  [[nodiscard]] std::set<UserId> userset(KeyId key) const;

  /// keyset(u): all keys reachable from u.
  [[nodiscard]] std::set<KeyId> keyset(UserId user) const;

  /// Generalized userset over a set of keys: union of usersets.
  [[nodiscard]] std::set<UserId> userset(const std::set<KeyId>& keys) const;

  /// Keys with no outgoing edges (the paper's roots; a key graph may have
  /// several — one per merged group).
  [[nodiscard]] std::vector<KeyId> roots() const;

  /// All key ids, ascending.
  [[nodiscard]] std::vector<KeyId> keys() const;

  /// Structural validity per Section 2.1: every u-node has at least one
  /// outgoing edge, every k-node at least one incoming edge (checked over
  /// the reachability closure). Throws Error on violation.
  void validate() const;

 private:
  [[nodiscard]] bool reaches(KeyId from, KeyId to) const;

  std::map<UserId, std::set<KeyId>> user_edges_;
  std::map<KeyId, std::set<KeyId>> key_edges_;  // key -> parent keys
};

}  // namespace keygraphs

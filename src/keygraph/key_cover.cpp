#include "keygraph/key_cover.h"

#include <algorithm>
#include <bit>

#include "common/error.h"

namespace keygraphs {

namespace {

/// Candidate keys: those whose userset is nonempty and within the target.
std::vector<std::pair<KeyId, std::set<UserId>>> candidates(
    const KeyGraph& graph, const std::set<UserId>& target) {
  std::vector<std::pair<KeyId, std::set<UserId>>> out;
  for (KeyId key : graph.keys()) {
    std::set<UserId> users = graph.userset(key);
    if (users.empty()) continue;
    if (std::includes(target.begin(), target.end(), users.begin(),
                      users.end())) {
      out.emplace_back(key, std::move(users));
    }
  }
  return out;
}

}  // namespace

KeyCover greedy_key_cover(const KeyGraph& graph,
                          const std::set<UserId>& target) {
  auto pool = candidates(graph, target);
  std::set<UserId> uncovered = target;
  KeyCover cover;
  while (!uncovered.empty()) {
    std::size_t best_gain = 0;
    std::size_t best_index = pool.size();
    for (std::size_t i = 0; i < pool.size(); ++i) {
      const std::size_t gain = static_cast<std::size_t>(std::count_if(
          pool[i].second.begin(), pool[i].second.end(),
          [&uncovered](UserId u) { return uncovered.contains(u); }));
      if (gain > best_gain) {
        best_gain = gain;
        best_index = i;
      }
    }
    if (best_index == pool.size()) {
      cover.covered = false;  // someone in the target holds no usable key
      return cover;
    }
    for (UserId u : pool[best_index].second) uncovered.erase(u);
    cover.keys.push_back(pool[best_index].first);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(best_index));
  }
  cover.covered = true;
  return cover;
}

std::optional<std::vector<KeyId>> exact_key_cover(
    const KeyGraph& graph, const std::set<UserId>& target) {
  const auto pool = candidates(graph, target);
  if (pool.size() > 24) {
    throw Error("exact_key_cover: too many candidate keys");
  }
  std::optional<std::vector<KeyId>> best;
  const std::uint32_t limit = std::uint32_t{1} << pool.size();
  for (std::uint32_t subset = 1; subset < limit; ++subset) {
    if (best &&
        static_cast<std::size_t>(std::popcount(subset)) >= best->size()) {
      continue;
    }
    std::set<UserId> covered;
    for (std::size_t i = 0; i < pool.size(); ++i) {
      if (subset & (std::uint32_t{1} << i)) {
        covered.insert(pool[i].second.begin(), pool[i].second.end());
      }
    }
    if (covered == target) {
      std::vector<KeyId> keys;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (subset & (std::uint32_t{1} << i)) keys.push_back(pool[i].first);
      }
      best = std::move(keys);
    }
  }
  return best;
}

KeyCover greedy_key_cover(const TreeView& view,
                          const std::set<UserId>& target) {
  return greedy_key_cover(view.to_key_graph(), target);
}

std::optional<std::vector<KeyId>> exact_key_cover(
    const TreeView& view, const std::set<UserId>& target) {
  return exact_key_cover(view.to_key_graph(), target);
}

}  // namespace keygraphs

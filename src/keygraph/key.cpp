#include "keygraph/key.h"

namespace keygraphs {

std::string to_string(const KeyRef& ref) {
  return "k" + std::to_string(ref.id) + "v" + std::to_string(ref.version);
}

}  // namespace keygraphs

// The sharded key tree: K independent subtree shards behind one router.
//
// Partitions the user population across K arena-backed KeyTrees (paper
// Sec. 7's scaling direction, via the hierarchical-partitioning argument of
// the Iolus line of work): a membership operation touches exactly one
// shard's tree, so K writers can mutate concurrently — each shard publishes
// its own TreeView epoch stream and draws key material from its own
// deterministic rng. The thin root layer that joins the shards into one
// group key hierarchy lives in server/sharded_server.h; this class is pure
// keygraph state: routing, per-shard trees, per-shard rngs, aggregates.
//
// Seeding: shard 0 consumes the caller's seed exactly like an unsharded
// KeyTree would (so a K=1 sharded server replays the unsharded rng stream
// byte for byte); shard i > 0 and derived consumers use seed-mixed streams.
// A zero seed leaves every shard on OS entropy.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "crypto/random.h"
#include "keygraph/key_tree.h"
#include "keygraph/shard_router.h"

namespace keygraphs {

/// Mixes a derived deterministic seed for shard lane `lane` (0 stays the
/// caller's seed; the root layer uses a reserved lane). Zero in, zero out:
/// an OS-entropy configuration stays OS-entropy in every lane.
[[nodiscard]] constexpr std::uint64_t shard_seed(std::uint64_t seed,
                                                 std::uint64_t lane) {
  if (seed == 0) return 0;
  if (lane == 0) return seed;
  return seed * 1000003ull + lane;
}

class ShardedKeyTree {
 public:
  /// `shards` >= 1; shard 0 with `seed` reproduces an unsharded
  /// KeyTree(degree, key_size, SecureRandom(seed)) exactly.
  ShardedKeyTree(int degree, std::size_t key_size, std::size_t shards,
                 std::uint64_t seed);

  ShardedKeyTree(const ShardedKeyTree&) = delete;
  ShardedKeyTree& operator=(const ShardedKeyTree&) = delete;

  [[nodiscard]] const ShardRouter& router() const noexcept { return router_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t shard_of(UserId user) const noexcept {
    return router_.shard_of(user);
  }

  [[nodiscard]] KeyTree& shard(std::size_t index) { return *shards_[index]; }
  [[nodiscard]] const KeyTree& shard(std::size_t index) const {
    return *shards_[index];
  }
  /// The shard tree that owns (or would own) `user`.
  [[nodiscard]] KeyTree& shard_for(UserId user) {
    return *shards_[router_.shard_of(user)];
  }

  /// Shard `index`'s key-material rng — the lane planner draws IVs from the
  /// same stream, keeping each lane's randomness self-contained.
  [[nodiscard]] crypto::SecureRandom& rng(std::size_t index) {
    return *rngs_[index];
  }

  // --- Aggregates across all shards (reads on current views) ------------

  [[nodiscard]] std::size_t user_count() const;
  /// Total k-nodes across shard trees (excludes the shared group key the
  /// root layer may hold above them).
  [[nodiscard]] std::size_t key_count() const;
  [[nodiscard]] bool has_user(UserId user) const {
    return shards_[router_.shard_of(user)]->has_user(user);
  }
  /// Full user list, ascending ids (merged across shards).
  [[nodiscard]] std::vector<UserId> users() const;

 private:
  ShardRouter router_;
  std::vector<std::unique_ptr<crypto::SecureRandom>> rngs_;
  std::vector<std::unique_ptr<KeyTree>> shards_;
};

}  // namespace keygraphs

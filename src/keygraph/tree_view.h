// Immutable per-epoch snapshots of the key tree (the RCU read path).
//
// A TreeView is a compact, read-only image of one KeyTree epoch: every
// k-node in preorder, all key material pooled in one contiguous buffer,
// plus index tables for by-id and by-user lookup. The writer rebuilds and
// publishes a fresh view (shared_ptr swap) at the end of every mutation;
// readers acquire() the current view and run entirely outside the group
// lock — a reader's view never changes underneath it, and the key material
// it references stays alive (and is wiped) with the view's last reference.
//
// Layout notes:
//   - nodes_ is stored in the exact preorder KeyTree::serialize() has
//     always emitted, so serialize() is a linear scan and the bytes are
//     identical to the historical pointer-tree encoding;
//   - preorder makes every subtree a contiguous range [i, subtree_end):
//     users_under() is a range scan, not a pointer chase;
//   - secrets live at [index * key_size, ...) in one pooled buffer that is
//     securely wiped on destruction;
//   - internal k-node ids are dense counter values, so the id table is a
//     flat vector indexed by id; leaf ids are individual_key_id(user) and
//     resolve through the sorted by-user table instead.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "keygraph/key.h"
#include "keygraph/key_graph.h"

namespace keygraphs {

class KeyTree;

namespace detail {
/// Key-tree snapshot wire constants, shared by TreeView::serialize() and
/// KeyTree::deserialize().
inline constexpr std::uint8_t kTreeMagic = 0x4b;  // 'K'
inline constexpr std::uint8_t kTreeVersion = 1;
}  // namespace detail

class TreeView {
 public:
  /// Sentinel for "no node" in every index field.
  static constexpr std::uint32_t kNilIndex = 0xffffffffu;

  /// One k-node of the snapshot. Secrets live in the pooled buffer, not
  /// here, keeping the node array tightly packed for traversal.
  struct Node {
    KeyId id = 0;
    KeyVersion version = 0;
    std::uint32_t parent = kNilIndex;
    std::uint32_t first_child = 0;  // offset into the children table
    std::uint32_t child_count = 0;
    std::uint32_t subtree_end = 0;  // one past the last preorder descendant
    std::uint64_t user_count = 0;
    UserId user = 0;  // meaningful iff leaf
    bool leaf = false;
  };

  ~TreeView();
  TreeView(const TreeView&) = delete;
  TreeView& operator=(const TreeView&) = delete;

  // --- Whole-tree facts --------------------------------------------------
  [[nodiscard]] std::size_t key_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t user_count() const noexcept {
    return by_user_.size();
  }
  [[nodiscard]] std::size_t height() const noexcept { return height_; }
  [[nodiscard]] int degree() const noexcept { return degree_; }
  [[nodiscard]] std::size_t key_size() const noexcept { return key_size_; }
  [[nodiscard]] KeyId root_id() const noexcept { return nodes_.front().id; }
  /// The epoch label this view was published under. For a server-owned
  /// tree this is the group epoch; for a standalone KeyTree it is the
  /// mutation count.
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  // --- Read API (mirrors KeyTree) ----------------------------------------
  [[nodiscard]] bool has_user(UserId user) const;
  [[nodiscard]] SymmetricKey group_key() const;
  /// userset(k), ascending. Throws ProtocolError for an unknown k-node.
  [[nodiscard]] std::vector<UserId> users_under(KeyId node) const;
  /// keyset(u), leaf to root. Throws ProtocolError for a non-member.
  [[nodiscard]] std::vector<SymmetricKey> keyset(UserId user) const;
  /// True when `key` is on u's path (u holds that k-node); false for
  /// non-members. O(height), no key material touched — the retransmit
  /// window's recipient test.
  [[nodiscard]] bool user_holds(UserId user, KeyId key) const;
  /// All users, ascending.
  [[nodiscard]] std::vector<UserId> users() const;
  /// Byte-identical to the historical KeyTree::serialize() encoding.
  [[nodiscard]] Bytes serialize() const;

  /// userset(include) - userset(exclude). Unknown k-nodes degrade the way
  /// the dispatch path always has: unknown include -> empty, unknown
  /// exclude -> no exclusion (the node vanished in the same operation).
  [[nodiscard]] std::vector<UserId> resolve_subgroup(
      KeyId include, std::optional<KeyId> exclude) const;

  /// The secret of one exact key generation, or an empty (null-data) view
  /// when this snapshot does not hold (id, version). Used by
  /// rekey::KeySnapshot to resolve current-generation keys without copying.
  [[nodiscard]] BytesView find_secret(const KeyRef& ref) const;

  /// Direct node access for traversal-heavy callers (benches, exporters).
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
    return nodes_;
  }
  [[nodiscard]] BytesView secret_of(std::uint32_t index) const {
    return BytesView{secrets_.data() + index * key_size_, key_size_};
  }

  /// Exports this snapshot as a general key graph (Section 2.1 form) for
  /// the key-covering machinery: one u-node per user, one k-node per
  /// k-node, edges leaf-parent upward.
  [[nodiscard]] KeyGraph to_key_graph() const;

 private:
  friend class KeyTree;
  TreeView() = default;

  /// View index of the k-node `id`, or kNilIndex.
  [[nodiscard]] std::uint32_t find(KeyId id) const;
  /// View index of the user's leaf, or kNilIndex.
  [[nodiscard]] std::uint32_t find_leaf(UserId user) const;
  /// Leaves of the preorder range [node, subtree_end), ascending user ids.
  [[nodiscard]] std::vector<UserId> users_in_range(std::uint32_t index) const;

  std::vector<Node> nodes_;                // preorder; root at index 0
  std::vector<std::uint32_t> children_;    // flattened child index lists
  Bytes secrets_;                          // node i at [i*key_size, ...)
  std::vector<std::uint32_t> by_internal_id_;  // id -> index, dense
  /// Sorted (id, index) fallback used instead of the dense table when the
  /// live internal ids are sparse relative to the node count (ids are
  /// allocation-counter values and are never reused, so a long-churned
  /// tree's id range can dwarf its size).
  std::vector<std::pair<KeyId, std::uint32_t>> by_internal_sparse_;
  std::vector<std::pair<UserId, std::uint32_t>> by_user_;  // ascending
  int degree_ = 0;
  std::size_t key_size_ = 0;
  KeyId next_id_ = 0;  // serialized alongside the structure
  std::uint64_t epoch_ = 0;
  std::size_t height_ = 0;
};

using TreeViewPtr = std::shared_ptr<const TreeView>;

}  // namespace keygraphs

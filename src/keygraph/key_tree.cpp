#include "keygraph/key_tree.h"

#include <algorithm>
#include <set>

#include "common/error.h"
#include "common/io.h"
#include "telemetry/stage.h"

namespace keygraphs {

KeyTree::KeyTree(int degree, std::size_t key_size, crypto::SecureRandom& rng)
    : degree_(degree), key_size_(key_size), rng_(rng) {
  if (degree < 2) throw ProtocolError("KeyTree: degree must be >= 2");
  if (key_size == 0) throw ProtocolError("KeyTree: key size must be > 0");
  Node* root = make_node();
  refresh_key(root);
  root_ = root->id;
}

KeyTree::Node* KeyTree::make_node(std::optional<KeyId> fixed_id) {
  auto owned = std::make_unique<Node>();
  owned->id = fixed_id.value_or(next_id_++);
  Node* node = owned.get();
  nodes_.emplace(node->id, std::move(owned));
  return node;
}

void KeyTree::destroy_node(Node* node) { nodes_.erase(node->id); }

void KeyTree::refresh_key(Node* node) {
  // Attributes fresh key material to the keygen stage when an operation is
  // being collected (join/leave/batch); inert otherwise (e.g. restore).
  const telemetry::StageScope scope(telemetry::Stage::kKeygen);
  node->secret = rng_.bytes(key_size_);
  ++node->version;
  if (telemetry::enabled()) {
    static auto& generated =
        telemetry::Registry::global().counter("keygraph.keys_generated");
    generated.add(1);
  }
}

void KeyTree::bump_counts(Node* from, std::ptrdiff_t delta) {
  for (Node* n = from; n != nullptr; n = n->parent) {
    n->user_count = static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(n->user_count) + delta);
  }
}

KeyTree::Node* KeyTree::find_join_parent() {
  // Descend toward the lightest subtree; attach at the first node with
  // spare capacity. Returns an internal node with < degree children, or a
  // full node whose lightest child is a leaf (caller splits that leaf).
  Node* node = nodes_.at(root_).get();
  for (;;) {
    if (static_cast<int>(node->children.size()) < degree_) return node;
    Node* lightest = *std::min_element(
        node->children.begin(), node->children.end(),
        [](const Node* a, const Node* b) {
          return a->user_count < b->user_count;
        });
    if (lightest->is_leaf()) return node;  // full everywhere: split a leaf
    node = lightest;
  }
}

JoinRecord KeyTree::join(UserId user, Bytes individual_key) {
  if (user_leaves_.contains(user)) {
    throw ProtocolError("KeyTree: user already in group");
  }
  if (individual_key.size() != key_size_) {
    throw ProtocolError("KeyTree: individual key has wrong size");
  }

  Node* leaf = make_node(individual_key_id(user));
  leaf->user = user;
  leaf->secret = std::move(individual_key);
  leaf->version = 1;
  leaf->user_count = 1;
  user_leaves_.emplace(user, leaf);

  Node* target = find_join_parent();
  Node* attach_parent = target;
  std::optional<SymmetricKey> split_leaf_key;

  if (static_cast<int>(target->children.size()) >= degree_) {
    // Split the lightest (leaf) child: a fresh intermediate k-node takes its
    // place and adopts both the old leaf and the new user's leaf.
    Node* old_leaf = *std::min_element(
        target->children.begin(), target->children.end(),
        [](const Node* a, const Node* b) {
          return a->user_count < b->user_count;
        });
    split_leaf_key = old_leaf->key();
    Node* intermediate = make_node();
    *std::find(target->children.begin(), target->children.end(), old_leaf) =
        intermediate;
    intermediate->parent = target;
    intermediate->user_count = old_leaf->user_count;
    intermediate->children.push_back(old_leaf);
    old_leaf->parent = intermediate;
    attach_parent = intermediate;
  }

  attach_parent->children.push_back(leaf);
  leaf->parent = attach_parent;
  bump_counts(attach_parent, +1);

  // The pre-join key of every ancestor is what existing members hold; it
  // wraps the corresponding new key. Capture before refreshing.
  JoinRecord record;
  record.user = user;
  record.individual_key = leaf->key();

  std::vector<Node*> path;  // attach parent up to root
  for (Node* n = attach_parent; n != nullptr; n = n->parent) path.push_back(n);
  std::reverse(path.begin(), path.end());  // root first

  const bool had_members = user_count() > 1;
  for (Node* n : path) {
    PathChange change;
    change.node = n->id;
    if (split_leaf_key.has_value() && n == attach_parent) {
      // Brand-new intermediate: the only existing holder-to-be is the split
      // leaf's user, reachable through its individual key.
      change.old_key = split_leaf_key;
    } else if (had_members) {
      change.old_key = n->key();
    }
    refresh_key(n);
    change.new_key = n->key();
    record.path.push_back(std::move(change));
  }
  for (const Node* child : nodes_.at(root_)->children) {
    record.root_children.push_back(child->id);
  }
  return record;
}

LeaveRecord KeyTree::leave(UserId user) {
  auto it = user_leaves_.find(user);
  if (it == user_leaves_.end()) {
    throw ProtocolError("KeyTree: user not in group");
  }
  Node* leaf = it->second;
  Node* parent = leaf->parent;
  user_leaves_.erase(it);

  LeaveRecord record;
  record.user = user;
  record.removed_nodes.push_back(leaf->id);

  std::erase(parent->children, leaf);
  bump_counts(parent, -1);
  destroy_node(leaf);

  // Splice out a non-root parent left with a single child: the child keeps
  // its own key and moves up one level, shrinking user keysets by one key.
  Node* rekey_start = parent;
  if (parent->parent != nullptr && parent->children.size() == 1) {
    Node* child = parent->children.front();
    Node* grandparent = parent->parent;
    *std::find(grandparent->children.begin(), grandparent->children.end(),
               parent) = child;
    child->parent = grandparent;
    record.removed_nodes.push_back(parent->id);
    destroy_node(parent);
    rekey_start = grandparent;
  }

  std::vector<Node*> path;  // rekey start up to root
  for (Node* n = rekey_start; n != nullptr; n = n->parent) path.push_back(n);
  std::reverse(path.begin(), path.end());  // root first

  for (Node* n : path) {
    refresh_key(n);
    PathChange change;
    change.node = n->id;
    change.new_key = n->key();  // old key is compromised; never recorded
    record.path.push_back(std::move(change));
  }
  // Snapshot children after all refreshes so on-path children already carry
  // their new keys (Figure 8's {K'_{i-1}}_{K'_i} chain).
  record.children.resize(path.size());
  for (std::size_t i = 0; i < path.size(); ++i) {
    const Node* next_on_path = i + 1 < path.size() ? path[i + 1] : nullptr;
    for (const Node* child : path[i]->children) {
      record.children[i].push_back(
          ChildKey{child->id, child->key(), child == next_on_path});
    }
  }
  return record;
}

BatchRecord KeyTree::batch_update(
    const std::vector<std::pair<UserId, Bytes>>& joins,
    const std::vector<UserId>& leaves) {
  // Validate everything before mutating anything.
  std::set<UserId> joining, leaving;
  for (const auto& [user, key] : joins) {
    if (user_leaves_.contains(user)) {
      throw ProtocolError("batch: joining user already in group");
    }
    if (!joining.insert(user).second) {
      throw ProtocolError("batch: duplicate join");
    }
    if (key.size() != key_size_) {
      throw ProtocolError("batch: individual key has wrong size");
    }
  }
  for (UserId user : leaves) {
    if (joining.contains(user)) {
      throw ProtocolError("batch: user both joins and leaves");
    }
    if (!user_leaves_.contains(user)) {
      throw ProtocolError("batch: leaving user not in group");
    }
    if (!leaving.insert(user).second) {
      throw ProtocolError("batch: duplicate leave");
    }
  }

  BatchRecord record;
  std::set<KeyId> changed;  // ordered for deterministic key generation

  // Leaves first: free the slots, mark every path to the root.
  for (UserId user : leaves) {
    Node* leaf = user_leaves_.at(user);
    Node* parent = leaf->parent;
    user_leaves_.erase(user);
    record.removed_nodes.push_back(leaf->id);
    record.left.push_back(user);
    std::erase(parent->children, leaf);
    bump_counts(parent, -1);
    destroy_node(leaf);

    Node* start = parent;
    if (parent->parent != nullptr && parent->children.size() == 1) {
      Node* child = parent->children.front();
      Node* grandparent = parent->parent;
      *std::find(grandparent->children.begin(), grandparent->children.end(),
                 parent) = child;
      child->parent = grandparent;
      record.removed_nodes.push_back(parent->id);
      changed.erase(parent->id);  // may have been marked by a prior leave
      destroy_node(parent);
      start = grandparent;
    }
    for (Node* n = start; n != nullptr; n = n->parent) changed.insert(n->id);
  }

  // Then joins: attach per the balance heuristic, mark the paths.
  for (const auto& [user, key] : joins) {
    Node* leaf = make_node(individual_key_id(user));
    leaf->user = user;
    leaf->secret = key;
    leaf->version = 1;
    leaf->user_count = 1;
    user_leaves_.emplace(user, leaf);

    Node* target = find_join_parent();
    Node* attach_parent = target;
    if (static_cast<int>(target->children.size()) >= degree_) {
      Node* old_leaf = *std::min_element(
          target->children.begin(), target->children.end(),
          [](const Node* a, const Node* b) {
            return a->user_count < b->user_count;
          });
      Node* intermediate = make_node();
      *std::find(target->children.begin(), target->children.end(),
                 old_leaf) = intermediate;
      intermediate->parent = target;
      intermediate->user_count = old_leaf->user_count;
      intermediate->children.push_back(old_leaf);
      old_leaf->parent = intermediate;
      attach_parent = intermediate;
    }
    attach_parent->children.push_back(leaf);
    leaf->parent = attach_parent;
    bump_counts(attach_parent, +1);
    for (Node* n = attach_parent; n != nullptr; n = n->parent) {
      changed.insert(n->id);
    }
    record.joined.push_back(user);
  }

  // Rekey every affected node exactly once — the whole point of batching.
  for (KeyId id : changed) refresh_key(nodes_.at(id).get());

  // Snapshot after all refreshes so wrapped-under-child keys are current.
  for (KeyId id : changed) {
    const Node* node = nodes_.at(id).get();
    BatchChange change;
    change.node = id;
    change.new_key = node->key();
    for (const Node* child : node->children) {
      change.children.push_back(
          ChildKey{child->id, child->key(), changed.contains(child->id)});
    }
    record.changes.push_back(std::move(change));
  }
  for (const auto& [user, key] : joins) {
    record.joiner_keysets.emplace_back(user, keyset(user));
  }
  return record;
}

std::size_t KeyTree::user_count() const noexcept {
  return user_leaves_.size();
}

bool KeyTree::has_user(UserId user) const {
  return user_leaves_.contains(user);
}

std::size_t KeyTree::key_count() const noexcept { return nodes_.size(); }

std::size_t KeyTree::height() const {
  // Longest root-to-leaf path in edges, iteratively.
  struct Frame {
    const Node* node;
    std::size_t depth;
  };
  std::size_t max_depth = 0;
  std::vector<Frame> stack{{nodes_.at(root_).get(), 0}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    max_depth = std::max(max_depth, frame.depth);
    for (const Node* child : frame.node->children) {
      stack.push_back({child, frame.depth + 1});
    }
  }
  return max_depth;
}

SymmetricKey KeyTree::group_key() const {
  const Node* root = nodes_.at(root_).get();
  return SymmetricKey{root->id, root->version, root->secret};
}

std::vector<UserId> KeyTree::users_under(KeyId node_id) const {
  auto it = nodes_.find(node_id);
  if (it == nodes_.end()) throw ProtocolError("KeyTree: no such k-node");
  std::vector<UserId> out;
  std::vector<const Node*> stack{it->second.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    if (node->is_leaf()) out.push_back(*node->user);
    for (const Node* child : node->children) stack.push_back(child);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<SymmetricKey> KeyTree::keyset(UserId user) const {
  auto it = user_leaves_.find(user);
  if (it == user_leaves_.end()) {
    throw ProtocolError("KeyTree: user not in group");
  }
  std::vector<SymmetricKey> out;
  for (const Node* n = it->second; n != nullptr; n = n->parent) {
    out.push_back(SymmetricKey{n->id, n->version, n->secret});
  }
  return out;
}

std::vector<UserId> KeyTree::users() const {
  std::vector<UserId> out;
  out.reserve(user_leaves_.size());
  for (const auto& [user, leaf] : user_leaves_) out.push_back(user);
  std::sort(out.begin(), out.end());
  return out;
}

namespace {
constexpr std::uint8_t kTreeMagic = 0x4b;  // 'K'
constexpr std::uint8_t kTreeVersion = 1;
}  // namespace

Bytes KeyTree::serialize() const {
  ByteWriter writer;
  writer.u8(kTreeMagic);
  writer.u8(kTreeVersion);
  writer.u32(static_cast<std::uint32_t>(degree_));
  writer.u64(key_size_);
  writer.u64(next_id_);
  // Pre-order DFS; children counts make the structure self-describing.
  std::vector<const Node*> stack{nodes_.at(root_).get()};
  writer.u64(nodes_.size());
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    writer.u64(node->id);
    writer.u32(node->version);
    writer.var_bytes(node->secret);
    writer.u8(node->is_leaf() ? 1 : 0);
    if (node->is_leaf()) writer.u64(*node->user);
    writer.u16(static_cast<std::uint16_t>(node->children.size()));
    for (auto it = node->children.rbegin(); it != node->children.rend();
         ++it) {
      stack.push_back(*it);  // reversed so pre-order pops left-to-right
    }
  }
  return writer.take();
}

std::unique_ptr<KeyTree> KeyTree::deserialize(BytesView data,
                                              crypto::SecureRandom& rng) {
  ByteReader reader(data);
  if (reader.u8() != kTreeMagic) throw ParseError("KeyTree: bad magic");
  if (reader.u8() != kTreeVersion) throw ParseError("KeyTree: bad version");
  const int degree = static_cast<int>(reader.u32());
  const std::size_t key_size = reader.u64();
  if (degree < 2 || key_size == 0 || key_size > 1024) {
    throw ParseError("KeyTree: implausible parameters");
  }
  auto tree = std::make_unique<KeyTree>(degree, key_size, rng);
  tree->nodes_.clear();
  tree->root_ = 0;
  tree->next_id_ = reader.u64();

  const std::uint64_t node_count = reader.u64();
  if (node_count == 0 || node_count > data.size()) {
    throw ParseError("KeyTree: implausible node count");
  }

  // Recursive-descent over the pre-order stream, iteratively: a stack of
  // (parent, remaining-children) frames.
  struct Frame {
    Node* parent;
    std::uint16_t remaining;
  };
  std::vector<Frame> frames;
  std::uint64_t read_nodes = 0;
  while (read_nodes < node_count) {
    const KeyId id = reader.u64();
    if (tree->nodes_.contains(id)) {
      throw ParseError("KeyTree: duplicate node id");
    }
    Node* node = tree->make_node(id);
    ++read_nodes;
    node->version = reader.u32();
    node->secret = reader.var_bytes();
    if (node->secret.size() != key_size) {
      throw ParseError("KeyTree: key size mismatch");
    }
    if (reader.u8() != 0) {
      const UserId user = reader.u64();
      node->user = user;
      node->user_count = 1;
      if (!tree->user_leaves_.emplace(user, node).second) {
        throw ParseError("KeyTree: duplicate user");
      }
    }
    const std::uint16_t children = reader.u16();
    if (node->is_leaf() && children != 0) {
      throw ParseError("KeyTree: leaf with children");
    }

    if (frames.empty()) {
      if (tree->root_ != 0) throw ParseError("KeyTree: multiple roots");
      tree->root_ = node->id;
    } else {
      Frame& top = frames.back();
      node->parent = top.parent;
      top.parent->children.push_back(node);
      if (--top.remaining == 0) frames.pop_back();
    }
    if (children > 0) frames.push_back(Frame{node, children});
  }
  reader.expect_done();
  if (!frames.empty() || tree->root_ == 0) {
    throw ParseError("KeyTree: truncated structure");
  }

  // Recompute user counts bottom-up, then let the invariant checker vet
  // everything else (arity, links, key sizes, leaf indexing).
  struct CountFrame {
    Node* node;
    std::size_t child_index;
  };
  std::vector<CountFrame> walk{{tree->nodes_.at(tree->root_).get(), 0}};
  while (!walk.empty()) {
    CountFrame& frame = walk.back();
    if (frame.node->is_leaf()) {
      walk.pop_back();
      continue;
    }
    if (frame.child_index < frame.node->children.size()) {
      walk.push_back({frame.node->children[frame.child_index++], 0});
      continue;
    }
    frame.node->user_count = 0;
    for (const Node* child : frame.node->children) {
      frame.node->user_count += child->user_count;
    }
    walk.pop_back();
  }
  try {
    tree->check_invariants();
  } catch (const Error& error) {
    throw ParseError(std::string("KeyTree: invalid snapshot: ") +
                     error.what());
  }
  return tree;
}

void KeyTree::check_invariants() const {
  std::size_t leaves_seen = 0;
  std::size_t nodes_seen = 0;
  std::vector<const Node*> stack{nodes_.at(root_).get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++nodes_seen;
    if (static_cast<int>(node->children.size()) > degree_) {
      throw Error("invariant: node arity exceeds degree");
    }
    if (node->secret.size() != key_size_) {
      throw Error("invariant: key size mismatch");
    }
    if (node->is_leaf()) {
      ++leaves_seen;
      if (!node->children.empty()) {
        throw Error("invariant: leaf with children");
      }
      if (node->user_count != 1) {
        throw Error("invariant: leaf user_count != 1");
      }
      auto it = user_leaves_.find(*node->user);
      if (it == user_leaves_.end() || it->second != node) {
        throw Error("invariant: leaf not indexed by user");
      }
    } else {
      std::size_t sum = 0;
      for (const Node* child : node->children) {
        if (child->parent != node) {
          throw Error("invariant: child/parent link broken");
        }
        sum += child->user_count;
        stack.push_back(child);
      }
      if (sum != node->user_count) {
        throw Error("invariant: user_count mismatch");
      }
      if (node->parent != nullptr && node->children.size() < 2) {
        throw Error("invariant: non-root internal node with < 2 children");
      }
    }
  }
  if (leaves_seen != user_leaves_.size()) {
    throw Error("invariant: leaf count != user count");
  }
  if (nodes_seen != nodes_.size()) {
    throw Error("invariant: orphan k-nodes present");
  }
}

}  // namespace keygraphs

#include "keygraph/key_tree.h"

#include <algorithm>
#include <cstring>
#include <set>

#include "common/error.h"
#include "common/io.h"
#include "telemetry/stage.h"

namespace keygraphs {

KeyTree::KeyTree(int degree, std::size_t key_size, crypto::SecureRandom& rng,
                 KeyId first_id)
    : degree_(degree), key_size_(key_size), rng_(rng), next_id_(first_id) {
  if (degree < 2) throw ProtocolError("KeyTree: degree must be >= 2");
  if (key_size == 0) throw ProtocolError("KeyTree: key size must be > 0");
  if (first_id == 0 || (first_id & (KeyId{1} << 63)) != 0) {
    throw ProtocolError("KeyTree: first_id collides with reserved id space");
  }
  root_index_ = make_node();
  refresh_key(at(root_index_));
  root_ = at(root_index_).id;
  publish(0);
}

KeyTree::~KeyTree() {
  for (Node& node : arena_) secure_wipe(node.secret);
}

KeyTree::NodeIndex KeyTree::make_node(std::optional<KeyId> fixed_id) {
  NodeIndex index;
  if (free_head_ != kNil) {
    index = free_head_;
    free_head_ = at(index).next_free;
  } else {
    index = static_cast<NodeIndex>(arena_.size());
    arena_.emplace_back();
  }
  Node& node = at(index);
  node = Node{};  // recycled slots carry stale free-list linkage
  node.id = fixed_id.value_or(next_id_++);
  node.in_use = true;
  by_id_.emplace(node.id, index);
  ++live_nodes_;
  return index;
}

void KeyTree::destroy_node(NodeIndex index) {
  Node& node = at(index);
  by_id_.erase(node.id);
  secure_wipe(node.secret);
  node = Node{};
  node.next_free = free_head_;
  free_head_ = index;
  --live_nodes_;
}

void KeyTree::refresh_key(Node& node) {
  // Attributes fresh key material to the keygen stage when an operation is
  // being collected (join/leave/batch); inert otherwise (e.g. restore).
  const telemetry::StageScope scope(telemetry::Stage::kKeygen);
  node.secret = rng_.bytes(key_size_);
  ++node.version;
  if (telemetry::enabled()) {
    static auto& generated =
        telemetry::Registry::global().counter("keygraph.keys_generated");
    generated.add(1);
  }
}

void KeyTree::bump_counts(NodeIndex from, std::ptrdiff_t delta) {
  for (NodeIndex i = from; i != kNil; i = at(i).parent) {
    at(i).user_count = static_cast<std::size_t>(
        static_cast<std::ptrdiff_t>(at(i).user_count) + delta);
  }
}

KeyTree::NodeIndex KeyTree::find_join_parent() const {
  // Descend toward the lightest subtree; attach at the first node with
  // spare capacity. Returns an internal node with < degree children, or a
  // full node whose lightest child is a leaf (caller splits that leaf).
  NodeIndex index = root_index_;
  for (;;) {
    const Node& node = at(index);
    if (static_cast<int>(node.children.size()) < degree_) return index;
    const NodeIndex lightest = *std::min_element(
        node.children.begin(), node.children.end(),
        [this](NodeIndex a, NodeIndex b) {
          return at(a).user_count < at(b).user_count;
        });
    if (at(lightest).is_leaf()) return index;  // full everywhere: split
    index = lightest;
  }
}

std::pair<KeyTree::NodeIndex, std::optional<SymmetricKey>>
KeyTree::attach_leaf(NodeIndex leaf) {
  const NodeIndex target = find_join_parent();
  NodeIndex attach_parent = target;
  std::optional<SymmetricKey> split_leaf_key;

  if (static_cast<int>(at(target).children.size()) >= degree_) {
    // Split the lightest (leaf) child: a fresh intermediate k-node takes its
    // place and adopts both the old leaf and the new user's leaf.
    const auto& siblings = at(target).children;
    const NodeIndex old_leaf = *std::min_element(
        siblings.begin(), siblings.end(), [this](NodeIndex a, NodeIndex b) {
          return at(a).user_count < at(b).user_count;
        });
    split_leaf_key = at(old_leaf).key();
    const NodeIndex intermediate = make_node();  // may grow the arena
    Node& parent = at(target);
    *std::find(parent.children.begin(), parent.children.end(), old_leaf) =
        intermediate;
    Node& middle = at(intermediate);
    middle.parent = target;
    middle.user_count = at(old_leaf).user_count;
    middle.children.push_back(old_leaf);
    at(old_leaf).parent = intermediate;
    attach_parent = intermediate;
  }

  at(attach_parent).children.push_back(leaf);
  at(leaf).parent = attach_parent;
  bump_counts(attach_parent, +1);
  return {attach_parent, std::move(split_leaf_key)};
}

JoinRecord KeyTree::join(UserId user, Bytes individual_key) {
  if (user_leaves_.contains(user)) {
    throw ProtocolError("KeyTree: user already in group");
  }
  if (individual_key.size() != key_size_) {
    throw ProtocolError("KeyTree: individual key has wrong size");
  }

  const NodeIndex leaf = make_node(individual_key_id(user));
  {
    Node& node = at(leaf);
    node.user = user;
    node.secret = std::move(individual_key);
    node.version = 1;
    node.user_count = 1;
  }
  user_leaves_.emplace(user, leaf);

  const auto [attach_parent, split_leaf_key] = attach_leaf(leaf);

  // The pre-join key of every ancestor is what existing members hold; it
  // wraps the corresponding new key. Capture before refreshing.
  JoinRecord record;
  record.user = user;
  record.individual_key = at(leaf).key();

  std::vector<NodeIndex> path;  // attach parent up to root
  for (NodeIndex i = attach_parent; i != kNil; i = at(i).parent) {
    path.push_back(i);
  }
  std::reverse(path.begin(), path.end());  // root first

  const bool had_members = user_count() > 1;
  for (NodeIndex i : path) {
    Node& node = at(i);
    PathChange change;
    change.node = node.id;
    if (split_leaf_key.has_value() && i == attach_parent) {
      // Brand-new intermediate: the only existing holder-to-be is the split
      // leaf's user, reachable through its individual key.
      change.old_key = split_leaf_key;
    } else if (had_members) {
      change.old_key = node.key();
    }
    refresh_key(node);
    change.new_key = node.key();
    record.path.push_back(std::move(change));
  }
  for (NodeIndex child : at(root_index_).children) {
    record.root_children.push_back(at(child).id);
  }
  publish_next();
  return record;
}

LeaveRecord KeyTree::leave(UserId user) {
  auto it = user_leaves_.find(user);
  if (it == user_leaves_.end()) {
    throw ProtocolError("KeyTree: user not in group");
  }
  const NodeIndex leaf = it->second;
  const NodeIndex parent = at(leaf).parent;
  user_leaves_.erase(it);

  LeaveRecord record;
  record.user = user;
  record.removed_nodes.push_back(at(leaf).id);

  std::erase(at(parent).children, leaf);
  bump_counts(parent, -1);
  destroy_node(leaf);

  // Splice out a non-root parent left with a single child: the child keeps
  // its own key and moves up one level, shrinking user keysets by one key.
  NodeIndex rekey_start = parent;
  if (at(parent).parent != kNil && at(parent).children.size() == 1) {
    const NodeIndex child = at(parent).children.front();
    const NodeIndex grandparent = at(parent).parent;
    auto& uncles = at(grandparent).children;
    *std::find(uncles.begin(), uncles.end(), parent) = child;
    at(child).parent = grandparent;
    record.removed_nodes.push_back(at(parent).id);
    destroy_node(parent);
    rekey_start = grandparent;
  }

  std::vector<NodeIndex> path;  // rekey start up to root
  for (NodeIndex i = rekey_start; i != kNil; i = at(i).parent) {
    path.push_back(i);
  }
  std::reverse(path.begin(), path.end());  // root first

  for (NodeIndex i : path) {
    Node& node = at(i);
    refresh_key(node);
    PathChange change;
    change.node = node.id;
    change.new_key = node.key();  // old key is compromised; never recorded
    record.path.push_back(std::move(change));
  }
  // Snapshot children after all refreshes so on-path children already carry
  // their new keys (Figure 8's {K'_{i-1}}_{K'_i} chain).
  record.children.resize(path.size());
  for (std::size_t i = 0; i < path.size(); ++i) {
    const NodeIndex next_on_path = i + 1 < path.size() ? path[i + 1] : kNil;
    for (NodeIndex child : at(path[i]).children) {
      record.children[i].push_back(
          ChildKey{at(child).id, at(child).key(), child == next_on_path});
    }
  }
  publish_next();
  return record;
}

BatchRecord KeyTree::batch_update(
    const std::vector<std::pair<UserId, Bytes>>& joins,
    const std::vector<UserId>& leaves) {
  // Validate everything before mutating anything.
  std::set<UserId> joining, leaving;
  for (const auto& [user, key] : joins) {
    if (user_leaves_.contains(user)) {
      throw ProtocolError("batch: joining user already in group");
    }
    if (!joining.insert(user).second) {
      throw ProtocolError("batch: duplicate join");
    }
    if (key.size() != key_size_) {
      throw ProtocolError("batch: individual key has wrong size");
    }
  }
  for (UserId user : leaves) {
    if (joining.contains(user)) {
      throw ProtocolError("batch: user both joins and leaves");
    }
    if (!user_leaves_.contains(user)) {
      throw ProtocolError("batch: leaving user not in group");
    }
    if (!leaving.insert(user).second) {
      throw ProtocolError("batch: duplicate leave");
    }
  }

  BatchRecord record;
  std::set<KeyId> changed;  // ordered for deterministic key generation

  // Leaves first: free the slots, mark every path to the root.
  for (UserId user : leaves) {
    const NodeIndex leaf = user_leaves_.at(user);
    const NodeIndex parent = at(leaf).parent;
    user_leaves_.erase(user);
    record.removed_nodes.push_back(at(leaf).id);
    record.left.push_back(user);
    std::erase(at(parent).children, leaf);
    bump_counts(parent, -1);
    destroy_node(leaf);

    NodeIndex start = parent;
    if (at(parent).parent != kNil && at(parent).children.size() == 1) {
      const NodeIndex child = at(parent).children.front();
      const NodeIndex grandparent = at(parent).parent;
      auto& uncles = at(grandparent).children;
      *std::find(uncles.begin(), uncles.end(), parent) = child;
      at(child).parent = grandparent;
      record.removed_nodes.push_back(at(parent).id);
      changed.erase(at(parent).id);  // may be marked by a prior leave
      destroy_node(parent);
      start = grandparent;
    }
    for (NodeIndex i = start; i != kNil; i = at(i).parent) {
      changed.insert(at(i).id);
    }
  }

  // Then joins: attach per the balance heuristic, mark the paths.
  for (const auto& [user, key] : joins) {
    const NodeIndex leaf = make_node(individual_key_id(user));
    {
      Node& node = at(leaf);
      node.user = user;
      node.secret = key;
      node.version = 1;
      node.user_count = 1;
    }
    user_leaves_.emplace(user, leaf);

    const NodeIndex attach_parent = attach_leaf(leaf).first;
    for (NodeIndex i = attach_parent; i != kNil; i = at(i).parent) {
      changed.insert(at(i).id);
    }
    record.joined.push_back(user);
  }

  // Rekey every affected node exactly once — the whole point of batching.
  for (KeyId id : changed) refresh_key(at(by_id_.at(id)));

  // Snapshot after all refreshes so wrapped-under-child keys are current.
  for (KeyId id : changed) {
    const Node& node = at(by_id_.at(id));
    BatchChange change;
    change.node = id;
    change.new_key = node.key();
    for (NodeIndex child : node.children) {
      change.children.push_back(ChildKey{at(child).id, at(child).key(),
                                         changed.contains(at(child).id)});
    }
    record.changes.push_back(std::move(change));
  }
  for (const auto& [user, key] : joins) {
    record.joiner_keysets.emplace_back(user, arena_keyset(user));
  }
  publish_next();
  return record;
}

std::size_t KeyTree::user_count() const noexcept {
  return user_leaves_.size();
}

bool KeyTree::has_user(UserId user) const {
  return user_leaves_.contains(user);
}

std::size_t KeyTree::key_count() const noexcept { return live_nodes_; }

std::size_t KeyTree::height() const { return view()->height(); }

SymmetricKey KeyTree::group_key() const {
  const Node& root = at(root_index_);
  return SymmetricKey{root.id, root.version, root.secret};
}

std::vector<UserId> KeyTree::users_under(KeyId node_id) const {
  return view()->users_under(node_id);
}

std::vector<SymmetricKey> KeyTree::keyset(UserId user) const {
  return view()->keyset(user);
}

std::vector<SymmetricKey> KeyTree::arena_keyset(UserId user) const {
  auto it = user_leaves_.find(user);
  if (it == user_leaves_.end()) {
    throw ProtocolError("KeyTree: user not in group");
  }
  std::vector<SymmetricKey> out;
  for (NodeIndex i = it->second; i != kNil; i = at(i).parent) {
    const Node& node = at(i);
    out.push_back(SymmetricKey{node.id, node.version, node.secret});
  }
  return out;
}

std::vector<UserId> KeyTree::users() const { return view()->users(); }

Bytes KeyTree::serialize() const { return view()->serialize(); }

TreeViewPtr KeyTree::view() const {
  // A leaf mutex held only for the pointer copy: readers pay one refcount
  // increment here, then run entirely on the immutable snapshot. (GCC 12's
  // std::atomic<shared_ptr> reads its pointer word outside any
  // TSan-visible synchronization, so a plain mutex is the portable,
  // sanitizer-clean publication primitive.)
  const std::lock_guard lock(view_mutex_);
  return view_;
}

void KeyTree::stamp_next_epoch(std::uint64_t epoch) { stamped_epoch_ = epoch; }

void KeyTree::publish_view() {
  // Re-label the current state (restore path); no mutation happened, so the
  // epoch counter only moves if a stamp is pending.
  view_epoch_ = stamped_epoch_.value_or(view_epoch_);
  stamped_epoch_.reset();
  publish(view_epoch_);
}

void KeyTree::publish_next() {
  view_epoch_ = stamped_epoch_.value_or(view_epoch_ + 1);
  stamped_epoch_.reset();
  publish(view_epoch_);
}

void KeyTree::publish(std::uint64_t epoch) {
  auto fresh = std::shared_ptr<TreeView>(new TreeView());
  fresh->degree_ = degree_;
  fresh->key_size_ = key_size_;
  fresh->next_id_ = next_id_;
  fresh->epoch_ = epoch;

  const std::size_t count = live_nodes_;
  fresh->nodes_.reserve(count);
  fresh->children_.reserve(count > 0 ? count - 1 : 0);
  fresh->secrets_.resize(count * key_size_);

  // Preorder walk with reversed child pushes — the exact order the
  // historical serialize() emitted, so the view's serialize() is a linear
  // scan with identical bytes. `slot` is the child's cell in the parent's
  // children block, assigned before the child is visited.
  struct Frame {
    NodeIndex arena;
    std::uint32_t parent_view;
    std::uint32_t slot;
    std::uint32_t depth;
  };
  std::vector<std::uint32_t> arena_to_view(arena_.size(),
                                           TreeView::kNilIndex);
  std::vector<Frame> stack{{root_index_, TreeView::kNilIndex, 0, 0}};
  KeyId max_internal = 0;
  std::size_t height = 0;
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node& src = at(frame.arena);
    const auto v = static_cast<std::uint32_t>(fresh->nodes_.size());
    arena_to_view[frame.arena] = v;
    if (frame.parent_view != TreeView::kNilIndex) {
      fresh->children_[frame.slot] = v;
    }
    height = std::max(height, static_cast<std::size_t>(frame.depth));

    TreeView::Node out;
    out.id = src.id;
    out.version = src.version;
    out.parent = frame.parent_view;
    out.user_count = src.user_count;
    out.leaf = src.is_leaf();
    if (out.leaf) {
      out.user = *src.user;
    } else {
      max_internal = std::max(max_internal, src.id);
    }
    out.first_child = static_cast<std::uint32_t>(fresh->children_.size());
    out.child_count = static_cast<std::uint32_t>(src.children.size());
    std::memcpy(fresh->secrets_.data() + std::size_t{v} * key_size_,
                src.secret.data(), key_size_);
    fresh->children_.resize(fresh->children_.size() + src.children.size(), 0);
    for (std::size_t i = src.children.size(); i-- > 0;) {
      stack.push_back({src.children[i], v,
                       out.first_child + static_cast<std::uint32_t>(i),
                       frame.depth + 1});
    }
    fresh->nodes_.push_back(out);
  }
  fresh->height_ = height;

  // Reverse pass: in preorder, a parent's subtree ends where its last
  // child's subtree ends.
  for (std::size_t i = fresh->nodes_.size(); i-- > 0;) {
    TreeView::Node& node = fresh->nodes_[i];
    if (node.child_count == 0) {
      node.subtree_end = static_cast<std::uint32_t>(i) + 1;
    } else {
      const std::uint32_t last =
          fresh->children_[node.first_child + node.child_count - 1];
      node.subtree_end = fresh->nodes_[last].subtree_end;
    }
  }

  // Internal-id lookup: dense table when the id range is close to the node
  // count, sorted fallback when churn has made ids sparse.
  if (max_internal + 1 <= 4 * count + 64) {
    fresh->by_internal_id_.assign(static_cast<std::size_t>(max_internal) + 1,
                                  TreeView::kNilIndex);
    for (std::uint32_t i = 0; i < fresh->nodes_.size(); ++i) {
      const TreeView::Node& node = fresh->nodes_[i];
      if (!node.leaf) {
        fresh->by_internal_id_[static_cast<std::size_t>(node.id)] = i;
      }
    }
  } else {
    fresh->by_internal_sparse_.reserve(count - user_leaves_.size());
    for (std::uint32_t i = 0; i < fresh->nodes_.size(); ++i) {
      if (!fresh->nodes_[i].leaf) {
        fresh->by_internal_sparse_.emplace_back(fresh->nodes_[i].id, i);
      }
    }
    std::sort(fresh->by_internal_sparse_.begin(),
              fresh->by_internal_sparse_.end());
  }

  // user_leaves_ is an ordered map, so the by-user table comes out sorted.
  fresh->by_user_.reserve(user_leaves_.size());
  for (const auto& [user, arena_index] : user_leaves_) {
    fresh->by_user_.emplace_back(user, arena_to_view[arena_index]);
  }

  if (telemetry::enabled()) {
    auto& registry = telemetry::Registry::global();
    static auto& users_gauge = registry.gauge("tree.users");
    static auto& keys_gauge = registry.gauge("tree.keys");
    static auto& height_gauge = registry.gauge("tree.height");
    static auto& epoch_gauge = registry.gauge("tree.view_epoch");
    users_gauge.set(static_cast<std::int64_t>(fresh->user_count()));
    keys_gauge.set(static_cast<std::int64_t>(fresh->key_count()));
    height_gauge.set(static_cast<std::int64_t>(fresh->height()));
    epoch_gauge.set(static_cast<std::int64_t>(epoch));
  }

  {
    const std::lock_guard lock(view_mutex_);
    view_ = std::move(fresh);
  }
}

std::unique_ptr<KeyTree> KeyTree::deserialize(BytesView data,
                                              crypto::SecureRandom& rng) {
  ByteReader reader(data);
  if (reader.u8() != detail::kTreeMagic) {
    throw ParseError("KeyTree: bad magic");
  }
  if (reader.u8() != detail::kTreeVersion) {
    throw ParseError("KeyTree: bad version");
  }
  const int degree = static_cast<int>(reader.u32());
  const std::size_t key_size = reader.u64();
  if (degree < 2 || key_size == 0 || key_size > 1024) {
    throw ParseError("KeyTree: implausible parameters");
  }
  auto tree = std::make_unique<KeyTree>(degree, key_size, rng);
  for (Node& node : tree->arena_) secure_wipe(node.secret);
  tree->arena_.clear();
  tree->by_id_.clear();
  tree->user_leaves_.clear();
  tree->free_head_ = kNil;
  tree->live_nodes_ = 0;
  tree->root_index_ = kNil;
  tree->root_ = 0;
  const KeyId stored_next_id = reader.u64();

  const std::uint64_t node_count = reader.u64();
  if (node_count == 0 || node_count > data.size()) {
    throw ParseError("KeyTree: implausible node count");
  }

  // Recursive-descent over the pre-order stream, iteratively: a stack of
  // (parent, remaining-children) frames.
  struct Frame {
    NodeIndex parent;
    std::uint16_t remaining;
  };
  std::vector<Frame> frames;
  std::uint64_t read_nodes = 0;
  KeyId max_internal_id = 0;
  while (read_nodes < node_count) {
    const KeyId id = reader.u64();
    if (tree->by_id_.contains(id)) {
      throw ParseError("KeyTree: duplicate node id");
    }
    const NodeIndex index = tree->make_node(id);
    ++read_nodes;
    {
      Node& node = tree->at(index);
      node.version = reader.u32();
      node.secret = reader.var_bytes();
      if (node.secret.size() != key_size) {
        throw ParseError("KeyTree: key size mismatch");
      }
    }
    if (reader.u8() != 0) {
      const UserId user = reader.u64();
      Node& node = tree->at(index);
      node.user = user;
      node.user_count = 1;
      if (node.id != individual_key_id(user)) {
        throw ParseError("KeyTree: leaf id mismatch");
      }
      if (!tree->user_leaves_.emplace(user, index).second) {
        throw ParseError("KeyTree: duplicate user");
      }
    } else if ((id >> 63) != 0) {
      // The top bit is the individual-key namespace; an internal k-node
      // there would be unreachable through the id tables.
      throw ParseError("KeyTree: implausible internal id");
    } else {
      max_internal_id = std::max(max_internal_id, id);
    }
    const std::uint16_t children = reader.u16();
    if (tree->at(index).is_leaf() && children != 0) {
      throw ParseError("KeyTree: leaf with children");
    }

    if (frames.empty()) {
      if (tree->root_index_ != kNil) {
        throw ParseError("KeyTree: multiple roots");
      }
      tree->root_index_ = index;
      tree->root_ = id;
    } else {
      Frame& top = frames.back();
      tree->at(index).parent = top.parent;
      tree->at(top.parent).children.push_back(index);
      if (--top.remaining == 0) frames.pop_back();
    }
    if (children > 0) frames.push_back(Frame{index, children});
  }
  reader.expect_done();
  if (!frames.empty() || tree->root_index_ == kNil || tree->root_ == 0) {
    throw ParseError("KeyTree: truncated structure");
  }

  // Recompute user counts bottom-up, then let the invariant checker vet
  // everything else (arity, links, key sizes, leaf indexing).
  struct CountFrame {
    NodeIndex node;
    std::size_t child_index;
  };
  std::vector<CountFrame> walk{{tree->root_index_, 0}};
  while (!walk.empty()) {
    CountFrame& frame = walk.back();
    Node& node = tree->at(frame.node);
    if (node.is_leaf()) {
      walk.pop_back();
      continue;
    }
    if (frame.child_index < node.children.size()) {
      walk.push_back({node.children[frame.child_index++], 0});
      continue;
    }
    node.user_count = 0;
    for (NodeIndex child : node.children) {
      node.user_count += tree->at(child).user_count;
    }
    walk.pop_back();
  }
  try {
    tree->check_invariants();
  } catch (const Error& error) {
    throw ParseError(std::string("KeyTree: invalid snapshot: ") +
                     error.what());
  }
  if (stored_next_id <= max_internal_id) {
    throw ParseError("KeyTree: id counter behind live ids");
  }
  // make_node's default-id argument is evaluated even for fixed-id nodes,
  // so parsing advanced the counter by node_count. Restore the serialized
  // value: a replica must keep allocating from the primary's counter, and
  // serialize -> deserialize -> serialize must round-trip byte-identically.
  tree->next_id_ = stored_next_id;
  tree->publish(0);
  return tree;
}

void KeyTree::check_invariants() const {
  std::size_t leaves_seen = 0;
  std::size_t nodes_seen = 0;
  std::vector<NodeIndex> stack{root_index_};
  while (!stack.empty()) {
    const NodeIndex index = stack.back();
    stack.pop_back();
    const Node& node = at(index);
    ++nodes_seen;
    if (!node.in_use) {
      throw Error("invariant: reachable node not marked live");
    }
    if (static_cast<int>(node.children.size()) > degree_) {
      throw Error("invariant: node arity exceeds degree");
    }
    if (node.secret.size() != key_size_) {
      throw Error("invariant: key size mismatch");
    }
    if (node.is_leaf()) {
      ++leaves_seen;
      if (!node.children.empty()) {
        throw Error("invariant: leaf with children");
      }
      if (node.user_count != 1) {
        throw Error("invariant: leaf user_count != 1");
      }
      auto it = user_leaves_.find(*node.user);
      if (it == user_leaves_.end() || it->second != index) {
        throw Error("invariant: leaf not indexed by user");
      }
    } else {
      std::size_t sum = 0;
      for (NodeIndex child : node.children) {
        if (at(child).parent != index) {
          throw Error("invariant: child/parent link broken");
        }
        sum += at(child).user_count;
        stack.push_back(child);
      }
      if (sum != node.user_count) {
        throw Error("invariant: user_count mismatch");
      }
      if (node.parent != kNil && node.children.size() < 2) {
        throw Error("invariant: non-root internal node with < 2 children");
      }
    }
  }
  if (leaves_seen != user_leaves_.size()) {
    throw Error("invariant: leaf count != user count");
  }
  if (nodes_seen != live_nodes_) {
    throw Error("invariant: orphan k-nodes present");
  }
  // Arena accounting: every slot is live or on the free list, never both,
  // and the id index maps exactly the live slots.
  std::size_t free_seen = 0;
  for (NodeIndex i = free_head_; i != kNil; i = at(i).next_free) {
    if (++free_seen > arena_.size()) {
      throw Error("invariant: free-list cycle");
    }
    if (at(i).in_use) {
      throw Error("invariant: free slot marked live");
    }
  }
  if (live_nodes_ + free_seen != arena_.size()) {
    throw Error("invariant: arena slot accounting broken");
  }
  if (by_id_.size() != live_nodes_) {
    throw Error("invariant: id index size mismatch");
  }
  for (const auto& [id, index] : by_id_) {
    if (index >= arena_.size() || !at(index).in_use || at(index).id != id) {
      throw Error("invariant: id index entry broken");
    }
  }
}

}  // namespace keygraphs

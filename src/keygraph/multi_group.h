// Multiple secure groups over one user population (paper Section 7).
//
// The paper closes by noting that key graphs (not just trees) exist because
// a real key-management service serves many groups at once, and a user who
// joins several groups appears in several key trees; the trees merge at the
// user's individual key into a single key graph. (This became the authors'
// Keystone service.) This module provides that merged, multi-group view on
// top of KeyTree.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "keygraph/key_graph.h"
#include "keygraph/key_tree.h"

namespace keygraphs {

/// A set of key trees sharing one individual key per user. The individual
/// key is created on the user's first join to any group and reused for each
/// subsequent group — exactly the merge of Section 7: the u-node and its
/// individual k-node are shared, everything above differs per group.
class MultiGroupGraph {
 public:
  MultiGroupGraph(int degree, std::size_t key_size,
                  crypto::SecureRandom& rng);

  /// Creates a new, empty secure group and returns its id.
  GroupId create_group();

  /// Joins `user` to `group`. Allocates the user's individual key on first
  /// contact with the service. Returns the per-group rekey record.
  JoinRecord join(GroupId group, UserId user);

  /// Leaves one group. The user's other memberships are untouched — the
  /// merged graph is why this is cheap: only the one tree rekeys.
  LeaveRecord leave(GroupId group, UserId user);

  [[nodiscard]] const KeyTree& tree(GroupId group) const;

  /// Groups the user currently belongs to, ascending.
  [[nodiscard]] std::vector<GroupId> groups_of(UserId user) const;

  /// The user's service-wide individual key (shared across groups).
  [[nodiscard]] const Bytes& individual_secret(UserId user) const;

  [[nodiscard]] std::size_t group_count() const { return trees_.size(); }

  /// Exports the merged key graph: one u-node per user, one k-node for the
  /// shared individual key, and the internal k-nodes of every tree. K-node
  /// ids are namespaced as (group+1) * kGroupIdStride + local id; individual
  /// keys use stride 0.
  [[nodiscard]] KeyGraph merged_graph() const;

  static constexpr KeyId kGroupIdStride = KeyId{1} << 32;

 private:
  int degree_;
  std::size_t key_size_;
  crypto::SecureRandom& rng_;
  std::map<GroupId, std::unique_ptr<KeyTree>> trees_;
  std::map<UserId, Bytes> individual_keys_;
  GroupId next_group_ = 1;
};

}  // namespace keygraphs

#include "keygraph/multi_group.h"

#include "common/error.h"

namespace keygraphs {

MultiGroupGraph::MultiGroupGraph(int degree, std::size_t key_size,
                                 crypto::SecureRandom& rng)
    : degree_(degree), key_size_(key_size), rng_(rng) {}

GroupId MultiGroupGraph::create_group() {
  const GroupId id = next_group_++;
  trees_.emplace(id, std::make_unique<KeyTree>(degree_, key_size_, rng_));
  return id;
}

JoinRecord MultiGroupGraph::join(GroupId group, UserId user) {
  auto it = trees_.find(group);
  if (it == trees_.end()) throw ProtocolError("MultiGroup: no such group");
  auto [key_it, created] = individual_keys_.try_emplace(user);
  if (created) key_it->second = rng_.bytes(key_size_);
  return it->second->join(user, key_it->second);
}

LeaveRecord MultiGroupGraph::leave(GroupId group, UserId user) {
  auto it = trees_.find(group);
  if (it == trees_.end()) throw ProtocolError("MultiGroup: no such group");
  LeaveRecord record = it->second->leave(user);
  // The individual key survives: the user may be in other groups, and its
  // key came from the authentication service, not from this group.
  return record;
}

const KeyTree& MultiGroupGraph::tree(GroupId group) const {
  auto it = trees_.find(group);
  if (it == trees_.end()) throw ProtocolError("MultiGroup: no such group");
  return *it->second;
}

std::vector<GroupId> MultiGroupGraph::groups_of(UserId user) const {
  std::vector<GroupId> out;
  for (const auto& [group, tree] : trees_) {
    if (tree->has_user(user)) out.push_back(group);
  }
  return out;
}

const Bytes& MultiGroupGraph::individual_secret(UserId user) const {
  auto it = individual_keys_.find(user);
  if (it == individual_keys_.end()) {
    throw ProtocolError("MultiGroup: unknown user");
  }
  return it->second;
}

KeyGraph MultiGroupGraph::merged_graph() const {
  KeyGraph graph;
  // One consistent epoch view per tree for the whole merge (and one atomic
  // view acquisition per tree instead of one per read).
  std::map<GroupId, TreeViewPtr> views;
  for (const auto& [group, tree] : trees_) views.emplace(group, tree->view());
  // One shared individual k-node per user who is in at least one group.
  for (const auto& [group, view] : views) {
    for (UserId user : view->users()) {
      if (!graph.has_user(user)) {
        graph.add_user(user);
        graph.add_key(user);  // individual key node, stride-0 namespace
        graph.add_user_edge(user, user);
      }
    }
  }
  // Per-tree internal nodes, namespaced, linked leaf-parent upward; the
  // per-tree leaf collapses into the shared individual k-node.
  for (const auto& [group, view] : views) {
    const KeyId stride = (static_cast<KeyId>(group) + 1) * kGroupIdStride;
    for (UserId user : view->users()) {
      const std::vector<SymmetricKey> chain = view->keyset(user);
      // chain[0] is the leaf (individual key), chain[1..] internal nodes.
      KeyId below = user;  // the shared individual k-node
      for (std::size_t i = 1; i < chain.size(); ++i) {
        const KeyId node = stride + chain[i].id;
        if (!graph.has_key(node)) graph.add_key(node);
        graph.add_key_edge(below, node);
        below = node;
      }
    }
  }
  return graph;
}

}  // namespace keygraphs

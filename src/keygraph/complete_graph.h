// Complete key graphs (paper Section 2.2, costs in Tables 1-3).
//
// A complete key graph holds one key for every nonempty subset of U: 2^n - 1
// keys total, 2^(n-1) keys per user. Joins are exponentially expensive (all
// keys change and a full set of new subset keys is created), but leaves are
// free: the remaining users already share keys for every subset that
// excludes the leaver. The paper includes this class to bound the design
// space; we implement it (for small n) so Table 2 and Table 3's measured
// columns cover all three graph classes.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "crypto/cbc.h"
#include "crypto/random.h"
#include "crypto/suite.h"
#include "keygraph/key.h"

namespace keygraphs {

/// Per-operation cost record, in units of key encryptions/decryptions —
/// the paper's cost measure in Section 3.5.
struct CompleteOpCost {
  std::size_t server_encryptions = 0;
  std::size_t requesting_user_decryptions = 0;
  /// Average over the other members.
  double non_requesting_user_decryptions = 0.0;
};

/// Complete key graph over at most kMaxUsers users (the structure is
/// exponential by design; the guard keeps benches honest).
class CompleteGraph {
 public:
  static constexpr std::size_t kMaxUsers = 16;

  CompleteGraph(crypto::CipherAlgorithm cipher, crypto::SecureRandom& rng);

  /// Adds a user. Every existing subset key is replaced and every subset
  /// containing the new user gets a fresh key. All replacement keys are
  /// genuinely encrypted (server cost ~ 2^(n+1) cipher invocations), so the
  /// returned costs are measured, not computed.
  CompleteOpCost join(UserId user);

  /// Removes a user. No rekeying: cost is zero by construction.
  CompleteOpCost leave(UserId user);

  /// Current (alive) membership count. A CompleteGraph instance supports at
  /// most kMaxUsers *distinct* users over its lifetime: leave() retires the
  /// user's slot so surviving subset masks stay valid.
  [[nodiscard]] std::size_t user_count() const;

  /// 2^n - 1 (Table 1, complete column).
  [[nodiscard]] std::size_t key_count() const { return keys_.size(); }

  /// Keys held by `user`: one per subset containing it (2^(n-1) of them).
  [[nodiscard]] std::vector<SymmetricKey> keyset(UserId user) const;

  /// The key shared by all current members (the group key).
  [[nodiscard]] SymmetricKey group_key() const;

  /// True if `user` currently holds a key equal to `secret` — used by the
  /// forward-secrecy tests (a leaver must hold none of the live keys).
  [[nodiscard]] bool member_holds(UserId user, const Bytes& secret) const;

 private:
  using SubsetMask = std::uint32_t;  // bit i set => members_[i] in subset

  [[nodiscard]] SubsetMask mask_of(UserId user) const;
  void encrypt_key_under(const Bytes& payload, const Bytes& wrapping_key,
                         std::size_t* counter);

  crypto::CipherAlgorithm cipher_;
  crypto::SecureRandom& rng_;
  std::size_t key_size_;
  std::vector<UserId> members_;          // index = bit position
  std::map<SubsetMask, SymmetricKey> keys_;
  KeyId next_id_ = 1;
};

}  // namespace keygraphs

#include "keygraph/tree_view.h"

#include <algorithm>

#include "common/error.h"
#include "common/io.h"

namespace keygraphs {

TreeView::~TreeView() { secure_wipe(secrets_); }

std::uint32_t TreeView::find(KeyId id) const {
  if (id & (KeyId{1} << 63)) {
    // Individual-key namespace: the id is a fixed function of the user.
    const std::uint32_t index = find_leaf(id & ~(KeyId{1} << 63));
    if (index != kNilIndex && nodes_[index].id == id) return index;
    return kNilIndex;
  }
  if (!by_internal_sparse_.empty()) {
    const auto it = std::lower_bound(
        by_internal_sparse_.begin(), by_internal_sparse_.end(), id,
        [](const auto& entry, KeyId key) { return entry.first < key; });
    if (it == by_internal_sparse_.end() || it->first != id) return kNilIndex;
    return it->second;
  }
  if (id >= by_internal_id_.size()) return kNilIndex;
  return by_internal_id_[static_cast<std::size_t>(id)];
}

std::uint32_t TreeView::find_leaf(UserId user) const {
  const auto it = std::lower_bound(
      by_user_.begin(), by_user_.end(), user,
      [](const auto& entry, UserId u) { return entry.first < u; });
  if (it == by_user_.end() || it->first != user) return kNilIndex;
  return it->second;
}

bool TreeView::has_user(UserId user) const {
  return find_leaf(user) != kNilIndex;
}

SymmetricKey TreeView::group_key() const {
  const Node& root = nodes_.front();
  const BytesView secret = secret_of(0);
  return SymmetricKey{root.id, root.version,
                      Bytes(secret.begin(), secret.end())};
}

std::vector<UserId> TreeView::users_in_range(std::uint32_t index) const {
  const Node& top = nodes_[index];
  std::vector<UserId> out;
  out.reserve(top.user_count);
  for (std::uint32_t i = index; i < top.subtree_end; ++i) {
    if (nodes_[i].leaf) out.push_back(nodes_[i].user);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<UserId> TreeView::users_under(KeyId node) const {
  const std::uint32_t index = find(node);
  if (index == kNilIndex) throw ProtocolError("KeyTree: no such k-node");
  return users_in_range(index);
}

std::vector<SymmetricKey> TreeView::keyset(UserId user) const {
  const std::uint32_t leaf = find_leaf(user);
  if (leaf == kNilIndex) throw ProtocolError("KeyTree: user not in group");
  std::vector<SymmetricKey> out;
  for (std::uint32_t i = leaf; i != kNilIndex; i = nodes_[i].parent) {
    const BytesView secret = secret_of(i);
    out.push_back(SymmetricKey{nodes_[i].id, nodes_[i].version,
                               Bytes(secret.begin(), secret.end())});
  }
  return out;
}

bool TreeView::user_holds(UserId user, KeyId key) const {
  const std::uint32_t leaf = find_leaf(user);
  if (leaf == kNilIndex) return false;
  for (std::uint32_t i = leaf; i != kNilIndex; i = nodes_[i].parent) {
    if (nodes_[i].id == key) return true;
  }
  return false;
}

std::vector<UserId> TreeView::users() const {
  std::vector<UserId> out;
  out.reserve(by_user_.size());
  for (const auto& entry : by_user_) out.push_back(entry.first);
  return out;
}

Bytes TreeView::serialize() const {
  ByteWriter writer;
  writer.u8(detail::kTreeMagic);
  writer.u8(detail::kTreeVersion);
  writer.u32(static_cast<std::uint32_t>(degree_));
  writer.u64(key_size_);
  writer.u64(next_id_);
  writer.u64(nodes_.size());
  // nodes_ is stored in the serialization preorder, so the historical
  // stack-driven DFS becomes a linear scan with identical output bytes.
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    writer.u64(node.id);
    writer.u32(node.version);
    writer.var_bytes(secret_of(i));
    writer.u8(node.leaf ? 1 : 0);
    if (node.leaf) writer.u64(node.user);
    writer.u16(static_cast<std::uint16_t>(node.child_count));
  }
  return writer.take();
}

std::vector<UserId> TreeView::resolve_subgroup(
    KeyId include, std::optional<KeyId> exclude) const {
  const std::uint32_t inc = find(include);
  if (inc == kNilIndex) return {};  // vanished in the same operation
  std::vector<UserId> included = users_in_range(inc);
  if (!exclude.has_value()) return included;
  const std::uint32_t exc = find(*exclude);
  if (exc == kNilIndex) return included;
  const std::vector<UserId> excluded = users_in_range(exc);
  std::vector<UserId> out;
  std::set_difference(included.begin(), included.end(), excluded.begin(),
                      excluded.end(), std::back_inserter(out));
  return out;
}

BytesView TreeView::find_secret(const KeyRef& ref) const {
  const std::uint32_t index = find(ref.id);
  if (index == kNilIndex || nodes_[index].version != ref.version) return {};
  return secret_of(index);
}

KeyGraph TreeView::to_key_graph() const {
  KeyGraph graph;
  for (const Node& node : nodes_) graph.add_key(node.id);
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    if (node.parent != kNilIndex) {
      graph.add_key_edge(node.id, nodes_[node.parent].id);
    }
    if (node.leaf) {
      graph.add_user(node.user);
      graph.add_user_edge(node.user, node.id);
    }
  }
  return graph;
}

}  // namespace keygraphs

// Core identifier and key types for secure groups (paper Section 2).
//
// A secure group is (U, K, R): users, keys, and the user-key relation. Keys
// here carry a stable node id (the paper's "subgroup label") plus a version
// that increments at every rekey, so a client can tell whether an incoming
// {K'}_{K} item is wrapped with a key it currently holds.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.h"

namespace keygraphs {

/// Identifies a user (a u-node). Assigned by the application/authentication
/// layer; never reused within one group's lifetime.
using UserId = std::uint64_t;

/// Identifies a k-node. Stable across rekeys of that node; the paper calls
/// this a subgroup label. Ids are unique within a group server's lifetime.
using KeyId = std::uint64_t;

/// Identifies a secure group (one key tree); used by the multi-group server.
using GroupId = std::uint32_t;

/// Version of a k-node's key material. Bumped on every rekey of the node.
using KeyVersion = std::uint32_t;

/// Reference to one key generation: which node, which version.
struct KeyRef {
  KeyId id = 0;
  KeyVersion version = 0;

  friend bool operator==(const KeyRef&, const KeyRef&) = default;
  friend auto operator<=>(const KeyRef&, const KeyRef&) = default;
};

/// A symmetric key as held by the server, a client, or a rekey payload.
struct SymmetricKey {
  KeyId id = 0;
  KeyVersion version = 0;
  Bytes secret;

  [[nodiscard]] KeyRef ref() const noexcept { return {id, version}; }

  friend bool operator==(const SymmetricKey&, const SymmetricKey&) = default;
};

/// Debug rendering "k<id>v<version>".
std::string to_string(const KeyRef& ref);

/// The k-node id of a user's individual key is a fixed function of the user
/// id (top bit set), so a client knows the subgroup label of its own
/// individual key before receiving any message — the welcome rekey message
/// wraps the new keys under this id. Internal k-nodes use small counter ids
/// and can never collide.
constexpr KeyId individual_key_id(UserId user) {
  return (KeyId{1} << 63) | user;
}

}  // namespace keygraphs

template <>
struct std::hash<keygraphs::KeyRef> {
  std::size_t operator()(const keygraphs::KeyRef& ref) const noexcept {
    return std::hash<std::uint64_t>{}(ref.id * 0x9e3779b97f4a7c15ull ^
                                      ref.version);
  }
};

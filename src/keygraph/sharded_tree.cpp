#include "keygraph/sharded_tree.h"

#include <algorithm>

namespace keygraphs {

ShardedKeyTree::ShardedKeyTree(int degree, std::size_t key_size,
                               std::size_t shards, std::uint64_t seed)
    : router_(shards) {
  rngs_.reserve(router_.shard_count());
  shards_.reserve(router_.shard_count());
  for (std::size_t i = 0; i < router_.shard_count(); ++i) {
    const std::uint64_t lane_seed = shard_seed(seed, i);
    rngs_.push_back(lane_seed == 0
                        ? std::make_unique<crypto::SecureRandom>()
                        : std::make_unique<crypto::SecureRandom>(lane_seed));
    shards_.push_back(std::make_unique<KeyTree>(
        degree, key_size, *rngs_.back(), ShardRouter::first_id(i)));
  }
}

std::size_t ShardedKeyTree::user_count() const {
  std::size_t total = 0;
  for (const auto& tree : shards_) total += tree->user_count();
  return total;
}

std::size_t ShardedKeyTree::key_count() const {
  std::size_t total = 0;
  for (const auto& tree : shards_) total += tree->key_count();
  return total;
}

std::vector<UserId> ShardedKeyTree::users() const {
  std::vector<UserId> all;
  for (const auto& tree : shards_) {
    const std::vector<UserId> shard_users = tree->users();
    all.insert(all.end(), shard_users.begin(), shard_users.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

}  // namespace keygraphs

// The key tree (paper Sections 2.2, 3.3, 3.4).
//
// A tree key graph: the root k-node holds the group key, internal k-nodes
// hold subgroup keys, and each leaf k-node is one user's individual key. The
// server mutates this structure on every join/leave and hands the mutation
// record (which nodes changed, old and new keys, sibling keys) to a rekeying
// strategy, which turns it into rekey messages.
//
// The tree maintains the paper's "full and balanced" heuristic: a join
// descends toward the lightest subtree and attaches at the first node with
// spare capacity (splitting a leaf when every node on the way is full), and
// a leave splices out internal nodes left with a single child.
//
// Storage: nodes live in a contiguous arena (one std::vector<Node> slab
// with integer indices and an intrusive free list) instead of per-node heap
// allocations behind an id map — traversal walks a flat array. At the end
// of every mutation the writer publishes an immutable TreeView snapshot
// (shared_ptr swap); readers acquire views via view() and never block on or
// race with the writer. The traversal-heavy read API (users_under, keyset,
// users, height, serialize) answers from the current view.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/random.h"
#include "keygraph/key.h"
#include "keygraph/tree_view.h"

namespace keygraphs {

/// One changed k-node on the rekey path, root first.
struct PathChange {
  KeyId node = 0;
  /// Key existing holders of this subtree had before the change. For a join
  /// this is the pre-join key of the node (or, when a leaf was split to make
  /// room, the split leaf's individual key). Unset for a leave: the old key
  /// is compromised and never used to wrap anything.
  std::optional<SymmetricKey> old_key;
  SymmetricKey new_key;
};

/// A child of a rekey-path node, as needed by leave strategies: its current
/// key (already the *new* key if the child itself is on the path).
struct ChildKey {
  KeyId node = 0;
  SymmetricKey key;
  bool on_path = false;  // true if this child is the next path node down
};

/// Everything a strategy needs to build join rekey messages.
struct JoinRecord {
  UserId user = 0;
  SymmetricKey individual_key;
  /// Changed nodes from root (index 0) down to the joining point.
  std::vector<PathChange> path;
  /// K-nodes that no longer exist (none for joins; present for symmetry).
  std::vector<KeyId> removed_nodes;
  /// Ids of the root's children after the join (the hybrid strategy sends
  /// one message per top-level subtree, paper Section 7).
  std::vector<KeyId> root_children;
};

/// Everything a strategy needs to build leave rekey messages.
struct LeaveRecord {
  UserId user = 0;
  /// Changed nodes from root (index 0) down to the leaving point.
  std::vector<PathChange> path;
  /// children[i] lists the children of path[i] *after* the removal.
  std::vector<std::vector<ChildKey>> children;
  /// K-nodes deleted by this leave (the user's leaf, plus any spliced-out
  /// single-child parents). Clients may garbage-collect these.
  std::vector<KeyId> removed_nodes;
};

/// One rekeyed node in a batch operation, with its post-batch children.
struct BatchChange {
  KeyId node = 0;
  SymmetricKey new_key;
  /// Children after the batch, carrying current keys (new ones for
  /// children that were themselves rekeyed).
  std::vector<ChildKey> children;
};

/// Result of a batched membership update (several joins and leaves rekeyed
/// in one pass — the periodic-rekeying extension of the LKH line of work).
struct BatchRecord {
  std::vector<UserId> joined;
  std::vector<UserId> left;
  /// Every k-node whose key changed, each exactly once.
  std::vector<BatchChange> changes;
  std::vector<KeyId> removed_nodes;
  /// Full new keyset (leaf to root) per joiner, for the welcome unicasts.
  std::vector<std::pair<UserId, std::vector<SymmetricKey>>> joiner_keysets;
};

/// The server-side key tree.
class KeyTree {
 public:
  /// `degree` is the paper's d (maximum children per k-node), >= 2.
  /// `key_size` is the symmetric key size in bytes (8 for DES, 16 for AES).
  /// The rng is borrowed for the tree's lifetime and supplies key material.
  /// `first_id` seeds the internal k-node id counter (default 1). A sharded
  /// deployment gives each shard tree a disjoint id range (stride 2^32) so
  /// k-node ids never collide across shards — multicast subscriptions and
  /// rekey blobs are keyed by KeyId, and two shards minting the same id
  /// would cross-deliver. 2^32 ids per shard outlasts any realistic
  /// mutation count (ids are never reused within a tree's lifetime).
  KeyTree(int degree, std::size_t key_size, crypto::SecureRandom& rng,
          KeyId first_id = 1);

  KeyTree(const KeyTree&) = delete;
  KeyTree& operator=(const KeyTree&) = delete;
  virtual ~KeyTree();  // StarGraph derives from KeyTree

  /// Adds a user. The individual key is supplied by the caller (in the
  /// paper it comes out of the authentication exchange). Changes the keys on
  /// the path from the joining point to the root. Throws ProtocolError if
  /// the user is already a member.
  JoinRecord join(UserId user, Bytes individual_key);

  /// Removes a user. Changes keys from the leaving point to the root.
  /// Throws ProtocolError if the user is not a member.
  LeaveRecord leave(UserId user);

  /// Applies several joins and leaves in one pass, rekeying each affected
  /// k-node exactly once (periodic/batch rekeying: amortizes overlapping
  /// rekey paths when churn is high). A user may not both join and leave
  /// in the same batch. Throws ProtocolError on duplicate/unknown users;
  /// the tree is unchanged if validation fails.
  BatchRecord batch_update(
      const std::vector<std::pair<UserId, Bytes>>& joins,
      const std::vector<UserId>& leaves);

  [[nodiscard]] std::size_t user_count() const noexcept;
  [[nodiscard]] bool has_user(UserId user) const;

  /// Total number of k-nodes including the root and leaves (Table 1 row 1
  /// counts these as "number of keys held by the server", minus nothing —
  /// individual keys are part of K).
  [[nodiscard]] std::size_t key_count() const noexcept;

  /// Number of edges on the longest root-to-leaf path. The paper's h counts
  /// one more edge (their paths end at u-nodes hanging below the individual
  /// keys), so paper-h = height() + 1 and a user at maximum depth holds
  /// height() + 1 keys. Answered from the current view's precomputed value
  /// — O(1), no traversal (it sits on the stats hot path).
  [[nodiscard]] std::size_t height() const;

  [[nodiscard]] int degree() const noexcept { return degree_; }

  /// Current group key (the root k-node's key).
  [[nodiscard]] SymmetricKey group_key() const;

  [[nodiscard]] KeyId root_id() const noexcept { return root_; }

  /// userset(k): all users in the subtree of `node` (paper Section 2.1).
  [[nodiscard]] std::vector<UserId> users_under(KeyId node) const;

  /// keyset(u): the keys user u holds, leaf to root. Used by tests to check
  /// the user-key relation and by the simulator to seed client state.
  [[nodiscard]] std::vector<SymmetricKey> keyset(UserId user) const;

  /// Full user list (ascending ids).
  [[nodiscard]] std::vector<UserId> users() const;

  // --- Epoch views -------------------------------------------------------

  /// Acquires the current immutable snapshot. Safe from any thread at any
  /// time; the returned view (and the key material it references) stays
  /// valid for as long as the caller holds the pointer.
  [[nodiscard]] TreeViewPtr view() const;

  /// Labels the *next* published view with `epoch` instead of the internal
  /// mutation counter. The group server stamps the about-to-be-advanced
  /// group epoch here right before mutating, so view epochs always equal
  /// group epochs. One-shot; overwritten by a subsequent stamp.
  void stamp_next_epoch(std::uint64_t epoch);

  /// Rebuilds and publishes a view of the current state. Mutations publish
  /// automatically; this exists for the restore path (re-label a freshly
  /// deserialized tree with the snapshot's epoch).
  void publish_view();

  /// Structural invariants, asserted by tests after every operation:
  /// child/parent links consistent, arity <= degree, user counts correct,
  /// exactly one leaf per user, no orphan nodes, arena free list and
  /// live-slot accounting consistent.
  void check_invariants() const;

  /// Serializes the complete tree — structure AND key material. This is
  /// the replication path Section 6 alludes to ("the key server may be
  /// replicated for reliability"): a standby server restores from it and
  /// continues issuing rekeys. The bytes are as sensitive as the server's
  /// memory; move them only over a mutually authenticated secure channel.
  [[nodiscard]] Bytes serialize() const;

  /// Restores a tree serialized by serialize(). The rng supplies key
  /// material for *future* operations only. Throws ParseError on malformed
  /// input (and validates all invariants before returning).
  static std::unique_ptr<KeyTree> deserialize(BytesView data,
                                              crypto::SecureRandom& rng);

 private:
  using NodeIndex = std::uint32_t;
  static constexpr NodeIndex kNil = TreeView::kNilIndex;

  /// One arena slot. `in_use` distinguishes live nodes from free-list
  /// entries; free slots chain through `next_free`.
  struct Node {
    KeyId id = 0;
    KeyVersion version = 0;
    Bytes secret;
    NodeIndex parent = kNil;
    std::vector<NodeIndex> children;
    std::optional<UserId> user;      // set iff leaf (individual key)
    std::size_t user_count = 0;      // users in this subtree
    bool in_use = false;
    NodeIndex next_free = kNil;

    [[nodiscard]] bool is_leaf() const noexcept { return user.has_value(); }
    [[nodiscard]] SymmetricKey key() const { return {id, version, secret}; }
  };

  [[nodiscard]] Node& at(NodeIndex index) { return arena_[index]; }
  [[nodiscard]] const Node& at(NodeIndex index) const {
    return arena_[index];
  }

  NodeIndex make_node(std::optional<KeyId> fixed_id = std::nullopt);
  void destroy_node(NodeIndex index);
  void refresh_key(Node& node);
  [[nodiscard]] NodeIndex find_join_parent() const;
  void bump_counts(NodeIndex from, std::ptrdiff_t delta);
  /// Attaches a (pre-made) leaf per the balance heuristic; returns the
  /// attach parent and, when a full leaf had to be split, that leaf's
  /// pre-split individual key. Shared by join() and batch_update().
  std::pair<NodeIndex, std::optional<SymmetricKey>> attach_leaf(
      NodeIndex leaf);
  /// Writer-side keyset (live arena, mid-mutation safe).
  [[nodiscard]] std::vector<SymmetricKey> arena_keyset(UserId user) const;
  /// Builds a fresh immutable snapshot and swaps it in; refreshes the
  /// tree-shape telemetry gauges.
  void publish(std::uint64_t epoch);
  /// publish() with the stamped/auto-incremented epoch label.
  void publish_next();

  int degree_;
  std::size_t key_size_;
  crypto::SecureRandom& rng_;
  KeyId next_id_ = 1;

  std::vector<Node> arena_;
  NodeIndex free_head_ = kNil;
  std::size_t live_nodes_ = 0;
  std::unordered_map<KeyId, NodeIndex> by_id_;
  /// Ordered so view publication emits the by-user table pre-sorted.
  std::map<UserId, NodeIndex> user_leaves_;
  NodeIndex root_index_ = kNil;
  KeyId root_ = 0;

  /// Guards only the view_ pointer swap/copy (a leaf lock, never held
  /// across any other work); the snapshot itself is immutable.
  mutable std::mutex view_mutex_;
  TreeViewPtr view_;
  std::uint64_t view_epoch_ = 0;
  std::optional<std::uint64_t> stamped_epoch_;
};

}  // namespace keygraphs

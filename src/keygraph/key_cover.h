// The key-covering problem (paper Section 2.1).
//
// When user u leaves, every key it held must be replaced, and each
// replacement must be distributed to userset(k) - {u}. The server wants a
// minimum-size set K' of keys with userset(K') equal to a target set S.
// The paper proves this NP-hard for general key graphs; this module
// provides the standard greedy set-cover approximation (ln|S|+1 factor)
// plus an exact exponential solver for small instances, used by tests to
// quantify the greedy gap.
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "keygraph/key_graph.h"
#include "keygraph/tree_view.h"

namespace keygraphs {

/// Result of a covering attempt. `exact` is false when some user in the
/// target set holds no usable key (cover impossible).
struct KeyCover {
  std::vector<KeyId> keys;
  bool covered = false;
};

/// Greedy cover: repeatedly pick the key covering the most uncovered users
/// of `target`, considering only keys whose userset is a subset of `target`
/// (a key leaking outside the target would break confidentiality).
KeyCover greedy_key_cover(const KeyGraph& graph,
                          const std::set<UserId>& target);

/// Exact minimum cover by exhaustive search; practical for graphs with at
/// most ~20 candidate keys. Returns nullopt when no cover exists.
std::optional<std::vector<KeyId>> exact_key_cover(
    const KeyGraph& graph, const std::set<UserId>& target);

/// Convenience overloads on an immutable epoch view: the cover is computed
/// against one consistent snapshot of the tree, so callers need not hold
/// any lock while the writer mutates.
KeyCover greedy_key_cover(const TreeView& view,
                          const std::set<UserId>& target);
std::optional<std::vector<KeyId>> exact_key_cover(
    const TreeView& view, const std::set<UserId>& target);

}  // namespace keygraphs

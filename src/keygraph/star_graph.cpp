#include "keygraph/star_graph.h"

// StarGraph is header-only over KeyTree; this file anchors the translation
// unit so the library layout matches one-module-per-graph-class.

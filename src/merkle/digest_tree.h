// Merkle digest tree (paper Section 4, after Merkle's certified digital
// signature).
//
// To sign m rekey messages with one RSA operation, the server hashes each
// message, pairs digests into parent messages D_ij = d_i || d_j, hashes
// those, and so on to a root digest, which it signs. Each message then
// travels with its authentication path (the sibling digests from its leaf
// to the root), letting a client recompute the root and check one
// signature regardless of m.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "crypto/digest.h"

namespace keygraphs::merkle {

/// Authentication path for one leaf: the sibling digest at each level,
/// bottom-up. `index` encodes left/right turns (bit i = 1 means the leaf's
/// ancestor at level i is a right child).
struct AuthPath {
  std::uint32_t index = 0;
  std::uint32_t leaf_count = 0;
  std::vector<Bytes> siblings;

  [[nodiscard]] Bytes serialize() const;
  static AuthPath deserialize(BytesView data);

  /// Total serialized overhead in bytes (what Table 4 reports as the
  /// "small increase in average rekey message size").
  [[nodiscard]] std::size_t wire_size() const;
};

/// Digest tree over a list of leaf digests.
class DigestTree {
 public:
  /// Builds the tree with `algorithm`. Leaves with no sibling are promoted
  /// unchanged (so a single message degenerates to its own digest).
  /// Throws Error on an empty leaf list.
  DigestTree(crypto::DigestAlgorithm algorithm,
             std::vector<Bytes> leaf_digests);

  [[nodiscard]] const Bytes& root() const { return levels_.back().front(); }

  /// Authentication path for leaf `index`.
  [[nodiscard]] AuthPath path(std::size_t index) const;

  [[nodiscard]] std::size_t leaf_count() const {
    return levels_.front().size();
  }

  /// Recomputes the root from one leaf digest and its path; the caller
  /// compares the result against a signed root. Pure function of inputs.
  static Bytes root_from_path(crypto::DigestAlgorithm algorithm,
                              const Bytes& leaf_digest, const AuthPath& path);

 private:
  crypto::DigestAlgorithm algorithm_;
  std::vector<std::vector<Bytes>> levels_;  // levels_[0] = leaves
};

}  // namespace keygraphs::merkle

// Batch signing of rekey messages (paper Section 4).
//
// One RSA signature authenticates a whole batch: the signer hashes each
// message, builds a DigestTree, signs the root, and returns per-message
// authentication paths. The paper measures a ~10x reduction in server
// processing time for user- and key-oriented rekeying versus signing each
// message individually (Table 4).
#pragma once

#include <span>
#include <vector>

#include "crypto/rsa.h"
#include "merkle/digest_tree.h"

namespace keygraphs::merkle {

/// What each message carries on the wire when batch-signed.
struct BatchSignatureItem {
  Bytes signature;  // RSA signature over the tree root (same for the batch)
  AuthPath path;    // this message's authentication path
};

/// Signs `messages` (their serialized bodies) as one batch.
/// Returns one item per message, in input order.
std::vector<BatchSignatureItem> batch_sign(
    const crypto::RsaPrivateKey& key, crypto::DigestAlgorithm algorithm,
    std::span<const Bytes> messages);

/// batch_sign() for callers that already hashed the messages: `leaves` are
/// the per-message digests under `algorithm`, in message order. The rekey
/// seal phase computes the leaves on its worker threads and funnels them
/// through here for the tree build and the single root signature.
std::vector<BatchSignatureItem> batch_sign_leaves(
    const crypto::RsaPrivateKey& key, crypto::DigestAlgorithm algorithm,
    std::vector<Bytes> leaves);

/// Verifies one message against its batch signature item.
[[nodiscard]] bool batch_verify(const crypto::RsaPublicKey& key,
                                crypto::DigestAlgorithm algorithm,
                                BytesView message,
                                const BatchSignatureItem& item);

}  // namespace keygraphs::merkle

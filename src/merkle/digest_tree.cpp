#include "merkle/digest_tree.h"

#include "common/error.h"
#include "common/io.h"

namespace keygraphs::merkle {

Bytes AuthPath::serialize() const {
  ByteWriter writer;
  writer.u32(index);
  writer.u32(leaf_count);
  writer.u16(static_cast<std::uint16_t>(siblings.size()));
  for (const Bytes& sibling : siblings) writer.var_bytes(sibling);
  return writer.take();
}

AuthPath AuthPath::deserialize(BytesView data) {
  ByteReader reader(data);
  AuthPath path;
  path.index = reader.u32();
  path.leaf_count = reader.u32();
  const std::uint16_t count = reader.u16();
  path.siblings.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    path.siblings.push_back(reader.var_bytes());
  }
  reader.expect_done();
  return path;
}

std::size_t AuthPath::wire_size() const {
  std::size_t size = 4 + 4 + 2;
  for (const Bytes& sibling : siblings) size += 4 + sibling.size();
  return size;
}

DigestTree::DigestTree(crypto::DigestAlgorithm algorithm,
                       std::vector<Bytes> leaf_digests)
    : algorithm_(algorithm) {
  if (leaf_digests.empty()) {
    throw Error("DigestTree: at least one leaf required");
  }
  levels_.push_back(std::move(leaf_digests));
  auto digest = crypto::make_digest(algorithm_);
  while (levels_.back().size() > 1) {
    const std::vector<Bytes>& below = levels_.back();
    std::vector<Bytes> level;
    level.reserve((below.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < below.size(); i += 2) {
      // D = h(d_left || d_right), the paper's D_12 = (d_1, d_2) message.
      digest->update(below[i]);
      digest->update(below[i + 1]);
      level.push_back(digest->finish());
    }
    if (below.size() % 2 != 0) {
      level.push_back(below.back());  // odd leaf promoted unchanged
    }
    levels_.push_back(std::move(level));
  }
}

AuthPath DigestTree::path(std::size_t index) const {
  if (index >= leaf_count()) throw Error("DigestTree: leaf out of range");
  AuthPath path;
  path.leaf_count = static_cast<std::uint32_t>(leaf_count());
  std::size_t position = index;
  std::uint32_t turns = 0;
  int bit = 0;
  for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
    const std::vector<Bytes>& nodes = levels_[level];
    const std::size_t sibling =
        position % 2 == 0 ? position + 1 : position - 1;
    if (sibling < nodes.size()) {
      path.siblings.push_back(nodes[sibling]);
      if (position % 2 != 0) turns |= std::uint32_t{1} << bit;
      ++bit;
      position /= 2;
    } else {
      // Promoted odd node: no sibling at this level; position carries over.
      position /= 2;
      if (position >= levels_[level + 1].size()) {
        position = levels_[level + 1].size() - 1;
      }
    }
  }
  path.index = turns;
  return path;
}

Bytes DigestTree::root_from_path(crypto::DigestAlgorithm algorithm,
                                 const Bytes& leaf_digest,
                                 const AuthPath& path) {
  auto digest = crypto::make_digest(algorithm);
  Bytes current = leaf_digest;
  for (std::size_t i = 0; i < path.siblings.size(); ++i) {
    const bool current_is_right = (path.index >> i) & 1u;
    if (current_is_right) {
      digest->update(path.siblings[i]);
      digest->update(current);
    } else {
      digest->update(current);
      digest->update(path.siblings[i]);
    }
    current = digest->finish();
  }
  return current;
}

}  // namespace keygraphs::merkle

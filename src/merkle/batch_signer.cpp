#include "merkle/batch_signer.h"

#include "telemetry/trace.h"

namespace keygraphs::merkle {

std::vector<BatchSignatureItem> batch_sign(
    const crypto::RsaPrivateKey& key, crypto::DigestAlgorithm algorithm,
    std::span<const Bytes> messages) {
  std::vector<Bytes> leaves;
  leaves.reserve(messages.size());
  for (const Bytes& message : messages) {
    leaves.push_back(crypto::digest_of(algorithm, message));
  }
  return batch_sign_leaves(key, algorithm, std::move(leaves));
}

std::vector<BatchSignatureItem> batch_sign_leaves(
    const crypto::RsaPrivateKey& key, crypto::DigestAlgorithm algorithm,
    std::vector<Bytes> leaves) {
  // One batch = one RSA signature amortized over leaves.size() rekey
  // messages; the batch-size and latency series show what Section 4 buys.
  static auto& batches =
      telemetry::Registry::global().counter("merkle.batches");
  static auto& batch_size =
      telemetry::Registry::global().histogram("merkle.batch_size");
  static auto& sign_ns =
      telemetry::Registry::global().histogram("merkle.sign_ns");
  if (telemetry::enabled()) {
    batches.add(1);
    batch_size.record(leaves.size());
  }
  const telemetry::ScopedSpan span("merkle.batch_sign", &sign_ns);

  const std::size_t count = leaves.size();
  const DigestTree tree(algorithm, std::move(leaves));
  const Bytes signature = key.sign_digest(algorithm, tree.root());

  std::vector<BatchSignatureItem> items;
  items.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    items.push_back(BatchSignatureItem{signature, tree.path(i)});
  }
  return items;
}

bool batch_verify(const crypto::RsaPublicKey& key,
                  crypto::DigestAlgorithm algorithm, BytesView message,
                  const BatchSignatureItem& item) {
  const Bytes leaf = crypto::digest_of(algorithm, message);
  const Bytes root = DigestTree::root_from_path(algorithm, leaf, item.path);
  return key.verify_digest(algorithm, root, item.signature);
}

}  // namespace keygraphs::merkle

// The rekey pipeline's seal phase: RekeyPlan -> sealed wire messages.
//
// The executor resolves a plan's symbolic WrapOps against the plan's own
// key snapshot — never the live tree — so it can run entirely outside the
// server lock. All heavy crypto (CBC key wrapping, per-message digests,
// batch-signature leaf hashing, envelope signing) fans out across
// `seal_threads` threads (the caller plus seal_threads - 1 pool workers);
// the Merkle tree build and its single RSA root signature stay on the
// calling thread. With seal_threads == 1 everything runs inline, and the
// output is byte-identical either way because every IV was pre-drawn at
// plan time and work is keyed by index, not by completion order.
//
// Telemetry: the calling thread wraps each parallel region in a wall-clock
// StageScope; scopes opened on pool workers find no collector and stay
// inert, so the per-op stage breakdown keeps summing to elapsed wall time
// (the invariant the observability tests assert) instead of accumulated
// CPU time.
//
// Key schedules are served from a ScheduleCache: before the wrap fan-out
// the executor warms the cache with every plan target (fresh keys wrap
// their siblings within the same plan, so lazy lookup would first-touch
// miss on most of them), and after sealing it drops superseded versions
// and obsoleted ids. None of this changes wire bytes — only where the
// expanded round keys come from.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "rekey/codec.h"
#include "rekey/plan.h"
#include "rekey/schedule_cache.h"

namespace keygraphs::rekey {

/// One fully sealed rekey message, ready for datagram framing.
struct SealedRekey {
  Recipient to;
  Bytes wire;
};

class RekeyExecutor {
 public:
  /// Default bound on cached wrapping-key schedules. Generous relative to
  /// tree sizes the simulator runs (every internal node of an n=4096, d=4
  /// tree fits with room to spare) yet only ~a few MB of round keys.
  static constexpr std::size_t kDefaultCacheCapacity = 8192;

  /// Wrap ops sealed per work unit. Each unit is handed to
  /// CbcCipher::encrypt_many_into, which interleaves up to
  /// crypto::kAesNiMaxStreams independent CBC streams on the hardware
  /// kernel — 8 matches that width. Output is byte-identical at any
  /// batch size or thread split (work is keyed by op index).
  static constexpr std::size_t kDefaultSealBatch = 8;

  /// `threads` >= 1; 1 means serial (no pool is created, no threads spawn).
  /// `seal_batch` >= 1 is the wrap-op batch width (exposed for the
  /// hardware-sealing ablation's batch sweep).
  RekeyExecutor(crypto::CipherAlgorithm cipher, std::size_t threads,
                std::size_t cache_capacity = kDefaultCacheCapacity,
                std::size_t seal_batch = kDefaultSealBatch);

  /// Seals every message of `plan` in plan order. Safe to call from
  /// several threads concurrently (the pool multiplexes batches); the
  /// sealer must outlive the call.
  [[nodiscard]] std::vector<SealedRekey> seal(const RekeyPlan& plan,
                                              const RekeySealer& sealer);

  [[nodiscard]] std::size_t threads() const noexcept { return threads_; }

  /// The wrap-op batch width the seal fan-out uses.
  [[nodiscard]] std::size_t seal_batch() const noexcept { return seal_batch_; }

  /// The wrapping-key schedule cache (exposed for tests and benchmarks).
  [[nodiscard]] ScheduleCache& schedule_cache() noexcept { return cache_; }

 private:
  /// fn(i) for i in [0, n), on the pool when it exists, inline otherwise.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Resolves the WrapOps [begin, end) of `plan` into blobs[begin..end),
  /// multi-buffer: plaintexts are gathered into one per-worker scratch
  /// buffer, ciphers come from the schedule cache, and all streams of the
  /// batch go through one CbcCipher::encrypt_many_into call (no allocation
  /// on the hot path once the per-worker buffers reach steady-state size).
  void seal_wrap_batch(const RekeyPlan& plan, std::size_t begin,
                       std::size_t end, std::vector<KeyBlob>& blobs);

  crypto::CipherAlgorithm cipher_;
  std::size_t threads_;
  std::size_t seal_batch_;
  std::unique_ptr<ThreadPool> pool_;  // null when threads_ == 1
  ScheduleCache cache_;
};

}  // namespace keygraphs::rekey

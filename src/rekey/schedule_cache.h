// LRU cache of expanded block-cipher key schedules, keyed by key version.
//
// Every wrap in a rekey plan encrypts under some (KeyId, version); expanding
// the cipher's key schedule (AES round keys, DES subkeys) for each wrap is
// pure waste when the same wrapping key appears in many ops — a group-
// oriented leave reuses each path key for a whole sibling set, and clients
// unwrap several blobs under one held key. The cache hands out immutable
// `shared_ptr<const BlockCipher>` schedules so the executor's workers and a
// client's unwrap loop can share them without copying.
//
// The cache lives in rekey/ (not crypto/) because the lookup key is the
// keygraph's KeyRef; crypto/ stays ignorant of key identity.
//
// Hygiene: each entry retains a copy of the secret purely to verify hits
// (two groups may reuse an id+version with different secrets); the copy is
// wiped on eviction/invalidation. Thread-safe; hot lookups take one mutex.
#pragma once

#include <cstddef>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/bytes.h"
#include "crypto/block_cipher.h"
#include "crypto/suite.h"
#include "keygraph/key.h"
#include "telemetry/metrics.h"

namespace keygraphs::rekey {

class ScheduleCache {
 public:
  /// `capacity` bounds the number of retained schedules (LRU eviction).
  /// A non-empty `counter_prefix` (e.g. "rekey.schedule_cache") registers
  /// `<prefix>.hits`, `<prefix>.misses`, and `<prefix>.inserts` counters.
  explicit ScheduleCache(std::size_t capacity, std::string counter_prefix = {});

  /// Returns the cached schedule for `ref`, building (and caching) it from
  /// `secret` on a miss. A hit whose stored secret does not match `secret`
  /// is discarded and rebuilt, so a stale or colliding entry can never
  /// decrypt traffic. Counts one hit or one miss.
  std::shared_ptr<const crypto::BlockCipher> get(
      crypto::CipherAlgorithm algorithm, const KeyRef& ref,
      BytesView secret);

  /// Ensures `ref`'s schedule is resident without touching hit/miss
  /// accounting; a build here counts as one insert. The executor warms the
  /// cache with every plan target before sealing, because fresh keys are
  /// themselves used as wrapping keys within the same plan — lazily they
  /// would all be first-touch misses.
  void warm(crypto::CipherAlgorithm algorithm, const KeyRef& ref,
            BytesView secret);

  /// Drops cached schedules for `ref.id` strictly older than `ref.version`.
  void invalidate_older(const KeyRef& ref);

  /// Drops every cached schedule for `id` (key destroyed / member evicted).
  void invalidate_id(KeyId id);

  /// Drops everything (client leaving a group wipes all derived state).
  void clear();

  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    KeyRef ref;
    Bytes secret;  // retained only to verify hits; wiped on removal
    std::shared_ptr<const crypto::BlockCipher> cipher;
  };
  using Lru = std::list<Entry>;

  // Erases `it` from both structures, wiping the retained secret.
  void remove_locked(Lru::iterator it);
  Lru::iterator* find_locked(const KeyRef& ref);
  void insert_locked(const KeyRef& ref, BytesView secret,
                     std::shared_ptr<const crypto::BlockCipher> cipher);

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  Lru lru_;  // front = most recently used
  std::unordered_map<KeyId, std::map<KeyVersion,
                                               Lru::iterator>>
      index_;
  telemetry::Counter* hits_ = nullptr;
  telemetry::Counter* misses_ = nullptr;
  telemetry::Counter* inserts_ = nullptr;
};

}  // namespace keygraphs::rekey

#include "rekey/executor.h"

#include <unordered_set>

#include "telemetry/stage.h"

namespace keygraphs::rekey {

using telemetry::Stage;
using telemetry::StageScope;

/// Resolves the WrapOps [begin, end) of one batch. Runs on any thread:
/// reads only the immutable plan, the (thread-safe) schedule cache, and
/// per-worker scratch buffers; bumps the (atomic) global encryption
/// counter. The whole batch goes through one encrypt_many_into call, so
/// on the AES-NI kernel its independent CBC streams pipeline; the bytes
/// are identical to sealing each op alone.
void RekeyExecutor::seal_wrap_batch(const RekeyPlan& plan, std::size_t begin,
                                    std::size_t end,
                                    std::vector<KeyBlob>& blobs) {
  // Gather every plaintext of the batch into one scratch buffer first,
  // recording offsets — views are formed only after the buffer stops
  // growing (insert may reallocate).
  thread_local Bytes scratch;
  thread_local std::vector<std::pair<std::size_t, std::size_t>> extents;
  thread_local std::vector<crypto::CbcCipher> ciphers;
  thread_local std::vector<crypto::CbcCipher::StreamOp> streams;
  scratch.clear();
  extents.clear();
  ciphers.clear();
  streams.clear();
  ciphers.reserve(end - begin);
  std::size_t encryptions_in_batch = 0;
  for (std::size_t i = begin; i < end; ++i) {
    const WrapOp& op = plan.ops[i];
    KeyBlob& blob = blobs[i];
    blob.wrap = op.wrap;
    blob.targets = op.targets;
    const std::size_t offset = scratch.size();
    for (const KeyRef& target : op.targets) {
      const BytesView secret = plan.keys.secret(target);
      scratch.insert(scratch.end(), secret.begin(), secret.end());
    }
    extents.emplace_back(offset, scratch.size() - offset);
    ciphers.emplace_back(cache_.get(cipher_, op.wrap, plan.keys.secret(op.wrap)));
    encryptions_in_batch += op.targets.size();
  }
  for (std::size_t i = begin; i < end; ++i) {
    const auto [offset, size] = extents[i - begin];
    const crypto::CbcCipher& cbc = ciphers[i - begin];
    blobs[i].ciphertext.resize(cbc.ciphertext_size(size));
    streams.push_back({&cbc, BytesView(scratch.data() + offset, size),
                       plan.ops[i].iv, blobs[i].ciphertext.data()});
  }
  crypto::CbcCipher::encrypt_many_into(streams);
  if (telemetry::enabled()) {
    static auto& encryptions =
        telemetry::Registry::global().counter("rekey.key_encryptions");
    encryptions.add(encryptions_in_batch);
  }
  secure_wipe(scratch.data(), scratch.size());
}

RekeyExecutor::RekeyExecutor(crypto::CipherAlgorithm cipher,
                             std::size_t threads, std::size_t cache_capacity,
                             std::size_t seal_batch)
    : cipher_(cipher),
      threads_(threads == 0 ? 1 : threads),
      seal_batch_(seal_batch == 0 ? 1 : seal_batch),
      cache_(cache_capacity, "rekey.schedule_cache") {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_ - 1);
}

void RekeyExecutor::run(std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
  if (pool_ && n > 1) {
    pool_->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

std::vector<SealedRekey> RekeyExecutor::seal(const RekeyPlan& plan,
                                             const RekeySealer& sealer) {
  const std::size_t message_count = plan.messages.size();
  std::vector<SealedRekey> out(message_count);
  if (message_count == 0) return out;

  // 1. Wrap ops -> blobs: the paper's dominant server cost, and
  //    embarrassingly parallel. Shared ops (key-oriented chains, hybrid
  //    path blobs) are computed once here and copied per message below.
  //    First warm the schedule cache with every plan target: fresh keys
  //    are used as wrapping keys by other ops of this same plan, so
  //    without warming each would be a first-touch miss inside the
  //    fan-out. Warming counts as inserts, not hits or misses.
  std::vector<KeyBlob> blobs(plan.ops.size());
  {
    const StageScope scope(Stage::kEncrypt);
    std::unordered_set<KeyRef> warmed;
    for (const WrapOp& op : plan.ops) {
      for (const KeyRef& target : op.targets) {
        if (warmed.insert(target).second) {
          cache_.warm(cipher_, target, plan.keys.secret(target));
        }
      }
    }
    // Fan out over batches of seal_batch_ ops, not single ops: each work
    // unit multi-buffers its streams through one encrypt_many_into call.
    const std::size_t batches =
        (plan.ops.size() + seal_batch_ - 1) / seal_batch_;
    run(batches, [&](std::size_t b) {
      const StageScope op_scope(Stage::kEncrypt);  // inert on pool workers
      const std::size_t begin = b * seal_batch_;
      const std::size_t end =
          begin + seal_batch_ < plan.ops.size() ? begin + seal_batch_
                                                : plan.ops.size();
      seal_wrap_batch(plan, begin, end, blobs);
    });
  }

  // 2. Message assembly + body serialization.
  std::vector<Bytes> bodies(message_count);
  {
    const StageScope scope(Stage::kSerialize);
    run(message_count, [&](std::size_t i) {
      const StageScope body_scope(Stage::kSerialize);
      RekeyMessage message = plan.messages[i].header;
      message.blobs.reserve(plan.messages[i].ops.size());
      for (const std::uint32_t op : plan.messages[i].ops) {
        message.blobs.push_back(blobs[op]);
      }
      bodies[i] = message.serialize_body();
    });
  }

  // 3. Batch signing: leaf digests in parallel, then the Merkle tree and
  //    its one RSA root signature serially on this thread.
  std::vector<merkle::BatchSignatureItem> batch;
  if (sealer.mode() == SigningMode::kBatch) {
    const StageScope scope(Stage::kSign);
    std::vector<Bytes> leaves(message_count);
    run(message_count, [&](std::size_t i) {
      const StageScope leaf_scope(Stage::kSign);
      leaves[i] = crypto::digest_of(sealer.digest(), bodies[i]);
    });
    batch = sealer.batch_items_from_leaves(std::move(leaves));
  }

  // 4. Envelopes. Per-message digests/signatures (kDigestOnly /
  //    kPerMessage) happen inside envelope(), in parallel.
  {
    const StageScope scope(Stage::kSerialize);
    run(message_count, [&](std::size_t i) {
      const StageScope envelope_scope(Stage::kSerialize);
      out[i].to = plan.messages[i].to;
      out[i].wire =
          sealer.envelope(bodies[i], batch.empty() ? nullptr : &batch[i]);
    });
  }

  // 5. Retire cache entries this plan superseded: older versions of every
  //    rekeyed node, and ids the messages declare obsolete (departed
  //    members' individual keys, pruned k-nodes). Later plans can only
  //    reference the versions that survive.
  for (const WrapOp& op : plan.ops) {
    for (const KeyRef& target : op.targets) cache_.invalidate_older(target);
  }
  for (const PlannedRekey& message : plan.messages) {
    for (const KeyId id : message.header.obsolete) cache_.invalidate_id(id);
  }
  return out;
}

}  // namespace keygraphs::rekey

#include "rekey/executor.h"

#include "telemetry/stage.h"

namespace keygraphs::rekey {

using telemetry::Stage;
using telemetry::StageScope;

namespace {

/// Resolves one WrapOp into its KeyBlob. Runs on any thread: reads only
/// the immutable plan and bumps the (atomic) global encryption counter.
KeyBlob seal_wrap(crypto::CipherAlgorithm cipher, const WrapOp& op,
                  const KeySnapshot& keys) {
  KeyBlob blob;
  blob.wrap = op.wrap;
  blob.targets = op.targets;
  Bytes plaintext;
  for (const KeyRef& target : op.targets) {
    const BytesView secret = keys.secret(target);
    plaintext.insert(plaintext.end(), secret.begin(), secret.end());
  }
  const crypto::CbcCipher cbc(
      crypto::make_cipher(cipher, keys.secret(op.wrap)));
  blob.ciphertext = cbc.encrypt_with_iv(plaintext, op.iv);
  if (telemetry::enabled()) {
    static auto& encryptions =
        telemetry::Registry::global().counter("rekey.key_encryptions");
    encryptions.add(op.targets.size());
  }
  secure_wipe(plaintext);
  return blob;
}

}  // namespace

RekeyExecutor::RekeyExecutor(crypto::CipherAlgorithm cipher,
                             std::size_t threads)
    : cipher_(cipher), threads_(threads == 0 ? 1 : threads) {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_ - 1);
}

void RekeyExecutor::run(std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
  if (pool_ && n > 1) {
    pool_->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

std::vector<SealedRekey> RekeyExecutor::seal(const RekeyPlan& plan,
                                             const RekeySealer& sealer) {
  const std::size_t message_count = plan.messages.size();
  std::vector<SealedRekey> out(message_count);
  if (message_count == 0) return out;

  // 1. Wrap ops -> blobs: the paper's dominant server cost, and
  //    embarrassingly parallel. Shared ops (key-oriented chains, hybrid
  //    path blobs) are computed once here and copied per message below.
  std::vector<KeyBlob> blobs(plan.ops.size());
  {
    const StageScope scope(Stage::kEncrypt);
    run(plan.ops.size(), [&](std::size_t i) {
      const StageScope op_scope(Stage::kEncrypt);  // inert on pool workers
      blobs[i] = seal_wrap(cipher_, plan.ops[i], plan.keys);
    });
  }

  // 2. Message assembly + body serialization.
  std::vector<Bytes> bodies(message_count);
  {
    const StageScope scope(Stage::kSerialize);
    run(message_count, [&](std::size_t i) {
      const StageScope body_scope(Stage::kSerialize);
      RekeyMessage message = plan.messages[i].header;
      message.blobs.reserve(plan.messages[i].ops.size());
      for (const std::uint32_t op : plan.messages[i].ops) {
        message.blobs.push_back(blobs[op]);
      }
      bodies[i] = message.serialize_body();
    });
  }

  // 3. Batch signing: leaf digests in parallel, then the Merkle tree and
  //    its one RSA root signature serially on this thread.
  std::vector<merkle::BatchSignatureItem> batch;
  if (sealer.mode() == SigningMode::kBatch) {
    const StageScope scope(Stage::kSign);
    std::vector<Bytes> leaves(message_count);
    run(message_count, [&](std::size_t i) {
      const StageScope leaf_scope(Stage::kSign);
      leaves[i] = crypto::digest_of(sealer.digest(), bodies[i]);
    });
    batch = sealer.batch_items_from_leaves(std::move(leaves));
  }

  // 4. Envelopes. Per-message digests/signatures (kDigestOnly /
  //    kPerMessage) happen inside envelope(), in parallel.
  {
    const StageScope scope(Stage::kSerialize);
    run(message_count, [&](std::size_t i) {
      const StageScope envelope_scope(Stage::kSerialize);
      out[i].to = plan.messages[i].to;
      out[i].wire =
          sealer.envelope(bodies[i], batch.empty() ? nullptr : &batch[i]);
    });
  }
  return out;
}

}  // namespace keygraphs::rekey

#include "rekey/executor.h"

#include <unordered_set>

#include "telemetry/stage.h"

namespace keygraphs::rekey {

using telemetry::Stage;
using telemetry::StageScope;

/// Resolves one WrapOp into its KeyBlob. Runs on any thread: reads only
/// the immutable plan, the (thread-safe) schedule cache, and a per-worker
/// scratch buffer; bumps the (atomic) global encryption counter.
KeyBlob RekeyExecutor::seal_wrap(const WrapOp& op, const KeySnapshot& keys) {
  KeyBlob blob;
  blob.wrap = op.wrap;
  blob.targets = op.targets;
  thread_local Bytes scratch;
  scratch.clear();
  for (const KeyRef& target : op.targets) {
    const BytesView secret = keys.secret(target);
    scratch.insert(scratch.end(), secret.begin(), secret.end());
  }
  const crypto::CbcCipher cbc(
      cache_.get(cipher_, op.wrap, keys.secret(op.wrap)));
  blob.ciphertext.resize(cbc.ciphertext_size(scratch.size()));
  cbc.encrypt_into(scratch, op.iv, blob.ciphertext.data());
  if (telemetry::enabled()) {
    static auto& encryptions =
        telemetry::Registry::global().counter("rekey.key_encryptions");
    encryptions.add(op.targets.size());
  }
  secure_wipe(scratch.data(), scratch.size());
  return blob;
}

RekeyExecutor::RekeyExecutor(crypto::CipherAlgorithm cipher,
                             std::size_t threads, std::size_t cache_capacity)
    : cipher_(cipher),
      threads_(threads == 0 ? 1 : threads),
      cache_(cache_capacity, "rekey.schedule_cache") {
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_ - 1);
}

void RekeyExecutor::run(std::size_t n,
                        const std::function<void(std::size_t)>& fn) {
  if (pool_ && n > 1) {
    pool_->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

std::vector<SealedRekey> RekeyExecutor::seal(const RekeyPlan& plan,
                                             const RekeySealer& sealer) {
  const std::size_t message_count = plan.messages.size();
  std::vector<SealedRekey> out(message_count);
  if (message_count == 0) return out;

  // 1. Wrap ops -> blobs: the paper's dominant server cost, and
  //    embarrassingly parallel. Shared ops (key-oriented chains, hybrid
  //    path blobs) are computed once here and copied per message below.
  //    First warm the schedule cache with every plan target: fresh keys
  //    are used as wrapping keys by other ops of this same plan, so
  //    without warming each would be a first-touch miss inside the
  //    fan-out. Warming counts as inserts, not hits or misses.
  std::vector<KeyBlob> blobs(plan.ops.size());
  {
    const StageScope scope(Stage::kEncrypt);
    std::unordered_set<KeyRef> warmed;
    for (const WrapOp& op : plan.ops) {
      for (const KeyRef& target : op.targets) {
        if (warmed.insert(target).second) {
          cache_.warm(cipher_, target, plan.keys.secret(target));
        }
      }
    }
    run(plan.ops.size(), [&](std::size_t i) {
      const StageScope op_scope(Stage::kEncrypt);  // inert on pool workers
      blobs[i] = seal_wrap(plan.ops[i], plan.keys);
    });
  }

  // 2. Message assembly + body serialization.
  std::vector<Bytes> bodies(message_count);
  {
    const StageScope scope(Stage::kSerialize);
    run(message_count, [&](std::size_t i) {
      const StageScope body_scope(Stage::kSerialize);
      RekeyMessage message = plan.messages[i].header;
      message.blobs.reserve(plan.messages[i].ops.size());
      for (const std::uint32_t op : plan.messages[i].ops) {
        message.blobs.push_back(blobs[op]);
      }
      bodies[i] = message.serialize_body();
    });
  }

  // 3. Batch signing: leaf digests in parallel, then the Merkle tree and
  //    its one RSA root signature serially on this thread.
  std::vector<merkle::BatchSignatureItem> batch;
  if (sealer.mode() == SigningMode::kBatch) {
    const StageScope scope(Stage::kSign);
    std::vector<Bytes> leaves(message_count);
    run(message_count, [&](std::size_t i) {
      const StageScope leaf_scope(Stage::kSign);
      leaves[i] = crypto::digest_of(sealer.digest(), bodies[i]);
    });
    batch = sealer.batch_items_from_leaves(std::move(leaves));
  }

  // 4. Envelopes. Per-message digests/signatures (kDigestOnly /
  //    kPerMessage) happen inside envelope(), in parallel.
  {
    const StageScope scope(Stage::kSerialize);
    run(message_count, [&](std::size_t i) {
      const StageScope envelope_scope(Stage::kSerialize);
      out[i].to = plan.messages[i].to;
      out[i].wire =
          sealer.envelope(bodies[i], batch.empty() ? nullptr : &batch[i]);
    });
  }

  // 5. Retire cache entries this plan superseded: older versions of every
  //    rekeyed node, and ids the messages declare obsolete (departed
  //    members' individual keys, pruned k-nodes). Later plans can only
  //    reference the versions that survive.
  for (const WrapOp& op : plan.ops) {
    for (const KeyRef& target : op.targets) cache_.invalidate_older(target);
  }
  for (const PlannedRekey& message : plan.messages) {
    for (const KeyId id : message.header.obsolete) cache_.invalidate_id(id);
  }
  return out;
}

}  // namespace keygraphs::rekey

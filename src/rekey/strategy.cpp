#include "rekey/strategy.h"

#include "common/error.h"
#include "rekey/group_oriented.h"
#include "rekey/hybrid.h"
#include "rekey/key_oriented.h"
#include "rekey/user_oriented.h"
#include "telemetry/metrics.h"

namespace keygraphs::rekey {

std::vector<OutboundRekey> RekeyStrategy::plan_join(
    const JoinRecord& record, RekeyEncryptor& encryptor) const {
  RekeyPlanner planner(encryptor.cipher(), encryptor.rng());
  std::vector<PlannedRekey> messages = plan_join(record, planner);
  return materialize(planner.take(std::move(messages)), encryptor);
}

std::vector<OutboundRekey> RekeyStrategy::plan_leave(
    const LeaveRecord& record, RekeyEncryptor& encryptor) const {
  RekeyPlanner planner(encryptor.cipher(), encryptor.rng());
  std::vector<PlannedRekey> messages = plan_leave(record, planner);
  return materialize(planner.take(std::move(messages)), encryptor);
}

std::unique_ptr<RekeyStrategy> make_strategy(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kUserOriented:
      return std::make_unique<UserOrientedStrategy>();
    case StrategyKind::kKeyOriented:
      return std::make_unique<KeyOrientedStrategy>();
    case StrategyKind::kGroupOriented:
      return std::make_unique<GroupOrientedStrategy>();
    case StrategyKind::kHybrid:
      return std::make_unique<HybridStrategy>();
  }
  throw Error("make_strategy: unknown strategy");
}

namespace detail {

std::vector<SymmetricKey> new_keys_upto(const std::vector<PathChange>& path,
                                        std::size_t upto) {
  std::vector<SymmetricKey> keys;
  keys.reserve(upto + 1);
  for (std::size_t i = 0; i <= upto && i < path.size(); ++i) {
    keys.push_back(path[i].new_key);
  }
  return keys;
}

RekeyMessage base_message(RekeyKind kind, StrategyKind strategy) {
  // Every strategy builds each of its rekey messages through here, so this
  // is the one chokepoint for the per-strategy message counters.
  if (telemetry::enabled()) {
    static std::array<telemetry::Counter*, 4> counters = {
        &telemetry::Registry::global().counter("rekey.messages.user"),
        &telemetry::Registry::global().counter("rekey.messages.key"),
        &telemetry::Registry::global().counter("rekey.messages.group"),
        &telemetry::Registry::global().counter("rekey.messages.hybrid"),
    };
    counters[static_cast<std::size_t>(strategy) - 1]->add(1);
  }
  RekeyMessage message;
  message.kind = kind;
  message.strategy = strategy;
  return message;
}

}  // namespace detail

}  // namespace keygraphs::rekey

#include "rekey/hybrid.h"

namespace keygraphs::rekey {

std::vector<OutboundRekey> HybridStrategy::plan_join(
    const JoinRecord& record, RekeyEncryptor& encryptor) const {
  std::vector<OutboundRekey> out;
  const std::size_t j = record.path.size() - 1;

  // Path blobs {K'_i}_{K_i}, each encrypted once and shared across the
  // subtree messages that need them.
  std::vector<std::optional<KeyBlob>> path_blobs(record.path.size());
  for (std::size_t i = 0; i <= j; ++i) {
    const PathChange& change = record.path[i];
    if (change.old_key.has_value()) {
      path_blobs[i] = encryptor.wrap(
          *change.old_key, std::span(&change.new_key, 1));
    }
  }

  if (path_blobs[0].has_value()) {
    const KeyId join_subtree = j >= 1 ? record.path[1].node : 0;
    for (KeyId child : record.root_children) {
      if (child == record.individual_key.id) {
        continue;  // the joiner's own leaf: served by the unicast below
      }
      RekeyMessage message =
          detail::base_message(RekeyKind::kJoin, StrategyKind::kHybrid);
      message.blobs.push_back(*path_blobs[0]);
      // Existing members listen on the keys they *held before* this join,
      // so the subtree containing the joining point is addressed by its old
      // key id — which is the split leaf's individual key id when this join
      // created a fresh intermediate node in place of a leaf.
      KeyId address = child;
      if (child == join_subtree) {
        for (std::size_t i = 1; i <= j; ++i) {
          if (path_blobs[i].has_value()) {
            message.blobs.push_back(*path_blobs[i]);
          }
        }
        if (record.path[1].old_key.has_value()) {
          address = record.path[1].old_key->id;
        }
      }
      out.push_back(OutboundRekey{Recipient::to_subgroup(address),
                                  std::move(message)});
    }
  }

  RekeyMessage welcome =
      detail::base_message(RekeyKind::kJoin, StrategyKind::kHybrid);
  welcome.blobs.push_back(encryptor.wrap(
      record.individual_key, detail::new_keys_upto(record.path, j)));
  out.push_back(
      OutboundRekey{Recipient::to_user(record.user), std::move(welcome)});
  return out;
}

std::vector<OutboundRekey> HybridStrategy::plan_leave(
    const LeaveRecord& record, RekeyEncryptor& encryptor) const {
  std::vector<OutboundRekey> out;
  const std::size_t levels = record.path.size();

  // Group-oriented payloads for levels below the root, reused verbatim in
  // the one subtree message that needs them.
  std::vector<KeyBlob> deep_blobs;
  for (std::size_t i = 1; i < levels; ++i) {
    for (const ChildKey& child : record.children[i]) {
      deep_blobs.push_back(encryptor.wrap(
          child.key, std::span(&record.path[i].new_key, 1)));
    }
  }

  for (const ChildKey& child : record.children[0]) {
    RekeyMessage message =
        detail::base_message(RekeyKind::kLeave, StrategyKind::kHybrid);
    message.blobs.push_back(encryptor.wrap(
        child.key, std::span(&record.path[0].new_key, 1)));
    if (child.on_path) {
      message.blobs.insert(message.blobs.end(), deep_blobs.begin(),
                           deep_blobs.end());
    }
    out.push_back(OutboundRekey{Recipient::to_subgroup(child.node),
                                std::move(message)});
  }
  return out;
}

}  // namespace keygraphs::rekey

#include "rekey/hybrid.h"

namespace keygraphs::rekey {

std::vector<PlannedRekey> HybridStrategy::plan_join(
    const JoinRecord& record, RekeyPlanner& planner) const {
  std::vector<PlannedRekey> out;
  const std::size_t j = record.path.size() - 1;

  // Path blobs {K'_i}_{K_i}, each planned once and shared across the
  // subtree messages that need them.
  std::vector<std::optional<std::uint32_t>> path_ops(record.path.size());
  for (std::size_t i = 0; i <= j; ++i) {
    const PathChange& change = record.path[i];
    if (change.old_key.has_value()) {
      path_ops[i] =
          planner.wrap(*change.old_key, std::span(&change.new_key, 1));
    }
  }

  if (path_ops[0].has_value()) {
    const KeyId join_subtree = j >= 1 ? record.path[1].node : 0;
    for (KeyId child : record.root_children) {
      if (child == record.individual_key.id) {
        continue;  // the joiner's own leaf: served by the unicast below
      }
      PlannedRekey message;
      message.header =
          detail::base_message(RekeyKind::kJoin, StrategyKind::kHybrid);
      message.ops.push_back(*path_ops[0]);
      // Existing members listen on the keys they *held before* this join,
      // so the subtree containing the joining point is addressed by its old
      // key id — which is the split leaf's individual key id when this join
      // created a fresh intermediate node in place of a leaf.
      KeyId address = child;
      if (child == join_subtree) {
        for (std::size_t i = 1; i <= j; ++i) {
          if (path_ops[i].has_value()) {
            message.ops.push_back(*path_ops[i]);
          }
        }
        if (record.path[1].old_key.has_value()) {
          address = record.path[1].old_key->id;
        }
      }
      message.to = Recipient::to_subgroup(address);
      out.push_back(std::move(message));
    }
  }

  PlannedRekey welcome;
  welcome.header =
      detail::base_message(RekeyKind::kJoin, StrategyKind::kHybrid);
  const std::vector<SymmetricKey> keyset = detail::new_keys_upto(record.path, j);
  welcome.ops.push_back(planner.wrap(record.individual_key, keyset));
  welcome.to = Recipient::to_user(record.user);
  out.push_back(std::move(welcome));
  return out;
}

std::vector<PlannedRekey> HybridStrategy::plan_leave(
    const LeaveRecord& record, RekeyPlanner& planner) const {
  std::vector<PlannedRekey> out;
  const std::size_t levels = record.path.size();

  // Group-oriented payloads for levels below the root, reused verbatim in
  // the one subtree message that needs them.
  std::vector<std::uint32_t> deep_ops;
  for (std::size_t i = 1; i < levels; ++i) {
    for (const ChildKey& child : record.children[i]) {
      deep_ops.push_back(
          planner.wrap(child.key, std::span(&record.path[i].new_key, 1)));
    }
  }

  for (const ChildKey& child : record.children[0]) {
    PlannedRekey message;
    message.header =
        detail::base_message(RekeyKind::kLeave, StrategyKind::kHybrid);
    message.ops.push_back(
        planner.wrap(child.key, std::span(&record.path[0].new_key, 1)));
    if (child.on_path) {
      message.ops.insert(message.ops.end(), deep_ops.begin(),
                         deep_ops.end());
    }
    message.to = Recipient::to_subgroup(child.node);
    out.push_back(std::move(message));
  }
  return out;
}

}  // namespace keygraphs::rekey

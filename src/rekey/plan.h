// The intermediate representation between the rekey pipeline's phases.
//
// The plan phase (strategy code, running under the server lock) no longer
// encrypts anything: it emits symbolic WrapOps — "targets' secrets under
// this wrapping key" — plus the messages that reference them by index, and
// snapshots every key secret an op needs. The seal phase (RekeyExecutor)
// later resolves the ops against that immutable snapshot on any number of
// worker threads. Because ops carry a pre-drawn IV, sealing is fully
// deterministic and workers never touch the (single-threaded) SecureRandom.
//
// Blob sharing is first-class: a message lists op *indices*, so the
// key-oriented leave chain of Figure 8 (each link encrypted once, reused in
// every message below it) is one op referenced by many messages, and the
// paper's encryption counts stay exact.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "crypto/block_cipher.h"
#include "crypto/random.h"
#include "keygraph/tree_view.h"
#include "rekey/message.h"

namespace keygraphs::rekey {

class RekeyEncryptor;

/// One deferred key encryption: the concatenated secrets of `targets`
/// CBC-encrypted under `wrap` with the pre-drawn `iv`.
struct WrapOp {
  KeyRef wrap;
  std::vector<KeyRef> targets;
  Bytes iv;  // exactly one cipher block, drawn in the plan phase
};

/// Immutable (id, version) -> secret resolver taken while planning. Old and
/// new generations of the same node coexist (a join wraps K'_i under K_i).
///
/// When bound to a TreeView, current-generation keys resolve straight from
/// the view's pooled secret buffer — holding the view's refcount instead of
/// copying key material. Only keys the view cannot answer (old generations,
/// keys of deleted nodes) land in the overlay map. Unbound snapshots (the
/// compatibility path) copy everything, as before. Overlay secrets are
/// wiped on destruction; view secrets are wiped by the view's destructor.
class KeySnapshot {
 public:
  KeySnapshot() = default;
  ~KeySnapshot();
  KeySnapshot(KeySnapshot&&) noexcept = default;
  KeySnapshot& operator=(KeySnapshot&&) noexcept = default;
  KeySnapshot(const KeySnapshot&) = default;
  KeySnapshot& operator=(const KeySnapshot&) = default;

  /// Resolve current-generation refs through `view` from now on. Keys
  /// already in the overlay stay there.
  void bind(TreeViewPtr view);

  void add(const SymmetricKey& key);
  /// Throws Error for a ref that was never snapshotted. The returned view
  /// stays valid for the snapshot's lifetime.
  [[nodiscard]] BytesView secret(const KeyRef& ref) const;
  /// Overlay entries only (excludes keys resolved through the view).
  [[nodiscard]] std::size_t size() const noexcept { return secrets_.size(); }

 private:
  TreeViewPtr view_;
  std::unordered_map<KeyRef, Bytes> secrets_;
};

/// One planned rekey message: destination, header (kind/strategy from the
/// strategy; group/epoch/timestamp/obsolete stamped by the server) and the
/// plan ops whose blobs it carries, in wire order. `header.blobs` stays
/// empty until the seal phase fills it.
struct PlannedRekey {
  Recipient to;
  RekeyMessage header;
  std::vector<std::uint32_t> ops;
};

/// Everything the seal phase needs, detached from the live tree.
struct RekeyPlan {
  std::vector<WrapOp> ops;
  KeySnapshot keys;
  std::vector<PlannedRekey> messages;
  /// Sum of targets per op — the paper's Section 3.5 server-cost unit,
  /// counted at plan time so OpRecords do not wait for the seal.
  std::size_t key_encryptions = 0;
};

/// The strategies' planning interface: records ops instead of encrypting.
/// Draws each op's IV from `rng` immediately, in wrap-call order, so a
/// planned-then-sealed run consumes the RNG stream exactly like the old
/// eager path — and the seal phase needs no randomness at all.
class RekeyPlanner {
 public:
  RekeyPlanner(crypto::CipherAlgorithm cipher, crypto::SecureRandom& rng);

  /// Binds the plan's snapshot to `view`: wrap() calls skip copying any
  /// secret the view can resolve. The server path passes the tree view the
  /// plan was computed against.
  RekeyPlanner(crypto::CipherAlgorithm cipher, crypto::SecureRandom& rng,
               TreeViewPtr view);

  /// Registers one wrap op and returns its index for message references.
  /// Counts targets.size() key encryptions. Throws on an empty target list
  /// (matching RekeyEncryptor::wrap).
  [[nodiscard]] std::uint32_t wrap(const SymmetricKey& wrapping,
                                   std::span<const SymmetricKey> targets);

  [[nodiscard]] std::size_t key_encryptions() const noexcept {
    return key_encryptions_;
  }

  /// Finalizes the plan around the given messages. The planner is spent
  /// afterwards.
  [[nodiscard]] RekeyPlan take(std::vector<PlannedRekey> messages);

 private:
  std::size_t block_size_;
  crypto::SecureRandom& rng_;
  RekeyPlan plan_;
  std::size_t key_encryptions_ = 0;
};

/// Resolves a plan serially through `encryptor` (which counts the
/// encryptions) into materialized messages — the pre-pipeline behavior.
/// Tests and the compatibility overloads on RekeyStrategy use this; the
/// server path uses RekeyExecutor instead.
[[nodiscard]] std::vector<OutboundRekey> materialize(const RekeyPlan& plan,
                                                     RekeyEncryptor& encryptor);

}  // namespace keygraphs::rekey

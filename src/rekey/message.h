// Rekey message wire format (paper Sections 3 and 4).
//
// A rekey message carries one or more encrypted new keys. As the paper
// notes, real rekey messages also carry subgroup labels for the new keys, a
// timestamp, a message integrity check, and a server digital signature; the
// format here includes all of those. Each encrypted item ("blob") names the
// wrapping key by (id, version) so a client can tell instantly whether it
// can decrypt it, and names the target keys so it knows what it learned.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "keygraph/key.h"
#include "merkle/digest_tree.h"

namespace keygraphs::rekey {

/// Whether the operation that produced a message was a join, a leave, or a
/// batched interval of both (the periodic-rekeying extension).
enum class RekeyKind : std::uint8_t {
  kJoin = 1,
  kLeave = 2,
  kBatch = 3,
  /// Stats-only: a keyset replay for a member that missed a rekey. Never
  /// serialized — on the wire a resync is a welcome-shaped kJoin message,
  /// so parse_body() will never produce this value; it exists so OpRecords
  /// can account recovery traffic separately from real joins.
  kResync = 4,
};

/// The paper's three rekeying strategies plus the Section 7 hybrid.
enum class StrategyKind : std::uint8_t {
  kUserOriented = 1,
  kKeyOriented = 2,
  kGroupOriented = 3,
  kHybrid = 4,
};

std::string strategy_name(StrategyKind kind);

/// One encryption unit: the secrets of `targets` (concatenated in order)
/// CBC-encrypted under the key identified by `wrap`. User-oriented rekeying
/// packs many targets per blob; key- and group-oriented use one each.
struct KeyBlob {
  KeyRef wrap;
  std::vector<KeyRef> targets;
  Bytes ciphertext;  // IV || CBC blocks

  friend bool operator==(const KeyBlob&, const KeyBlob&) = default;
};

/// How a sealed message is authenticated.
enum class AuthKind : std::uint8_t {
  kNone = 0,            // paper's "encryption only" configuration
  kDigest = 1,          // integrity check only, no signature
  kSignature = 2,       // one RSA signature per rekey message
  kBatchSignature = 3,  // Section 4: one signature per batch + Merkle path
};

/// A rekey message before sealing (no authentication section).
struct RekeyMessage {
  GroupId group = 0;
  std::uint64_t epoch = 0;         // server operation counter, anti-replay
  std::uint64_t timestamp_us = 0;  // server clock, microseconds
  RekeyKind kind = RekeyKind::kJoin;
  StrategyKind strategy = StrategyKind::kGroupOriented;
  /// K-nodes deleted by this operation; receivers may drop those keys.
  std::vector<KeyId> obsolete;
  std::vector<KeyBlob> blobs;

  /// Serialized body — the byte string that digests/signatures cover.
  [[nodiscard]] Bytes serialize_body() const;
  static RekeyMessage parse_body(BytesView data);

  friend bool operator==(const RekeyMessage&, const RekeyMessage&) = default;
};

/// Destination of one rekey message. kUser is unicast; kSubgroup is the
/// paper's subgroup multicast: everyone holding key `include`, minus anyone
/// holding `exclude` (Figure 6's userset(K_i) - userset(K_{i+1})).
struct Recipient {
  enum class Kind : std::uint8_t { kUser = 1, kSubgroup = 2 };

  Kind kind = Kind::kUser;
  UserId user = 0;
  KeyId include = 0;
  std::optional<KeyId> exclude;

  static Recipient to_user(UserId user) {
    return Recipient{Kind::kUser, user, 0, std::nullopt};
  }
  static Recipient to_subgroup(KeyId include,
                               std::optional<KeyId> exclude = std::nullopt) {
    return Recipient{Kind::kSubgroup, 0, include, exclude};
  }
};

/// A planned rekey message together with where it goes.
struct OutboundRekey {
  Recipient to;
  RekeyMessage message;
};

/// Datagram framing shared by the whole protocol (requests, acks, rekeys,
/// application payloads). One byte of type plus the payload.
enum class MessageType : std::uint8_t {
  kJoinRequest = 1,
  kJoinDenied = 2,
  kLeaveRequest = 3,
  kLeaveAck = 4,
  kRekey = 5,
  kAppData = 6,
  /// A member that missed a rekey (lossy transport) asks the server to
  /// replay its current keyset. Same payload shape as join/leave requests:
  /// u64 user + var token. Answered with a welcome-style kRekey unicast.
  kResyncRequest = 7,
  /// A member that detected an epoch gap asks for the missed rekey
  /// datagrams by negative acknowledgement: u64 user + var token +
  /// u64 have_epoch (the last epoch it fully applied). The server answers
  /// with unicast replays of the stored datagrams when the gap is inside
  /// its retransmit window, and falls back to a full keyset resync when it
  /// is not (see rekey/retransmit.h).
  kNackRequest = 8,
  /// Overload control: the server shed this request and the client should
  /// retry after the hint elapses. Payload: u64 retry-after, microseconds.
  /// Only ever emitted when the server runs with `overload = on`, so all
  /// pre-existing wire goldens hold with the default off (see
  /// docs/PROTOCOL.md § Overload control).
  kRetryLater = 9,
};

/// Optional trace-propagation extension on a datagram: the server's trace
/// id for the rekey operation that produced it, plus the epoch and
/// operation kind for context. Carried only when the server runs with
/// `trace_propagation = on`; without it the encoding is byte-identical to
/// the pre-extension format (the high bit of the type byte flags its
/// presence), so all wire goldens hold with the default off.
struct TraceExtension {
  std::uint64_t trace_id = 0;
  std::uint64_t epoch = 0;
  std::uint8_t op_kind = 0;  // RekeyKind of the originating operation

  friend bool operator==(const TraceExtension&,
                         const TraceExtension&) = default;
};

struct Datagram {
  MessageType type = MessageType::kRekey;
  Bytes payload;
  std::optional<TraceExtension> trace;

  Datagram() = default;
  Datagram(MessageType type_in, Bytes payload_in,
           std::optional<TraceExtension> trace_in = std::nullopt)
      : type(type_in),
        payload(std::move(payload_in)),
        trace(std::move(trace_in)) {}

  /// Set on the type byte when a TraceExtension follows it on the wire.
  static constexpr std::uint8_t kTraceFlag = 0x80;

  [[nodiscard]] Bytes encode() const;
  static Datagram decode(BytesView data);
};

}  // namespace keygraphs::rekey

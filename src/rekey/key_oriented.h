// Key-oriented rekeying (paper Section 3.3/3.4, Figures 6 and 8).
//
// Each new key is encrypted individually (so each ciphertext is computed
// once and shared across the messages that carry it), and all items a given
// subgroup needs are combined into one message. Server cost drops to
// 2(h-1) encryptions per join and d(h-1) per leave, while keeping the
// per-user message tailored (clients decrypt only what they need).
#pragma once

#include "rekey/strategy.h"

namespace keygraphs::rekey {

class KeyOrientedStrategy final : public RekeyStrategy {
 public:
  [[nodiscard]] StrategyKind kind() const noexcept override {
    return StrategyKind::kKeyOriented;
  }

  using RekeyStrategy::plan_join;
  using RekeyStrategy::plan_leave;

  [[nodiscard]] std::vector<PlannedRekey> plan_join(
      const JoinRecord& record, RekeyPlanner& planner) const override;

  [[nodiscard]] std::vector<PlannedRekey> plan_leave(
      const LeaveRecord& record, RekeyPlanner& planner) const override;
};

}  // namespace keygraphs::rekey

// Group-oriented rekeying (paper Section 3.3/3.4, Figures 7 and 9).
//
// One rekey message per operation, multicast to the whole group, containing
// every new key (each wrapped under the appropriate subgroup key). Best for
// the server — one message, no subgroup multicast needed, 2(h-1)/d(h-1)
// encryptions — but each client receives a message ~d times larger than it
// needs on a leave (the paper's client-side tradeoff, Table 6).
#pragma once

#include "rekey/strategy.h"

namespace keygraphs::rekey {

class GroupOrientedStrategy final : public RekeyStrategy {
 public:
  [[nodiscard]] StrategyKind kind() const noexcept override {
    return StrategyKind::kGroupOriented;
  }

  using RekeyStrategy::plan_join;
  using RekeyStrategy::plan_leave;

  [[nodiscard]] std::vector<PlannedRekey> plan_join(
      const JoinRecord& record, RekeyPlanner& planner) const override;

  [[nodiscard]] std::vector<PlannedRekey> plan_leave(
      const LeaveRecord& record, RekeyPlanner& planner) const override;
};

}  // namespace keygraphs::rekey

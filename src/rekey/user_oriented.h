// User-oriented rekeying (paper Section 3.3/3.4).
//
// For each user, build a message containing precisely the new keys that
// user needs, all encrypted together under one key the user already holds.
// Cheapest for clients (smallest messages, one decryption gets everything),
// most expensive for the server: h(h+1)/2 - 1 key encryptions per join and
// (d-1)h(h-1)/2 per leave.
#pragma once

#include "rekey/strategy.h"

namespace keygraphs::rekey {

class UserOrientedStrategy final : public RekeyStrategy {
 public:
  [[nodiscard]] StrategyKind kind() const noexcept override {
    return StrategyKind::kUserOriented;
  }

  using RekeyStrategy::plan_join;
  using RekeyStrategy::plan_leave;

  [[nodiscard]] std::vector<PlannedRekey> plan_join(
      const JoinRecord& record, RekeyPlanner& planner) const override;

  [[nodiscard]] std::vector<PlannedRekey> plan_leave(
      const LeaveRecord& record, RekeyPlanner& planner) const override;
};

}  // namespace keygraphs::rekey

// Hybrid rekeying (paper Section 7).
//
// The paper's closing suggestion: allocate one multicast address per child
// of the root and use group-oriented rekeying *within* each top-level
// subtree. Every subtree message carries the new group key; only the
// subtree containing the join/leave point carries the deeper new keys. The
// server sends at most d messages (plus the join unicast) and each client
// receives a message at most 1/d the size of a full group-oriented leave
// message — the middle ground the paper predicts between group- and
// key-oriented rekeying.
#pragma once

#include "rekey/strategy.h"

namespace keygraphs::rekey {

class HybridStrategy final : public RekeyStrategy {
 public:
  [[nodiscard]] StrategyKind kind() const noexcept override {
    return StrategyKind::kHybrid;
  }

  using RekeyStrategy::plan_join;
  using RekeyStrategy::plan_leave;

  [[nodiscard]] std::vector<PlannedRekey> plan_join(
      const JoinRecord& record, RekeyPlanner& planner) const override;

  [[nodiscard]] std::vector<PlannedRekey> plan_leave(
      const LeaveRecord& record, RekeyPlanner& planner) const override;
};

}  // namespace keygraphs::rekey

#include "rekey/codec.h"

#include "common/error.h"
#include "common/io.h"
#include "merkle/batch_signer.h"
#include "telemetry/stage.h"

namespace keygraphs::rekey {

std::string signing_mode_name(SigningMode mode) {
  switch (mode) {
    case SigningMode::kNone:
      return "none";
    case SigningMode::kDigestOnly:
      return "digest";
    case SigningMode::kPerMessage:
      return "per-message signature";
    case SigningMode::kBatch:
      return "batch signature";
  }
  return "?";
}

RekeyEncryptor::RekeyEncryptor(crypto::CipherAlgorithm cipher,
                               crypto::SecureRandom& rng)
    : cipher_(cipher), rng_(rng) {}

KeyBlob RekeyEncryptor::wrap(const SymmetricKey& wrapping,
                             std::span<const SymmetricKey> targets) {
  if (targets.empty()) throw Error("RekeyEncryptor: empty target list");
  // CbcCipher::encrypt(pt, rng) is exactly encrypt_with_iv(pt,
  // rng.bytes(block)), so drawing the IV here keeps the RNG stream — and
  // therefore every golden wire byte — identical to the eager path.
  return wrap_with_iv(wrapping, targets,
                      rng_.bytes(crypto::cipher_block_size(cipher_)));
}

KeyBlob RekeyEncryptor::wrap_with_iv(const SymmetricKey& wrapping,
                                     std::span<const SymmetricKey> targets,
                                     BytesView iv) {
  if (targets.empty()) throw Error("RekeyEncryptor: empty target list");
  KeyBlob blob;
  blob.wrap = wrapping.ref();
  Bytes plaintext;
  for (const SymmetricKey& target : targets) {
    blob.targets.push_back(target.ref());
    plaintext.insert(plaintext.end(), target.secret.begin(),
                     target.secret.end());
  }
  const crypto::CbcCipher cbc(crypto::make_cipher(cipher_, wrapping.secret));
  blob.ciphertext = cbc.encrypt_with_iv(plaintext, iv);
  key_encryptions_ += targets.size();
  if (telemetry::enabled()) {
    static auto& encryptions =
        telemetry::Registry::global().counter("rekey.key_encryptions");
    encryptions.add(targets.size());
  }
  secure_wipe(plaintext);
  return blob;
}

RekeySealer::RekeySealer(SigningMode mode, crypto::DigestAlgorithm digest,
                         const crypto::RsaPrivateKey* signer)
    : mode_(mode), digest_(digest), signer_(signer) {
  if ((mode == SigningMode::kPerMessage || mode == SigningMode::kBatch) &&
      signer == nullptr) {
    throw CryptoError("RekeySealer: signing mode requires a private key");
  }
  if (mode != SigningMode::kNone && digest == crypto::DigestAlgorithm::kNone) {
    throw CryptoError("RekeySealer: digest algorithm required");
  }
}

std::size_t RekeySealer::signatures_for(std::size_t n) const {
  switch (mode_) {
    case SigningMode::kPerMessage:
      return n;
    case SigningMode::kBatch:
      return n == 0 ? 0 : 1;
    default:
      return 0;
  }
}

std::vector<merkle::BatchSignatureItem> RekeySealer::batch_items_from_leaves(
    std::vector<Bytes> leaves) const {
  if (mode_ != SigningMode::kBatch) {
    throw CryptoError("RekeySealer: batch items requested outside kBatch");
  }
  return merkle::batch_sign_leaves(*signer_, digest_, std::move(leaves));
}

Bytes RekeySealer::envelope(
    const Bytes& body, const merkle::BatchSignatureItem* batch_item) const {
  using telemetry::Stage;
  using telemetry::StageScope;

  ByteWriter writer;
  writer.var_bytes(body);
  switch (mode_) {
    case SigningMode::kNone:
      writer.u8(static_cast<std::uint8_t>(AuthKind::kNone));
      break;
    case SigningMode::kDigestOnly: {
      writer.u8(static_cast<std::uint8_t>(AuthKind::kDigest));
      writer.u8(static_cast<std::uint8_t>(digest_));
      Bytes digest;
      {
        const StageScope scope(Stage::kSign);
        digest = crypto::digest_of(digest_, body);
      }
      writer.var_bytes(digest);
      break;
    }
    case SigningMode::kPerMessage: {
      writer.u8(static_cast<std::uint8_t>(AuthKind::kSignature));
      writer.u8(static_cast<std::uint8_t>(digest_));
      Bytes signature;
      {
        const StageScope scope(Stage::kSign);
        signature = signer_->sign(digest_, body);
      }
      writer.var_bytes(signature);
      break;
    }
    case SigningMode::kBatch:
      if (batch_item == nullptr) {
        throw CryptoError("RekeySealer: kBatch envelope needs a batch item");
      }
      writer.u8(static_cast<std::uint8_t>(AuthKind::kBatchSignature));
      writer.u8(static_cast<std::uint8_t>(digest_));
      writer.var_bytes(batch_item->signature);
      writer.var_bytes(batch_item->path.serialize());
      break;
  }
  return writer.take();
}

std::vector<Bytes> RekeySealer::seal(
    std::span<const RekeyMessage> messages) const {
  using telemetry::Stage;
  using telemetry::StageScope;

  std::vector<Bytes> bodies;
  bodies.reserve(messages.size());
  {
    const StageScope scope(Stage::kSerialize);
    for (const RekeyMessage& message : messages) {
      bodies.push_back(message.serialize_body());
    }
  }

  std::vector<merkle::BatchSignatureItem> batch;
  if (mode_ == SigningMode::kBatch && !bodies.empty()) {
    const StageScope scope(Stage::kSign);
    batch = merkle::batch_sign(*signer_, digest_, bodies);
  }

  // Envelope assembly is serialization; the digest/signature computations
  // inside envelope() charge the sign stage (nesting subtracts them here).
  const StageScope envelope_scope(Stage::kSerialize);
  std::vector<Bytes> wire;
  wire.reserve(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    wire.push_back(envelope(bodies[i], batch.empty() ? nullptr : &batch[i]));
  }
  return wire;
}

RekeyOpener::RekeyOpener(const crypto::RsaPublicKey* server_key)
    : server_key_(server_key) {}

OpenedRekey RekeyOpener::open(BytesView wire, bool verify) const {
  ByteReader reader(wire);
  const Bytes body = reader.var_bytes();

  OpenedRekey opened;
  opened.wire_size = wire.size();
  opened.auth = static_cast<AuthKind>(reader.u8());
  switch (opened.auth) {
    case AuthKind::kNone:
      reader.expect_done();
      opened.verified = true;
      break;
    case AuthKind::kDigest: {
      const auto algorithm = static_cast<crypto::DigestAlgorithm>(reader.u8());
      const Bytes digest = reader.var_bytes();
      reader.expect_done();
      opened.verified =
          !verify ||
          constant_time_equal(crypto::digest_of(algorithm, body), digest);
      break;
    }
    case AuthKind::kSignature: {
      const auto algorithm = static_cast<crypto::DigestAlgorithm>(reader.u8());
      const Bytes signature = reader.var_bytes();
      reader.expect_done();
      opened.verified = !verify || (server_key_ != nullptr &&
                                    server_key_->verify(algorithm, body,
                                                        signature));
      break;
    }
    case AuthKind::kBatchSignature: {
      const auto algorithm = static_cast<crypto::DigestAlgorithm>(reader.u8());
      merkle::BatchSignatureItem item;
      item.signature = reader.var_bytes();
      item.path = merkle::AuthPath::deserialize(reader.var_bytes());
      reader.expect_done();
      opened.verified =
          !verify || (server_key_ != nullptr &&
                      merkle::batch_verify(*server_key_, algorithm, body,
                                           item));
      break;
    }
    default:
      throw ParseError("rekey envelope: bad auth kind");
  }
  opened.message = RekeyMessage::parse_body(body);
  return opened;
}

}  // namespace keygraphs::rekey

#include "rekey/group_oriented.h"

namespace keygraphs::rekey {

std::vector<PlannedRekey> GroupOrientedStrategy::plan_join(
    const JoinRecord& record, RekeyPlanner& planner) const {
  std::vector<PlannedRekey> out;
  const std::size_t j = record.path.size() - 1;

  // Figure 7 step (4): one multicast with {K'_i}_{K_i} for the whole path.
  PlannedRekey broadcast;
  broadcast.header =
      detail::base_message(RekeyKind::kJoin, StrategyKind::kGroupOriented);
  for (const PathChange& change : record.path) {
    if (change.old_key.has_value()) {
      broadcast.ops.push_back(
          planner.wrap(*change.old_key, std::span(&change.new_key, 1)));
    }
  }
  if (!broadcast.ops.empty()) {
    broadcast.to = Recipient::to_subgroup(record.path.front().node);
    out.push_back(std::move(broadcast));
  }

  // Figure 7 step (5): unicast bundle for the joining user.
  PlannedRekey welcome;
  welcome.header =
      detail::base_message(RekeyKind::kJoin, StrategyKind::kGroupOriented);
  const std::vector<SymmetricKey> keyset = detail::new_keys_upto(record.path, j);
  welcome.ops.push_back(planner.wrap(record.individual_key, keyset));
  welcome.to = Recipient::to_user(record.user);
  out.push_back(std::move(welcome));
  return out;
}

std::vector<PlannedRekey> GroupOrientedStrategy::plan_leave(
    const LeaveRecord& record, RekeyPlanner& planner) const {
  // Figure 9: one multicast carrying L_0, ..., L_j, where L_i holds K'_i
  // wrapped under the key of every child of x_i (including the on-path
  // child, whose key is itself new — clients decrypt to a fixpoint).
  PlannedRekey broadcast;
  broadcast.header =
      detail::base_message(RekeyKind::kLeave, StrategyKind::kGroupOriented);
  for (std::size_t i = 0; i < record.path.size(); ++i) {
    for (const ChildKey& child : record.children[i]) {
      broadcast.ops.push_back(
          planner.wrap(child.key, std::span(&record.path[i].new_key, 1)));
    }
  }
  std::vector<PlannedRekey> out;
  if (!broadcast.ops.empty()) {
    broadcast.to = Recipient::to_subgroup(record.path.front().node);
    out.push_back(std::move(broadcast));
  }
  return out;
}

}  // namespace keygraphs::rekey

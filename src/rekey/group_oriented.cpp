#include "rekey/group_oriented.h"

namespace keygraphs::rekey {

std::vector<OutboundRekey> GroupOrientedStrategy::plan_join(
    const JoinRecord& record, RekeyEncryptor& encryptor) const {
  std::vector<OutboundRekey> out;
  const std::size_t j = record.path.size() - 1;

  // Figure 7 step (4): one multicast with {K'_i}_{K_i} for the whole path.
  RekeyMessage broadcast =
      detail::base_message(RekeyKind::kJoin, StrategyKind::kGroupOriented);
  for (const PathChange& change : record.path) {
    if (change.old_key.has_value()) {
      broadcast.blobs.push_back(encryptor.wrap(
          *change.old_key, std::span(&change.new_key, 1)));
    }
  }
  if (!broadcast.blobs.empty()) {
    out.push_back(OutboundRekey{
        Recipient::to_subgroup(record.path.front().node),
        std::move(broadcast)});
  }

  // Figure 7 step (5): unicast bundle for the joining user.
  RekeyMessage welcome =
      detail::base_message(RekeyKind::kJoin, StrategyKind::kGroupOriented);
  welcome.blobs.push_back(encryptor.wrap(
      record.individual_key, detail::new_keys_upto(record.path, j)));
  out.push_back(
      OutboundRekey{Recipient::to_user(record.user), std::move(welcome)});
  return out;
}

std::vector<OutboundRekey> GroupOrientedStrategy::plan_leave(
    const LeaveRecord& record, RekeyEncryptor& encryptor) const {
  // Figure 9: one multicast carrying L_0, ..., L_j, where L_i holds K'_i
  // wrapped under the key of every child of x_i (including the on-path
  // child, whose key is itself new — clients decrypt to a fixpoint).
  RekeyMessage broadcast =
      detail::base_message(RekeyKind::kLeave, StrategyKind::kGroupOriented);
  for (std::size_t i = 0; i < record.path.size(); ++i) {
    for (const ChildKey& child : record.children[i]) {
      broadcast.blobs.push_back(encryptor.wrap(
          child.key, std::span(&record.path[i].new_key, 1)));
    }
  }
  std::vector<OutboundRekey> out;
  if (!broadcast.blobs.empty()) {
    out.push_back(OutboundRekey{
        Recipient::to_subgroup(record.path.front().node),
        std::move(broadcast)});
  }
  return out;
}

}  // namespace keygraphs::rekey

#include "rekey/retransmit.h"

#include <algorithm>
#include <utility>

namespace keygraphs::rekey {

RetransmitWindow::RetransmitWindow(std::size_t capacity)
    : capacity_(capacity), ring_(capacity) {}

void RetransmitWindow::record(std::uint64_t epoch, TreeViewPtr view,
                              std::vector<StoredDatagram> datagrams) {
  if (capacity_ == 0) return;
  Entry& slot = ring_[epoch % capacity_];
  if (slot.epoch != epoch) count_ = std::min(count_ + 1, capacity_);
  slot.epoch = epoch;
  slot.view = std::move(view);
  slot.datagrams = std::move(datagrams);
  newest_ = std::max(newest_, epoch);
}

void RetransmitWindow::clear() {
  for (Entry& slot : ring_) slot = Entry{};
  newest_ = 0;
  count_ = 0;
}

std::uint64_t RetransmitWindow::oldest() const noexcept {
  if (count_ == 0) return 0;
  return newest_ - (count_ - 1);
}

bool RetransmitWindow::addressed_to(const StoredDatagram& stored,
                                    const TreeView& view, UserId user) {
  const Recipient& to = stored.to;
  if (to.kind == Recipient::Kind::kUser) return to.user == user;
  if (!view.user_holds(user, to.include)) return false;
  return !(to.exclude.has_value() && view.user_holds(user, *to.exclude));
}

std::optional<std::vector<BytesView>> RetransmitWindow::collect(
    UserId user, std::uint64_t have_epoch) const {
  if (count_ == 0) return std::nullopt;
  if (have_epoch >= newest_) return std::vector<BytesView>{};
  if (have_epoch + 1 < oldest()) return std::nullopt;
  std::vector<BytesView> out;
  for (std::uint64_t epoch = have_epoch + 1; epoch <= newest_; ++epoch) {
    const Entry& entry = ring_[epoch % capacity_];
    // Epochs are recorded contiguously (every advance passes through
    // dispatch), so a mismatched slot means the gap straddles a hole —
    // e.g. a window resized mid-run. Degrade to resync rather than serve
    // a partial replay the client would mistake for complete.
    if (entry.epoch != epoch || entry.view == nullptr) return std::nullopt;
    for (const StoredDatagram& stored : entry.datagrams) {
      if (addressed_to(stored, stored.view ? *stored.view : *entry.view,
                       user)) {
        out.push_back(BytesView{stored.datagram});
      }
    }
  }
  return out;
}

RecoveryLimiter::RecoveryLimiter(double rate, double burst)
    : rate_(rate), burst_(std::max(burst, 1.0)) {}

bool RecoveryLimiter::admit(UserId user, std::uint64_t now_us) {
  if (rate_ <= 0) return true;
  auto [it, inserted] = buckets_.try_emplace(user, Bucket{burst_, now_us});
  Bucket& bucket = it->second;
  if (!inserted && now_us > bucket.refilled_us) {
    const double elapsed_s =
        static_cast<double>(now_us - bucket.refilled_us) * 1e-6;
    bucket.tokens = std::min(burst_, bucket.tokens + elapsed_s * rate_);
    bucket.refilled_us = now_us;
  }
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

}  // namespace keygraphs::rekey

// Encryption, sealing and opening of rekey messages.
//
// RekeyEncryptor turns new keys into KeyBlobs (counting key encryptions,
// the paper's Section 3.5 cost unit). RekeySealer applies the
// authentication policy to the batch of messages produced by one join/leave
// (none, digest, one signature per message, or the Section 4 batch
// signature). RekeyOpener is the client side: parse, verify, expose body.
#pragma once

#include <span>

#include "crypto/cbc.h"
#include "crypto/random.h"
#include "crypto/rsa.h"
#include "crypto/suite.h"
#include "merkle/batch_signer.h"
#include "rekey/message.h"

namespace keygraphs::rekey {

/// How the server authenticates outgoing rekey messages.
enum class SigningMode : std::uint8_t {
  kNone = 0,        // encryption only (paper Figure 10/11 left-hand side)
  kDigestOnly = 1,  // MD5 integrity check, no signature
  kPerMessage = 2,  // Table 4 "one signature per rekey msg"
  kBatch = 3,       // Table 4 "one signature for all rekey msgs" (Sec. 4)
};

std::string signing_mode_name(SigningMode mode);

/// Builds KeyBlobs and counts the key encryptions performed.
class RekeyEncryptor {
 public:
  RekeyEncryptor(crypto::CipherAlgorithm cipher, crypto::SecureRandom& rng);

  /// Encrypts the concatenated secrets of `targets` under `wrapping`.
  /// Counts targets.size() key encryptions, matching the paper's cost
  /// bookkeeping (a combined user-oriented blob of i keys costs i).
  [[nodiscard]] KeyBlob wrap(const SymmetricKey& wrapping,
                             std::span<const SymmetricKey> targets);

  /// wrap() with a caller-supplied IV (exactly one cipher block). The
  /// pipeline's materialization path uses this with IVs pre-drawn at plan
  /// time; wrap() is this plus a fresh IV from the encryptor's RNG.
  [[nodiscard]] KeyBlob wrap_with_iv(const SymmetricKey& wrapping,
                                     std::span<const SymmetricKey> targets,
                                     BytesView iv);

  [[nodiscard]] std::size_t key_encryptions() const noexcept {
    return key_encryptions_;
  }
  void reset_counters() noexcept { key_encryptions_ = 0; }

  [[nodiscard]] crypto::CipherAlgorithm cipher() const noexcept {
    return cipher_;
  }
  [[nodiscard]] crypto::SecureRandom& rng() noexcept { return rng_; }

 private:
  crypto::CipherAlgorithm cipher_;
  crypto::SecureRandom& rng_;
  std::size_t key_encryptions_ = 0;
};

/// Applies a signing policy to the rekey messages of one operation.
class RekeySealer {
 public:
  /// `signer` may be null only for kNone/kDigestOnly modes.
  RekeySealer(SigningMode mode, crypto::DigestAlgorithm digest,
              const crypto::RsaPrivateKey* signer);

  /// Seals a batch (all messages of one join/leave). Returns wire bytes in
  /// input order. For kBatch mode, one RSA signature covers the whole batch
  /// via a Merkle digest tree; each message carries its auth path.
  [[nodiscard]] std::vector<Bytes> seal(
      std::span<const RekeyMessage> messages) const;

  /// Number of RSA signature operations seal() would use for `n` messages.
  [[nodiscard]] std::size_t signatures_for(std::size_t n) const;

  [[nodiscard]] SigningMode mode() const noexcept { return mode_; }
  [[nodiscard]] crypto::DigestAlgorithm digest() const noexcept {
    return digest_;
  }

  /// Batch-signature items for pre-hashed message digests (kBatch mode
  /// only; throws otherwise). The RekeyExecutor computes the leaf digests
  /// in parallel and funnels them through here for the single root
  /// signature.
  [[nodiscard]] std::vector<merkle::BatchSignatureItem>
  batch_items_from_leaves(std::vector<Bytes> leaves) const;

  /// One message's wire envelope: length-prefixed body plus the auth
  /// section for this sealer's mode. `batch_item` must be non-null exactly
  /// when mode() == kBatch. Digest/signature work inside charges the sign
  /// stage; the assembly around it is the caller's to attribute.
  [[nodiscard]] Bytes envelope(
      const Bytes& body, const merkle::BatchSignatureItem* batch_item) const;

 private:
  SigningMode mode_;
  crypto::DigestAlgorithm digest_;
  const crypto::RsaPrivateKey* signer_;
};

/// A parsed-and-checked incoming rekey message.
struct OpenedRekey {
  RekeyMessage message;
  AuthKind auth = AuthKind::kNone;
  bool verified = false;  // digest/signature checked (kNone counts as true)
  std::size_t wire_size = 0;
};

/// Client-side envelope parser/verifier.
class RekeyOpener {
 public:
  /// `server_key` may be null: signed messages then parse but verify=false.
  explicit RekeyOpener(const crypto::RsaPublicKey* server_key);

  /// Parses the envelope. If `verify` is set, checks the digest/signature;
  /// otherwise only parses (the client-simulator benches skip verification
  /// the way the paper excludes client auth costs from server timings).
  [[nodiscard]] OpenedRekey open(BytesView wire, bool verify) const;

 private:
  const crypto::RsaPublicKey* server_key_;
};

}  // namespace keygraphs::rekey

#include "rekey/schedule_cache.h"

#include <utility>

namespace keygraphs::rekey {

ScheduleCache::ScheduleCache(std::size_t capacity, std::string counter_prefix)
    : capacity_(capacity == 0 ? 1 : capacity) {
  if (!counter_prefix.empty()) {
    auto& registry = telemetry::Registry::global();
    hits_ = &registry.counter(counter_prefix + ".hits");
    misses_ = &registry.counter(counter_prefix + ".misses");
    inserts_ = &registry.counter(counter_prefix + ".inserts");
  }
}

std::shared_ptr<const crypto::BlockCipher> ScheduleCache::get(
    crypto::CipherAlgorithm algorithm, const KeyRef& ref,
    BytesView secret) {
  {
    std::lock_guard lock(mutex_);
    if (Lru::iterator* slot = find_locked(ref)) {
      Entry& entry = **slot;
      if (constant_time_equal(entry.secret, secret)) {
        lru_.splice(lru_.begin(), lru_, *slot);
        *slot = lru_.begin();
        if (hits_ && telemetry::enabled()) hits_->add(1);
        return entry.cipher;
      }
      // Same (id, version), different secret: another group's key, or a
      // caller holding stale material. Never serve it; rebuild below.
      remove_locked(*slot);
    }
  }
  // Key expansion runs outside the lock so workers miss concurrently.
  std::shared_ptr<const crypto::BlockCipher> cipher =
      crypto::make_cipher(algorithm, secret);
  if (misses_ && telemetry::enabled()) misses_->add(1);
  std::lock_guard lock(mutex_);
  if (Lru::iterator* slot = find_locked(ref)) {
    // Another thread raced the same miss; keep the resident schedule if its
    // secret matches so every caller shares one expansion.
    Entry& entry = **slot;
    if (constant_time_equal(entry.secret, secret)) return entry.cipher;
    remove_locked(*slot);
  }
  insert_locked(ref, secret, cipher);
  return cipher;
}

void ScheduleCache::warm(crypto::CipherAlgorithm algorithm,
                         const KeyRef& ref, BytesView secret) {
  {
    std::lock_guard lock(mutex_);
    if (Lru::iterator* slot = find_locked(ref)) {
      if (constant_time_equal((*slot)->secret, secret)) return;
      remove_locked(*slot);
    }
  }
  std::shared_ptr<const crypto::BlockCipher> cipher =
      crypto::make_cipher(algorithm, secret);
  if (inserts_ && telemetry::enabled()) inserts_->add(1);
  std::lock_guard lock(mutex_);
  if (find_locked(ref)) return;
  insert_locked(ref, secret, std::move(cipher));
}

void ScheduleCache::invalidate_older(const KeyRef& ref) {
  std::lock_guard lock(mutex_);
  while (true) {
    auto by_id = index_.find(ref.id);
    if (by_id == index_.end() || by_id->second.empty() ||
        by_id->second.begin()->first >= ref.version) {
      return;
    }
    remove_locked(by_id->second.begin()->second);
  }
}

void ScheduleCache::invalidate_id(KeyId id) {
  std::lock_guard lock(mutex_);
  while (true) {
    auto by_id = index_.find(id);
    if (by_id == index_.end() || by_id->second.empty()) return;
    remove_locked(by_id->second.begin()->second);
  }
}

void ScheduleCache::clear() {
  std::lock_guard lock(mutex_);
  for (Entry& entry : lru_) secure_wipe(entry.secret);
  lru_.clear();
  index_.clear();
}

std::size_t ScheduleCache::size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

void ScheduleCache::remove_locked(Lru::iterator it) {
  secure_wipe(it->secret);
  auto by_id = index_.find(it->ref.id);
  by_id->second.erase(it->ref.version);
  if (by_id->second.empty()) index_.erase(by_id);
  lru_.erase(it);
}

ScheduleCache::Lru::iterator* ScheduleCache::find_locked(
    const KeyRef& ref) {
  auto by_id = index_.find(ref.id);
  if (by_id == index_.end()) return nullptr;
  auto by_version = by_id->second.find(ref.version);
  if (by_version == by_id->second.end()) return nullptr;
  return &by_version->second;
}

void ScheduleCache::insert_locked(
    const KeyRef& ref, BytesView secret,
    std::shared_ptr<const crypto::BlockCipher> cipher) {
  lru_.push_front(Entry{ref, Bytes(secret.begin(), secret.end()),
                        std::move(cipher)});
  index_[ref.id][ref.version] = lru_.begin();
  while (lru_.size() > capacity_) remove_locked(std::prev(lru_.end()));
}

}  // namespace keygraphs::rekey

// Rekeying strategy interface (paper Section 3).
//
// A strategy is a pure planner: it consumes the tree-mutation record of one
// join/leave and emits PlannedRekey messages whose payloads are symbolic
// WrapOps registered with a RekeyPlanner (which also counts the key
// encryptions, the paper's server-cost unit — nothing is encrypted yet; the
// RekeyExecutor seals the plan later, possibly on worker threads). The
// three strategies of the paper plus the Section 7 hybrid all implement
// this interface, so the server, the tests, and every benchmark treat them
// uniformly.
//
// The non-virtual RekeyEncryptor overloads reproduce the pre-pipeline
// eager behavior (plan + materialize in one call) for tests and tools that
// want finished messages immediately.
#pragma once

#include <memory>

#include "keygraph/key_tree.h"
#include "rekey/codec.h"
#include "rekey/message.h"
#include "rekey/plan.h"

namespace keygraphs::rekey {

class RekeyStrategy {
 public:
  virtual ~RekeyStrategy() = default;

  [[nodiscard]] virtual StrategyKind kind() const noexcept = 0;

  /// Messages for a join: zero or more to existing members plus exactly one
  /// unicast to the joining user carrying its whole new keyset.
  [[nodiscard]] virtual std::vector<PlannedRekey> plan_join(
      const JoinRecord& record, RekeyPlanner& planner) const = 0;

  /// Messages for a leave (no message goes to the departed user).
  [[nodiscard]] virtual std::vector<PlannedRekey> plan_leave(
      const LeaveRecord& record, RekeyPlanner& planner) const = 0;

  /// Eager form: plans against `encryptor`'s cipher and RNG, then
  /// materializes the blobs serially through it (counting its encryptions),
  /// byte-identical to the pre-pipeline path.
  [[nodiscard]] std::vector<OutboundRekey> plan_join(
      const JoinRecord& record, RekeyEncryptor& encryptor) const;

  [[nodiscard]] std::vector<OutboundRekey> plan_leave(
      const LeaveRecord& record, RekeyEncryptor& encryptor) const;
};

/// Factory for all four strategies.
std::unique_ptr<RekeyStrategy> make_strategy(StrategyKind kind);

namespace detail {

/// New keys of path[0..upto] as a contiguous span-friendly vector
/// (root-first order, matching the paper's K'_0 .. K'_i).
std::vector<SymmetricKey> new_keys_upto(const std::vector<PathChange>& path,
                                        std::size_t upto);

/// Stamps kind/strategy on a fresh message (header fields that identify the
/// operation — group/epoch/timestamp — are filled by the server).
RekeyMessage base_message(RekeyKind kind, StrategyKind strategy);

}  // namespace detail

}  // namespace keygraphs::rekey

// Rekeying strategy interface (paper Section 3).
//
// A strategy is a pure planner: it consumes the tree-mutation record of one
// join/leave and emits the rekey messages that operation requires, using a
// RekeyEncryptor for the actual key wrapping (which also counts the key
// encryptions, the paper's server-cost unit). The three strategies of the
// paper plus the Section 7 hybrid all implement this interface, so the
// server, the tests, and every benchmark treat them uniformly.
#pragma once

#include <memory>

#include "keygraph/key_tree.h"
#include "rekey/codec.h"
#include "rekey/message.h"

namespace keygraphs::rekey {

class RekeyStrategy {
 public:
  virtual ~RekeyStrategy() = default;

  [[nodiscard]] virtual StrategyKind kind() const noexcept = 0;

  /// Messages for a join: zero or more to existing members plus exactly one
  /// unicast to the joining user carrying its whole new keyset.
  [[nodiscard]] virtual std::vector<OutboundRekey> plan_join(
      const JoinRecord& record, RekeyEncryptor& encryptor) const = 0;

  /// Messages for a leave (no message goes to the departed user).
  [[nodiscard]] virtual std::vector<OutboundRekey> plan_leave(
      const LeaveRecord& record, RekeyEncryptor& encryptor) const = 0;
};

/// Factory for all four strategies.
std::unique_ptr<RekeyStrategy> make_strategy(StrategyKind kind);

namespace detail {

/// New keys of path[0..upto] as a contiguous span-friendly vector
/// (root-first order, matching the paper's K'_0 .. K'_i).
std::vector<SymmetricKey> new_keys_upto(const std::vector<PathChange>& path,
                                        std::size_t upto);

/// Stamps kind/strategy on a fresh message (header fields that identify the
/// operation — group/epoch/timestamp — are filled by the server).
RekeyMessage base_message(RekeyKind kind, StrategyKind strategy);

}  // namespace detail

}  // namespace keygraphs::rekey

// Server-side rekey delivery reliability: the retransmit window and the
// recovery rate limiter.
//
// The paper's prototype sends rekey messages over UDP and assumes they
// arrive. When one does not, the receiver's keyset silently diverges; the
// pre-existing recovery path (an authenticated keyset resync) repairs it,
// but at the cost of a full plan/seal welcome message per victim — a loss
// burst across a large group would stampede the server with expensive
// resyncs. This header adds the cheap middle path:
//
//   - RetransmitWindow keeps the last W epochs' sealed datagrams exactly
//     as they left dispatch (bytes already encrypted, signed and framed).
//     Serving a NACK is a recipient-filtered memcpy-and-send: no tree
//     access, no crypto, no re-entry into plan/seal.
//   - Each entry pins the epoch's TreeView so "was u a recipient of this
//     subgroup message?" is answered against the membership of *that*
//     epoch, not the current one. Memory cost is W views plus the sealed
//     bytes; size the window accordingly (spec key `retransmit_window`).
//   - RecoveryLimiter is a per-user token bucket over the server's
//     injected clock: a client stuck in a retry loop (or a burst of
//     simultaneous victims) drains its own bucket and gets dropped
//     requests instead of driving the server into a resync storm.
//
// Thread safety: none here. GroupKeyServer records and serves under its
// external serialization; LockedGroupKeyServer routes both through its
// dispatch mutex.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "keygraph/tree_view.h"
#include "rekey/message.h"

namespace keygraphs::rekey {

/// One datagram as it left the server: destination plus framed wire bytes.
/// `view` optionally pins the membership snapshot this datagram's subgroup
/// recipient resolves against — the sharded server records one epoch whose
/// datagrams address different shards, so a single per-epoch view cannot
/// answer "was u a recipient?" for all of them. Null falls back to the
/// entry-level view recorded with the epoch (the single-tree server path).
struct StoredDatagram {
  Recipient to;
  Bytes datagram;
  TreeViewPtr view;
};

class RetransmitWindow {
 public:
  /// `capacity` = epochs retained; 0 disables the window entirely (every
  /// recovery request degrades to a resync).
  explicit RetransmitWindow(std::size_t capacity);

  /// Stores one epoch's outbound datagrams. Epochs must be recorded in
  /// increasing order (the dispatch path's epoch order); re-recording an
  /// epoch replaces it.
  void record(std::uint64_t epoch, TreeViewPtr view,
              std::vector<StoredDatagram> datagrams);

  /// The datagrams `user` should have received for every epoch in
  /// (have_epoch, newest], in epoch order. Returns nullopt when any epoch
  /// of that gap has already left the window — the caller must fall back
  /// to a full resync. The returned views alias the window; they are
  /// invalidated by the next record().
  [[nodiscard]] std::optional<std::vector<BytesView>> collect(
      UserId user, std::uint64_t have_epoch) const;

  /// Drops every stored epoch. A server whose state was replaced wholesale
  /// (snapshot restore) must not serve NACKs from the pre-restore timeline.
  void clear();

  [[nodiscard]] bool enabled() const noexcept { return capacity_ > 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Epochs currently held (<= capacity).
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  /// Newest recorded epoch; 0 when empty.
  [[nodiscard]] std::uint64_t newest() const noexcept { return newest_; }
  /// Oldest epoch still servable; 0 when empty.
  [[nodiscard]] std::uint64_t oldest() const noexcept;

 private:
  struct Entry {
    std::uint64_t epoch = 0;
    TreeViewPtr view;
    std::vector<StoredDatagram> datagrams;
  };

  /// Whether `user` was a recipient of `stored` under `view`'s membership.
  [[nodiscard]] static bool addressed_to(const StoredDatagram& stored,
                                         const TreeView& view, UserId user);

  std::size_t capacity_;
  std::vector<Entry> ring_;  // epoch e lives at ring_[e % capacity_]
  std::uint64_t newest_ = 0;
  std::size_t count_ = 0;
};

/// Per-user token bucket on an injected microsecond clock. Deterministic:
/// refill is computed from the timestamps the caller passes in, so tests
/// drive it with a manual clock.
class RecoveryLimiter {
 public:
  /// `rate` tokens per second, bucket capped at `burst`. A non-positive
  /// rate disables limiting (admit always).
  RecoveryLimiter(double rate, double burst);

  /// Takes one token for `user` at time `now_us`; false when the bucket
  /// is empty (the request should be dropped).
  [[nodiscard]] bool admit(UserId user, std::uint64_t now_us);

  /// Drops `user`'s bucket (e.g. after a leave).
  void forget(UserId user) { buckets_.erase(user); }

 private:
  struct Bucket {
    double tokens = 0;
    std::uint64_t refilled_us = 0;
  };

  double rate_;
  double burst_;
  std::unordered_map<UserId, Bucket> buckets_;
};

}  // namespace keygraphs::rekey

#include "rekey/batch.h"

#include <set>

namespace keygraphs::rekey {

std::vector<OutboundRekey> plan_batch(const BatchRecord& record,
                                      RekeyEncryptor& encryptor) {
  std::vector<OutboundRekey> out;
  if (record.changes.empty()) return out;

  // The multicast: every changed node's new key wrapped under each of its
  // children's current keys. Clients decrypt to a fixpoint exactly as for
  // a group-oriented leave. Joiners' individual keys are leaves here too,
  // but joiners are served by their welcome unicasts (they are not yet on
  // the group's multicast address).
  RekeyMessage broadcast =
      detail::base_message(RekeyKind::kBatch, StrategyKind::kGroupOriented);
  const KeyId root = record.changes.empty() ? 0 : [&record] {
    // The root is the unique changed node that is nobody's child.
    std::set<KeyId> children;
    for (const BatchChange& change : record.changes) {
      for (const ChildKey& child : change.children) {
        children.insert(child.node);
      }
    }
    for (const BatchChange& change : record.changes) {
      if (!children.contains(change.node)) return change.node;
    }
    return record.changes.front().node;
  }();

  for (const BatchChange& change : record.changes) {
    for (const ChildKey& child : change.children) {
      broadcast.blobs.push_back(
          encryptor.wrap(child.key, std::span(&change.new_key, 1)));
    }
  }
  if (!broadcast.blobs.empty()) {
    out.push_back(
        OutboundRekey{Recipient::to_subgroup(root), std::move(broadcast)});
  }

  for (const auto& [user, keyset] : record.joiner_keysets) {
    RekeyMessage welcome =
        detail::base_message(RekeyKind::kBatch, StrategyKind::kGroupOriented);
    // keyset is leaf-to-root; the leaf (individual key) wraps the rest.
    const SymmetricKey& individual = keyset.front();
    const std::vector<SymmetricKey> rest(keyset.begin() + 1, keyset.end());
    if (!rest.empty()) {
      welcome.blobs.push_back(encryptor.wrap(individual, rest));
    }
    out.push_back(
        OutboundRekey{Recipient::to_user(user), std::move(welcome)});
  }
  return out;
}

}  // namespace keygraphs::rekey

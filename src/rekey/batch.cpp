#include "rekey/batch.h"

#include <set>

namespace keygraphs::rekey {

std::vector<PlannedRekey> plan_batch(const BatchRecord& record,
                                     RekeyPlanner& planner) {
  std::vector<PlannedRekey> out;
  if (record.changes.empty()) return out;

  // The multicast: every changed node's new key wrapped under each of its
  // children's current keys. Clients decrypt to a fixpoint exactly as for
  // a group-oriented leave. Joiners' individual keys are leaves here too,
  // but joiners are served by their welcome unicasts (they are not yet on
  // the group's multicast address).
  PlannedRekey broadcast;
  broadcast.header =
      detail::base_message(RekeyKind::kBatch, StrategyKind::kGroupOriented);
  const KeyId root = [&record] {
    // The root is the unique changed node that is nobody's child.
    std::set<KeyId> children;
    for (const BatchChange& change : record.changes) {
      for (const ChildKey& child : change.children) {
        children.insert(child.node);
      }
    }
    for (const BatchChange& change : record.changes) {
      if (!children.contains(change.node)) return change.node;
    }
    return record.changes.front().node;
  }();

  for (const BatchChange& change : record.changes) {
    for (const ChildKey& child : change.children) {
      broadcast.ops.push_back(
          planner.wrap(child.key, std::span(&change.new_key, 1)));
    }
  }
  if (!broadcast.ops.empty()) {
    broadcast.to = Recipient::to_subgroup(root);
    out.push_back(std::move(broadcast));
  }

  for (const auto& [user, keyset] : record.joiner_keysets) {
    PlannedRekey welcome;
    welcome.header =
        detail::base_message(RekeyKind::kBatch, StrategyKind::kGroupOriented);
    // keyset is leaf-to-root; the leaf (individual key) wraps the rest.
    const SymmetricKey& individual = keyset.front();
    const std::vector<SymmetricKey> rest(keyset.begin() + 1, keyset.end());
    if (!rest.empty()) {
      welcome.ops.push_back(planner.wrap(individual, rest));
    }
    welcome.to = Recipient::to_user(user);
    out.push_back(std::move(welcome));
  }
  return out;
}

std::vector<OutboundRekey> plan_batch(const BatchRecord& record,
                                      RekeyEncryptor& encryptor) {
  RekeyPlanner planner(encryptor.cipher(), encryptor.rng());
  std::vector<PlannedRekey> messages = plan_batch(record, planner);
  return materialize(planner.take(std::move(messages)), encryptor);
}

}  // namespace keygraphs::rekey

#include "rekey/user_oriented.h"

namespace keygraphs::rekey {

std::vector<PlannedRekey> UserOrientedStrategy::plan_join(
    const JoinRecord& record, RekeyPlanner& planner) const {
  std::vector<PlannedRekey> out;
  const std::size_t j = record.path.size() - 1;

  // Figure 6's recipient structure with fully packed payloads: the users in
  // userset(K_i) - userset(K_{i+1}) need exactly the new keys K'_0 .. K'_i,
  // and all of them hold the old K_i, which wraps the whole bundle.
  for (std::size_t i = 0; i <= j; ++i) {
    const PathChange& change = record.path[i];
    if (!change.old_key.has_value()) continue;  // nobody held this key yet
    const std::vector<SymmetricKey> targets =
        detail::new_keys_upto(record.path, i);
    PlannedRekey message;
    message.header =
        detail::base_message(RekeyKind::kJoin, StrategyKind::kUserOriented);
    message.ops.push_back(planner.wrap(*change.old_key, targets));
    std::optional<KeyId> exclude;
    if (i < j && record.path[i + 1].old_key.has_value()) {
      exclude = record.path[i + 1].old_key->id;
    }
    message.to = Recipient::to_subgroup(change.old_key->id, exclude);
    out.push_back(std::move(message));
  }

  // The joining user gets every new key under its individual key.
  PlannedRekey welcome;
  welcome.header =
      detail::base_message(RekeyKind::kJoin, StrategyKind::kUserOriented);
  const std::vector<SymmetricKey> keyset = detail::new_keys_upto(record.path, j);
  welcome.ops.push_back(planner.wrap(record.individual_key, keyset));
  welcome.to = Recipient::to_user(record.user);
  out.push_back(std::move(welcome));
  return out;
}

std::vector<PlannedRekey> UserOrientedStrategy::plan_leave(
    const LeaveRecord& record, RekeyPlanner& planner) const {
  std::vector<PlannedRekey> out;
  // One message per unchanged child subtree of each path node: the subtree
  // under child y needs K'_i .. K'_0 and shares y's key, which wraps them.
  for (std::size_t i = 0; i < record.path.size(); ++i) {
    const std::vector<SymmetricKey> targets =
        detail::new_keys_upto(record.path, i);
    for (const ChildKey& child : record.children[i]) {
      if (child.on_path) continue;
      PlannedRekey message;
      message.header =
          detail::base_message(RekeyKind::kLeave, StrategyKind::kUserOriented);
      message.ops.push_back(planner.wrap(child.key, targets));
      message.to = Recipient::to_subgroup(child.node);
      out.push_back(std::move(message));
    }
  }
  return out;
}

}  // namespace keygraphs::rekey

#include "rekey/message.h"

#include "common/error.h"
#include "common/io.h"

namespace keygraphs::rekey {

namespace {

constexpr std::uint8_t kBodyMagic = 0x52;  // 'R'
constexpr std::uint8_t kBodyVersion = 1;
constexpr std::uint8_t kDatagramMagic = 0x47;  // 'G'

}  // namespace

std::string strategy_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kUserOriented:
      return "user-oriented";
    case StrategyKind::kKeyOriented:
      return "key-oriented";
    case StrategyKind::kGroupOriented:
      return "group-oriented";
    case StrategyKind::kHybrid:
      return "hybrid";
  }
  return "?";
}

Bytes RekeyMessage::serialize_body() const {
  ByteWriter writer;
  writer.u8(kBodyMagic);
  writer.u8(kBodyVersion);
  writer.u8(static_cast<std::uint8_t>(kind));
  writer.u8(static_cast<std::uint8_t>(strategy));
  writer.u32(group);
  writer.u64(epoch);
  writer.u64(timestamp_us);
  writer.u16(static_cast<std::uint16_t>(obsolete.size()));
  for (KeyId id : obsolete) writer.u64(id);
  writer.u16(static_cast<std::uint16_t>(blobs.size()));
  for (const KeyBlob& blob : blobs) {
    writer.u64(blob.wrap.id);
    writer.u32(blob.wrap.version);
    writer.u16(static_cast<std::uint16_t>(blob.targets.size()));
    for (const KeyRef& target : blob.targets) {
      writer.u64(target.id);
      writer.u32(target.version);
    }
    writer.var_bytes(blob.ciphertext);
  }
  return writer.take();
}

RekeyMessage RekeyMessage::parse_body(BytesView data) {
  ByteReader reader(data);
  if (reader.u8() != kBodyMagic) throw ParseError("rekey: bad magic");
  if (reader.u8() != kBodyVersion) throw ParseError("rekey: bad version");
  RekeyMessage message;
  message.kind = static_cast<RekeyKind>(reader.u8());
  if (message.kind != RekeyKind::kJoin &&
      message.kind != RekeyKind::kLeave &&
      message.kind != RekeyKind::kBatch) {
    throw ParseError("rekey: bad kind");
  }
  message.strategy = static_cast<StrategyKind>(reader.u8());
  message.group = reader.u32();
  message.epoch = reader.u64();
  message.timestamp_us = reader.u64();
  const std::uint16_t obsolete_count = reader.u16();
  message.obsolete.reserve(obsolete_count);
  for (std::uint16_t i = 0; i < obsolete_count; ++i) {
    message.obsolete.push_back(reader.u64());
  }
  const std::uint16_t blob_count = reader.u16();
  message.blobs.reserve(blob_count);
  for (std::uint16_t i = 0; i < blob_count; ++i) {
    KeyBlob blob;
    blob.wrap.id = reader.u64();
    blob.wrap.version = reader.u32();
    const std::uint16_t target_count = reader.u16();
    blob.targets.reserve(target_count);
    for (std::uint16_t j = 0; j < target_count; ++j) {
      KeyRef target;
      target.id = reader.u64();
      target.version = reader.u32();
      blob.targets.push_back(target);
    }
    blob.ciphertext = reader.var_bytes();
    message.blobs.push_back(std::move(blob));
  }
  reader.expect_done();
  return message;
}

Bytes Datagram::encode() const {
  ByteWriter writer;
  writer.u8(kDatagramMagic);
  writer.u8(static_cast<std::uint8_t>(type) |
            (trace.has_value() ? kTraceFlag : 0));
  if (trace.has_value()) {
    writer.u64(trace->trace_id);
    writer.u64(trace->epoch);
    writer.u8(trace->op_kind);
  }
  writer.raw(payload);
  return writer.take();
}

Datagram Datagram::decode(BytesView data) {
  ByteReader reader(data);
  if (reader.u8() != kDatagramMagic) throw ParseError("datagram: bad magic");
  Datagram datagram;
  const std::uint8_t type_byte = reader.u8();
  datagram.type =
      static_cast<MessageType>(type_byte & ~Datagram::kTraceFlag);
  if (datagram.type < MessageType::kJoinRequest ||
      datagram.type > MessageType::kRetryLater) {
    throw ParseError("datagram: bad type");
  }
  if ((type_byte & Datagram::kTraceFlag) != 0) {
    TraceExtension trace;
    trace.trace_id = reader.u64();
    trace.epoch = reader.u64();
    trace.op_kind = reader.u8();
    datagram.trace = trace;
  }
  datagram.payload = reader.raw(reader.remaining());
  return datagram;
}

}  // namespace keygraphs::rekey

#include "rekey/key_oriented.h"

namespace keygraphs::rekey {

std::vector<OutboundRekey> KeyOrientedStrategy::plan_join(
    const JoinRecord& record, RekeyEncryptor& encryptor) const {
  std::vector<OutboundRekey> out;
  const std::size_t j = record.path.size() - 1;

  // {K'_i}_{K_i}, each computed exactly once (the 2(h-1) cost bound relies
  // on this reuse), then combined per Figure 6 step (4).
  std::vector<std::optional<KeyBlob>> path_blobs(record.path.size());
  for (std::size_t i = 0; i <= j; ++i) {
    const PathChange& change = record.path[i];
    if (change.old_key.has_value()) {
      path_blobs[i] = encryptor.wrap(
          *change.old_key, std::span(&change.new_key, 1));
    }
  }

  for (std::size_t i = 0; i <= j; ++i) {
    if (!path_blobs[i].has_value()) continue;
    RekeyMessage message =
        detail::base_message(RekeyKind::kJoin, StrategyKind::kKeyOriented);
    for (std::size_t l = 0; l <= i; ++l) {
      if (path_blobs[l].has_value()) message.blobs.push_back(*path_blobs[l]);
    }
    std::optional<KeyId> exclude;
    if (i < j && record.path[i + 1].old_key.has_value()) {
      exclude = record.path[i + 1].old_key->id;
    }
    out.push_back(OutboundRekey{
        Recipient::to_subgroup(record.path[i].old_key->id, exclude),
        std::move(message)});
  }

  // Figure 6 step (5): all new keys in one bundle for the joining user.
  RekeyMessage welcome =
      detail::base_message(RekeyKind::kJoin, StrategyKind::kKeyOriented);
  welcome.blobs.push_back(encryptor.wrap(
      record.individual_key, detail::new_keys_upto(record.path, j)));
  out.push_back(
      OutboundRekey{Recipient::to_user(record.user), std::move(welcome)});
  return out;
}

std::vector<OutboundRekey> KeyOrientedStrategy::plan_leave(
    const LeaveRecord& record, RekeyEncryptor& encryptor) const {
  std::vector<OutboundRekey> out;
  const std::size_t levels = record.path.size();

  // Figure 8's chain {K'_{i-1}}_{K'_i}: each link encrypted once and reused
  // in every message sent below level i.
  std::vector<KeyBlob> chain(levels);  // chain[i] valid for i >= 1
  for (std::size_t i = 1; i < levels; ++i) {
    chain[i] = encryptor.wrap(record.path[i].new_key,
                              std::span(&record.path[i - 1].new_key, 1));
  }

  for (std::size_t i = 0; i < levels; ++i) {
    for (const ChildKey& child : record.children[i]) {
      if (child.on_path) continue;
      RekeyMessage message = detail::base_message(
          RekeyKind::kLeave, StrategyKind::kKeyOriented);
      // {K'_i}_{K_child} then the chain up to the root.
      message.blobs.push_back(encryptor.wrap(
          child.key, std::span(&record.path[i].new_key, 1)));
      for (std::size_t l = i; l >= 1; --l) {
        message.blobs.push_back(chain[l]);
      }
      out.push_back(OutboundRekey{Recipient::to_subgroup(child.node),
                                  std::move(message)});
    }
  }
  return out;
}

}  // namespace keygraphs::rekey

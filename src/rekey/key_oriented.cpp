#include "rekey/key_oriented.h"

namespace keygraphs::rekey {

std::vector<PlannedRekey> KeyOrientedStrategy::plan_join(
    const JoinRecord& record, RekeyPlanner& planner) const {
  std::vector<PlannedRekey> out;
  const std::size_t j = record.path.size() - 1;

  // {K'_i}_{K_i}, each planned exactly once (the 2(h-1) cost bound relies
  // on this reuse), then combined per Figure 6 step (4).
  std::vector<std::optional<std::uint32_t>> path_ops(record.path.size());
  for (std::size_t i = 0; i <= j; ++i) {
    const PathChange& change = record.path[i];
    if (change.old_key.has_value()) {
      path_ops[i] =
          planner.wrap(*change.old_key, std::span(&change.new_key, 1));
    }
  }

  for (std::size_t i = 0; i <= j; ++i) {
    if (!path_ops[i].has_value()) continue;
    PlannedRekey message;
    message.header =
        detail::base_message(RekeyKind::kJoin, StrategyKind::kKeyOriented);
    for (std::size_t l = 0; l <= i; ++l) {
      if (path_ops[l].has_value()) message.ops.push_back(*path_ops[l]);
    }
    std::optional<KeyId> exclude;
    if (i < j && record.path[i + 1].old_key.has_value()) {
      exclude = record.path[i + 1].old_key->id;
    }
    message.to =
        Recipient::to_subgroup(record.path[i].old_key->id, exclude);
    out.push_back(std::move(message));
  }

  // Figure 6 step (5): all new keys in one bundle for the joining user.
  PlannedRekey welcome;
  welcome.header =
      detail::base_message(RekeyKind::kJoin, StrategyKind::kKeyOriented);
  const std::vector<SymmetricKey> keyset = detail::new_keys_upto(record.path, j);
  welcome.ops.push_back(planner.wrap(record.individual_key, keyset));
  welcome.to = Recipient::to_user(record.user);
  out.push_back(std::move(welcome));
  return out;
}

std::vector<PlannedRekey> KeyOrientedStrategy::plan_leave(
    const LeaveRecord& record, RekeyPlanner& planner) const {
  std::vector<PlannedRekey> out;
  const std::size_t levels = record.path.size();

  // Figure 8's chain {K'_{i-1}}_{K'_i}: each link planned once and reused
  // in every message sent below level i (one op, many references — the
  // seal phase encrypts it a single time).
  std::vector<std::uint32_t> chain(levels);  // chain[i] valid for i >= 1
  for (std::size_t i = 1; i < levels; ++i) {
    chain[i] = planner.wrap(record.path[i].new_key,
                            std::span(&record.path[i - 1].new_key, 1));
  }

  for (std::size_t i = 0; i < levels; ++i) {
    for (const ChildKey& child : record.children[i]) {
      if (child.on_path) continue;
      PlannedRekey message;
      message.header =
          detail::base_message(RekeyKind::kLeave, StrategyKind::kKeyOriented);
      // {K'_i}_{K_child} then the chain up to the root.
      message.ops.push_back(
          planner.wrap(child.key, std::span(&record.path[i].new_key, 1)));
      for (std::size_t l = i; l >= 1; --l) {
        message.ops.push_back(chain[l]);
      }
      message.to = Recipient::to_subgroup(child.node);
      out.push_back(std::move(message));
    }
  }
  return out;
}

}  // namespace keygraphs::rekey

// Batch (periodic) rekeying — the natural extension of the paper's
// group-oriented strategy to many membership changes at once.
//
// Instead of rekeying after every request, the server queues joins and
// leaves for an interval and rekeys every affected k-node exactly once:
// one multicast carries {K'_x}_{K_child} for every changed node x and each
// of its children, plus one welcome unicast per joiner. When rekey paths
// overlap (heavy churn), the per-change cost drops well below the
// sequential d(h-1); the tradeoff is that evicted members keep reading
// until the batch fires.
#pragma once

#include "rekey/strategy.h"

namespace keygraphs::rekey {

/// Plans the rekey messages for one batched membership update: a single
/// group multicast plus one unicast per joiner. Returns an empty vector
/// for an empty batch.
std::vector<PlannedRekey> plan_batch(const BatchRecord& record,
                                     RekeyPlanner& planner);

/// Eager form (plan + serial materialize), for tests and tools.
std::vector<OutboundRekey> plan_batch(const BatchRecord& record,
                                      RekeyEncryptor& encryptor);

}  // namespace keygraphs::rekey

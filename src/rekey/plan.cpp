#include "rekey/plan.h"

#include "common/error.h"
#include "rekey/codec.h"

namespace keygraphs::rekey {

KeySnapshot::~KeySnapshot() {
  for (auto& [ref, secret] : secrets_) secure_wipe(secret);
}

void KeySnapshot::bind(TreeViewPtr view) { view_ = std::move(view); }

void KeySnapshot::add(const SymmetricKey& key) {
  if (view_ && !view_->find_secret(key.ref()).empty()) return;
  secrets_.try_emplace(key.ref(), key.secret);
}

BytesView KeySnapshot::secret(const KeyRef& ref) const {
  if (view_) {
    const BytesView from_view = view_->find_secret(ref);
    if (!from_view.empty()) return from_view;
  }
  const auto it = secrets_.find(ref);
  if (it == secrets_.end()) {
    throw Error("KeySnapshot: no secret for " + to_string(ref));
  }
  return it->second;
}

RekeyPlanner::RekeyPlanner(crypto::CipherAlgorithm cipher,
                           crypto::SecureRandom& rng)
    : block_size_(crypto::cipher_block_size(cipher)), rng_(rng) {}

RekeyPlanner::RekeyPlanner(crypto::CipherAlgorithm cipher,
                           crypto::SecureRandom& rng, TreeViewPtr view)
    : block_size_(crypto::cipher_block_size(cipher)), rng_(rng) {
  plan_.keys.bind(std::move(view));
}

std::uint32_t RekeyPlanner::wrap(const SymmetricKey& wrapping,
                                 std::span<const SymmetricKey> targets) {
  if (targets.empty()) throw Error("RekeyPlanner: empty target list");
  WrapOp op;
  op.wrap = wrapping.ref();
  plan_.keys.add(wrapping);
  op.targets.reserve(targets.size());
  for (const SymmetricKey& target : targets) {
    op.targets.push_back(target.ref());
    plan_.keys.add(target);
  }
  op.iv = rng_.bytes(block_size_);
  key_encryptions_ += targets.size();
  plan_.ops.push_back(std::move(op));
  return static_cast<std::uint32_t>(plan_.ops.size() - 1);
}

RekeyPlan RekeyPlanner::take(std::vector<PlannedRekey> messages) {
  plan_.messages = std::move(messages);
  plan_.key_encryptions = key_encryptions_;
  return std::move(plan_);
}

std::vector<OutboundRekey> materialize(const RekeyPlan& plan,
                                       RekeyEncryptor& encryptor) {
  std::vector<KeyBlob> blobs;
  blobs.reserve(plan.ops.size());
  for (const WrapOp& op : plan.ops) {
    const BytesView wrap_secret = plan.keys.secret(op.wrap);
    SymmetricKey wrapping{op.wrap.id, op.wrap.version,
                          Bytes(wrap_secret.begin(), wrap_secret.end())};
    std::vector<SymmetricKey> targets;
    targets.reserve(op.targets.size());
    for (const KeyRef& ref : op.targets) {
      const BytesView target_secret = plan.keys.secret(ref);
      targets.push_back({ref.id, ref.version,
                         Bytes(target_secret.begin(), target_secret.end())});
    }
    blobs.push_back(encryptor.wrap_with_iv(wrapping, targets, op.iv));
    secure_wipe(wrapping.secret);
    for (SymmetricKey& target : targets) secure_wipe(target.secret);
  }
  std::vector<OutboundRekey> out;
  out.reserve(plan.messages.size());
  for (const PlannedRekey& planned : plan.messages) {
    OutboundRekey outbound{planned.to, planned.header};
    outbound.message.blobs.reserve(planned.ops.size());
    for (const std::uint32_t op : planned.ops) {
      outbound.message.blobs.push_back(blobs[op]);
    }
    out.push_back(std::move(outbound));
  }
  return out;
}

}  // namespace keygraphs::rekey

// Closed-form cost model (paper Tables 1, 2 and 3).
//
// These are the analytic values the paper tabulates for star, tree and
// complete key graphs, assuming a full and balanced d-ary tree with
// n = d^(h-1) users. The benches print them beside measured values so every
// reproduced table shows "paper (analytic)" and "measured" columns.
#pragma once

#include <cstddef>

namespace keygraphs::analysis {

/// Table 1: keys held by the server / by one user.
struct KeyCounts {
  double total_keys = 0.0;
  double keys_per_user = 0.0;
};

KeyCounts star_key_counts(std::size_t n);
KeyCounts tree_key_counts(std::size_t n, int degree);
KeyCounts complete_key_counts(std::size_t n);

/// Height h of a full balanced d-ary key tree with n users, in edges
/// (the paper's definition: users hold at most h keys).
double tree_height(std::size_t n, int degree);

/// Table 2 costs (key encryptions/decryptions per operation).
struct JoinLeaveCost {
  double join = 0.0;
  double leave = 0.0;
};

// (a) requesting user
JoinLeaveCost star_requesting_cost(std::size_t n);
JoinLeaveCost tree_requesting_cost(std::size_t n, int degree);
JoinLeaveCost complete_requesting_cost(std::size_t n);

// (b) non-requesting user (average)
JoinLeaveCost star_nonrequesting_cost(std::size_t n);
JoinLeaveCost tree_nonrequesting_cost(std::size_t n, int degree);
JoinLeaveCost complete_nonrequesting_cost(std::size_t n);

// (c) the server (key-oriented / group-oriented rekeying for trees)
JoinLeaveCost star_server_cost(std::size_t n);
JoinLeaveCost tree_server_cost(std::size_t n, int degree);
JoinLeaveCost complete_server_cost(std::size_t n);

/// Table 2(c) for the remaining strategy: user-oriented server cost is
/// h(h+1)/2 - 1 per join, (d-1)h(h-1)/2 per leave.
JoinLeaveCost tree_server_cost_user_oriented(std::size_t n, int degree);

/// Table 3: average cost per operation with a 1:1 join/leave mix.
double star_avg_server_cost(std::size_t n);
double tree_avg_server_cost(std::size_t n, int degree);
double complete_avg_server_cost(std::size_t n);
double tree_avg_user_cost(int degree);  // d/(d-1), Figure 12's reference

}  // namespace keygraphs::analysis

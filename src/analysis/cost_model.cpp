#include "analysis/cost_model.h"

#include <cmath>

namespace keygraphs::analysis {

namespace {

double pow2(double e) { return std::exp2(e); }

}  // namespace

double tree_height(std::size_t n, int degree) {
  if (n <= 1) return 1.0;
  // n = d^(h-1)  =>  h = log_d(n) + 1
  return std::log(static_cast<double>(n)) / std::log(degree) + 1.0;
}

KeyCounts star_key_counts(std::size_t n) {
  return {static_cast<double>(n) + 1.0, 2.0};
}

KeyCounts tree_key_counts(std::size_t n, int degree) {
  const double d = degree;
  return {d / (d - 1.0) * static_cast<double>(n), tree_height(n, degree)};
}

KeyCounts complete_key_counts(std::size_t n) {
  const double dn = static_cast<double>(n);
  return {pow2(dn) - 1.0, pow2(dn - 1.0)};
}

JoinLeaveCost star_requesting_cost(std::size_t) { return {1.0, 0.0}; }

JoinLeaveCost tree_requesting_cost(std::size_t n, int degree) {
  return {tree_height(n, degree) - 1.0, 0.0};
}

JoinLeaveCost complete_requesting_cost(std::size_t n) {
  return {pow2(static_cast<double>(n)), 0.0};
}

JoinLeaveCost star_nonrequesting_cost(std::size_t) { return {1.0, 1.0}; }

JoinLeaveCost tree_nonrequesting_cost(std::size_t, int degree) {
  const double d = degree;
  return {d / (d - 1.0), d / (d - 1.0)};
}

JoinLeaveCost complete_nonrequesting_cost(std::size_t n) {
  return {pow2(static_cast<double>(n) - 1.0), 0.0};
}

JoinLeaveCost star_server_cost(std::size_t n) {
  return {2.0, static_cast<double>(n) - 1.0};
}

JoinLeaveCost tree_server_cost(std::size_t n, int degree) {
  const double h = tree_height(n, degree);
  return {2.0 * (h - 1.0), degree * (h - 1.0)};
}

JoinLeaveCost complete_server_cost(std::size_t n) {
  return {pow2(static_cast<double>(n) + 1.0), 0.0};
}

JoinLeaveCost tree_server_cost_user_oriented(std::size_t n, int degree) {
  const double h = tree_height(n, degree);
  const double d = degree;
  return {h * (h + 1.0) / 2.0 - 1.0, (d - 1.0) * h * (h - 1.0) / 2.0};
}

double star_avg_server_cost(std::size_t n) {
  return static_cast<double>(n) / 2.0;
}

double tree_avg_server_cost(std::size_t n, int degree) {
  const double h = tree_height(n, degree);
  return (degree + 2.0) * (h - 1.0) / 2.0;
}

double complete_avg_server_cost(std::size_t n) {
  return pow2(static_cast<double>(n));
}

double tree_avg_user_cost(int degree) {
  const double d = degree;
  return d / (d - 1.0);
}

}  // namespace keygraphs::analysis

// Experiment driver (paper Section 5 methodology, end to end).
//
// One experiment = build an initial group of n users, reset all counters,
// then drive a randomly generated sequence of join/leave requests (1:1 by
// default) against the configured strategy/degree/crypto suite, measuring
// server-side stats always and client-side stats when clients are attached.
// The build phase is never measured, matching the paper.
#pragma once

#include "server/server.h"
#include "sim/simulator.h"
#include "sim/workload.h"

namespace keygraphs::sim {

struct ExperimentConfig {
  std::size_t initial_size = 1024;
  std::size_t requests = 1000;
  double join_fraction = 0.5;  // the paper's 1:1 join/leave ratio
  int degree = 4;
  rekey::StrategyKind strategy = rekey::StrategyKind::kGroupOriented;
  rekey::SigningMode signing = rekey::SigningMode::kNone;
  crypto::CryptoSuite suite = crypto::CryptoSuite::paper_plain();
  std::uint64_t seed = 1;
  /// Attach simulated clients (needed for Table 6 / Figure 12; adds the
  /// delivery and client processing work to the run's wall time but not to
  /// the server's measured processing time).
  bool with_clients = false;
  bool clients_verify = false;
  /// Star baseline instead of a tree.
  bool star = false;
  /// Build the initial group without signatures, then enable the configured
  /// signing mode for the measured churn. The paper never measures the
  /// build phase; this just makes large signed experiments affordable.
  bool build_unsigned = true;
};

struct ExperimentResult {
  server::Summary join;
  server::Summary leave;
  server::Summary all;
  // Client side (zero unless with_clients):
  double client_avg_messages_per_request = 0.0;
  double client_avg_key_changes = 0.0;
  double client_avg_join_message_bytes = 0.0;
  double client_avg_leave_message_bytes = 0.0;
  // Final structure:
  std::size_t final_size = 0;
  std::size_t final_height = 0;
  std::size_t final_keys = 0;
};

ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace keygraphs::sim

// Fixed-width table rendering for the benchmark binaries, which print the
// paper's tables with "paper" and "measured" columns side by side.
#pragma once

#include <iostream>
#include <string>
#include <vector>

namespace keygraphs::sim {

class TablePrinter {
 public:
  struct Column {
    std::string name;
    int width = 12;
  };

  explicit TablePrinter(std::vector<Column> columns,
                        std::ostream& out = std::cout);

  void header() const;
  void row(const std::vector<std::string>& cells) const;
  void rule() const;

  /// Fixed-precision number formatting ("12.3").
  static std::string num(double value, int precision = 1);
  static std::string num(std::size_t value);

 private:
  std::vector<Column> columns_;
  std::ostream& out_;
};

}  // namespace keygraphs::sim

// Client simulator (paper Section 5: "A client-simulator runs on the other
// SGI simulating a large number of clients").
//
// Hosts up to thousands of GroupClient instances on an InProcNetwork,
// drives join/leave requests end to end (authentication, admission, rekey
// delivery, subscription maintenance, departure), and collects the
// client-side statistics of Table 6 and Figure 12.
#pragma once

#include <map>
#include <memory>

#include "client/client.h"
#include "server/server.h"
#include "sim/workload.h"
#include "transport/inproc.h"

namespace keygraphs::sim {

struct SimulatorConfig {
  /// Clients verify signatures/digests. Off by default: the paper excludes
  /// client-side authentication work from its measurements, and the big
  /// sweeps would otherwise spend all their time in RSA verify.
  bool clients_verify = false;
  std::uint64_t client_seed = 7;
};

/// Per-operation client-side totals (summed over all member clients).
struct ClientOpRecord {
  RequestKind kind = RequestKind::kJoin;
  std::size_t members = 0;        // group size when the request ran
  std::size_t messages = 0;       // rekey messages received by clients
  std::size_t bytes = 0;          // bytes received by clients
  std::size_t keys_changed = 0;   // Fig. 12 numerator
  std::size_t keys_decrypted = 0;
  std::size_t max_client_messages = 0;  // per-client max (Table 6 check)
};

class ClientSimulator {
 public:
  ClientSimulator(server::GroupKeyServer& server,
                  transport::InProcNetwork& network,
                  SimulatorConfig config = {});

  /// Builds clients for every user already in the server's tree, installing
  /// keyset snapshots (used after an unmeasured server-only build phase).
  void materialize_from_tree();

  /// Drives one request end to end and records client-side stats.
  void apply(const Request& request);

  /// Applies a whole sequence.
  void apply_all(const std::vector<Request>& requests);

  /// Drives one batched membership update end to end (periodic rekeying):
  /// leavers detach first, joiners attach, the server rekeys once.
  void apply_batch(const std::vector<UserId>& join_users,
                   const std::vector<UserId>& leave_users);

  [[nodiscard]] client::GroupClient& client(UserId user);
  [[nodiscard]] bool has_client(UserId user) const;
  [[nodiscard]] std::size_t member_count() const { return clients_.size(); }

  [[nodiscard]] const std::vector<ClientOpRecord>& records() const noexcept {
    return records_;
  }

  /// Average number of key changes by a client per request (Fig. 12):
  /// mean over requests of (total key changes / members present).
  [[nodiscard]] double avg_key_changes_per_request() const;

  /// Average rekey messages received per member client per request
  /// (Table 6 reports this as exactly 1 for all strategies).
  [[nodiscard]] double avg_messages_per_client_per_request() const;

  /// Average size of rekey messages received by clients, split by op kind
  /// (Table 6's per-join / per-leave columns).
  [[nodiscard]] double avg_received_message_bytes(RequestKind kind) const;

 private:
  void attach(UserId user, bool install_individual);
  client::ClientConfig client_config(UserId user) const;

  server::GroupKeyServer& server_;
  transport::InProcNetwork& network_;
  SimulatorConfig config_;
  std::map<UserId, std::unique_ptr<client::GroupClient>> clients_;
  std::vector<ClientOpRecord> records_;
  ClientOpRecord current_;     // accumulator wired into delivery handlers
  UserId excluded_user_ = 0;   // requester excluded from per-client stats
};

}  // namespace keygraphs::sim

#include "sim/experiment.h"

#include "common/error.h"

namespace keygraphs::sim {

ExperimentResult run_experiment(const ExperimentConfig& config) {
  server::ServerConfig server_config;
  server_config.tree_degree = config.degree;
  server_config.suite = config.suite;
  server_config.strategy = config.strategy;
  const bool defer_signing =
      config.build_unsigned && config.signing != rekey::SigningMode::kNone;
  server_config.signing =
      defer_signing ? rekey::SigningMode::kNone : config.signing;
  server_config.rng_seed = config.seed * 2654435761u + 1;
  if (config.star) {
    server_config = server::ServerConfig::star(server_config);
  }

  transport::InProcNetwork network;
  server::GroupKeyServer server(server_config, network);
  ClientSimulator simulator(server, network,
                            SimulatorConfig{config.clients_verify,
                                            config.seed * 31 + 7});

  WorkloadGenerator workload(config.seed);

  // Build phase: server only (no clients attached; deliveries fall on empty
  // subgroups). Not measured.
  for (const Request& request : workload.initial_joins(config.initial_size)) {
    if (server.join(request.user) != server::JoinResult::kGranted) {
      throw ProtocolError("experiment: build join rejected");
    }
  }
  if (defer_signing) server.set_signing_mode(config.signing);
  if (config.with_clients) simulator.materialize_from_tree();
  server.stats().reset();
  network.reset_counters();

  // Measured phase.
  const std::vector<Request> churn =
      workload.churn(config.requests, config.join_fraction);
  if (config.with_clients) {
    simulator.apply_all(churn);
  } else {
    for (const Request& request : churn) {
      if (request.kind == RequestKind::kJoin) {
        if (server.join(request.user) != server::JoinResult::kGranted) {
          throw ProtocolError("experiment: churn join rejected");
        }
      } else {
        server.leave(request.user);
      }
    }
  }

  ExperimentResult result;
  result.join = server.stats().summarize(rekey::RekeyKind::kJoin);
  result.leave = server.stats().summarize(rekey::RekeyKind::kLeave);
  result.all = server.stats().summarize_all();
  if (config.with_clients) {
    result.client_avg_messages_per_request =
        simulator.avg_messages_per_client_per_request();
    result.client_avg_key_changes = simulator.avg_key_changes_per_request();
    result.client_avg_join_message_bytes =
        simulator.avg_received_message_bytes(RequestKind::kJoin);
    result.client_avg_leave_message_bytes =
        simulator.avg_received_message_bytes(RequestKind::kLeave);
  }
  const keygraphs::TreeViewPtr final_view = server.tree_view();
  result.final_size = final_view->user_count();
  result.final_height = final_view->height();
  result.final_keys = final_view->key_count();
  return result;
}

}  // namespace keygraphs::sim

#include "sim/simulator.h"

#include "common/error.h"
#include "telemetry/trace.h"

namespace keygraphs::sim {

namespace {

// Per-request latency as the simulator sees it: client detach/attach plus the
// full server round trip (rekey fan-out included, since inproc is synchronous).
telemetry::Histogram& request_histogram(RequestKind kind) {
  auto& registry = telemetry::Registry::global();
  static auto& join_ns = registry.histogram("sim.request_ns.join");
  static auto& leave_ns = registry.histogram("sim.request_ns.leave");
  return kind == RequestKind::kJoin ? join_ns : leave_ns;
}

telemetry::Counter& request_counter(RequestKind kind) {
  auto& registry = telemetry::Registry::global();
  static auto& joins = registry.counter("sim.requests.join");
  static auto& leaves = registry.counter("sim.requests.leave");
  return kind == RequestKind::kJoin ? joins : leaves;
}

}  // namespace

ClientSimulator::ClientSimulator(server::GroupKeyServer& server,
                                 transport::InProcNetwork& network,
                                 SimulatorConfig config)
    : server_(server), network_(network), config_(config) {}

client::ClientConfig ClientSimulator::client_config(UserId user) const {
  client::ClientConfig config;
  config.user = user;
  config.suite = server_.config().suite;
  config.group = server_.config().group;
  config.root = server_.root_id();
  config.verify = config_.clients_verify;
  config.rng_seed = config_.client_seed ^ (user * 0x9e3779b97f4a7c15ull);
  return config;
}

void ClientSimulator::attach(UserId user, bool install_individual) {
  auto owned = std::make_unique<client::GroupClient>(client_config(user),
                                                     server_.public_key());
  client::GroupClient* handle = owned.get();
  if (install_individual) {
    // The same derivation the server's authentication exchange performs.
    handle->install_individual_key(SymmetricKey{
        individual_key_id(user), 1,
        server_.auth().individual_key(user,
                                      server_.config().suite.key_size())});
  }
  clients_.emplace(user, std::move(owned));
  network_.attach_client(user, [this, handle, user](BytesView datagram) {
    const client::RekeyOutcome outcome = handle->handle_datagram(datagram);
    if (user != excluded_user_) {
      // The requesting user's own welcome message is excluded, matching the
      // paper's per-client numbers, which describe non-requesting members.
      ++current_.messages;
      current_.bytes += outcome.wire_size;
      current_.keys_changed += outcome.keys_changed;
      current_.keys_decrypted += outcome.keys_decrypted;
    }
    // Keysets define multicast membership: resubscribe after every change.
    network_.resubscribe(user, handle->key_ids());
  });
  network_.resubscribe(user, handle->key_ids());
}

void ClientSimulator::materialize_from_tree() {
  // One epoch view for the whole materialization: every client's snapshot
  // comes from the same consistent tree state.
  const TreeViewPtr view = server_.tree_view();
  for (UserId user : view->users()) {
    if (clients_.contains(user)) continue;
    attach(user, /*install_individual=*/false);
    client::GroupClient& handle = *clients_.at(user);
    handle.admit_snapshot(view->keyset(user), server_.epoch());
    network_.resubscribe(user, handle.key_ids());
  }
}

void ClientSimulator::apply(const Request& request) {
  const bool telemetry_on = telemetry::enabled();
  const std::uint64_t started =
      telemetry_on ? telemetry::steady_now_ns() : 0;
  current_ = ClientOpRecord{};
  current_.kind = request.kind;

  if (request.kind == RequestKind::kJoin) {
    current_.members = clients_.size();  // receivers of this op's rekeys
    excluded_user_ = request.user;
    attach(request.user, /*install_individual=*/true);
    const server::JoinResult result = server_.join(request.user);
    excluded_user_ = 0;
    if (result != server::JoinResult::kGranted) {
      network_.detach_client(request.user);
      clients_.erase(request.user);
      throw ProtocolError("simulator: join rejected");
    }
  } else {
    auto it = clients_.find(request.user);
    if (it == clients_.end()) {
      throw ProtocolError("simulator: leave for unknown client");
    }
    // The departing member stops listening before the rekey goes out; the
    // paper's Table 6 counts messages received by members only.
    network_.detach_client(request.user);
    it->second->forget_keys();
    clients_.erase(it);
    current_.members = clients_.size();
    server_.leave(request.user);
  }
  if (telemetry_on) {
    request_counter(request.kind).add(1);
    request_histogram(request.kind).record(telemetry::steady_now_ns() -
                                           started);
  }
  records_.push_back(current_);
}

void ClientSimulator::apply_all(const std::vector<Request>& requests) {
  for (const Request& request : requests) apply(request);
}

void ClientSimulator::apply_batch(const std::vector<UserId>& join_users,
                                  const std::vector<UserId>& leave_users) {
  current_ = ClientOpRecord{};
  current_.kind = RequestKind::kJoin;  // batches are recorded under join

  for (UserId user : leave_users) {
    auto it = clients_.find(user);
    if (it == clients_.end()) {
      throw ProtocolError("simulator: batch leave for unknown client");
    }
    network_.detach_client(user);
    it->second->forget_keys();
    clients_.erase(it);
  }
  for (UserId user : join_users) attach(user, /*install_individual=*/true);
  current_.members = clients_.size() - join_users.size();

  const std::vector<UserId> admitted =
      server_.batch(join_users, leave_users);
  if (admitted.size() != join_users.size()) {
    throw ProtocolError("simulator: batch join rejected");
  }
  if (telemetry::enabled()) {
    static auto& batches =
        telemetry::Registry::global().counter("sim.requests.batch");
    batches.add(1);
  }
  records_.push_back(current_);
}

client::GroupClient& ClientSimulator::client(UserId user) {
  auto it = clients_.find(user);
  if (it == clients_.end()) throw ProtocolError("simulator: no such client");
  return *it->second;
}

bool ClientSimulator::has_client(UserId user) const {
  return clients_.contains(user);
}

double ClientSimulator::avg_key_changes_per_request() const {
  double sum = 0.0;
  std::size_t counted = 0;
  for (const ClientOpRecord& record : records_) {
    if (record.members == 0) continue;
    sum += static_cast<double>(record.keys_changed) /
           static_cast<double>(record.members);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

double ClientSimulator::avg_messages_per_client_per_request() const {
  double sum = 0.0;
  std::size_t counted = 0;
  for (const ClientOpRecord& record : records_) {
    if (record.members == 0) continue;
    sum += static_cast<double>(record.messages) /
           static_cast<double>(record.members);
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

double ClientSimulator::avg_received_message_bytes(RequestKind kind) const {
  std::size_t bytes = 0, messages = 0;
  for (const ClientOpRecord& record : records_) {
    if (record.kind != kind) continue;
    bytes += record.bytes;
    messages += record.messages;
  }
  return messages == 0
             ? 0.0
             : static_cast<double>(bytes) / static_cast<double>(messages);
}

}  // namespace keygraphs::sim

// Workload generation (paper Section 5 methodology).
//
// Each experiment sends n initial join requests to build the group, then a
// randomly generated sequence of join/leave requests at a given ratio (the
// paper uses 1000 requests at 1:1). Sequences are deterministic functions
// of the seed, so "the same three sequences" can be replayed across
// strategies, degrees and crypto suites exactly as the paper did for fair
// comparison.
#pragma once

#include <vector>

#include "crypto/random.h"
#include "keygraph/key.h"

namespace keygraphs::sim {

enum class RequestKind : std::uint8_t { kJoin = 1, kLeave = 2 };

struct Request {
  RequestKind kind = RequestKind::kJoin;
  UserId user = 0;
};

/// Stateful generator tracking the member population it has produced.
class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(std::uint64_t seed);

  /// n join requests for fresh users (the group build phase).
  std::vector<Request> initial_joins(std::size_t n);

  /// `count` churn requests: each is a join (fresh user) with probability
  /// `join_fraction`, otherwise a leave of a uniformly random current
  /// member. Falls back to a join when the group is empty.
  std::vector<Request> churn(std::size_t count, double join_fraction = 0.5);

  [[nodiscard]] const std::vector<UserId>& members() const noexcept {
    return members_;
  }

 private:
  crypto::SecureRandom rng_;
  std::vector<UserId> members_;
  UserId next_user_ = 1;
};

}  // namespace keygraphs::sim

#include "sim/table.h"

#include <iomanip>
#include <sstream>

namespace keygraphs::sim {

TablePrinter::TablePrinter(std::vector<Column> columns, std::ostream& out)
    : columns_(std::move(columns)), out_(out) {}

void TablePrinter::header() const {
  std::vector<std::string> names;
  names.reserve(columns_.size());
  for (const Column& column : columns_) names.push_back(column.name);
  row(names);
  rule();
}

void TablePrinter::rule() const {
  std::size_t total = 0;
  for (const Column& column : columns_) {
    total += static_cast<std::size_t>(column.width) + 2;
  }
  out_ << std::string(total, '-') << '\n';
}

void TablePrinter::row(const std::vector<std::string>& cells) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    const std::string& cell = i < cells.size() ? cells[i] : std::string{};
    out_ << std::setw(columns_[i].width) << cell << "  ";
  }
  out_ << '\n';
}

std::string TablePrinter::num(double value, int precision) {
  std::ostringstream stream;
  stream << std::fixed << std::setprecision(precision) << value;
  return stream.str();
}

std::string TablePrinter::num(std::size_t value) {
  return std::to_string(value);
}

}  // namespace keygraphs::sim

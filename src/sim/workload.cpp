#include "sim/workload.h"

namespace keygraphs::sim {

WorkloadGenerator::WorkloadGenerator(std::uint64_t seed) : rng_(seed) {}

std::vector<Request> WorkloadGenerator::initial_joins(std::size_t n) {
  std::vector<Request> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Request{RequestKind::kJoin, next_user_});
    members_.push_back(next_user_);
    ++next_user_;
  }
  return out;
}

std::vector<Request> WorkloadGenerator::churn(std::size_t count,
                                              double join_fraction) {
  std::vector<Request> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const bool join =
        members_.empty() || rng_.uniform_unit() < join_fraction;
    if (join) {
      out.push_back(Request{RequestKind::kJoin, next_user_});
      members_.push_back(next_user_);
      ++next_user_;
    } else {
      const std::size_t victim =
          static_cast<std::size_t>(rng_.uniform(members_.size()));
      out.push_back(Request{RequestKind::kLeave, members_[victim]});
      members_[victim] = members_.back();
      members_.pop_back();
    }
  }
  return out;
}

}  // namespace keygraphs::sim

#include "common/io.h"

namespace keygraphs {

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    buf_.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void ByteWriter::raw(BytesView data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::var_bytes(BytesView data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void ByteWriter::var_string(std::string_view text) {
  u32(static_cast<std::uint32_t>(text.size()));
  buf_.insert(buf_.end(), text.begin(), text.end());
}

void ByteReader::need(std::size_t n) const {
  if (remaining() < n) {
    throw ParseError("ByteReader: truncated input");
  }
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Bytes ByteReader::raw(std::size_t n) {
  need(n);
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

Bytes ByteReader::var_bytes() {
  const std::uint32_t n = u32();
  return raw(n);
}

std::string ByteReader::var_string() {
  Bytes b = var_bytes();
  return std::string(b.begin(), b.end());
}

void ByteReader::expect_done() const {
  if (!done()) {
    throw ParseError("ByteReader: trailing bytes after message");
  }
}

}  // namespace keygraphs

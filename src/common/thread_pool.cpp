#include "common/thread_pool.h"

#include <atomic>

namespace keygraphs {

struct ThreadPool::Batch {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex mutex;
  std::condition_variable cv;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::work_on(Batch& batch) {
  for (;;) {
    const std::size_t i = batch.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= batch.n) return;
    try {
      (*batch.fn)(i);
    } catch (...) {
      const std::lock_guard lock(batch.mutex);
      if (!batch.error) batch.error = std::current_exception();
    }
    if (batch.done.fetch_add(1, std::memory_order_acq_rel) + 1 == batch.n) {
      // Taking the batch mutex pairs with the waiter's predicate check so
      // the notify cannot slip between its test and its sleep.
      const std::lock_guard lock(batch.mutex);
      batch.cv.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock lock(mutex_);
      work_cv_.wait(lock, [this] { return stop_ || !batches_.empty(); });
      if (stop_) return;
      batch = batches_.front();
      if (batch->next.load(std::memory_order_relaxed) >= batch->n) {
        batches_.pop_front();  // exhausted; drop it and look again
        continue;
      }
    }
    work_on(*batch);
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->fn = &fn;
  {
    const std::lock_guard lock(mutex_);
    batches_.push_back(batch);
  }
  work_cv_.notify_all();
  work_on(*batch);
  {
    std::unique_lock lock(batch->mutex);
    batch->cv.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) >= batch->n;
    });
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace keygraphs

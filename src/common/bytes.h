// Byte-buffer primitives shared by every subsystem.
//
// The whole library moves keys and messages around as flat byte vectors;
// this header provides the alias plus the small set of helpers (hex codecs,
// constant-time comparison, concatenation, secure wipe) that the crypto and
// wire-format layers need.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace keygraphs {

/// Owning byte buffer. The library's lingua franca for keys, digests,
/// ciphertexts, and serialized messages.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning read-only view of bytes; use at API boundaries.
using BytesView = std::span<const std::uint8_t>;

/// Render `data` as lowercase hex ("deadbeef").
std::string to_hex(BytesView data);

/// Parse lowercase/uppercase hex into bytes.
/// Throws std::invalid_argument on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Copy a string's bytes into a buffer (no encoding applied).
Bytes bytes_of(std::string_view text);

/// Compare two buffers in time independent of where they differ.
/// Still leaks length inequality, which is fine for MAC/digest checks.
bool constant_time_equal(BytesView a, BytesView b) noexcept;

/// Append `tail` to `head` and return the result.
Bytes concat(BytesView head, BytesView tail);

/// Best-effort zeroization of key material before release.
void secure_wipe(Bytes& data) noexcept;

/// Raw-buffer overload for caller-owned scratch (e.g. CBC decrypt output).
void secure_wipe(std::uint8_t* data, std::size_t size) noexcept;

}  // namespace keygraphs

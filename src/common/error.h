// Exception hierarchy. Every error the library throws derives from Error so
// applications can catch one type at the top of an event loop.
#pragma once

#include <stdexcept>
#include <string>

namespace keygraphs {

/// Root of the library's exception hierarchy.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed or truncated serialized input (network-facing decoders).
class ParseError : public Error {
 public:
  using Error::Error;
};

/// Cryptographic failure: bad key size, padding, signature mismatch, ...
class CryptoError : public Error {
 public:
  using Error::Error;
};

/// Violation of a join/leave protocol or group-membership rule.
class ProtocolError : public Error {
 public:
  using Error::Error;
};

/// Transport-level failure (socket errors, unknown destinations).
class TransportError : public Error {
 public:
  using Error::Error;
};

}  // namespace keygraphs
